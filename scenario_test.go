package o1mem

// scenario_test.go runs a full-system integration scenario across every
// subsystem: machine boot, program launch on both memory backends, a
// shared database file, heap allocation through the user-level
// allocator, trace replay, memory pressure, a crash, and recovery.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/pagetable"
	"repro/internal/proc"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestFullSystemScenario(t *testing.T) {
	mgr, err := proc.NewManager(proc.MachineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const rw = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser

	// --- Phase 1: launch the same program on both backends ---------
	codeB, err := mgr.WriteProgram(mgr.Tmpfs, "/prog", 4)
	if err != nil {
		t.Fatal(err)
	}
	codeF, err := mgr.WriteProgramFOM("/prog", 4)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := mgr.LaunchBaseline(proc.Image{Code: codeB, HeapPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	fomProc, err := mgr.LaunchFOM(proc.Image{Code: codeF, HeapPages: 64}, core.Ranges)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("scenario"), 2048) // 16 KB
	for _, p := range []proc.Process{baseline, fomProc} {
		if err := p.WriteHeap(0, payload); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(payload))
		if err := p.ReadHeap(0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("heap round trip failed")
		}
	}

	// --- Phase 2: a shared persistent database + user-level heap ---
	db, err := mgr.FOM.CreateContiguousFile("/db", 1024,
		memfs.CreateOptions{Durability: memfs.Persistent}, true)
	if err != nil {
		t.Fatal(err)
	}
	writer, err := mgr.FOM.NewProcess(core.SharedPT)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := mgr.FOM.NewProcess(core.Ranges)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := writer.MapFile(db, rw)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := reader.MapFile(db, rw)
	if err != nil {
		t.Fatal(err)
	}
	if wm.Base() != rm.Base() {
		t.Fatal("PBM addresses differ across translation modes")
	}
	if err := writer.WriteBuf(wm.Base()+4096, []byte("db-record-1")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 11)
	if err := reader.ReadBuf(rm.Base()+4096, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "db-record-1" {
		t.Fatalf("cross-process read: %q", got)
	}

	// Heap objects inside the reader process.
	h := heap.New(reader)
	var objs []mem.VirtAddr
	for i := 0; i < 50; i++ {
		o, err := h.Alloc(uint64(100 + i*37))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Write(o, []byte(fmt.Sprintf("obj-%d", i))); err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o)
	}
	for i, o := range objs {
		buf := make([]byte, 8)
		if err := h.Read(o, buf); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("obj-%d", i)
		if string(buf[:len(want)]) != want {
			t.Fatalf("heap object %d corrupted: %q", i, buf)
		}
	}

	// --- Phase 3: trace replay against the same machine ------------
	tr, err := trace.Generate(trace.GenSpec{
		Name: "scenario", Ops: 300, SizeDist: workload.SmallHeavy,
		MinPages: 1, MaxPages: 64, TouchFrac: 0.5, WriteFrac: 0.5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	replayProc, err := mgr.FOM.NewProcess(core.Ranges)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := trace.Replay(tr, trace.NewFOMTarget(replayProc), mgr.Clock)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != len(tr.Ops) {
		t.Fatal("replay incomplete")
	}
	if err := replayProc.Exit(); err != nil {
		t.Fatal(err)
	}

	// --- Phase 4: memory pressure against discardable caches -------
	cache, err := mgr.FOM.CreateContiguousFile("/cache", 2048,
		memfs.CreateOptions{Discardable: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}
	freed, err := mgr.FOM.DiscardUnderPressure(1024)
	if err != nil {
		t.Fatal(err)
	}
	if freed < 1024 {
		t.Fatalf("pressure freed only %d frames", freed)
	}

	// --- Phase 5: crash and recovery -------------------------------
	for _, o := range objs {
		if err := h.Free(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := fomProc.Exit(); err != nil {
		t.Fatal(err)
	}
	if err := baseline.Exit(); err != nil {
		t.Fatal(err)
	}
	mgr.Memory.Crash()
	if _, err := mgr.FOM.Remount(); err != nil {
		t.Fatal(err)
	}

	db2, err := mgr.FOM.FS().Open("/db")
	if err != nil {
		t.Fatalf("database lost in crash: %v", err)
	}
	survivor, err := mgr.FOM.NewProcess(core.Ranges)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := survivor.MapFile(db2, rw)
	if err != nil {
		t.Fatal(err)
	}
	if err := survivor.ReadBuf(sm.Base()+4096, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "db-record-1" {
		t.Fatalf("database corrupted by crash: %q", got)
	}
	// The program file was persistent too.
	if _, err := mgr.FOM.FS().Open("/prog"); err != nil {
		t.Fatalf("program file lost: %v", err)
	}
	if err := mgr.FOM.FS().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("scenario complete at virtual time %v", mgr.Clock.Now())
}
