// Command o1snap drives the persistence subsystem from the shell:
// checkpoint a simulated machine mid-trace (full snapshot or an
// incremental base+delta chain), restore a checkpoint and prove the
// rebuilt machine bit-identical, compact a chain's journal, inject a
// crash (optionally tearing the metadata journal mid-record) and
// verify recovery, or inspect a snapshot/chain file.
//
// Usage:
//
//	o1snap save -config ranges -seed 1 -ops 2000 -at 1000 -o m.snap
//	o1snap save -config fom -seed 1 -ops 2000 -incremental -deltas 3 -o m.ckpt
//	o1snap restore -i m.snap          # also accepts chain files
//	o1snap compact -i m.ckpt
//	o1snap crash -config all -seed 1 -ops 2000 -snap-at 500 -at 1500 -torn
//	o1snap info -i m.ckpt
//
// Every subcommand exits non-zero on failure; restore and crash run a
// full invariant sweep and bit-identity proof (chains additionally
// prove the assembled differential image exact), so a zero exit means
// the persistence contract held.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/check"
	"repro/internal/ckpt"
	"repro/internal/snapshot"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "save":
		err = cmdSave(os.Args[2:])
	case "restore":
		err = cmdRestore(os.Args[2:])
	case "compact":
		err = cmdCompact(os.Args[2:])
	case "crash":
		err = cmdCrash(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "o1snap %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: o1snap <save|restore|compact|crash|info> [flags]")
	os.Exit(2)
}

// traceFlags declares the flags shared by every subcommand that builds
// a machine from a seeded trace.
func traceFlags(fs *flag.FlagSet) (seed *uint64, ops, cpus *int, config *string) {
	seed = fs.Uint64("seed", 1, "random seed (determines the whole trace)")
	ops = fs.Int("ops", 2000, "trace length")
	cpus = fs.Int("cpus", 2, "CPUs per simulated machine")
	config = fs.String("config", "ranges", "configuration (baseline,fom,pbm,ranges), or comma list / 'all' where supported")
	return
}

func configList(spec string) []string {
	if spec == "all" || spec == "" {
		return check.AllConfigs
	}
	return strings.Split(spec, ",")
}

func cmdSave(args []string) error {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	seed, ops, cpus, config := traceFlags(fs)
	at := fs.Int("at", -1, "checkpoint after this many ops (default ops/2; incremental base default ops/3)")
	incremental := fs.Bool("incremental", false, "save a base + dirty-extent delta chain instead of a full snapshot")
	deltas := fs.Int("deltas", 2, "with -incremental: number of delta checkpoints between base and end of trace")
	out := fs.String("o", "machine.snap", "output file")
	_ = fs.Parse(args)
	if *incremental {
		if *at < 0 {
			*at = *ops / 3
		}
		deltaAts := spacedDeltas(*at, *ops, *deltas)
		chain, err := check.BuildChain(*config, check.Options{Seed: *seed, Ops: *ops, CPUs: *cpus}, *at, deltaAts)
		if err != nil {
			return err
		}
		if err := writeFile(*out, func(f *os.File) error { return chain.Save(f) }); err != nil {
			return err
		}
		st, _ := os.Stat(*out)
		fmt.Printf("saved %s: config=%s seed=%d base@%d deltas@%v of %d ops, %d journal records, %d bytes\n",
			*out, chain.Base.Meta.Config, chain.Base.Meta.Seed, *at, deltaAts, *ops, chain.Journal.Len(), st.Size())
		return nil
	}
	if *at < 0 {
		*at = *ops / 2
	}
	snap, err := check.BuildSnapshot(*config, check.Options{Seed: *seed, Ops: *ops, CPUs: *cpus}, *at)
	if err != nil {
		return err
	}
	if err := writeFile(*out, func(f *os.File) error { return snap.Save(f) }); err != nil {
		return err
	}
	st, _ := os.Stat(*out)
	fmt.Printf("saved %s: config=%s seed=%d snap-at=%d/%d ops, %d bytes, mem checksum %#x\n",
		*out, snap.Meta.Config, snap.Meta.Seed, snap.Meta.SnapAt, snap.Meta.TraceOps, st.Size(), snap.MemChecksum)
	return nil
}

// spacedDeltas places n delta points evenly in (base, end).
func spacedDeltas(base, end, n int) []int {
	var out []int
	last := base
	for i := 1; i <= n; i++ {
		at := base + (end-base)*i/(n+1)
		if at > last {
			out = append(out, at)
			last = at
		}
	}
	return out
}

func writeFile(path string, save func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadAny reads a persistence file, sniffing the chain magic first and
// falling back to the full-snapshot format. Exactly one return is
// non-nil on success.
func loadAny(path string) (*ckpt.Chain, *snapshot.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	chain, cerr := ckpt.Load(bytes.NewReader(data))
	if cerr == nil {
		return chain, nil, nil
	}
	if !errors.Is(cerr, ckpt.ErrNotChain) {
		return nil, nil, cerr
	}
	snap, serr := snapshot.Load(bytes.NewReader(data))
	if serr != nil {
		return nil, nil, serr
	}
	return nil, snap, nil
}

func cmdRestore(args []string) error {
	fs := flag.NewFlagSet("restore", flag.ExitOnError)
	in := fs.String("i", "machine.snap", "snapshot or chain file")
	_ = fs.Parse(args)
	chain, snap, err := loadAny(*in)
	if err != nil {
		return err
	}
	if chain != nil {
		if err := check.VerifyChain(chain); err != nil {
			return err
		}
		end := chain.Base.Meta.SnapAt + int(chain.Journal.Watermark()) + chain.Journal.Len()
		fmt.Printf("restored %s: config=%s base@%d + %d delta(s) to op %d, journal replayed to op %d/%d — machine state, differential image, and invariants all bit-identical\n",
			*in, chain.Base.Meta.Config, chain.Base.Meta.SnapAt, len(chain.Deltas),
			chain.LastUpTo(), end, chain.Base.Meta.TraceOps)
		return nil
	}
	if err := check.VerifySnapshot(snap); err != nil {
		return err
	}
	fmt.Printf("restored %s: config=%s rebuilt to op %d/%d — machine state, memory checksum, and invariants all bit-identical\n",
		*in, snap.Meta.Config, snap.Meta.SnapAt, snap.Meta.TraceOps)
	return nil
}

func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	in := fs.String("i", "machine.ckpt", "chain file")
	out := fs.String("o", "", "output file (default: rewrite in place)")
	_ = fs.Parse(args)
	if *out == "" {
		*out = *in
	}
	chain, _, err := loadAny(*in)
	if err != nil {
		return err
	}
	if chain == nil {
		return fmt.Errorf("%s is a full snapshot; only incremental chains have a journal to compact", *in)
	}
	before := chain.Journal.Len()
	upTo := uint64(chain.LastUpTo() - chain.Base.Meta.SnapAt)
	if err := chain.Journal.Compact(upTo); err != nil {
		return err
	}
	if err := writeFile(*out, func(f *os.File) error { return chain.Save(f) }); err != nil {
		return err
	}
	fmt.Printf("compacted %s: %d -> %d journal records, watermark %d (op %d, the last delta)\n",
		*out, before, chain.Journal.Len(), chain.Journal.Watermark(), chain.LastUpTo())
	return nil
}

func cmdCrash(args []string) error {
	fs := flag.NewFlagSet("crash", flag.ExitOnError)
	seed, ops, cpus, config := traceFlags(fs)
	at := fs.Int("at", -1, "crash after this many ops (default 3*ops/4)")
	snapAt := fs.Int("snap-at", -1, "checkpoint after this many ops (default at/2)")
	torn := fs.Bool("torn", false, "cut the journal mid-record at the crash point")
	_ = fs.Parse(args)
	if *at < 0 {
		*at = *ops * 3 / 4
	}
	if *snapAt < 0 {
		*snapAt = *at / 2
	}
	opts := check.Options{Seed: *seed, Ops: *ops, CPUs: *cpus, Configs: configList(*config)}
	reports, failure, err := check.CrashRecover(opts, *snapAt, *at, *torn)
	if err != nil {
		return err
	}
	if failure != nil {
		return failure
	}
	for _, r := range reports {
		fmt.Printf("%-8s snap@%d crash@%d recovered@%d: %d journal records replayed, %d torn bytes discarded, %d snapshot bytes — recovered run bit-identical to uncrashed control\n",
			r.Config, r.SnapAt, r.CrashAt, r.RecoveredAt, r.JournalRecords, r.TornBytes, r.SnapshotBytes)
	}
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "machine.snap", "snapshot or chain file")
	_ = fs.Parse(args)
	chain, snap, err := loadAny(*in)
	if err != nil {
		return err
	}
	if chain != nil {
		return chainInfo(chain)
	}
	trace, err := check.DecodeTrace(snap.Trace)
	if err != nil {
		return err
	}
	fmt.Printf("format:        full snapshot\n")
	fmt.Printf("config:        %s\n", snap.Meta.Config)
	fmt.Printf("cpus:          %d\n", snap.Meta.CPUs)
	fmt.Printf("seed:          %d\n", snap.Meta.Seed)
	fmt.Printf("snap-at:       op %d of %d\n", snap.Meta.SnapAt, snap.Meta.TraceOps)
	fmt.Printf("tier:          %v\n", snap.Meta.Tier)
	fmt.Printf("mem checksum:  %#x\n", snap.MemChecksum)
	fmt.Printf("machine:       %d CPUs captured, %d stat sets\n", len(snap.Machine.CPUs), len(snap.Machine.Stats))
	for _, c := range snap.Machine.CPUs {
		fmt.Printf("  cpu %d: clock=%d rng=%#x counters=%d\n", c.ID, int64(c.Clock), c.RNG, len(c.Counters))
	}
	fmt.Printf("trace:         %d ops (%d bytes encoded)\n", len(trace), len(snap.Trace))
	return nil
}

func chainInfo(chain *ckpt.Chain) error {
	trace, err := check.DecodeTrace(chain.Base.Trace)
	if err != nil {
		return err
	}
	meta := chain.Base.Meta
	fmt.Printf("format:        incremental chain (base + %d deltas)\n", len(chain.Deltas))
	fmt.Printf("config:        %s\n", meta.Config)
	fmt.Printf("cpus:          %d\n", meta.CPUs)
	fmt.Printf("seed:          %d\n", meta.Seed)
	fmt.Printf("tier:          %v\n", meta.Tier)
	fmt.Printf("base:          op %d of %d, %d materialized frames, mem checksum %#x\n",
		meta.SnapAt, meta.TraceOps, len(chain.BaseFrames), chain.Base.MemChecksum)
	for _, d := range chain.Deltas {
		fmt.Printf("  delta %d: up to op %d — %d dirty frames in %d units, mem checksum %#x\n",
			d.Epoch, d.UpTo, len(d.Frames), len(d.Units), d.MemChecksum)
	}
	wm := chain.Journal.Watermark()
	first := meta.SnapAt + int(wm)
	fmt.Printf("journal:       %d records (ops %d..%d), watermark %d (%d records compacted away)\n",
		chain.Journal.Len(), first, first+chain.Journal.Len(), wm, wm)
	fmt.Printf("trace:         %d ops (%d bytes encoded)\n", len(trace), len(chain.Base.Trace))
	return nil
}
