// Command o1snap drives the persistence subsystem from the shell:
// checkpoint a simulated machine mid-trace, restore a checkpoint and
// prove the rebuilt machine bit-identical, inject a crash (optionally
// tearing the metadata journal mid-record) and verify recovery, or
// inspect a snapshot file.
//
// Usage:
//
//	o1snap save -config ranges -seed 1 -ops 2000 -at 1000 -o m.snap
//	o1snap restore -i m.snap
//	o1snap crash -config all -seed 1 -ops 2000 -snap-at 500 -at 1500 -torn
//	o1snap info -i m.snap
//
// Every subcommand exits non-zero on failure; restore and crash run a
// full invariant sweep and bit-identity proof, so a zero exit means
// the persistence contract held.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/check"
	"repro/internal/snapshot"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "save":
		err = cmdSave(os.Args[2:])
	case "restore":
		err = cmdRestore(os.Args[2:])
	case "crash":
		err = cmdCrash(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "o1snap %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: o1snap <save|restore|crash|info> [flags]")
	os.Exit(2)
}

// traceFlags declares the flags shared by every subcommand that builds
// a machine from a seeded trace.
func traceFlags(fs *flag.FlagSet) (seed *uint64, ops, cpus *int, config *string) {
	seed = fs.Uint64("seed", 1, "random seed (determines the whole trace)")
	ops = fs.Int("ops", 2000, "trace length")
	cpus = fs.Int("cpus", 2, "CPUs per simulated machine")
	config = fs.String("config", "ranges", "configuration (baseline,fom,pbm,ranges), or comma list / 'all' where supported")
	return
}

func configList(spec string) []string {
	if spec == "all" || spec == "" {
		return check.AllConfigs
	}
	return strings.Split(spec, ",")
}

func cmdSave(args []string) error {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	seed, ops, cpus, config := traceFlags(fs)
	at := fs.Int("at", -1, "checkpoint after this many ops (default ops/2)")
	out := fs.String("o", "machine.snap", "output file")
	_ = fs.Parse(args)
	if *at < 0 {
		*at = *ops / 2
	}
	snap, err := check.BuildSnapshot(*config, check.Options{Seed: *seed, Ops: *ops, CPUs: *cpus}, *at)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := snap.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, _ := os.Stat(*out)
	fmt.Printf("saved %s: config=%s seed=%d snap-at=%d/%d ops, %d bytes, mem checksum %#x\n",
		*out, snap.Meta.Config, snap.Meta.Seed, snap.Meta.SnapAt, snap.Meta.TraceOps, st.Size(), snap.MemChecksum)
	return nil
}

func loadSnap(path string) (*snapshot.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return snapshot.Load(f)
}

func cmdRestore(args []string) error {
	fs := flag.NewFlagSet("restore", flag.ExitOnError)
	in := fs.String("i", "machine.snap", "snapshot file")
	_ = fs.Parse(args)
	snap, err := loadSnap(*in)
	if err != nil {
		return err
	}
	if err := check.VerifySnapshot(snap); err != nil {
		return err
	}
	fmt.Printf("restored %s: config=%s rebuilt to op %d/%d — machine state, memory checksum, and invariants all bit-identical\n",
		*in, snap.Meta.Config, snap.Meta.SnapAt, snap.Meta.TraceOps)
	return nil
}

func cmdCrash(args []string) error {
	fs := flag.NewFlagSet("crash", flag.ExitOnError)
	seed, ops, cpus, config := traceFlags(fs)
	at := fs.Int("at", -1, "crash after this many ops (default 3*ops/4)")
	snapAt := fs.Int("snap-at", -1, "checkpoint after this many ops (default at/2)")
	torn := fs.Bool("torn", false, "cut the journal mid-record at the crash point")
	_ = fs.Parse(args)
	if *at < 0 {
		*at = *ops * 3 / 4
	}
	if *snapAt < 0 {
		*snapAt = *at / 2
	}
	opts := check.Options{Seed: *seed, Ops: *ops, CPUs: *cpus, Configs: configList(*config)}
	reports, failure, err := check.CrashRecover(opts, *snapAt, *at, *torn)
	if err != nil {
		return err
	}
	if failure != nil {
		return failure
	}
	for _, r := range reports {
		fmt.Printf("%-8s snap@%d crash@%d recovered@%d: %d journal records replayed, %d torn bytes discarded, %d snapshot bytes — recovered run bit-identical to uncrashed control\n",
			r.Config, r.SnapAt, r.CrashAt, r.RecoveredAt, r.JournalRecords, r.TornBytes, r.SnapshotBytes)
	}
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "machine.snap", "snapshot file")
	_ = fs.Parse(args)
	snap, err := loadSnap(*in)
	if err != nil {
		return err
	}
	trace, err := check.DecodeTrace(snap.Trace)
	if err != nil {
		return err
	}
	fmt.Printf("config:        %s\n", snap.Meta.Config)
	fmt.Printf("cpus:          %d\n", snap.Meta.CPUs)
	fmt.Printf("seed:          %d\n", snap.Meta.Seed)
	fmt.Printf("snap-at:       op %d of %d\n", snap.Meta.SnapAt, snap.Meta.TraceOps)
	fmt.Printf("mem checksum:  %#x\n", snap.MemChecksum)
	fmt.Printf("machine:       %d CPUs captured, %d stat sets\n", len(snap.Machine.CPUs), len(snap.Machine.Stats))
	for _, c := range snap.Machine.CPUs {
		fmt.Printf("  cpu %d: clock=%d rng=%#x counters=%d\n", c.ID, int64(c.Clock), c.RNG, len(c.Counters))
	}
	fmt.Printf("trace:         %d ops (%d bytes encoded)\n", len(trace), len(snap.Trace))
	return nil
}
