// Command benchdiff compares two o1bench -benchjson reports and fails
// when wall-clock time regressed. It is the CI gate behind
// `make bench-compare`: re-measure the suite, diff against the tracked
// baseline, and refuse changes that slow any experiment (or the whole
// suite) down by more than -max-regress.
//
// Wall-clock numbers are only comparable between runs on the same host
// shape (CPU count, GOMAXPROCS, simulated CPUs, parallelism settings).
// When the shapes differ, benchdiff prints the difference and exits 0
// — a skipped comparison, not a failure — so the gate is inert on
// hosts that don't match the tracked baseline.
//
// Usage:
//
//	benchdiff -old BENCH_wallclock.json -new BENCH_wallclock.ci.json
//	benchdiff -old old.json -new new.json -max-regress 0.25 -min-ms 50
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	oldPath := flag.String("old", "", "baseline -benchjson report")
	newPath := flag.String("new", "", "candidate -benchjson report")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum tolerated slowdown (0.25 = 25%)")
	minMS := flag.Float64("min-ms", 50, "ignore experiments whose baseline wall-clock is below this (too noisy to gate on)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("both -old and -new are required")
	}

	oldRep, err := readReport(*oldPath)
	if err != nil {
		return err
	}
	newRep, err := readReport(*newPath)
	if err != nil {
		return err
	}

	if d := oldRep.ShapeMismatch(newRep); d != "" {
		fmt.Printf("benchdiff: skipping comparison, host shape differs (%s)\n", d)
		return nil
	}

	oldByID := make(map[string]float64, len(oldRep.Experiments))
	for _, e := range oldRep.Experiments {
		oldByID[e.ID] = e.WallMS
	}

	failed := 0
	var oldTotal, newTotal float64 // over experiments present in both
	var newIDs []string            // experiments with no baseline row
	for _, e := range newRep.Experiments {
		base, ok := oldByID[e.ID]
		if !ok {
			fmt.Printf("  %-16s NEW      %8.1f ms (no baseline, excluded from total)\n", e.ID, e.WallMS)
			newIDs = append(newIDs, e.ID)
			continue
		}
		oldTotal += base
		newTotal += e.WallMS
		ratio := e.WallMS / base
		status := "ok"
		if base >= *minMS && ratio > 1+*maxRegress {
			status = "REGRESSED"
			failed++
		}
		fmt.Printf("  %-16s %-9s %8.1f ms -> %8.1f ms (%+.1f%%)\n",
			e.ID, status, base, e.WallMS, (ratio-1)*100)
	}

	totalRatio := newTotal / oldTotal
	summary := fmt.Sprintf("  %-16s %-9s %8.1f ms -> %8.1f ms (%+.1f%%)",
		"TOTAL(common)", "", oldTotal, newTotal, (totalRatio-1)*100)
	if len(newIDs) > 0 {
		// Name what the total does NOT cover, so a baseline refresh that
		// picks up the new experiments is an explicit follow-up, not a
		// silent hole in the gate.
		summary += fmt.Sprintf(" [new, ungated: %s]", strings.Join(newIDs, ", "))
	}
	fmt.Println(summary)
	if totalRatio > 1+*maxRegress {
		failed++
	}

	if failed > 0 {
		return fmt.Errorf("%d wall-clock regression(s) beyond %.0f%%", failed, *maxRegress*100)
	}
	return nil
}

func readReport(path string) (*bench.SuiteReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bench.ReadSuiteReport(f)
}
