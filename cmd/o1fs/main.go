// Command o1fs is a scriptable shell for the simulated memory file
// systems: create files and directories, write and read data, set
// quotas, crash the machine and remount — watching virtual time and
// allocator state as you go.
//
// Commands come from stdin (one per line) or from -e "cmd; cmd; ...":
//
//	o1fs -e "mkdir /data; create /data/f persistent; write /data/f hello; crash; remount; read /data/f 5"
//
// Commands:
//
//	mkdir PATH                 create a directory
//	create PATH [persistent|volatile] [discardable]
//	write PATH TEXT            write TEXT at offset 0
//	append PATH TEXT           write TEXT at EOF
//	read PATH N                read and print N bytes from offset 0
//	truncate PATH PAGES        set size (extent policy preallocates)
//	ls [PATH]                  list a directory
//	stat PATH                  show inode details
//	rm PATH                    unlink
//	mv OLD NEW                 rename
//	ln OLD NEW                 hard link
//	quota PATH FRAMES          set a directory quota (0 clears)
//	usage PATH                 show quota usage
//	discard FRAMES             reclaim discardable files
//	crash                      power failure (volatile data dies)
//	remount                    recover after a crash
//	df                         free/total frames
//	time                       show virtual time
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/fsshell"
	"repro/internal/mem"
	"repro/internal/memfs"
)

func main() {
	script := flag.String("e", "", "semicolon-separated commands (default: read stdin)")
	policy := flag.String("policy", "extent", "allocation policy: extent | per-page")
	frames := flag.Uint64("frames", 1<<30>>mem.FrameShift, "file-system size in frames")
	flag.Parse()

	var pol memfs.AllocPolicy
	switch *policy {
	case "extent":
		pol = memfs.Extent
	case "per-page":
		pol = memfs.PerPage
	default:
		fmt.Fprintf(os.Stderr, "o1fs: unknown policy %q\n", *policy)
		os.Exit(1)
	}

	sh, err := fsshell.New(pol, *frames, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "o1fs:", err)
		os.Exit(1)
	}

	if *script != "" {
		for _, line := range strings.Split(*script, ";") {
			sh.ExecLine(strings.TrimSpace(line))
		}
		return
	}
	scanner := bufio.NewScanner(os.Stdin)
	for scanner.Scan() {
		sh.ExecLine(strings.TrimSpace(scanner.Text()))
	}
}
