// Command o1sim runs a configurable workload on a chosen memory
// backend and prints timing, latency and event statistics — an
// interactive way to explore the simulator beyond the fixed paper
// experiments.
//
// With -cpus N the region splits into one contiguous sub-region per
// simulated CPU and the baseline backends run the touch phase on all
// CPU contexts; -hostpar additionally runs those contexts on real host
// goroutines (simulated numbers are identical either way). The
// file-only-memory backends are O(1) per operation and run on one CPU.
//
// Usage examples:
//
//	o1sim -backend baseline -pages 4096 -pattern random -touches 100000
//	o1sim -backend baseline -pages 262144 -cpus 8 -hostpar
//	o1sim -backend fom-sharedpt -pages 8192 -pattern hot-cold -writes
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

var patterns = map[string]workload.Pattern{
	"sequential": workload.Sequential,
	"strided":    workload.Strided,
	"random":     workload.Random,
	"hot-cold":   workload.HotCold,
}

func main() {
	backend := flag.String("backend", "baseline", "baseline | baseline-populate | fom-ranges | fom-sharedpt | all")
	pages := flag.Uint64("pages", 4096, "region size in 4 KiB pages")
	patName := flag.String("pattern", "sequential", "sequential | strided | random | hot-cold")
	touches := flag.Int("touches", 0, "number of touches (default: one per page)")
	stride := flag.Uint64("stride", 8, "stride for the strided pattern")
	writes := flag.Bool("writes", false, "touch with writes instead of reads")
	seed := flag.Uint64("seed", 42, "workload RNG seed")
	cpus := flag.Int("cpus", 1, "simulated CPU count")
	hostpar := flag.Bool("hostpar", false, "run simulated CPU contexts on host goroutines (deterministic; simulated numbers unchanged)")
	flag.Parse()

	bench.SetCPUs(*cpus)
	bench.SetHostParallel(*hostpar)

	backends := []string{*backend}
	if *backend == "all" {
		backends = []string{"baseline", "baseline-populate", "fom-ranges", "fom-sharedpt"}
	}
	for i, b := range backends {
		if i > 0 {
			fmt.Println()
		}
		if err := run(b, *pages, *patName, *touches, *stride, *writes, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "o1sim:", err)
			os.Exit(1)
		}
	}
}

func run(backend string, pages uint64, patName string, touches int, stride uint64, writes bool, seed uint64) error {
	pattern, ok := patterns[patName]
	if !ok {
		return fmt.Errorf("unknown pattern %q", patName)
	}
	if touches == 0 {
		touches = int(pages)
	}
	idx, err := workload.Touches(pattern, pages, touches, stride, seed)
	if err != nil {
		return err
	}
	m, err := bench.NewMachine()
	if err != nil {
		return err
	}
	const prot = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser

	var allocCost, touchCost sim.Time
	lat := &workload.Latency{}
	var report func()

	switch backend {
	case "baseline", "baseline-populate":
		n := m.Sim.NumCPUs()
		shares := workload.Split(pages, n)
		parts := workload.Partition(idx, shares)
		if err := m.ShardPool(); err != nil {
			return err
		}
		spaces := make([]*vm.AddressSpace, n)
		vas := make([]mem.VirtAddr, n)
		m.Sim.Sync()
		t0 := m.Sim.Time()
		for i := range spaces {
			as, err := m.Kernel.NewAddressSpaceOn(m.Sim.CPU(i))
			if err != nil {
				return err
			}
			spaces[i] = as
			if shares[i] == 0 {
				continue
			}
			vas[i], err = as.Mmap(vm.MmapRequest{
				Pages: shares[i], Prot: prot, Anon: true, Private: true,
				Populate: backend == "baseline-populate",
			})
			if err != nil {
				return err
			}
		}
		m.Sim.Sync()
		allocCost = m.Sim.Time() - t0

		lats := make([]workload.Latency, n)
		t1 := m.Sim.Time()
		if err := m.Sim.RunParallel(func(c *sim.CPU) error {
			as, va, l := spaces[c.ID()], vas[c.ID()], &lats[c.ID()]
			clk := c.Clock()
			for _, p := range parts[c.ID()] {
				s := clk.Now()
				if err := as.Touch(va+mem.VirtAddr(p*mem.FrameSize), writes); err != nil {
					return err
				}
				l.Record(clk.Since(s))
			}
			return nil
		}); err != nil {
			return err
		}
		touchCost = m.Sim.Time() - t1
		for i := range lats {
			lat.Merge(&lats[i])
		}
		report = func() {
			fmt.Println("kernel:", m.Kernel.Stats())
			if n == 1 {
				fmt.Println("tlb:   ", spaces[0].TLB().Stats())
			} else {
				for i, as := range spaces {
					fmt.Printf("tlb[%d]: %s\n", i, as.TLB().Stats())
				}
			}
			mapped := uint64(0)
			for _, as := range spaces {
				mapped += as.MappedPages()
			}
			fmt.Printf("mapped pages: %d, tracked struct pages: %d (%d bytes)\n",
				mapped, m.Kernel.TrackedPages(), m.Kernel.MetadataBytes())
		}
	case "fom-ranges", "fom-sharedpt":
		mode := core.Ranges
		if backend == "fom-sharedpt" {
			mode = core.SharedPT
		}
		p, err := m.FOM.NewProcess(mode)
		if err != nil {
			return err
		}
		allocStart := m.Clock.Now()
		mp, err := p.AllocVolatile(pages, prot)
		if err != nil {
			return err
		}
		allocCost = m.Clock.Since(allocStart)
		touchStart := m.Clock.Now()
		for _, pg := range idx {
			s := m.Clock.Now()
			if err := p.Touch(mp.Base()+mem.VirtAddr(pg*mem.FrameSize), writes); err != nil {
				return err
			}
			lat.Record(m.Clock.Since(s))
		}
		touchCost = m.Clock.Since(touchStart)
		report = func() {
			fmt.Println("system:", m.FOM.Stats())
			fmt.Println("proc:  ", p.Stats())
			if mode == core.Ranges {
				fmt.Println("rtlb:  ", p.RTLB().Stats())
				fmt.Printf("range-table entries: %d\n", p.RangeTable().Len())
			} else {
				fmt.Println("tlb:   ", p.TLB().Stats())
			}
			fmt.Printf("file extents: %d\n", len(mp.File().Inode().Extents()))
		}
	default:
		return fmt.Errorf("unknown backend %q", backend)
	}

	fmt.Printf("backend=%s pages=%d (%d KB) pattern=%s touches=%d writes=%v\n",
		backend, pages, pages*4, patName, touches, writes)
	fmt.Printf("alloc+map: %v\n", allocCost)
	fmt.Printf("touch:     %v total, %.1f ns/touch\n", touchCost,
		float64(touchCost)/float64(touches))
	fmt.Printf("touch latency (ns, simulated): %v\n", lat)
	fmt.Printf("virtual time elapsed: %v (machine-wide, %d CPUs)\n", sim.Time(m.Sim.Time()), m.Sim.NumCPUs())
	report()
	return nil
}
