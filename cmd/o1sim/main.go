// Command o1sim runs a configurable workload on a chosen memory
// backend and prints timing and event statistics — an interactive way
// to explore the simulator beyond the fixed paper experiments.
//
// Usage examples:
//
//	o1sim -backend baseline -pages 4096 -pattern random -touches 100000
//	o1sim -backend fom-ranges -pages 262144 -pattern sequential
//	o1sim -backend fom-sharedpt -pages 8192 -pattern hot-cold -writes
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

var patterns = map[string]workload.Pattern{
	"sequential": workload.Sequential,
	"strided":    workload.Strided,
	"random":     workload.Random,
	"hot-cold":   workload.HotCold,
}

func main() {
	backend := flag.String("backend", "baseline", "baseline | baseline-populate | fom-ranges | fom-sharedpt | all")
	pages := flag.Uint64("pages", 4096, "region size in 4 KiB pages")
	patName := flag.String("pattern", "sequential", "sequential | strided | random | hot-cold")
	touches := flag.Int("touches", 0, "number of touches (default: one per page)")
	stride := flag.Uint64("stride", 8, "stride for the strided pattern")
	writes := flag.Bool("writes", false, "touch with writes instead of reads")
	seed := flag.Uint64("seed", 42, "workload RNG seed")
	cpus := flag.Int("cpus", 1, "simulated CPU count")
	flag.Parse()

	bench.SetCPUs(*cpus)

	backends := []string{*backend}
	if *backend == "all" {
		backends = []string{"baseline", "baseline-populate", "fom-ranges", "fom-sharedpt"}
	}
	for i, b := range backends {
		if i > 0 {
			fmt.Println()
		}
		if err := run(b, *pages, *patName, *touches, *stride, *writes, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "o1sim:", err)
			os.Exit(1)
		}
	}
}

func run(backend string, pages uint64, patName string, touches int, stride uint64, writes bool, seed uint64) error {
	pattern, ok := patterns[patName]
	if !ok {
		return fmt.Errorf("unknown pattern %q", patName)
	}
	if touches == 0 {
		touches = int(pages)
	}
	idx, err := workload.Touches(pattern, pages, touches, stride, seed)
	if err != nil {
		return err
	}
	m, err := bench.NewMachine()
	if err != nil {
		return err
	}
	const prot = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser

	var touch func(page uint64) error
	var report func()

	allocStart := m.Clock.Now()
	switch backend {
	case "baseline", "baseline-populate":
		as, err := m.Kernel.NewAddressSpace()
		if err != nil {
			return err
		}
		va, err := as.Mmap(vm.MmapRequest{
			Pages: pages, Prot: prot, Anon: true, Private: true,
			Populate: backend == "baseline-populate",
		})
		if err != nil {
			return err
		}
		touch = func(p uint64) error { return as.Touch(va+mem.VirtAddr(p*mem.FrameSize), writes) }
		report = func() {
			fmt.Println("kernel:", m.Kernel.Stats())
			fmt.Println("tlb:   ", as.TLB().Stats())
			fmt.Printf("mapped pages: %d, tracked struct pages: %d (%d bytes)\n",
				as.MappedPages(), m.Kernel.TrackedPages(), m.Kernel.MetadataBytes())
		}
	case "fom-ranges", "fom-sharedpt":
		mode := core.Ranges
		if backend == "fom-sharedpt" {
			mode = core.SharedPT
		}
		p, err := m.FOM.NewProcess(mode)
		if err != nil {
			return err
		}
		mp, err := p.AllocVolatile(pages, prot)
		if err != nil {
			return err
		}
		touch = func(pg uint64) error { return p.Touch(mp.Base()+mem.VirtAddr(pg*mem.FrameSize), writes) }
		report = func() {
			fmt.Println("system:", m.FOM.Stats())
			fmt.Println("proc:  ", p.Stats())
			if mode == core.Ranges {
				fmt.Println("rtlb:  ", p.RTLB().Stats())
				fmt.Printf("range-table entries: %d\n", p.RangeTable().Len())
			} else {
				fmt.Println("tlb:   ", p.TLB().Stats())
			}
			fmt.Printf("file extents: %d\n", len(mp.File().Inode().Extents()))
		}
	default:
		return fmt.Errorf("unknown backend %q", backend)
	}
	allocCost := m.Clock.Since(allocStart)

	touchStart := m.Clock.Now()
	for _, p := range idx {
		if err := touch(p); err != nil {
			return err
		}
	}
	touchCost := m.Clock.Since(touchStart)

	fmt.Printf("backend=%s pages=%d (%d KB) pattern=%s touches=%d writes=%v\n",
		backend, pages, pages*4, patName, touches, writes)
	fmt.Printf("alloc+map: %v\n", allocCost)
	fmt.Printf("touch:     %v total, %.1f ns/touch\n", touchCost,
		float64(touchCost)/float64(touches))
	fmt.Printf("virtual time elapsed: %v (machine-wide, %d CPUs)\n", sim.Time(m.Sim.Time()), m.Sim.NumCPUs())
	report()
	return nil
}
