// Command o1check runs the kernel invariant checker's differential
// stress harness: a seeded random operation sequence is executed
// against the selected memory-system configurations (baseline VM,
// file-only memory via read/write, PBM-mapped file-only memory in
// shared-page-table and range-translation modes, and user-mode
// software-managed memory over granted extents), with machine-wide
// invariant sweeps at a configurable interval and a full cross-
// configuration comparison of observable outcomes. On failure it
// prints the seed, a (shrunk) minimal operation trace, and the exact
// command that reproduces it, then exits non-zero.
//
// With -seeds N the harness sweeps N consecutive seeds; -hostpar (or
// an explicit -workers M) fans the sweep out over host goroutines.
// Each seed's run is fully isolated, so the verdicts are identical
// whatever the worker count.
//
// Usage:
//
//	o1check -seed 1 -ops 50000 -cpus 4
//	o1check -seed 7 -ops 20000 -config baseline,ranges -check-every 512
//	o1check -seed 3 -ops 20000 -crash-recover -repro fail.trace
//	o1check -seed 3 -ops 20000 -crash-recover -incremental
//	o1check -seed 1 -seeds 32 -ops 5000 -hostpar
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/check"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "random seed (determines the whole trace)")
		ops        = flag.Int("ops", 50000, "number of operations to generate")
		cpus       = flag.Int("cpus", 4, "CPUs per simulated machine")
		config     = flag.String("config", "all", "comma-separated configurations (baseline,fom,pbm,ranges,usermode) or 'all'")
		checkEvery   = flag.Int("check-every", 1024, "run invariant sweeps every N ops (0 = only at the end)")
		shrink       = flag.Bool("shrink", true, "shrink failing traces to a minimal reproducer")
		crashRecover = flag.Bool("crash-recover", false, "after a clean replay, checkpoint + journal + crash at a seeded op and verify recovery")
		incremental  = flag.Bool("incremental", false, "with -crash-recover: base + dirty-extent delta checkpoints with journal compaction, plus a differential-image proof")
		tiered       = flag.Bool("tier", false, "attach a tier migration engine (smart policy) to every world: frames migrate between DRAM and NVM under the trace")
		repro        = flag.String("repro", "", "on failure, write the (shrunk) failing trace to this file")
		seeds        = flag.Int("seeds", 1, "number of consecutive seeds to sweep, starting at -seed")
		workers      = flag.Int("workers", 1, "host goroutines for the seed sweep (0 = GOMAXPROCS)")
		hostpar      = flag.Bool("hostpar", false, "shorthand for -workers 0: sweep seeds on GOMAXPROCS host goroutines")
	)
	flag.Parse()

	configs := check.AllConfigs
	if *config != "all" && *config != "" {
		configs = strings.Split(*config, ",")
	}
	nWorkers := *workers
	if *hostpar && nWorkers == 1 {
		nWorkers = 0
	}
	if nWorkers == 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	reports, err := check.RunMany(check.Options{
		Seed:         *seed,
		Ops:          *ops,
		CPUs:         *cpus,
		Configs:      configs,
		CheckEvery:   *checkEvery,
		Shrink:       *shrink,
		CrashRecover: *crashRecover,
		Incremental:  *incremental,
		Tier:         *tiered,
	}, *seeds, nWorkers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "o1check: %v\n", err)
		os.Exit(2)
	}
	failed := false
	for _, report := range reports {
		fmt.Println(report.Format())
		if report.Failure == nil {
			continue
		}
		failed = true
		if *repro != "" {
			trace := report.Shrunk
			if trace == nil {
				trace = report.Trace
			}
			name := *repro
			if len(reports) > 1 {
				name = fmt.Sprintf("%s.seed%d", *repro, report.Opts.Seed)
			}
			if werr := os.WriteFile(name, check.EncodeTrace(trace), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "o1check: writing reproducer: %v\n", werr)
			} else {
				fmt.Fprintf(os.Stderr, "o1check: wrote %d-op reproducer trace to %s\n", len(trace), name)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
