// Command o1bench regenerates every table and figure of the paper's
// evaluation from the simulator. Each experiment builds a fresh
// machine, runs the paper's workload on both the baseline VM and
// file-only memory, and prints the rows the paper reports.
//
// Experiments are independent, so the suite runs on a worker pool
// (-parallel, default GOMAXPROCS). Scheduling cannot change any
// simulated number — results are printed in selection order and are
// byte-identical to a serial run.
//
// Usage:
//
//	o1bench -list             # show available experiments
//	o1bench                   # run everything
//	o1bench -e fig6a,fig9     # run selected experiments
//	o1bench -parallel 1 -benchjson BENCH_wallclock.json
//	o1bench -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"repro/internal/bench"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "o1bench:", err)
		os.Exit(1)
	}
}

func run() error {
	list := flag.Bool("list", false, "list experiments and exit")
	exps := flag.String("e", "all", "comma-separated experiment IDs, or 'all'")
	format := flag.String("format", "text", "output format: text | md")
	paramsFile := flag.String("params", "", "JSON cost-table file overriding the calibrated defaults")
	dumpParams := flag.Bool("dump-params", false, "print the default cost table as JSON and exit")
	cpus := flag.Int("cpus", 1, "simulated CPU count for every experiment machine")
	hostpar := flag.Bool("hostpar", false, "run each experiment's simulated CPU contexts on host goroutines (simulated numbers unchanged; wall-clock drops)")
	syncMode := flag.String("syncmode", "sharded", "host-parallel sync protocol: sharded (domain-scoped sync points) | global (legacy full quiescence); simulated numbers are identical")
	tierPolicy := flag.String("tier-policy", "all", "tiering experiment policy sweep: 'all' or a comma list of none,promote,demote,smart")
	fastRatio := flag.String("fast-ratio", "all", "tiering experiment fast-tier sizes: 'all' or a comma list of fractions of the working set like 1/8,1/2")
	traceFile := flag.String("trace", "", "write a runtime execution trace of the suite to this file (goroutines are labeled sim_cpu=N)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment worker count (1 = serial, enables per-experiment alloc counts)")
	benchJSON := flag.String("benchjson", "", "write per-experiment wall-clock times as JSON to this file")
	force := flag.Bool("force", false, "overwrite an existing -benchjson file even if it was measured on a differently shaped host")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the suite to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the suite) to this file")
	flag.Parse()

	bench.SetCPUs(*cpus)
	bench.SetHostParallel(*hostpar)
	switch *syncMode {
	case "sharded":
		bench.SetSyncLegacy(false)
	case "global":
		bench.SetSyncLegacy(true)
	default:
		return fmt.Errorf("unknown -syncmode %q (want sharded or global)", *syncMode)
	}
	if err := bench.SetTierPolicies(*tierPolicy); err != nil {
		return err
	}
	if err := bench.SetTierRatios(*fastRatio); err != nil {
		return err
	}

	if *dumpParams {
		def := sim.DefaultParams()
		data, err := sim.MarshalParams(&def)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	if *paramsFile != "" {
		f, err := os.Open(*paramsFile)
		if err != nil {
			return err
		}
		p, err := sim.LoadParams(f)
		f.Close()
		if err != nil {
			return err
		}
		bench.SetParams(&p)
	}

	if *list {
		fmt.Println("available experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-14s %s\n                 reproduces: %s\n", e.ID, e.Title, e.Paper)
		}
		return nil
	}

	selected, err := bench.Select(*exps)
	if err != nil {
		return fmt.Errorf("%v (try -list)", err)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return err
		}
		defer trace.Stop()
	}

	t0 := time.Now()
	reports := bench.RunSuite(selected, *parallel)
	total := time.Since(t0)

	failed := 0
	for _, r := range reports {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "o1bench: %s failed: %v\n", r.ID, r.Err)
			failed++
			continue
		}
		if *format == "md" {
			fmt.Println(r.Result.Markdown())
		} else {
			fmt.Println(r.Result.String())
		}
	}

	if *benchJSON != "" {
		suite := bench.NewSuiteReport(reports, *parallel, total)
		// Wall-clock numbers are only comparable when measured on the
		// same host shape; refuse to silently replace the tracked
		// baseline with numbers from a different one.
		if prev, err := os.Open(*benchJSON); err == nil {
			old, perr := bench.ReadSuiteReport(prev)
			prev.Close()
			if perr == nil && !*force {
				if d := suite.ShapeMismatch(old); d != "" {
					return fmt.Errorf("refusing to overwrite %s: host shape changed (%s); rerun with -force to replace the baseline", *benchJSON, d)
				}
			}
		}
		f, err := os.Create(*benchJSON)
		if err != nil {
			return err
		}
		werr := suite.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		werr := pprof.WriteHeapProfile(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}

	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}
