// Command o1bench regenerates every table and figure of the paper's
// evaluation from the simulator. Each experiment builds a fresh
// machine, runs the paper's workload on both the baseline VM and
// file-only memory, and prints the rows the paper reports.
//
// Usage:
//
//	o1bench -list             # show available experiments
//	o1bench                   # run everything
//	o1bench -e fig6a,fig9     # run selected experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/sim"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	exps := flag.String("e", "all", "comma-separated experiment IDs, or 'all'")
	format := flag.String("format", "text", "output format: text | md")
	paramsFile := flag.String("params", "", "JSON cost-table file overriding the calibrated defaults")
	dumpParams := flag.Bool("dump-params", false, "print the default cost table as JSON and exit")
	cpus := flag.Int("cpus", 1, "simulated CPU count for every experiment machine")
	flag.Parse()

	bench.SetCPUs(*cpus)

	if *dumpParams {
		def := sim.DefaultParams()
		data, err := sim.MarshalParams(&def)
		if err != nil {
			fmt.Fprintln(os.Stderr, "o1bench:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}
	if *paramsFile != "" {
		f, err := os.Open(*paramsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "o1bench:", err)
			os.Exit(1)
		}
		p, err := sim.LoadParams(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "o1bench:", err)
			os.Exit(1)
		}
		bench.SetParams(&p)
	}

	if *list {
		fmt.Println("available experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-14s %s\n                 reproduces: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var selected []bench.Experiment
	if *exps == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "o1bench: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		r, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "o1bench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		if *format == "md" {
			fmt.Println(r.Markdown())
		} else {
			fmt.Println(r.String())
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
