// Command o1trace generates and replays memory-operation traces.
//
// Generate a synthetic malloc-style trace:
//
//	o1trace gen -ops 5000 -dist small-heavy -out /tmp/heap.trace
//
// Replay it on every backend and compare:
//
//	o1trace replay -in /tmp/heap.trace
//	o1trace replay -in /tmp/heap.trace -backend fom-ranges
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

var dists = map[string]workload.SizeDist{
	"fixed":       workload.Fixed,
	"uniform":     workload.Uniform,
	"small-heavy": workload.SmallHeavy,
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "replay":
		err = runReplay(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "o1trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: o1trace gen|replay [flags] (-h for flags)")
	os.Exit(2)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	ops := fs.Int("ops", 2000, "number of operations")
	dist := fs.String("dist", "small-heavy", "size distribution: fixed | uniform | small-heavy")
	minP := fs.Uint64("min", 1, "minimum allocation pages")
	maxP := fs.Uint64("max", 512, "maximum allocation pages")
	touch := fs.Float64("touch", 0.6, "fraction of ops that touch memory")
	write := fs.Float64("write", 0.5, "fraction of touches that write")
	seed := fs.Uint64("seed", 42, "generator seed")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, ok := dists[*dist]
	if !ok {
		return fmt.Errorf("unknown distribution %q", *dist)
	}
	tr, err := trace.Generate(trace.GenSpec{
		Name:      fmt.Sprintf("%s-%dops", *dist, *ops),
		Ops:       *ops,
		SizeDist:  d,
		MinPages:  *minP,
		MaxPages:  *maxP,
		TouchFrac: *touch,
		WriteFrac: *write,
		Seed:      *seed,
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tr.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d ops\n", len(tr.Ops))
	return nil
}

func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	backend := fs.String("backend", "all", "baseline-demand | baseline-populate | fom-ranges | fom-sharedpt | all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("replay needs -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("trace %q: %d ops\n\n", tr.Name, len(tr.Ops))

	backends := []string{*backend}
	if *backend == "all" {
		backends = []string{"baseline-demand", "baseline-populate", "fom-ranges", "fom-sharedpt"}
	}
	for _, b := range backends {
		rep, err := replayOn(tr, b)
		if err != nil {
			return fmt.Errorf("%s: %w", b, err)
		}
		fmt.Println(rep)
		fmt.Println()
	}
	return nil
}

func replayOn(tr *trace.Trace, backend string) (trace.Report, error) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{
		DRAMFrames: 1 << 19, // 2 GiB
		NVMFrames:  1 << 20, // 4 GiB
	})
	if err != nil {
		return trace.Report{}, err
	}
	var target trace.Target
	switch backend {
	case "baseline-demand", "baseline-populate":
		kernel, err := vm.NewKernel(clock, &params, memory, vm.Config{PoolBase: 0, PoolFrames: 1 << 19})
		if err != nil {
			return trace.Report{}, err
		}
		as, err := kernel.NewAddressSpace()
		if err != nil {
			return trace.Report{}, err
		}
		target = trace.NewVMTarget(as, backend == "baseline-populate")
	case "fom-ranges", "fom-sharedpt":
		sys, err := core.NewSystem(clock, &params, memory, core.Options{})
		if err != nil {
			return trace.Report{}, err
		}
		mode := core.Ranges
		if backend == "fom-sharedpt" {
			mode = core.SharedPT
		}
		p, err := sys.NewProcess(mode)
		if err != nil {
			return trace.Report{}, err
		}
		target = trace.NewFOMTarget(p)
	default:
		return trace.Report{}, fmt.Errorf("unknown backend %q", backend)
	}
	return trace.Replay(tr, target, clock)
}
