# Convenience targets for the o1mem reproduction.

GO ?= go

.PHONY: all build test vet bench bench-compare experiments results profile snap clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One testing.B benchmark per paper table/figure (repository root),
# plus the tracked wall-clock baseline (serial, so allocation counts
# attribute to individual experiments).
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) run ./cmd/o1bench -parallel 1 -benchjson BENCH_wallclock.json > /dev/null

# Wall-clock regression gate: re-measure the suite and diff against
# the tracked baseline. Fails on >25% slowdown of any experiment or of
# the suite; skips (exit 0) when the host shape differs from the
# baseline's, since wall-clock numbers are not comparable across hosts.
bench-compare:
	$(GO) run ./cmd/o1bench -parallel 1 -benchjson BENCH_wallclock.new.json > /dev/null
	$(GO) run ./cmd/benchdiff -old BENCH_wallclock.json -new BENCH_wallclock.new.json -max-regress 0.25
	@rm -f BENCH_wallclock.new.json

# CPU and heap profiles of the full suite (inspect with `go tool pprof`).
profile:
	$(GO) run ./cmd/o1bench -parallel 1 -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "wrote cpu.pprof and mem.pprof; try: go tool pprof -top cpu.pprof"

# Persistence smoke: checkpoint a machine, restore it with a
# bit-identity proof, then the incremental path — base + dirty-extent
# deltas, journal compaction, differential-image restore — and finally
# crash-and-recover every configuration with a torn journal tail.
snap:
	$(GO) run ./cmd/o1snap save -config ranges -seed 1 -ops 2000 -o .o1snap.tmp
	$(GO) run ./cmd/o1snap restore -i .o1snap.tmp
	$(GO) run ./cmd/o1snap info -i .o1snap.tmp
	$(GO) run ./cmd/o1snap save -config fom -seed 1 -ops 2000 -incremental -deltas 3 -o .o1snap.tmp
	$(GO) run ./cmd/o1snap restore -i .o1snap.tmp
	$(GO) run ./cmd/o1snap compact -i .o1snap.tmp
	$(GO) run ./cmd/o1snap info -i .o1snap.tmp
	$(GO) run ./cmd/o1snap restore -i .o1snap.tmp
	@rm -f .o1snap.tmp
	$(GO) run ./cmd/o1snap crash -config all -seed 2 -ops 1500 -torn

# Regenerate every experiment as terminal tables.
experiments:
	$(GO) run ./cmd/o1bench

# Regenerate RESULTS.md (markdown version of every experiment).
results:
	$(GO) run ./cmd/o1bench -format md > RESULTS.md

# Full verification artifacts (test_output.txt, bench_output.txt).
verify:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
