// sparsegraph: the paper's motivating workload — sparse access to a
// large data set ("for sparse access to large data sets, the
// fundamental linear operation cost remains", §3).
//
// A 1 GiB adjacency array is visited by a random graph walk that
// touches a few thousand pages out of 256 Ki. The example runs the
// identical walk on three designs and prints where the time goes:
//
//   - baseline demand paging: cheap map, every first touch faults;
//   - baseline MAP_POPULATE:  linear map cost up front;
//   - file-only memory + range translations: O(1) map, no faults.
//
// go run ./examples/sparsegraph
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

const (
	regionPages = uint64(1) << 30 >> mem.FrameShift // 1 GiB
	walkSteps   = 8000
	prot        = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser
)

type result struct {
	design    string
	mapCost   sim.Time
	walkCost  sim.Time
	faults    uint64
	totalCost sim.Time
}

func main() {
	steps, err := workload.Touches(workload.Random, regionPages, walkSteps, 0, 2026)
	if err != nil {
		log.Fatal(err)
	}

	var results []result
	for _, design := range []string{"baseline demand", "baseline populate", "fom ranges"} {
		r, err := run(design, steps)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, r)
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "design\tmap\twalk\tfaults\ttotal")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%v\t%v\t%d\t%v\n", r.design, r.mapCost, r.walkCost, r.faults, r.totalCost)
	}
	w.Flush()
	fmt.Println("\nsparse walks neither amortize populate's linear map cost nor escape")
	fmt.Println("demand paging's per-touch faults; O(1) mapping wins on both ends.")
}

func run(design string, steps []uint64) (result, error) {
	m, err := bench.NewMachine()
	if err != nil {
		return result{}, err
	}
	var touch func(p uint64) error
	var faults func() uint64

	t0 := m.Clock.Now()
	switch design {
	case "baseline demand", "baseline populate":
		as, err := m.Kernel.NewAddressSpace()
		if err != nil {
			return result{}, err
		}
		va, err := as.Mmap(vm.MmapRequest{
			Pages: regionPages, Prot: prot, Anon: true, Private: true,
			Populate: design == "baseline populate",
		})
		if err != nil {
			return result{}, err
		}
		touch = func(p uint64) error { return as.Touch(va+mem.VirtAddr(p*mem.FrameSize), true) }
		faults = func() uint64 { return m.Kernel.Stats().Value("minor_faults") }
	case "fom ranges":
		p, err := m.FOM.NewProcess(core.Ranges)
		if err != nil {
			return result{}, err
		}
		mp, err := p.AllocVolatile(regionPages, prot)
		if err != nil {
			return result{}, err
		}
		touch = func(pg uint64) error { return p.Touch(mp.Base()+mem.VirtAddr(pg*mem.FrameSize), true) }
		faults = func() uint64 { return 0 } // file-only memory has no fault path
	default:
		return result{}, fmt.Errorf("unknown design %q", design)
	}
	mapCost := m.Clock.Since(t0)

	t1 := m.Clock.Now()
	for _, p := range steps {
		if err := touch(p); err != nil {
			return result{}, err
		}
	}
	walkCost := m.Clock.Since(t1)

	return result{
		design:    design,
		mapCost:   mapCost,
		walkCost:  walkCost,
		faults:    faults(),
		totalCost: mapCost + walkCost,
	}, nil
}
