// Quickstart: build a simulated machine, allocate memory as a file,
// map it in O(1), use it, and watch the costs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

func main() {
	// A machine with 1 GiB of DRAM and 4 GiB of persistent memory.
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{
		DRAMFrames: 1 << 30 >> mem.FrameShift,
		NVMFrames:  4 << 30 >> mem.FrameShift,
	})
	if err != nil {
		log.Fatal(err)
	}

	// File-only memory: all user memory is files in an extent-based
	// memory file system on NVM.
	sys, err := core.NewSystem(clock, &params, memory, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// A process using the proposed range-translation hardware.
	p, err := sys.NewProcess(core.Ranges)
	if err != nil {
		log.Fatal(err)
	}

	const prot = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser

	// Allocate 256 MiB. This is ONE extent allocation + ONE O(1)
	// epoch erase + ONE range-table insert — no per-page work.
	t0 := clock.Now()
	big, err := p.AllocVolatile(256<<20>>mem.FrameShift, prot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated+mapped 256 MiB in %v (simulated)\n", clock.Since(t0))

	// Allocate 4 KiB. Same cost — that is the point.
	t1 := clock.Now()
	small, err := p.AllocVolatile(1, prot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated+mapped   4 KiB in %v (simulated)\n", clock.Since(t1))

	// Use the memory: every byte is usable immediately, no faults.
	if err := p.WriteBuf(big.Base(), []byte("hello, O(1) memory")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 18)
	if err := p.ReadBuf(big.Base(), buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", buf)

	// Named, persistent files work the same way and survive crashes.
	state, err := sys.CreateContiguousFile("/state", 512,
		memfs.CreateOptions{Durability: memfs.Persistent}, false)
	if err != nil {
		log.Fatal(err)
	}
	stateMap, err := p.MapFile(state, prot)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.WriteBuf(stateMap.Base(), []byte("durable state")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote durable state to /state (survives Crash + Remount)")

	// Tear down: reclamation is per *file*, not per page.
	t2 := clock.Now()
	if err := p.Unmap(big); err != nil {
		log.Fatal(err)
	}
	if err := p.Unmap(small); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unmapped both in %v (simulated); free frames: %d\n",
		clock.Since(t2), sys.FreeFrames())
	fmt.Printf("total virtual time: %v\n", clock.Now())
}
