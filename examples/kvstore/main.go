// kvstore: a persistent hash-indexed key-value store built directly on
// file-only memory. The entire data structure — header, bucket array,
// and chained records — lives inside one persistent, contiguously
// allocated file mapped into the process. There is no serialization
// layer and no page cache; "opening the database" after a power
// failure is just re-mapping the file (O(1)), because the in-memory
// format *is* the durable format.
//
//	go run ./examples/kvstore
package main

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"log"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

const prot = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser

// File layout (all offsets are file-relative u64, little endian):
//
//	[0,8)    magic "o1kv0001"
//	[8,16)   record count
//	[16,24)  tail offset (next free byte)
//	[24,32)  bucket count B
//	[32,32+8B)  bucket heads (offset of first record, 0 = empty)
//	records: next u64 | keyLen u32 | valLen u32 | key | val
const (
	magic       = 0x3130766b316f3031 // arbitrary tag
	offMagic    = 0
	offCount    = 8
	offTail     = 16
	offBuckets  = 24
	bucketBase  = 32
	recordAlign = 8
)

// Store is an open handle: a process plus a mapping of the store file.
type Store struct {
	proc *core.Process
	m    *core.Mapping
}

// Create initializes a new store in f with the given bucket count.
func Create(p *core.Process, f *memfs.File, buckets uint64) (*Store, error) {
	s, err := Open(p, f)
	if err != nil {
		return nil, err
	}
	if err := s.putU64(offMagic, magic); err != nil {
		return nil, err
	}
	if err := s.putU64(offCount, 0); err != nil {
		return nil, err
	}
	if err := s.putU64(offBuckets, buckets); err != nil {
		return nil, err
	}
	tail := uint64(bucketBase + 8*buckets)
	if err := s.putU64(offTail, align(tail)); err != nil {
		return nil, err
	}
	return s, nil
}

// Open maps an existing store file. It validates the magic, which is
// the entire recovery procedure.
func Open(p *core.Process, f *memfs.File) (*Store, error) {
	m, err := p.MapFile(f, prot)
	if err != nil {
		return nil, err
	}
	return &Store{proc: p, m: m}, nil
}

// Validate checks the store header (call after Open on existing data).
func (s *Store) Validate() error {
	got, err := s.u64(offMagic)
	if err != nil {
		return err
	}
	if got != magic {
		return fmt.Errorf("kv: bad magic %#x", got)
	}
	return nil
}

func align(off uint64) uint64 {
	return (off + recordAlign - 1) &^ (recordAlign - 1)
}

func (s *Store) u64(off uint64) (uint64, error) {
	va, err := s.m.VAForOffset(off)
	if err != nil {
		return 0, err
	}
	var b [8]byte
	if err := s.proc.ReadBuf(va, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (s *Store) putU64(off, v uint64) error {
	va, err := s.m.VAForOffset(off)
	if err != nil {
		return err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return s.proc.WriteBuf(va, b[:])
}

func (s *Store) bucketOff(key string) (uint64, error) {
	buckets, err := s.u64(offBuckets)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return bucketBase + 8*(h.Sum64()%buckets), nil
}

// Put inserts or updates a key. Updates overwrite in place when the
// new value fits; otherwise a fresh record is prepended to the chain
// (the old one becomes garbage, as in a log-structured store).
func (s *Store) Put(key, val string) error {
	bOff, err := s.bucketOff(key)
	if err != nil {
		return err
	}
	// In-place update if the key exists and the value fits.
	rec, _, err := s.find(key)
	if err != nil {
		return err
	}
	if rec != 0 {
		vl, err := s.u64(rec + 8) // keyLen u32 | valLen u32 packed
		if err != nil {
			return err
		}
		oldValLen := uint64(uint32(vl >> 32))
		keyLen := uint64(uint32(vl))
		if uint64(len(val)) <= oldValLen {
			va, err := s.m.VAForOffset(rec + 16 + keyLen)
			if err != nil {
				return err
			}
			if err := s.proc.WriteBuf(va, []byte(val)); err != nil {
				return err
			}
			// Shrink the stored length (packed field rewrite).
			packed := keyLen | uint64(len(val))<<32
			return s.putU64(rec+8, packed)
		}
	}
	// Append a new record at the tail and prepend to the chain.
	tail, err := s.u64(offTail)
	if err != nil {
		return err
	}
	head, err := s.u64(bOff)
	if err != nil {
		return err
	}
	recLen := 16 + uint64(len(key)) + uint64(len(val))
	if tail+recLen > s.m.Bytes() {
		return fmt.Errorf("kv: store full (tail %d + %d > %d)", tail, recLen, s.m.Bytes())
	}
	if err := s.putU64(tail, head); err != nil {
		return err
	}
	packed := uint64(len(key)) | uint64(len(val))<<32
	if err := s.putU64(tail+8, packed); err != nil {
		return err
	}
	va, err := s.m.VAForOffset(tail + 16)
	if err != nil {
		return err
	}
	if err := s.proc.WriteBuf(va, []byte(key+val)); err != nil {
		return err
	}
	if err := s.putU64(bOff, tail); err != nil {
		return err
	}
	if err := s.putU64(offTail, align(tail+recLen)); err != nil {
		return err
	}
	if rec == 0 { // genuinely new key
		n, err := s.u64(offCount)
		if err != nil {
			return err
		}
		return s.putU64(offCount, n+1)
	}
	return nil
}

// find walks the chain for key, returning the record offset (0 if
// absent) and its value.
func (s *Store) find(key string) (uint64, string, error) {
	bOff, err := s.bucketOff(key)
	if err != nil {
		return 0, "", err
	}
	rec, err := s.u64(bOff)
	if err != nil {
		return 0, "", err
	}
	for rec != 0 {
		packed, err := s.u64(rec + 8)
		if err != nil {
			return 0, "", err
		}
		keyLen := uint64(uint32(packed))
		valLen := uint64(uint32(packed >> 32))
		buf := make([]byte, keyLen+valLen)
		va, err := s.m.VAForOffset(rec + 16)
		if err != nil {
			return 0, "", err
		}
		if err := s.proc.ReadBuf(va, buf); err != nil {
			return 0, "", err
		}
		if string(buf[:keyLen]) == key {
			return rec, string(buf[keyLen:]), nil
		}
		rec, err = s.u64(rec)
		if err != nil {
			return 0, "", err
		}
	}
	return 0, "", nil
}

// Get returns the value for key.
func (s *Store) Get(key string) (string, bool, error) {
	rec, val, err := s.find(key)
	return val, rec != 0, err
}

// Count returns the number of distinct keys.
func (s *Store) Count() (uint64, error) { return s.u64(offCount) }

func main() {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{
		DRAMFrames: 256 << 20 >> mem.FrameShift,
		NVMFrames:  2 << 30 >> mem.FrameShift,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(clock, &params, memory, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// One persistent 16 MiB extent holds the whole store.
	f, err := sys.CreateContiguousFile("/kv.db", 16<<20>>mem.FrameShift,
		memfs.CreateOptions{Durability: memfs.Persistent}, false)
	if err != nil {
		log.Fatal(err)
	}

	p1, err := sys.NewProcess(core.Ranges)
	if err != nil {
		log.Fatal(err)
	}
	st, err := Create(p1, f, 1024)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := st.Put(fmt.Sprintf("user:%d", i), fmt.Sprintf("value-%d", i*i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := st.Put("user:7", "updated"); err != nil {
		log.Fatal(err)
	}
	n, _ := st.Count()
	fmt.Printf("wrote %d keys (hash-indexed, chained buckets); virtual time %v\n", n, clock.Now())
	f.Close()

	// --- power failure ---------------------------------------------
	fmt.Println("simulating crash...")
	memory.Crash()
	if _, err := sys.Remount(); err != nil {
		log.Fatal(err)
	}

	// Recovery: open and map the file again. No log replay, no
	// deserialization — the hash table is already there.
	g, err := sys.FS().Open("/kv.db")
	if err != nil {
		log.Fatal(err)
	}
	p2, err := sys.NewProcess(core.Ranges)
	if err != nil {
		log.Fatal(err)
	}
	t0 := clock.Now()
	st2, err := Open(p2, g)
	if err != nil {
		log.Fatal(err)
	}
	if err := st2.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered by re-mapping + magic check in %v (simulated)\n", clock.Since(t0))

	n2, err := st2.Count()
	if err != nil {
		log.Fatal(err)
	}
	v, ok, err := st2.Get("user:7")
	if err != nil || !ok {
		log.Fatalf("lost key after crash: %v", err)
	}
	v999, ok999, _ := st2.Get("user:999")
	fmt.Printf("after crash: %d keys, user:7 = %q, user:999 = %q (found=%v)\n", n2, v, v999, ok999)
	if v != "updated" {
		log.Fatal("recovered stale value")
	}
	if _, miss, _ := st2.Get("no-such-key"); miss {
		log.Fatal("phantom key")
	}
	fmt.Println("OK: all data survived the crash")
}
