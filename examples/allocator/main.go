// allocator: a user-level malloc running on file-only memory.
//
// The heap carves small objects out of arena files (each arena is one
// O(1) single-extent allocation) and returns empty arenas as whole
// files — no madvise, no page-by-page trimming. The demo allocates a
// binary tree of linked nodes, tears half of it down, and shows arena
// lifecycles and costs.
//
//	go run ./examples/allocator
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/sim"
)

// node layout in simulated memory: left u64 | right u64 | value u64
const nodeSize = 24

func main() {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{
		DRAMFrames: 256 << 20 >> mem.FrameShift,
		NVMFrames:  2 << 30 >> mem.FrameShift,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(clock, &params, memory, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	p, err := sys.NewProcess(core.Ranges)
	if err != nil {
		log.Fatal(err)
	}
	h := heap.New(p)

	// Build a complete binary tree of depth 12 (4095 nodes) with raw
	// pointers stored in simulated memory.
	t0 := clock.Now()
	root, count, err := buildTree(h, p, 12, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated %d tree nodes in %v (simulated)\n", count, clock.Since(t0))
	s := h.Stats()
	fmt.Printf("heap: %d live objects, %d bytes in use, %d arenas\n",
		s.LiveObjects, s.BytesInUse, s.Arenas)

	// Walk the tree through simulated memory and sum the values.
	sum, err := sumTree(h, p, root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree sum (walked via raw pointers) = %d\n", sum)

	// Free the right half; arenas shrink only when fully empty.
	right, err := readNodeField(p, root, 8)
	if err != nil {
		log.Fatal(err)
	}
	t1 := clock.Now()
	freed, err := freeTree(h, p, mem.VirtAddr(right))
	if err != nil {
		log.Fatal(err)
	}
	if err := writeNodeField(p, root, 8, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("freed %d nodes in %v; heap now: %+v\n", freed, clock.Since(t1), h.Stats())

	// One huge allocation goes straight to its own file-backed mapping.
	big, err := h.Alloc(64 << 20)
	if err != nil {
		log.Fatal(err)
	}
	if err := h.Write(big, []byte("a 64 MiB object, one O(1) file")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("large object at %#x: %+v\n", uint64(big), h.Stats())
	if err := h.Free(big); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("total virtual time: %v\n", clock.Now())
}

func buildTree(h *heap.Heap, p *core.Process, depth int, val uint64) (mem.VirtAddr, int, error) {
	node, err := h.Alloc(nodeSize)
	if err != nil {
		return 0, 0, err
	}
	count := 1
	if err := writeNodeField(p, node, 16, val); err != nil {
		return 0, 0, err
	}
	if depth > 1 {
		left, n, err := buildTree(h, p, depth-1, val*2)
		if err != nil {
			return 0, 0, err
		}
		count += n
		right, n2, err := buildTree(h, p, depth-1, val*2+1)
		if err != nil {
			return 0, 0, err
		}
		count += n2
		if err := writeNodeField(p, node, 0, uint64(left)); err != nil {
			return 0, 0, err
		}
		if err := writeNodeField(p, node, 8, uint64(right)); err != nil {
			return 0, 0, err
		}
	}
	return node, count, nil
}

func sumTree(h *heap.Heap, p *core.Process, node mem.VirtAddr) (uint64, error) {
	if node == 0 {
		return 0, nil
	}
	left, err := readNodeField(p, node, 0)
	if err != nil {
		return 0, err
	}
	right, err := readNodeField(p, node, 8)
	if err != nil {
		return 0, err
	}
	val, err := readNodeField(p, node, 16)
	if err != nil {
		return 0, err
	}
	ls, err := sumTree(h, p, mem.VirtAddr(left))
	if err != nil {
		return 0, err
	}
	rs, err := sumTree(h, p, mem.VirtAddr(right))
	if err != nil {
		return 0, err
	}
	return val + ls + rs, nil
}

func freeTree(h *heap.Heap, p *core.Process, node mem.VirtAddr) (int, error) {
	if node == 0 {
		return 0, nil
	}
	left, err := readNodeField(p, node, 0)
	if err != nil {
		return 0, err
	}
	right, err := readNodeField(p, node, 8)
	if err != nil {
		return 0, err
	}
	n := 1
	ln, err := freeTree(h, p, mem.VirtAddr(left))
	if err != nil {
		return 0, err
	}
	rn, err := freeTree(h, p, mem.VirtAddr(right))
	if err != nil {
		return 0, err
	}
	if err := h.Free(node); err != nil {
		return 0, err
	}
	return n + ln + rn, nil
}

func writeNodeField(p *core.Process, node mem.VirtAddr, off uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return p.WriteBuf(node+mem.VirtAddr(off), b[:])
}

func readNodeField(p *core.Process, node mem.VirtAddr, off uint64) (uint64, error) {
	var b [8]byte
	if err := p.ReadBuf(node+mem.VirtAddr(off), b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}
