// multiproc: physically based mappings across many processes.
//
// Ten workers map the same 64 MiB shared file. With PBM every process
// sees the file at the *same* virtual address, so page-table subtrees
// built by the first mapper are linked (one entry write per 2 MiB) by
// everyone else, and pointers stored inside the shared region are
// valid in every process — no relocation, no fixups.
//
//	go run ./examples/multiproc
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

const prot = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser

func main() {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{
		DRAMFrames: 512 << 20 >> mem.FrameShift,
		NVMFrames:  2 << 30 >> mem.FrameShift,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(clock, &params, memory, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// One shared 64 MiB file, chunk-aligned so SharedPT processes can
	// link its page-table subtrees.
	pages := uint64(64) << 20 >> mem.FrameShift
	f, err := sys.CreateContiguousFile("/shared-region", pages,
		memfs.CreateOptions{Durability: memfs.Persistent}, true)
	if err != nil {
		log.Fatal(err)
	}

	const workers = 10
	var procs [workers]*core.Process
	var maps [workers]*core.Mapping
	for i := 0; i < workers; i++ {
		p, err := sys.NewProcess(core.SharedPT)
		if err != nil {
			log.Fatal(err)
		}
		t0 := clock.Now()
		mp, err := p.MapFile(f, prot)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("worker %d mapped 64 MiB at %#x in %v\n", i, uint64(mp.Base()), clock.Since(t0))
		procs[i], maps[i] = p, mp
	}

	// All ten addresses are identical — that is PBM.
	for i := 1; i < workers; i++ {
		if maps[i].Base() != maps[0].Base() {
			log.Fatalf("worker %d mapped at a different address", i)
		}
	}
	fmt.Println("all workers share one virtual address: pointers travel freely")

	// Worker 0 builds a linked list *of raw pointers* inside the
	// region; worker 7 follows it.
	base := maps[0].Base()
	// node layout: [next-va u64][value u64]
	writeNode := func(p *core.Process, at mem.VirtAddr, next mem.VirtAddr, val uint64) {
		var b [16]byte
		binary.LittleEndian.PutUint64(b[0:8], uint64(next))
		binary.LittleEndian.PutUint64(b[8:16], val)
		if err := p.WriteBuf(at, b[:]); err != nil {
			log.Fatal(err)
		}
	}
	const nodes = 5
	for i := 0; i < nodes; i++ {
		at := base + mem.VirtAddr(i*4096)
		next := mem.VirtAddr(0)
		if i+1 < nodes {
			next = base + mem.VirtAddr((i+1)*4096)
		}
		writeNode(procs[0], at, next, uint64(i*i))
	}

	var sum uint64
	cur := base
	for cur != 0 {
		var b [16]byte
		if err := procs[7].ReadBuf(cur, b[:]); err != nil {
			log.Fatal(err)
		}
		sum += binary.LittleEndian.Uint64(b[8:16])
		cur = mem.VirtAddr(binary.LittleEndian.Uint64(b[0:8]))
	}
	fmt.Printf("worker 7 followed worker 0's raw-pointer list: sum = %d\n", sum)

	// Show the sharing economics.
	fmt.Printf("chunks built once: %d; links installed: %d\n",
		sys.Stats().Value("chunk_builds"), sys.Stats().Value("chunk_links"))
	for i := 0; i < workers; i++ {
		if err := procs[i].Exit(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("all workers exited; total virtual time %v\n", clock.Now())
}
