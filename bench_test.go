// Benchmarks regenerating every table and figure of the paper's
// evaluation: one testing.B benchmark per experiment (see DESIGN.md §4
// for the experiment index). Host nanoseconds measure simulator
// throughput; the reproduced quantities are the *simulated* times the
// experiments print, which are deterministic. Run cmd/o1bench for the
// full tables.
package o1mem

import (
	"testing"

	"repro/internal/bench"
)

func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkFig6aMmapPopulateVsDemand regenerates Figure 1a/6a: mmap()
// latency on tmpfs with MAP_POPULATE vs demand paging across file
// sizes.
func BenchmarkFig6aMmapPopulateVsDemand(b *testing.B) { benchmarkExperiment(b, "fig6a") }

// BenchmarkFig6bTouchPopulatedVsDemand regenerates Figure 1b/6b: time
// to touch one byte of each page, pre-populated vs demand faulting.
func BenchmarkFig6bTouchPopulatedVsDemand(b *testing.B) { benchmarkExperiment(b, "fig6b") }

// BenchmarkFig7MallocVsPMFS regenerates Figure 2/7: allocating and
// writing N pages via anonymous memory vs a PMFS file.
func BenchmarkFig7MallocVsPMFS(b *testing.B) { benchmarkExperiment(b, "fig7") }

// BenchmarkFaultCounts regenerates the companion report's Figure 3:
// minor-fault counts while touching pages, malloc vs PMFS.
func BenchmarkFaultCounts(b *testing.B) { benchmarkExperiment(b, "faults") }

// BenchmarkFig8SharedMappings regenerates Figure 3/8: the cost for the
// Nth process to map a shared file with private page tables vs shared
// subtrees (PBM) vs range translations.
func BenchmarkFig8SharedMappings(b *testing.B) { benchmarkExperiment(b, "fig8") }

// BenchmarkFig9RangeTranslations regenerates Figures 4/5/9: range
// table + range TLB vs page-based translation for map, unmap and
// sparse access.
func BenchmarkFig9RangeTranslations(b *testing.B) { benchmarkExperiment(b, "fig9") }

// BenchmarkReadVsMap regenerates the §3.2/§4.3 observation that a
// read() of 16 KB beats TLB-missing mapped access.
func BenchmarkReadVsMap(b *testing.B) { benchmarkExperiment(b, "readvsmap") }

// BenchmarkO1EndToEnd regenerates the §3.1/§4.1 headline claim:
// allocate+map+first-touch cost must be independent of size for
// file-only memory while the baseline grows linearly.
func BenchmarkO1EndToEnd(b *testing.B) { benchmarkExperiment(b, "o1") }

// BenchmarkReclaim regenerates the §3.1 reclamation comparison:
// page-scanning (clock/second-chance + swap) vs whole-file discard.
func BenchmarkReclaim(b *testing.B) { benchmarkExperiment(b, "reclaim") }

// BenchmarkZeroing regenerates the §3.1 erase comparison: linear
// per-page zeroing vs the O(1) epoch erase.
func BenchmarkZeroing(b *testing.B) { benchmarkExperiment(b, "zero") }

// BenchmarkMetadata regenerates the §2 motivation: per-page struct
// page footprint vs per-file inode+extent records.
func BenchmarkMetadata(b *testing.B) { benchmarkExperiment(b, "metadata") }

// BenchmarkAblatePrecreatedPageTables measures the §3.1 pre-created
// page-table optimization: first map builds chunks, later maps link.
func BenchmarkAblatePrecreatedPageTables(b *testing.B) { benchmarkExperiment(b, "ablate-pt") }

// BenchmarkAblateHugePages measures the §3 page-size discussion:
// 4K/2M/1G mapping and TLB behaviour for a 256 MiB region.
func BenchmarkAblateHugePages(b *testing.B) { benchmarkExperiment(b, "ablate-huge") }

// BenchmarkAblateSlab measures the §3.1 suggestion to manage physical
// memory with slab techniques: slab cache vs raw buddy.
func BenchmarkAblateSlab(b *testing.B) { benchmarkExperiment(b, "ablate-slab") }

// BenchmarkAblateExtent measures per-page (tmpfs) vs extent (PMFS)
// vs single-extent + epoch-zero (file-only memory) allocation.
func BenchmarkAblateExtent(b *testing.B) { benchmarkExperiment(b, "ablate-extent") }

// BenchmarkWalkDepth regenerates the §2 depth comparison: 4/5-level
// native and virtualized (2D) walks vs a single range-table step,
// including the paper's 35-reference 5-on-5 figure.
func BenchmarkWalkDepth(b *testing.B) { benchmarkExperiment(b, "walkdepth") }

// BenchmarkPinning regenerates the §3.1/§4.1 memory-locking
// comparison: per-page mlock vs implicit file-grain pinning.
func BenchmarkPinning(b *testing.B) { benchmarkExperiment(b, "pinning") }

// BenchmarkFragmentation measures the §4.1 contiguity concern: whether
// gigabyte extents stay allocatable through malloc-style churn.
func BenchmarkFragmentation(b *testing.B) { benchmarkExperiment(b, "fragmentation") }

// BenchmarkShootdown regenerates the §3.2/§4.3 unmap claim: tearing a
// shared mapping out of many processes is per-page in the baseline and
// single-entry with ranges or shared subtrees.
func BenchmarkShootdown(b *testing.B) { benchmarkExperiment(b, "shootdown") }

// BenchmarkHeadroom regenerates the §2 memory-as-storage scenario:
// spare file-system capacity backs volatile caches until persistent
// data needs it.
func BenchmarkHeadroom(b *testing.B) { benchmarkExperiment(b, "headroom") }

// BenchmarkScale regenerates the §1/§2 capacity premise: alloc+map+
// touch stays in microseconds as the allocation grows to 1 TiB.
func BenchmarkScale(b *testing.B) { benchmarkExperiment(b, "scale") }

// BenchmarkHeapChurn regenerates the §1/§3.1 language-runtime claim:
// an arena allocator over O(1) files vs a mapping per object.
func BenchmarkHeapChurn(b *testing.B) { benchmarkExperiment(b, "heapchurn") }

// BenchmarkTiering regenerates the §3 tiered-memory sweep: migration
// policies over fast/slow frame tiers, with migration granularity set
// by each configuration's translation scheme.
func BenchmarkTiering(b *testing.B) { benchmarkExperiment(b, "tiering") }
