package o1mem

import (
	"strings"
	"testing"
)

func TestExperimentsListed(t *testing.T) {
	ids := Experiments()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for _, id := range ids {
		title, paper, err := Describe(id)
		if err != nil || title == "" || paper == "" {
			t.Fatalf("Describe(%q) = %q, %q, %v", id, title, paper, err)
		}
	}
}

func TestDescribeUnknown(t *testing.T) {
	if _, _, err := Describe("nope"); err == nil {
		t.Fatal("Describe accepted unknown id")
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Fatal("RunExperiment accepted unknown id")
	}
}

func TestRunExperimentRenders(t *testing.T) {
	out, err := RunExperiment("zero")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "epoch_erase_us") {
		t.Fatalf("unexpected output: %q", out)
	}
}
