// Package o1mem is a reproduction of "Towards O(1) Memory" (Michael M.
// Swift, HotOS 2017): file-only memory, physically based mappings, and
// range translations, built on a deterministic full-system
// memory-management simulator written in pure Go.
//
// The implementation lives under internal/:
//
//   - internal/sim        virtual clock, calibrated cost model, RNG
//   - internal/mem        physical frames, DRAM/NVM regions, O(1) erase
//   - internal/buddy      binary buddy allocator (Linux-style)
//   - internal/slab       slab object caches (Bonwick)
//   - internal/pagetable  4/5-level radix page tables, huge pages,
//     shared subtrees, pre-created tables
//   - internal/tlb        split L1 + unified L2 set-associative TLB
//   - internal/rangetable range table + range TLB (the §4.3 hardware)
//   - internal/vm         baseline Linux-like VM: VMAs, demand paging,
//     COW fork, LRU reclaim, swap
//   - internal/memfs      tmpfs (per-page) and PMFS (extent) memory
//     file systems with durability and discard
//   - internal/core       the paper's contribution: file-only memory
//   - internal/proc       process model over both backends
//   - internal/heap       user-level malloc on file-only memory
//   - internal/trace      allocation-trace record/replay
//   - internal/workload   deterministic workload generators
//   - internal/fsshell    scriptable file-system shell (cmd/o1fs)
//   - internal/bench      one experiment per paper table/figure
//
// This root package exposes the experiment registry so downstream
// tooling can regenerate the paper's evaluation without reaching into
// internal packages; cmd/o1bench, cmd/o1sim, cmd/o1trace and cmd/o1fs
// are the command-line entry points.
package o1mem

import (
	"fmt"

	"repro/internal/bench"
)

// Experiments returns the IDs of every reproduction experiment, one
// per table or figure in the paper (see DESIGN.md §4 for the index).
func Experiments() []string {
	all := bench.All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// Describe returns the title and reproduced paper artifact of an
// experiment.
func Describe(id string) (title, paper string, err error) {
	e, ok := bench.ByID(id)
	if !ok {
		return "", "", fmt.Errorf("o1mem: unknown experiment %q", id)
	}
	return e.Title, e.Paper, nil
}

// RunExperiment executes one experiment on a fresh simulated machine
// and returns its rendered tables.
func RunExperiment(id string) (string, error) {
	e, ok := bench.ByID(id)
	if !ok {
		return "", fmt.Errorf("o1mem: unknown experiment %q", id)
	}
	r, err := e.Run()
	if err != nil {
		return "", err
	}
	return r.String(), nil
}
