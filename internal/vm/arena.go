package vm

import (
	"fmt"
	"sort"

	"repro/internal/buddy"
	"repro/internal/mem"
	"repro/internal/sim"
)

// metaDomain is one frame-metadata domain: a struct-page map, the
// recycled-record pool, and a pair of LRU lists. The kernel owns the
// global domain; each carved per-CPU arena owns its own, so parallel
// CPU contexts never share metadata structures — frames are routed to
// a domain by number (Kernel.domainOf).
type metaDomain struct {
	// pages holds the struct-page analogue for tracked frames.
	pages map[mem.Frame]*PageInfo

	// sparePages recycles PageInfo records, slab-style: fault-heavy
	// experiments track and forget millions of frames, and a fresh host
	// allocation per fault (record plus rmap array) dominated the
	// profile. Recycled records keep their rmap capacity.
	sparePages []*PageInfo

	// Two-list reclaim state. The global scanner only walks the global
	// domain's lists; arena lists exist so arena-backed pages pay the
	// same per-page LRU bookkeeping cost as pool-backed ones.
	active   *pageList
	inactive *pageList
}

func newMetaDomain() metaDomain {
	return metaDomain{
		pages:    make(map[mem.Frame]*PageInfo),
		active:   newPageList(),
		inactive: newPageList(),
	}
}

// Arena is one CPU's private frame arena: a contiguous run carved out
// of the kernel's global pool whose buddy allocator charges the owning
// CPU's own (non-forwarding) clock, plus a private metadata domain.
// Address spaces homed on a CPU with a carved arena draw page-table
// nodes and anonymous frames from it, so the per-page hot paths of a
// host-parallel phase touch no cross-CPU state: each CPU allocates,
// zeroes, tracks, and frees only frames it owns.
//
// Arena allocation failures are hard errors — there is no reclaim
// trigger inside an arena. Reclaim is a cross-CPU activity by nature
// (it unmaps other address spaces); arenas exist precisely for the
// phase windows where that is forbidden.
type Arena struct {
	kernel *Kernel
	cpu    *sim.CPU
	base   mem.Frame
	frames uint64
	pool   *buddy.Allocator
	meta   metaDomain
}

// CPU returns the arena's owning CPU.
func (ar *Arena) CPU() *sim.CPU { return ar.cpu }

// FreeFrames returns the arena's free frame count.
func (ar *Arena) FreeFrames() uint64 { return ar.pool.FreeFrames() }

// TrackedPages returns the number of frames with live metadata in this
// arena's domain.
func (ar *Arena) TrackedPages() int { return len(ar.meta.pages) }

// CarveArenas splits off one arena of framesPerCPU frames per CPU from
// the kernel's global pool. It must run outside any parallel phase
// (the carving itself charges the global pool's forwarding clock), and
// before the address spaces that should use the arenas are created:
// NewAddressSpaceOn homes an address space on its CPU's arena when one
// exists. Carving twice without ReleaseArenas is an error.
func (k *Kernel) CarveArenas(framesPerCPU uint64) error {
	if len(k.arenas) != 0 {
		return fmt.Errorf("vm: arenas already carved")
	}
	if framesPerCPU == 0 {
		return fmt.Errorf("vm: zero-size arena")
	}
	cpus := k.Machine.CPUs()
	arenas := make([]*Arena, 0, len(cpus))
	undo := func() {
		for _, ar := range arenas {
			_ = k.pool.FreeRun(buddy.Run{Start: ar.base, Count: ar.frames})
		}
	}
	for _, cpu := range cpus {
		run, err := k.pool.AllocRun(framesPerCPU)
		if err != nil {
			undo()
			return fmt.Errorf("vm: carving cpu %d arena: %w", cpu.ID(), err)
		}
		pool, err := buddy.New(cpu.Clock(), k.Params, run.Start, run.Count)
		if err != nil {
			undo()
			return fmt.Errorf("vm: cpu %d arena allocator: %w", cpu.ID(), err)
		}
		arenas = append(arenas, &Arena{
			kernel: k,
			cpu:    cpu,
			base:   run.Start,
			frames: run.Count,
			pool:   pool,
			meta:   newMetaDomain(),
		})
	}
	sort.Slice(arenas, func(i, j int) bool { return arenas[i].base < arenas[j].base })
	k.arenas = arenas
	k.arenaByCPU = make([]*Arena, len(cpus))
	for _, ar := range arenas {
		k.arenaByCPU[ar.cpu.ID()] = ar
	}
	return nil
}

// ReleaseArenas returns every arena's frames to the global pool. All
// arena-backed address spaces must have been destroyed first: an arena
// with tracked pages or live allocations (page-table nodes) refuses to
// release.
func (k *Kernel) ReleaseArenas() error {
	for _, ar := range k.arenas {
		if n := len(ar.meta.pages); n != 0 {
			return fmt.Errorf("vm: cpu %d arena still tracks %d pages", ar.cpu.ID(), n)
		}
		if free := ar.pool.FreeFrames(); free != ar.frames {
			return fmt.Errorf("vm: cpu %d arena has %d frames still allocated", ar.cpu.ID(), ar.frames-free)
		}
	}
	for _, ar := range k.arenas {
		if err := k.pool.FreeRun(buddy.Run{Start: ar.base, Count: ar.frames}); err != nil {
			return err
		}
	}
	k.arenas = nil
	k.arenaByCPU = nil
	return nil
}

// ArenaFor returns cpu's carved arena, or nil when none exists.
func (k *Kernel) ArenaFor(cpu *sim.CPU) *Arena {
	if k.arenaByCPU == nil {
		return nil
	}
	return k.arenaByCPU[cpu.ID()]
}

// arenaOf routes a frame number to the arena containing it, or nil for
// the global pool. The common no-arena configuration short-circuits.
func (k *Kernel) arenaOf(f mem.Frame) *Arena {
	if len(k.arenas) == 0 {
		return nil
	}
	i := sort.Search(len(k.arenas), func(i int) bool {
		ar := k.arenas[i]
		return ar.base+mem.Frame(ar.frames) > f
	})
	if i < len(k.arenas) && f >= k.arenas[i].base {
		return k.arenas[i]
	}
	return nil
}

// domainOf returns the metadata domain owning frame f.
func (k *Kernel) domainOf(f mem.Frame) *metaDomain {
	if ar := k.arenaOf(f); ar != nil {
		return &ar.meta
	}
	return &k.meta
}

// poolFor returns the allocator owning frame f.
func (k *Kernel) poolFor(f mem.Frame) *buddy.Allocator {
	if ar := k.arenaOf(f); ar != nil {
		return ar.pool
	}
	if sp := k.slowPool; sp != nil && f >= sp.Base() && uint64(f-sp.Base()) < sp.Size() {
		return sp
	}
	return k.pool
}

// domains visits every metadata domain with a diagnostic label: the
// global one first, then arenas in base order.
func (k *Kernel) domains(fn func(label string, d *metaDomain, pool *buddy.Allocator) error) error {
	if err := fn("global", &k.meta, k.pool); err != nil {
		return err
	}
	for _, ar := range k.arenas {
		if err := fn(fmt.Sprintf("cpu %d arena", ar.cpu.ID()), &ar.meta, ar.pool); err != nil {
			return err
		}
	}
	return nil
}
