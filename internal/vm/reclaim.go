package vm

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// SwapDevice stores evicted anonymous pages. Slot contents survive in
// host memory (the device models a disk or swap partition, whose
// latency is charged per page moved).
type SwapDevice struct {
	slots    map[int][]byte
	nextSlot int
	limit    uint64 // 0 = unlimited
}

func newSwapDevice(limit uint64) *SwapDevice {
	return &SwapDevice{slots: make(map[int][]byte), limit: limit}
}

// used returns the number of occupied slots.
func (s *SwapDevice) used() int { return len(s.slots) }

func (s *SwapDevice) write(data []byte) (int, error) {
	if s.limit != 0 && uint64(len(s.slots)) >= s.limit {
		return 0, fmt.Errorf("vm: swap device full (%d slots)", s.limit)
	}
	slot := s.nextSlot
	s.nextSlot++
	cp := make([]byte, len(data))
	copy(cp, data)
	s.slots[slot] = cp
	return slot, nil
}

func (s *SwapDevice) read(slot int) ([]byte, error) {
	data, ok := s.slots[slot]
	if !ok {
		return nil, fmt.Errorf("vm: swap slot %d empty", slot)
	}
	return data, nil
}

func (s *SwapDevice) free(slot int) { delete(s.slots, slot) }

func (s *SwapDevice) has(slot int) bool {
	_, ok := s.slots[slot]
	return ok
}

// SwapUsed returns the number of pages currently in swap.
func (k *Kernel) SwapUsed() int { return k.swap.used() }

// ReclaimPages runs the two-list scanner on cur until it has freed
// want frames (or candidates run out), returning the number freed. The
// per-page scanning work — examine flags, clear referenced bits,
// unmap, write to swap — is exactly the linear reclamation cost
// file-only memory eliminates (§3.1 "The operating system does not
// scan for idle pages to reclaim"). Only the global domain's lists are
// scanned: per-CPU arenas have no reclaim (their exhaustion is a hard
// error), because eviction unmaps arbitrary address spaces — an
// inherently cross-CPU activity.
func (k *Kernel) ReclaimPages(cur *sim.CPU, want uint64) (uint64, error) {
	var freed uint64
	// Refill the inactive list from the active list when it runs dry,
	// demoting pages whose referenced bit has been cleared.
	budget := (k.meta.active.len() + k.meta.inactive.len()) * 3
	for freed < want && budget > 0 {
		budget--
		k.cReclaimScans.Inc()
		k.chargeMeta(cur, 1)
		p := k.meta.inactive.popFront()
		if p == nil {
			if k.meta.active.len() == 0 {
				break
			}
			// Demote one active page per refill step. PGActive is
			// cleared only on actual demotion: a referenced page
			// rotates on the active list and must keep the flag.
			ap := k.meta.active.popFront()
			if ap.Flags&PGReferenced != 0 {
				ap.Flags &^= PGReferenced
				k.meta.active.pushBack(ap)
			} else {
				ap.Flags &^= PGActive
				k.meta.inactive.pushBack(ap)
			}
			continue
		}
		if p.Flags&(PGMlocked|PGPinned) != 0 {
			// Unevictable: park on the active list.
			k.lruActivate(cur, p)
			continue
		}
		if p.Flags&PGReferenced != 0 {
			// Second chance: promote.
			p.Flags &^= PGReferenced
			k.lruActivate(cur, p)
			continue
		}
		n, err := k.evictPage(cur, p)
		if err != nil {
			return freed, err
		}
		freed += n
	}
	k.stats.Counter("reclaimed_pages").Add(freed)
	return freed, nil
}

// evictPage unmaps a page everywhere and frees its frame, swapping out
// anonymous contents first. All work is charged to cur, the reclaiming
// CPU.
func (k *Kernel) evictPage(cur *sim.CPU, p *PageInfo) (uint64, error) {
	// Unmap from every address space via the reverse map. The snapshot
	// lives in a kernel scratch buffer (delRmap below mutates p.rmap,
	// and evictPage never nests).
	rmap := append(k.rmapScratch[:0], p.rmap...)
	k.rmapScratch = rmap[:0]
	frame := p.Frame
	anon := p.Flags&PGAnon != 0
	if anon && len(rmap) > 1 {
		// COW-shared anonymous page: swap-slot sharing is not worth
		// modelling; keep it resident.
		k.lruActivate(cur, p)
		return 0, nil
	}

	var slot int
	if anon {
		data := make([]byte, mem.FrameSize)
		k.Memory.ReadAt(frame.Addr(), data)
		var err error
		slot, err = k.swap.write(data)
		if err != nil {
			// Swap full: keep the page (rotate to active to avoid
			// rescanning immediately).
			k.lruActivate(cur, p)
			return 0, nil
		}
		cur.Advance(k.Params.SwapPageIO)
		k.stats.Counter("swapouts").Inc()
	}

	for _, e := range rmap {
		if _, _, err := e.as.pt.Unmap(cur, e.va); err != nil {
			return 0, err
		}
		// The reclaiming CPU shoots the translation down on every CPU
		// the victim address space has run on.
		e.as.shootdownVA(cur, e.va)
		if err := k.delRmap(cur, p, e.as, e.va); err != nil {
			return 0, err
		}
		if anon {
			e.as.swapped[e.va] = slot
		}
	}
	k.forgetPage(cur, p)
	if anon {
		if err := k.freeAnonFrame(frame); err != nil {
			return 0, err
		}
		return 1, nil
	}
	// File page: storage stays in the file; only the mapping is torn
	// down, freeing no pool frames but reducing resident pressure.
	return 0, nil
}
