package vm

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

const ro = pagetable.FlagRead | pagetable.FlagUser

// newSMPMachine builds a kernel on an explicit n-CPU machine.
func newSMPMachine(t *testing.T, n int, seed uint64) (*sim.Machine, *Kernel) {
	t.Helper()
	params := sim.DefaultParams()
	machine := sim.NewMachine(&params, n, seed)
	clock := machine.Clock()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: 32768, NVMFrames: 16384})
	if err != nil {
		t.Fatal(err)
	}
	kernel, err := NewKernel(clock, &params, memory, Config{PoolBase: 0, PoolFrames: 32768})
	if err != nil {
		t.Fatal(err)
	}
	return machine, kernel
}

func TestPerCPUTLBsAreIndependent(t *testing.T) {
	machine, kernel := newSMPMachine(t, 4, 0)
	if len(kernel.tlbs) != 4 {
		t.Fatalf("kernel has %d TLBs, want 4", len(kernel.tlbs))
	}
	as, err := kernel.NewAddressSpace()
	if err != nil {
		t.Fatal(err)
	}
	va, err := as.Mmap(MmapRequest{Pages: 4, Prot: rw, Anon: true, Private: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Touch(va, true); err != nil {
		t.Fatal(err)
	}
	// The touch cached the translation only on the AS's home CPU.
	home := as.CPU()
	if _, ok := kernel.TLBFor(home).Peek(as.ASID(), va); !ok {
		t.Fatal("translation not cached on home CPU")
	}
	for _, cpu := range machine.Others(home) {
		if _, ok := kernel.TLBFor(cpu).Peek(as.ASID(), va); ok {
			t.Fatalf("translation leaked into CPU %d's TLB", cpu.ID())
		}
	}
}

func TestShootdownReachesEveryCPUTheASRanOn(t *testing.T) {
	machine, kernel := newSMPMachine(t, 4, 0)
	as, err := kernel.NewAddressSpace()
	if err != nil {
		t.Fatal(err)
	}
	va, err := as.Mmap(MmapRequest{Pages: 2, Prot: rw, Anon: true, Private: true})
	if err != nil {
		t.Fatal(err)
	}
	// Run (and fault) on every CPU so each TLB caches both pages.
	for _, cpu := range machine.CPUs() {
		as.RunOn(cpu)
		for p := uint64(0); p < 2; p++ {
			if err := as.Touch(va+mem.VirtAddr(p*mem.FrameSize), true); err != nil {
				t.Fatal(err)
			}
		}
		if _, ok := kernel.TLBFor(cpu).Peek(as.ASID(), va); !ok {
			t.Fatalf("CPU %d did not cache the translation", cpu.ID())
		}
	}
	sent0 := machine.CPUs()[3].Stats().Value("ipis_sent")
	if err := as.Munmap(va, 2); err != nil {
		t.Fatal(err)
	}
	for _, cpu := range machine.CPUs() {
		if _, ok := kernel.TLBFor(cpu).Peek(as.ASID(), va); ok {
			t.Fatalf("stale translation on CPU %d after munmap", cpu.ID())
		}
	}
	// The unmap ran on the AS's current home (CPU 3 after the loop) and
	// must have IPI'd the other three CPUs — once: the burst's
	// invalidations coalesce into a single shootdown round (the
	// mmu_gather batching), not one round per page.
	if got := machine.CPUs()[3].Stats().Value("ipis_sent") - sent0; got != 3 {
		t.Fatalf("ipis_sent = %d, want 3 (one coalesced round to 3 remote CPUs)", got)
	}
}

// TestNoStaleTranslationsQuickProperty is the ISSUE's property test:
// after any random interleaving of map/unmap/protect (with touches from
// random CPUs in between), no CPU's TLB holds a stale translation —
// every unmapped page is absent from all TLBs, and no TLB entry for a
// read-only page still carries the write flag.
func TestNoStaleTranslationsQuickProperty(t *testing.T) {
	const cpus = 4
	fn := func(seed uint64) bool {
		machine, kernel := newSMPMachine(t, cpus, seed)
		rng := sim.NewRNG(seed)

		type region struct {
			as    *AddressSpace
			va    mem.VirtAddr
			pages uint64
			prot  pagetable.Flags
		}
		var spaces []*AddressSpace
		for i := 0; i < 3; i++ {
			as, err := kernel.NewAddressSpace()
			if err != nil {
				t.Log(err)
				return false
			}
			spaces = append(spaces, as)
		}
		var regions []region
		// Place regions at spaced fixed addresses so adjacent VMAs never
		// merge (mprotect below covers exactly one VMA).
		nextVA := mem.VirtAddr(1) << 32

		checkNoStale := func(r region, unmapped bool) bool {
			for _, cpu := range machine.CPUs() {
				for p := uint64(0); p < r.pages; p++ {
					tr, ok := kernel.TLBFor(cpu).Peek(r.as.ASID(), r.va+mem.VirtAddr(p*mem.FrameSize))
					if !ok {
						continue
					}
					if unmapped {
						t.Logf("stale translation for unmapped %#x on CPU %d", uint64(r.va), cpu.ID())
						return false
					}
					if tr.Flags&pagetable.FlagWrite != 0 && r.prot&pagetable.FlagWrite == 0 {
						t.Logf("stale writable translation for read-only %#x on CPU %d", uint64(r.va), cpu.ID())
						return false
					}
				}
			}
			return true
		}

		for step := 0; step < 120; step++ {
			as := spaces[rng.Intn(len(spaces))]
			switch rng.Intn(4) {
			case 0: // map a fresh region
				pages := uint64(1 + rng.Intn(8))
				addr := nextVA
				nextVA += 64 * mem.FrameSize
				va, err := as.Mmap(MmapRequest{Addr: addr, Pages: pages, Prot: rw, Anon: true, Private: true})
				if err != nil {
					t.Log(err)
					return false
				}
				regions = append(regions, region{as: as, va: va, pages: pages, prot: rw})
			case 1: // touch from a random CPU
				if len(regions) == 0 {
					continue
				}
				r := regions[rng.Intn(len(regions))]
				r.as.RunOn(machine.CPU(rng.Intn(cpus)))
				va := r.va + mem.VirtAddr(uint64(rng.Intn(int(r.pages)))*mem.FrameSize)
				if err := r.as.Touch(va, r.prot&pagetable.FlagWrite != 0); err != nil {
					t.Log(err)
					return false
				}
			case 2: // unmap
				if len(regions) == 0 {
					continue
				}
				i := rng.Intn(len(regions))
				r := regions[i]
				if err := r.as.Munmap(r.va, r.pages); err != nil {
					t.Log(err)
					return false
				}
				regions = append(regions[:i], regions[i+1:]...)
				if !checkNoStale(r, true) {
					return false
				}
			case 3: // drop write permission
				if len(regions) == 0 {
					continue
				}
				r := &regions[rng.Intn(len(regions))]
				if err := r.as.Mprotect(r.va, r.pages, ro); err != nil {
					t.Log(err)
					return false
				}
				r.prot = ro
				if !checkNoStale(*r, false) {
					return false
				}
			}
		}
		// Final sweep: every live region's cached entries must match its
		// protection; then unmap everything and require empty TLBs.
		for _, r := range regions {
			if !checkNoStale(r, false) {
				return false
			}
			if err := r.as.Munmap(r.va, r.pages); err != nil {
				t.Log(err)
				return false
			}
			if !checkNoStale(r, true) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
