package vm

import (
	"testing"

	"repro/internal/mem"
)

// TestRecycleScrubsPoisonedPageInfo poisons the hidden capacity of
// live rmap backing arrays — the exact state a partial scrub used to
// leak — then recycles the records and asserts no poison survives
// into the spare pool.
func TestRecycleScrubsPoisonedPageInfo(t *testing.T) {
	_, kernel := newSMPMachine(t, 1, 0)
	as, err := kernel.NewAddressSpace()
	if err != nil {
		t.Fatal(err)
	}
	va, err := as.Mmap(MmapRequest{Pages: 4, Prot: rw, Anon: true, Populate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(kernel.meta.pages) == 0 {
		t.Fatal("populate tracked no pages")
	}
	// Poison: stale entries past the rmap's length, holding a live
	// address-space pointer and a bogus va. A reset that only truncates
	// the slice would retain both.
	for _, pi := range kernel.meta.pages {
		n := len(pi.rmap)
		pi.rmap = append(pi.rmap, rmapEntry{as: as, va: 0xdead000})[:n]
	}
	if err := as.Munmap(va, 4); err != nil {
		t.Fatal(err)
	}
	if len(kernel.meta.sparePages) == 0 {
		t.Fatal("munmap recycled no PageInfo records")
	}
	if err := kernel.SpareScrubbed(); err != nil {
		t.Fatalf("poison survived recycling: %v", err)
	}
	for i, p := range kernel.meta.sparePages {
		for j, e := range p.rmap[:cap(p.rmap)] {
			if e.as != nil || e.va != 0 {
				t.Fatalf("spare %d retains poisoned rmap entry %d: %+v", i, j, e)
			}
		}
	}
}

// TestSpareScrubbedDetectsPoison is the negative control: a poisoned
// spare must be reported, or the scrub assertions prove nothing.
func TestSpareScrubbedDetectsPoison(t *testing.T) {
	_, kernel := newSMPMachine(t, 1, 0)
	poisoned := &PageInfo{}
	poisoned.rmap = append(poisoned.rmap, rmapEntry{va: mem.VirtAddr(0x1000)})[:0]
	kernel.meta.sparePages = append(kernel.meta.sparePages, poisoned)
	if err := kernel.SpareScrubbed(); err == nil {
		t.Fatal("poisoned spare PageInfo went undetected")
	}
	kernel.meta.sparePages = nil
	kernel.meta.sparePages = append(kernel.meta.sparePages, &PageInfo{Frame: 7})
	if err := kernel.SpareScrubbed(); err == nil {
		t.Fatal("non-zero spare PageInfo field went undetected")
	}
}
