package vm

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// machine bundles a small simulated machine for VM tests.
type machine struct {
	clock  *sim.Clock
	params sim.Params
	memory *mem.Memory
	kernel *Kernel
	fs     *memfs.FS // tmpfs over part of DRAM-adjacent NVM space
}

func newMachine(t *testing.T, poolFrames uint64) *machine {
	t.Helper()
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: poolFrames, NVMFrames: 16384})
	if err != nil {
		t.Fatal(err)
	}
	kernel, err := NewKernel(clock, &params, memory, Config{PoolBase: 0, PoolFrames: poolFrames, LowWater: poolFrames / 8})
	if err != nil {
		t.Fatal(err)
	}
	nvm, _ := memory.Region(mem.NVM)
	fs, err := memfs.New("tmpfs", memfs.PerPage, clock, &params, memory, nvm.Start, nvm.Count)
	if err != nil {
		t.Fatal(err)
	}
	return &machine{clock: clock, params: params, memory: memory, kernel: kernel, fs: fs}
}

const rw = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser

func TestAnonMmapDemandFaulting(t *testing.T) {
	m := newMachine(t, 4096)
	as, err := m.kernel.NewAddressSpace()
	if err != nil {
		t.Fatal(err)
	}
	va, err := as.Mmap(MmapRequest{Pages: 16, Prot: rw, Anon: true, Private: true})
	if err != nil {
		t.Fatal(err)
	}
	if as.MappedPages() != 0 {
		t.Fatalf("demand mapping pre-populated %d pages", as.MappedPages())
	}
	for i := uint64(0); i < 16; i++ {
		if err := as.Touch(va+mem.VirtAddr(i*mem.FrameSize), true); err != nil {
			t.Fatalf("touch page %d: %v", i, err)
		}
	}
	if got := m.kernel.Stats().Value("minor_faults"); got != 16 {
		t.Fatalf("minor faults = %d, want 16", got)
	}
	if as.MappedPages() != 16 {
		t.Fatalf("mapped pages = %d", as.MappedPages())
	}
	// Second touches hit the TLB: no more faults.
	for i := uint64(0); i < 16; i++ {
		if err := as.Touch(va+mem.VirtAddr(i*mem.FrameSize), false); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.kernel.Stats().Value("minor_faults"); got != 16 {
		t.Fatalf("refault: minor faults = %d", got)
	}
}

func TestPopulateAvoidsFaults(t *testing.T) {
	m := newMachine(t, 4096)
	as, _ := m.kernel.NewAddressSpace()
	va, err := as.Mmap(MmapRequest{Pages: 32, Prot: rw, Anon: true, Populate: true})
	if err != nil {
		t.Fatal(err)
	}
	if as.MappedPages() != 32 {
		t.Fatalf("populate mapped %d pages, want 32", as.MappedPages())
	}
	for i := uint64(0); i < 32; i++ {
		if err := as.Touch(va+mem.VirtAddr(i*mem.FrameSize), true); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.kernel.Stats().Value("minor_faults"); got != 0 {
		t.Fatalf("faults after populate = %d, want 0", got)
	}
}

func TestDemandTouchCostlierThanPopulatedTouch(t *testing.T) {
	// The Figure 6b comparison in miniature: per-page access cost with
	// demand faulting must far exceed pre-populated access.
	m := newMachine(t, 8192)
	as, _ := m.kernel.NewAddressSpace()

	pop, err := as.Mmap(MmapRequest{Pages: 64, Prot: rw, Anon: true, Populate: true})
	if err != nil {
		t.Fatal(err)
	}
	t0 := m.clock.Now()
	for i := uint64(0); i < 64; i++ {
		if err := as.Touch(pop+mem.VirtAddr(i*mem.FrameSize), false); err != nil {
			t.Fatal(err)
		}
	}
	popCost := m.clock.Since(t0)

	dem, err := as.Mmap(MmapRequest{Pages: 64, Prot: rw, Anon: true})
	if err != nil {
		t.Fatal(err)
	}
	t1 := m.clock.Now()
	for i := uint64(0); i < 64; i++ {
		if err := as.Touch(dem+mem.VirtAddr(i*mem.FrameSize), true); err != nil {
			t.Fatal(err)
		}
	}
	demCost := m.clock.Since(t1)

	if demCost < 20*popCost {
		t.Fatalf("demand/populated touch ratio = %.1f, want > 20 (demand %v, populated %v)",
			float64(demCost)/float64(popCost), demCost, popCost)
	}
}

func TestFileMappingReadsFileData(t *testing.T) {
	m := newMachine(t, 4096)
	as, _ := m.kernel.NewAddressSpace()
	f, err := m.fs.Create("/data", memfs.CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte{0xA5}, 3*mem.FrameSize)
	if _, err := f.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
	va, err := as.Mmap(MmapRequest{Pages: 3, Prot: pagetable.FlagRead | pagetable.FlagUser, File: f})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(content))
	if err := as.ReadBuf(va, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("mapped file data mismatch")
	}
}

func TestSharedFileMappingWritesThrough(t *testing.T) {
	m := newMachine(t, 4096)
	as, _ := m.kernel.NewAddressSpace()
	f, _ := m.fs.Create("/shared", memfs.CreateOptions{})
	f.Truncate(mem.FrameSize)
	va, err := as.Mmap(MmapRequest{Pages: 1, Prot: rw, File: f})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBuf(va, []byte("through")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "through" {
		t.Fatalf("file saw %q", buf)
	}
}

func TestPrivateFileMappingCOW(t *testing.T) {
	m := newMachine(t, 4096)
	as, _ := m.kernel.NewAddressSpace()
	f, _ := m.fs.Create("/cow", memfs.CreateOptions{})
	if _, err := f.WriteAt([]byte("original"), 0); err != nil {
		t.Fatal(err)
	}
	va, err := as.Mmap(MmapRequest{Pages: 1, Prot: rw, File: f, Private: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBuf(va, []byte("modified")); err != nil {
		t.Fatal(err)
	}
	// Mapping sees the modification...
	got := make([]byte, 8)
	if err := as.ReadBuf(va, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "modified" {
		t.Fatalf("mapping reads %q", got)
	}
	// ...but the file does not.
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("private write leaked to file: %q", got)
	}
	if m.kernel.Stats().Value("cow_breaks") == 0 {
		t.Fatal("no COW break recorded")
	}
}

func TestProtectionViolations(t *testing.T) {
	m := newMachine(t, 4096)
	as, _ := m.kernel.NewAddressSpace()
	ro, err := as.Mmap(MmapRequest{Pages: 1, Prot: pagetable.FlagRead | pagetable.FlagUser, Anon: true})
	if err != nil {
		t.Fatal(err)
	}
	var ae *AccessError
	if err := as.Touch(ro, true); !errors.As(err, &ae) {
		t.Fatalf("write to RO mapping: err = %v, want AccessError", err)
	}
	if err := as.Touch(0xDEAD000, false); !errors.As(err, &ae) {
		t.Fatalf("unmapped touch: err = %v", err)
	}
	// Write fault on a populated read-only PTE (not just VMA check).
	if err := as.Touch(ro, false); err != nil {
		t.Fatal(err)
	}
	if err := as.Touch(ro, true); !errors.As(err, &ae) {
		t.Fatalf("write to present RO page: err = %v", err)
	}
}

func TestMunmapFreesMemory(t *testing.T) {
	m := newMachine(t, 4096)
	as, _ := m.kernel.NewAddressSpace()
	free0 := m.kernel.FreePoolFrames()
	va, _ := as.Mmap(MmapRequest{Pages: 64, Prot: rw, Anon: true, Populate: true})
	if err := as.Munmap(va, 64); err != nil {
		t.Fatal(err)
	}
	if as.VMACount() != 0 || as.MappedPages() != 0 {
		t.Fatalf("VMAs=%d mapped=%d after munmap", as.VMACount(), as.MappedPages())
	}
	// Page-table nodes may persist; frames for data must be back.
	if got := m.kernel.FreePoolFrames(); got < free0-8 {
		t.Fatalf("frames not freed: %d -> %d", free0, got)
	}
	if m.kernel.TrackedPages() != 0 {
		t.Fatalf("%d pages still tracked", m.kernel.TrackedPages())
	}
}

func TestMunmapPartialSplitsVMA(t *testing.T) {
	m := newMachine(t, 4096)
	as, _ := m.kernel.NewAddressSpace()
	va, _ := as.Mmap(MmapRequest{Pages: 10, Prot: rw, Anon: true, Populate: true})
	// Unmap the middle 4 pages.
	if err := as.Munmap(va+3*mem.FrameSize, 4); err != nil {
		t.Fatal(err)
	}
	if as.VMACount() != 2 {
		t.Fatalf("VMAs = %d after split, want 2", as.VMACount())
	}
	// Outer pages still accessible; middle faults SEGV-free as anon
	// VMAs are gone.
	if err := as.Touch(va, false); err != nil {
		t.Fatal(err)
	}
	if err := as.Touch(va+9*mem.FrameSize, false); err != nil {
		t.Fatal(err)
	}
	var ae *AccessError
	if err := as.Touch(va+4*mem.FrameSize, false); !errors.As(err, &ae) {
		t.Fatalf("middle still mapped: %v", err)
	}
}

func TestMunmapUnmappedFails(t *testing.T) {
	m := newMachine(t, 1024)
	as, _ := m.kernel.NewAddressSpace()
	if err := as.Munmap(0x5000, 1); err == nil {
		t.Fatal("munmap of nothing succeeded")
	}
}

func TestVMAMerging(t *testing.T) {
	m := newMachine(t, 4096)
	as, _ := m.kernel.NewAddressSpace()
	va1, _ := as.Mmap(MmapRequest{Pages: 4, Prot: rw, Anon: true})
	va2, _ := as.Mmap(MmapRequest{Pages: 4, Prot: rw, Anon: true})
	if va2 != va1+4*mem.FrameSize {
		t.Fatalf("allocations not adjacent: %#x then %#x", uint64(va1), uint64(va2))
	}
	if as.VMACount() != 1 {
		t.Fatalf("adjacent identical anon VMAs not merged: %d", as.VMACount())
	}
	// Different protection must not merge.
	if _, err := as.Mmap(MmapRequest{Pages: 4, Prot: pagetable.FlagRead | pagetable.FlagUser, Anon: true}); err != nil {
		t.Fatal(err)
	}
	if as.VMACount() != 2 {
		t.Fatalf("VMAs = %d, want 2", as.VMACount())
	}
}

func TestMprotect(t *testing.T) {
	m := newMachine(t, 4096)
	as, _ := m.kernel.NewAddressSpace()
	va, _ := as.Mmap(MmapRequest{Pages: 4, Prot: rw, Anon: true, Populate: true})
	if err := as.WriteBuf(va, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := as.Mprotect(va, 4, pagetable.FlagRead|pagetable.FlagUser); err != nil {
		t.Fatal(err)
	}
	var ae *AccessError
	if err := as.Touch(va, true); !errors.As(err, &ae) {
		t.Fatalf("write after mprotect(RO): %v", err)
	}
	if err := as.Touch(va, false); err != nil {
		t.Fatalf("read after mprotect: %v", err)
	}
}

func TestMadviseDontneed(t *testing.T) {
	m := newMachine(t, 4096)
	as, _ := m.kernel.NewAddressSpace()
	va, _ := as.Mmap(MmapRequest{Pages: 8, Prot: rw, Anon: true, Populate: true})
	if err := as.WriteBuf(va, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := as.MadviseDontneed(va, 8); err != nil {
		t.Fatal(err)
	}
	if as.MappedPages() != 0 {
		t.Fatalf("pages mapped after DONTNEED: %d", as.MappedPages())
	}
	// Region still valid; refault reads zeros.
	b, err := as.ReadByteAt(va)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0 {
		t.Fatalf("refault read %#x, want 0", b)
	}
}

func TestForkCOWSemantics(t *testing.T) {
	m := newMachine(t, 4096)
	parent, _ := m.kernel.NewAddressSpace()
	va, _ := parent.Mmap(MmapRequest{Pages: 2, Prot: rw, Anon: true, Private: true})
	if err := parent.WriteBuf(va, []byte("parent data")); err != nil {
		t.Fatal(err)
	}
	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	// Child sees parent's data.
	got := make([]byte, 11)
	if err := child.ReadBuf(va, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "parent data" {
		t.Fatalf("child reads %q", got)
	}
	// Child writes don't affect the parent.
	if err := child.WriteBuf(va, []byte("child! data")); err != nil {
		t.Fatal(err)
	}
	if err := parent.ReadBuf(va, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "parent data" {
		t.Fatalf("parent sees child write: %q", got)
	}
	// Parent writes after fork don't affect child.
	if err := parent.WriteBuf(va+mem.FrameSize, []byte("p2")); err != nil {
		t.Fatal(err)
	}
	if err := child.ReadBuf(va+mem.FrameSize, got[:2]); err != nil {
		t.Fatal(err)
	}
	if string(got[:2]) == "p2" {
		t.Fatal("child sees parent's post-fork write")
	}
	if m.kernel.Stats().Value("cow_breaks") == 0 {
		t.Fatal("fork writes caused no COW breaks")
	}
	if err := child.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Destroy(); err != nil {
		t.Fatal(err)
	}
	if m.kernel.TrackedPages() != 0 {
		t.Fatalf("%d pages tracked after both exits", m.kernel.TrackedPages())
	}
}

func TestReclaimSwapsOutAndBack(t *testing.T) {
	// Pool sized so the second mapping forces reclaim of the first.
	m := newMachine(t, 160)
	as, _ := m.kernel.NewAddressSpace()
	va1, err := as.Mmap(MmapRequest{Pages: 64, Prot: rw, Anon: true})
	if err != nil {
		t.Fatal(err)
	}
	pattern := bytes.Repeat([]byte{0x5A}, 64*mem.FrameSize)
	if err := as.WriteBuf(va1, pattern); err != nil {
		t.Fatal(err)
	}
	// Pressure: allocate more than remains.
	va2, err := as.Mmap(MmapRequest{Pages: 96, Prot: rw, Anon: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBuf(va2, bytes.Repeat([]byte{0x11}, 96*mem.FrameSize)); err != nil {
		t.Fatalf("allocation under pressure failed: %v", err)
	}
	if m.kernel.Stats().Value("swapouts") == 0 {
		t.Fatal("no pages swapped out under pressure")
	}
	// First region must read back intact (major faults).
	got := make([]byte, len(pattern))
	if err := as.ReadBuf(va1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern) {
		t.Fatal("data corrupted across swap")
	}
	if m.kernel.Stats().Value("major_faults") == 0 {
		t.Fatal("no major faults recorded on swap-in")
	}
}

func TestMlockPreventsReclaim(t *testing.T) {
	m := newMachine(t, 160)
	as, _ := m.kernel.NewAddressSpace()
	locked, err := as.Mmap(MmapRequest{Pages: 48, Prot: rw, Anon: true, Locked: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBuf(locked, bytes.Repeat([]byte{0xEE}, 48*mem.FrameSize)); err != nil {
		t.Fatal(err)
	}
	// Apply heavy pressure.
	va2, err := as.Mmap(MmapRequest{Pages: 100, Prot: rw, Anon: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = as.WriteBuf(va2, bytes.Repeat([]byte{0x22}, 100*mem.FrameSize))
	// Locked pages must still be resident: touching them causes no
	// major faults.
	m.kernel.Stats().Reset()
	for i := uint64(0); i < 48; i++ {
		if err := as.Touch(locked+mem.VirtAddr(i*mem.FrameSize), false); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.kernel.Stats().Value("major_faults"); got != 0 {
		t.Fatalf("locked pages swapped: %d major faults", got)
	}
}

func TestFixedAddressMapping(t *testing.T) {
	m := newMachine(t, 1024)
	as, _ := m.kernel.NewAddressSpace()
	want := mem.VirtAddr(0x40000000)
	va, err := as.Mmap(MmapRequest{Addr: want, Pages: 2, Prot: rw, Anon: true})
	if err != nil || va != want {
		t.Fatalf("fixed mmap: va=%#x err=%v", uint64(va), err)
	}
	if _, err := as.Mmap(MmapRequest{Addr: want + mem.FrameSize, Pages: 2, Prot: rw, Anon: true}); err == nil {
		t.Fatal("overlapping fixed mapping accepted")
	}
	if _, err := as.Mmap(MmapRequest{Addr: 0x123, Pages: 1, Prot: rw, Anon: true}); err == nil {
		t.Fatal("unaligned fixed mapping accepted")
	}
}

func TestMmapValidation(t *testing.T) {
	m := newMachine(t, 1024)
	as, _ := m.kernel.NewAddressSpace()
	if _, err := as.Mmap(MmapRequest{Pages: 0, Prot: rw, Anon: true}); err == nil {
		t.Fatal("empty mapping accepted")
	}
	if _, err := as.Mmap(MmapRequest{Pages: 1, Prot: rw}); err == nil {
		t.Fatal("file mapping without file accepted")
	}
	if _, err := as.Mmap(MmapRequest{Pages: 1, Anon: true}); err == nil {
		t.Fatal("PROT_NONE accepted")
	}
	f, _ := m.fs.Create("/small", memfs.CreateOptions{})
	f.Truncate(mem.FrameSize)
	if _, err := as.Mmap(MmapRequest{Pages: 5, Prot: rw, File: f}); err == nil {
		t.Fatal("mapping beyond EOF accepted")
	}
}

func TestMappingPinsFile(t *testing.T) {
	m := newMachine(t, 1024)
	as, _ := m.kernel.NewAddressSpace()
	f, _ := m.fs.Create("/pinned", memfs.CreateOptions{})
	if _, err := f.WriteAt([]byte("keep"), 0); err != nil {
		t.Fatal(err)
	}
	va, err := as.Mmap(MmapRequest{Pages: 1, Prot: rw, File: f})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := m.fs.Unlink("/pinned"); err != nil {
		t.Fatal(err)
	}
	// Data must still be accessible through the mapping.
	got := make([]byte, 4)
	if err := as.ReadBuf(va, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "keep" {
		t.Fatalf("mapped data after unlink: %q", got)
	}
	// Unmapping drops the last reference and frees the file.
	free0 := m.fs.FreeFrames()
	if err := as.Munmap(va, 1); err != nil {
		t.Fatal(err)
	}
	if m.fs.FreeFrames() != free0+1 {
		t.Fatalf("file storage not freed after unmap: %d -> %d", free0, m.fs.FreeFrames())
	}
}

func TestWriteReadBufRoundTrip(t *testing.T) {
	m := newMachine(t, 2048)
	as, _ := m.kernel.NewAddressSpace()
	va, _ := as.Mmap(MmapRequest{Pages: 8, Prot: rw, Anon: true})
	data := bytes.Repeat([]byte("roundtrip"), 3000) // 27 KB
	if err := as.WriteBuf(va, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.ReadBuf(va, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestMetadataTracking(t *testing.T) {
	m := newMachine(t, 2048)
	as, _ := m.kernel.NewAddressSpace()
	_, err := as.Mmap(MmapRequest{Pages: 100, Prot: rw, Anon: true, Populate: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.kernel.TrackedPages(); got != 100 {
		t.Fatalf("TrackedPages = %d, want 100", got)
	}
	if got := m.kernel.MetadataBytes(); got != 6400 {
		t.Fatalf("MetadataBytes = %d, want 6400", got)
	}
	active, inactive := m.kernel.LRUStats()
	if active+inactive != 100 {
		t.Fatalf("LRU holds %d pages, want 100", active+inactive)
	}
}

func TestUserFaultHandler(t *testing.T) {
	m := newMachine(t, 4096)
	as, _ := m.kernel.NewAddressSpace()
	// A user-space pager that materializes page contents on demand —
	// the §3.1 "applications that need swapping could implement it
	// themselves using userfaultfd" mechanism.
	calls := 0
	handler := func(page uint64, write bool) ([]byte, error) {
		calls++
		return bytes.Repeat([]byte{byte(page + 1)}, 8), nil
	}
	va, err := as.Mmap(MmapRequest{Pages: 4, Prot: rw, Anon: true, UserFault: handler})
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 4; p++ {
		b, err := as.ReadByteAt(va + mem.VirtAddr(p*mem.FrameSize))
		if err != nil {
			t.Fatal(err)
		}
		if b != byte(p+1) {
			t.Fatalf("page %d: byte %#x, want %#x", p, b, byte(p+1))
		}
	}
	if calls != 4 {
		t.Fatalf("handler called %d times, want 4", calls)
	}
	// Re-access: resident now, no more handler calls.
	if _, err := as.ReadByteAt(va); err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("handler re-invoked for resident page")
	}
	if m.kernel.Stats().Value("user_faults") != 4 {
		t.Fatalf("user_faults = %d", m.kernel.Stats().Value("user_faults"))
	}
}

func TestUserFaultHandlerError(t *testing.T) {
	m := newMachine(t, 1024)
	as, _ := m.kernel.NewAddressSpace()
	handler := func(page uint64, write bool) ([]byte, error) {
		return nil, errors.New("backing store unreachable")
	}
	va, err := as.Mmap(MmapRequest{Pages: 1, Prot: rw, Anon: true, UserFault: handler})
	if err != nil {
		t.Fatal(err)
	}
	var ae *AccessError
	if err := as.Touch(va, false); !errors.As(err, &ae) {
		t.Fatalf("handler error not surfaced as AccessError: %v", err)
	}
}

func TestUserFaultValidation(t *testing.T) {
	m := newMachine(t, 1024)
	as, _ := m.kernel.NewAddressSpace()
	h := func(page uint64, write bool) ([]byte, error) { return nil, nil }
	f, _ := m.fs.Create("/uf", memfs.CreateOptions{})
	f.Truncate(mem.FrameSize)
	if _, err := as.Mmap(MmapRequest{Pages: 1, Prot: rw, File: f, UserFault: h}); err == nil {
		t.Fatal("file-backed user-fault region accepted")
	}
	if _, err := as.Mmap(MmapRequest{Pages: 1, Prot: rw, Anon: true, Populate: true, UserFault: h}); err == nil {
		t.Fatal("populated user-fault region accepted")
	}
}

func TestUserFaultRegionsDoNotMerge(t *testing.T) {
	m := newMachine(t, 1024)
	as, _ := m.kernel.NewAddressSpace()
	h := func(page uint64, write bool) ([]byte, error) { return nil, nil }
	if _, err := as.Mmap(MmapRequest{Pages: 2, Prot: rw, Anon: true, UserFault: h}); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Mmap(MmapRequest{Pages: 2, Prot: rw, Anon: true, UserFault: h}); err != nil {
		t.Fatal(err)
	}
	if as.VMACount() != 2 {
		t.Fatalf("user-fault VMAs merged: count = %d", as.VMACount())
	}
}

func TestHugeMapping(t *testing.T) {
	m := newMachine(t, 8192)
	as, _ := m.kernel.NewAddressSpace()
	va, err := as.Mmap(MmapRequest{Pages: 1024, Prot: rw, Anon: true, Huge: true})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(va)%(mem.HugeFrames2M*mem.FrameSize) != 0 {
		t.Fatalf("huge mapping at unaligned %#x", uint64(va))
	}
	if as.MappedPages() != 1024 {
		t.Fatalf("MappedPages = %d", as.MappedPages())
	}
	if got := as.PageTable().PageSize(va); got != 2<<20 {
		t.Fatalf("PageSize = %d, want 2 MiB", got)
	}
	// Data plane across the whole region, no faults.
	data := bytes.Repeat([]byte{0xC3}, 3*mem.FrameSize)
	mid := va + mem.VirtAddr(700*mem.FrameSize)
	if err := as.WriteBuf(mid, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.ReadBuf(mid, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("huge mapping data mismatch")
	}
	if m.kernel.Stats().Value("minor_faults") != 0 {
		t.Fatalf("faults on populated huge mapping: %d", m.kernel.Stats().Value("minor_faults"))
	}
	// Teardown frees the compound runs.
	free0 := m.kernel.FreePoolFrames()
	if err := as.Munmap(va, 1024); err != nil {
		t.Fatal(err)
	}
	if got := m.kernel.FreePoolFrames(); got < free0+1024 {
		t.Fatalf("compound frames not freed: %d -> %d", free0, got)
	}
	if m.kernel.TrackedPages() != 0 {
		t.Fatalf("compound metadata leaked: %d", m.kernel.TrackedPages())
	}
}

func TestHugeMappingCheaperToMapAndTouch(t *testing.T) {
	m := newMachine(t, 16384)
	as, _ := m.kernel.NewAddressSpace()

	t0 := m.clock.Now()
	small, err := as.Mmap(MmapRequest{Pages: 2048, Prot: rw, Anon: true, Populate: true})
	if err != nil {
		t.Fatal(err)
	}
	smallMap := m.clock.Since(t0)

	t1 := m.clock.Now()
	huge, err := as.Mmap(MmapRequest{Pages: 2048, Prot: rw, Anon: true, Huge: true})
	if err != nil {
		t.Fatal(err)
	}
	hugeMap := m.clock.Since(t1)

	// Huge mapping writes 4 PTEs instead of 2048 (zeroing cost is the
	// same); it must be meaningfully cheaper.
	if hugeMap >= smallMap {
		t.Fatalf("huge map (%v) not cheaper than 4K map (%v)", hugeMap, smallMap)
	}

	// TLB behaviour: strided touches over 8 MiB hit with 4 huge
	// entries but thrash 4K entries.
	as.TLB().FlushAll()
	as.TLB().Stats().Reset()
	for p := uint64(0); p < 2048; p += 8 {
		if err := as.Touch(small+mem.VirtAddr(p*mem.FrameSize), false); err != nil {
			t.Fatal(err)
		}
	}
	smallMisses := as.TLB().Stats().Value("misses")
	as.TLB().FlushAll()
	as.TLB().Stats().Reset()
	for p := uint64(0); p < 2048; p += 8 {
		if err := as.Touch(huge+mem.VirtAddr(p*mem.FrameSize), false); err != nil {
			t.Fatal(err)
		}
	}
	hugeMisses := as.TLB().Stats().Value("misses")
	if hugeMisses*10 > smallMisses {
		t.Fatalf("huge pages did not cut TLB misses: %d vs %d", hugeMisses, smallMisses)
	}
}

func TestHugeMappingValidation(t *testing.T) {
	m := newMachine(t, 4096)
	as, _ := m.kernel.NewAddressSpace()
	if _, err := as.Mmap(MmapRequest{Pages: 100, Prot: rw, Anon: true, Huge: true}); err == nil {
		t.Fatal("non-multiple-of-512 huge mapping accepted")
	}
	f, _ := m.fs.Create("/h", memfs.CreateOptions{})
	f.Truncate(512 * mem.FrameSize)
	if _, err := as.Mmap(MmapRequest{Pages: 512, Prot: rw, File: f, Huge: true}); err == nil {
		t.Fatal("file-backed huge mapping accepted")
	}
	if _, err := as.Mmap(MmapRequest{Addr: 0x40001000, Pages: 512, Prot: rw, Anon: true, Huge: true}); err == nil {
		t.Fatal("unaligned fixed huge mapping accepted")
	}
}

func TestHugeMprotect(t *testing.T) {
	m := newMachine(t, 4096)
	as, _ := m.kernel.NewAddressSpace()
	va, err := as.Mmap(MmapRequest{Pages: 512, Prot: rw, Anon: true, Huge: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Mprotect(va, 512, pagetable.FlagRead|pagetable.FlagUser); err != nil {
		t.Fatal(err)
	}
	var ae *AccessError
	if err := as.Touch(va+123*mem.FrameSize, true); !errors.As(err, &ae) {
		t.Fatalf("write after huge mprotect: %v", err)
	}
}

func TestForkRejectsHugeMappings(t *testing.T) {
	m := newMachine(t, 4096)
	as, _ := m.kernel.NewAddressSpace()
	if _, err := as.Mmap(MmapRequest{Pages: 512, Prot: rw, Anon: true, Huge: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Fork(); err == nil {
		t.Fatal("fork with huge mapping accepted")
	}
}

func TestOOMWithFullSwap(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: 128})
	if err != nil {
		t.Fatal(err)
	}
	kernel, err := NewKernel(clock, &params, memory, Config{
		PoolBase: 0, PoolFrames: 128, LowWater: 8, SwapFrames: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	as, err := kernel.NewAddressSpace()
	if err != nil {
		t.Fatal(err)
	}
	va, err := as.Mmap(MmapRequest{Pages: 512, Prot: rw, Anon: true})
	if err != nil {
		t.Fatal(err)
	}
	// Touch until memory and swap are both exhausted: the fault must
	// eventually fail with an out-of-memory error, not panic or hang.
	var lastErr error
	for p := uint64(0); p < 512; p++ {
		if err := as.Touch(va+mem.VirtAddr(p*mem.FrameSize), true); err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil {
		t.Fatal("512 pages fit in a 128-frame machine with 16 swap slots")
	}
	if kernel.SwapUsed() == 0 {
		t.Fatal("swap never used before OOM")
	}
	// The address space is still usable for already-resident pages.
	if err := as.Touch(va, false); err != nil {
		// Page 0 may itself have been swapped out and unswappable now;
		// either way the error must be an OOM-ish error, not corruption.
		t.Logf("post-OOM touch: %v", err)
	}
}

func TestFiveLevelPaging(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: 8192})
	if err != nil {
		t.Fatal(err)
	}
	k5, err := NewKernel(clock, &params, memory, Config{PoolBase: 0, PoolFrames: 4096, PageTableLevels: 5})
	if err != nil {
		t.Fatal(err)
	}
	k4, err := NewKernel(clock, &params, memory, Config{PoolBase: 4096, PoolFrames: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewKernel(clock, &params, memory, Config{PoolBase: 0, PoolFrames: 1, PageTableLevels: 3}); err == nil {
		t.Fatal("3-level paging accepted")
	}

	cost := func(k *Kernel) sim.Time {
		as, err := k.NewAddressSpace()
		if err != nil {
			t.Fatal(err)
		}
		va, err := as.Mmap(MmapRequest{Pages: 32, Prot: rw, Anon: true, Populate: true})
		if err != nil {
			t.Fatal(err)
		}
		as.TLB().FlushAll()
		t0 := clock.Now()
		for p := uint64(0); p < 32; p++ {
			if err := as.Touch(va+mem.VirtAddr(p*mem.FrameSize), false); err != nil {
				t.Fatal(err)
			}
		}
		return clock.Since(t0)
	}
	c5 := cost(k5)
	c4 := cost(k4)
	// Five levels charge one extra walk reference per TLB-missing
	// touch: 32 touches x WalkLevelRef.
	want := sim.Time(32) * params.WalkLevelRef
	if c5-c4 != want {
		t.Fatalf("5-level extra cost = %v, want %v (c5=%v c4=%v)", c5-c4, want, c5, c4)
	}
	// And the 5-level space can map beyond 48-bit reach.
	as5, _ := k5.NewAddressSpace()
	deep := mem.VirtAddr(1) << 50
	if _, err := as5.Mmap(MmapRequest{Addr: deep, Pages: 1, Prot: rw, Anon: true, Populate: true}); err != nil {
		t.Fatalf("5-level map at %#x: %v", uint64(deep), err)
	}
	if err := as5.Touch(deep, true); err != nil {
		t.Fatal(err)
	}
	as4, _ := k4.NewAddressSpace()
	if _, err := as4.Mmap(MmapRequest{Addr: deep, Pages: 1, Prot: rw, Anon: true, Populate: true}); err == nil {
		t.Fatal("4-level space accepted a 50-bit address")
	}
}
