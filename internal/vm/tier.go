package vm

import (
	"fmt"

	"repro/internal/buddy"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tier"
)

// AttachTier connects a tier migration engine to the kernel. From then
// on anonymous frames are hotness-tracked (Track on allocation, access
// bits from the fault/touch paths), first-touch placement consults the
// engine's fast-tier budget (allocations overflow into the slow pool
// once the budget is spent), and the engine drives migrations through
// MigrateFrame below. Requires a slow pool (Config.SlowPoolFrames) for
// demotions to have somewhere to go. The engine's accounting
// invariants join the machine's registry.
func (k *Kernel) AttachTier(eng *tier.Engine) {
	k.tier = eng
	eng.SetBackend(k)
	k.Machine.RegisterInvariants("vm-tier", k.checkTier)
}

// checkTier audits the engine's internal accounting plus its agreement
// with the kernel's frame metadata: the engine must track exactly the
// anonymous pages, each in the tier its frame number places it.
func (k *Kernel) checkTier() error {
	if err := k.tier.CheckInvariants(); err != nil {
		return err
	}
	anon := 0
	err := k.domains(func(label string, d *metaDomain, pool *buddy.Allocator) error {
		for f, pi := range d.pages {
			if pi.Flags&PGAnon == 0 {
				continue
			}
			anon++
			if _, tracked := k.tier.TierOf(f); !tracked {
				return fmt.Errorf("vm: anonymous frame %d (%s domain) not tier-tracked", f, label)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if anon != k.tier.Tracked() {
		return fmt.Errorf("vm: tier engine tracks %d frames, kernel holds %d anonymous pages", k.tier.Tracked(), anon)
	}
	return nil
}

// Tier returns the attached migration engine (nil without tiering).
func (k *Kernel) Tier() *tier.Engine { return k.tier }

// SlowPool exposes the slow-tier frame allocator (nil without one).
func (k *Kernel) SlowPool() *buddy.Allocator { return k.slowPool }

// tierPump executes queued promotions at a quiescent point — the end
// of a user access, after the data plane has used the translation it
// faulted in, so a promotion can never move a frame between its
// translation and its data access.
func (k *Kernel) tierPump(cur *sim.CPU) {
	if k.tier != nil {
		k.tier.Pump(cur)
	}
}

// TierScan advances the hotness clock hand over up to batch tracked
// frames (drivers call it periodically, the analogue of kswapd's aging
// scan).
func (k *Kernel) TierScan(cur *sim.CPU, batch int) {
	if k.tier != nil {
		k.tier.Scan(cur, batch)
	}
}

// MigrateFrame implements tier.Backend: move the anonymous page backed
// by f into the target tier through the kernel's real machinery. The
// page gets a fresh frame from the target tier's pool, its bytes are
// copied, every mapper found via the rmap is remapped with its flags
// preserved, stale TLB entries are shot down in one coalesced batch
// per address space, and the old frame is scrubbed before it returns
// to its buddy pool. Pinned, mlocked, compound, and file-backed pages
// decline (file pages migrate at file granularity via memfs/core).
func (k *Kernel) MigrateFrame(cur *sim.CPU, f mem.Frame, to mem.RegionKind) (uint64, bool) {
	pi, ok := k.page(f)
	if !ok {
		return 0, false
	}
	if pi.Flags&(PGMlocked|PGPinned|PGCompound|PGWriteback) != 0 || pi.Flags&PGAnon == 0 {
		return 0, false
	}
	if k.Memory.Kind(f) == to {
		return 0, false
	}

	// Target frame from the target tier's pool. Migration never
	// triggers reclaim: a full target tier is a declined migration,
	// not a reason to evict.
	var nf mem.Frame
	var err error
	if to == mem.DRAM {
		nf, err = k.pool.AllocFrame()
	} else if k.slowPool != nil {
		nf, err = k.slowPool.AllocFrame()
	} else {
		return 0, false
	}
	if err != nil {
		return 0, false
	}
	k.cAnonAllocs.Inc()
	k.Memory.CopyFramesOn(cur, nf, f, 1)

	// Remap every mapper. The rmap keys (address space, va) do not
	// change, only the frame each PTE points at, so the rmap itself
	// carries over with the re-keyed PageInfo.
	k.rmapScratch = append(k.rmapScratch[:0], pi.rmap...)
	for _, e := range k.rmapScratch {
		_, flags, lok := e.as.pt.Lookup(e.va)
		if !lok {
			panic("vm: tier migration found rmap entry without a PTE")
		}
		if _, _, uerr := e.as.pt.Unmap(cur, e.va); uerr != nil {
			panic("vm: tier migration unmap failed: " + uerr.Error())
		}
		if merr := e.as.pt.Map(cur, e.va, nf, flags); merr != nil {
			panic("vm: tier migration remap failed: " + merr.Error())
		}
	}
	// Coalesced shootdowns, one batch per address space in rmap order
	// (mmu_gather-style: one IPI round per mapper burst, not per page).
	var prev *AddressSpace
	for _, e := range k.rmapScratch {
		if e.as != prev {
			if prev != nil {
				prev.flushShoot(cur)
			}
			e.as.beginShoot()
			prev = e.as
		}
		e.as.queueShoot(cur, e.va, 1)
	}
	if prev != nil {
		prev.flushShoot(cur)
	}

	// Re-key the metadata to the new frame, keeping hotness flags,
	// rmap, and LRU position. Crossing into a different metadata
	// domain re-files the record (and its LRU membership) there.
	od, nd := k.domainOf(f), k.domainOf(nf)
	delete(od.pages, f)
	pi.Frame = nf
	nd.pages[nf] = pi
	if od != nd && pi.list != nil {
		if pi.Flags&PGActive != 0 {
			nd.active.pushBack(pi)
		} else {
			nd.inactive.pushBack(pi)
		}
	}
	k.chargeMeta(cur, 1)
	k.tier.Moved(f, nf)

	// Scrub the migrated-away frame before its buddy recycles it: its
	// stale contents must never leak into the next allocation.
	k.Memory.ZeroFramesOn(cur, f, 1)
	if ferr := k.freeAnonFrame(f); ferr != nil {
		panic("vm: tier migration free failed: " + ferr.Error())
	}
	k.stats.Counter("tier_migrations").Inc()
	return 1, true
}
