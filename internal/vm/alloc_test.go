package vm

import (
	"testing"
)

// Touch with a warm TLB is the innermost loop of every "access one
// byte of each page" experiment; the whole path — TLB probe, data
// reference charge, referenced-bit update — must not allocate host
// memory.
func TestTouchTLBHitAllocFree(t *testing.T) {
	m := newMachine(t, 4096)
	as, err := m.kernel.NewAddressSpace()
	if err != nil {
		t.Fatal(err)
	}
	va, err := as.Mmap(MmapRequest{Pages: 1, Prot: rw, Anon: true, Populate: true})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the TLB so the measured iterations all hit.
	if err := as.Touch(va, true); err != nil {
		t.Fatal(err)
	}
	for _, write := range []bool{false, true} {
		allocs := testing.AllocsPerRun(1000, func() {
			if err := as.Touch(va, write); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("Touch(write=%v) on TLB hit allocates %v objects per access, want 0", write, allocs)
		}
	}
}

// The TLB-miss/page-walk path (flush between accesses) may touch the
// TLB's insert machinery but must also stay allocation-free once the
// page is mapped.
func TestTouchWalkAllocFree(t *testing.T) {
	m := newMachine(t, 4096)
	as, err := m.kernel.NewAddressSpace()
	if err != nil {
		t.Fatal(err)
	}
	va, err := as.Mmap(MmapRequest{Pages: 1, Prot: rw, Anon: true, Populate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Touch(va, false); err != nil {
		t.Fatal(err)
	}
	tlb := m.kernel.TLBFor(m.kernel.Machine.Current())
	allocs := testing.AllocsPerRun(1000, func() {
		tlb.FlushAll()
		if err := as.Touch(va, false); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Touch via page walk allocates %v objects per access, want 0", allocs)
	}
}
