package vm

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// PageFlags is the per-frame status bitfield — the analogue of the
// Linux struct page flags the paper's motivation counts (25 flags, 38
// fields). The simulator tracks the subset that drives behaviour.
type PageFlags uint32

const (
	// PGAnon marks an anonymous page (swap-backed).
	PGAnon PageFlags = 1 << iota
	// PGFile marks a file-backed page (storage lives in the file
	// system; reclaim just unmaps it).
	PGFile
	// PGReferenced is the second-chance bit set on every access.
	PGReferenced
	// PGDirty marks modified pages.
	PGDirty
	// PGActive marks membership in the active list.
	PGActive
	// PGLRU marks membership in either LRU list.
	PGLRU
	// PGMlocked pins the page against reclaim (mlock).
	PGMlocked
	// PGPinned pins the page for device access (DMA).
	PGPinned
	// PGSwapBacked marks pages whose eviction path is swap.
	PGSwapBacked
	// PGWriteback marks pages being written to swap.
	PGWriteback
	// PGReserved marks kernel-reserved pages.
	PGReserved
	// PGSlab marks slab pages.
	PGSlab
	// PGCompound marks the head of a 2 MiB compound (huge) page; its
	// frame is the first of a 512-frame run. Compound pages are
	// unevictable in this simulator.
	PGCompound
)

// PageInfo is the per-frame metadata record.
type PageInfo struct {
	Frame mem.Frame
	Flags PageFlags
	// MapCount is the number of PTEs referencing the frame.
	MapCount int
	// rmap records every (address space, va) mapping the frame, the
	// reverse map reclaim needs to unmap pages.
	rmap []rmapEntry

	// list linkage for the LRU lists
	prev, next *PageInfo
	list       *pageList
}

type rmapEntry struct {
	as *AddressSpace
	va mem.VirtAddr
}

// Mapped reports whether any PTE references the frame.
func (p *PageInfo) Mapped() bool { return p.MapCount > 0 }

// reset scrubs the record before it enters the recycled pool. The rmap
// backing array is kept (recycling exists to avoid reallocating it)
// but its full capacity is zeroed: entries past len(rmap) would
// otherwise retain dangling *AddressSpace pointers from the record's
// previous life, keeping dead address spaces reachable and risking
// their resurrection if a later append exposes them.
func (p *PageInfo) reset() {
	rmap := p.rmap[:cap(p.rmap)]
	for i := range rmap {
		rmap[i] = rmapEntry{}
	}
	*p = PageInfo{rmap: rmap[:0]}
}

// maxSparePages bounds the kernel's recycled PageInfo pool.
const maxSparePages = 65536

// trackPage creates (or returns) metadata for a frame, in the domain
// owning it. cur is the CPU performing the work.
func (k *Kernel) trackPage(cur *sim.CPU, f mem.Frame, flags PageFlags) *PageInfo {
	d := k.domainOf(f)
	if p, ok := d.pages[f]; ok {
		return p
	}
	var p *PageInfo
	if n := len(d.sparePages); n > 0 {
		p = d.sparePages[n-1]
		d.sparePages[n-1] = nil
		d.sparePages = d.sparePages[:n-1]
		p.Frame = f
		p.Flags = flags
	} else {
		p = &PageInfo{Frame: f, Flags: flags}
	}
	d.pages[f] = p
	k.chargeMeta(cur, 1)
	if k.tier != nil && flags&PGAnon != 0 {
		k.tier.Track(f)
	}
	return p
}

// forgetPage drops a frame's metadata and recycles the record into its
// domain's spare pool.
func (k *Kernel) forgetPage(cur *sim.CPU, p *PageInfo) {
	if k.tier != nil && p.Flags&PGAnon != 0 {
		k.tier.Untrack(p.Frame)
	}
	d := k.domainOf(p.Frame)
	if p.list != nil {
		p.list.remove(p)
	}
	delete(d.pages, p.Frame)
	k.chargeMeta(cur, 1)
	if len(d.sparePages) < maxSparePages {
		p.reset()
		d.sparePages = append(d.sparePages, p)
	}
}

// page returns metadata for a tracked frame.
func (k *Kernel) page(f mem.Frame) (*PageInfo, bool) {
	p, ok := k.domainOf(f).pages[f]
	return p, ok
}

// addRmap records a mapping of the frame.
func (k *Kernel) addRmap(cur *sim.CPU, p *PageInfo, as *AddressSpace, va mem.VirtAddr) {
	p.rmap = append(p.rmap, rmapEntry{as: as, va: va})
	p.MapCount++
	k.chargeMeta(cur, 1)
}

// delRmap removes a mapping record.
func (k *Kernel) delRmap(cur *sim.CPU, p *PageInfo, as *AddressSpace, va mem.VirtAddr) error {
	for i, e := range p.rmap {
		if e.as == as && e.va == va {
			p.rmap = append(p.rmap[:i], p.rmap[i+1:]...)
			p.MapCount--
			k.chargeMeta(cur, 1)
			return nil
		}
	}
	return fmt.Errorf("vm: rmap entry for frame %d va %#x not found", p.Frame, uint64(va))
}

// pageList is an intrusive doubly linked list of PageInfo (one LRU
// list).
type pageList struct {
	head, tail *PageInfo
	count      int
}

func newPageList() *pageList { return &pageList{} }

func (l *pageList) pushBack(p *PageInfo) {
	if p.list != nil {
		p.list.remove(p)
	}
	p.list = l
	p.prev = l.tail
	p.next = nil
	if l.tail != nil {
		l.tail.next = p
	} else {
		l.head = p
	}
	l.tail = p
	l.count++
}

func (l *pageList) popFront() *PageInfo {
	p := l.head
	if p == nil {
		return nil
	}
	l.remove(p)
	return p
}

func (l *pageList) remove(p *PageInfo) {
	if p.list != l {
		return
	}
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		l.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		l.tail = p.prev
	}
	p.prev, p.next, p.list = nil, nil, nil
	l.count--
}

func (l *pageList) len() int { return l.count }

// lruInsert places a newly faulted page on its domain's inactive list.
func (k *Kernel) lruInsert(cur *sim.CPU, p *PageInfo) {
	d := k.domainOf(p.Frame)
	p.Flags |= PGLRU
	p.Flags &^= PGActive
	d.inactive.pushBack(p)
	k.chargeMeta(cur, 1)
}

// lruActivate promotes a referenced page to its domain's active list.
func (k *Kernel) lruActivate(cur *sim.CPU, p *PageInfo) {
	d := k.domainOf(p.Frame)
	p.Flags |= PGActive
	d.active.pushBack(p)
	k.chargeMeta(cur, 1)
}

// LRUStats returns the lengths of the active and inactive lists,
// summed over the global domain and every arena.
func (k *Kernel) LRUStats() (active, inactive int) {
	active, inactive = k.meta.active.len(), k.meta.inactive.len()
	for _, ar := range k.arenas {
		active += ar.meta.active.len()
		inactive += ar.meta.inactive.len()
	}
	return active, inactive
}
