package vm

import (
	"repro/internal/mem"
)

// WriteBuf stores buf at va through the full translation path: each
// page touched goes through the TLB/walk/fault pipeline, so writing a
// fresh region pays one fault per page exactly like a user program.
func (a *AddressSpace) WriteBuf(va mem.VirtAddr, buf []byte) error {
	for len(buf) > 0 {
		pa, err := a.translate(va, true)
		if err != nil {
			return err
		}
		n := mem.FrameSize - va.PageOffset()
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		a.kernel.Memory.WriteAt(pa, buf[:n])
		buf = buf[n:]
		va += mem.VirtAddr(n)
	}
	a.kernel.tierPump(a.cpu)
	return nil
}

// ReadBuf loads len(buf) bytes from va through the translation path.
func (a *AddressSpace) ReadBuf(va mem.VirtAddr, buf []byte) error {
	for len(buf) > 0 {
		pa, err := a.translate(va, false)
		if err != nil {
			return err
		}
		n := mem.FrameSize - va.PageOffset()
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		a.kernel.Memory.ReadAt(pa, buf[:n])
		buf = buf[n:]
		va += mem.VirtAddr(n)
	}
	a.kernel.tierPump(a.cpu)
	return nil
}

// ReadByteAt loads one byte via the translation path.
func (a *AddressSpace) ReadByteAt(va mem.VirtAddr) (byte, error) {
	var b [1]byte
	if err := a.ReadBuf(va, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// WriteByteAt stores one byte via the translation path.
func (a *AddressSpace) WriteByteAt(va mem.VirtAddr, v byte) error {
	return a.WriteBuf(va, []byte{v})
}
