package vm

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// parallelVMWorkload runs a per-CPU slice of VM activity — mmap,
// populate, touch, COW via mprotect round-trips, madvise, munmap — on
// an address space homed on the task's CPU and backed by its arena.
// Single-CPU shootdown masks keep every IPI target set empty, so the
// whole workload free-runs without sync points.
func parallelVMWorkload(t *testing.T, k *Kernel, cpu *sim.CPU, pages uint64) error {
	as, err := k.NewAddressSpaceOn(cpu)
	if err != nil {
		return err
	}
	va, err := as.Mmap(MmapRequest{Pages: pages, Prot: rw, Anon: true, Populate: true})
	if err != nil {
		return err
	}
	rng := sim.NewRNG(uint64(1+cpu.ID()) * 0x9E3779B97F4A7C15)
	for i := 0; i < int(pages)*2; i++ {
		p := rng.Intn(int(pages))
		if err := as.Touch(va+mem.VirtAddr(uint64(p)*mem.FrameSize), rng.Intn(2) == 0); err != nil {
			return err
		}
	}
	// Drop and re-demand half the region.
	if err := as.MadviseDontneed(va, pages/2); err != nil {
		return err
	}
	for p := uint64(0); p < pages/2; p++ {
		if err := as.Touch(va+mem.VirtAddr(p*mem.FrameSize), true); err != nil {
			return err
		}
	}
	if err := as.Munmap(va, pages); err != nil {
		return err
	}
	return as.Destroy()
}

// runVMPhase builds an SMP machine with carved arenas, runs the VM
// workload under RunParallel with the given host-parallel setting, and
// returns the machine state and kernel for comparison.
func runVMPhase(t *testing.T, cpus int, hostpar bool, pages uint64) (*sim.MachineState, *Kernel) {
	t.Helper()
	machine, kernel := newSMPMachine(t, cpus, 0)
	machine.SetHostParallel(hostpar)
	// Each CPU's arena: enough for the workload's frames plus its
	// page-table nodes.
	if err := kernel.CarveArenas(pages * 4); err != nil {
		t.Fatal(err)
	}
	if err := machine.RunParallel(func(c *sim.CPU) error {
		return parallelVMWorkload(t, kernel, c, pages)
	}); err != nil {
		t.Fatal(err)
	}
	if err := machine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := kernel.ReleaseArenas(); err != nil {
		t.Fatal(err)
	}
	return machine.CaptureState(), kernel
}

// TestVMRunParallelMatchesSerial is the vm-layer half of the
// determinism contract: the same arena-backed per-CPU VM workload must
// leave byte-identical machine state whether the CPU contexts ran one
// at a time or on real host goroutines.
func TestVMRunParallelMatchesSerial(t *testing.T) {
	for _, cpus := range []int{1, 2, 4, 8} {
		serial, _ := runVMPhase(t, cpus, false, 64)
		par, _ := runVMPhase(t, cpus, true, 64)
		if d := serial.Diff(par); d != "" {
			t.Errorf("cpus=%d: host-parallel state diverged from serial:\n%s", cpus, d)
		}
	}
}

// TestCarveArenasRoutesFrames checks the arena plumbing: address
// spaces home on their CPU's arena, frames allocated there are tracked
// in the arena's domain, and release refuses while pages are live.
func TestCarveArenasRoutesFrames(t *testing.T) {
	machine, kernel := newSMPMachine(t, 4, 0)
	if err := kernel.CarveArenas(256); err != nil {
		t.Fatal(err)
	}
	if err := kernel.CarveArenas(256); err == nil {
		t.Fatal("second CarveArenas did not fail")
	}
	cpu := machine.CPU(2)
	ar := kernel.ArenaFor(cpu)
	if ar == nil || ar.CPU() != cpu {
		t.Fatalf("ArenaFor(cpu2) = %v", ar)
	}
	as, err := kernel.NewAddressSpaceOn(cpu)
	if err != nil {
		t.Fatal(err)
	}
	va, err := as.Mmap(MmapRequest{Pages: 8, Prot: rw, Anon: true, Populate: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := ar.TrackedPages(); got != 8 {
		t.Fatalf("arena tracks %d pages, want 8", got)
	}
	if got := len(kernel.meta.pages); got != 0 {
		t.Fatalf("global domain tracks %d pages, want 0", got)
	}
	if got := kernel.TrackedPages(); got != 8 {
		t.Fatalf("TrackedPages() = %d, want 8", got)
	}
	pa, _, ok := as.pt.Lookup(va)
	if !ok {
		t.Fatal("populated page not mapped")
	}
	if got := kernel.arenaOf(pa.Frame()); got != ar {
		t.Fatalf("frame %d routed to arena %v, want cpu-2 arena", pa.Frame(), got)
	}
	if err := machine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	if err := kernel.ReleaseArenas(); err == nil {
		t.Fatal("ReleaseArenas succeeded with live arena pages")
	} else if !strings.Contains(err.Error(), "tracks") {
		t.Fatalf("unexpected release error: %v", err)
	}
	if err := as.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := kernel.ReleaseArenas(); err != nil {
		t.Fatal(err)
	}
	if kernel.ArenaFor(cpu) != nil {
		t.Fatal("arena survived release")
	}
	if err := machine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestArenaExhaustionIsHardError: arenas must fail allocation rather
// than trigger reclaim (reclaim is cross-CPU and forbidden in-phase).
func TestArenaExhaustionIsHardError(t *testing.T) {
	machine, kernel := newSMPMachine(t, 2, 0)
	if err := kernel.CarveArenas(16); err != nil {
		t.Fatal(err)
	}
	as, err := kernel.NewAddressSpaceOn(machine.CPU(0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = as.Mmap(MmapRequest{Pages: 64, Prot: rw, Anon: true, Populate: true})
	if err == nil {
		t.Fatal("overcommitted arena populate succeeded")
	}
	if !strings.Contains(err.Error(), "arena out of memory") {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := kernel.Stats().Value("reclaimed_pages"); got != 0 {
		t.Fatalf("arena exhaustion triggered reclaim of %d pages", got)
	}
}

// TestParallelSharedKernelCounters: counters shared across CPU contexts
// are exact sums regardless of host interleaving.
func TestParallelSharedKernelCounters(t *testing.T) {
	const cpus, pages = 4, 32
	machine, kernel := newSMPMachine(t, cpus, 0)
	machine.SetHostParallel(true)
	if err := kernel.CarveArenas(pages * 4); err != nil {
		t.Fatal(err)
	}
	if err := machine.RunParallel(func(c *sim.CPU) error {
		as, err := kernel.NewAddressSpaceOn(c)
		if err != nil {
			return err
		}
		va, err := as.Mmap(MmapRequest{Pages: pages, Prot: rw, Anon: true})
		if err != nil {
			return err
		}
		for p := uint64(0); p < pages; p++ {
			if err := as.Touch(va+mem.VirtAddr(p*mem.FrameSize), true); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := kernel.Stats().Value("minor_faults"); got != cpus*pages {
		t.Fatalf("minor_faults = %d, want %d", got, cpus*pages)
	}
	if got := kernel.Stats().Value("anon_allocs"); got != cpus*pages {
		t.Fatalf("anon_allocs = %d, want %d", got, cpus*pages)
	}
}

// TestParallelCOWWithinCPU exercises the cowBreak paths inside a
// host-parallel phase: fork is cross-CPU, so COW sharing is set up
// out of phase and the breaks (single-CPU masks, no IPIs) happen
// in-phase on each space's own CPU.
func TestParallelCOWWithinCPU(t *testing.T) {
	const cpus, pages = 4, 16
	machine, kernel := newSMPMachine(t, cpus, 0)
	machine.SetHostParallel(true)
	if err := kernel.CarveArenas(pages * 8); err != nil {
		t.Fatal(err)
	}
	spaces := make([]*AddressSpace, cpus)
	vas := make([]mem.VirtAddr, cpus)
	for i := 0; i < cpus; i++ {
		as, err := kernel.NewAddressSpaceOn(machine.CPU(i))
		if err != nil {
			t.Fatal(err)
		}
		va, err := as.Mmap(MmapRequest{Pages: pages, Prot: rw, Anon: true, Populate: true})
		if err != nil {
			t.Fatal(err)
		}
		// Write-protect with COW semantics via a read-only round trip:
		// downgrade, then restore write permission lazily through faults.
		if err := as.Mprotect(va, pages, pagetable.FlagRead); err != nil {
			t.Fatal(err)
		}
		if err := as.Mprotect(va, pages, rw); err != nil {
			t.Fatal(err)
		}
		spaces[i], vas[i] = as, va
	}
	if err := machine.RunParallel(func(c *sim.CPU) error {
		as, va := spaces[c.ID()], vas[c.ID()]
		for p := uint64(0); p < pages; p++ {
			if err := as.Touch(va+mem.VirtAddr(p*mem.FrameSize), true); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := machine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
