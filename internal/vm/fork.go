package vm

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// sortedVAs returns a swap map's keys in ascending address order.
func sortedVAs(m map[mem.VirtAddr]int) []mem.VirtAddr {
	vas := make([]mem.VirtAddr, 0, len(m))
	for va := range m {
		vas = append(vas, va)
	}
	sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
	return vas
}

// Fork duplicates the address space with copy-on-write semantics: every
// VMA is copied, every present writable private page is downgraded to
// COW in both parent and child, and the child's page table is built
// entry by entry — the linear fork cost of the baseline design. The
// child is homed round-robin across the machine's CPUs; since that
// touches the shared round-robin counter, Fork is not valid inside a
// host-parallel free-running window (use ForkOn there).
func (a *AddressSpace) Fork() (*AddressSpace, error) {
	k := a.kernel
	a.run()
	child, err := k.NewAddressSpace()
	if err != nil {
		return nil, err
	}
	a.run()
	return a.forkInto(child)
}

// ForkOn is Fork with the child homed on an explicit CPU. With the
// child on the parent's own CPU the whole fork is CPU-local (the
// fork/exec churn path of the multi-tenant workload): page-table
// frames come from that CPU's arena and no shared state is touched,
// so it is valid during a host-parallel phase. The parent's COW
// downgrades batch their shootdowns into one IPI round.
func (a *AddressSpace) ForkOn(cpu *sim.CPU) (*AddressSpace, error) {
	k := a.kernel
	a.run()
	child, err := k.NewAddressSpaceOn(cpu)
	if err != nil {
		return nil, err
	}
	a.run()
	return a.forkInto(child)
}

// forkInto performs the copy half of fork on the parent's CPU.
func (a *AddressSpace) forkInto(child *AddressSpace) (*AddressSpace, error) {
	k := a.kernel
	cur := a.cpu
	cur.Advance(k.Params.SyscallOverhead)
	a.beginShoot()
	defer a.flushShoot(cur)
	for _, v := range a.vmas {
		if v.Huge {
			// Real kernels split or COW-share huge pages on fork; this
			// simulator keeps huge mappings exclusive.
			return nil, fmt.Errorf("vm: fork with huge mappings not supported")
		}
		cv := *v
		if cv.File != nil {
			cv.File.Ref()
		}
		child.vmas = append(child.vmas, &cv)
		cur.Advance(k.Params.VMAOp)

		sharedWrites := !v.Anon && !v.Private // MAP_SHARED file mapping
		for p := uint64(0); p < v.Pages(); p++ {
			va := v.Start + mem.VirtAddr(p*mem.FrameSize)
			pa, flags, ok := a.pt.Lookup(va)
			if !ok {
				continue
			}
			frame := pa.Frame()
			childFlags := flags
			if !sharedWrites && flags&pagetable.FlagWrite != 0 {
				// Downgrade to COW on both sides.
				cow := (flags &^ pagetable.FlagWrite) | pagetable.FlagCOW
				if err := a.pt.Protect(cur, va, cow); err != nil {
					return nil, err
				}
				a.queueShoot(cur, va, 1)
				childFlags = cow
			} else if !sharedWrites && flags&pagetable.FlagCOW != 0 {
				childFlags = flags
			}
			if err := child.pt.Map(cur, va, frame, childFlags); err != nil {
				return nil, err
			}
			if pi, tracked := k.page(frame); tracked {
				k.addRmap(cur, pi, child, va)
			}
		}
		// Swapped pages are shared via COW in real kernels; the
		// simulator keeps fork simple by faulting them back in first —
		// in address order, so the frames the fault-ins allocate (and
		// thus the physical layout) are a pure function of the trace.
		for _, va := range sortedVAs(a.swapped) {
			if v.Contains(va) {
				if err := a.installPage(v, va, false); err != nil {
					return nil, err
				}
				pa, flags, _ := a.pt.Lookup(va)
				if !sharedWrites && flags&pagetable.FlagWrite != 0 {
					flags = (flags &^ pagetable.FlagWrite) | pagetable.FlagCOW
					if err := a.pt.Protect(cur, va, flags); err != nil {
						return nil, err
					}
					a.queueShoot(cur, va, 1)
				}
				if err := child.pt.Map(cur, va, pa.Frame(), flags); err != nil {
					return nil, err
				}
				if pi, tracked := k.page(pa.Frame()); tracked {
					k.addRmap(cur, pi, child, va)
				}
			}
		}
	}
	k.stats.Counter("forks").Inc()
	return child, nil
}
