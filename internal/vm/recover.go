package vm

import "repro/internal/sim"

// RecoverMetadata models post-crash metadata reconstruction in the
// baseline design. A conventional kernel's volatile bookkeeping — the
// struct-page array entries, reverse maps, and VMA trees — must be
// re-derived for every tracked page and every region after a crash
// (from a checkpoint plus whatever the persistence layer journaled):
// one metadata update and one PTE verification per page, one tree
// operation per VMA. The cost is O(tracked pages) — the linear
// recovery bill that file-only memory's extent-grain metadata avoids.
//
// It returns the number of pages rebuilt.
func (k *Kernel) RecoverMetadata() uint64 {
	pages := uint64(k.TrackedPages())
	k.Clock.Advance(sim.Time(pages) * (k.Params.PageMetaOp + k.Params.PTEWrite))
	var vmas uint64
	_ = k.eachSpace(func(asid int, as *AddressSpace) error {
		vmas += uint64(len(as.vmas))
		return nil
	})
	k.Clock.Advance(sim.Time(vmas) * k.Params.VMAOp)
	return pages
}
