package vm

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestRandomizedShootdownQuiesce is the property form of the SMP
// no-stale-TLB tests: random interleavings of mmap, touch, migrate,
// partial munmap, mprotect, and fork across 4 CPUs and several
// address spaces, auditing after every few operations that no CPU's
// TLB holds an entry disagreeing with any page table (ASID liveness,
// frame, flags, and page size — the full VisitEntries sweep inside
// Kernel.CheckInvariants). Every shootdown path the interleaving
// takes must therefore have quiesced before the audit.
func TestRandomizedShootdownQuiesce(t *testing.T) {
	steps := 400
	if testing.Short() {
		steps = 120
	}
	fn := func(seed uint64) bool {
		machine, kernel := newSMPMachine(t, 4, seed)
		rng := sim.NewRNG(seed)

		type region struct {
			as    *AddressSpace
			va    mem.VirtAddr
			pages uint64
		}
		var spaces []*AddressSpace
		var regions []region
		for i := 0; i < 3; i++ {
			as, err := kernel.NewAddressSpace()
			if err != nil {
				t.Log(err)
				return false
			}
			spaces = append(spaces, as)
		}

		for step := 0; step < steps; step++ {
			as := spaces[rng.Intn(len(spaces))]
			switch rng.Intn(10) {
			case 0, 1: // map a fresh region
				pages := uint64(1 + rng.Intn(8))
				va, err := as.Mmap(MmapRequest{Pages: pages, Prot: rw, Anon: true})
				if err != nil {
					t.Log(err)
					return false
				}
				regions = append(regions, region{as, va, pages})
			case 2: // unmap one region (shootdown per page)
				if len(regions) == 0 {
					continue
				}
				i := rng.Intn(len(regions))
				r := regions[i]
				if err := r.as.Munmap(r.va, r.pages); err != nil {
					t.Log(err)
					return false
				}
				regions = append(regions[:i], regions[i+1:]...)
			case 3: // migrate, growing the shootdown mask
				as.RunOn(machine.CPU(rng.Intn(machine.NumCPUs())))
			case 4: // downgrade then restore protection (shootdown per page)
				if len(regions) == 0 {
					continue
				}
				r := regions[rng.Intn(len(regions))]
				// Adjacent anon regions merge into one VMA, and partial-VMA
				// mprotect is unsupported; such picks are skipped.
				if err := r.as.Mprotect(r.va, r.pages, ro); err != nil {
					if strings.Contains(err.Error(), "partial-VMA") {
						continue
					}
					t.Log(err)
					return false
				}
				if err := r.as.Mprotect(r.va, r.pages, rw); err != nil {
					t.Log(err)
					return false
				}
			case 5: // fork: COW downgrades shoot down the parent's entries
				if len(spaces) >= 6 {
					continue
				}
				child, err := as.Fork()
				if err != nil {
					t.Log(err)
					return false
				}
				spaces = append(spaces, child)
				for _, r := range regions {
					if r.as == as {
						regions = append(regions, region{child, r.va, r.pages})
					}
				}
			default: // touch: fill the current CPU's TLB
				if len(regions) == 0 {
					continue
				}
				r := regions[rng.Intn(len(regions))]
				va := r.va + mem.VirtAddr(uint64(rng.Intn(int(r.pages)))*mem.FrameSize)
				if err := r.as.Touch(va, rng.Intn(2) == 0); err != nil {
					t.Log(err)
					return false
				}
			}
			if step%20 == 19 {
				if err := kernel.CheckInvariants(); err != nil {
					t.Logf("seed %d step %d: %v", seed, step, err)
					return false
				}
			}
		}

		// Full-flush quiesce: after FlushAll on every CPU no entry may
		// survive at all, stale or not.
		for _, cpu := range machine.CPUs() {
			kernel.TLBFor(cpu).FlushAll()
			if n := kernel.TLBFor(cpu).ValidEntries(); n != 0 {
				t.Logf("seed %d: CPU %d holds %d entries after FlushAll", seed, cpu.ID(), n)
				return false
			}
		}
		return kernel.CheckInvariants() == nil
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
