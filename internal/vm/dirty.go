package vm

import (
	"repro/internal/ckpt"
	"repro/internal/mem"
)

// DirtyUnits maps the dirty frames owned by the kernel's anonymous
// pools onto checkpoint units. The baseline kernel manages memory at
// page granularity — per-frame metadata, per-page mappings — so every
// dirty frame is its own unit: incremental-checkpoint metadata cost is
// O(dirty pages), the linear obstacle the paper's extent-based
// configurations sidestep. Frames outside the kernel's pools (e.g. a
// file store sharing the machine) are left for their owner to claim.
func (k *Kernel) DirtyUnits(frames []mem.Frame) []ckpt.Unit {
	var mine []mem.Frame
	for _, f := range frames {
		if k.ownsFrame(f) {
			mine = append(mine, f)
		}
	}
	return ckpt.UnitsBySpan(mine, nil)
}

// ownsFrame reports whether f belongs to the kernel's anonymous pool
// or its optional slow pool.
func (k *Kernel) ownsFrame(f mem.Frame) bool {
	if f >= k.pool.Base() && f < k.pool.Base()+mem.Frame(k.pool.Size()) {
		return true
	}
	if k.slowPool != nil && f >= k.slowPool.Base() && f < k.slowPool.Base()+mem.Frame(k.slowPool.Size()) {
		return true
	}
	return false
}
