package vm

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestForkTreeIsolationProperty builds a random tree of forked address
// spaces, performs random writes in random members, and checks every
// address space against its own shadow copy after every step: COW must
// give each process exactly its own view, regardless of fork order and
// write interleaving.
func TestForkTreeIsolationProperty(t *testing.T) {
	const pages = 8
	fn := func(seed uint64) bool {
		m := struct {
			clock  *sim.Clock
			kernel *Kernel
		}{}
		clock := &sim.Clock{}
		params := sim.DefaultParams()
		memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: 8192})
		if err != nil {
			return false
		}
		kernel, err := NewKernel(clock, &params, memory, Config{PoolBase: 0, PoolFrames: 8192})
		if err != nil {
			return false
		}
		m.clock, m.kernel = clock, kernel

		root, err := kernel.NewAddressSpace()
		if err != nil {
			return false
		}
		va, err := root.Mmap(MmapRequest{Pages: pages, Prot: rw, Anon: true, Private: true})
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed)

		type member struct {
			as     *AddressSpace
			shadow []byte
		}
		initial := make([]byte, pages*mem.FrameSize)
		for i := range initial {
			initial[i] = byte(rng.Uint64())
		}
		if err := root.WriteBuf(va, initial); err != nil {
			return false
		}
		members := []*member{{as: root, shadow: append([]byte(nil), initial...)}}

		for step := 0; step < 40; step++ {
			switch rng.Intn(3) {
			case 0: // fork a random member
				if len(members) >= 8 {
					continue
				}
				parent := members[rng.Intn(len(members))]
				child, err := parent.as.Fork()
				if err != nil {
					t.Logf("fork: %v", err)
					return false
				}
				members = append(members, &member{
					as:     child,
					shadow: append([]byte(nil), parent.shadow...),
				})
			case 1: // random write in a random member
				mb := members[rng.Intn(len(members))]
				off := rng.Uint64n(pages*mem.FrameSize - 16)
				data := make([]byte, 1+rng.Intn(16))
				for i := range data {
					data[i] = byte(rng.Uint64())
				}
				if err := mb.as.WriteBuf(va+mem.VirtAddr(off), data); err != nil {
					t.Logf("write: %v", err)
					return false
				}
				copy(mb.shadow[off:], data)
			case 2: // verify a random member in full
				mb := members[rng.Intn(len(members))]
				got := make([]byte, len(mb.shadow))
				if err := mb.as.ReadBuf(va, got); err != nil {
					t.Logf("read: %v", err)
					return false
				}
				if !bytes.Equal(got, mb.shadow) {
					t.Logf("step %d: member diverged from shadow", step)
					return false
				}
			}
		}
		// Final sweep over every member.
		for i, mb := range members {
			got := make([]byte, len(mb.shadow))
			if err := mb.as.ReadBuf(va, got); err != nil {
				return false
			}
			if !bytes.Equal(got, mb.shadow) {
				t.Logf("final: member %d diverged", i)
				return false
			}
		}
		// Exit everyone; nothing may leak.
		for _, mb := range members {
			if err := mb.as.Destroy(); err != nil {
				t.Logf("destroy: %v", err)
				return false
			}
		}
		if kernel.TrackedPages() != 0 {
			t.Logf("%d struct pages leaked", kernel.TrackedPages())
			return false
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestForkChainDepth exercises a deep fork chain with writes at each
// level: COW ancestry must resolve correctly through many generations.
func TestForkChainDepth(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: 8192})
	if err != nil {
		t.Fatal(err)
	}
	kernel, err := NewKernel(clock, &params, memory, Config{PoolBase: 0, PoolFrames: 8192})
	if err != nil {
		t.Fatal(err)
	}
	as, err := kernel.NewAddressSpace()
	if err != nil {
		t.Fatal(err)
	}
	va, err := as.Mmap(MmapRequest{Pages: 1, Prot: rw, Anon: true, Private: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBuf(va, []byte{0}); err != nil {
		t.Fatal(err)
	}
	chain := []*AddressSpace{as}
	for depth := 1; depth <= 10; depth++ {
		child, err := chain[len(chain)-1].Fork()
		if err != nil {
			t.Fatalf("fork depth %d: %v", depth, err)
		}
		if err := child.WriteBuf(va, []byte{byte(depth)}); err != nil {
			t.Fatal(err)
		}
		chain = append(chain, child)
	}
	// Every generation still sees its own value.
	for depth, member := range chain {
		b, err := member.ReadByteAt(va)
		if err != nil {
			t.Fatal(err)
		}
		if b != byte(depth) {
			t.Fatalf("generation %d reads %d", depth, b)
		}
	}
	for _, member := range chain {
		if err := member.Destroy(); err != nil {
			t.Fatal(err)
		}
	}
	if kernel.TrackedPages() != 0 {
		t.Fatalf("%d pages leaked after chain teardown", kernel.TrackedPages())
	}
}
