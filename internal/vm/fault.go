package vm

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/tlb"
)

// AccessError reports an invalid access (the simulator's SIGSEGV).
type AccessError struct {
	VA    mem.VirtAddr
	Write bool
	Cause string
}

// Error implements error.
func (e *AccessError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("vm: fault: invalid %s at %#x: %s", kind, uint64(e.VA), e.Cause)
}

// Touch simulates one user-mode memory access at va. It models the
// full hardware/OS path: TLB probe, page walk on miss, page fault on
// absent or protection-violating translations, and finally the data
// reference itself. This is the primitive behind every experiment that
// "accesses one byte of each page".
func (a *AddressSpace) Touch(va mem.VirtAddr, write bool) error {
	_, err := a.translate(va, write)
	a.kernel.tierPump(a.cpu)
	return err
}

// translate resolves va to a physical address, performing whatever
// faulting is needed, and charges the access costs.
func (a *AddressSpace) translate(va mem.VirtAddr, write bool) (mem.PhysAddr, error) {
	k := a.kernel
	a.run()
	cur := a.cpu
	a.cTouches.Inc()

	// 1. TLB.
	if tr, hit := a.curTLB().Lookup(a.asid, va); hit {
		if write && tr.Flags&pagetable.FlagCOW != 0 {
			// COW break goes through the fault path; drop the stale
			// entry first (local: the stale entry is this CPU's).
			a.curTLB().InvalidateVA(a.asid, va)
		} else if write && tr.Flags&pagetable.FlagWrite == 0 {
			return 0, &AccessError{VA: va, Write: write, Cause: "write to read-only mapping"}
		} else {
			pa := tr.Translate(va)
			a.chargeDataRef(pa, write)
			a.markAccess(pa, write)
			return pa, nil
		}
	}

	// 2. Page walk.
	if pa, flags, _, ok := a.pt.Walk(cur, va); ok {
		if write && flags&pagetable.FlagCOW != 0 {
			pa2, err := a.cowBreak(va)
			if err != nil {
				return 0, err
			}
			a.chargeDataRef(pa2, write)
			a.markAccess(pa2, write)
			return pa2, nil
		}
		if write && flags&pagetable.FlagWrite == 0 {
			return 0, &AccessError{VA: va, Write: write, Cause: "write to read-only mapping"}
		}
		size, _ := tlb.SizeForFrames(a.pt.PageSize(va) / mem.FrameSize)
		base := pa - mem.PhysAddr(uint64(va)%a.pt.PageSize(va))
		a.curTLB().Insert(a.asid, va, tlb.Translation{Frame: base.Frame(), Size: size, Flags: flags})
		a.chargeDataRef(pa, write)
		a.markAccess(pa, write)
		return pa, nil
	}

	// 3. Page fault.
	cur.Advance(k.Params.FaultOverhead)
	v, ok := a.findVMA(va)
	if !ok {
		return 0, &AccessError{VA: va, Write: write, Cause: "no VMA"}
	}
	if write && v.Prot&pagetable.FlagWrite == 0 {
		return 0, &AccessError{VA: va, Write: write, Cause: "write to read-only VMA"}
	}
	if !write && v.Prot&pagetable.FlagRead == 0 {
		return 0, &AccessError{VA: va, Write: write, Cause: "read from unreadable VMA"}
	}
	page := va.PageBase()
	if err := a.installPage(v, page, true); err != nil {
		return 0, err
	}
	pa, flags, _ := a.pt.Lookup(page)
	if write && flags&pagetable.FlagCOW != 0 {
		var err error
		pa, err = a.cowBreak(va)
		if err != nil {
			return 0, err
		}
		a.chargeDataRef(pa, write)
		a.markAccess(pa, write)
		return pa, nil
	}
	a.curTLB().Insert(a.asid, page, tlb.Translation{Frame: pa.Frame(), Size: tlb.Size4K, Flags: flags})
	pa += mem.PhysAddr(va.PageOffset())
	a.chargeDataRef(pa, write)
	a.markAccess(pa, write)
	return pa, nil
}

// chargeDataRef charges the data-plane reference cost, including NVM
// penalties.
func (a *AddressSpace) chargeDataRef(pa mem.PhysAddr, write bool) {
	k := a.kernel
	cost := k.Params.MemRef
	if k.Memory.Kind(pa.Frame()) == mem.NVM {
		if write {
			cost += k.Params.NVMWritePenalty
		} else {
			cost += k.Params.NVMReadPenalty
		}
	}
	a.cpu.Advance(cost)
}

// markAccess sets the referenced (and dirty) bits, feeding the reclaim
// scanner's second-chance logic. The cost is charged as metadata work
// only when the bits actually change, as hardware sets them for free
// and the kernel reads them lazily.
func (a *AddressSpace) markAccess(pa mem.PhysAddr, write bool) {
	if pi, ok := a.kernel.page(pa.Frame()); ok {
		pi.Flags |= PGReferenced
		if write {
			pi.Flags |= PGDirty
		}
	}
	if t := a.kernel.tier; t != nil {
		t.Record(pa.Frame(), write)
	}
}

// installPage creates the PTE for one page of a VMA. fault says
// whether this is the demand-fault path (counted as a minor/major
// fault) or the populate path.
func (a *AddressSpace) installPage(v *VMA, va mem.VirtAddr, fault bool) error {
	k := a.kernel
	// Swapped-out anonymous page? Major fault.
	if slot, swapped := a.swapped[va]; swapped {
		return a.swapIn(v, va, slot, fault)
	}
	var frame mem.Frame
	var flags PageFlags
	switch {
	case v.UserFault != nil:
		// userfaultfd-style resolution: the kernel suspends the
		// faulting thread, round-trips to the user handler, and copies
		// the supplied contents into a fresh frame (UFFDIO_COPY).
		f, err := k.allocAnonFrame(a.cpu, a.arena)
		if err != nil {
			return err
		}
		page := uint64(va-v.Start) / mem.FrameSize
		data, err := v.UserFault(page, fault)
		if err != nil {
			return &AccessError{VA: va, Write: false, Cause: fmt.Sprintf("user fault handler: %v", err)}
		}
		if len(data) > mem.FrameSize {
			data = data[:mem.FrameSize]
		}
		// Two extra user/kernel crossings: wake the handler, then the
		// handler's resolution call.
		a.cpu.Advance(2 * k.Params.SyscallOverhead)
		if len(data) > 0 {
			k.Memory.WriteAt(f.Addr(), data)
			a.cpu.Advance(k.Params.ReadPerPage())
		}
		frame = f
		flags = PGAnon | PGSwapBacked
		k.stats.Counter("user_faults").Inc()
	case v.Anon:
		f, err := k.allocAnonFrame(a.cpu, a.arena)
		if err != nil {
			return err
		}
		frame = f
		flags = PGAnon | PGSwapBacked
	default:
		filePage := v.FileOff + uint64(va-v.Start)/mem.FrameSize
		f, _, err := v.File.PageFrame(filePage, true)
		if err != nil {
			return err
		}
		frame = f
		flags = PGFile
	}
	prot := v.Prot
	if v.File != nil && v.Private {
		// Private file mapping: writes must COW.
		prot = (prot &^ pagetable.FlagWrite) | pagetable.FlagCOW
	}
	if err := a.pt.Map(a.cpu, va, frame, prot); err != nil {
		return err
	}
	pi := k.trackPage(a.cpu, frame, flags)
	if v.Locked {
		pi.Flags |= PGMlocked
	}
	k.addRmap(a.cpu, pi, a, va)
	if pi.list == nil {
		k.lruInsert(a.cpu, pi)
	}
	if fault {
		k.cMinorFaults.Inc()
	}
	return nil
}

// cowBreak resolves a write to a COW page: the faulting address space
// gets a private copy (or upgrades in place if it is the last sharer).
// It accepts any address within the page and returns the physical
// address corresponding to va in the (possibly new) frame.
func (a *AddressSpace) cowBreak(va mem.VirtAddr) (mem.PhysAddr, error) {
	off := mem.PhysAddr(va.PageOffset())
	va = va.PageBase()
	k := a.kernel
	cur := a.cpu
	cur.Advance(k.Params.FaultOverhead)
	k.stats.Counter("cow_breaks").Inc()
	pa, flags, ok := a.pt.Lookup(va)
	if !ok {
		return 0, fmt.Errorf("vm: cow break of unmapped va %#x", uint64(va))
	}
	frame := pa.Frame()
	pi, tracked := k.page(frame)
	writable := (flags &^ pagetable.FlagCOW) | pagetable.FlagWrite

	if tracked && pi.MapCount > 1 {
		// Shared: copy into a fresh anonymous frame.
		nf, err := k.allocAnonFrame(cur, a.arena)
		if err != nil {
			return 0, err
		}
		k.Memory.CopyFramesOn(cur, nf, frame, 1)
		if _, _, err := a.pt.Unmap(cur, va); err != nil {
			return 0, err
		}
		if err := k.delRmap(cur, pi, a, va); err != nil {
			return 0, err
		}
		if err := a.pt.Map(cur, va, nf, writable); err != nil {
			return 0, err
		}
		npi := k.trackPage(cur, nf, PGAnon|PGSwapBacked|PGDirty)
		k.addRmap(cur, npi, a, va)
		k.lruInsert(cur, npi)
		a.shootdownVA(cur, va)
		a.curTLB().Insert(a.asid, va, tlb.Translation{Frame: nf, Size: tlb.Size4K, Flags: writable})
		return nf.Addr() + off, nil
	}

	// Last sharer of an anonymous page: upgrade in place. For private
	// file pages the first write always copies (the file must not see
	// the store).
	if tracked && pi.Flags&PGFile != 0 {
		nf, err := k.allocAnonFrame(cur, a.arena)
		if err != nil {
			return 0, err
		}
		k.Memory.CopyFramesOn(cur, nf, frame, 1)
		if _, _, err := a.pt.Unmap(cur, va); err != nil {
			return 0, err
		}
		if err := k.delRmap(cur, pi, a, va); err != nil {
			return 0, err
		}
		if !pi.Mapped() {
			k.forgetPage(cur, pi)
		}
		if err := a.pt.Map(cur, va, nf, writable); err != nil {
			return 0, err
		}
		npi := k.trackPage(cur, nf, PGAnon|PGSwapBacked|PGDirty)
		k.addRmap(cur, npi, a, va)
		k.lruInsert(cur, npi)
		a.shootdownVA(cur, va)
		a.curTLB().Insert(a.asid, va, tlb.Translation{Frame: nf, Size: tlb.Size4K, Flags: writable})
		return nf.Addr() + off, nil
	}

	if err := a.pt.Protect(cur, va, writable); err != nil {
		return 0, err
	}
	a.shootdownVA(cur, va)
	a.curTLB().Insert(a.asid, va, tlb.Translation{Frame: frame, Size: tlb.Size4K, Flags: writable})
	if tracked {
		pi.Flags |= PGDirty
	}
	return pa + off, nil
}

// swapIn services a major fault.
func (a *AddressSpace) swapIn(v *VMA, va mem.VirtAddr, slot int, fault bool) error {
	k := a.kernel
	f, err := k.allocAnonFrame(a.cpu, a.arena)
	if err != nil {
		return err
	}
	data, err := k.swap.read(slot)
	if err != nil {
		return err
	}
	k.Memory.WriteAt(f.Addr(), data)
	a.cpu.Advance(k.Params.SwapPageIO)
	k.swap.free(slot)
	delete(a.swapped, va)
	if err := a.pt.Map(a.cpu, va, f, v.Prot); err != nil {
		return err
	}
	pi := k.trackPage(a.cpu, f, PGAnon|PGSwapBacked)
	k.addRmap(a.cpu, pi, a, va)
	k.lruInsert(a.cpu, pi)
	if fault {
		k.stats.Counter("major_faults").Inc()
	}
	k.stats.Counter("swapins").Inc()
	return nil
}
