package vm

import (
	"fmt"
	"sort"

	"repro/internal/buddy"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/metrics"
	"repro/internal/pagetable"
	"repro/internal/sim"
	"repro/internal/tlb"
)

// mmapBase is where automatic placement starts searching, mirroring the
// upper mmap area of a 48-bit layout.
const mmapBase = mem.VirtAddr(1) << 40

// VMA is one virtual memory area.
type VMA struct {
	Start mem.VirtAddr
	End   mem.VirtAddr // exclusive
	Prot  pagetable.Flags

	Anon    bool
	File    *memfs.File
	FileOff uint64 // file page index at Start
	Private bool   // MAP_PRIVATE: writes COW into anon pages
	Locked  bool   // mlock'd at map time

	// UserFault, if set, resolves faults in this VMA in user space
	// (the userfaultfd mechanism §3.1 points applications at for
	// do-it-yourself swapping). The handler returns the page's initial
	// contents.
	UserFault UserFaultHandler

	// Huge backs the VMA with 2 MiB pages (anonymous + populated
	// only): far fewer PTEs and TLB entries, at the price of aligned
	// contiguous physical memory and internal fragmentation — the §3
	// trade-off.
	Huge bool

	populate bool
}

// UserFaultHandler supplies the contents of a faulting page. page is
// the page index within the VMA. The returned slice may be shorter
// than a page (the rest is zero-filled).
type UserFaultHandler func(page uint64, write bool) ([]byte, error)

// Pages returns the VMA's length in pages.
func (v *VMA) Pages() uint64 { return uint64(v.End-v.Start) / mem.FrameSize }

// Contains reports whether va falls inside the VMA.
func (v *VMA) Contains(va mem.VirtAddr) bool { return va >= v.Start && va < v.End }

// AddressSpace is one process's baseline-VM address space. It is
// scheduled on one CPU at a time (its home CPU); cpuMask records every
// CPU it has ever run on, the mm_cpumask analogue that bounds TLB
// shootdown broadcasts.
type AddressSpace struct {
	kernel *Kernel
	asid   int
	cpu    *sim.CPU

	// arena is the home CPU's private frame arena if one was carved
	// before this address space was created; page-table nodes and
	// anonymous frames then come from it instead of the global pool,
	// making the per-page hot paths free of cross-CPU state.
	arena *Arena

	// cpuMask[i] is true if this address space has run on CPU i since
	// creation, i.e. CPU i's TLB may cache its translations.
	cpuMask []bool

	vmas []*VMA // sorted by Start, non-overlapping
	pt   *pagetable.Table

	// swapped records pages that have been swapped out: va -> slot.
	swapped map[mem.VirtAddr]int

	// shootScratch is the reusable target list for shootdown IPIs, so
	// per-page unmap loops do not allocate a slice per page.
	shootScratch []*sim.CPU

	// shoot is the deferred-invalidation queue: one unmap/mprotect
	// burst batches its per-page invalidations and flushes them as a
	// single range invalidation plus one IPI round (see flushShoot).
	shoot shootBatch

	stats *metrics.Set
	// Cached counters for the per-access and per-page paths.
	cTouches, cPopulated *metrics.Counter
}

// NewAddressSpace creates an empty address space with its own page
// table, scheduled round-robin onto the machine's CPUs.
func (k *Kernel) NewAddressSpace() (*AddressSpace, error) {
	cpu := k.Machine.CPU(k.nextCPU % k.Machine.NumCPUs())
	k.nextCPU++
	return k.NewAddressSpaceOn(cpu)
}

// NewAddressSpaceOn creates an empty address space homed on cpu; the
// page-table setup cost is charged to that CPU. When cpu has a carved
// arena, the address space draws page-table nodes and anonymous frames
// from it.
func (k *Kernel) NewAddressSpaceOn(cpu *sim.CPU) (*AddressSpace, error) {
	ar := k.ArenaFor(cpu)
	alloc := k.pool
	if ar != nil {
		alloc = ar.pool
	}
	pt, err := pagetable.New(cpu, k.Params, alloc, k.levels)
	if err != nil {
		return nil, err
	}
	a := &AddressSpace{
		kernel:  k,
		cpu:     cpu,
		arena:   ar,
		cpuMask: make([]bool, k.Machine.NumCPUs()),
		pt:      pt,
		swapped: make(map[mem.VirtAddr]int),
		stats:   metrics.NewSet(),
	}
	a.cTouches = a.stats.Counter("touches")
	a.cPopulated = a.stats.Counter("populated_pages")
	a.cpuMask[cpu.ID()] = true
	// The registry is sharded by creation CPU, so registering touches
	// only cpu's own shard: no sync point even during a parallel phase,
	// and ASID assignment stays a pure function of each CPU's creation
	// order rather than of host scheduling.
	k.registerSpace(a)
	return a, nil
}

// CPU returns the address space's current home CPU.
func (a *AddressSpace) CPU() *sim.CPU { return a.cpu }

// RunOn migrates the address space to cpu: subsequent operations
// execute (and are charged) there. The previous CPU stays in the
// shootdown mask — its TLB may still hold entries.
func (a *AddressSpace) RunOn(cpu *sim.CPU) {
	a.cpu = cpu
	a.cpuMask[cpu.ID()] = true
}

// MarkRanOn adds cpu to the shootdown mask without migrating the home
// CPU: the mm_cpumask effect of a thread briefly scheduled there.
// Subsequent unmaps will shoot cpu's TLB down. Workloads use it to
// model multi-threaded tenants whose threads touch a neighbor CPU.
func (a *AddressSpace) MarkRanOn(cpu *sim.CPU) {
	a.cpuMask[cpu.ID()] = true
}

// run makes the home CPU current, so legacy code charging through the
// forwarding kernel clock lands on it. Called at every syscall/fault
// entry point. During a host-parallel free-running window there is no
// single current CPU and nothing to set: the VM paths charge the home
// CPU explicitly.
func (a *AddressSpace) run() {
	if a.kernel.Machine.FreeRunning() {
		return
	}
	a.kernel.Machine.SetCurrent(a.cpu)
}

// curTLB returns the TLB of the address space's home CPU — the CPU
// executing its syscalls and faults (run() makes it current out of a
// parallel phase).
func (a *AddressSpace) curTLB() *tlb.TLB {
	return a.kernel.tlbs[a.cpu.ID()]
}

// framePool returns the allocator backing this address space's
// anonymous and compound frames.
func (a *AddressSpace) framePool() *buddy.Allocator {
	if a.arena != nil {
		return a.arena.pool
	}
	return a.kernel.pool
}

// shootdownVA invalidates the translation for va on every CPU that may
// cache it: an invalidation on the executing CPU from, plus one modeled
// IPI round to the other CPUs in the mask — each target pays IPIReceive
// and the per-entry invalidation on its own clock, and the initiator
// synchronizes to the slowest target (Lamport merge). With one CPU (or
// a single-CPU mask) no IPIs are sent and only the local invalidation
// is charged, reproducing the pre-SMP behaviour. During a parallel
// phase a nonempty remote set becomes a sync point inside Machine.IPI.
func (a *AddressSpace) shootdownVA(from *sim.CPU, va mem.VirtAddr) {
	k := a.kernel
	if a.cpuMask[from.ID()] {
		k.tlbs[from.ID()].InvalidateVA(a.asid, va)
	}
	k.Machine.IPI(from, a.remoteCPUs(from), func(t *sim.CPU) {
		k.tlbs[t.ID()].InvalidateVA(a.asid, va)
	})
}

// shootBatch is a per-burst deferred-invalidation queue, the
// mmu_gather analogue of Linux's batched TLB flush: instead of one
// shootdown IPI round per page, an unmap burst records the VA range it
// zaps and invalidates it in one round at the end. Each queued page
// charges ShootdownQueueOp (bookkeeping); the flush charges one range
// invalidation per masked CPU — per-page INVLPGs up to the 33-page
// ceiling, one full flush beyond it — and one IPI round to the remote
// mask. The batch is active only inside a single burst on the home
// CPU, so it needs no synchronization.
type shootBatch struct {
	active bool
	lo, hi mem.VirtAddr // page-aligned bounds of the queued range
	pages  uint64       // queued invalidations (4 KiB units)
}

// beginShoot opens a deferred-invalidation batch. Bursts never nest.
func (a *AddressSpace) beginShoot() {
	if a.shoot.active {
		panic("vm: nested shootdown batch")
	}
	a.shoot = shootBatch{active: true}
}

// queueShoot records a pending invalidation of span pages at va,
// charging the per-page batching bookkeeping; outside a batch it
// degrades to an immediate per-page shootdown.
func (a *AddressSpace) queueShoot(cur *sim.CPU, va mem.VirtAddr, span uint64) {
	if !a.shoot.active {
		a.shootdownVA(cur, va)
		return
	}
	cur.Advance(a.kernel.Params.ShootdownQueueOp)
	end := va + mem.VirtAddr(span*mem.FrameSize)
	if a.shoot.pages == 0 {
		a.shoot.lo, a.shoot.hi = va, end
	} else {
		if va < a.shoot.lo {
			a.shoot.lo = va
		}
		if end > a.shoot.hi {
			a.shoot.hi = end
		}
	}
	a.shoot.pages += span
}

// flushShoot closes the batch and performs the coalesced invalidation:
// one range invalidation on every CPU in the mask (the span covers any
// holes conservatively — over-invalidation is safe and mirrors the
// full-flush heuristic real kernels use for large ranges), delivered
// to remote CPUs in a single IPI round.
func (a *AddressSpace) flushShoot(cur *sim.CPU) {
	if !a.shoot.active {
		panic("vm: flush without an open shootdown batch")
	}
	a.shoot.active = false
	if a.shoot.pages == 0 {
		return
	}
	k := a.kernel
	lo := a.shoot.lo
	span := uint64(a.shoot.hi-lo) / mem.FrameSize
	if a.cpuMask[cur.ID()] {
		k.tlbs[cur.ID()].InvalidateRange(a.asid, lo, span)
	}
	k.Machine.IPI(cur, a.remoteCPUs(cur), func(t *sim.CPU) {
		k.tlbs[t.ID()].InvalidateRange(a.asid, lo, span)
	})
	sim.AddCoalescedInvals(int(a.shoot.pages))
}

// remoteCPUs returns the CPUs in the shootdown mask other than from.
// The returned slice is a.shootScratch: valid until the next call,
// which is fine because Machine.IPI only iterates it.
func (a *AddressSpace) remoteCPUs(from *sim.CPU) []*sim.CPU {
	out := a.shootScratch[:0]
	for i, in := range a.cpuMask {
		if in && i != from.ID() {
			out = append(out, a.kernel.Machine.CPU(i))
		}
	}
	a.shootScratch = out
	return out
}

// Stats exposes per-address-space counters: "mmaps", "munmaps",
// "populated_pages", "touches".
func (a *AddressSpace) Stats() *metrics.Set { return a.stats }

// PageTable exposes the address space's page table (diagnostics and
// the ablation benches).
func (a *AddressSpace) PageTable() *pagetable.Table { return a.pt }

// TLB exposes the TLB of the address space's home CPU.
func (a *AddressSpace) TLB() *tlb.TLB { return a.kernel.tlbs[a.cpu.ID()] }

// ASID returns the address space identifier tagging this space's TLB
// entries.
func (a *AddressSpace) ASID() int { return a.asid }

// VMACount returns the number of VMAs.
func (a *AddressSpace) VMACount() int { return len(a.vmas) }

// MappedPages returns the number of present PTEs.
func (a *AddressSpace) MappedPages() uint64 { return a.pt.MappedPages() }

// findVMA returns the VMA containing va.
func (a *AddressSpace) findVMA(va mem.VirtAddr) (*VMA, bool) {
	a.cpu.Advance(a.kernel.Params.VMAOp)
	i := sort.Search(len(a.vmas), func(i int) bool { return a.vmas[i].End > va })
	if i < len(a.vmas) && a.vmas[i].Contains(va) {
		return a.vmas[i], true
	}
	return nil, false
}

// findGap returns a free region of the given page count at or above
// mmapBase.
func (a *AddressSpace) findGap(pages uint64) (mem.VirtAddr, error) {
	length := mem.VirtAddr(pages * mem.FrameSize)
	cur := mmapBase
	for _, v := range a.vmas {
		if v.End <= cur {
			continue
		}
		if v.Start >= cur+length {
			break
		}
		cur = v.End
	}
	if cur+length >= a.pt.MaxVirt() {
		return 0, fmt.Errorf("vm: address space exhausted")
	}
	return cur, nil
}

// findAlignedGap is findGap with an alignment constraint in pages.
func (a *AddressSpace) findAlignedGap(pages, alignPages uint64) (mem.VirtAddr, error) {
	align := mem.VirtAddr(alignPages * mem.FrameSize)
	length := mem.VirtAddr(pages * mem.FrameSize)
	cur := mmapBase
	for _, v := range a.vmas {
		if v.End <= cur {
			continue
		}
		if v.Start >= cur+length {
			break
		}
		cur = v.End
		if rem := cur % align; rem != 0 {
			cur += align - rem
		}
	}
	if rem := cur % align; rem != 0 {
		cur += align - rem
	}
	if cur+length >= a.pt.MaxVirt() {
		return 0, fmt.Errorf("vm: address space exhausted")
	}
	// The post-alignment position may collide; verify.
	if a.overlapsExisting(cur, pages) {
		return 0, fmt.Errorf("vm: no aligned gap for %d pages", pages)
	}
	return cur, nil
}

// MmapRequest describes a mapping request.
type MmapRequest struct {
	// Addr is the fixed placement address (0 = kernel chooses).
	Addr mem.VirtAddr
	// Pages is the length in 4 KiB pages.
	Pages uint64
	// Prot is the mapping protection.
	Prot pagetable.Flags
	// Anon selects anonymous memory; otherwise File must be set.
	Anon bool
	// File is the backing file for file mappings (a reference is taken
	// for the lifetime of the mapping).
	File *memfs.File
	// FileOff is the first file page mapped.
	FileOff uint64
	// Populate pre-faults every page (MAP_POPULATE).
	Populate bool
	// Private requests copy-on-write semantics for writes.
	Private bool
	// Locked mlocks the region (implies Populate, like MAP_LOCKED).
	Locked bool
	// UserFault registers a user-space fault handler for the region
	// (anonymous mappings only, incompatible with Populate).
	UserFault UserFaultHandler
	// Huge requests 2 MiB pages (anonymous only; implies Populate;
	// Pages must be a multiple of 512).
	Huge bool
}

// Mmap creates a mapping and returns its address. It charges the
// syscall overhead plus VMA bookkeeping; with Populate it additionally
// pays the per-page population loop that Figure 6a measures.
func (a *AddressSpace) Mmap(req MmapRequest) (mem.VirtAddr, error) {
	k := a.kernel
	a.run()
	a.cpu.Advance(k.Params.SyscallOverhead + k.Params.MmapFixed)
	if req.Pages == 0 {
		return 0, fmt.Errorf("vm: empty mapping")
	}
	if !req.Anon && req.File == nil {
		return 0, fmt.Errorf("vm: file mapping without file")
	}
	if req.Anon && req.File != nil {
		return 0, fmt.Errorf("vm: anonymous mapping with file")
	}
	if req.Prot == 0 {
		return 0, fmt.Errorf("vm: PROT_NONE mappings not supported")
	}
	addr := req.Addr
	if addr == 0 {
		var err error
		addr, err = a.findGap(req.Pages)
		if err != nil {
			return 0, err
		}
	} else {
		if uint64(addr)%mem.FrameSize != 0 {
			return 0, fmt.Errorf("vm: unaligned fixed address %#x", uint64(addr))
		}
		if a.overlapsExisting(addr, req.Pages) {
			return 0, fmt.Errorf("vm: fixed mapping at %#x overlaps existing VMA", uint64(addr))
		}
	}
	if req.Locked {
		req.Populate = true
	}
	if req.UserFault != nil {
		if !req.Anon {
			return 0, fmt.Errorf("vm: user-fault regions must be anonymous")
		}
		if req.Populate {
			return 0, fmt.Errorf("vm: user-fault regions cannot be populated")
		}
	}
	if req.Huge {
		if !req.Anon || req.UserFault != nil {
			return 0, fmt.Errorf("vm: huge mappings must be plain anonymous memory")
		}
		if req.Pages%mem.HugeFrames2M != 0 {
			return 0, fmt.Errorf("vm: huge mapping length %d pages not a 2 MiB multiple", req.Pages)
		}
		req.Populate = true
		if uint64(addr)%(mem.HugeFrames2M*mem.FrameSize) != 0 {
			if req.Addr != 0 {
				return 0, fmt.Errorf("vm: fixed huge mapping at %#x not 2 MiB aligned", uint64(addr))
			}
			aligned, err := a.findAlignedGap(req.Pages, mem.HugeFrames2M)
			if err != nil {
				return 0, err
			}
			addr = aligned
		}
	}
	v := &VMA{
		Start:     addr,
		End:       addr + mem.VirtAddr(req.Pages*mem.FrameSize),
		Prot:      req.Prot,
		Anon:      req.Anon,
		File:      req.File,
		FileOff:   req.FileOff,
		Private:   req.Private,
		Locked:    req.Locked,
		UserFault: req.UserFault,
		Huge:      req.Huge,
		populate:  req.Populate,
	}
	if v.File != nil {
		if v.FileOff+req.Pages > v.File.Inode().Pages() {
			return 0, fmt.Errorf("vm: mapping [%d,+%d) pages beyond EOF (%d pages)",
				v.FileOff, req.Pages, v.File.Inode().Pages())
		}
		v.File.Ref() // the mapping pins the file
	}
	a.insertVMA(v)
	a.stats.Counter("mmaps").Inc()

	if req.Populate {
		if err := a.populateVMA(v); err != nil {
			return 0, err
		}
	}
	return addr, nil
}

func (a *AddressSpace) overlapsExisting(addr mem.VirtAddr, pages uint64) bool {
	end := addr + mem.VirtAddr(pages*mem.FrameSize)
	for _, v := range a.vmas {
		if v.Start < end && addr < v.End {
			return true
		}
	}
	return false
}

// insertVMA adds v in sorted position, merging with adjacent anonymous
// VMAs of identical attributes (the Linux merge optimization §3.1
// notes becomes harder with file-only memory).
func (a *AddressSpace) insertVMA(v *VMA) {
	k := a.kernel
	a.cpu.Advance(k.Params.VMAOp)
	i := sort.Search(len(a.vmas), func(i int) bool { return a.vmas[i].Start > v.Start })
	// Merge left.
	if i > 0 {
		l := a.vmas[i-1]
		if l.End == v.Start && canMerge(l, v) {
			l.End = v.End
			a.cpu.Advance(k.Params.VMAOp)
			// Merge right into the grown left.
			if i < len(a.vmas) {
				r := a.vmas[i]
				if l.End == r.Start && canMerge(l, r) {
					l.End = r.End
					a.vmas = append(a.vmas[:i], a.vmas[i+1:]...)
				}
			}
			return
		}
	}
	// Merge right.
	if i < len(a.vmas) {
		r := a.vmas[i]
		if v.End == r.Start && canMerge(v, r) {
			r.Start = v.Start
			a.cpu.Advance(k.Params.VMAOp)
			return
		}
	}
	a.vmas = append(a.vmas, nil)
	copy(a.vmas[i+1:], a.vmas[i:])
	a.vmas[i] = v
}

func canMerge(l, r *VMA) bool {
	return l.Anon && r.Anon &&
		l.UserFault == nil && r.UserFault == nil &&
		l.Huge == r.Huge && !l.Huge &&
		l.Prot == r.Prot &&
		l.Private == r.Private &&
		l.Locked == r.Locked &&
		l.populate == r.populate
}

// populateVMA pre-faults every page of the VMA — the linear
// MAP_POPULATE loop. Huge VMAs populate in 2 MiB steps instead.
func (a *AddressSpace) populateVMA(v *VMA) error {
	if v.Huge {
		return a.populateHuge(v)
	}
	for p := uint64(0); p < v.Pages(); p++ {
		va := v.Start + mem.VirtAddr(p*mem.FrameSize)
		if _, _, ok := a.pt.Lookup(va); ok {
			continue
		}
		if err := a.installPage(v, va, false); err != nil {
			return err
		}
		a.cPopulated.Inc()
	}
	return nil
}

// populateHuge backs a huge VMA with 2 MiB pages: one aligned 512-frame
// run, one zeroing pass, and one PTE per 2 MiB.
func (a *AddressSpace) populateHuge(v *VMA) error {
	k := a.kernel
	for c := uint64(0); c < v.Pages(); c += mem.HugeFrames2M {
		va := v.Start + mem.VirtAddr(c*mem.FrameSize)
		if _, _, ok := a.pt.Lookup(va); ok {
			continue
		}
		run, err := a.framePool().Alloc(9) // order-9 block: 512 aligned frames
		if err != nil {
			return fmt.Errorf("vm: no contiguous 2 MiB block: %w", err)
		}
		k.Memory.ZeroFramesOn(a.cpu, run, mem.HugeFrames2M)
		if err := a.pt.Map2M(a.cpu, va, run, v.Prot); err != nil {
			return err
		}
		pi := k.trackPage(a.cpu, run, PGAnon|PGCompound)
		k.addRmap(a.cpu, pi, a, va)
		a.cPopulated.Add(mem.HugeFrames2M)
	}
	return nil
}

// Munmap removes mappings in [addr, addr+pages*4K). Whole-VMA unmaps
// only (like the common munmap use); partial unmaps split VMAs.
func (a *AddressSpace) Munmap(addr mem.VirtAddr, pages uint64) error {
	k := a.kernel
	a.run()
	a.cpu.Advance(k.Params.SyscallOverhead)
	end := addr + mem.VirtAddr(pages*mem.FrameSize)
	var kept []*VMA
	var dropped []*VMA
	for _, v := range a.vmas {
		switch {
		case v.End <= addr || v.Start >= end:
			kept = append(kept, v)
		case v.Start >= addr && v.End <= end:
			dropped = append(dropped, v)
		default:
			// Partial overlap: split into retained pieces.
			a.cpu.Advance(k.Params.VMAOp)
			if v.Start < addr {
				left := *v
				left.End = addr
				kept = append(kept, &left)
				if v.File != nil {
					v.File.Ref()
				}
			}
			if v.End > end {
				right := *v
				right.Start = end
				right.FileOff = v.FileOff + uint64(end-v.Start)/mem.FrameSize
				kept = append(kept, &right)
				if v.File != nil {
					v.File.Ref()
				}
			}
			mid := *v
			if mid.Start < addr {
				mid.FileOff += uint64(addr-mid.Start) / mem.FrameSize
				mid.Start = addr
			}
			if mid.End > end {
				mid.End = end
			}
			dropped = append(dropped, &mid)
		}
	}
	if len(dropped) == 0 {
		return fmt.Errorf("vm: munmap of unmapped range [%#x,+%d pages)", uint64(addr), pages)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Start < kept[j].Start })
	a.vmas = kept
	for _, v := range dropped {
		if err := a.zapVMA(v); err != nil {
			return err
		}
	}
	a.stats.Counter("munmaps").Inc()
	return nil
}

// zapVMA tears down a VMA's pages and drops its file reference.
func (a *AddressSpace) zapVMA(v *VMA) error {
	k := a.kernel
	if err := a.zapRange(v, v.Start, v.Pages()); err != nil {
		return err
	}
	// Swapped-out pages of the region die with it.
	for va := range a.swapped {
		if va >= v.Start && va < v.End {
			k.swap.free(a.swapped[va])
			delete(a.swapped, va)
		}
	}
	if v.File != nil {
		if err := v.File.Unref(); err != nil {
			return err
		}
	}
	return nil
}

// zapRange unmaps pages and releases anonymous frames. Every page
// pays a PTE clear, struct-page and rmap updates — the O(pages)
// teardown work of the baseline design — but the per-page TLB
// shootdowns are queued into one deferred-invalidation batch and
// flushed as a single range invalidation plus one IPI round for the
// whole burst, the way Linux's mmu_gather batches munmap flushes.
func (a *AddressSpace) zapRange(v *VMA, start mem.VirtAddr, pages uint64) error {
	k := a.kernel
	cur := a.cpu
	a.beginShoot()
	defer a.flushShoot(cur)
	end := start + mem.VirtAddr(pages*mem.FrameSize)
	for va := start; va < end; {
		if sz := a.pt.PageSize(va); sz == 0 {
			va += mem.FrameSize
			continue
		}
		frame, span, err := a.pt.Unmap(cur, va)
		if err != nil {
			return err
		}
		a.queueShoot(cur, va, span)
		if pi, tracked := k.page(frame); tracked {
			if err := k.delRmap(cur, pi, a, va); err != nil {
				return err
			}
			if !pi.Mapped() {
				flags := pi.Flags
				k.forgetPage(cur, pi)
				switch {
				case flags&PGCompound != 0:
					if err := k.poolFor(frame).Free(frame); err != nil {
						return err
					}
				case flags&PGAnon != 0:
					if err := k.freeAnonFrame(frame); err != nil {
						return err
					}
				}
			}
		}
		va += mem.VirtAddr(span * mem.FrameSize)
	}
	return nil
}

// Mprotect rewrites the protection of [addr, addr+pages*4K): a
// per-page PTE update plus TLB invalidation.
func (a *AddressSpace) Mprotect(addr mem.VirtAddr, pages uint64, prot pagetable.Flags) error {
	k := a.kernel
	a.run()
	a.cpu.Advance(k.Params.SyscallOverhead)
	v, ok := a.findVMA(addr)
	if !ok || addr+mem.VirtAddr(pages*mem.FrameSize) > v.End {
		return fmt.Errorf("vm: mprotect range not within one VMA")
	}
	if v.Start != addr || v.Pages() != pages {
		return fmt.Errorf("vm: partial-VMA mprotect not supported (split first)")
	}
	v.Prot = prot
	step := uint64(1)
	if v.Huge {
		step = mem.HugeFrames2M
	}
	cur := a.cpu
	a.beginShoot()
	defer a.flushShoot(cur)
	for p := uint64(0); p < pages; p += step {
		va := addr + mem.VirtAddr(p*mem.FrameSize)
		if _, f, ok := a.pt.Lookup(va); ok {
			newFlags := prot
			if f&pagetable.FlagCOW != 0 {
				newFlags = (prot &^ pagetable.FlagWrite) | pagetable.FlagCOW
			}
			if err := a.pt.Protect(cur, va, newFlags); err != nil {
				return err
			}
			a.queueShoot(cur, va, step)
		}
	}
	return nil
}

// MadviseDontneed drops the pages of [addr, +pages) while keeping the
// VMA, as MADV_DONTNEED does: the heap's way of returning memory.
func (a *AddressSpace) MadviseDontneed(addr mem.VirtAddr, pages uint64) error {
	k := a.kernel
	a.run()
	a.cpu.Advance(k.Params.SyscallOverhead)
	v, ok := a.findVMA(addr)
	if !ok || addr+mem.VirtAddr(pages*mem.FrameSize) > v.End {
		return fmt.Errorf("vm: madvise range not within one VMA")
	}
	return a.zapRange(v, addr, pages)
}

// Mlock pins the VMA's pages (populating them first, as mlock must).
func (a *AddressSpace) Mlock(addr mem.VirtAddr) error {
	k := a.kernel
	a.run()
	a.cpu.Advance(k.Params.SyscallOverhead)
	v, ok := a.findVMA(addr)
	if !ok {
		return fmt.Errorf("vm: mlock of unmapped address %#x", uint64(addr))
	}
	v.Locked = true
	if err := a.populateVMA(v); err != nil {
		return err
	}
	for p := uint64(0); p < v.Pages(); p++ {
		va := v.Start + mem.VirtAddr(p*mem.FrameSize)
		if pa, _, ok := a.pt.Lookup(va); ok {
			if pi, tracked := k.page(pa.Frame()); tracked {
				pi.Flags |= PGMlocked
				k.chargeMeta(a.cpu, 1)
			}
		}
	}
	return nil
}

// Destroy tears down the whole address space (process exit).
func (a *AddressSpace) Destroy() error {
	k := a.kernel
	a.run()
	for _, v := range a.vmas {
		if err := a.zapVMA(v); err != nil {
			return err
		}
	}
	a.vmas = nil
	// The registry shard belongs to the creation CPU. Deregistering
	// from that CPU (the common case — tenants die where they were
	// born) is shard-local and needs no sync point; a space destroyed
	// from another CPU during a parallel phase syncs with the shard
	// owner only.
	shard := (a.asid - 1) % len(k.shards)
	deregister := func() { delete(k.shards[shard].spaces, a.asid) }
	if k.Machine.FreeRunning() && shard != a.cpu.ID() {
		k.Machine.OrderedDomain(a.cpu, []*sim.CPU{k.Machine.CPU(shard)}, deregister)
	} else {
		deregister()
	}
	return a.pt.Destroy()
}

// VMAs returns a snapshot of the address space's VMAs.
func (a *AddressSpace) VMAs() []VMA {
	out := make([]VMA, len(a.vmas))
	for i, v := range a.vmas {
		out[i] = *v
	}
	return out
}
