package vm_test

import (
	"fmt"
	"log"

	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Example demonstrates the baseline VM: demand-paged anonymous memory,
// per-page faulting, and the fault counters the paper's figures track.
func Example() {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: 16384})
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := vm.NewKernel(clock, &params, memory, vm.Config{PoolFrames: 16384})
	if err != nil {
		log.Fatal(err)
	}
	as, err := kernel.NewAddressSpace()
	if err != nil {
		log.Fatal(err)
	}

	const rw = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser
	va, err := as.Mmap(vm.MmapRequest{Pages: 8, Prot: rw, Anon: true, Private: true})
	if err != nil {
		log.Fatal(err)
	}
	// Touch every page: each first touch takes a minor fault.
	for p := uint64(0); p < 8; p++ {
		if err := as.Touch(va+mem.VirtAddr(p*mem.FrameSize), true); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("minor faults: %d, resident pages: %d\n",
		kernel.Stats().Value("minor_faults"), as.MappedPages())

	// Second pass hits the TLB: no new faults.
	for p := uint64(0); p < 8; p++ {
		if err := as.Touch(va+mem.VirtAddr(p*mem.FrameSize), false); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("minor faults after re-touch: %d\n", kernel.Stats().Value("minor_faults"))
	// Output:
	// minor faults: 8, resident pages: 8
	// minor faults after re-touch: 8
}
