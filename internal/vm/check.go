package vm

import (
	"fmt"

	"repro/internal/buddy"
	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/tlb"
)

// CheckInvariants audits the kernel's global memory-management state:
// the pagetable ↔ PageInfo/rmap bijection, buddy free-list
// disjointness, recycled-object scrubbing, per-CPU TLB freshness, swap
// consistency, and LRU list accounting. It is registered with the
// machine at kernel construction (Machine.CheckInvariants runs it) and
// charges no simulated time, so tests may call it between any two
// operations without perturbing timing results.
func (k *Kernel) CheckInvariants() error {
	// refs[frame] counts mappings observed by walking every live page
	// table; it must agree with each PageInfo's MapCount and rmap.
	refs := make(map[mem.Frame]int)

	// Forward direction: every present leaf PTE points at a frame whose
	// metadata exists and whose rmap records this exact (as, va).
	err := k.eachSpace(func(asid int, as *AddressSpace) error {
		if as.asid != asid {
			return fmt.Errorf("vm: address space registered under ASID %d but carries %d", asid, as.asid)
		}
		if err := as.pt.CheckInvariants(); err != nil {
			return fmt.Errorf("vm: asid %d: %w", asid, err)
		}
		if as.shoot.active {
			return fmt.Errorf("vm: asid %d has an open shootdown batch", asid)
		}
		var leafErr error
		as.pt.VisitLeaves(func(va mem.VirtAddr, frame mem.Frame, pages uint64, flags pagetable.Flags) {
			if leafErr != nil {
				return
			}
			refs[frame]++
			pi, ok := k.page(frame)
			if !ok {
				leafErr = fmt.Errorf("vm: asid %d maps va %#x to untracked frame %d", asid, uint64(va), frame)
				return
			}
			if !rmapContains(pi, as, va) {
				leafErr = fmt.Errorf("vm: asid %d va %#x -> frame %d, but the frame's rmap has no such entry", asid, uint64(va), frame)
			}
		})
		return leafErr
	})
	if err != nil {
		return err
	}

	// Reverse direction, per metadata domain: every rmap entry points
	// at a live address space whose page table maps that va back to
	// this frame, and the per-frame counts agree with the forward walk.
	// A frame filed in the wrong domain would fail here too: domainOf
	// routes by frame number, so the walk would not find it.
	err = k.domains(func(label string, d *metaDomain, pool *buddy.Allocator) error {
		for frame, pi := range d.pages {
			if k.domainOf(frame) != d {
				return fmt.Errorf("vm: frame %d tracked in the wrong domain (%s)", frame, label)
			}
			if pi.Frame != frame {
				return fmt.Errorf("vm: PageInfo for frame %d carries frame %d", frame, pi.Frame)
			}
			if pi.MapCount != len(pi.rmap) {
				return fmt.Errorf("vm: frame %d MapCount %d but rmap holds %d entries", frame, pi.MapCount, len(pi.rmap))
			}
			if got := refs[frame]; got != len(pi.rmap) {
				return fmt.Errorf("vm: frame %d has %d rmap entries but %d page-table mappings", frame, len(pi.rmap), got)
			}
			for _, e := range pi.rmap {
				live, ok := k.space(e.as.asid)
				if !ok || live != e.as {
					return fmt.Errorf("vm: frame %d rmap references dead address space (asid %d)", frame, e.as.asid)
				}
				pa, _, ok := e.as.pt.Lookup(e.va)
				if !ok {
					return fmt.Errorf("vm: frame %d rmap says asid %d maps va %#x, but the page table does not", frame, e.as.asid, uint64(e.va))
				}
				if pa.Frame() != frame {
					return fmt.Errorf("vm: frame %d rmap entry (asid %d, va %#x) resolves to frame %d", frame, e.as.asid, uint64(e.va), pa.Frame())
				}
			}
		}

		// Buddy pool: internal accounting must tile the managed range,
		// and no free block may cover a frame that still has live
		// metadata (a mapped or tracked frame on the free list is a
		// use-after-free). Carved arena ranges are allocated runs from
		// the global pool's point of view, so each pool is audited
		// against frame metadata via the domain routing.
		if err := pool.CheckInvariants(); err != nil {
			return fmt.Errorf("vm: %s pool: %w", label, err)
		}
		var freeErr error
		pool.VisitFree(func(start mem.Frame, count uint64) {
			if freeErr != nil {
				return
			}
			for i := uint64(0); i < count; i++ {
				if _, tracked := k.page(start + mem.Frame(i)); tracked {
					freeErr = fmt.Errorf("vm: frame %d is on the %s buddy free list but still tracked", start+mem.Frame(i), label)
					return
				}
			}
		})
		return freeErr
	})
	if err != nil {
		return err
	}

	// The slow-tier pool shares the global metadata domain, so it is
	// audited separately: internal accounting plus the same no-free-
	// but-tracked rule as the other pools.
	if k.slowPool != nil {
		if err := k.slowPool.CheckInvariants(); err != nil {
			return fmt.Errorf("vm: slow pool: %w", err)
		}
		var freeErr error
		k.slowPool.VisitFree(func(start mem.Frame, count uint64) {
			if freeErr != nil {
				return
			}
			for i := uint64(0); i < count; i++ {
				if _, tracked := k.page(start + mem.Frame(i)); tracked {
					freeErr = fmt.Errorf("vm: frame %d is on the slow-pool free list but still tracked", start+mem.Frame(i))
					return
				}
			}
		})
		if freeErr != nil {
			return freeErr
		}
	}

	// Per-CPU TLBs: every valid entry must belong to a live address
	// space (ASIDs are never reused, so a dead ASID proves a missed
	// shootdown) and agree exactly with that space's page table.
	for cpuID, t := range k.tlbs {
		if err := k.checkTLB(t, cpuID); err != nil {
			return err
		}
	}

	// Swap: a swapped-out va must not simultaneously be present in the
	// page table, and its slot must hold data.
	err = k.eachSpace(func(asid int, as *AddressSpace) error {
		for va, slot := range as.swapped {
			if _, _, ok := as.pt.Lookup(va); ok {
				return fmt.Errorf("vm: asid %d va %#x is both swapped (slot %d) and mapped", asid, uint64(va), slot)
			}
			if !k.swap.has(slot) {
				return fmt.Errorf("vm: asid %d va %#x references empty swap slot %d", asid, uint64(va), slot)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// LRU lists: membership flags and counts must agree, and every
	// listed page must still be tracked. Each domain has its own pair.
	err = k.domains(func(label string, d *metaDomain, pool *buddy.Allocator) error {
		if err := k.checkLRU(d.active, label+" active", true); err != nil {
			return err
		}
		return k.checkLRU(d.inactive, label+" inactive", false)
	})
	if err != nil {
		return err
	}

	// Recycled pools: a spare object with surviving state would leak it
	// into its next life (the PR-2 use-after-recycle class of bug).
	if err := k.SpareScrubbed(); err != nil {
		return err
	}
	if err := k.Memory.SpareScrubbed(); err != nil {
		return err
	}
	return k.eachSpace(func(asid int, as *AddressSpace) error {
		if err := as.pt.SpareScrubbed(); err != nil {
			return fmt.Errorf("vm: asid %d: %w", asid, err)
		}
		return nil
	})
}

func rmapContains(pi *PageInfo, as *AddressSpace, va mem.VirtAddr) bool {
	for _, e := range pi.rmap {
		if e.as == as && e.va == va {
			return true
		}
	}
	return false
}

// checkTLB audits one CPU's TLB against the page tables of all live
// address spaces.
func (k *Kernel) checkTLB(t *tlb.TLB, cpuID int) error {
	var tlbErr error
	t.VisitEntries(func(asid int, va mem.VirtAddr, tr tlb.Translation) {
		if tlbErr != nil {
			return
		}
		as, ok := k.space(asid)
		if !ok {
			tlbErr = fmt.Errorf("vm: CPU %d TLB holds entry for dead ASID %d (va %#x)", cpuID, asid, uint64(va))
			return
		}
		pa, flags, ok := as.pt.Lookup(va)
		if !ok {
			tlbErr = fmt.Errorf("vm: CPU %d TLB caches asid %d va %#x, which is no longer mapped", cpuID, asid, uint64(va))
			return
		}
		if as.pt.PageSize(va) != tr.Size.Bytes() {
			tlbErr = fmt.Errorf("vm: CPU %d TLB caches asid %d va %#x at size %s, page table maps %d bytes",
				cpuID, asid, uint64(va), tr.Size, as.pt.PageSize(va))
			return
		}
		if pa.Frame() != tr.Frame {
			tlbErr = fmt.Errorf("vm: CPU %d TLB maps asid %d va %#x to frame %d, page table says %d",
				cpuID, asid, uint64(va), tr.Frame, pa.Frame())
			return
		}
		if flags != tr.Flags {
			tlbErr = fmt.Errorf("vm: CPU %d TLB caches asid %d va %#x with flags %s, page table says %s",
				cpuID, asid, uint64(va), tr.Flags, flags)
		}
	})
	return tlbErr
}

// checkLRU validates one LRU list: linkage, flags, count, and that
// every member is still tracked.
func (k *Kernel) checkLRU(l *pageList, name string, active bool) error {
	n := 0
	for p := l.head; p != nil; p = p.next {
		n++
		if n > l.count {
			return fmt.Errorf("vm: %s list longer than its count %d (cycle?)", name, l.count)
		}
		if p.list != l {
			return fmt.Errorf("vm: frame %d on %s list but list pointer disagrees", p.Frame, name)
		}
		if p.Flags&PGLRU == 0 {
			return fmt.Errorf("vm: frame %d on %s list without PGLRU", p.Frame, name)
		}
		if active != (p.Flags&PGActive != 0) {
			return fmt.Errorf("vm: frame %d on %s list with PGActive=%v", p.Frame, name, p.Flags&PGActive != 0)
		}
		if tracked, ok := k.page(p.Frame); !ok || tracked != p {
			return fmt.Errorf("vm: frame %d on %s list but not tracked", p.Frame, name)
		}
	}
	if n != l.count {
		return fmt.Errorf("vm: %s list holds %d pages, count says %d", name, n, l.count)
	}
	return nil
}

// SpareScrubbed verifies that every recycled PageInfo in every domain
// is fully zeroed, including the retained rmap backing array past its
// (zero) length: stale entries there hold dangling *AddressSpace
// pointers.
func (k *Kernel) SpareScrubbed() error {
	return k.domains(func(label string, d *metaDomain, pool *buddy.Allocator) error {
		for i, p := range d.sparePages {
			if p.Frame != 0 || p.Flags != 0 || p.MapCount != 0 || len(p.rmap) != 0 ||
				p.prev != nil || p.next != nil || p.list != nil {
				return fmt.Errorf("vm: %s spare PageInfo %d not scrubbed (frame=%d flags=%#x mapcount=%d rmap=%d)",
					label, i, p.Frame, p.Flags, p.MapCount, len(p.rmap))
			}
			for j, e := range p.rmap[:cap(p.rmap)] {
				if e.as != nil || e.va != 0 {
					return fmt.Errorf("vm: %s spare PageInfo %d retains rmap entry %d past its length", label, i, j)
				}
			}
		}
		return nil
	})
}

// TestOnlyCorruptRmap deliberately corrupts the rmap of one tracked
// page — the lowest-numbered frame with a non-empty rmap, so the
// choice is deterministic — by sliding its first entry one page
// forward. It exists solely so tests can prove the invariant checker
// and the stress harness's shrinker catch real metadata corruption; it
// must never be called outside tests. It reports whether a candidate
// page existed.
func (k *Kernel) TestOnlyCorruptRmap() bool {
	var victim *PageInfo
	_ = k.domains(func(label string, d *metaDomain, pool *buddy.Allocator) error {
		for _, pi := range d.pages {
			if len(pi.rmap) == 0 {
				continue
			}
			if victim == nil || pi.Frame < victim.Frame {
				victim = pi
			}
		}
		return nil
	})
	if victim == nil {
		return false
	}
	victim.rmap[0].va += mem.FrameSize
	return true
}
