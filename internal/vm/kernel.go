// Package vm implements the baseline virtual-memory system the paper
// measures against: a Linux-like design with per-page bookkeeping.
//
// It provides address spaces built from VMAs, mmap with MAP_POPULATE or
// demand paging, a page-fault handler (minor and major faults),
// copy-on-write fork, per-frame metadata in the style of struct page,
// a two-list (active/inactive) reclaim scanner with second-chance
// referenced bits, and a swap device.
//
// Every operation charges the per-page costs the paper identifies:
// populating a mapping writes one PTE per page, faulting pays the trap
// overhead per page, reclaim scans pages one at a time. The contrast
// with package core (file-only memory), which performs the same jobs at
// file granularity, is the central comparison of the reproduction.
package vm

import (
	"fmt"

	"repro/internal/buddy"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tier"
	"repro/internal/tlb"
)

// Kernel is the machine-global memory-management state shared by all
// address spaces: the anonymous-page pool, per-frame metadata, the LRU
// lists, the swap device, and the per-CPU TLBs of the machine it runs
// on. Clock is the machine's kernel clock; charges through it land on
// whichever CPU is currently executing (see Machine.SetCurrent).
type Kernel struct {
	Clock   *sim.Clock
	Params  *sim.Params
	Memory  *mem.Memory
	Machine *sim.Machine

	// tlbs[i] is CPU i's TLB. Address spaces scheduled on a CPU share
	// its TLB, with ASID-tagged entries.
	tlbs []*tlb.TLB

	// nextCPU round-robins new address spaces across CPUs.
	nextCPU int

	// pool allocates anonymous pages and page-table nodes (the DRAM
	// region in the default machine).
	pool *buddy.Allocator

	// slowPool, when configured, is a second anonymous-frame pool over
	// the slow tier (NVM): first-touch overflow and demotion target of
	// the tier engine. Nil in the classic single-tier configuration.
	slowPool *buddy.Allocator

	// tier is the attached migration engine (nil without tiering).
	tier *tier.Engine

	// meta is the global frame-metadata domain: struct-page map,
	// recycled records, and the LRU lists the reclaim scanner walks.
	// Frames inside a carved per-CPU arena live in that arena's domain
	// instead (see arena.go); domainOf routes by frame number.
	meta metaDomain

	// arenas holds the carved per-CPU arenas sorted by base frame
	// (empty unless CarveArenas has run); arenaByCPU indexes them by
	// CPU id.
	arenas     []*Arena
	arenaByCPU []*Arena

	// rmapScratch is evictPage's reusable reverse-map snapshot buffer.
	rmapScratch []rmapEntry

	// shards[i] registers the live address spaces created on CPU i, so
	// the invariant checker can audit the pagetable ↔ rmap bijection
	// machine-wide. ASIDs are striped by creation CPU (shard + N*index
	// + 1) and never reused, so a TLB entry whose ASID is absent here
	// is provably stale. Sharding makes registration CPU-local: a CPU
	// creating or destroying its own spaces during a host-parallel
	// phase touches only its shard and needs no sync point.
	shards []asidShard

	swap *SwapDevice

	// lowWater triggers reclaim when free frames drop below it.
	lowWater uint64

	// levels is the page-table depth for new address spaces.
	levels int

	stats *metrics.Set
	// Cached counters for the fault and reclaim hot paths.
	cMinorFaults, cAnonAllocs, cReclaimScans *metrics.Counter
}

// Config configures the kernel.
type Config struct {
	// PoolBase/PoolFrames locate the anonymous-memory pool.
	PoolBase   mem.Frame
	PoolFrames uint64
	// SlowPoolBase/SlowPoolFrames locate an optional second pool over
	// the slow tier (NVM) for tiered configurations. Zero frames means
	// no slow pool.
	SlowPoolBase   mem.Frame
	SlowPoolFrames uint64
	// LowWater is the free-frame threshold below which allocation
	// triggers reclaim. Zero means PoolFrames/32.
	LowWater uint64
	// SwapFrames bounds the swap device (0 = unlimited).
	SwapFrames uint64
	// PageTableLevels selects 4- or 5-level paging for new address
	// spaces (0 = 4, the x86-64 default; 5 enables 57-bit LA57-style
	// addressing at one extra walk reference per translation).
	PageTableLevels int
}

// NewKernel creates the global VM state. The machine is derived from
// clock: the kernel clock of a sim.Machine yields that machine's CPU
// set, while a free-standing clock models the classic single-CPU
// machine (see sim.MachineOf).
func NewKernel(clock *sim.Clock, params *sim.Params, memory *mem.Memory, cfg Config) (*Kernel, error) {
	if cfg.PoolFrames == 0 {
		return nil, fmt.Errorf("vm: empty page pool")
	}
	machine := sim.MachineOf(clock, params)
	pool, err := buddy.New(clock, params, cfg.PoolBase, cfg.PoolFrames)
	if err != nil {
		return nil, err
	}
	var slowPool *buddy.Allocator
	if cfg.SlowPoolFrames > 0 {
		slowPool, err = buddy.New(clock, params, cfg.SlowPoolBase, cfg.SlowPoolFrames)
		if err != nil {
			return nil, err
		}
	}
	low := cfg.LowWater
	if low == 0 {
		low = cfg.PoolFrames / 32
	}
	levels := cfg.PageTableLevels
	switch levels {
	case 0:
		levels = 4
	case 4, 5:
	default:
		return nil, fmt.Errorf("vm: unsupported page-table depth %d", levels)
	}
	k := &Kernel{
		Clock:    clock,
		Params:   params,
		Memory:   memory,
		Machine:  machine,
		levels:   levels,
		pool:     pool,
		slowPool: slowPool,
		meta:     newMetaDomain(),
		shards:   make([]asidShard, machine.NumCPUs()),
		swap:     newSwapDevice(cfg.SwapFrames),
		lowWater: low,
		stats:    metrics.NewSet(),
	}
	for i := range k.shards {
		k.shards[i].spaces = make(map[int]*AddressSpace)
	}
	k.cMinorFaults = k.stats.Counter("minor_faults")
	k.cAnonAllocs = k.stats.Counter("anon_allocs")
	k.cReclaimScans = k.stats.Counter("reclaim_scans")
	// Pre-create the remaining kernel counters so the set's first-use
	// order never depends on which CPU context records an event first
	// during a host-parallel phase.
	for _, name := range []string{
		"major_faults", "cow_breaks", "swapouts", "swapins",
		"reclaimed_pages", "user_faults", "forks", "tier_migrations",
	} {
		k.stats.Counter(name)
	}
	for _, cpu := range machine.CPUs() {
		k.tlbs = append(k.tlbs, tlb.New(cpu, params, tlb.DefaultConfig()))
	}
	machine.RegisterInvariants("vm", k.CheckInvariants)
	machine.RegisterStats("vm", k.stats)
	return k, nil
}

// asidShard is one CPU's slice of the live address-space registry.
// The owning CPU mutates it without synchronization; other CPUs only
// read it outside parallel phases (invariant checks, recovery).
type asidShard struct {
	next   int                   // spaces created on this shard so far
	spaces map[int]*AddressSpace // live spaces by ASID
}

// registerSpace assigns a the next ASID of its home CPU's shard and
// registers it. The striped formula (shard + N*index + 1) reproduces
// the old single-counter assignment exactly for round-robin creation
// order — space j lands on CPU j%N and receives ASID j+1 — while
// letting each CPU register without touching shared state.
func (k *Kernel) registerSpace(a *AddressSpace) {
	sh := &k.shards[a.cpu.ID()]
	a.asid = a.cpu.ID() + len(k.shards)*sh.next + 1
	sh.next++
	sh.spaces[a.asid] = a
}

// space returns the live address space registered under asid.
func (k *Kernel) space(asid int) (*AddressSpace, bool) {
	if asid < 1 {
		return nil, false
	}
	a, ok := k.shards[(asid-1)%len(k.shards)].spaces[asid]
	return a, ok
}

// eachSpace calls fn for every live address space, shard by shard.
func (k *Kernel) eachSpace(fn func(asid int, as *AddressSpace) error) error {
	for i := range k.shards {
		for asid, as := range k.shards[i].spaces {
			if err := fn(asid, as); err != nil {
				return err
			}
		}
	}
	return nil
}

// TLBFor returns the TLB of the given CPU.
func (k *Kernel) TLBFor(cpu *sim.CPU) *tlb.TLB { return k.tlbs[cpu.ID()] }

// Stats exposes kernel counters: "minor_faults", "major_faults",
// "cow_breaks", "swapouts", "swapins", "reclaim_scans",
// "reclaimed_pages", "anon_allocs".
func (k *Kernel) Stats() *metrics.Set { return k.stats }

// FreePoolFrames returns the free frames in the anonymous pool.
func (k *Kernel) FreePoolFrames() uint64 { return k.pool.FreeFrames() }

// Pool exposes the kernel's frame allocator (page tables allocate
// their nodes from it).
func (k *Kernel) Pool() *buddy.Allocator { return k.pool }

// TrackedPages returns the number of frames with live metadata — the
// per-page bookkeeping footprint the paper wants to eliminate —
// summed over the global domain and every arena.
func (k *Kernel) TrackedPages() int {
	n := len(k.meta.pages)
	for _, ar := range k.arenas {
		n += len(ar.meta.pages)
	}
	return n
}

// MetadataBytes returns the simulated size of per-page metadata, using
// the 64-byte struct page the paper's motivation cites.
func (k *Kernel) MetadataBytes() uint64 { return uint64(k.TrackedPages()) * 64 }

// allocAnonFrame allocates and zeroes one anonymous frame for cur,
// reclaiming under pressure. This is the per-fault allocation path.
// With a non-nil arena the frame comes from the arena's private pool
// and exhaustion is a hard error: arenas have no reclaim trigger,
// because reclaim unmaps other CPUs' address spaces — exactly the
// cross-CPU activity a host-parallel phase forbids.
func (k *Kernel) allocAnonFrame(cur *sim.CPU, ar *Arena) (mem.Frame, error) {
	if ar != nil {
		f, err := ar.pool.AllocFrame()
		if err != nil {
			return 0, fmt.Errorf("vm: cpu %d arena out of memory: %w", ar.cpu.ID(), err)
		}
		k.Memory.ZeroFramesOn(cur, f, 1)
		k.cAnonAllocs.Inc()
		return f, nil
	}
	// Tiered first-touch placement: once the engine's fast-tier budget
	// is spent, new anonymous frames land in the slow pool (and the
	// demote/smart policies open fast room back up over time). The
	// fast pool + reclaim path below remains the fallback when the
	// slow tier is itself exhausted.
	if k.tier != nil && k.slowPool != nil && !k.tier.PreferFast() {
		if f, err := k.slowPool.AllocFrame(); err == nil {
			k.Memory.ZeroFramesOn(cur, f, 1)
			k.cAnonAllocs.Inc()
			return f, nil
		}
	}
	if k.pool.FreeFrames() < k.lowWater {
		// Background reclaim would run here; the simulator reclaims
		// synchronously, like direct reclaim under pressure.
		if _, err := k.ReclaimPages(cur, k.lowWater); err != nil {
			return 0, err
		}
	}
	f, err := k.pool.AllocFrame()
	if err != nil {
		// Last resort: hard reclaim then retry once.
		if _, rerr := k.ReclaimPages(cur, 1); rerr != nil {
			return 0, fmt.Errorf("vm: out of memory: %v (reclaim: %v)", err, rerr)
		}
		f, err = k.pool.AllocFrame()
		if err != nil {
			return 0, fmt.Errorf("vm: out of memory: %w", err)
		}
	}
	k.Memory.ZeroFramesOn(cur, f, 1)
	k.cAnonAllocs.Inc()
	return f, nil
}

// freeAnonFrame returns an anonymous frame to the pool that owns it.
func (k *Kernel) freeAnonFrame(f mem.Frame) error {
	return k.poolFor(f).Free(f)
}

// chargeMeta charges n struct-page updates to cur's own clock.
func (k *Kernel) chargeMeta(cur *sim.CPU, n int) {
	cur.Clock().Advance(sim.Time(n) * k.Params.PageMetaOp)
}
