package check

// shrinkTrace greedily minimizes a failing trace: starting from large
// chunks and halving down to single operations, it removes any chunk
// whose absence still fails (delta debugging's reduce-to-subset step).
// Removing prerequisites is safe because the model skips operations
// made invalid, and every world skips them identically.
//
// fails must be pure with respect to the candidate (replay builds
// fresh worlds each time); it may return false unconditionally once a
// budget is exhausted, which simply stops further reduction.
func shrinkTrace(trace []Op, fails func([]Op) bool) []Op {
	cur := append([]Op(nil), trace...)
	chunk := len(cur) / 2
	if chunk < 1 {
		chunk = 1
	}
	for {
		removed := false
		for start := 0; start < len(cur); {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Op, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) < len(cur) && fails(cand) {
				cur = cand
				removed = true
				// Re-test the same position: the next chunk slid into it.
			} else {
				start += chunk
			}
		}
		if chunk == 1 && !removed {
			return cur
		}
		if chunk > 1 {
			chunk /= 2
		}
	}
}
