package check

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestIncrementalRequiresCrashRecover pins the option contract.
func TestIncrementalRequiresCrashRecover(t *testing.T) {
	_, err := Run(Options{Seed: 1, Ops: 100, Incremental: true})
	if err == nil {
		t.Fatal("-incremental without -crash-recover accepted")
	}
	if !strings.Contains(err.Error(), "requires") {
		t.Errorf("error does not explain the requirement: %v", err)
	}
}

// TestIncrementalRecoverAllConfigs is the core property test: across
// random crash points — torn and clean, one to three deltas — every
// configuration's base+deltas restore must be bit-identical to full
// replay, the assembled differential image must match memory exactly,
// and the compacted journal must carry precisely the uncheckpointed
// suffix.
func TestIncrementalRecoverAllConfigs(t *testing.T) {
	ops := 1200
	if testing.Short() {
		ops = 400
	}
	rng := sim.NewRNG(0xfeedface)
	for trial := 0; trial < 4; trial++ {
		seed := 100 + uint64(trial)
		crashAt := 1 + int(rng.Uint64n(uint64(ops)))
		baseAt := crashAt / 3
		nDeltas := 1 + int(rng.Uint64n(3))
		var deltaAts []int
		last := baseAt
		for i := 1; i <= nDeltas; i++ {
			at := baseAt + (crashAt-baseAt)*i/(nDeltas+1)
			if at > last {
				deltaAts = append(deltaAts, at)
				last = at
			}
		}
		torn := crashAt > last && trial%2 == 1
		reports, f, err := CrashRecoverIncremental(
			Options{Seed: seed, Ops: ops, CPUs: 2}, baseAt, deltaAts, crashAt, torn)
		if err != nil {
			t.Fatalf("trial %d (base@%d deltas@%v crash@%d torn=%v): %v",
				trial, baseAt, deltaAts, crashAt, torn, err)
		}
		if f != nil {
			t.Fatalf("trial %d (base@%d deltas@%v crash@%d torn=%v): %v",
				trial, baseAt, deltaAts, crashAt, torn, f)
		}
		if len(reports) != len(AllConfigs) {
			t.Fatalf("trial %d: %d reports, want %d", trial, len(reports), len(AllConfigs))
		}
		for _, rep := range reports {
			wantRecovered := crashAt
			if torn {
				wantRecovered--
			}
			if rep.RecoveredAt != wantRecovered {
				t.Errorf("trial %d %s: recovered to %d, want %d", trial, rep.Config, rep.RecoveredAt, wantRecovered)
			}
			if len(rep.DirtyFrames) != len(deltaAts) {
				t.Errorf("trial %d %s: %d deltas captured, want %d", trial, rep.Config, len(rep.DirtyFrames), len(deltaAts))
			}
			lastAt := baseAt
			if len(deltaAts) > 0 {
				lastAt = deltaAts[len(deltaAts)-1]
			}
			if rep.Watermark != uint64(lastAt-baseAt) {
				t.Errorf("trial %d %s: watermark %d, want %d", trial, rep.Config, rep.Watermark, lastAt-baseAt)
			}
			if rep.JournalRecords != wantRecovered-lastAt {
				t.Errorf("trial %d %s: %d journal records, want %d", trial, rep.Config, rep.JournalRecords, wantRecovered-lastAt)
			}
			if torn && rep.TornBytes == 0 {
				t.Errorf("trial %d %s: torn run reported no torn bytes", trial, rep.Config)
			}
		}
	}
}

// TestIncrementalEdgePoints covers the degenerate chain shapes: no
// deltas (base-only chain, journal from the base), a delta exactly at
// the crash (empty journal suffix), and a base at op 0.
func TestIncrementalEdgePoints(t *testing.T) {
	cases := []struct {
		name     string
		baseAt   int
		deltaAts []int
		crashAt  int
		torn     bool
	}{
		{"no-deltas", 100, nil, 220, false},
		{"no-deltas-torn", 100, nil, 220, true},
		{"delta-at-crash", 80, []int{160, 240}, 240, false},
		{"base-at-zero", 0, []int{90}, 180, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reports, f, err := CrashRecoverIncremental(
				Options{Seed: 42, Ops: 300, CPUs: 2}, tc.baseAt, tc.deltaAts, tc.crashAt, tc.torn)
			if err != nil {
				t.Fatalf("%v", err)
			}
			if f != nil {
				t.Fatalf("%v", f)
			}
			if len(reports) != len(AllConfigs) {
				t.Fatalf("%d reports, want %d", len(reports), len(AllConfigs))
			}
		})
	}
}

// TestIncrementalTornNeedsSuffix pins the precondition: tearing the
// journal requires at least one record past the last delta.
func TestIncrementalTornNeedsSuffix(t *testing.T) {
	_, _, err := CrashRecoverIncremental(
		Options{Seed: 1, Ops: 300, CPUs: 2}, 50, []int{100}, 100, true)
	if err == nil {
		t.Fatal("torn crash with empty journal suffix accepted")
	}
}

// TestBuildVerifyChain exercises the o1snap-facing API: build a chain
// over the full trace (uncompacted journal), verify it, compact the
// journal to the last delta, and verify again — both must replay the
// journal to the end of the trace and land on the model's final state.
func TestBuildVerifyChain(t *testing.T) {
	for _, cfg := range AllConfigs {
		opts := Options{Seed: 9, Ops: 300, CPUs: 2}
		chain, err := BuildChain(cfg, opts, 100, []int{160, 220})
		if err != nil {
			t.Fatalf("%s: build: %v", cfg, err)
		}
		if chain.Journal.Watermark() != 0 {
			t.Fatalf("%s: fresh chain journal already compacted (watermark %d)", cfg, chain.Journal.Watermark())
		}
		if got, want := chain.Journal.Len(), 300-100; got != want {
			t.Fatalf("%s: journal holds %d records, want %d", cfg, got, want)
		}
		if err := VerifyChain(chain); err != nil {
			t.Fatalf("%s: verify uncompacted: %v", cfg, err)
		}
		if err := chain.Journal.Compact(uint64(220 - 100)); err != nil {
			t.Fatalf("%s: compact: %v", cfg, err)
		}
		if err := VerifyChain(chain); err != nil {
			t.Fatalf("%s: verify compacted: %v", cfg, err)
		}
		// Over-compaction past the last capture point must be caught.
		if err := chain.Journal.Compact(uint64(220 - 100 + 5)); err != nil {
			t.Fatalf("%s: over-compact: %v", cfg, err)
		}
		if err := VerifyChain(chain); err == nil {
			t.Fatalf("%s: over-compacted chain verified", cfg)
		}
	}
}

// TestChainDifferentialImageCatchesMissedDirt proves the acceptance
// mechanism has teeth: corrupt one delta's captured frame data and the
// differential-image proof must fail the restore.
func TestChainDifferentialImageCatchesMissedDirt(t *testing.T) {
	chain, err := BuildChain("fom", Options{Seed: 9, Ops: 300, CPUs: 2}, 100, []int{200})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tampered := false
	for _, d := range chain.Deltas {
		for _, fi := range d.Frames {
			if fi.Data != nil {
				fi.Data[0] ^= 0xff
				tampered = true
				break
			}
		}
		if tampered {
			break
		}
	}
	if !tampered {
		t.Skip("no materialized delta frame to tamper with")
	}
	err = VerifyChain(chain)
	if err == nil {
		t.Fatal("tampered delta image verified")
	}
	if !strings.Contains(err.Error(), "differential image") && !strings.Contains(err.Error(), "checksum") {
		t.Errorf("unexpected diagnosis: %v", err)
	}
}

// TestRunIncrementalStage drives the stage end-to-end through Run with
// the randomized point selection, tier off and on.
func TestRunIncrementalStage(t *testing.T) {
	report, err := Run(Options{Seed: 13, Ops: 600, CPUs: 2, CrashRecover: true, Incremental: true})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if report.Failure != nil {
		t.Fatalf("%s", report.Format())
	}
	if len(report.ChainReports) != len(AllConfigs) {
		t.Fatalf("%d chain reports, want %d", len(report.ChainReports), len(AllConfigs))
	}
	if !strings.Contains(report.Format(), "incremental crash-recover") {
		t.Errorf("report does not mention the incremental stage:\n%s", report.Format())
	}
}

// TestIncrementalUnitsScaleWithConfig pins the paper's shape claim on
// checkpoint metadata: the extent configs cover their dirty frames
// with far fewer units than the page-granular baseline when the same
// trace dirties the same logical state.
func TestIncrementalUnitsScaleWithConfig(t *testing.T) {
	opts := Options{Seed: 21, Ops: 800, CPUs: 2}
	reports, f, err := CrashRecoverIncremental(opts, 200, []int{500}, 700, false)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if f != nil {
		t.Fatalf("%v", f)
	}
	units := map[string]int{}
	frames := map[string]int{}
	for _, rep := range reports {
		for i := range rep.DirtyUnits {
			units[rep.Config] += rep.DirtyUnits[i]
			frames[rep.Config] += rep.DirtyFrames[i]
		}
	}
	for cfg, u := range units {
		if frames[cfg] > 0 && u == 0 {
			t.Errorf("%s: dirty frames but no units", cfg)
		}
		t.Logf("%s: %d dirty frames covered by %d units", cfg, frames[cfg], u)
	}
	// The baseline pays one unit per dirty page; extent configs must
	// do strictly better on this trace (multi-page objects and files).
	if frames["baseline"] > 0 && units["baseline"] != frames["baseline"] {
		t.Errorf("baseline: %d units for %d dirty frames, want page-granular equality",
			units["baseline"], frames["baseline"])
	}
	for _, cfg := range []string{"fom", "usermode"} {
		if frames[cfg] > 8 && units[cfg] >= frames[cfg] {
			t.Errorf("%s: %d units for %d dirty frames — extents bought nothing", cfg, units[cfg], frames[cfg])
		}
	}
}
