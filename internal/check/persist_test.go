package check

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/snapshot"
)

func TestTraceCodecRoundTrip(t *testing.T) {
	trace := generate(42, 500, 4)
	got, err := DecodeTrace(EncodeTrace(trace))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace, got) {
		t.Fatal("trace codec round trip diverged")
	}
	if _, err := DecodeTrace(EncodeTrace(trace)[:7]); err == nil {
		t.Fatal("truncated trace decoded without error")
	}
}

func TestSnapshotBuildRestoreVerify(t *testing.T) {
	opts := Options{Seed: 7, Ops: 300, CPUs: 2}
	for _, cfg := range AllConfigs {
		snap, err := BuildSnapshot(cfg, opts, 150)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		// Through the on-media format, as o1snap uses it.
		var buf bytes.Buffer
		if err := snap.Save(&buf); err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		loaded, err := snapshot.Load(&buf)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if err := VerifySnapshot(loaded); err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
	}
}

// TestCrashRecoverDeterminismAllConfigs is the tentpole's acceptance
// test: crash at an op, recover from checkpoint + journal, finish the
// trace — byte-identical to the uncrashed control, in every
// configuration, with and without a torn journal tail.
func TestCrashRecoverDeterminismAllConfigs(t *testing.T) {
	ops := 1200
	if testing.Short() {
		ops = 400
	}
	cases := []struct {
		seed uint64
		cpus int
		torn bool
	}{
		{seed: 1, cpus: 1, torn: false},
		{seed: 2, cpus: 2, torn: true},
		{seed: 3, cpus: 4, torn: false},
	}
	for _, tc := range cases {
		opts := Options{Seed: tc.seed, Ops: ops, CPUs: tc.cpus}
		snapAt, crashAt, _ := crashRecoverStage(opts, ops)
		if tc.torn && crashAt == snapAt {
			crashAt = snapAt + 1
		}
		reports, f, err := CrashRecover(opts, snapAt, crashAt, tc.torn)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		if f != nil {
			t.Fatalf("seed %d: %v", tc.seed, f)
		}
		if len(reports) != len(AllConfigs) {
			t.Fatalf("seed %d: %d reports, want %d", tc.seed, len(reports), len(AllConfigs))
		}
		for _, rep := range reports {
			wantRecovered := crashAt
			if tc.torn {
				wantRecovered--
			}
			if rep.RecoveredAt != wantRecovered {
				t.Fatalf("seed %d %s: recovered to op %d, want %d", tc.seed, rep.Config, rep.RecoveredAt, wantRecovered)
			}
			if tc.torn == (rep.TornBytes == 0) {
				t.Fatalf("seed %d %s: torn=%v but %d torn bytes", tc.seed, rep.Config, tc.torn, rep.TornBytes)
			}
			if rep.SnapshotBytes == 0 {
				t.Fatalf("seed %d %s: empty snapshot", tc.seed, rep.Config)
			}
		}
	}
}

// TestRunCrashRecoverStage exercises the harness wiring: Run with
// Options.CrashRecover performs the randomized crash stage.
func TestRunCrashRecoverStage(t *testing.T) {
	ops := 600
	if testing.Short() {
		ops = 250
	}
	report, err := Run(Options{Seed: 11, Ops: ops, CPUs: 2, CrashRecover: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failure != nil {
		t.Fatalf("crash-recover stage failed: %v", report.Failure)
	}
}
