package check

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/sim"
	"repro/internal/tier"
)

// fomWorld drives file-only memory through the syscall interface
// alone: every object is an extent-based memfs file and every access
// is a read/write at a byte offset. There are no translations, so
// fork copies private objects eagerly (the harness's observable
// surface is byte 0 of every page, which keeps the copy cheap),
// reclaim and migration are no-ops, and the differential comparison
// pins the mapped configurations to the same semantics.
type fomWorld struct {
	m   *sim.Machine
	phy *mem.Memory
	fs  *memfs.FS // Extent policy over NVM

	procs  map[int]bool
	priv   map[int]map[int]*memfs.File // proc -> obj -> private copy
	shared map[int]*memfs.File
	mapped map[int]map[int]bool // obj -> procs mapping it
	pages  map[int]uint64

	files map[string]*memfs.File
}

func newFOMWorld(cpus int, seed uint64, tiered bool) (*fomWorld, error) {
	machine, params, memory, err := newWorldMachine(cpus, seed)
	if err != nil {
		return nil, err
	}
	fs, err := memfs.New("fom", memfs.Extent, machine.Clock(), params, memory,
		mem.Frame(dramFrames), nvmFrames)
	if err != nil {
		return nil, err
	}
	if tiered {
		// DRAM is otherwise unused here; its bottom becomes the fast
		// tier. The FS itself is the backend: single-page extent-split
		// migration.
		eng := tier.New(params, memory, tier.Smart, tierFastCapFOM)
		if err := fs.AttachTier(eng, 0, tierFastRegionFOM); err != nil {
			return nil, err
		}
	}
	return &fomWorld{
		m:      machine,
		phy:    memory,
		fs:     fs,
		procs:  map[int]bool{0: true},
		priv:   map[int]map[int]*memfs.File{0: {}},
		shared: make(map[int]*memfs.File),
		mapped: make(map[int]map[int]bool),
		pages:  make(map[int]uint64),
		files:  make(map[string]*memfs.File),
	}, nil
}

func (w *fomWorld) name() string { return "fom" }

// newObjectFile allocates one single-extent anonymous file sized for
// an object — the O(1) allocation path.
func (w *fomWorld) newObjectFile(pages uint64) (*memfs.File, error) {
	f, err := w.fs.CreateTemp("obj", memfs.CreateOptions{})
	if err != nil {
		return nil, err
	}
	if err := f.EnsureContiguous(pages); err != nil {
		return nil, err
	}
	return f, nil
}

func (w *fomWorld) apply(op Op) error {
	switch op.Kind {
	case OpMap:
		f, err := w.newObjectFile(op.Pages)
		if err != nil {
			return err
		}
		if op.Shared {
			w.shared[op.Obj] = f
		} else {
			w.priv[op.Proc][op.Obj] = f
		}
		w.mapped[op.Obj] = map[int]bool{op.Proc: true}
		w.pages[op.Obj] = op.Pages
		return nil

	case OpUnmap:
		if f, ok := w.priv[op.Proc][op.Obj]; ok {
			delete(w.priv[op.Proc], op.Obj)
			if err := f.Close(); err != nil {
				return err
			}
		}
		delete(w.mapped[op.Obj], op.Proc)
		if len(w.mapped[op.Obj]) == 0 {
			delete(w.mapped, op.Obj)
			delete(w.pages, op.Obj)
			if f, ok := w.shared[op.Obj]; ok {
				delete(w.shared, op.Obj)
				return f.Close()
			}
		}
		return nil

	case OpWrite:
		f, err := w.objectFile(op.Obj, op.Proc)
		if err != nil {
			return err
		}
		_, err = f.WriteAt([]byte{op.Val}, op.Page*pageSize)
		return err

	case OpFork:
		w.procs[op.Child] = true
		w.priv[op.Child] = make(map[int]*memfs.File)
		// Copy private objects in ID order: map iteration order would
		// otherwise make the simulated allocation layout (and thus the
		// replay) non-deterministic.
		for _, obj := range sortedKeys(w.priv[op.Proc]) {
			parent := w.priv[op.Proc][obj]
			cp, err := w.newObjectFile(w.pages[obj])
			if err != nil {
				return err
			}
			if err := copyPageBytes(parent, cp, w.pages[obj]); err != nil {
				return err
			}
			w.priv[op.Child][obj] = cp
			w.mapped[obj][op.Child] = true
		}
		for obj, ps := range w.mapped {
			if _, isShared := w.shared[obj]; isShared && ps[op.Proc] {
				ps[op.Child] = true
			}
		}
		return nil

	case OpShare:
		w.mapped[op.Obj][op.Proc] = true
		return nil

	case OpReclaim, OpMigrate:
		return nil // no pages to reclaim, no per-CPU translation state

	case OpFSCreate:
		f, err := w.fs.Create(fsPath(op.Path), memfs.CreateOptions{})
		if err != nil {
			return err
		}
		w.files[op.Path] = f
		return nil

	case OpFSWrite:
		_, err := w.files[op.Path].WriteAt([]byte{op.Val}, op.Page*pageSize)
		return err

	case OpFSDelete:
		if err := w.files[op.Path].Close(); err != nil {
			return err
		}
		delete(w.files, op.Path)
		return w.fs.Unlink(fsPath(op.Path))
	}
	return fmt.Errorf("check: %s world cannot apply %s", w.name(), op.Kind)
}

// objectFile resolves the file holding the object's content as seen by
// proc.
func (w *fomWorld) objectFile(obj, proc int) (*memfs.File, error) {
	if f, ok := w.shared[obj]; ok {
		return f, nil
	}
	if f, ok := w.priv[proc][obj]; ok {
		return f, nil
	}
	return nil, fmt.Errorf("check: fom world has no file for obj %d proc %d", obj, proc)
}

// copyPageBytes copies byte 0 of each page from src to dst — the only
// bytes the harness ever writes, so dst becomes observably identical.
func copyPageBytes(src, dst *memfs.File, pages uint64) error {
	var b [1]byte
	for p := uint64(0); p < pages; p++ {
		if _, err := src.ReadAt(b[:], p*pageSize); err != nil {
			return err
		}
		if _, err := dst.WriteAt(b[:], p*pageSize); err != nil {
			return err
		}
	}
	return nil
}

func (w *fomWorld) readback(op Op) (byte, error) {
	return w.objectByte(op.Obj, op.Proc, op.Page)
}

func (w *fomWorld) objectByte(obj, proc int, page uint64) (byte, error) {
	f, err := w.objectFile(obj, proc)
	if err != nil {
		return 0, err
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], page*pageSize); err != nil {
		return 0, err
	}
	return b[0], nil
}

func (w *fomWorld) fileByte(path string, page uint64) (byte, error) {
	var b [1]byte
	if _, err := w.files[path].ReadAt(b[:], page*pageSize); err != nil {
		return 0, err
	}
	return b[0], nil
}

func (w *fomWorld) check() error { return w.m.CheckInvariants() }

// tierStep pumps promotions (the file store's read/write paths have no
// CPU handle, so the harness pumps for them) and runs the periodic
// hotness scan, both charged to the machine's current CPU.
func (w *fomWorld) tierStep(i int) {
	eng := w.fs.Tier()
	if eng == nil {
		return
	}
	eng.Pump(w.m.Current())
	if (i+1)%tierScanEvery == 0 {
		eng.Scan(w.m.Current(), tierScanBatch)
	}
}

func (w *fomWorld) machine() *sim.Machine { return w.m }

func (w *fomWorld) memory() *mem.Memory { return w.phy }

func (w *fomWorld) dirtyUnits(frames []mem.Frame) []ckpt.Unit {
	return w.fs.DirtyUnits(frames)
}
