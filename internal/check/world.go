package check

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// A world is one memory-system configuration under differential test.
// Worlds receive only operations the model declared valid, so any
// error is a divergence and fails the run.
type world interface {
	name() string
	// apply executes one non-read operation.
	apply(op Op) error
	// readback executes an OpRead and returns the observed byte.
	readback(op Op) (byte, error)
	// objectByte reads byte 0 of one page of a live object through the
	// given process's view (final-state comparison).
	objectByte(obj, proc int, page uint64) (byte, error)
	// fileByte reads byte 0 of one page of a named file.
	fileByte(path string, page uint64) (byte, error)
	// check runs the machine-wide invariant sweep.
	check() error
	// machine exposes the world's simulated machine (persistence
	// captures its state; see persist.go).
	machine() *sim.Machine
	// memory exposes the world's physical memory (persistence
	// checksums its content and injects crashes).
	memory() *mem.Memory
}

// Machine sizing shared by all worlds. The generator's capacity caps
// (gen.go) guarantee that no configuration — including SharedPT, which
// pads every object to 512-page chunks — can exhaust these.
const (
	pageSize   = mem.FrameSize
	dramFrames = 1 << 16 // 256 MiB: baseline page pool, core PT pool
	nvmFrames  = 1 << 17 // 512 MiB: file stores
)

// rwProt is the protection every harness mapping uses.
var rwProt = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser

// newWorld builds the named configuration on a fresh machine.
func newWorld(config string, cpus int, seed uint64) (world, error) {
	switch config {
	case "baseline":
		return newVMWorld(cpus, seed)
	case "fom":
		return newFOMWorld(cpus, seed)
	case "pbm":
		return newCoreWorld("pbm", cpus, seed)
	case "ranges":
		return newCoreWorld("ranges", cpus, seed)
	default:
		return nil, fmt.Errorf("check: unknown configuration %q (want baseline, fom, pbm, or ranges)", config)
	}
}

// newWorldMachine builds the shared machine skeleton: CPUs, params,
// and a DRAM+NVM physical memory.
func newWorldMachine(cpus int, seed uint64) (*sim.Machine, *sim.Params, *mem.Memory, error) {
	params := sim.DefaultParams()
	machine := sim.NewMachine(&params, cpus, seed)
	memory, err := mem.New(machine.Clock(), &params, mem.Config{
		DRAMFrames: dramFrames,
		NVMFrames:  nvmFrames,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return machine, &params, memory, nil
}

// objPath names the backing file of a shared object in worlds that
// materialize one.
func objPath(obj int) string { return fmt.Sprintf("/obj%d", obj) }

// fsPath prefixes harness file names so they never collide with
// object backing files.
func fsPath(path string) string { return "/" + path }

// sortedKeys returns a map's integer keys in ascending order, so
// world-internal iteration (fork copies, final sweeps) is
// deterministic.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
