package check

import (
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// A world is one memory-system configuration under differential test.
// Worlds receive only operations the model declared valid, so any
// error is a divergence and fails the run.
type world interface {
	name() string
	// apply executes one non-read operation.
	apply(op Op) error
	// readback executes an OpRead and returns the observed byte.
	readback(op Op) (byte, error)
	// objectByte reads byte 0 of one page of a live object through the
	// given process's view (final-state comparison).
	objectByte(obj, proc int, page uint64) (byte, error)
	// fileByte reads byte 0 of one page of a named file.
	fileByte(path string, page uint64) (byte, error)
	// check runs the machine-wide invariant sweep.
	check() error
	// tierStep drives the tier engine between operations (promotion
	// pump where the data path has no CPU handle, periodic hotness
	// scan). No-op without tiering.
	tierStep(i int)
	// machine exposes the world's simulated machine (persistence
	// captures its state; see persist.go).
	machine() *sim.Machine
	// memory exposes the world's physical memory (persistence
	// checksums its content and injects crashes).
	memory() *mem.Memory
	// dirtyUnits maps a dirty-frame set onto checkpoint units by asking
	// each subsystem to claim the frames it owns — extents for file
	// stores, grants for usermode, single pages for the baseline. Every
	// dirty frame must be covered; the incremental recovery stage fails
	// on gaps (see persist_incr.go).
	dirtyUnits(frames []mem.Frame) []ckpt.Unit
}

// Machine sizing shared by all worlds. The generator's capacity caps
// (gen.go) guarantee that no configuration — including SharedPT, which
// pads every object to 512-page chunks — can exhaust these.
const (
	pageSize   = mem.FrameSize
	dramFrames = 1 << 16 // 256 MiB: baseline page pool, core PT pool
	nvmFrames  = 1 << 17 // 512 MiB: file stores
)

// Tier-enabled world sizing. Each fast cap sits BELOW the working set
// a generated trace sustains in that world (measured: ~90 live anon
// pages in baseline, ~1150 live file pages in fom/ranges, several
// 512-page chunks in pbm), so every policy direction — first-touch
// overflow into the slow tier, promotion, demotion — actually
// exercises under a generated trace; internal/check/tier_test.go
// asserts it via telemetry deltas.
// Each physical fast region is 2× its engine cap: the policy's
// watermarks must relieve pressure before the fast buddy physically
// fills, or multi-page extent promotions start failing on
// fragmentation while the engine still believes there is room.
const (
	// tierFastCapVM bounds the baseline kernel's fast-tier anon frames;
	// overflow allocates from a slow pool carved off the top of NVM (the
	// physical fast region is all of DRAM, so only the cap matters).
	tierFastCapVM    = 48
	tierSlowFramesVM = 1 << 15
	// tierFastCapFOM/RegionFOM size the DRAM block region added to the
	// fom store.
	tierFastCapFOM    = 256
	tierFastRegionFOM = 512
	// tierFastCapPBM must hold whole SharedPT extents (512-page
	// chunks), since core migrates at extent granularity.
	tierFastCapPBM    = 4096
	tierFastRegionPBM = 8192
	// tierFastCapRanges can be small: range extents are at most
	// maxFilePages (64) long.
	tierFastCapRanges    = 512
	tierFastRegionRanges = 1024
	// tierScanEvery/tierScanBatch pace the harness's clock-hand scan.
	tierScanEvery = 8
	tierScanBatch = 32
)

// rwProt is the protection every harness mapping uses.
var rwProt = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser

// newWorld builds the named configuration on a fresh machine. With
// tiered set, the world attaches a tier.Engine under the Smart policy —
// the bidirectional one, so promotions, demotions, and swaps all happen
// on a long enough trace.
func newWorld(config string, cpus int, seed uint64, tiered bool) (world, error) {
	switch config {
	case "baseline":
		return newVMWorld(cpus, seed, tiered)
	case "fom":
		return newFOMWorld(cpus, seed, tiered)
	case "pbm":
		return newCoreWorld("pbm", cpus, seed, tiered)
	case "ranges":
		return newCoreWorld("ranges", cpus, seed, tiered)
	case "usermode":
		return newUsermodeWorld(cpus, seed, tiered)
	default:
		return nil, fmt.Errorf("check: unknown configuration %q (want baseline, fom, pbm, ranges, or usermode)", config)
	}
}

// newWorldMachine builds the shared machine skeleton: CPUs, params,
// and a DRAM+NVM physical memory.
func newWorldMachine(cpus int, seed uint64) (*sim.Machine, *sim.Params, *mem.Memory, error) {
	params := sim.DefaultParams()
	machine := sim.NewMachine(&params, cpus, seed)
	memory, err := mem.New(machine.Clock(), &params, mem.Config{
		DRAMFrames: dramFrames,
		NVMFrames:  nvmFrames,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return machine, &params, memory, nil
}

// objPath names the backing file of a shared object in worlds that
// materialize one.
func objPath(obj int) string { return fmt.Sprintf("/obj%d", obj) }

// fsPath prefixes harness file names so they never collide with
// object backing files.
func fsPath(path string) string { return "/" + path }

// sortedKeys returns a map's integer keys in ascending order, so
// world-internal iteration (fork copies, final sweeps) is
// deterministic.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
