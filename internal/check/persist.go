package check

import (
	"bytes"
	"fmt"

	"repro/internal/sim"
	"repro/internal/snapshot"
)

// This file bridges the harness to the persistence subsystem
// (internal/snapshot): it owns the operation-trace codec embedded in
// snapshots and journal records, and implements the crash-and-recover
// stage — checkpoint mid-trace, journal the ops that follow, crash,
// recover, and prove the recovered timeline bit-identical to an
// uncrashed control.
//
// Persistence tooling charges ZERO simulated time. A snapshot capture,
// journal append, or checksum is an out-of-band observer action here;
// byte-identity between the crashed-and-recovered timeline and the
// control timeline is only meaningful if the tooling itself is
// invisible. The *modeled* persistence costs (Params.JournalAppend,
// per-config metadata rebuild) are charged by the recovery experiment
// (internal/bench E17), not by this harness.

// EncodeTrace serializes an operation trace for embedding in a
// snapshot. The format is little-endian: u32 op count, then each op as
// encodeOp lays it out.
func EncodeTrace(trace []Op) []byte {
	b := pu32(nil, uint32(len(trace)))
	for _, op := range trace {
		b = encodeOp(b, op)
	}
	return b
}

// DecodeTrace parses an EncodeTrace payload.
func DecodeTrace(b []byte) ([]Op, error) {
	n, b, err := gu32(b)
	if err != nil {
		return nil, err
	}
	trace := make([]Op, 0, n)
	for i := uint32(0); i < n; i++ {
		var op Op
		op, b, err = decodeOp(b)
		if err != nil {
			return nil, fmt.Errorf("check: trace op %d: %w", i, err)
		}
		trace = append(trace, op)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("check: trace has %d trailing bytes", len(b))
	}
	return trace, nil
}

// encodeOp appends one operation: kind u8, proc/obj/child/cpu u32,
// pages/page u64, val u8, shared u8, path (u32 len + bytes).
func encodeOp(b []byte, op Op) []byte {
	b = append(b, byte(op.Kind))
	b = pu32(b, uint32(op.Proc))
	b = pu32(b, uint32(op.Obj))
	b = pu32(b, uint32(op.Child))
	b = pu32(b, uint32(op.CPU))
	b = pu64(b, op.Pages)
	b = pu64(b, op.Page)
	b = append(b, op.Val)
	var shared byte
	if op.Shared {
		shared = 1
	}
	b = append(b, shared)
	b = pu32(b, uint32(len(op.Path)))
	return append(b, op.Path...)
}

// decodeOp parses one encodeOp record, returning the remaining bytes.
func decodeOp(b []byte) (Op, []byte, error) {
	var op Op
	if len(b) < 1 {
		return op, nil, fmt.Errorf("truncated op kind")
	}
	op.Kind = OpKind(b[0])
	if op.Kind >= numOpKinds {
		return op, nil, fmt.Errorf("unknown op kind %d", b[0])
	}
	b = b[1:]
	var v32 uint32
	var err error
	if v32, b, err = gu32(b); err != nil {
		return op, nil, err
	}
	op.Proc = int(v32)
	if v32, b, err = gu32(b); err != nil {
		return op, nil, err
	}
	op.Obj = int(v32)
	if v32, b, err = gu32(b); err != nil {
		return op, nil, err
	}
	op.Child = int(v32)
	if v32, b, err = gu32(b); err != nil {
		return op, nil, err
	}
	op.CPU = int(v32)
	if op.Pages, b, err = gu64(b); err != nil {
		return op, nil, err
	}
	if op.Page, b, err = gu64(b); err != nil {
		return op, nil, err
	}
	if len(b) < 2 {
		return op, nil, fmt.Errorf("truncated op flags")
	}
	op.Val, op.Shared = b[0], b[1] != 0
	b = b[2:]
	if v32, b, err = gu32(b); err != nil {
		return op, nil, err
	}
	if uint64(v32) > uint64(len(b)) {
		return op, nil, fmt.Errorf("truncated op path")
	}
	op.Path = string(b[:v32])
	return op, b[v32:], nil
}

func pu32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func pu64(b []byte, v uint64) []byte {
	return pu32(pu32(b, uint32(v)), uint32(v>>32))
}

func gu32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("truncated u32")
	}
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return v, b[4:], nil
}

func gu64(b []byte) (uint64, []byte, error) {
	lo, b, err := gu32(b)
	if err != nil {
		return 0, nil, err
	}
	hi, b, err := gu32(b)
	if err != nil {
		return 0, nil, err
	}
	return uint64(lo) | uint64(hi)<<32, b, nil
}

// replaySpan applies trace[from:to] to one world, advancing the model
// alongside (the model gates validity and supplies expected read
// values, exactly as the differential replay does). The caller owns
// the model across spans.
func replaySpan(w world, mdl *model, trace []Op, from, to int) *Failure {
	for i := from; i < to; i++ {
		op := trace[i]
		valid, want := mdl.apply(op)
		if !valid {
			continue
		}
		if op.Kind == OpRead {
			got, err := w.readback(op)
			if err != nil {
				return &Failure{OpIndex: i, World: w.name(), Reason: fmt.Sprintf("%s: %v", op, err)}
			}
			if got != want {
				return &Failure{OpIndex: i, World: w.name(),
					Reason: fmt.Sprintf("%s: read %#02x, model says %#02x", op, got, want)}
			}
		} else if err := w.apply(op); err != nil {
			return &Failure{OpIndex: i, World: w.name(), Reason: fmt.Sprintf("%s: %v", op, err)}
		}
		// Drive the tier engine exactly as the differential replay does,
		// so a tiered world's reconstruction follows the same migration
		// schedule (no-op without tiering).
		w.tierStep(i)
	}
	return nil
}

// capture freezes a world's observable machine state: per-CPU
// clocks/RNGs/counters, every registered stat set, and a content
// checksum of materialized physical memory. It advances no clock.
func capture(w world) (*sim.MachineState, uint64) {
	return w.machine().CaptureState(), w.memory().ContentChecksum()
}

// BuildSnapshot runs the named configuration over the first `at` ops
// of the seeded trace and checkpoints it. The embedded trace is the
// FULL trace, so a restored machine can finish the run.
func BuildSnapshot(config string, opts Options, at int) (*snapshot.Snapshot, error) {
	opts = opts.withDefaults()
	trace := generate(opts.Seed, opts.Ops, opts.CPUs)
	if at < 0 || at > len(trace) {
		return nil, fmt.Errorf("check: snapshot point %d outside trace [0,%d]", at, len(trace))
	}
	w, err := newWorld(config, opts.CPUs, opts.Seed, opts.Tier)
	if err != nil {
		return nil, err
	}
	if f := replaySpan(w, newModel(opts.CPUs), trace, 0, at); f != nil {
		return nil, fmt.Errorf("check: trace fails before snapshot point: %v", f)
	}
	st, sum := capture(w)
	return &snapshot.Snapshot{
		Meta: snapshot.Meta{
			Config:   config,
			CPUs:     opts.CPUs,
			Seed:     opts.Seed,
			SnapAt:   at,
			TraceOps: len(trace),
			Tier:     opts.Tier,
		},
		Machine:     st,
		Trace:       EncodeTrace(trace),
		MemChecksum: sum,
	}, nil
}

// restoreWorld reconstructs the machine a snapshot captured: build the
// configuration fresh and re-execute the recorded prefix. The restored
// world is bit-identical going forward — which verifyRestored proves.
// The returned model has consumed the same prefix and is ready to
// continue the trace.
func restoreWorld(snap *snapshot.Snapshot) (world, *model, []Op, error) {
	trace, err := DecodeTrace(snap.Trace)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(trace) != snap.Meta.TraceOps {
		return nil, nil, nil, fmt.Errorf("check: snapshot meta says %d ops, trace holds %d", snap.Meta.TraceOps, len(trace))
	}
	if snap.Meta.SnapAt < 0 || snap.Meta.SnapAt > len(trace) {
		return nil, nil, nil, fmt.Errorf("check: snapshot point %d outside trace [0,%d]", snap.Meta.SnapAt, len(trace))
	}
	w, err := newWorld(snap.Meta.Config, snap.Meta.CPUs, snap.Meta.Seed, snap.Meta.Tier)
	if err != nil {
		return nil, nil, nil, err
	}
	mdl := newModel(snap.Meta.CPUs)
	if f := replaySpan(w, mdl, trace, 0, snap.Meta.SnapAt); f != nil {
		return nil, nil, nil, fmt.Errorf("check: restore replay: %v", f)
	}
	return w, mdl, trace, nil
}

// verifyRestored proves a reconstructed world matches a captured
// state: machine state diff, memory content checksum, and a full
// invariant sweep.
func verifyRestored(w world, wantState *sim.MachineState, wantSum uint64, what string) error {
	st, sum := capture(w)
	if d := st.Diff(wantState); d != "" {
		return fmt.Errorf("check: %s: machine state diverged: %s", what, d)
	}
	if sum != wantSum {
		return fmt.Errorf("check: %s: memory content checksum %#x, want %#x", what, sum, wantSum)
	}
	if err := w.check(); err != nil {
		return fmt.Errorf("check: %s: invariants: %v", what, err)
	}
	return nil
}

// VerifySnapshot restores a snapshot and proves the reconstruction
// bit-identical to the captured state.
func VerifySnapshot(snap *snapshot.Snapshot) error {
	w, _, _, err := restoreWorld(snap)
	if err != nil {
		return err
	}
	return verifyRestored(w, snap.Machine, snap.MemChecksum, "restore")
}

// CrashRecoverReport summarizes one configuration's crash-and-recover
// run.
type CrashRecoverReport struct {
	Config         string
	SnapAt         int // ops executed before the checkpoint
	CrashAt        int // ops executed before the crash
	RecoveredAt    int // ops recovered to (CrashAt, or CrashAt-1 when torn)
	JournalRecords int // records replayed from the journal
	TornBytes      int // journal bytes discarded as a torn tail
	SnapshotBytes  int // encoded checkpoint size
}

// CrashRecover runs the crash-consistency experiment for every
// selected configuration:
//
//  1. An uncrashed CONTROL executes the whole trace, capturing its
//     state at crashAt and at the end.
//  2. The CRASHED timeline executes to snapAt, checkpoints (the
//     snapshot round-trips through the binary format), journals each
//     op in [snapAt, crashAt) as it executes — then the machine
//     crashes: volatile memory is dropped and the world abandoned.
//     With torn, the crash also cuts the journal mid-record, losing
//     the last op.
//  3. RECOVERY builds a fresh machine, replays the checkpoint prefix,
//     proves it bit-identical to the snapshot, replays the journal's
//     valid records (proving the result bit-identical to the control
//     at crashAt when the tail isn't torn), finishes the trace, and
//     proves the final state bit-identical to the control — plus a
//     final-content comparison against the model oracle.
//
// A non-nil Failure reports a persistence bug; error reports setup
// problems.
func CrashRecover(opts Options, snapAt, crashAt int, torn bool) ([]*CrashRecoverReport, *Failure, error) {
	opts = opts.withDefaults()
	trace := generate(opts.Seed, opts.Ops, opts.CPUs)
	if snapAt < 0 || snapAt > crashAt || crashAt > len(trace) {
		return nil, nil, fmt.Errorf("check: need 0 <= snapAt(%d) <= crashAt(%d) <= %d", snapAt, crashAt, len(trace))
	}
	if torn && crashAt == snapAt {
		return nil, nil, fmt.Errorf("check: a torn tail needs at least one journaled op")
	}
	var reports []*CrashRecoverReport
	for _, cfg := range opts.Configs {
		rep, f, err := crashRecoverOne(cfg, opts, trace, snapAt, crashAt, torn)
		if err != nil {
			return reports, nil, fmt.Errorf("%s: %w", cfg, err)
		}
		if f != nil {
			if f.World == "" {
				f.World = cfg
			}
			return reports, f, nil
		}
		reports = append(reports, rep)
	}
	return reports, nil, nil
}

func crashRecoverOne(cfg string, opts Options, trace []Op, snapAt, crashAt int, torn bool) (*CrashRecoverReport, *Failure, error) {
	// Control timeline: no crash, full trace.
	control, err := newWorld(cfg, opts.CPUs, opts.Seed, opts.Tier)
	if err != nil {
		return nil, nil, err
	}
	controlMdl := newModel(opts.CPUs)
	if f := replaySpan(control, controlMdl, trace, 0, crashAt); f != nil {
		f.Reason = "control: " + f.Reason
		return nil, f, nil
	}
	crashState, crashSum := capture(control)
	if f := replaySpan(control, controlMdl, trace, crashAt, len(trace)); f != nil {
		f.Reason = "control: " + f.Reason
		return nil, f, nil
	}
	finalState, finalSum := capture(control)

	// Crashed timeline: run to snapAt, checkpoint, journal, crash.
	crashed, err := newWorld(cfg, opts.CPUs, opts.Seed, opts.Tier)
	if err != nil {
		return nil, nil, err
	}
	crashedMdl := newModel(opts.CPUs)
	if f := replaySpan(crashed, crashedMdl, trace, 0, snapAt); f != nil {
		f.Reason = "crashed timeline: " + f.Reason
		return nil, f, nil
	}
	snapState, snapSum := capture(crashed)
	snap := &snapshot.Snapshot{
		Meta: snapshot.Meta{
			Config: cfg, CPUs: opts.CPUs, Seed: opts.Seed,
			SnapAt: snapAt, TraceOps: len(trace), Tier: opts.Tier,
		},
		Machine:     snapState,
		Trace:       EncodeTrace(trace),
		MemChecksum: snapSum,
	}
	// The checkpoint round-trips through the on-media format, so the
	// recovery below trusts only what Save durably wrote.
	var media bytes.Buffer
	if err := snap.Save(&media); err != nil {
		return nil, nil, err
	}
	snapshotBytes := media.Len()
	snap, err = snapshot.Load(&media)
	if err != nil {
		return nil, nil, err
	}
	jnl := &snapshot.Journal{}
	if f := replaySpan(crashed, crashedMdl, trace, snapAt, crashAt); f != nil {
		f.Reason = "crashed timeline: " + f.Reason
		return nil, f, nil
	}
	// Write-ahead order: every op in [snapAt, crashAt) reached the
	// journal before the crash (appended here in one batch — the
	// records are pure functions of the trace, and tooling charges no
	// simulated time either way).
	for i := snapAt; i < crashAt; i++ {
		jnl.Append(encodeOp(nil, trace[i]))
	}
	onMedia := jnl.Encode()
	if torn {
		// The crash cut the journal mid-record: the last record's CRC
		// never hit media, so recovery must discard it.
		onMedia = onMedia[:len(onMedia)-1]
	}
	// Power fails: DRAM contents vanish and the machine halts. The
	// crashed world is never consulted again.
	crashed.memory().Crash()

	// Recovery: reconstruct from the checkpoint, prove it, replay the
	// journal's valid prefix, finish the trace, prove the end state.
	recovered, recoveredMdl, rtrace, err := restoreWorld(snap)
	if err != nil {
		return nil, nil, err
	}
	if err := verifyRestored(recovered, snap.Machine, snap.MemChecksum, "recovery restore"); err != nil {
		return nil, &Failure{OpIndex: snapAt, World: cfg, Reason: err.Error()}, nil
	}
	decoded, tornBytes := snapshot.DecodeJournal(onMedia)
	for i, rec := range decoded.Records() {
		op, rest, err := decodeOp(rec)
		if err != nil || len(rest) != 0 {
			return nil, &Failure{OpIndex: snapAt + i, World: cfg,
				Reason: fmt.Sprintf("journal record %d undecodable: %v (%d trailing bytes)", i, err, len(rest))}, nil
		}
		if op != trace[snapAt+i] {
			return nil, &Failure{OpIndex: snapAt + i, World: cfg,
				Reason: fmt.Sprintf("journal record %d decoded to %s, journaled %s", i, op, trace[snapAt+i])}, nil
		}
	}
	recoveredAt := snapAt + decoded.Len()
	wantRecords := crashAt - snapAt
	if torn {
		wantRecords--
	}
	if decoded.Len() != wantRecords {
		return nil, &Failure{OpIndex: recoveredAt, World: cfg,
			Reason: fmt.Sprintf("journal recovered %d records, want %d (torn=%v)", decoded.Len(), wantRecords, torn)}, nil
	}
	if f := replaySpan(recovered, recoveredMdl, rtrace, snapAt, recoveredAt); f != nil {
		f.Reason = "journal replay: " + f.Reason
		return nil, f, nil
	}
	if !torn {
		// With a clean journal, recovery lands exactly on the control's
		// crash-instant state. A torn tail recovers one op earlier, so
		// there is no control capture to compare against — the final
		// verification below still covers it.
		if err := verifyRestored(recovered, crashState, crashSum, "journal replay"); err != nil {
			return nil, &Failure{OpIndex: crashAt, World: cfg, Reason: err.Error()}, nil
		}
	}
	if f := replaySpan(recovered, recoveredMdl, rtrace, recoveredAt, len(rtrace)); f != nil {
		f.Reason = "post-recovery: " + f.Reason
		return nil, f, nil
	}
	if err := verifyRestored(recovered, finalState, finalSum, "final state after recovery"); err != nil {
		return nil, &Failure{OpIndex: len(trace), World: cfg, Reason: err.Error()}, nil
	}
	if f := finalCompare(recoveredMdl, []world{recovered}, len(trace)); f != nil {
		f.Reason = "post-recovery: " + f.Reason
		return nil, f, nil
	}
	return &CrashRecoverReport{
		Config:         cfg,
		SnapAt:         snapAt,
		CrashAt:        crashAt,
		RecoveredAt:    recoveredAt,
		JournalRecords: decoded.Len(),
		TornBytes:      tornBytes,
		SnapshotBytes:  snapshotBytes,
	}, nil, nil
}

// crashRecoverStage is the randomized crash point selection Run uses
// when Options.CrashRecover is set: a seeded choice of crash op,
// checkpoint at its midpoint, and a coin flip for a torn tail.
func crashRecoverStage(opts Options, traceLen int) (snapAt, crashAt int, torn bool) {
	rng := sim.NewRNG(opts.Seed ^ 0x9e3779b97f4a7c15)
	crashAt = 1 + int(rng.Uint64n(uint64(traceLen)))
	snapAt = crashAt / 2
	torn = crashAt > snapAt && rng.Uint64n(2) == 1
	return snapAt, crashAt, torn
}
