// Package check implements the kernel invariant checker's driver: a
// seeded, randomized differential stress harness that runs the same
// operation sequence against every memory-system configuration the
// repository implements — the baseline VM (package vm), file-only
// memory accessed through read/write (fom), and file-only memory
// mapped with PBM translations in both SharedPT and Ranges modes
// (package core) — and demands that all observable outcomes agree.
//
// The harness is deterministic: a seed fully determines the operation
// trace, so any failure is replayable with `o1check -seed N`. On
// failure the trace is greedily shrunk to a minimal reproducer.
//
// Invariant checking itself lives with each subsystem (vm.Kernel,
// core.System, memfs.FS register with their sim.Machine); the harness
// calls Machine.CheckInvariants at a configurable interval and at the
// end of every run.
package check

import "fmt"

// OpKind enumerates the operations the stress harness generates.
type OpKind uint8

const (
	// OpMap creates a new memory object (anonymous-private or
	// shareable) and maps it into the acting process.
	OpMap OpKind = iota
	// OpUnmap removes the acting process's mapping of an object. The
	// object dies when its last mapping goes.
	OpUnmap
	// OpWrite stores Val at byte 0 of page Page of an object.
	OpWrite
	// OpRead loads byte 0 of page Page of an object; the value is
	// compared across configurations and against the model.
	OpRead
	// OpFork clones the acting process into Child: private objects are
	// copied (COW in the baseline), shared objects stay shared.
	OpFork
	// OpShare maps an existing shareable object into another process.
	OpShare
	// OpReclaim asks the baseline kernel to reclaim pages (swap-out
	// pressure). Configurations without page reclaim treat it as a
	// no-op; outcomes are unaffected by design, which the differential
	// comparison verifies.
	OpReclaim
	// OpMigrate moves the acting process to another CPU, so later
	// operations execute (and miss/fill TLBs) there.
	OpMigrate
	// OpFSCreate creates a named file in the configuration's file
	// system.
	OpFSCreate
	// OpFSWrite writes Val at byte 0 of page Page of a named file,
	// extending it as needed.
	OpFSWrite
	// OpFSDelete unlinks a named file.
	OpFSDelete

	numOpKinds
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpMap:
		return "map"
	case OpUnmap:
		return "unmap"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpFork:
		return "fork"
	case OpShare:
		return "share"
	case OpReclaim:
		return "reclaim"
	case OpMigrate:
		return "migrate"
	case OpFSCreate:
		return "fs-create"
	case OpFSWrite:
		return "fs-write"
	case OpFSDelete:
		return "fs-delete"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one generated operation. Fields are used according to Kind;
// unused fields are zero. Object and process IDs are assigned by the
// generator and never reused, so a trace with operations removed (by
// the shrinker) still refers to unambiguous entities — removed
// operations simply make later references invalid, and invalid
// operations are skipped identically by the model and every world.
type Op struct {
	Kind   OpKind
	Proc   int    // acting process
	Obj    int    // object ID (map/unmap/write/read/share)
	Child  int    // fork: pre-assigned child process ID
	Pages  uint64 // map: object length in pages
	Page   uint64 // write/read/fs-write: page index
	Val    byte   // write/fs-write: value (always non-zero)
	CPU    int    // migrate: destination CPU
	Shared bool   // map: object is shareable
	Path   string // fs ops: file name
}

// String renders the operation compactly for failure reports.
func (o Op) String() string {
	switch o.Kind {
	case OpMap:
		kind := "private"
		if o.Shared {
			kind = "shared"
		}
		return fmt.Sprintf("proc %d: map obj %d (%d pages, %s)", o.Proc, o.Obj, o.Pages, kind)
	case OpUnmap:
		return fmt.Sprintf("proc %d: unmap obj %d", o.Proc, o.Obj)
	case OpWrite:
		return fmt.Sprintf("proc %d: write obj %d page %d <- %#02x", o.Proc, o.Obj, o.Page, o.Val)
	case OpRead:
		return fmt.Sprintf("proc %d: read obj %d page %d", o.Proc, o.Obj, o.Page)
	case OpFork:
		return fmt.Sprintf("proc %d: fork -> proc %d", o.Proc, o.Child)
	case OpShare:
		return fmt.Sprintf("proc %d: share obj %d", o.Proc, o.Obj)
	case OpReclaim:
		return "reclaim"
	case OpMigrate:
		return fmt.Sprintf("proc %d: migrate to CPU %d", o.Proc, o.CPU)
	case OpFSCreate:
		return fmt.Sprintf("proc %d: fs create %q", o.Proc, o.Path)
	case OpFSWrite:
		return fmt.Sprintf("proc %d: fs write %q page %d <- %#02x", o.Proc, o.Path, o.Page, o.Val)
	case OpFSDelete:
		return fmt.Sprintf("proc %d: fs delete %q", o.Proc, o.Path)
	default:
		return o.Kind.String()
	}
}
