package check

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// AllConfigs lists every configuration the harness can drive, in the
// order runs report them.
var AllConfigs = []string{"baseline", "fom", "pbm", "ranges", "usermode"}

// Options configure one stress run.
type Options struct {
	// Seed determines the trace completely.
	Seed uint64
	// Ops is the trace length (default 1000).
	Ops int
	// CPUs sizes each world's machine (default 2).
	CPUs int
	// Configs selects the worlds to run differentially (default all).
	Configs []string
	// CheckEvery runs every world's invariant sweep after each
	// CheckEvery operations; 0 checks only at the end.
	CheckEvery int
	// Tier attaches a tier migration engine (Smart policy) to every
	// world, so the differential comparison and the invariant sweeps run
	// with frames migrating between DRAM and NVM underneath the trace.
	// Migrations must preserve byte contents (the readback and final
	// comparisons prove it), TLB freshness (the TLB invariants prove
	// it), and per-tier accounting (the tier invariants prove it).
	// Composes with CrashRecover: hotness state is volatile, but the
	// tier engine is deterministic, so restore-by-reexecution rebuilds
	// it — the snapshot records the tier flag and the recovery replay
	// drives the same tier steps. Migrations dirty their destination
	// frames like any other write, so incremental checkpoints capture
	// them.
	Tier bool
	// Shrink reduces a failing trace to a minimal reproducer.
	Shrink bool
	// ShrinkBudget caps the number of shrink replays (default 400).
	ShrinkBudget int
	// Corrupt deliberately corrupts baseline rmap state after the last
	// operation, via vm.(*Kernel).TestOnlyCorruptRmap. It exists to
	// prove the checker and shrinker catch real metadata corruption;
	// only tests set it.
	Corrupt bool
	// CrashRecover runs the randomized crash-and-recover stage after a
	// successful differential replay: checkpoint mid-trace, journal,
	// crash at a seeded op (possibly tearing the journal), recover, and
	// demand the recovered timeline be bit-identical to an uncrashed
	// control (see persist.go).
	CrashRecover bool
	// Incremental switches the crash-recover stage to incremental
	// checkpointing: a base snapshot plus dirty-extent deltas, with the
	// journal compacted at each delta, and a differential-image proof
	// that base + deltas reconstruct memory bit-exactly (see
	// persist_incr.go). Requires CrashRecover.
	Incremental bool
}

func (o Options) withDefaults() Options {
	if o.Ops == 0 {
		o.Ops = 1000
	}
	if o.CPUs == 0 {
		o.CPUs = 2
	}
	if len(o.Configs) == 0 {
		o.Configs = AllConfigs
	}
	if o.ShrinkBudget == 0 {
		o.ShrinkBudget = 400
	}
	return o
}

// Failure describes one detected divergence or invariant violation.
type Failure struct {
	// OpIndex is the index of the operation after which the failure was
	// detected; len(trace) means the end-of-run sweep.
	OpIndex int
	// World is the configuration that failed ("" for cross-world
	// divergences reported against the model).
	World string
	// Reason is the human-readable diagnosis.
	Reason string
}

func (f *Failure) Error() string {
	where := "end of run"
	if f.World != "" {
		where = f.World
	}
	return fmt.Sprintf("op %d [%s]: %s", f.OpIndex, where, f.Reason)
}

// Report is the outcome of a Run.
type Report struct {
	Opts    Options
	Trace   []Op     // the generated trace
	Failure *Failure // nil on success
	Shrunk  []Op     // minimal failing trace (with Opts.Shrink)

	// CrashReports describes the crash-and-recover stage (with
	// Opts.CrashRecover, when the stage ran to completion).
	CrashReports []*CrashRecoverReport

	// ChainReports describes the incremental crash-and-recover stage
	// (with Opts.Incremental, when the stage ran to completion).
	ChainReports []*ChainReport
}

// Format renders the report for humans: the failure, the (shrunk)
// trace, and the command reproducing it.
func (r *Report) Format() string {
	if r.Failure == nil {
		s := fmt.Sprintf("ok: seed=%d ops=%d cpus=%d configs=%s",
			r.Opts.Seed, len(r.Trace), r.Opts.CPUs, strings.Join(r.Opts.Configs, ","))
		if len(r.CrashReports) > 0 {
			cr := r.CrashReports[0]
			s += fmt.Sprintf("\nok: crash-recover snap@%d crash@%d (torn=%v): all configs recovered bit-identical",
				cr.SnapAt, cr.CrashAt, cr.CrashAt != cr.RecoveredAt)
		}
		if len(r.ChainReports) > 0 {
			cr := r.ChainReports[0]
			s += fmt.Sprintf("\nok: incremental crash-recover base@%d deltas@%v crash@%d (torn=%v): all configs recovered bit-identical, differential images exact",
				cr.BaseAt, cr.DeltaAts, cr.CrashAt, cr.TornBytes > 0)
		}
		return s
	}
	var b strings.Builder
	fmt.Fprintf(&b, "FAIL: seed=%d: %v\n", r.Opts.Seed, r.Failure)
	trace := r.Shrunk
	label := "shrunk trace"
	if trace == nil {
		trace = r.Trace
		label = "trace"
	}
	fmt.Fprintf(&b, "%s (%d ops):\n", label, len(trace))
	for i, op := range trace {
		fmt.Fprintf(&b, "  %4d: %s\n", i, op)
	}
	extra := ""
	if r.Opts.CrashRecover {
		extra = " -crash-recover"
	}
	if r.Opts.Incremental {
		extra += " -incremental"
	}
	if r.Opts.Tier {
		extra += " -tier"
	}
	fmt.Fprintf(&b, "reproduce: o1check -seed %d -ops %d -cpus %d -config %s%s\n",
		r.Opts.Seed, r.Opts.Ops, r.Opts.CPUs, strings.Join(r.Opts.Configs, ","), extra)
	return b.String()
}

// Run generates the seeded trace, replays it differentially against
// every selected configuration, and (on failure, when requested)
// shrinks the trace to a minimal reproducer. The returned error
// reports setup problems only; test outcomes are in the Report.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if opts.Incremental && !opts.CrashRecover {
		return nil, fmt.Errorf("check: -incremental requires -crash-recover")
	}
	for _, cfg := range opts.Configs {
		if _, err := newWorld(cfg, 1, 0, opts.Tier); err != nil {
			return nil, err
		}
	}
	trace := generate(opts.Seed, opts.Ops, opts.CPUs)
	report := &Report{Opts: opts, Trace: trace}
	report.Failure = replay(trace, opts)
	if report.Failure == nil && opts.CrashRecover && opts.Incremental {
		baseAt, deltaAts, crashAt, torn := incrementalStage(opts, len(trace))
		crs, f, err := CrashRecoverIncremental(opts, baseAt, deltaAts, crashAt, torn)
		if err != nil {
			return nil, err
		}
		report.ChainReports = crs
		if f != nil {
			// Crash-recover failures are not shrinkable: the shrink
			// predicate replays without the persistence stage.
			f.Reason = "incremental crash-recover: " + f.Reason
			report.Failure = f
			return report, nil
		}
	} else if report.Failure == nil && opts.CrashRecover {
		snapAt, crashAt, torn := crashRecoverStage(opts, len(trace))
		crs, f, err := CrashRecover(opts, snapAt, crashAt, torn)
		if err != nil {
			return nil, err
		}
		report.CrashReports = crs
		if f != nil {
			// Crash-recover failures are not shrinkable: the shrink
			// predicate replays without the persistence stage.
			f.Reason = "crash-recover: " + f.Reason
			report.Failure = f
			return report, nil
		}
	}
	if report.Failure == nil || !opts.Shrink {
		return report, nil
	}

	// Shrink on the failing prefix: operations past the failure point
	// cannot matter.
	prefix := trace
	if report.Failure.OpIndex < len(trace) {
		prefix = trace[:report.Failure.OpIndex+1]
	}
	budget := opts.ShrinkBudget
	report.Shrunk = shrinkTrace(prefix, func(cand []Op) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return replay(cand, opts) != nil
	})
	return report, nil
}

// RunMany replays `seeds` consecutive seeds starting at opts.Seed,
// fanned out over `workers` host goroutines — the harness's
// host-parallel mode. Each seed's run builds its own worlds and shares
// nothing with its siblings, so the returned reports (in seed order)
// are identical whatever the worker count or host interleaving; only
// wall-clock time changes. A non-nil error reports the first setup
// failure; test outcomes are in the Reports.
func RunMany(opts Options, seeds, workers int) ([]*Report, error) {
	if seeds < 1 {
		seeds = 1
	}
	if workers < 1 {
		workers = 1
	}
	if workers > seeds {
		workers = seeds
	}
	reports := make([]*Report, seeds)
	errs := make([]error, seeds)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				o := opts
				o.Seed = opts.Seed + uint64(i)
				reports[i], errs[i] = Run(o)
			}
		}()
	}
	for i := 0; i < seeds; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return reports, nil
}

// replay builds fresh worlds and applies the trace, checking
// invariants at the configured interval, comparing reads as they
// happen, and sweeping invariants plus final contents at the end. A
// nil return means the trace passes.
func replay(trace []Op, opts Options) *Failure {
	mdl := newModel(opts.CPUs)
	worlds := make([]world, len(opts.Configs))
	for i, cfg := range opts.Configs {
		w, err := newWorld(cfg, opts.CPUs, opts.Seed, opts.Tier)
		if err != nil {
			return &Failure{World: cfg, Reason: fmt.Sprintf("world setup: %v", err)}
		}
		worlds[i] = w
	}

	for i, op := range trace {
		valid, want := mdl.apply(op)
		if !valid {
			continue // prerequisite removed by the shrinker: skip everywhere
		}
		for _, w := range worlds {
			if op.Kind == OpRead {
				got, err := w.readback(op)
				if err != nil {
					return &Failure{OpIndex: i, World: w.name(), Reason: fmt.Sprintf("%s: %v", op, err)}
				}
				if got != want {
					return &Failure{OpIndex: i, World: w.name(),
						Reason: fmt.Sprintf("%s: read %#02x, model (and every agreeing configuration) says %#02x", op, got, want)}
				}
			} else if err := w.apply(op); err != nil {
				return &Failure{OpIndex: i, World: w.name(), Reason: fmt.Sprintf("%s: %v", op, err)}
			}
			w.tierStep(i)
		}
		if opts.CheckEvery > 0 && (i+1)%opts.CheckEvery == 0 {
			for _, w := range worlds {
				if err := w.check(); err != nil {
					return &Failure{OpIndex: i, World: w.name(), Reason: err.Error()}
				}
			}
		}
	}

	if opts.Corrupt {
		for _, w := range worlds {
			if bw, ok := w.(*vmWorld); ok {
				bw.k.TestOnlyCorruptRmap()
			}
		}
	}

	end := len(trace)
	for _, w := range worlds {
		if err := w.check(); err != nil {
			return &Failure{OpIndex: end, World: w.name(), Reason: err.Error()}
		}
	}
	return finalCompare(mdl, worlds, end)
}

// finalCompare verifies that every world's observable end state —
// byte 0 of every page of every live object, per mapping process, and
// of every live file — matches the model.
func finalCompare(mdl *model, worlds []world, end int) *Failure {
	for _, obj := range sortedKeys(mdl.objects) {
		o := mdl.objects[obj]
		for _, proc := range sortedBoolKeys(o.procs) {
			content := o.bytes(proc)
			for page := uint64(0); page < o.pages; page++ {
				for _, w := range worlds {
					got, err := w.objectByte(obj, proc, page)
					if err != nil {
						return &Failure{OpIndex: end, World: w.name(),
							Reason: fmt.Sprintf("final state: obj %d proc %d page %d: %v", obj, proc, page, err)}
					}
					if got != content[page] {
						return &Failure{OpIndex: end, World: w.name(),
							Reason: fmt.Sprintf("final state: obj %d proc %d page %d holds %#02x, want %#02x",
								obj, proc, page, got, content[page])}
					}
				}
			}
		}
	}
	paths := make([]string, 0, len(mdl.files))
	for p := range mdl.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		content := mdl.files[path]
		for page := range content {
			for _, w := range worlds {
				got, err := w.fileByte(path, uint64(page))
				if err != nil {
					return &Failure{OpIndex: end, World: w.name(),
						Reason: fmt.Sprintf("final state: file %q page %d: %v", path, page, err)}
				}
				if got != content[page] {
					return &Failure{OpIndex: end, World: w.name(),
						Reason: fmt.Sprintf("final state: file %q page %d holds %#02x, want %#02x",
							path, page, got, content[page])}
				}
			}
		}
	}
	return nil
}

// sortedBoolKeys returns a set's keys in ascending order.
func sortedBoolKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
