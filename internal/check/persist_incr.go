package check

import (
	"bytes"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// This file implements the incremental (differential) persistence
// stage on top of persist.go's restore-by-reexecution machinery: a
// base snapshot plus dirty-extent deltas (internal/ckpt), with the
// write-ahead journal compacted at every delta. The same doctrine
// applies — persistence tooling charges ZERO simulated time; the
// modeled costs of online checkpointing are charged by the bench
// experiment (E20), not here.

// ChainReport summarizes one configuration's incremental
// crash-and-recover run.
type ChainReport struct {
	Config      string
	BaseAt      int   // ops executed before the base snapshot
	DeltaAts    []int // ops executed before each delta capture
	CrashAt     int   // ops executed before the crash
	RecoveredAt int   // ops recovered to (CrashAt, or CrashAt-1 when torn)
	// DirtyFrames and DirtyUnits count, per delta, the frames dirtied
	// since the previous capture and the checkpoint units covering them
	// (extents/grants for the extent configs, pages for the baseline).
	DirtyFrames []int
	DirtyUnits  []int
	// Watermark is the journal's compaction watermark at the crash: the
	// number of records superseded by deltas and dropped from media.
	Watermark      uint64
	JournalRecords int // records replayed from the journal suffix
	TornBytes      int // journal bytes discarded as a torn tail
	ChainBytes     int // encoded chain size (base + images + deltas)
}

// validateChainPoints checks 0 <= baseAt <= deltaAts (ascending) <=
// upTo <= traceLen and returns the last capture point.
func validateChainPoints(baseAt int, deltaAts []int, upTo, traceLen int) (int, error) {
	if baseAt < 0 || baseAt > upTo || upTo > traceLen {
		return 0, fmt.Errorf("check: need 0 <= baseAt(%d) <= upTo(%d) <= %d", baseAt, upTo, traceLen)
	}
	last := baseAt
	for _, at := range deltaAts {
		if at <= last || at > upTo {
			return 0, fmt.Errorf("check: delta points %v must ascend strictly within (baseAt(%d), upTo(%d)]", deltaAts, baseAt, upTo)
		}
		last = at
	}
	return last, nil
}

// buildChain executes cfg over trace[0:upTo], capturing a base
// snapshot (plus full memory image) at baseAt and a dirty-frame delta
// at each of deltaAts, journaling every op past baseAt. With compact,
// the journal is compacted at each delta — the online-checkpoint
// behavior, leaving only the post-watermark suffix on media. The
// returned world is live at upTo (the caller crashes or discards it).
func buildChain(cfg string, opts Options, trace []Op, baseAt int, deltaAts []int, upTo int, compact bool) (*ckpt.Chain, world, *Failure, error) {
	w, err := newWorld(cfg, opts.CPUs, opts.Seed, opts.Tier)
	if err != nil {
		return nil, nil, nil, err
	}
	mdl := newModel(opts.CPUs)
	if f := replaySpan(w, mdl, trace, 0, baseAt); f != nil {
		f.Reason = "chain timeline: " + f.Reason
		return nil, nil, f, nil
	}
	baseState, baseSum := capture(w)
	chain := &ckpt.Chain{
		Base: &snapshot.Snapshot{
			Meta: snapshot.Meta{
				Config: cfg, CPUs: opts.CPUs, Seed: opts.Seed,
				SnapAt: baseAt, TraceOps: len(trace), Tier: opts.Tier,
			},
			Machine:     baseState,
			Trace:       EncodeTrace(trace),
			MemChecksum: baseSum,
		},
		BaseFrames: ckpt.CaptureImage(w.memory()),
		Journal:    &snapshot.Journal{},
	}
	w.memory().SetDirtyTracking(true)
	pos := baseAt
	for k, at := range deltaAts {
		if f := replaySpan(w, mdl, trace, pos, at); f != nil {
			f.Reason = "chain timeline: " + f.Reason
			return nil, nil, f, nil
		}
		// Write-ahead order: every op reached the journal before it ran
		// (appended in one batch — records are pure functions of the
		// trace, and tooling charges no simulated time either way).
		for i := pos; i < at; i++ {
			chain.Journal.Append(encodeOp(nil, trace[i]))
		}
		frames := w.memory().DirtyFrames()
		units := w.dirtyUnits(frames)
		if gaps := ckpt.Uncovered(frames, units); len(gaps) > 0 {
			return nil, nil, &Failure{OpIndex: at, World: cfg,
				Reason: fmt.Sprintf("delta %d: %d dirty frames unclaimed by any subsystem (first: %d)", k+1, len(gaps), gaps[0])}, nil
		}
		st, sum := capture(w)
		chain.Deltas = append(chain.Deltas, &ckpt.Delta{
			Epoch:       k + 1,
			UpTo:        at,
			Units:       units,
			Frames:      ckpt.CaptureFrames(w.memory(), frames),
			Machine:     st,
			MemChecksum: sum,
		})
		w.memory().ResetDirty()
		if compact {
			// The delta supersedes every record before its capture point:
			// truncate the WAL to the suffix.
			if err := chain.Journal.Compact(uint64(at - baseAt)); err != nil {
				return nil, nil, nil, err
			}
		}
		pos = at
	}
	if f := replaySpan(w, mdl, trace, pos, upTo); f != nil {
		f.Reason = "chain timeline: " + f.Reason
		return nil, nil, f, nil
	}
	for i := pos; i < upTo; i++ {
		chain.Journal.Append(encodeOp(nil, trace[i]))
	}
	w.memory().SetDirtyTracking(false)
	return chain, w, nil, nil
}

// BuildChain runs the named configuration over the full seeded trace,
// checkpointing a base at baseAt and a delta at each of deltaAts, with
// the journal holding every op after baseAt (uncompacted — o1snap's
// compact verb truncates it explicitly).
func BuildChain(config string, opts Options, baseAt int, deltaAts []int) (*ckpt.Chain, error) {
	opts = opts.withDefaults()
	trace := generate(opts.Seed, opts.Ops, opts.CPUs)
	if _, err := validateChainPoints(baseAt, deltaAts, len(trace), len(trace)); err != nil {
		return nil, err
	}
	chain, _, f, err := buildChain(config, opts, trace, baseAt, deltaAts, len(trace), false)
	if err != nil {
		return nil, err
	}
	if f != nil {
		return nil, fmt.Errorf("check: %v", f)
	}
	return chain, nil
}

// rebuildFromChain reconstructs the machine at the chain's last
// capture point: build the configuration fresh, replay the prefix, and
// prove the rebuild bit-identical to the last capture AND to the
// differential image (base overlaid with every delta) — the proof that
// dirty tracking missed nothing.
func rebuildFromChain(chain *ckpt.Chain) (world, *model, []Op, error) {
	trace, err := DecodeTrace(chain.Base.Trace)
	if err != nil {
		return nil, nil, nil, err
	}
	meta := chain.Base.Meta
	if len(trace) != meta.TraceOps {
		return nil, nil, nil, fmt.Errorf("check: chain meta says %d ops, trace holds %d", meta.TraceOps, len(trace))
	}
	lastUpTo := chain.LastUpTo()
	if lastUpTo < 0 || lastUpTo > len(trace) {
		return nil, nil, nil, fmt.Errorf("check: chain capture point %d outside trace [0,%d]", lastUpTo, len(trace))
	}
	w, err := newWorld(meta.Config, meta.CPUs, meta.Seed, meta.Tier)
	if err != nil {
		return nil, nil, nil, err
	}
	mdl := newModel(meta.CPUs)
	if f := replaySpan(w, mdl, trace, 0, lastUpTo); f != nil {
		return nil, nil, nil, fmt.Errorf("check: chain rebuild replay: %v", f)
	}
	wantState, wantSum := chain.Base.Machine, chain.Base.MemChecksum
	if n := len(chain.Deltas); n > 0 {
		wantState, wantSum = chain.Deltas[n-1].Machine, chain.Deltas[n-1].MemChecksum
	}
	if err := verifyRestored(w, wantState, wantSum, "chain restore"); err != nil {
		return nil, nil, nil, err
	}
	if err := ckpt.ImageEqual(w.memory(), ckpt.AssembleImage(chain.BaseFrames, chain.Deltas)); err != nil {
		return nil, nil, nil, fmt.Errorf("check: differential image: %w", err)
	}
	return w, mdl, trace, nil
}

// VerifyChain rebuilds a chain, proves the differential restore, then
// replays the journal suffix past the watermark, cross-checking every
// record against the embedded trace, and finishes with an invariant
// sweep plus a model content comparison.
func VerifyChain(chain *ckpt.Chain) error {
	w, mdl, trace, err := rebuildFromChain(chain)
	if err != nil {
		return err
	}
	baseAt := chain.Base.Meta.SnapAt
	lastUpTo := chain.LastUpTo()
	startOp := baseAt + int(chain.Journal.Watermark())
	if startOp > lastUpTo {
		return fmt.Errorf("check: journal watermark at op %d, past last capture %d (over-compacted: records lost)", startOp, lastUpTo)
	}
	endOp := startOp + chain.Journal.Len()
	if endOp < lastUpTo {
		return fmt.Errorf("check: journal ends at op %d, before last capture %d", endOp, lastUpTo)
	}
	for i, rec := range chain.Journal.Records() {
		op, rest, err := decodeOp(rec)
		if err != nil || len(rest) != 0 {
			return fmt.Errorf("check: journal record %d undecodable: %v (%d trailing bytes)", i, err, len(rest))
		}
		if op != trace[startOp+i] {
			return fmt.Errorf("check: journal record %d decoded to %s, trace has %s", i, op, trace[startOp+i])
		}
	}
	if f := replaySpan(w, mdl, trace, lastUpTo, endOp); f != nil {
		return fmt.Errorf("check: journal replay: %v", f)
	}
	if err := w.check(); err != nil {
		return fmt.Errorf("check: post-replay invariants: %v", err)
	}
	if f := finalCompare(mdl, []world{w}, endOp); f != nil {
		return fmt.Errorf("check: post-replay content: %v", f)
	}
	return nil
}

// CrashRecoverIncremental runs the incremental crash-consistency
// experiment for every selected configuration:
//
//  1. An uncrashed CONTROL executes the whole trace, capturing its
//     state at crashAt and at the end.
//  2. The CRASHED timeline executes with dirty tracking: base
//     checkpoint (snapshot + full memory image) at baseAt, then at
//     each delta point a dirty-frame delta — the frames dirtied since
//     the previous capture, covered by subsystem units — after which
//     the journal is compacted to the delta (the WAL stops growing).
//     The chain round-trips through the binary format; the crash cuts
//     the live journal (mid-record with torn) and drops DRAM.
//  3. RECOVERY rebuilds to the LAST delta (not the base: the deltas'
//     proof states pin every intermediate capture), proves the rebuild
//     bit-identical to the delta capture AND to the assembled
//     differential image (base + deltas), checks the journal watermark
//     landed exactly at the last delta, replays the journal's valid
//     suffix, finishes the trace, and proves the final state
//     bit-identical to the control.
func CrashRecoverIncremental(opts Options, baseAt int, deltaAts []int, crashAt int, torn bool) ([]*ChainReport, *Failure, error) {
	opts = opts.withDefaults()
	trace := generate(opts.Seed, opts.Ops, opts.CPUs)
	lastAt, err := validateChainPoints(baseAt, deltaAts, crashAt, len(trace))
	if err != nil {
		return nil, nil, err
	}
	if torn && crashAt == lastAt {
		return nil, nil, fmt.Errorf("check: a torn tail needs at least one journaled op past the last delta")
	}
	var reports []*ChainReport
	for _, cfg := range opts.Configs {
		rep, f, err := chainRecoverOne(cfg, opts, trace, baseAt, deltaAts, crashAt, torn)
		if err != nil {
			return reports, nil, fmt.Errorf("%s: %w", cfg, err)
		}
		if f != nil {
			if f.World == "" {
				f.World = cfg
			}
			return reports, f, nil
		}
		reports = append(reports, rep)
	}
	return reports, nil, nil
}

func chainRecoverOne(cfg string, opts Options, trace []Op, baseAt int, deltaAts []int, crashAt int, torn bool) (*ChainReport, *Failure, error) {
	// Control timeline: no crash, full trace.
	control, err := newWorld(cfg, opts.CPUs, opts.Seed, opts.Tier)
	if err != nil {
		return nil, nil, err
	}
	controlMdl := newModel(opts.CPUs)
	if f := replaySpan(control, controlMdl, trace, 0, crashAt); f != nil {
		f.Reason = "control: " + f.Reason
		return nil, f, nil
	}
	crashState, crashSum := capture(control)
	if f := replaySpan(control, controlMdl, trace, crashAt, len(trace)); f != nil {
		f.Reason = "control: " + f.Reason
		return nil, f, nil
	}
	finalState, finalSum := capture(control)

	// Crashed timeline: base + deltas with online journal compaction.
	chain, crashed, f, err := buildChain(cfg, opts, trace, baseAt, deltaAts, crashAt, true)
	if err != nil {
		return nil, nil, err
	}
	if f != nil {
		return nil, f, nil
	}
	// The chain (checkpoint data) round-trips through the on-media
	// format — recovery trusts only what Save durably wrote. The live
	// journal is separate media with its own torn-tail rule.
	onMedia := chain.Journal.Encode()
	if torn {
		// The crash cut the journal mid-record: the last record's CRC
		// never hit media, so recovery must discard it.
		onMedia = onMedia[:len(onMedia)-1]
	}
	var media bytes.Buffer
	if err := chain.Save(&media); err != nil {
		return nil, nil, err
	}
	chainBytes := media.Len()
	loaded, err := ckpt.Load(&media)
	if err != nil {
		return nil, nil, err
	}
	// Power fails: DRAM contents vanish and the machine halts. The
	// crashed world is never consulted again.
	crashed.memory().Crash()

	// Recovery: rebuild to the last delta, prove the differential
	// restore, replay the journal suffix, finish, prove the end state.
	recovered, recoveredMdl, rtrace, err := rebuildFromChain(loaded)
	if err != nil {
		return nil, &Failure{OpIndex: loaded.LastUpTo(), World: cfg, Reason: err.Error()}, nil
	}
	lastUpTo := loaded.LastUpTo()
	decoded, tornBytes := snapshot.DecodeJournal(onMedia)
	// Compaction must have landed the watermark exactly at the last
	// delta: the records on media are precisely the ops the deltas did
	// not capture.
	if want := uint64(lastUpTo - baseAt); decoded.Watermark() != want {
		return nil, &Failure{OpIndex: lastUpTo, World: cfg,
			Reason: fmt.Sprintf("journal watermark %d, want %d (last delta at op %d)", decoded.Watermark(), want, lastUpTo)}, nil
	}
	for i, rec := range decoded.Records() {
		op, rest, err := decodeOp(rec)
		if err != nil || len(rest) != 0 {
			return nil, &Failure{OpIndex: lastUpTo + i, World: cfg,
				Reason: fmt.Sprintf("journal record %d undecodable: %v (%d trailing bytes)", i, err, len(rest))}, nil
		}
		if op != trace[lastUpTo+i] {
			return nil, &Failure{OpIndex: lastUpTo + i, World: cfg,
				Reason: fmt.Sprintf("journal record %d decoded to %s, journaled %s", i, op, trace[lastUpTo+i])}, nil
		}
	}
	wantRecords := crashAt - lastUpTo
	if torn {
		wantRecords--
	}
	if decoded.Len() != wantRecords {
		return nil, &Failure{OpIndex: lastUpTo + decoded.Len(), World: cfg,
			Reason: fmt.Sprintf("journal recovered %d records, want %d (torn=%v)", decoded.Len(), wantRecords, torn)}, nil
	}
	recoveredAt := lastUpTo + decoded.Len()
	if f := replaySpan(recovered, recoveredMdl, rtrace, lastUpTo, recoveredAt); f != nil {
		f.Reason = "journal replay: " + f.Reason
		return nil, f, nil
	}
	if !torn {
		// With a clean journal, recovery lands exactly on the control's
		// crash-instant state; a torn tail recovers one op earlier, and
		// the final verification below still covers it.
		if err := verifyRestored(recovered, crashState, crashSum, "journal replay"); err != nil {
			return nil, &Failure{OpIndex: crashAt, World: cfg, Reason: err.Error()}, nil
		}
	}
	if f := replaySpan(recovered, recoveredMdl, rtrace, recoveredAt, len(rtrace)); f != nil {
		f.Reason = "post-recovery: " + f.Reason
		return nil, f, nil
	}
	if err := verifyRestored(recovered, finalState, finalSum, "final state after recovery"); err != nil {
		return nil, &Failure{OpIndex: len(trace), World: cfg, Reason: err.Error()}, nil
	}
	if f := finalCompare(recoveredMdl, []world{recovered}, len(trace)); f != nil {
		f.Reason = "post-recovery: " + f.Reason
		return nil, f, nil
	}
	rep := &ChainReport{
		Config:         cfg,
		BaseAt:         baseAt,
		DeltaAts:       append([]int(nil), deltaAts...),
		CrashAt:        crashAt,
		RecoveredAt:    recoveredAt,
		Watermark:      decoded.Watermark(),
		JournalRecords: decoded.Len(),
		TornBytes:      tornBytes,
		ChainBytes:     chainBytes,
	}
	for _, d := range loaded.Deltas {
		rep.DirtyFrames = append(rep.DirtyFrames, len(d.Frames))
		rep.DirtyUnits = append(rep.DirtyUnits, len(d.Units))
	}
	return rep, nil, nil
}

// incrementalStage is the randomized point selection Run uses when
// Options.Incremental is set: a seeded crash op, a base checkpoint at
// its first third, up to three evenly spaced deltas between base and
// crash, and a coin flip for a torn tail.
func incrementalStage(opts Options, traceLen int) (baseAt int, deltaAts []int, crashAt int, torn bool) {
	rng := sim.NewRNG(opts.Seed ^ 0x5bd1e9955bd1e995)
	crashAt = 1 + int(rng.Uint64n(uint64(traceLen)))
	baseAt = crashAt / 3
	nDeltas := 1 + int(rng.Uint64n(3))
	span := crashAt - baseAt
	last := baseAt
	for i := 1; i <= nDeltas; i++ {
		at := baseAt + span*i/(nDeltas+1)
		if at > last {
			deltaAts = append(deltaAts, at)
			last = at
		}
	}
	torn = crashAt > last && rng.Uint64n(2) == 1
	return baseAt, deltaAts, crashAt, torn
}
