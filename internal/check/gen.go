package check

import (
	"fmt"

	"repro/internal/sim"
)

// Generator capacity caps. They exist so no configuration can run out
// of physical memory on a valid trace: SharedPT pads every object to
// 512-page chunks, so the binding constraint is
// maxLiveMappings × 512 pages = 20480 frames ≪ nvmFrames.
// Object and process IDs are never reused (see Op), so the caps bound
// live state, not trace length.
const (
	maxObjPages     = 32 // object size in pages
	maxFilePages    = 64 // named-file size in pages
	maxProcs        = 6
	maxLiveObjects  = 24
	maxLiveMappings = 40 // private mappings + shared objects, totalled
	maxFiles        = 16
)

// genObj is the generator's view of a live object.
type genObj struct {
	id     int
	pages  uint64
	shared bool
	procs  []int // processes mapping it, ascending
}

// genState tracks live entities while generating, mirroring the model
// just enough to emit only-valid operations.
type genState struct {
	rng   *sim.RNG
	cpus  int
	procs []int
	objs  []*genObj
	files []string

	nextObj, nextProc, nextFile int
	mappings                    int // capacity cost: private mappings + shared objects
}

// generate produces a deterministic trace of n valid operations for
// the seed.
func generate(seed uint64, n, cpus int) []Op {
	g := &genState{
		rng:      sim.NewRNG(seed),
		cpus:     cpus,
		procs:    []int{0},
		nextProc: 1,
	}
	ops := make([]Op, 0, n)
	for len(ops) < n {
		if op, ok := g.next(); ok {
			ops = append(ops, op)
		}
	}
	return ops
}

// next attempts to generate one operation; a false return means the
// picked kind was not currently possible (the caller just retries —
// OpReclaim is always possible, so generation always terminates).
func (g *genState) next() (Op, bool) {
	switch g.pickKind() {
	case OpMap:
		if len(g.objs) >= maxLiveObjects || g.mappings >= maxLiveMappings {
			return Op{}, false
		}
		o := &genObj{
			id:     g.nextObj,
			pages:  1 + uint64(g.rng.Intn(maxObjPages)),
			shared: g.rng.Intn(3) == 0,
			procs:  []int{g.pickProc()},
		}
		g.nextObj++
		g.objs = append(g.objs, o)
		g.mappings++
		return Op{Kind: OpMap, Proc: o.procs[0], Obj: o.id, Pages: o.pages, Shared: o.shared}, true

	case OpUnmap:
		o, ok := g.pickObj(nil)
		if !ok {
			return Op{}, false
		}
		proc := o.procs[g.rng.Intn(len(o.procs))]
		g.dropMapping(o, proc)
		return Op{Kind: OpUnmap, Proc: proc, Obj: o.id}, true

	case OpWrite:
		o, ok := g.pickObj(nil)
		if !ok {
			return Op{}, false
		}
		return Op{
			Kind: OpWrite,
			Proc: o.procs[g.rng.Intn(len(o.procs))],
			Obj:  o.id,
			Page: uint64(g.rng.Intn(int(o.pages))),
			Val:  1 + byte(g.rng.Intn(255)),
		}, true

	case OpRead:
		o, ok := g.pickObj(nil)
		if !ok {
			return Op{}, false
		}
		return Op{
			Kind: OpRead,
			Proc: o.procs[g.rng.Intn(len(o.procs))],
			Obj:  o.id,
			Page: uint64(g.rng.Intn(int(o.pages))),
		}, true

	case OpFork:
		if len(g.procs) >= maxProcs {
			return Op{}, false
		}
		parent := g.pickProc()
		cost := 0
		for _, o := range g.objs {
			if !o.shared && contains(o.procs, parent) {
				cost++
			}
		}
		if g.mappings+cost > maxLiveMappings {
			return Op{}, false
		}
		child := g.nextProc
		g.nextProc++
		g.procs = append(g.procs, child)
		g.mappings += cost
		for _, o := range g.objs {
			if contains(o.procs, parent) {
				o.procs = append(o.procs, child)
			}
		}
		return Op{Kind: OpFork, Proc: parent, Child: child}, true

	case OpShare:
		proc := g.pickProc()
		o, ok := g.pickObj(func(o *genObj) bool {
			return o.shared && !contains(o.procs, proc)
		})
		if !ok {
			return Op{}, false
		}
		o.procs = append(o.procs, proc)
		return Op{Kind: OpShare, Proc: proc, Obj: o.id}, true

	case OpReclaim:
		return Op{Kind: OpReclaim}, true

	case OpMigrate:
		return Op{Kind: OpMigrate, Proc: g.pickProc(), CPU: g.rng.Intn(g.cpus)}, true

	case OpFSCreate:
		if len(g.files) >= maxFiles {
			return Op{}, false
		}
		path := fmt.Sprintf("f%d", g.nextFile)
		g.nextFile++
		g.files = append(g.files, path)
		return Op{Kind: OpFSCreate, Proc: g.pickProc(), Path: path}, true

	case OpFSWrite:
		if len(g.files) == 0 {
			return Op{}, false
		}
		return Op{
			Kind: OpFSWrite,
			Proc: g.pickProc(),
			Path: g.files[g.rng.Intn(len(g.files))],
			Page: uint64(g.rng.Intn(maxFilePages)),
			Val:  1 + byte(g.rng.Intn(255)),
		}, true

	case OpFSDelete:
		if len(g.files) == 0 {
			return Op{}, false
		}
		i := g.rng.Intn(len(g.files))
		path := g.files[i]
		g.files = append(g.files[:i], g.files[i+1:]...)
		return Op{Kind: OpFSDelete, Proc: g.pickProc(), Path: path}, true
	}
	return Op{}, false
}

// pickKind draws an operation kind from a fixed weight table biased
// toward data accesses.
func (g *genState) pickKind() OpKind {
	type weighted struct {
		kind   OpKind
		weight int
	}
	table := [...]weighted{
		{OpWrite, 26}, {OpRead, 20}, {OpMap, 12}, {OpUnmap, 8},
		{OpShare, 6}, {OpMigrate, 6}, {OpFork, 4}, {OpReclaim, 3},
		{OpFSCreate, 4}, {OpFSWrite, 8}, {OpFSDelete, 3},
	}
	total := 0
	for _, w := range table {
		total += w.weight
	}
	n := g.rng.Intn(total)
	for _, w := range table {
		if n < w.weight {
			return w.kind
		}
		n -= w.weight
	}
	return OpReclaim
}

func (g *genState) pickProc() int {
	return g.procs[g.rng.Intn(len(g.procs))]
}

// pickObj draws a live object satisfying the filter (nil = any).
func (g *genState) pickObj(filter func(*genObj) bool) (*genObj, bool) {
	var cands []*genObj
	for _, o := range g.objs {
		if filter == nil || filter(o) {
			cands = append(cands, o)
		}
	}
	if len(cands) == 0 {
		return nil, false
	}
	return cands[g.rng.Intn(len(cands))], true
}

// dropMapping removes proc's mapping of o, deleting o when unmapped
// everywhere, and releases the capacity it charged.
func (g *genState) dropMapping(o *genObj, proc int) {
	for i, p := range o.procs {
		if p == proc {
			o.procs = append(o.procs[:i], o.procs[i+1:]...)
			break
		}
	}
	if !o.shared {
		g.mappings--
	}
	if len(o.procs) == 0 {
		if o.shared {
			g.mappings--
		}
		for i, c := range g.objs {
			if c == o {
				g.objs = append(g.objs[:i], g.objs[i+1:]...)
				break
			}
		}
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
