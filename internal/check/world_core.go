package check

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/sim"
	"repro/internal/tier"
)

// coreWorld drives file-only memory with PBM translations, in either
// SharedPT ("pbm") or Ranges ("ranges") mode. Objects are mapped
// files accessed through virtual addresses; there is no page-fault
// path, so fork copies private objects eagerly (allocate + copy the
// observable byte of each page), while shared objects are simply
// mapped again — every process maps a file at the same PBM address.
type coreWorld struct {
	cfg  string
	m    *sim.Machine
	sys  *core.System
	mode core.TranslationMode

	procs map[int]*core.Process
	maps  map[int]map[int]*core.Mapping // proc -> obj -> mapping

	sharedFiles map[int]*memfs.File
	objPages    map[int]uint64
	mapCount    map[int]int

	files map[string]*memfs.File
}

func newCoreWorld(cfg string, cpus int, seed uint64, tiered bool) (*coreWorld, error) {
	machine, params, memory, err := newWorldMachine(cpus, seed)
	if err != nil {
		return nil, err
	}
	opts := core.Options{}
	if tiered {
		// Split DRAM: the page-table pool keeps the bottom half, the
		// tier's fast region takes frames above it (the default pool
		// would cover all of DRAM and overlap the fast region).
		opts.PTPoolBase = 0
		opts.PTPoolFrames = dramFrames / 2
	}
	sys, err := core.NewSystem(machine.Clock(), params, memory, opts)
	if err != nil {
		return nil, err
	}
	if tiered {
		// SharedPT migrates 512-page chunk extents, so its fast region
		// must hold several; ranges extents are small, and a small cap
		// keeps the tier under genuine pressure.
		fastCap, fastFrames := uint64(tierFastCapPBM), uint64(tierFastRegionPBM)
		if cfg == "ranges" {
			fastCap, fastFrames = tierFastCapRanges, tierFastRegionRanges
		}
		eng := tier.New(params, memory, tier.Smart, fastCap)
		if err := sys.AttachTier(eng, mem.Frame(dramFrames/2), fastFrames); err != nil {
			return nil, err
		}
	}
	mode := core.SharedPT
	if cfg == "ranges" {
		mode = core.Ranges
	}
	w := &coreWorld{
		cfg:         cfg,
		m:           machine,
		sys:         sys,
		mode:        mode,
		procs:       make(map[int]*core.Process),
		maps:        make(map[int]map[int]*core.Mapping),
		sharedFiles: make(map[int]*memfs.File),
		objPages:    make(map[int]uint64),
		mapCount:    make(map[int]int),
		files:       make(map[string]*memfs.File),
	}
	p, err := sys.NewProcess(mode)
	if err != nil {
		return nil, err
	}
	w.procs[0] = p
	w.maps[0] = make(map[int]*core.Mapping)
	return w, nil
}

func (w *coreWorld) name() string { return w.cfg }

func (w *coreWorld) apply(op Op) error {
	switch op.Kind {
	case OpMap:
		p := w.procs[op.Proc]
		var m *core.Mapping
		var err error
		if op.Shared {
			f, ferr := w.sys.CreateContiguousFile(objPath(op.Obj), op.Pages,
				memfs.CreateOptions{Mode: rwProt}, w.mode == core.SharedPT)
			if ferr != nil {
				return ferr
			}
			w.sharedFiles[op.Obj] = f
			m, err = p.MapFile(f, rwProt)
		} else {
			m, err = p.AllocVolatile(op.Pages, rwProt)
		}
		if err != nil {
			return err
		}
		w.maps[op.Proc][op.Obj] = m
		w.objPages[op.Obj] = op.Pages
		w.mapCount[op.Obj] = 1
		return nil

	case OpUnmap:
		p := w.procs[op.Proc]
		if err := p.Unmap(w.maps[op.Proc][op.Obj]); err != nil {
			return err
		}
		delete(w.maps[op.Proc], op.Obj)
		w.mapCount[op.Obj]--
		if w.mapCount[op.Obj] > 0 {
			return nil
		}
		delete(w.mapCount, op.Obj)
		delete(w.objPages, op.Obj)
		if f, ok := w.sharedFiles[op.Obj]; ok {
			delete(w.sharedFiles, op.Obj)
			if err := f.Close(); err != nil {
				return err
			}
			return w.sys.FS().Unlink(objPath(op.Obj))
		}
		return nil

	case OpWrite:
		p := w.procs[op.Proc]
		va, err := w.maps[op.Proc][op.Obj].VAForOffset(op.Page * pageSize)
		if err != nil {
			return err
		}
		return p.WriteByteAt(va, op.Val)

	case OpFork:
		parent := w.procs[op.Proc]
		child, err := w.sys.NewProcess(w.mode)
		if err != nil {
			return err
		}
		w.procs[op.Child] = child
		w.maps[op.Child] = make(map[int]*core.Mapping)
		// Inherit objects in ID order so the simulated allocation layout
		// is a pure function of the trace.
		for _, obj := range sortedKeys(w.maps[op.Proc]) {
			if f, isShared := w.sharedFiles[obj]; isShared {
				m, err := child.MapFile(f, rwProt)
				if err != nil {
					return err
				}
				w.maps[op.Child][obj] = m
			} else {
				m, err := child.AllocVolatile(w.objPages[obj], rwProt)
				if err != nil {
					return err
				}
				if err := w.copyObject(parent, child, w.maps[op.Proc][obj], m, w.objPages[obj]); err != nil {
					return err
				}
				w.maps[op.Child][obj] = m
			}
			w.mapCount[obj]++
		}
		return nil

	case OpShare:
		p := w.procs[op.Proc]
		m, err := p.MapFile(w.sharedFiles[op.Obj], rwProt)
		if err != nil {
			return err
		}
		w.maps[op.Proc][op.Obj] = m
		w.mapCount[op.Obj]++
		return nil

	case OpReclaim:
		// File-only memory reclaims whole discardable files; the harness
		// holds references to everything it creates, so there is nothing
		// to discard — by design, not by accident, which the differential
		// content comparison confirms.
		return nil

	case OpMigrate:
		w.procs[op.Proc].RunOn(w.m.CPU(op.CPU))
		return nil

	case OpFSCreate:
		f, err := w.sys.FS().Create(fsPath(op.Path), memfs.CreateOptions{})
		if err != nil {
			return err
		}
		w.files[op.Path] = f
		return nil

	case OpFSWrite:
		_, err := w.files[op.Path].WriteAt([]byte{op.Val}, op.Page*pageSize)
		return err

	case OpFSDelete:
		if err := w.files[op.Path].Close(); err != nil {
			return err
		}
		delete(w.files, op.Path)
		return w.sys.FS().Unlink(fsPath(op.Path))
	}
	return fmt.Errorf("check: %s world cannot apply %s", w.name(), op.Kind)
}

// copyObject copies byte 0 of each page from src to dst through the
// processes' mapped views — the only bytes the harness observes.
func (w *coreWorld) copyObject(from, to *core.Process, src, dst *core.Mapping, pages uint64) error {
	for p := uint64(0); p < pages; p++ {
		sva, err := src.VAForOffset(p * pageSize)
		if err != nil {
			return err
		}
		b, err := from.ReadByteAt(sva)
		if err != nil {
			return err
		}
		dva, err := dst.VAForOffset(p * pageSize)
		if err != nil {
			return err
		}
		if err := to.WriteByteAt(dva, b); err != nil {
			return err
		}
	}
	return nil
}

func (w *coreWorld) readback(op Op) (byte, error) {
	return w.objectByte(op.Obj, op.Proc, op.Page)
}

func (w *coreWorld) objectByte(obj, proc int, page uint64) (byte, error) {
	p := w.procs[proc]
	va, err := w.maps[proc][obj].VAForOffset(page * pageSize)
	if err != nil {
		return 0, err
	}
	return p.ReadByteAt(va)
}

func (w *coreWorld) fileByte(path string, page uint64) (byte, error) {
	var b [1]byte
	if _, err := w.files[path].ReadAt(b[:], page*pageSize); err != nil {
		return 0, err
	}
	return b[0], nil
}

func (w *coreWorld) check() error { return w.m.CheckInvariants() }

// tierStep runs the periodic hotness scan; promotions pump inside the
// access paths of core processes.
func (w *coreWorld) tierStep(i int) {
	if w.sys.Tier() != nil && (i+1)%tierScanEvery == 0 {
		w.sys.TierScan(w.m.Current(), tierScanBatch)
	}
}

func (w *coreWorld) machine() *sim.Machine { return w.m }

func (w *coreWorld) memory() *mem.Memory { return w.sys.Memory() }

func (w *coreWorld) dirtyUnits(frames []mem.Frame) []ckpt.Unit {
	return w.sys.DirtyUnits(frames)
}
