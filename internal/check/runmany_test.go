package check

import "testing"

// TestRunManyDeterministicAcrossWorkers: the parallel-seed sweep must
// produce the same reports whatever the worker count — each seed's run
// is fully isolated, so host scheduling cannot leak into outcomes.
func TestRunManyDeterministicAcrossWorkers(t *testing.T) {
	opts := Options{Seed: 3, Ops: 250, CPUs: 2}
	serial, err := RunMany(opts, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMany(opts, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 4 || len(par) != 4 {
		t.Fatalf("report counts: %d, %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i].Opts.Seed != opts.Seed+uint64(i) {
			t.Fatalf("report %d ran seed %d", i, serial[i].Opts.Seed)
		}
		if serial[i].Failure != nil {
			t.Fatalf("seed %d failed: %v", serial[i].Opts.Seed, serial[i].Failure)
		}
		if got, want := par[i].Format(), serial[i].Format(); got != want {
			t.Errorf("seed %d diverged across worker counts:\n%s\nvs\n%s",
				serial[i].Opts.Seed, want, got)
		}
	}
}
