package check

import (
	"reflect"
	"strings"
	"testing"
)

// TestStressAllConfigs runs the differential harness across seeds and
// CPU counts. Any invariant violation or observable divergence fails.
func TestStressAllConfigs(t *testing.T) {
	ops := 12000
	if testing.Short() {
		ops = 2000
	}
	for _, tc := range []struct {
		seed uint64
		cpus int
	}{
		{seed: 1, cpus: 1},
		{seed: 2, cpus: 2},
		{seed: 3, cpus: 4},
	} {
		report, err := Run(Options{
			Seed:       tc.seed,
			Ops:        ops,
			CPUs:       tc.cpus,
			CheckEvery: 512,
			Shrink:     true,
		})
		if err != nil {
			t.Fatalf("seed %d cpus %d: %v", tc.seed, tc.cpus, err)
		}
		if report.Failure != nil {
			t.Fatalf("seed %d cpus %d:\n%s", tc.seed, tc.cpus, report.Format())
		}
	}
}

// TestTraceDeterminism: the same seed must generate the identical
// trace — the property every `-seed N` reproduction rests on.
func TestTraceDeterminism(t *testing.T) {
	a := generate(42, 5000, 4)
	b := generate(42, 5000, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("the same seed generated two different traces")
	}
}

// TestReplayDeterminism: replaying the same trace twice must reach the
// same verdict (the shrinker assumes this).
func TestReplayDeterminism(t *testing.T) {
	opts := Options{Seed: 6, Ops: 3000, CPUs: 2, CheckEvery: 256}.withDefaults()
	trace := generate(opts.Seed, opts.Ops, opts.CPUs)
	f1 := replay(trace, opts)
	f2 := replay(trace, opts)
	if (f1 == nil) != (f2 == nil) {
		t.Fatalf("replay verdict flipped: %v vs %v", f1, f2)
	}
}

// TestCorruptionCaught proves the checker end to end: deliberately
// corrupting one rmap entry in the baseline (via the test-only hook)
// must fail the run, and the shrinker must reduce the trace to a
// minimal reproducer of at most 20 operations.
func TestCorruptionCaught(t *testing.T) {
	report, err := Run(Options{
		Seed:    1,
		Ops:     500,
		CPUs:    2,
		Configs: []string{"baseline"},
		Shrink:  true,
		Corrupt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failure == nil {
		t.Fatal("deliberate rmap corruption went undetected")
	}
	if !strings.Contains(report.Failure.Reason, "rmap") {
		t.Errorf("failure does not identify the rmap: %v", report.Failure)
	}
	if report.Shrunk == nil {
		t.Fatal("failing trace was not shrunk")
	}
	if len(report.Shrunk) > 20 {
		t.Errorf("shrunk trace has %d ops, want <= 20:\n%s", len(report.Shrunk), report.Format())
	}
}

// TestShrinkerMinimizes: a failure seeded mid-trace must shrink to the
// few operations that matter. Corruption needs at least one mapped
// page with an rmap entry, i.e. a map plus a populating write.
func TestShrinkerMinimizes(t *testing.T) {
	report, err := Run(Options{
		Seed:    3,
		Ops:     300,
		CPUs:    1,
		Configs: []string{"baseline"},
		Shrink:  true,
		Corrupt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failure == nil {
		t.Fatal("deliberate rmap corruption went undetected")
	}
	if got := len(report.Shrunk); got > 4 {
		t.Errorf("shrunk trace has %d ops; a map + write (+ share/fork) suffices:\n%s", got, report.Format())
	}
}

// TestUnknownConfig: a bad configuration name is a setup error, not a
// test failure.
func TestUnknownConfig(t *testing.T) {
	if _, err := Run(Options{Configs: []string{"nonesuch"}}); err == nil {
		t.Fatal("unknown configuration accepted")
	}
}
