package check

// The model is the harness's oracle: a trivially-correct in-host
// implementation of the operation semantics. Every world's observable
// behaviour (read values, final contents) must match it exactly.
//
// All harness writes touch only byte 0 of a page, so the model stores
// one byte per page. Private objects keep one byte array per mapping
// process (fork copies, later writes diverge — exactly what COW must
// preserve); shared objects keep a single array under sharedKey.

// sharedKey indexes the single content copy of a shared object.
const sharedKey = -1

type modelObject struct {
	pages  uint64
	shared bool
	data   map[int][]byte // proc (or sharedKey) -> one byte per page
	procs  map[int]bool   // processes currently mapping the object
}

// bytes returns the content array the given process observes.
func (o *modelObject) bytes(proc int) []byte {
	if o.shared {
		return o.data[sharedKey]
	}
	return o.data[proc]
}

type model struct {
	ncpus   int
	objects map[int]*modelObject
	procs   map[int]bool
	files   map[string][]byte // one byte per page, len = highest written page + 1
}

func newModel(ncpus int) *model {
	return &model{
		ncpus:   ncpus,
		objects: make(map[int]*modelObject),
		procs:   map[int]bool{0: true}, // the initial process
		files:   make(map[string][]byte),
	}
}

// apply advances the model by one operation. It reports whether the
// operation is valid in the current state — invalid operations (which
// only arise after the shrinker removes a prerequisite) are skipped by
// every world too, keeping model and worlds in lockstep. For OpRead it
// also returns the expected value.
func (m *model) apply(op Op) (valid bool, read byte) {
	switch op.Kind {
	case OpMap:
		if !m.procs[op.Proc] || m.objects[op.Obj] != nil || op.Pages == 0 {
			return false, 0
		}
		o := &modelObject{
			pages:  op.Pages,
			shared: op.Shared,
			data:   make(map[int][]byte),
			procs:  map[int]bool{op.Proc: true},
		}
		if op.Shared {
			o.data[sharedKey] = make([]byte, op.Pages)
		} else {
			o.data[op.Proc] = make([]byte, op.Pages)
		}
		m.objects[op.Obj] = o
		return true, 0

	case OpUnmap:
		o := m.objects[op.Obj]
		if o == nil || !o.procs[op.Proc] {
			return false, 0
		}
		delete(o.procs, op.Proc)
		if !o.shared {
			delete(o.data, op.Proc)
		}
		if len(o.procs) == 0 {
			delete(m.objects, op.Obj)
		}
		return true, 0

	case OpWrite:
		o := m.objects[op.Obj]
		if o == nil || !o.procs[op.Proc] || op.Page >= o.pages {
			return false, 0
		}
		o.bytes(op.Proc)[op.Page] = op.Val
		return true, 0

	case OpRead:
		o := m.objects[op.Obj]
		if o == nil || !o.procs[op.Proc] || op.Page >= o.pages {
			return false, 0
		}
		return true, o.bytes(op.Proc)[op.Page]

	case OpFork:
		if !m.procs[op.Proc] || m.procs[op.Child] {
			return false, 0
		}
		m.procs[op.Child] = true
		for _, o := range m.objects {
			if !o.procs[op.Proc] {
				continue
			}
			o.procs[op.Child] = true
			if !o.shared {
				cp := make([]byte, o.pages)
				copy(cp, o.data[op.Proc])
				o.data[op.Child] = cp
			}
		}
		return true, 0

	case OpShare:
		o := m.objects[op.Obj]
		if o == nil || !o.shared || !m.procs[op.Proc] || o.procs[op.Proc] {
			return false, 0
		}
		o.procs[op.Proc] = true
		return true, 0

	case OpReclaim:
		return true, 0

	case OpMigrate:
		if !m.procs[op.Proc] || op.CPU < 0 || op.CPU >= m.ncpus {
			return false, 0
		}
		return true, 0

	case OpFSCreate:
		if _, ok := m.files[op.Path]; ok {
			return false, 0
		}
		m.files[op.Path] = []byte{}
		return true, 0

	case OpFSWrite:
		data, ok := m.files[op.Path]
		if !ok {
			return false, 0
		}
		for uint64(len(data)) <= op.Page {
			data = append(data, 0)
		}
		data[op.Page] = op.Val
		m.files[op.Path] = data
		return true, 0

	case OpFSDelete:
		if _, ok := m.files[op.Path]; !ok {
			return false, 0
		}
		delete(m.files, op.Path)
		return true, 0
	}
	return false, 0
}
