package check

import (
	"testing"

	"repro/internal/tier"
)

// TestTieredStressAllConfigs runs the differential harness with the
// tier migration engine attached to every world: byte contents, TLB
// freshness, and per-tier accounting must all survive frames moving
// between DRAM and NVM underneath the trace.
func TestTieredStressAllConfigs(t *testing.T) {
	ops := 8000
	if testing.Short() {
		ops = 2000
	}
	for _, tc := range []struct {
		seed uint64
		cpus int
	}{
		{seed: 1, cpus: 1},
		{seed: 2, cpus: 2},
		{seed: 3, cpus: 4},
	} {
		report, err := Run(Options{
			Seed:       tc.seed,
			Ops:        ops,
			CPUs:       tc.cpus,
			CheckEvery: 512,
			Shrink:     true,
			Tier:       true,
		})
		if err != nil {
			t.Fatalf("seed %d cpus %d: %v", tc.seed, tc.cpus, err)
		}
		if report.Failure != nil {
			t.Fatalf("seed %d cpus %d:\n%s", tc.seed, tc.cpus, report.Format())
		}
	}
}

// TestTieredRunActuallyMigrates guards against the tiered harness
// silently degenerating into a no-op: a tiered run must perform real
// promotions AND demotions, across page-granular (baseline/fom) and
// extent-granular (pbm/ranges) backends alike. Telemetry is
// process-global and cumulative, so the test asserts on deltas.
func TestTieredRunActuallyMigrates(t *testing.T) {
	for _, cfg := range AllConfigs {
		before := tier.TelemetrySnapshot()
		report, err := Run(Options{
			Seed:       5,
			Ops:        6000,
			CPUs:       2,
			Configs:    []string{cfg},
			CheckEvery: 1024,
			Tier:       true,
		})
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if report.Failure != nil {
			t.Fatalf("%s:\n%s", cfg, report.Format())
		}
		d := tier.TelemetrySnapshot().Sub(before)
		if d.Promotions == 0 || d.Demotions == 0 {
			t.Errorf("%s: tiered run migrated nothing (delta %+v) — fast capacity or trace too generous", cfg, d)
		}
		if d.PagesMoved == 0 || d.SampledRefs == 0 || d.Scans == 0 {
			t.Errorf("%s: tier machinery idle (delta %+v)", cfg, d)
		}
	}
}

// TestTieredExtentGranularity pins the shape claim of the paper
// experiment: range-translated worlds migrate whole extents (and pay
// for every page of them), while the page-granular worlds never move
// more than a page per migration.
func TestTieredExtentGranularity(t *testing.T) {
	delta := func(cfg string) tier.Telemetry {
		before := tier.TelemetrySnapshot()
		report, err := Run(Options{
			Seed: 5, Ops: 6000, CPUs: 2, Configs: []string{cfg},
			CheckEvery: 1024, Tier: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if report.Failure != nil {
			t.Fatalf("%s:\n%s", cfg, report.Format())
		}
		return tier.TelemetrySnapshot().Sub(before)
	}
	for _, cfg := range []string{"pbm", "ranges"} {
		if d := delta(cfg); d.ExtentMoves == 0 {
			t.Errorf("%s: no multi-page extent migrations (delta %+v)", cfg, d)
		}
	}
	for _, cfg := range []string{"baseline"} {
		if d := delta(cfg); d.ExtentMoves != 0 {
			t.Errorf("%s: page-granular backend reported %d extent moves", cfg, d.ExtentMoves)
		}
	}
	// The fom world's backend splits extents to migrate single pages.
	if d := delta("fom"); d.ExtentMoves != 0 || (d.PagesMoved > 0 && d.Splits == 0) {
		t.Errorf("fom: want page-granular moves with extent splits, got delta %+v", d)
	}
}

// TestTieredReplayDeterminism: migrations ride the simulated clocks,
// so a tiered replay must still reach the same verdict every time —
// and at every host-parallel CPU count the shrinker might use.
func TestTieredReplayDeterminism(t *testing.T) {
	opts := Options{Seed: 6, Ops: 3000, CPUs: 2, CheckEvery: 256, Tier: true}.withDefaults()
	trace := generate(opts.Seed, opts.Ops, opts.CPUs)
	f1 := replay(trace, opts)
	f2 := replay(trace, opts)
	if (f1 == nil) != (f2 == nil) {
		t.Fatalf("tiered replay verdict flipped: %v vs %v", f1, f2)
	}
}

// TestTierCrashRecoverComposes: hotness state is volatile, but the
// tier engine is deterministic, so restore-by-reexecution rebuilds it
// — a tiered crash-and-recover run must recover bit-identical, with
// migrations riding underneath the checkpoint and journal.
func TestTierCrashRecoverComposes(t *testing.T) {
	report, err := Run(Options{Seed: 7, Ops: 1500, CPUs: 2, Tier: true, CrashRecover: true})
	if err != nil {
		t.Fatalf("tier + crash-recover: %v", err)
	}
	if report.Failure != nil {
		t.Fatalf("tier + crash-recover:\n%s", report.Format())
	}
	if len(report.CrashReports) != len(AllConfigs) {
		t.Fatalf("crash stage covered %d configs, want %d", len(report.CrashReports), len(AllConfigs))
	}
}

// TestTierIncrementalCrashRecoverComposes runs the full stack at once:
// tier migrations, dirty tracking, base + deltas, journal compaction,
// crash, differential restore. Migrations dirty their destination
// frames, so the differential-image proof covers them too.
func TestTierIncrementalCrashRecoverComposes(t *testing.T) {
	report, err := Run(Options{Seed: 8, Ops: 1500, CPUs: 2, Tier: true, CrashRecover: true, Incremental: true})
	if err != nil {
		t.Fatalf("tier + incremental: %v", err)
	}
	if report.Failure != nil {
		t.Fatalf("tier + incremental:\n%s", report.Format())
	}
	if len(report.ChainReports) != len(AllConfigs) {
		t.Fatalf("incremental stage covered %d configs, want %d", len(report.ChainReports), len(AllConfigs))
	}
}
