package check

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/sim"
	"repro/internal/tier"
	"repro/internal/usermode"
)

// usermodeWorld drives the fifth configuration: user-mode
// software-managed physical memory. Every process owns batches of
// granted extents and runs a heap.Heap over them (so the user-level
// allocator itself sits on the differential fast path); addresses are
// identity-mapped and accesses pay software bounds checks instead of
// page walks. Shared objects are refcounted shared segments at a
// single identity address. Like fom, fork copies private objects
// eagerly and named files live in an extent-based memfs store; unlike
// every other world, OpReclaim does observable-free real work — it
// trims the heap's reserve arenas and revokes wholly-free grants back
// to the kernel pool.
type usermodeWorld struct {
	m   *sim.Machine
	phy *mem.Memory
	gt  *usermode.GrantTable
	fs  *memfs.FS // named files, Extent policy over NVM

	procs  map[int]*umProc
	priv   map[int]map[int]mem.VirtAddr // proc -> obj -> heap payload
	shared map[int]*usermode.SharedSeg
	mapped map[int]map[int]bool // obj -> procs mapping it
	pages  map[int]uint64

	files map[string]*memfs.File
}

// umProc pairs a usermode process with its private heap.
type umProc struct {
	p *usermode.Process
	h *heap.Heap
}

// usermodePoolBase keeps the grant pool clear of the DRAM bottom the
// tiered file store uses as its fast region (tierFastRegionFOM).
const usermodePoolBase = 1024

func newUsermodeWorld(cpus int, seed uint64, tiered bool) (*usermodeWorld, error) {
	machine, params, memory, err := newWorldMachine(cpus, seed)
	if err != nil {
		return nil, err
	}
	fs, err := memfs.New("usermode", memfs.Extent, machine.Clock(), params, memory,
		mem.Frame(dramFrames), nvmFrames)
	if err != nil {
		return nil, err
	}
	if tiered {
		// The grant extents have no translation layer to update, so the
		// engine migrates file extents (as in fom); grants stay put.
		eng := tier.New(params, memory, tier.Smart, tierFastCapFOM)
		if err := fs.AttachTier(eng, 0, tierFastRegionFOM); err != nil {
			return nil, err
		}
	}
	gt, err := usermode.NewGrantTable(machine.Clock(), params, memory, usermode.Config{
		PoolBase:   usermodePoolBase,
		PoolFrames: dramFrames - usermodePoolBase,
	})
	if err != nil {
		return nil, err
	}
	p0, err := gt.NewProcessOn(machine.BootCPU())
	if err != nil {
		return nil, err
	}
	return &usermodeWorld{
		m:      machine,
		phy:    memory,
		gt:     gt,
		fs:     fs,
		procs:  map[int]*umProc{0: {p: p0, h: heap.NewOn(p0)}},
		priv:   map[int]map[int]mem.VirtAddr{0: {}},
		shared: make(map[int]*usermode.SharedSeg),
		mapped: make(map[int]map[int]bool),
		pages:  make(map[int]uint64),
		files:  make(map[string]*memfs.File),
	}, nil
}

func (w *usermodeWorld) name() string { return "usermode" }

func (w *usermodeWorld) apply(op Op) error {
	switch op.Kind {
	case OpMap:
		u := w.procs[op.Proc]
		if op.Shared {
			seg, err := w.gt.NewShared(u.p, op.Pages)
			if err != nil {
				return err
			}
			w.shared[op.Obj] = seg
		} else {
			addr, err := u.h.Alloc(op.Pages * pageSize)
			if err != nil {
				return err
			}
			w.priv[op.Proc][op.Obj] = addr
		}
		w.mapped[op.Obj] = map[int]bool{op.Proc: true}
		w.pages[op.Obj] = op.Pages
		return nil

	case OpUnmap:
		u := w.procs[op.Proc]
		if addr, ok := w.priv[op.Proc][op.Obj]; ok {
			delete(w.priv[op.Proc], op.Obj)
			if err := u.h.Free(addr); err != nil {
				return err
			}
		} else if seg, ok := w.shared[op.Obj]; ok {
			if err := u.p.UnmapShared(seg); err != nil {
				return err
			}
		}
		delete(w.mapped[op.Obj], op.Proc)
		if len(w.mapped[op.Obj]) == 0 {
			delete(w.mapped, op.Obj)
			delete(w.pages, op.Obj)
			delete(w.shared, op.Obj)
		}
		return nil

	case OpWrite:
		u := w.procs[op.Proc]
		addr, err := w.objectAddr(op.Obj, op.Proc)
		if err != nil {
			return err
		}
		return u.p.WriteBuf(addr+mem.VirtAddr(op.Page*pageSize), []byte{op.Val})

	case OpFork:
		parent := w.procs[op.Proc]
		child, err := w.gt.NewProcessOn(parent.p.CPU())
		if err != nil {
			return err
		}
		u := &umProc{p: child, h: heap.NewOn(child)}
		w.procs[op.Child] = u
		w.priv[op.Child] = make(map[int]mem.VirtAddr)
		// Join the parent's shared segments, then copy private objects,
		// both in object-ID order for a deterministic layout.
		for _, obj := range sortedKeys(w.shared) {
			if w.mapped[obj][op.Proc] {
				if err := child.MapShared(w.shared[obj]); err != nil {
					return err
				}
				w.mapped[obj][op.Child] = true
			}
		}
		for _, obj := range sortedKeys(w.priv[op.Proc]) {
			src := w.priv[op.Proc][obj]
			dst, err := u.h.Alloc(w.pages[obj] * pageSize)
			if err != nil {
				return err
			}
			var b [1]byte
			for pg := uint64(0); pg < w.pages[obj]; pg++ {
				if err := parent.p.ReadBuf(src+mem.VirtAddr(pg*pageSize), b[:]); err != nil {
					return err
				}
				if err := child.WriteBuf(dst+mem.VirtAddr(pg*pageSize), b[:]); err != nil {
					return err
				}
			}
			w.priv[op.Child][obj] = dst
			w.mapped[obj][op.Child] = true
		}
		return nil

	case OpShare:
		if err := w.procs[op.Proc].p.MapShared(w.shared[op.Obj]); err != nil {
			return err
		}
		w.mapped[op.Obj][op.Proc] = true
		return nil

	case OpReclaim:
		// Observably a no-op, but real work here: release the heap's
		// cached empty arenas, then revoke every wholly-free grant.
		u := w.procs[op.Proc]
		if err := u.h.TrimReserves(); err != nil {
			return err
		}
		_, err := u.p.Reclaim()
		return err

	case OpMigrate:
		w.procs[op.Proc].p.RunOn(w.m.CPU(op.CPU))
		return nil

	case OpFSCreate:
		f, err := w.fs.Create(fsPath(op.Path), memfs.CreateOptions{})
		if err != nil {
			return err
		}
		w.files[op.Path] = f
		return nil

	case OpFSWrite:
		_, err := w.files[op.Path].WriteAt([]byte{op.Val}, op.Page*pageSize)
		return err

	case OpFSDelete:
		if err := w.files[op.Path].Close(); err != nil {
			return err
		}
		delete(w.files, op.Path)
		return w.fs.Unlink(fsPath(op.Path))
	}
	return fmt.Errorf("check: %s world cannot apply %s", w.name(), op.Kind)
}

// objectAddr resolves the identity address of the object's content as
// seen by proc.
func (w *usermodeWorld) objectAddr(obj, proc int) (mem.VirtAddr, error) {
	if seg, ok := w.shared[obj]; ok {
		return seg.Base(), nil
	}
	if addr, ok := w.priv[proc][obj]; ok {
		return addr, nil
	}
	return 0, fmt.Errorf("check: usermode world has no extent for obj %d proc %d", obj, proc)
}

func (w *usermodeWorld) readback(op Op) (byte, error) {
	return w.objectByte(op.Obj, op.Proc, op.Page)
}

func (w *usermodeWorld) objectByte(obj, proc int, page uint64) (byte, error) {
	addr, err := w.objectAddr(obj, proc)
	if err != nil {
		return 0, err
	}
	var b [1]byte
	if err := w.procs[proc].p.ReadBuf(addr+mem.VirtAddr(page*pageSize), b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

func (w *usermodeWorld) fileByte(path string, page uint64) (byte, error) {
	var b [1]byte
	if _, err := w.files[path].ReadAt(b[:], page*pageSize); err != nil {
		return 0, err
	}
	return b[0], nil
}

func (w *usermodeWorld) check() error { return w.m.CheckInvariants() }

// tierStep drives the file store's engine exactly as fom does; grant
// extents are immovable in this world (no relocation callback), so the
// trace migrates file extents underneath the named files.
func (w *usermodeWorld) tierStep(i int) {
	eng := w.fs.Tier()
	if eng == nil {
		return
	}
	eng.Pump(w.m.Current())
	if (i+1)%tierScanEvery == 0 {
		eng.Scan(w.m.Current(), tierScanBatch)
	}
}

func (w *usermodeWorld) machine() *sim.Machine { return w.m }

func (w *usermodeWorld) memory() *mem.Memory { return w.phy }

func (w *usermodeWorld) dirtyUnits(frames []mem.Frame) []ckpt.Unit {
	// Grants and shared segments claim the DRAM pool; the file store
	// claims its NVM extents.
	return append(w.gt.DirtyUnits(frames), w.fs.DirtyUnits(frames)...)
}
