package check

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/sim"
	"repro/internal/tier"
	"repro/internal/vm"
)

// vmWorld drives the baseline virtual-memory system: anonymous-private
// objects are demand-faulted anon mappings (fork is a real COW fork),
// shared objects are MAP_SHARED mappings of tmpfs files, and OpReclaim
// runs the page-out scanner against an unlimited swap device.
type vmWorld struct {
	m  *sim.Machine
	k  *vm.Kernel
	fs *memfs.FS // PerPage (tmpfs) over NVM: shared objects + named files

	procs map[int]*vm.AddressSpace
	vas   map[int]map[int]mem.VirtAddr // proc -> obj -> mapping base

	objFiles map[int]*memfs.File // shared objects' backing files
	objPages map[int]uint64
	mapCount map[int]int // live mappings per object (all procs)

	files map[string]*memfs.File
}

func newVMWorld(cpus int, seed uint64, tiered bool) (*vmWorld, error) {
	machine, params, memory, err := newWorldMachine(cpus, seed)
	if err != nil {
		return nil, err
	}
	cfg := vm.Config{
		PoolBase:   0,
		PoolFrames: dramFrames,
	}
	fsFrames := uint64(nvmFrames)
	if tiered {
		// The slow pool takes the top of NVM; tmpfs keeps the rest.
		fsFrames = nvmFrames - tierSlowFramesVM
		cfg.SlowPoolBase = mem.Frame(dramFrames + fsFrames)
		cfg.SlowPoolFrames = tierSlowFramesVM
	}
	k, err := vm.NewKernel(machine.Clock(), params, memory, cfg)
	if err != nil {
		return nil, err
	}
	if tiered {
		k.AttachTier(tier.New(params, memory, tier.Smart, tierFastCapVM))
	}
	fs, err := memfs.New("tmpfs", memfs.PerPage, machine.Clock(), params, memory,
		mem.Frame(dramFrames), fsFrames)
	if err != nil {
		return nil, err
	}
	w := &vmWorld{
		m:        machine,
		k:        k,
		fs:       fs,
		procs:    make(map[int]*vm.AddressSpace),
		vas:      make(map[int]map[int]mem.VirtAddr),
		objFiles: make(map[int]*memfs.File),
		objPages: make(map[int]uint64),
		mapCount: make(map[int]int),
		files:    make(map[string]*memfs.File),
	}
	as, err := k.NewAddressSpace()
	if err != nil {
		return nil, err
	}
	w.procs[0] = as
	w.vas[0] = make(map[int]mem.VirtAddr)
	return w, nil
}

func (w *vmWorld) name() string { return "baseline" }

func (w *vmWorld) apply(op Op) error {
	switch op.Kind {
	case OpMap:
		as := w.procs[op.Proc]
		req := vm.MmapRequest{Pages: op.Pages, Prot: rwProt, Anon: true}
		if op.Shared {
			f, err := w.fs.Create(objPath(op.Obj), memfs.CreateOptions{})
			if err != nil {
				return err
			}
			if err := f.Truncate(op.Pages * pageSize); err != nil {
				return err
			}
			w.objFiles[op.Obj] = f
			req = vm.MmapRequest{Pages: op.Pages, Prot: rwProt, File: f}
		}
		va, err := as.Mmap(req)
		if err != nil {
			return err
		}
		w.vas[op.Proc][op.Obj] = va
		w.objPages[op.Obj] = op.Pages
		w.mapCount[op.Obj] = 1
		return nil

	case OpUnmap:
		as := w.procs[op.Proc]
		if err := as.Munmap(w.vas[op.Proc][op.Obj], w.objPages[op.Obj]); err != nil {
			return err
		}
		delete(w.vas[op.Proc], op.Obj)
		return w.objectUnmapped(op.Obj)

	case OpWrite:
		as := w.procs[op.Proc]
		return as.WriteByteAt(w.vas[op.Proc][op.Obj]+mem.VirtAddr(op.Page*pageSize), op.Val)

	case OpFork:
		child, err := w.procs[op.Proc].Fork()
		if err != nil {
			return err
		}
		w.procs[op.Child] = child
		inherited := make(map[int]mem.VirtAddr, len(w.vas[op.Proc]))
		for obj, va := range w.vas[op.Proc] {
			inherited[obj] = va
			w.mapCount[obj]++
		}
		w.vas[op.Child] = inherited
		return nil

	case OpShare:
		as := w.procs[op.Proc]
		va, err := as.Mmap(vm.MmapRequest{
			Pages: w.objPages[op.Obj],
			Prot:  rwProt,
			File:  w.objFiles[op.Obj],
		})
		if err != nil {
			return err
		}
		w.vas[op.Proc][op.Obj] = va
		w.mapCount[op.Obj]++
		return nil

	case OpReclaim:
		_, err := w.k.ReclaimPages(w.m.Current(), reclaimWant)
		return err

	case OpMigrate:
		w.procs[op.Proc].RunOn(w.m.CPU(op.CPU))
		return nil

	case OpFSCreate:
		f, err := w.fs.Create(fsPath(op.Path), memfs.CreateOptions{})
		if err != nil {
			return err
		}
		w.files[op.Path] = f
		return nil

	case OpFSWrite:
		_, err := w.files[op.Path].WriteAt([]byte{op.Val}, op.Page*pageSize)
		return err

	case OpFSDelete:
		if err := w.files[op.Path].Close(); err != nil {
			return err
		}
		delete(w.files, op.Path)
		return w.fs.Unlink(fsPath(op.Path))
	}
	return fmt.Errorf("check: %s world cannot apply %s", w.name(), op.Kind)
}

// objectUnmapped drops the object's bookkeeping once its last mapping
// is gone; for shared objects that also releases the backing file.
func (w *vmWorld) objectUnmapped(obj int) error {
	w.mapCount[obj]--
	if w.mapCount[obj] > 0 {
		return nil
	}
	delete(w.mapCount, obj)
	delete(w.objPages, obj)
	if f, ok := w.objFiles[obj]; ok {
		delete(w.objFiles, obj)
		if err := f.Close(); err != nil {
			return err
		}
		return w.fs.Unlink(objPath(obj))
	}
	return nil
}

func (w *vmWorld) readback(op Op) (byte, error) {
	return w.objectByte(op.Obj, op.Proc, op.Page)
}

func (w *vmWorld) objectByte(obj, proc int, page uint64) (byte, error) {
	as := w.procs[proc]
	return as.ReadByteAt(w.vas[proc][obj] + mem.VirtAddr(page*pageSize))
}

func (w *vmWorld) fileByte(path string, page uint64) (byte, error) {
	var buf [1]byte
	if _, err := w.files[path].ReadAt(buf[:], page*pageSize); err != nil {
		return 0, err
	}
	return buf[0], nil
}

func (w *vmWorld) check() error { return w.m.CheckInvariants() }

// tierStep runs the periodic hotness scan; promotions pump inside the
// kernel's own access paths.
func (w *vmWorld) tierStep(i int) {
	if w.k.Tier() != nil && (i+1)%tierScanEvery == 0 {
		w.k.TierScan(w.m.Current(), tierScanBatch)
	}
}

func (w *vmWorld) machine() *sim.Machine { return w.m }

func (w *vmWorld) memory() *mem.Memory { return w.k.Memory }

func (w *vmWorld) dirtyUnits(frames []mem.Frame) []ckpt.Unit {
	// Anonymous pool pages are page-granular; tmpfs frames coalesce
	// into the store's (per-page policy) extents.
	return append(w.k.DirtyUnits(frames), w.fs.DirtyUnits(frames)...)
}

// reclaimWant is how many frames one OpReclaim asks the baseline
// page-out scanner to free.
const reclaimWant = 64
