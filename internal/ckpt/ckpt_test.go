package ckpt

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

func newTestMemory(t *testing.T) *mem.Memory {
	t.Helper()
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	m, err := mem.New(clock, &params, mem.Config{DRAMFrames: 256, NVMFrames: 256})
	if err != nil {
		t.Fatalf("mem.New: %v", err)
	}
	return m
}

func TestUnitsBySpan(t *testing.T) {
	spans := []Unit{{Start: 100, Count: 8}, {Start: 10, Count: 4}}
	frames := []mem.Frame{2, 11, 12, 50, 101, 107}
	got := UnitsBySpan(frames, spans)
	want := []Unit{
		{Start: 2, Count: 1},
		{Start: 10, Count: 4},
		{Start: 50, Count: 1},
		{Start: 100, Count: 8},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("UnitsBySpan = %v, want %v", got, want)
	}
	// No spans: page-granular.
	got = UnitsBySpan(frames, nil)
	if len(got) != len(frames) {
		t.Fatalf("page-granular UnitsBySpan yielded %d units, want %d", len(got), len(frames))
	}
	for i, u := range got {
		if u.Start != frames[i] || u.Count != 1 {
			t.Fatalf("unit %d = %v", i, u)
		}
	}
}

func TestUncovered(t *testing.T) {
	units := []Unit{{Start: 10, Count: 4}, {Start: 30, Count: 1}}
	frames := []mem.Frame{9, 10, 13, 14, 30, 31}
	got := Uncovered(frames, units)
	want := []mem.Frame{9, 14, 31}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Uncovered = %v, want %v", got, want)
	}
	if out := Uncovered([]mem.Frame{10, 11}, units); out != nil {
		t.Fatalf("fully covered frames reported %v", out)
	}
}

func TestCaptureAndAssemble(t *testing.T) {
	m := newTestMemory(t)
	m.WriteByteAt(mem.Frame(3).Addr(), 0x33)
	m.WriteByteAt(mem.Frame(7).Addr(), 0x77)
	base := CaptureImage(m)
	if len(base) != 2 || base[0].Frame != 3 || base[1].Frame != 7 {
		t.Fatalf("CaptureImage = %v", base)
	}

	// Epoch 1: rewrite 3, zero 7, create 9.
	m.SetDirtyTracking(true)
	m.WriteByteAt(mem.Frame(3).Addr(), 0x34)
	m.ZeroFrames(7, 1)
	m.WriteByteAt(mem.Frame(9).Addr(), 0x99)
	dirty := m.DirtyFrames()
	frames := CaptureFrames(m, dirty)
	if len(frames) != 3 {
		t.Fatalf("CaptureFrames = %v", frames)
	}
	if frames[1].Frame != 7 || frames[1].Data != nil {
		t.Fatalf("became-zero frame not recorded as nil: %v", frames[1])
	}
	d := &Delta{Epoch: 1, UpTo: 1, Frames: frames}

	img := AssembleImage(base, []*Delta{d})
	if err := ImageEqual(m, img); err != nil {
		t.Fatalf("ImageEqual: %v", err)
	}
	// A missed dirty frame must be caught.
	m.WriteByteAt(mem.Frame(20).Addr(), 0x20)
	if err := ImageEqual(m, img); err == nil {
		t.Fatal("ImageEqual missed a divergent frame")
	}
	// ...and so must stale image contents for an erased frame.
	img2 := AssembleImage(base, nil) // drops the delta: frame 7 stale, 3 stale
	m.ZeroFrames(20, 1)
	if err := ImageEqual(m, img2); err == nil {
		t.Fatal("ImageEqual accepted a stale image")
	}
}

func testChain(t *testing.T) *Chain {
	t.Helper()
	mach := &sim.MachineState{
		Current: 0,
		CPUs: []sim.CPUState{
			{ID: 0, Clock: 123, RNG: 7, Counters: []sim.CounterValue{{Name: "ops", Value: 9}}},
			{ID: 1, Clock: 456, RNG: 8},
		},
		Stats: []sim.StatsState{{Name: "mem", Counters: []sim.CounterValue{{Name: "zeroed_frames", Value: 3}}}},
	}
	data := make([]byte, mem.FrameSize)
	data[0] = 0xab
	chain := &Chain{
		Base: &snapshot.Snapshot{
			Meta:        snapshot.Meta{Config: "fom", CPUs: 2, Seed: 5, SnapAt: 10, TraceOps: 40, Tier: true},
			Machine:     mach,
			Trace:       []byte{1, 2, 3, 4},
			MemChecksum: 0xfeed,
		},
		BaseFrames: []FrameImage{{Frame: 3, Data: data}},
		Deltas: []*Delta{
			{
				Epoch:       1,
				UpTo:        20,
				Units:       []Unit{{Start: 3, Count: 2}, {Start: 9, Count: 1}},
				Frames:      []FrameImage{{Frame: 3, Data: data}, {Frame: 4, Data: nil}},
				Machine:     mach,
				MemChecksum: 0xbeef,
			},
			{
				Epoch:       2,
				UpTo:        30,
				Units:       []Unit{{Start: 9, Count: 1}},
				Frames:      []FrameImage{{Frame: 9, Data: data}},
				Machine:     mach,
				MemChecksum: 0xcafe,
			},
		},
		Journal: &snapshot.Journal{},
	}
	chain.Journal.Append([]byte{0x01, 0x02})
	chain.Journal.Append([]byte{0x03})
	return chain
}

func TestChainRoundTrip(t *testing.T) {
	chain := testChain(t)
	var buf bytes.Buffer
	if err := chain.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(got, chain) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, chain)
	}
	if got.LastUpTo() != 30 {
		t.Fatalf("LastUpTo = %d, want 30", got.LastUpTo())
	}
	if (&Chain{Base: chain.Base}).LastUpTo() != 10 {
		t.Fatal("LastUpTo without deltas should fall back to SnapAt")
	}
}

func TestChainCompactedJournalRoundTrip(t *testing.T) {
	chain := testChain(t)
	if err := chain.Journal.Compact(1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := chain.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Journal.Watermark() != 1 || got.Journal.Len() != 1 {
		t.Fatalf("journal wm=%d len=%d, want 1/1", got.Journal.Watermark(), got.Journal.Len())
	}
}

func TestChainNotChain(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("O1MSNAP\x00garbage....."))); err != ErrNotChain {
		t.Fatalf("snapshot magic: err = %v, want ErrNotChain", err)
	}
	if _, err := Load(bytes.NewReader(nil)); err != ErrNotChain {
		t.Fatalf("empty input: err = %v, want ErrNotChain", err)
	}
}

// TestChainCorruptionDetected flips every byte of an encoded chain in
// turn: Load must fail on each mutant, never silently accept damage.
func TestChainCorruptionDetected(t *testing.T) {
	chain := testChain(t)
	var buf bytes.Buffer
	if err := chain.Save(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x01
		if _, err := Load(bytes.NewReader(mut)); err == nil {
			t.Fatalf("byte %d: corruption loaded without error", i)
		}
	}
}

// TestChainTruncationDetected cuts the encoded chain at every byte:
// Load must fail on every proper prefix (a chain file is atomic; torn
// tails belong to the journal stream, not the chain sections).
func TestChainTruncationDetected(t *testing.T) {
	chain := testChain(t)
	var buf bytes.Buffer
	if err := chain.Save(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Load(bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("cut %d: truncated chain loaded without error", cut)
		}
	}
}
