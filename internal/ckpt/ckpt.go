// Package ckpt implements incremental (differential) checkpoints on
// top of the full-machine snapshots of internal/snapshot.
//
// A chain is a base snapshot plus a sequence of deltas. The base
// carries the restore-by-reexecution recipe (config, seed, trace,
// SnapAt) and a full image of physical memory at capture time; each
// delta carries only the frames dirtied since the previous capture —
// obtained from mem's dirty tracking — plus the machine state and
// memory digest that prove a rebuild landed exactly where the delta
// was taken. Restoring replays the trace prefix up to the last delta
// (deterministic reconstruction), then the journal suffix past the
// compaction watermark; the differential image (base overlaid with
// every delta) must be bit-identical to the rebuilt memory, which is
// what makes "the dirty set is everything that changed" a checked
// property rather than an assumption.
//
// The package also defines Unit, the granularity at which a subsystem
// checkpoints dirty memory: extent-based configurations (FOM, PBM,
// ranges, usermode grants) coalesce dirty frames into the extents that
// own them — O(dirty extents) metadata — while the page-table baseline
// pays one unit per dirty page, the contrast the paper predicts.
package ckpt

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Unit is a contiguous frame run that one checkpoint metadata
// operation covers: a file extent, a grant, or a single page for
// page-granular subsystems.
type Unit struct {
	Start mem.Frame
	Count uint64
}

// End returns the first frame past the unit.
func (u Unit) End() mem.Frame { return u.Start + mem.Frame(u.Count) }

// FrameImage is the captured contents of one frame. Data is nil when
// the frame reads as all-zero — deltas must record "became zero"
// explicitly, since overlaying them on a base image would otherwise
// resurrect stale bytes.
type FrameImage struct {
	Frame mem.Frame
	Data  []byte
}

// Delta is one incremental checkpoint: the dirty frames since the
// previous capture, the units that cover them, and the proof state
// (machine capture + memory digest) pinning the rebuild target.
type Delta struct {
	// Epoch is the 1-based position of the delta in its chain.
	Epoch int
	// UpTo is the number of trace operations executed at capture.
	UpTo int
	// Units cover every dirty frame at subsystem granularity.
	Units []Unit
	// Frames holds the contents of every dirty frame, ascending.
	Frames []FrameImage
	// Machine is the sim state capture at UpTo.
	Machine *sim.MachineState
	// MemChecksum is mem.(*Memory).ContentChecksum() at UpTo.
	MemChecksum uint64
}

// Chain is a base snapshot plus its deltas and the journal of records
// appended after the last delta (compacted up to the watermark).
type Chain struct {
	Base *snapshot.Snapshot
	// BaseFrames is the full memory image at Base.Meta.SnapAt: every
	// non-zero frame (absent frames read as zero).
	BaseFrames []FrameImage
	Deltas     []*Delta
	Journal    *snapshot.Journal
}

// LastUpTo returns the trace position of the most recent capture: the
// last delta's UpTo, or the base's SnapAt with no deltas.
func (c *Chain) LastUpTo() int {
	if n := len(c.Deltas); n > 0 {
		return c.Deltas[n-1].UpTo
	}
	return c.Base.Meta.SnapAt
}

// CaptureImage captures the full observable memory image: every
// materialized frame with non-zero contents. Tooling only — advances
// no simulated clock.
func CaptureImage(m *mem.Memory) []FrameImage {
	var out []FrameImage
	buf := make([]byte, mem.FrameSize)
	for _, f := range m.MaterializedFrameList() {
		m.ReadAt(f.Addr(), buf)
		if allZero(buf) {
			continue
		}
		out = append(out, FrameImage{Frame: f, Data: append([]byte(nil), buf...)})
	}
	return out
}

// CaptureFrames captures the contents of exactly the given frames
// (typically the dirty set), preserving became-zero entries as nil
// Data. Frames must be sorted ascending, as mem.DirtyFrames returns.
func CaptureFrames(m *mem.Memory, frames []mem.Frame) []FrameImage {
	out := make([]FrameImage, 0, len(frames))
	buf := make([]byte, mem.FrameSize)
	for _, f := range frames {
		m.ReadAt(f.Addr(), buf)
		img := FrameImage{Frame: f}
		if !allZero(buf) {
			img.Data = append([]byte(nil), buf...)
		}
		out = append(out, img)
	}
	return out
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// AssembleImage overlays the deltas onto the base image, yielding the
// differential reconstruction of memory at the last delta: frame →
// contents, with all-zero frames absent.
func AssembleImage(base []FrameImage, deltas []*Delta) map[mem.Frame][]byte {
	img := make(map[mem.Frame][]byte, len(base))
	for _, fi := range base {
		if fi.Data != nil {
			img[fi.Frame] = fi.Data
		}
	}
	for _, d := range deltas {
		for _, fi := range d.Frames {
			if fi.Data == nil {
				delete(img, fi.Frame)
			} else {
				img[fi.Frame] = fi.Data
			}
		}
	}
	return img
}

// ImageEqual proves that memory's observable contents are bit-identical
// to the assembled image. This is the differential-restore soundness
// check: a dirty frame the tracking missed shows up here as a frame
// whose memory bytes differ from the (stale) image.
func ImageEqual(m *mem.Memory, img map[mem.Frame][]byte) error {
	seen := make(map[mem.Frame]bool, len(img))
	buf := make([]byte, mem.FrameSize)
	for _, f := range m.MaterializedFrameList() {
		m.ReadAt(f.Addr(), buf)
		want := img[f]
		seen[f] = true
		if want == nil {
			if !allZero(buf) {
				return fmt.Errorf("ckpt: frame %d non-zero in memory, zero in differential image", f)
			}
			continue
		}
		if string(buf) != string(want) {
			return fmt.Errorf("ckpt: frame %d contents diverge from differential image", f)
		}
	}
	for f, want := range img {
		if seen[f] {
			continue
		}
		// Frame absent from memory reads as zero; the image claims bytes.
		if !allZero(want) {
			return fmt.Errorf("ckpt: frame %d non-zero in differential image, zero in memory", f)
		}
	}
	return nil
}

// UnitsBySpan maps a sorted dirty-frame set onto covering spans: each
// span (extent, grant, …) containing at least one dirty frame becomes
// one unit; dirty frames outside every span become single-page units.
// Spans must be non-overlapping; the result is ordered by first dirty
// frame and deduplicated. With no spans the result is page-granular —
// the baseline's cost model.
func UnitsBySpan(frames []mem.Frame, spans []Unit) []Unit {
	sorted := append([]Unit(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	var out []Unit
	lastSpan := -1
	for _, f := range frames {
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i].End() > f })
		if i < len(sorted) && sorted[i].Start <= f {
			if i != lastSpan {
				out = append(out, sorted[i])
				lastSpan = i
			}
			continue
		}
		out = append(out, Unit{Start: f, Count: 1})
		lastSpan = -1
	}
	return out
}

// Uncovered returns the dirty frames not covered by any unit — a
// subsystem that fails to claim its dirty memory is a checkpointing
// bug, and the harness treats a non-empty result as a failure.
func Uncovered(frames []mem.Frame, units []Unit) []mem.Frame {
	sorted := append([]Unit(nil), units...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	var out []mem.Frame
	for _, f := range frames {
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i].End() > f })
		if i < len(sorted) && sorted[i].Start <= f {
			continue
		}
		out = append(out, f)
	}
	return out
}
