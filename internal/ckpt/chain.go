package ckpt

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/mem"
	"repro/internal/snapshot"
)

// On-media chain format: magic, version, then CRC-protected sections
// in the snapshot framing (snapshot.WriteSection). BASE holds a full
// snapshot file verbatim; BIMG the base memory image; one DELT per
// delta in order; JRNL the (possibly compacted) journal stream.
const (
	// Magic identifies a chain file; the first 8 bytes distinguish it
	// from a plain snapshot, so tools can sniff the format.
	Magic        = "O1MCKPT\x00"
	chainVersion = 1

	secBase  = "BASE"
	secBImg  = "BIMG"
	secDelta = "DELT"
	secJrnl  = "JRNL"
)

// ErrNotChain reports that the input does not start with the chain
// magic (it may be a plain snapshot).
var ErrNotChain = errors.New("ckpt: not a checkpoint chain file")

// Save writes the chain in the versioned binary format.
func (c *Chain) Save(w io.Writer) error {
	if _, err := io.WriteString(w, Magic); err != nil {
		return err
	}
	var v [4]byte
	putU32(v[:], chainVersion)
	if _, err := w.Write(v[:]); err != nil {
		return err
	}
	var base bytes.Buffer
	if err := c.Base.Save(&base); err != nil {
		return err
	}
	if err := snapshot.WriteSection(w, secBase, base.Bytes()); err != nil {
		return err
	}
	if err := snapshot.WriteSection(w, secBImg, encodeFrames(c.BaseFrames)); err != nil {
		return err
	}
	for _, d := range c.Deltas {
		if err := snapshot.WriteSection(w, secDelta, encodeDelta(d)); err != nil {
			return err
		}
	}
	jnl := c.Journal
	if jnl == nil {
		jnl = &snapshot.Journal{}
	}
	return snapshot.WriteSection(w, secJrnl, jnl.Encode())
}

// Load reads a chain written by Save, verifying magic, version, and
// every section checksum. It returns ErrNotChain if the magic is
// absent, so callers can fall back to snapshot.Load.
func Load(r io.Reader) (*Chain, error) {
	var hdr [len(Magic) + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, ErrNotChain
	}
	if string(hdr[:len(Magic)]) != Magic {
		return nil, ErrNotChain
	}
	if v := getU32(hdr[len(Magic):]); v != chainVersion {
		return nil, fmt.Errorf("ckpt: chain format version %d, this build reads %d", v, chainVersion)
	}
	c := &Chain{}
	seen := make(map[string]bool)
	lastUpTo := -1
	for {
		tag, payload, err := snapshot.ReadSection(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if tag != secDelta && seen[tag] {
			return nil, &snapshot.ErrCorrupt{What: "duplicate chain section " + tag}
		}
		seen[tag] = true
		switch tag {
		case secBase:
			snap, err := snapshot.Load(bytes.NewReader(payload))
			if err != nil {
				return nil, err
			}
			c.Base = snap
			lastUpTo = snap.Meta.SnapAt
		case secBImg:
			frames, err := decodeFrames(payload)
			if err != nil {
				return nil, err
			}
			c.BaseFrames = frames
		case secDelta:
			d, err := decodeDelta(payload)
			if err != nil {
				return nil, err
			}
			if d.Epoch != len(c.Deltas)+1 || d.UpTo < lastUpTo {
				return nil, &snapshot.ErrCorrupt{What: "delta chain out of order"}
			}
			lastUpTo = d.UpTo
			c.Deltas = append(c.Deltas, d)
		case secJrnl:
			jnl, torn := snapshot.DecodeJournal(payload)
			if torn != 0 {
				// The chain file is CRC-framed; a torn journal *inside* an
				// intact section means the writer persisted garbage.
				return nil, &snapshot.ErrCorrupt{What: "journal section with torn tail"}
			}
			c.Journal = jnl
		default:
			return nil, &snapshot.ErrCorrupt{What: "unknown chain section " + tag}
		}
	}
	for _, tag := range []string{secBase, secBImg, secJrnl} {
		if !seen[tag] {
			return nil, &snapshot.ErrCorrupt{What: "missing chain section " + tag}
		}
	}
	return c, nil
}

func encodeFrames(frames []FrameImage) []byte {
	var b []byte
	b = appendU32(b, uint32(len(frames)))
	for _, fi := range frames {
		b = appendU64(b, uint64(fi.Frame))
		if fi.Data == nil {
			b = append(b, 0)
			continue
		}
		b = append(b, 1)
		b = append(b, fi.Data...)
	}
	return b
}

func decodeFrames(b []byte) ([]FrameImage, error) {
	d := reader{b: b}
	n := d.u32()
	out := make([]FrameImage, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		fi := FrameImage{Frame: mem.Frame(d.u64())}
		if d.u8() != 0 {
			data := d.take(mem.FrameSize)
			fi.Data = append([]byte(nil), data...)
		}
		out = append(out, fi)
	}
	if !d.done() {
		return nil, &snapshot.ErrCorrupt{What: "frame image section"}
	}
	return out, nil
}

func encodeDelta(d *Delta) []byte {
	var b []byte
	b = appendU32(b, uint32(d.Epoch))
	b = appendU64(b, uint64(d.UpTo))
	b = appendU32(b, uint32(len(d.Units)))
	for _, u := range d.Units {
		b = appendU64(b, uint64(u.Start))
		b = appendU64(b, u.Count)
	}
	fr := encodeFrames(d.Frames)
	b = appendU32(b, uint32(len(fr)))
	b = append(b, fr...)
	ms := snapshot.EncodeMachineState(d.Machine)
	b = appendU32(b, uint32(len(ms)))
	b = append(b, ms...)
	b = appendU64(b, d.MemChecksum)
	return b
}

func decodeDelta(b []byte) (*Delta, error) {
	r := reader{b: b}
	d := &Delta{
		Epoch: int(r.u32()),
		UpTo:  int(r.u64()),
	}
	nu := r.u32()
	for i := uint32(0); i < nu && r.err == nil; i++ {
		d.Units = append(d.Units, Unit{Start: mem.Frame(r.u64()), Count: r.u64()})
	}
	frames, err := decodeFrames(r.take(int(r.u32())))
	if err != nil || r.err != nil {
		return nil, &snapshot.ErrCorrupt{What: "delta section"}
	}
	d.Frames = frames
	ms, err := snapshot.DecodeMachineState(r.take(int(r.u32())))
	if err != nil || r.err != nil {
		return nil, &snapshot.ErrCorrupt{What: "delta machine state"}
	}
	d.Machine = ms
	d.MemChecksum = r.u64()
	if !r.done() {
		return nil, &snapshot.ErrCorrupt{What: "delta section"}
	}
	return d, nil
}

// reader is a minimal bounds-checked little-endian decoder (the
// snapshot package's is unexported).
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = &snapshot.ErrCorrupt{What: "truncated chain field"}
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return getU32(b)
}

func (r *reader) u64() uint64 {
	lo := r.u32()
	hi := r.u32()
	return uint64(lo) | uint64(hi)<<32
}

func (r *reader) done() bool { return r.err == nil && r.off == len(r.b) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return appendU32(appendU32(b, uint32(v)), uint32(v>>32))
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
