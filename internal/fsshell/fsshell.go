// Package fsshell implements the command interpreter behind cmd/o1fs:
// a small scriptable shell over the simulated memory file systems,
// with crash/remount, quotas and pressure-discard built in. It is a
// separate package so the command set is unit-testable.
package fsshell

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/sim"
)

// New builds a shell over a fresh machine with one file system of the
// given policy and size; output goes to out.
func New(policy memfs.AllocPolicy, frames uint64, out io.Writer) (*Shell, error) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: 4096, NVMFrames: frames})
	if err != nil {
		return nil, err
	}
	nvm, _ := memory.Region(mem.NVM)
	fs, err := memfs.New("o1fs", policy, clock, &params, memory, nvm.Start, nvm.Count)
	if err != nil {
		return nil, err
	}
	return &Shell{clock: clock, memory: memory, fs: fs, out: out}, nil
}

// Shell interprets o1fs commands against one simulated machine.
type Shell struct {
	clock  *sim.Clock
	memory *mem.Memory
	fs     *memfs.FS
	out    io.Writer
}

func (sh *Shell) ExecLine(line string) {
	if line == "" || strings.HasPrefix(line, "#") {
		return
	}
	fields := strings.Fields(line)
	if err := sh.exec(fields[0], fields[1:]); err != nil {
		fmt.Fprintf(sh.out, "error: %v\n", err)
	}
}

func (sh *Shell) exec(cmd string, args []string) error {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("%s needs %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		return sh.fs.Mkdir(args[0])
	case "create":
		if err := need(1); err != nil {
			return err
		}
		opts := memfs.CreateOptions{}
		for _, a := range args[1:] {
			switch a {
			case "persistent":
				opts.Durability = memfs.Persistent
			case "volatile":
				opts.Durability = memfs.Volatile
			case "discardable":
				opts.Discardable = true
			default:
				return fmt.Errorf("unknown create option %q", a)
			}
		}
		f, err := sh.fs.Create(args[0], opts)
		if err != nil {
			return err
		}
		return f.Close()
	case "write", "append":
		if err := need(2); err != nil {
			return err
		}
		f, err := sh.fs.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		off := uint64(0)
		if cmd == "append" {
			off = f.Inode().Size()
		}
		text := strings.Join(args[1:], " ")
		n, err := f.WriteAt([]byte(text), off)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "wrote %d bytes at %d\n", n, off)
		return nil
	case "read":
		if err := need(2); err != nil {
			return err
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		f, err := sh.fs.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		buf := make([]byte, n)
		got, err := f.ReadAt(buf, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "%q\n", buf[:got])
		return nil
	case "truncate":
		if err := need(2); err != nil {
			return err
		}
		pages, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return err
		}
		f, err := sh.fs.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		return f.Truncate(pages * mem.FrameSize)
	case "ls":
		path := "/"
		if len(args) > 0 {
			path = args[0]
		}
		names, err := sh.fs.ReadDir(path)
		if err != nil {
			return err
		}
		for _, name := range names {
			ino, err := sh.fs.Stat(path + "/" + name)
			if err != nil {
				ino, err = sh.fs.Stat(strings.TrimSuffix(path, "/") + "/" + name)
				if err != nil {
					continue
				}
			}
			kind := "f"
			if ino.IsDir() {
				kind = "d"
			}
			fmt.Fprintf(sh.out, "%s %10d  %s (%s)\n", kind, ino.Size(), name, ino.Durability())
		}
		return nil
	case "stat":
		if err := need(1); err != nil {
			return err
		}
		ino, err := sh.fs.Stat(args[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "ino=%d dir=%v size=%d pages=%d allocated=%d extents=%d mode=%v %s discardable=%v\n",
			ino.Ino(), ino.IsDir(), ino.Size(), ino.Pages(), ino.AllocatedPages(),
			len(ino.Extents()), ino.Mode(), ino.Durability(), ino.Discardable())
		return nil
	case "rm":
		if err := need(1); err != nil {
			return err
		}
		return sh.fs.Unlink(args[0])
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		return sh.fs.Rename(args[0], args[1])
	case "ln":
		if err := need(2); err != nil {
			return err
		}
		return sh.fs.Link(args[0], args[1])
	case "quota":
		if err := need(2); err != nil {
			return err
		}
		frames, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return err
		}
		return sh.fs.SetQuota(args[0], frames)
	case "usage":
		if err := need(1); err != nil {
			return err
		}
		used, quota, err := sh.fs.QuotaUsage(args[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "%d/%d frames\n", used, quota)
		return nil
	case "discard":
		if err := need(1); err != nil {
			return err
		}
		want, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			return err
		}
		freed, err := sh.fs.DiscardForPressure(want)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "discarded %d frames\n", freed)
		return nil
	case "crash":
		sh.memory.Crash()
		fmt.Fprintln(sh.out, "power failure")
		return nil
	case "remount":
		dropped, err := sh.fs.Remount()
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "remounted, %d volatile file(s) dropped\n", dropped)
		return nil
	case "check":
		if err := sh.fs.CheckInvariants(); err != nil {
			return err
		}
		fmt.Fprintln(sh.out, "fsck: clean")
		return nil
	case "df":
		fmt.Fprintf(sh.out, "%d free / %d total frames\n", sh.fs.FreeFrames(), sh.fs.TotalFrames())
		return nil
	case "time":
		fmt.Fprintf(sh.out, "virtual time: %v\n", sh.clock.Now())
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
