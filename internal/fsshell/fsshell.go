// Package fsshell implements the command interpreter behind cmd/o1fs:
// a small scriptable shell over the simulated memory file systems,
// with crash/remount, quotas and pressure-discard built in. It is a
// separate package so the command set is unit-testable.
package fsshell

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/sim"
)

// New builds a shell over a fresh machine with one file system of the
// given policy and size; output goes to out.
func New(policy memfs.AllocPolicy, frames uint64, out io.Writer) (*Shell, error) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: 4096, NVMFrames: frames})
	if err != nil {
		return nil, err
	}
	nvm, _ := memory.Region(mem.NVM)
	fs, err := memfs.New("o1fs", policy, clock, &params, memory, nvm.Start, nvm.Count)
	if err != nil {
		return nil, err
	}
	return &Shell{clock: clock, memory: memory, fs: fs, out: out,
		handles: make(map[string]*memfs.File)}, nil
}

// Shell interprets o1fs commands against one simulated machine.
type Shell struct {
	clock  *sim.Clock
	memory *mem.Memory
	fs     *memfs.FS
	out    io.Writer

	// handles maps hN tokens from `open` to live file handles, each
	// carrying its own position for seek/read/write. Remount
	// invalidates them all (their inode references die with the old
	// metadata generation).
	handles map[string]*memfs.File
	nextH   int
}

// handle resolves an hN token; ok is false if tok is not handle-shaped
// (callers then treat it as a path).
func (sh *Shell) handle(tok string) (*memfs.File, bool, error) {
	if len(tok) < 2 || tok[0] != 'h' {
		return nil, false, nil
	}
	if _, err := strconv.Atoi(tok[1:]); err != nil {
		return nil, false, nil
	}
	f, ok := sh.handles[tok]
	if !ok {
		return nil, true, fmt.Errorf("no open handle %q", tok)
	}
	return f, true, nil
}

// closeHandles force-drops every open handle (remount).
func (sh *Shell) closeHandles() int {
	n := 0
	for tok, f := range sh.handles {
		f.Close()
		delete(sh.handles, tok)
		n++
	}
	return n
}

func (sh *Shell) ExecLine(line string) {
	if line == "" || strings.HasPrefix(line, "#") {
		return
	}
	fields := strings.Fields(line)
	if err := sh.exec(fields[0], fields[1:]); err != nil {
		fmt.Fprintf(sh.out, "error: %v\n", err)
	}
}

func (sh *Shell) exec(cmd string, args []string) error {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("%s needs %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		return sh.fs.Mkdir(args[0])
	case "create":
		if err := need(1); err != nil {
			return err
		}
		opts := memfs.CreateOptions{}
		for _, a := range args[1:] {
			switch a {
			case "persistent":
				opts.Durability = memfs.Persistent
			case "volatile":
				opts.Durability = memfs.Volatile
			case "discardable":
				opts.Discardable = true
			default:
				return fmt.Errorf("unknown create option %q", a)
			}
		}
		f, err := sh.fs.Create(args[0], opts)
		if err != nil {
			return err
		}
		return f.Close()
	case "open":
		if err := need(1); err != nil {
			return err
		}
		var flags memfs.OpenFlag
		opts := memfs.CreateOptions{}
		for _, a := range args[1:] {
			switch a {
			case "create":
				flags |= memfs.OCreate
			case "excl":
				flags |= memfs.OExcl
			case "trunc":
				flags |= memfs.OTrunc
			case "append":
				flags |= memfs.OAppend
			case "persistent":
				opts.Durability = memfs.Persistent
			case "volatile":
				opts.Durability = memfs.Volatile
			case "discardable":
				opts.Discardable = true
			default:
				return fmt.Errorf("unknown open option %q", a)
			}
		}
		f, err := sh.fs.OpenFile(args[0], flags, opts)
		if err != nil {
			return err
		}
		tok := fmt.Sprintf("h%d", sh.nextH)
		sh.nextH++
		sh.handles[tok] = f
		fmt.Fprintf(sh.out, "%s = %s\n", tok, args[0])
		return nil
	case "close":
		if err := need(1); err != nil {
			return err
		}
		f, isH, err := sh.handle(args[0])
		if err != nil {
			return err
		}
		if !isH {
			return fmt.Errorf("close takes a handle (h0, h1, ...), got %q", args[0])
		}
		delete(sh.handles, args[0])
		return f.Close()
	case "seek":
		if err := need(2); err != nil {
			return err
		}
		f, isH, err := sh.handle(args[0])
		if err != nil {
			return err
		}
		if !isH {
			return fmt.Errorf("seek takes a handle (h0, h1, ...), got %q", args[0])
		}
		off, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return err
		}
		whence := io.SeekStart
		if len(args) > 2 {
			switch args[2] {
			case "set":
				whence = io.SeekStart
			case "cur":
				whence = io.SeekCurrent
			case "end":
				whence = io.SeekEnd
			default:
				return fmt.Errorf("seek whence must be set, cur or end, got %q", args[2])
			}
		}
		pos, err := f.Seek(off, whence)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "pos %d\n", pos)
		return nil
	case "handles":
		toks := make([]string, 0, len(sh.handles))
		for tok := range sh.handles {
			toks = append(toks, tok)
		}
		sort.Strings(toks)
		for _, tok := range toks {
			f := sh.handles[tok]
			fmt.Fprintf(sh.out, "%s ino=%d pos=%d size=%d\n", tok, f.Inode().Ino(), f.Pos(), f.Inode().Size())
		}
		return nil
	case "write", "append":
		if err := need(2); err != nil {
			return err
		}
		text := strings.Join(args[1:], " ")
		if f, isH, err := sh.handle(args[0]); isH {
			// Handle form: write at the handle position (or at EOF for
			// an append-mode handle), advancing it.
			if err != nil {
				return err
			}
			if cmd == "append" {
				if _, err := f.Seek(0, io.SeekEnd); err != nil {
					return err
				}
			}
			n, err := f.Write([]byte(text))
			if err != nil {
				return err
			}
			fmt.Fprintf(sh.out, "wrote %d bytes, pos %d\n", n, f.Pos())
			return nil
		}
		f, err := sh.fs.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		off := uint64(0)
		if cmd == "append" {
			off = f.Inode().Size()
		}
		n, err := f.WriteAt([]byte(text), off)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "wrote %d bytes at %d\n", n, off)
		return nil
	case "read":
		if err := need(2); err != nil {
			return err
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		buf := make([]byte, n)
		if f, isH, err := sh.handle(args[0]); isH {
			// Handle form: sequential read from the handle position.
			if err != nil {
				return err
			}
			got, err := f.Read(buf)
			if err == io.EOF {
				fmt.Fprintf(sh.out, "%q (eof)\n", buf[:got])
				return nil
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(sh.out, "%q\n", buf[:got])
			return nil
		}
		f, err := sh.fs.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		got, err := f.ReadAt(buf, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "%q\n", buf[:got])
		return nil
	case "read-at":
		if err := need(3); err != nil {
			return err
		}
		off, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(args[2])
		if err != nil {
			return err
		}
		buf := make([]byte, n)
		if f, isH, herr := sh.handle(args[0]); isH {
			if herr != nil {
				return herr
			}
			got, err := f.ReadAt(buf, off)
			if err != nil {
				return err
			}
			fmt.Fprintf(sh.out, "%q\n", buf[:got])
			return nil
		}
		f, err := sh.fs.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		got, err := f.ReadAt(buf, off)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "%q\n", buf[:got])
		return nil
	case "walk":
		path := "/"
		if len(args) > 0 {
			path = args[0]
		}
		return sh.fs.WalkDir(path, func(p string, ino *memfs.Inode) error {
			kind := "f"
			if ino.IsDir() {
				kind = "d"
			}
			fmt.Fprintf(sh.out, "%s %10d  %s\n", kind, ino.Size(), p)
			return nil
		})
	case "truncate":
		if err := need(2); err != nil {
			return err
		}
		pages, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return err
		}
		if f, isH, herr := sh.handle(args[0]); isH {
			if herr != nil {
				return herr
			}
			return f.Truncate(pages * mem.FrameSize)
		}
		f, err := sh.fs.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		return f.Truncate(pages * mem.FrameSize)
	case "ls":
		path := "/"
		if len(args) > 0 {
			path = args[0]
		}
		names, err := sh.fs.ReadDir(path)
		if err != nil {
			return err
		}
		for _, name := range names {
			ino, err := sh.fs.Stat(path + "/" + name)
			if err != nil {
				ino, err = sh.fs.Stat(strings.TrimSuffix(path, "/") + "/" + name)
				if err != nil {
					continue
				}
			}
			kind := "f"
			if ino.IsDir() {
				kind = "d"
			}
			fmt.Fprintf(sh.out, "%s %10d  %s (%s)\n", kind, ino.Size(), name, ino.Durability())
		}
		return nil
	case "stat":
		if err := need(1); err != nil {
			return err
		}
		ino, err := sh.fs.Stat(args[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "ino=%d dir=%v size=%d pages=%d allocated=%d extents=%d mode=%v %s discardable=%v\n",
			ino.Ino(), ino.IsDir(), ino.Size(), ino.Pages(), ino.AllocatedPages(),
			len(ino.Extents()), ino.Mode(), ino.Durability(), ino.Discardable())
		return nil
	case "rm":
		if err := need(1); err != nil {
			return err
		}
		return sh.fs.Unlink(args[0])
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		return sh.fs.Rename(args[0], args[1])
	case "ln":
		if err := need(2); err != nil {
			return err
		}
		return sh.fs.Link(args[0], args[1])
	case "quota":
		if err := need(2); err != nil {
			return err
		}
		frames, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return err
		}
		return sh.fs.SetQuota(args[0], frames)
	case "usage":
		if err := need(1); err != nil {
			return err
		}
		used, quota, err := sh.fs.QuotaUsage(args[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "%d/%d frames\n", used, quota)
		return nil
	case "discard":
		if err := need(1); err != nil {
			return err
		}
		want, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			return err
		}
		freed, err := sh.fs.DiscardForPressure(want)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "discarded %d frames\n", freed)
		return nil
	case "crash":
		sh.memory.Crash()
		fmt.Fprintln(sh.out, "power failure")
		return nil
	case "remount":
		// Remount rebuilds metadata from scratch: every open handle
		// references the pre-crash generation and must die with it.
		if n := sh.closeHandles(); n > 0 {
			fmt.Fprintf(sh.out, "%d stale handle(s) invalidated\n", n)
		}
		dropped, err := sh.fs.Remount()
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "remounted, %d volatile file(s) dropped\n", dropped)
		return nil
	case "check":
		if err := sh.fs.CheckInvariants(); err != nil {
			return err
		}
		fmt.Fprintln(sh.out, "fsck: clean")
		return nil
	case "df":
		fmt.Fprintf(sh.out, "%d free / %d total frames\n", sh.fs.FreeFrames(), sh.fs.TotalFrames())
		return nil
	case "time":
		fmt.Fprintf(sh.out, "virtual time: %v\n", sh.clock.Now())
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
