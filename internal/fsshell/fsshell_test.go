package fsshell

import (
	"strings"
	"testing"

	"repro/internal/memfs"
)

// run executes a script line by line and returns the collected output.
func run(t *testing.T, policy memfs.AllocPolicy, script string) string {
	t.Helper()
	var out strings.Builder
	sh, err := New(policy, 65536, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(script, "\n") {
		sh.ExecLine(strings.TrimSpace(line))
	}
	return out.String()
}

func TestScriptLifecycle(t *testing.T) {
	out := run(t, memfs.Extent, `
		mkdir /data
		create /data/db persistent
		write /data/db hello-world
		read /data/db 11
		ls /data
		df
	`)
	for _, want := range []string{
		"wrote 11 bytes at 0",
		`"hello-world"`,
		"db (persistent)",
		"free /",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScriptCrashRecovery(t *testing.T) {
	out := run(t, memfs.Extent, `
		create /keep persistent
		write /keep durable
		create /lose volatile
		write /lose gone
		crash
		remount
		read /keep 7
		read /lose 4
	`)
	if !strings.Contains(out, `"durable"`) {
		t.Fatalf("persistent data lost:\n%s", out)
	}
	if !strings.Contains(out, "1 volatile file(s) dropped") {
		t.Fatalf("volatile file not dropped:\n%s", out)
	}
	if !strings.Contains(out, "error:") || !strings.Contains(out, "not found") {
		t.Fatalf("reading the dropped file should error:\n%s", out)
	}
}

func TestScriptQuota(t *testing.T) {
	out := run(t, memfs.Extent, `
		mkdir /q
		quota /q 4
		create /q/f
		truncate /q/f 8
		usage /q
		truncate /q/f 2
		usage /q
	`)
	if !strings.Contains(out, "quota exceeded") {
		t.Fatalf("over-quota truncate not rejected:\n%s", out)
	}
	if !strings.Contains(out, "2/4 frames") {
		t.Fatalf("usage not reported:\n%s", out)
	}
}

func TestScriptRenameLinkDiscard(t *testing.T) {
	out := run(t, memfs.Extent, `
		create /a discardable
		truncate /a 8
		create /b
		write /b data
		mv /b /c
		ln /c /d
		rm /c
		read /d 4
		discard 8
		stat /a
	`)
	if !strings.Contains(out, `"data"`) {
		t.Fatalf("link lost data:\n%s", out)
	}
	if !strings.Contains(out, "discarded 8 frames") {
		t.Fatalf("discard failed:\n%s", out)
	}
	if !strings.Contains(out, "not found") {
		t.Fatalf("discarded file should be gone:\n%s", out)
	}
}

func TestScriptErrorsAndComments(t *testing.T) {
	out := run(t, memfs.PerPage, `
		# this is a comment

		bogus-command
		read /missing 4
		mkdir
	`)
	if got := strings.Count(out, "error:"); got != 3 {
		t.Fatalf("want 3 errors, got %d:\n%s", got, out)
	}
}

func TestScriptCheck(t *testing.T) {
	out := run(t, memfs.Extent, `
		create /f
		write /f data
		check
	`)
	if !strings.Contains(out, "fsck: clean") {
		t.Fatalf("check missing:\n%s", out)
	}
}

func TestScriptHandles(t *testing.T) {
	out := run(t, memfs.Extent, `
		open /f create
		write h0 hello-world
		seek h0 0
		read h0 5
		seek h0 2 cur
		read h0 5
		seek h0 -5 end
		write h0 earth
		read-at /f 0 12
		handles
		close h0
		read h0 1
	`)
	for _, want := range []string{
		"h0 = /f",
		"wrote 11 bytes, pos 11",
		"pos 0",
		`"hello"`,
		"pos 7",
		`"orld" (eof)`,
		"pos 6",
		`"hello-earth"`,
		"h0 ino=",
		"no open handle",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScriptHandleFlagsAndTruncate(t *testing.T) {
	out := run(t, memfs.Extent, `
		open /log create append
		write h0 one
		seek h0 0
		write h0 two
		read-at /log 0 6
		open /log excl
		open /log create excl
		truncate h0 0
		stat /log
		open /fresh create trunc
		close h1
		close h0
	`)
	for _, want := range []string{
		`"onetwo"`,              // append-mode handle writes land at EOF despite the seek
		"OExcl without OCreate", // excl alone refused
		"exists",                // OCreate|OExcl on an existing file refused
		"size=0",                // handle-based truncate took effect
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScriptWalkAndRemountInvalidatesHandles(t *testing.T) {
	out := run(t, memfs.Extent, `
		mkdir /d
		create /d/inner persistent
		open /d/inner
		walk /
		crash
		remount
		read h0 1
	`)
	for _, want := range []string{
		"d          0  /d",
		"  /d/inner",
		"1 stale handle(s) invalidated",
		"no open handle",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScriptAppendAndTime(t *testing.T) {
	out := run(t, memfs.Extent, `
		create /log
		write /log aaa
		append /log bbb
		read /log 6
		time
	`)
	if !strings.Contains(out, `"aaabbb"`) {
		t.Fatalf("append failed:\n%s", out)
	}
	if !strings.Contains(out, "virtual time") {
		t.Fatalf("time missing:\n%s", out)
	}
}
