package bench

import (
	"strconv"
	"testing"
)

// TestOnlineCkptShape asserts the paper's checkpoint asymmetry on the
// E20 scaling table: the baseline's units and copies are the dirty
// pages themselves, while extent-structured worlds coalesce units and
// NVM-backed worlds copy nothing.
func TestOnlineCkptShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full tenant churn x 10 runs")
	}
	r := runExp(t, "online-ckpt")
	if len(r.Tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(r.Tables))
	}
	scale := r.Tables[1]
	rows := map[string][]string{}
	for _, row := range scale.Rows {
		rows[row[0]] = row
	}
	num := func(row []string, i int) float64 {
		v, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			t.Fatalf("cell %q not numeric: %v", row[i], err)
		}
		return v
	}
	const (
		colDirty  = 2
		colUnits  = 3
		colCopied = 6
	)
	base, ok := rows["baseline"]
	if !ok {
		t.Fatalf("no baseline row in %v", scale.Rows)
	}
	if num(base, colDirty) == 0 {
		t.Fatal("baseline fenced zero dirty pages; the workload writes nothing?")
	}
	// Per-page metadata: every dirty page is its own unit and is copied.
	if num(base, colUnits) != num(base, colDirty) || num(base, colCopied) != num(base, colDirty) {
		t.Fatalf("baseline not O(dirty pages): %v", base)
	}
	for _, cfg := range []string{"fom", "pbm", "ranges", "usermode"} {
		row, ok := rows[cfg]
		if !ok {
			t.Fatalf("no %s row", cfg)
		}
		if num(row, colUnits) >= num(row, colDirty) {
			t.Fatalf("%s units %v not coalesced below dirty pages %v",
				cfg, row[colUnits], row[colDirty])
		}
	}
	// NVM-resident file data needs no copy at a fence.
	for _, cfg := range []string{"fom", "pbm", "ranges"} {
		if num(rows[cfg], colCopied) != 0 {
			t.Fatalf("%s copied %v pages; file data should be NVM-resident", cfg, rows[cfg][colCopied])
		}
	}
	// The grant pool is DRAM: usermode pays the copy but not the metadata.
	um := rows["usermode"]
	if num(um, colCopied) == 0 {
		t.Fatal("usermode copied nothing; grant pool should be DRAM-resident")
	}
	if num(um, colUnits) >= num(um, colDirty)/4 {
		t.Fatalf("usermode units %v not grant-granular vs %v dirty pages", um[colUnits], um[colDirty])
	}
}
