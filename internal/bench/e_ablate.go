package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/metrics"
	"repro/internal/pagetable"
	"repro/internal/slab"
	"repro/internal/tlb"
)

func init() {
	register(Experiment{
		ID:    "ablate-pt",
		Title: "ablation: pre-created page tables (first map builds, later maps link)",
		Paper: "§3.1 'pre-created page tables can be stored persistently'",
		Run:   ablatePT,
	})
	register(Experiment{
		ID:    "ablate-huge",
		Title: "ablation: page size (4K / 2M / 1G) for a 256 MiB mapping",
		Paper: "§3 page-size discussion (alignment restrictions, TLB reach)",
		Run:   ablateHuge,
	})
	register(Experiment{
		ID:    "ablate-slab",
		Title: "ablation: slab cache vs raw buddy for fixed-size kernel objects",
		Paper: "§3.1 'using techniques from heaps, such as slab allocators'",
		Run:   ablateSlab,
	})
	register(Experiment{
		ID:    "ablate-extent",
		Title: "ablation: per-page (tmpfs) vs extent (PMFS) file allocation",
		Paper: "§3.1/§4.1 extent argument",
		Run:   ablateExtent,
	})
}

func ablatePT() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable(
		"map a 64 MiB file in successive processes, SharedPT mode (µs, simulated)",
		"process", "map_us")
	pages := uint64(64) << 20 >> mem.FrameShift
	f, err := m.FOM.CreateContiguousFile("/lib", pages, memfs.CreateOptions{Durability: memfs.Persistent}, true)
	if err != nil {
		return nil, err
	}
	for i := 1; i <= 4; i++ {
		p, err := m.FOM.NewProcess(core.SharedPT)
		if err != nil {
			return nil, err
		}
		cost, err := timeOp(m.Clock, func() error {
			_, e := p.MapFile(f, ro)
			return e
		})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("P%d", i)
		if i == 1 {
			label += " (builds chunks)"
		}
		table.AddRow(label, us(cost))
	}
	chunks := m.FOM.Stats().Value("chunk_builds")
	links := m.FOM.Stats().Value("chunk_links")
	return &Result{
		ID:     "ablate-pt",
		Title:  "pre-created page tables",
		Paper:  "§3.1",
		Tables: []*metrics.Table{table},
		Notes: []string{
			fmt.Sprintf("%d chunks built exactly once, then %d links reused them; with persistent tables even the first map after a reboot would be links-only", chunks, links),
		},
	}, nil
}

func ablateHuge() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	const totalPages = uint64(256) << 20 >> mem.FrameShift // 256 MiB
	table := metrics.NewTable(
		"map and touch 256 MiB with each page size (simulated)",
		"page_size", "entries", "map_us", "touch_all_us", "tlb_misses")

	// Use the first 1 GiB-aligned frame of NVM as the physical target
	// (the mappings are installed directly, bypassing the allocators —
	// this ablation measures translation machinery only).
	nvm, _ := m.Memory.Region(mem.NVM)
	base := mem.Frame((uint64(nvm.Start) + mem.HugeFrames1G - 1) &^ uint64(mem.HugeFrames1G-1))
	if !m.Memory.Valid(base, mem.HugeFrames1G) {
		return nil, fmt.Errorf("bench: aligned base out of range")
	}

	cpu := m.Sim.BootCPU()
	for _, size := range []tlb.PageSize{tlb.Size4K, tlb.Size2M, tlb.Size1G} {
		pt, err := pagetable.New(cpu, m.Params, m.Kernel.Pool(), pagetable.Levels4)
		if err != nil {
			return nil, err
		}
		tl := tlb.New(cpu, m.Params, tlb.DefaultConfig())
		va := mem.VirtAddr(1) << 39 // 512 GiB: 1 GiB aligned
		step := size.Frames()
		entries := totalPages / step
		if entries == 0 {
			entries = 1
		}
		mapCost, err := timeOp(m.Clock, func() error {
			for i := uint64(0); i < entries; i++ {
				v := va + mem.VirtAddr(i*step*mem.FrameSize)
				fr := base + mem.Frame(i*step)
				var e error
				switch size {
				case tlb.Size4K:
					e = pt.Map(cpu, v, fr, rw)
				case tlb.Size2M:
					e = pt.Map2M(cpu, v, fr, rw)
				default:
					e = pt.Map1G(cpu, v, fr, rw)
				}
				if e != nil {
					return e
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Touch one byte per 4K page through the TLB + walk path.
		touchCost, err := timeOp(m.Clock, func() error {
			for p := uint64(0); p < totalPages; p += 16 { // sample every 64 KiB
				v := va + mem.VirtAddr(p*mem.FrameSize)
				if _, hit := tl.Lookup(0, v); !hit {
					pa, flags, _, ok := pt.Walk(cpu, v)
					if !ok {
						return fmt.Errorf("bench: walk failed at %#x", uint64(v))
					}
					_ = pa
					tl.Insert(0, v, tlb.Translation{Frame: (base + mem.Frame(p/step*step)), Size: size, Flags: flags})
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		table.AddRow(size.String(), fmt.Sprint(entries), us(mapCost), us(touchCost),
			fmt.Sprint(tl.Stats().Value("misses")))
		if err := pt.Destroy(); err != nil {
			return nil, err
		}
	}
	return &Result{
		ID:     "ablate-huge",
		Title:  "page-size ablation",
		Paper:  "§3",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"larger pages cut both mapping entries and TLB misses by the size ratio, but require aligned contiguous physical memory — which file-only memory's extents provide",
		},
	}, nil
}

func ablateSlab() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	const objs = 20000
	table := metrics.NewTable(
		fmt.Sprintf("allocate+free %d 64-byte kernel objects (µs, simulated)", objs),
		"allocator", "total_us", "ns_per_object")

	// Slab: objects share frames.
	cache, err := slab.NewCache("bench", 64, m.Clock, m.Params, m.Kernel.Pool())
	if err != nil {
		return nil, err
	}
	slabT, err := timeOp(m.Clock, func() error {
		addrs := make([]mem.PhysAddr, 0, objs)
		for i := 0; i < objs; i++ {
			a, e := cache.Alloc()
			if e != nil {
				return e
			}
			addrs = append(addrs, a)
		}
		for _, a := range addrs {
			if e := cache.Free(a); e != nil {
				return e
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	table.AddRow("slab (64B objects)", us(slabT), fmt.Sprintf("%.0f", float64(slabT)/(2*objs)))

	// Raw buddy: one 4 KiB frame per object (what naive per-object
	// page allocation costs).
	bud := m.Kernel.Pool()
	buddyT, err := timeOp(m.Clock, func() error {
		frames := make([]mem.Frame, 0, objs)
		for i := 0; i < objs; i++ {
			f, e := bud.AllocFrame()
			if e != nil {
				return e
			}
			frames = append(frames, f)
		}
		for _, f := range frames {
			if e := bud.Free(f); e != nil {
				return e
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	table.AddRow("buddy (frame per object)", us(buddyT), fmt.Sprintf("%.0f", float64(buddyT)/(2*objs)))
	return &Result{
		ID:     "ablate-slab",
		Title:  "slab vs buddy",
		Paper:  "§3.1",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"slab caches amortize frame allocation across objects (and use 64x less memory here), supporting the paper's suggestion to manage physical memory with heap techniques",
		},
	}, nil
}

func ablateExtent() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	const pages = 4096 // 16 MiB
	table := metrics.NewTable(
		"fully allocate a 16 MiB file (simulated)",
		"fs_policy", "alloc_us", "extents")

	tf, err := m.Tmpfs.Create("/ab-extent", memfs.CreateOptions{})
	if err != nil {
		return nil, err
	}
	if err := tf.Truncate(pages * mem.FrameSize); err != nil {
		return nil, err
	}
	tmpfsT, err := timeOp(m.Clock, func() error {
		for p := uint64(0); p < pages; p++ {
			if _, _, e := tf.PageFrame(p, true); e != nil {
				return e
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	table.AddRow("tmpfs per-page", us(tmpfsT), fmt.Sprint(len(tf.Inode().Extents())))

	pf, err := m.Pmfs.Create("/ab-extent", memfs.CreateOptions{})
	if err != nil {
		return nil, err
	}
	pmfsT, err := timeOp(m.Clock, func() error {
		return pf.Truncate(pages * mem.FrameSize)
	})
	if err != nil {
		return nil, err
	}
	table.AddRow("pmfs extent", us(pmfsT), fmt.Sprint(len(pf.Inode().Extents())))

	fomF, err := m.FOM.FS().CreateTemp("ab", memfs.CreateOptions{})
	if err != nil {
		return nil, err
	}
	fomT, err := timeOp(m.Clock, func() error {
		return fomF.EnsureContiguous(pages)
	})
	if err != nil {
		return nil, err
	}
	table.AddRow("fom single extent + epoch zero", us(fomT), fmt.Sprint(len(fomF.Inode().Extents())))

	return &Result{
		ID:     "ablate-extent",
		Title:  "per-page vs extent allocation",
		Paper:  "§3.1/§4.1",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"per-page allocation does 4096 small operations; extent allocation does one (plus zeroing, which the epoch mechanism also removes in the fom row)",
		},
	}, nil
}
