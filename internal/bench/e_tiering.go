package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tier"
	"repro/internal/usermode"
	"repro/internal/vm"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "tiering",
		Title: "tiered memory: migration policies over fast/slow frame tiers",
		Paper: "§3 ('heterogeneous and tiered memories'): per-op latency and migration cost when the translation scheme sets the migration granularity",
		Run:   tiering,
	})
}

// Tiering sizing. Every CPU runs an isolated context (its own memory,
// kernel/system, files, and tier engine, all clocked on that CPU): a
// W-page working set is populated sequentially and then hammered with
// a hot/cold touch mix while the fast tier holds only a configured
// fraction of W. Ratios keep the 10% hot set resident even at 1/8, so
// a policy that learns the hot set stops paying slow-tier penalties.
const (
	e19Pages      = 1024 // per-CPU working-set pages (W)
	e19Touches    = 1024 // measured steady-state touches per CPU
	e19WriteEvery = 4    // every 4th touch writes
	e19ScanEvery  = 16   // touches between clock-hand scan rounds
	e19ScanBatch  = 64   // frames aged per scan round

	// Physical regions. Fast regions are at least 2× the largest cap
	// (W/2): the watermarks must relieve pressure before the fast buddy
	// physically fills, or multi-page promotions fail on fragmentation.
	e19VMPool   = 4 * e19Pages // baseline DRAM pool (pages + page tables)
	e19SlowPool = 2 * e19Pages // baseline NVM overflow pool
	e19FomFast  = e19Pages     // fom DRAM fast region
	e19PTPool   = 1024         // core page-table pool (bottom of DRAM)
	e19CoreFast = 2 * e19Pages // core fast region (above the PT pool)
	e19FilePool = 4 * e19Pages // file-store frames (pbm pads to chunks)

	// File shapes: ranges/fom carve the working set into small extents,
	// pbm into SharedPT chunk-aligned files — so a migration moves 64
	// pages under ranges and 512 under pbm.
	e19RangeFilePages = 64
	e19ChunkFilePages = 512
)

// tierRatio is one fast-tier sizing: the fast cap is pages*Num/Den.
type tierRatio struct {
	Name     string
	Num, Den uint64
}

func (r tierRatio) cap(pages uint64) uint64 { return pages * r.Num / r.Den }

// tierRatiosAll is the default fast-tier sweep.
var tierRatiosAll = []tierRatio{{"1/8", 1, 8}, {"1/4", 1, 4}, {"1/2", 1, 2}}

// Sweep selection (the -tier-policy and -fast-ratio flags).
var (
	tierPoliciesSel = tier.Policies
	tierRatiosSel   = tierRatiosAll
)

// SetTierPolicies restricts the tiering experiment's policy sweep to a
// comma-separated list ("all" or empty restores the full sweep).
func SetTierPolicies(spec string) error {
	if spec == "" || spec == "all" {
		tierPoliciesSel = tier.Policies
		return nil
	}
	var sel []tier.Policy
	for _, s := range strings.Split(spec, ",") {
		p, err := tier.ParsePolicy(strings.TrimSpace(s))
		if err != nil {
			return err
		}
		sel = append(sel, p)
	}
	tierPoliciesSel = sel
	return nil
}

// SetTierRatios restricts the tiering experiment's fast-tier ratio
// sweep to a comma-separated list of fractions like "1/8,1/2" ("all"
// or empty restores the full sweep).
func SetTierRatios(spec string) error {
	if spec == "" || spec == "all" {
		tierRatiosSel = tierRatiosAll
		return nil
	}
	var sel []tierRatio
	for _, s := range strings.Split(spec, ",") {
		s = strings.TrimSpace(s)
		var num, den uint64
		if _, err := fmt.Sscanf(s, "%d/%d", &num, &den); err != nil || num == 0 || den == 0 || num > den {
			return fmt.Errorf("bench: bad fast-tier ratio %q (want e.g. 1/8)", s)
		}
		sel = append(sel, tierRatio{s, num, den})
	}
	tierRatiosSel = sel
	return nil
}

var tierConfigs = []string{"baseline", "fom", "pbm", "ranges", "usermode"}

func tiering() (*Result, error) {
	table := metrics.NewTable(
		fmt.Sprintf("steady-state touch latency over a %d-page working set, hot/cold 90/10 (per CPU)", e19Pages),
		"config", "policy", "fast", "p50_ns", "p99_ns", "promo", "demo", "swap", "stall",
		"pages_moved", "extent_migs", "splits", "mig_us", "fast_occ", "slow_occ")

	for _, cfg := range tierConfigs {
		for _, pol := range tierPoliciesSel {
			for _, r := range tierRatiosSel {
				lat, d, fast, slow, err := tieringCell(cfg, pol, r.cap(e19Pages))
				if err != nil {
					return nil, fmt.Errorf("tiering %s/%s/%s: %w", cfg, pol, r.Name, err)
				}
				table.AddRow(cfg, pol.String(), r.Name,
					fmt.Sprint(int64(lat.Quantile(0.50))), fmt.Sprint(int64(lat.Quantile(0.99))),
					fmt.Sprint(d.Promotions), fmt.Sprint(d.Demotions),
					fmt.Sprint(d.Swaps), fmt.Sprint(d.Stalls),
					fmt.Sprint(d.PagesMoved), fmt.Sprint(d.ExtentMoves), fmt.Sprint(d.Splits),
					fmt.Sprintf("%.1f", float64(d.MigrateTime)/1e3),
					fmt.Sprint(fast), fmt.Sprint(slow))
			}
		}
	}

	return &Result{
		ID:     "tiering",
		Title:  "tiered memory migration policies",
		Paper:  "§3 tiered-memory claim",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"fast = fast-tier capacity as a fraction of the working set; pages past the cap first-touch into the slow tier and pay the NVM read/write penalty on every access until promoted",
			"none = static first-touch placement; promote = on-access promotion that stalls once the fast tier fills; demote = watermark-driven background demotion only; smart = both, with coldest-out swaps when full",
			"migration granularity follows the translation scheme: baseline moves single pages (rmap + PTE rewrite + coalesced shootdown), fom splits extents to move single pages, ranges moves whole 64-page extents, pbm moves whole 512-page chunk extents, usermode moves whole 64-page granted extents — extent_migs × extent size = pages_moved",
			"usermode has no translations to invalidate: a migration is a grant-queue round trip, a frame copy, and a cooperative relocation callback that rebases the process's view — the software analogue of a shootdown, minus the IPIs",
			"mig_us is simulated time spent inside backend migrations; it lands in the latency window of the touch whose pump triggered it, which is what stretches p99 for the extent-granular configs",
			"each CPU runs an isolated context (own memory, kernel, files, engine) in its own sync group, so host-parallel runs are byte-identical to serial",
		},
	}, nil
}

// tierCtx is one CPU's isolated tiered context: a touch path over a
// W-page working set, plus the engine hooks the run loop drives.
type tierCtx struct {
	eng   *tier.Engine
	touch func(c *sim.CPU, page uint64, write bool) error
	pump  func(c *sim.CPU)           // nil when the access path pumps itself
	scan  func(c *sim.CPU, batch int)
}

// tieringCell runs one (config, policy, fast-cap) cell and returns the
// merged latency histogram, the telemetry delta, and the final
// per-tier occupancy summed over CPUs.
func tieringCell(cfg string, policy tier.Policy, fastCap uint64) (*workload.Latency, tier.Telemetry, uint64, uint64, error) {
	params := machineParams()
	machine := newSimMachine(&params, benchCPUs)
	n := machine.NumCPUs()
	groups := make([][]int, n)
	for i := range groups {
		groups[i] = []int{i}
	}
	machine.SetSyncGroups(groups)
	defer machine.SetSyncGroups(nil)

	before := tier.TelemetrySnapshot()
	ctxs := make([]*tierCtx, n)
	for i := 0; i < n; i++ {
		ctx, err := newTierCtx(cfg, machine.CPU(i), &params, policy, fastCap)
		if err != nil {
			return nil, tier.Telemetry{}, 0, 0, err
		}
		ctxs[i] = ctx
	}

	lats := make([]*workload.Latency, n)
	for i := range lats {
		lats[i] = &workload.Latency{}
	}
	err := machine.RunParallel(func(c *sim.CPU) error {
		return ctxs[c.ID()].run(c, lats[c.ID()], 0x713+uint64(c.ID()))
	})
	if err != nil {
		return nil, tier.Telemetry{}, 0, 0, err
	}

	d := tier.TelemetrySnapshot().Sub(before)
	var fast, slow uint64
	for _, ctx := range ctxs {
		f, s := ctx.eng.Occupancy()
		fast += f
		slow += s
	}
	return mergeLatencies(lats), d, fast, slow, nil
}

// run populates the working set, then measures the hot/cold touch
// phase. Promotions pump at each touch's end (so migration cost lands
// in that op's latency); the clock-hand scan runs between ops.
func (x *tierCtx) run(c *sim.CPU, lat *workload.Latency, seed uint64) error {
	// Populate from the top of the working set down: first-touch fills
	// the fast tier with the HIGHEST page numbers, so the hot set (the
	// low pages, per workload.HotCold) starts in the slow tier and only
	// a policy that learns hotness can move it.
	for p := uint64(e19Pages); p > 0; p-- {
		if err := x.touch(c, p-1, true); err != nil {
			return err
		}
		if x.pump != nil {
			x.pump(c)
		}
	}
	idx, err := workload.Touches(workload.HotCold, e19Pages, e19Touches, 0, seed)
	if err != nil {
		return err
	}
	for i, pg := range idx {
		t0 := c.Now()
		if err := x.touch(c, pg, i%e19WriteEvery == 0); err != nil {
			return err
		}
		if x.pump != nil {
			x.pump(c)
		}
		lat.Record(c.Now() - t0)
		if (i+1)%e19ScanEvery == 0 {
			x.scan(c, e19ScanBatch)
		}
	}
	return nil
}

// newTierCtx builds the per-CPU context for one configuration. All
// clocks are the CPU's own, so construction and run charges are
// CPU-local and deterministic.
func newTierCtx(cfg string, c *sim.CPU, params *sim.Params, policy tier.Policy, fastCap uint64) (*tierCtx, error) {
	switch cfg {
	case "baseline":
		return newTierCtxVM(c, params, policy, fastCap)
	case "fom":
		return newTierCtxFOM(c, params, policy, fastCap)
	case "pbm":
		return newTierCtxCore(c, params, policy, fastCap, core.SharedPT, e19ChunkFilePages, true)
	case "ranges":
		return newTierCtxCore(c, params, policy, fastCap, core.Ranges, e19RangeFilePages, false)
	case "usermode":
		return newTierCtxUsermode(c, params, policy, fastCap)
	}
	return nil, fmt.Errorf("unknown tiering config %q", cfg)
}

// newTierCtxVM: the baseline kernel with a slow anon pool. The whole
// DRAM pool is the fast tier; past the cap, first touches demand-fault
// into the slow pool and migrations rewrite PTEs through the rmap.
func newTierCtxVM(c *sim.CPU, params *sim.Params, policy tier.Policy, fastCap uint64) (*tierCtx, error) {
	cpuMem, err := mem.New(c.Clock(), params, mem.Config{
		DRAMFrames: e19VMPool, NVMFrames: e19SlowPool,
	})
	if err != nil {
		return nil, err
	}
	k, err := vm.NewKernel(c.Clock(), params, cpuMem, vm.Config{
		PoolBase: 0, PoolFrames: e19VMPool,
		SlowPoolBase: mem.Frame(e19VMPool), SlowPoolFrames: e19SlowPool,
	})
	if err != nil {
		return nil, err
	}
	eng := tier.New(params, cpuMem, policy, fastCap)
	k.AttachTier(eng)
	as, err := k.NewAddressSpaceOn(c)
	if err != nil {
		return nil, err
	}
	va, err := as.Mmap(vm.MmapRequest{Pages: e19Pages, Prot: rw, Anon: true, Private: true})
	if err != nil {
		return nil, err
	}
	return &tierCtx{
		eng: eng,
		touch: func(c *sim.CPU, page uint64, write bool) error {
			return as.Touch(va+mem.VirtAddr(page*mem.FrameSize), write)
		},
		scan: func(c *sim.CPU, batch int) { k.TierScan(c, batch) },
	}, nil
}

// newTierCtxFOM: the extent file store accessed by offset alone. The
// store's own read/write paths record accesses but have no CPU handle,
// so the run loop pumps; migration splits extents to move one page.
func newTierCtxFOM(c *sim.CPU, params *sim.Params, policy tier.Policy, fastCap uint64) (*tierCtx, error) {
	cpuMem, err := mem.New(c.Clock(), params, mem.Config{
		DRAMFrames: e19FomFast, NVMFrames: e19FilePool,
	})
	if err != nil {
		return nil, err
	}
	fs, err := memfs.New(fmt.Sprintf("e19fom%d", c.ID()), memfs.Extent, c.Clock(), params,
		cpuMem, mem.Frame(e19FomFast), e19FilePool)
	if err != nil {
		return nil, err
	}
	eng := tier.New(params, cpuMem, policy, fastCap)
	if err := fs.AttachTier(eng, 0, e19FomFast); err != nil {
		return nil, err
	}
	// Allocate the high files first (frames are placed at creation), so
	// the hot low pages start in the slow tier — see run's populate.
	files := make([]*memfs.File, e19Pages/e19RangeFilePages)
	for i := len(files) - 1; i >= 0; i-- {
		f, err := fs.CreateTemp("wset", memfs.CreateOptions{})
		if err != nil {
			return nil, err
		}
		if err := f.EnsureContiguous(e19RangeFilePages); err != nil {
			return nil, err
		}
		files[i] = f
	}
	var one [1]byte
	return &tierCtx{
		eng: eng,
		touch: func(c *sim.CPU, page uint64, write bool) error {
			f := files[page/e19RangeFilePages]
			off := (page % e19RangeFilePages) * mem.FrameSize
			var err error
			if write {
				_, err = f.WriteAt([]byte{byte(page)}, off)
			} else {
				_, err = f.ReadAt(one[:], off)
			}
			return err
		},
		pump: func(c *sim.CPU) { eng.Pump(c) },
		scan: func(c *sim.CPU, batch int) { eng.Scan(c, batch) },
	}, nil
}

// newTierCtxUsermode: user-mode software-managed memory. The working
// set lives in granted extents the size of a ranges extent (64 pages),
// allocated batch-at-a-time from a fast (DRAM) and a slow (NVM) pool;
// accesses pay a software bounds check instead of a page walk, and
// migration relocates a whole granted extent cooperatively — the
// process learns the new base through its relocation callback, so
// there is nothing to shoot down.
func newTierCtxUsermode(c *sim.CPU, params *sim.Params, policy tier.Policy, fastCap uint64) (*tierCtx, error) {
	cpuMem, err := mem.New(c.Clock(), params, mem.Config{
		DRAMFrames: e19FomFast, NVMFrames: e19FilePool,
	})
	if err != nil {
		return nil, err
	}
	gt, err := usermode.NewGrantTable(c.Clock(), params, cpuMem, usermode.Config{
		PoolBase: mem.Frame(e19FomFast), PoolFrames: e19FilePool,
		FastBase: 0, FastFrames: e19FomFast,
		// One grant = one ranges-sized extent, so the migration
		// granularity matches the ranges configuration.
		BatchPages: e19RangeFilePages,
	})
	if err != nil {
		return nil, err
	}
	eng := tier.New(params, cpuMem, policy, fastCap)
	gt.SetEngine(eng)
	p, err := gt.NewProcessOn(c)
	if err != nil {
		return nil, err
	}
	// Allocate the high chunks first (grants are placed fast-first at
	// refill time), so the hot low pages start in the slow tier — see
	// run's populate. Each chunk exactly fills one grant.
	bases := make([]mem.VirtAddr, e19Pages/e19RangeFilePages)
	for i := len(bases) - 1; i >= 0; i-- {
		r, err := p.AllocPages(e19RangeFilePages)
		if err != nil {
			return nil, err
		}
		bases[i] = r.Base()
	}
	p.SetRelocate(func(old, new mem.VirtAddr, pages uint64) {
		span := mem.VirtAddr(pages * mem.FrameSize)
		for i := range bases {
			if bases[i] >= old && bases[i] < old+span {
				bases[i] = new + (bases[i] - old)
			}
		}
	})
	var one [1]byte
	return &tierCtx{
		eng: eng,
		touch: func(c *sim.CPU, page uint64, write bool) error {
			addr := bases[page/e19RangeFilePages] + mem.VirtAddr((page%e19RangeFilePages)*mem.FrameSize)
			if write {
				return p.WriteBuf(addr, []byte{byte(page)})
			}
			return p.ReadBuf(addr, one[:])
		},
		pump: func(c *sim.CPU) { eng.Pump(c) },
		scan: func(c *sim.CPU, batch int) { eng.Scan(c, batch) },
	}, nil
}

// newTierCtxCore: file-only memory with PBM translations. The working
// set is mapped files; migration relocates whole extents and relinks
// every mapper with coalesced shootdowns, so the translation scheme's
// extent size is the migration granularity.
func newTierCtxCore(c *sim.CPU, params *sim.Params, policy tier.Policy, fastCap uint64,
	mode core.TranslationMode, filePages uint64, chunkAligned bool) (*tierCtx, error) {
	cpuMem, err := mem.New(c.Clock(), params, mem.Config{
		DRAMFrames: e19PTPool + e19CoreFast, NVMFrames: e19FilePool,
	})
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(c.Clock(), params, cpuMem, core.Options{
		PTPoolBase: 0, PTPoolFrames: e19PTPool,
	})
	if err != nil {
		return nil, err
	}
	eng := tier.New(params, cpuMem, policy, fastCap)
	if err := sys.AttachTier(eng, mem.Frame(e19PTPool), e19CoreFast); err != nil {
		return nil, err
	}
	p, err := sys.NewProcessOn(c, mode)
	if err != nil {
		return nil, err
	}
	// Allocate the high files first (frames are placed at creation), so
	// the hot low pages start in the slow tier — see run's populate.
	maps := make([]*core.Mapping, e19Pages/filePages)
	for i := len(maps) - 1; i >= 0; i-- {
		f, err := sys.CreateContiguousFile(fmt.Sprintf("/wset%d", i), filePages,
			memfs.CreateOptions{Mode: rw}, chunkAligned)
		if err != nil {
			return nil, err
		}
		m, err := p.MapFile(f, rw)
		if err != nil {
			return nil, err
		}
		maps[i] = m
	}
	return &tierCtx{
		eng: eng,
		touch: func(c *sim.CPU, page uint64, write bool) error {
			m := maps[page/filePages]
			va, err := m.VAForOffset((page % filePages) * mem.FrameSize)
			if err != nil {
				return err
			}
			return p.Touch(va, write)
		},
		scan: func(c *sim.CPU, batch int) { sys.TierScan(c, batch) },
	}, nil
}
