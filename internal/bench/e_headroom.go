package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memfs"
	"repro/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "headroom",
		Title: "storage headroom as volatile memory: grow persistent data, reclaim caches",
		Paper: "§2 'memory as storage' (file systems run below 50% full; spare capacity backs volatile objects)",
		Run:   headroom,
	})
}

// headroom models the paper's memory-as-storage scenario: a
// persistent-memory file system holds durable data at storage-like
// utilization, and the unused capacity serves volatile, discardable
// working memory. As the persistent data set grows, volatile caches
// are reclaimed (whole files at a time) to make room.
func headroom() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	sys := m.FOM
	total := sys.FS().TotalFrames()
	p, err := sys.NewProcess(core.Ranges)
	if err != nil {
		return nil, err
	}

	table := metrics.NewTable(
		"file-system utilization vs volatile working memory (frames)",
		"persistent_%", "persistent_frames", "volatile_cache_frames", "free_frames", "caches_discarded")

	// Seed volatile caches covering ~60% of capacity: 24 discardable
	// cache files.
	cacheFrames := total * 60 / 100
	perCache := cacheFrames / 24
	for i := 0; i < 24; i++ {
		f, err := sys.CreateContiguousFile(fmt.Sprintf("/cache/%d", i), perCache, memfs.CreateOptions{Discardable: true}, false)
		if err != nil {
			if mkErr := sys.FS().Mkdir("/cache"); mkErr != nil {
				return nil, mkErr
			}
			f, err = sys.CreateContiguousFile(fmt.Sprintf("/cache/%d", i), perCache, memfs.CreateOptions{Discardable: true}, false)
			if err != nil {
				return nil, err
			}
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}

	// Grow the persistent data set in steps, reclaiming caches under
	// pressure, exactly as a storage device fills over its lifetime.
	var persistent uint64
	step := total / 10
	for pct := 10; pct <= 90; pct += 20 {
		want := total * uint64(pct) / 100
		for persistent < want {
			n := step
			if persistent+n > want {
				n = want - persistent
			}
			name := fmt.Sprintf("/data-%d-%d", pct, persistent)
			f, err := sys.FS().Create(name, memfs.CreateOptions{Durability: memfs.Persistent})
			if err != nil {
				return nil, err
			}
			// Extent-policy truncate allocates as few extents as
			// fragmentation allows; under pressure, discard whole
			// cache files and retry.
			if err := f.Truncate(n * 4096); err != nil {
				if _, derr := sys.DiscardUnderPressure(n); derr != nil {
					return nil, derr
				}
				if err := f.Truncate(n * 4096); err != nil {
					return nil, fmt.Errorf("bench: persistent growth to %d%% failed: %w", pct, err)
				}
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
			persistent += n
		}
		cacheLeft := uint64(0)
		if names, err := sys.FS().ReadDir("/cache"); err == nil {
			for _, name := range names {
				if ino, err := sys.FS().Stat("/cache/" + name); err == nil {
					cacheLeft += ino.AllocatedPages()
				}
			}
		}
		table.AddRow(fmt.Sprint(pct), fmt.Sprint(persistent), fmt.Sprint(cacheLeft),
			fmt.Sprint(sys.FreeFrames()), fmt.Sprint(sys.FS().Stats().Value("discards")))
	}
	_ = p
	return &Result{
		ID:     "headroom",
		Title:  "memory as storage",
		Paper:  "§2",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"while the persistent data set is small, spare capacity serves volatile caches; as it grows, whole cache files are discarded — capacity is never idle, and persistent growth is never blocked",
		},
	}, nil
}
