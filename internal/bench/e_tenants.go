package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/usermode"
	"repro/internal/vm"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "tenants",
		Title: "sustained multi-tenant churn: fork/exec, shared objects, alloc bursts, teardown",
		Paper: "§2/§3 ('machines hosting thousands of containers'): per-op latency under consolidation-scale churn",
		Run:   tenants,
	})
}

// Tenant-driver sizing. Thousands of short-lived tenants churn through
// spawn → map-shared → alloc/touch/free bursts → exit; the experiment
// reports the per-operation simulated latency distribution for the
// baseline VM (populate and demand-paging variants) and file-only
// memory (both hardware assumptions).
const (
	tenantCount     = 2000
	tenantBursts    = 3
	tenantHeapPages = 48
	tenantTmplPages = 64 // the shared template/object every tenant maps
	tenantSharedHot = 8  // pages of the shared object each tenant touches
)

// tenantPairGroups partitions the CPUs into {2i, 2i+1} sync groups:
// tenants interact only with their pair partner, so disjoint pairs
// never barrier against each other in a host-parallel phase.
func tenantPairGroups(n int) [][]int {
	var groups [][]int
	for i := 0; i+1 < n; i += 2 {
		groups = append(groups, []int{i, i + 1})
	}
	return groups
}

// tenantPartner returns the pair partner of cpu on an n-CPU machine,
// or -1 when the CPU is unpaired.
func tenantPartner(cpu, n int) int {
	p := cpu ^ 1
	if p >= n {
		return -1
	}
	return p
}

// mergeLatencies folds the per-CPU recorders in CPU order.
func mergeLatencies(lats []*workload.Latency) *workload.Latency {
	out := lats[0]
	for _, l := range lats[1:] {
		out.Merge(l)
	}
	return out
}

// tenantKinds is the number of TenantOpKind values (exit is last).
const tenantKinds = int(workload.TenantExit) + 1

// tenantLats is one CPU's latency recorders: the all-ops histogram
// plus one histogram per op kind — the spawn vs map vs alloc vs
// teardown split.
type tenantLats struct {
	total  workload.Latency
	byKind [tenantKinds]workload.Latency
}

func (l *tenantLats) record(k workload.TenantOpKind, d sim.Time) {
	l.total.Record(d)
	l.byKind[k].Record(d)
}

// newTenantLats allocates one recorder per CPU.
func newTenantLats(n int) []*tenantLats {
	out := make([]*tenantLats, n)
	for i := range out {
		out[i] = &tenantLats{}
	}
	return out
}

// mergeTenantLats folds the per-CPU recorders in CPU order.
func mergeTenantLats(lats []*tenantLats) *tenantLats {
	out := lats[0]
	for _, l := range lats[1:] {
		out.total.Merge(&l.total)
		for k := range out.byKind {
			out.byKind[k].Merge(&l.byKind[k])
		}
	}
	return out
}

// addKindRows appends one row per op kind to the split table.
func addKindRows(t *metrics.Table, name string, l *tenantLats) {
	for k := 0; k < tenantKinds; k++ {
		h := &l.byKind[k]
		t.AddRow(name, workload.TenantOpKind(k).String(),
			fmt.Sprint(h.Count()), fmt.Sprintf("%.1f", h.Mean()),
			fmt.Sprint(int64(h.Quantile(0.50))), fmt.Sprint(int64(h.Quantile(0.99))))
	}
}

func tenants() (*Result, error) {
	traces, err := workload.TenantTrace(workload.TenantConfig{
		Tenants: tenantCount, Bursts: tenantBursts, HeapPages: tenantHeapPages, Seed: 17,
	})
	if err != nil {
		return nil, err
	}

	table := metrics.NewTable(
		fmt.Sprintf("per-op simulated latency over %d tenants × %d bursts (ns)",
			tenantCount, tenantBursts),
		"config", "ops", "mean_ns", "p50_ns", "p99_ns", "p99.9_ns", "max_ns")

	kindTable := metrics.NewTable(
		"the same ops split by kind: where each configuration's time goes (ns)",
		"config", "op_kind", "ops", "mean_ns", "p50_ns", "p99_ns")

	for _, cfg := range []struct {
		name     string
		populate bool
	}{{"baseline_populate", true}, {"baseline_demand", false}} {
		lat, err := tenantsBaseline(traces, cfg.populate)
		if err != nil {
			return nil, fmt.Errorf("tenants %s: %w", cfg.name, err)
		}
		addLatencyRow(table, cfg.name, &lat.total)
		addKindRows(kindTable, cfg.name, lat)
	}
	for _, cfg := range []struct {
		name string
		mode core.TranslationMode
	}{{"fom_ranges", core.Ranges}, {"fom_sharedpt", core.SharedPT}} {
		lat, err := tenantsFOM(traces, cfg.mode)
		if err != nil {
			return nil, fmt.Errorf("tenants %s: %w", cfg.name, err)
		}
		addLatencyRow(table, cfg.name, &lat.total)
		addKindRows(kindTable, cfg.name, lat)
	}
	{
		lat, err := tenantsUsermode(traces)
		if err != nil {
			return nil, fmt.Errorf("tenants usermode: %w", err)
		}
		addLatencyRow(table, "usermode", &lat.total)
		addKindRows(kindTable, "usermode", lat)
	}

	return &Result{
		ID:     "tenants",
		Title:  "sustained multi-tenant churn",
		Paper:  "§2/§3 consolidation premise",
		Tables: []*metrics.Table{table, kindTable},
		Notes: []string{
			"each tenant forks from its CPU's 64-page template (the shared object), touches 8 shared pages, runs alloc/touch/free bursts over an anonymous heap, and exits; odd tenants run a thread on the pair-partner CPU, so their teardowns pay real cross-CPU shootdowns",
			"the baseline pays per-page fork copies, per-page populate or demand faults, and per-page teardown; file-only memory spawns a fresh process (no per-page fork cost), maps the shared object in O(extents), and allocates/frees whole files",
			"usermode spawn includes the up-front grant batch (one queue round trip + grant install for 512 pages); map-shared is one grant-table install; alloc/free are pure user-level free-list operations with no kernel involvement; exit revokes the tenant's grants in O(grants) — and there are no TLBs in this world, so the odd tenants' partner threads cost nothing to tear down",
			"tenants are CPU-local by construction (per-CPU templates, arenas, and file systems), so pair sync groups let disjoint pairs proceed without ever synchronizing — the sharded-sync-domain scaling case",
			"with multiple CPUs the max column includes cross-CPU rendezvous: an IPI merges the sender's clock with its partner's, so one op absorbs the pair's clock skew",
		},
	}, nil
}

func addLatencyRow(t *metrics.Table, name string, l *workload.Latency) {
	t.AddRow(name, fmt.Sprint(l.Count()), fmt.Sprintf("%.1f", l.Mean()),
		fmt.Sprint(int64(l.Quantile(0.50))), fmt.Sprint(int64(l.Quantile(0.99))),
		fmt.Sprint(int64(l.Quantile(0.999))), fmt.Sprint(int64(l.Max())))
}

// tenantsBaseline replays the trace against the baseline VM kernel.
// Every CPU owns an arena, a read-only populated template space, and a
// round-robin share of the tenants; spawn is a same-CPU fork of the
// template (per-page PTE copies), the shared object is the template
// memory inherited through it, and teardown is per-page zap with
// coalesced shootdowns.
func tenantsBaseline(traces [][]workload.TenantOp, populate bool) (*tenantLats, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	if err := m.ShardPool(); err != nil {
		return nil, err
	}
	n := m.Sim.NumCPUs()
	m.Sim.SetSyncGroups(tenantPairGroups(n))
	defer m.Sim.SetSyncGroups(nil)

	lats := newTenantLats(n)
	err = m.Sim.RunParallel(func(c *sim.CPU) error {
		lat := lats[c.ID()]
		partner := tenantPartner(c.ID(), n)
		tmpl, err := m.Kernel.NewAddressSpaceOn(c)
		if err != nil {
			return err
		}
		tmplVA, err := tmpl.Mmap(vm.MmapRequest{
			Pages: tenantTmplPages, Prot: ro, Anon: true, Private: true, Populate: true,
		})
		if err != nil {
			return err
		}
		for ti := c.ID(); ti < len(traces); ti += n {
			var space *vm.AddressSpace
			var heapVA mem.VirtAddr
			var heapPages uint64
			for _, op := range traces[ti] {
				t0 := c.Now()
				switch op.Kind {
				case workload.TenantSpawn:
					space, err = tmpl.ForkOn(c)
					if err != nil {
						return err
					}
					if ti%2 == 1 && partner >= 0 {
						space.MarkRanOn(m.Sim.CPU(partner))
					}
				case workload.TenantMapShared:
					// The fork inherited the template mapping — the
					// baseline's way of sharing an object. Touch the
					// hot pages through this tenant's page table.
					for p := uint64(0); p < tenantSharedHot; p++ {
						if err := space.Touch(tmplVA+mem.VirtAddr(p*mem.FrameSize), false); err != nil {
							return err
						}
					}
				case workload.TenantAlloc:
					heapPages = op.Pages
					heapVA, err = space.Mmap(vm.MmapRequest{
						Pages: op.Pages, Prot: rw, Anon: true, Private: true, Populate: populate,
					})
					if err != nil {
						return err
					}
				case workload.TenantTouch:
					for p := uint64(0); p < op.Pages; p++ {
						if err := space.Touch(heapVA+mem.VirtAddr(p*mem.FrameSize), true); err != nil {
							return err
						}
					}
				case workload.TenantFree:
					if err := space.Munmap(heapVA, heapPages); err != nil {
						return err
					}
				case workload.TenantExit:
					if err := space.Destroy(); err != nil {
						return err
					}
				}
				lat.record(op.Kind, c.Now()-t0)
			}
		}
		return tmpl.Destroy()
	})
	if err != nil {
		return nil, err
	}
	return mergeTenantLats(lats), nil
}

// tenantsFOM replays the trace against file-only memory. Every CPU
// gets its own memory and core.System (file store, page-table pool,
// masters) clocked on that CPU, so all charges are CPU-local with no
// kernel-clock forwarding; the shared object is a per-CPU file mapped
// by each tenant in O(extents).
func tenantsFOM(traces [][]workload.TenantOp, mode core.TranslationMode) (*tenantLats, error) {
	const (
		cpuDRAMFrames = uint64(256) << 20 >> mem.FrameShift // page-table pool
		cpuNVMFrames  = uint64(1) << 30 >> mem.FrameShift   // file store
	)
	params := machineParams()
	machine := newSimMachine(&params, benchCPUs)
	n := machine.NumCPUs()
	machine.SetSyncGroups(tenantPairGroups(n))
	defer machine.SetSyncGroups(nil)

	syss := make([]*core.System, n)
	shared := make([]*memfs.File, n)
	for i := 0; i < n; i++ {
		c := machine.CPU(i)
		cpuMem, err := mem.New(c.Clock(), &params, mem.Config{
			DRAMFrames: cpuDRAMFrames, NVMFrames: cpuNVMFrames,
		})
		if err != nil {
			return nil, err
		}
		syss[i], err = core.NewSystem(c.Clock(), &params, cpuMem, core.Options{})
		if err != nil {
			return nil, err
		}
		shared[i], err = syss[i].CreateContiguousFile("/shared", tenantTmplPages,
			memfs.CreateOptions{Mode: ro}, mode == core.SharedPT)
		if err != nil {
			return nil, err
		}
	}

	lats := newTenantLats(n)
	err := machine.RunParallel(func(c *sim.CPU) error {
		lat := lats[c.ID()]
		partner := tenantPartner(c.ID(), n)
		s := syss[c.ID()]
		for ti := c.ID(); ti < len(traces); ti += n {
			var p *core.Process
			var heap, sm *core.Mapping
			for _, op := range traces[ti] {
				t0 := c.Now()
				switch op.Kind {
				case workload.TenantSpawn:
					var err error
					p, err = s.NewProcessOn(c, mode)
					if err != nil {
						return err
					}
					if ti%2 == 1 && partner >= 0 {
						p.MarkRanOn(machine.CPU(partner))
					}
				case workload.TenantMapShared:
					var err error
					sm, err = p.MapFile(shared[c.ID()], ro)
					if err != nil {
						return err
					}
					for pg := uint64(0); pg < tenantSharedHot; pg++ {
						if err := p.Touch(sm.Base()+mem.VirtAddr(pg*mem.FrameSize), false); err != nil {
							return err
						}
					}
				case workload.TenantAlloc:
					var err error
					heap, err = p.AllocVolatile(op.Pages, rw)
					if err != nil {
						return err
					}
				case workload.TenantTouch:
					for pg := uint64(0); pg < op.Pages; pg++ {
						if err := p.Touch(heap.Base()+mem.VirtAddr(pg*mem.FrameSize), true); err != nil {
							return err
						}
					}
				case workload.TenantFree:
					if err := p.Unmap(heap); err != nil {
						return err
					}
				case workload.TenantExit:
					if err := p.Exit(); err != nil {
						return err
					}
				}
				lat.record(op.Kind, c.Now()-t0)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeTenantLats(lats), nil
}

// tenantsUsermode replays the trace against user-mode software-managed
// memory. Every CPU gets its own grant table and pool clocked on that
// CPU; spawn admits the process and installs its up-front grant batch
// (the Cichlid model — the 512-page batch covers every burst, so no
// tenant ever refills), the shared object is a per-CPU refcounted
// shared segment held alive by a template process, alloc/free are pure
// user-level free-list operations, and exit revokes the tenant's
// grants through the queue in O(grants). There are no TLBs in this
// world, so the odd tenants' partner threads need no teardown work and
// nothing is marked as having run anywhere.
func tenantsUsermode(traces [][]workload.TenantOp) (*tenantLats, error) {
	const cpuPoolFrames = uint64(256) << 20 >> mem.FrameShift // grant pool
	params := machineParams()
	machine := newSimMachine(&params, benchCPUs)
	n := machine.NumCPUs()
	machine.SetSyncGroups(tenantPairGroups(n))
	defer machine.SetSyncGroups(nil)

	gts := make([]*usermode.GrantTable, n)
	segs := make([]*usermode.SharedSeg, n)
	for i := 0; i < n; i++ {
		c := machine.CPU(i)
		cpuMem, err := mem.New(c.Clock(), &params, mem.Config{DRAMFrames: cpuPoolFrames})
		if err != nil {
			return nil, err
		}
		gts[i], err = usermode.NewGrantTable(c.Clock(), &params, cpuMem, usermode.Config{
			PoolBase: 0, PoolFrames: cpuPoolFrames,
		})
		if err != nil {
			return nil, err
		}
		tmpl, err := gts[i].NewProcessOn(c)
		if err != nil {
			return nil, err
		}
		segs[i], err = gts[i].NewShared(tmpl, tenantTmplPages)
		if err != nil {
			return nil, err
		}
	}

	lats := newTenantLats(n)
	err := machine.RunParallel(func(c *sim.CPU) error {
		lat := lats[c.ID()]
		gt, seg := gts[c.ID()], segs[c.ID()]
		var one [1]byte
		for ti := c.ID(); ti < len(traces); ti += n {
			var p *usermode.Process
			var hr heap.Region
			for _, op := range traces[ti] {
				t0 := c.Now()
				switch op.Kind {
				case workload.TenantSpawn:
					var err error
					p, err = gt.NewProcessOn(c)
					if err != nil {
						return err
					}
				case workload.TenantMapShared:
					if err := p.MapShared(seg); err != nil {
						return err
					}
					for pg := uint64(0); pg < tenantSharedHot; pg++ {
						if err := p.ReadBuf(seg.Base()+mem.VirtAddr(pg*mem.FrameSize), one[:]); err != nil {
							return err
						}
					}
				case workload.TenantAlloc:
					var err error
					hr, err = p.AllocPages(op.Pages)
					if err != nil {
						return err
					}
				case workload.TenantTouch:
					for pg := uint64(0); pg < op.Pages; pg++ {
						if err := p.WriteBuf(hr.Base()+mem.VirtAddr(pg*mem.FrameSize), one[:1]); err != nil {
							return err
						}
					}
				case workload.TenantFree:
					if err := p.FreeRegion(hr); err != nil {
						return err
					}
				case workload.TenantExit:
					if err := p.Exit(); err != nil {
						return err
					}
				}
				lat.record(op.Kind, c.Now()-t0)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeTenantLats(lats), nil
}
