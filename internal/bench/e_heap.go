package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/metrics"
	"repro/internal/vm"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "heapchurn",
		Title: "user-level allocator on file-only memory vs mmap-per-object",
		Paper: "§1 language runtimes; §3.1 heap techniques (slab/arena allocation over O(1) files)",
		Run:   heapChurn,
	})
}

// heapChurn drives the same small-object allocate/write/free mix
// through (a) the arena heap on file-only memory and (b) a naive
// allocator that asks the baseline kernel for a fresh mapping per
// object — quantifying why runtimes need an allocation layer, and that
// file-only memory supports one well.
func heapChurn() (*Result, error) {
	const ops = 4000
	sizes, err := workload.AllocSizes(workload.SmallHeavy, ops, 1, 64, 11) // in 16-byte units
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable(
		fmt.Sprintf("%d alloc+write+free cycles, 16 B – 1 KiB objects (simulated)", ops),
		"allocator", "total_us", "ns_per_op", "peak_kernel_ops")

	// (a) Arena heap on file-only memory.
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	p, err := m.FOM.NewProcess(core.Ranges)
	if err != nil {
		return nil, err
	}
	h := heap.New(p)
	heapT, err := timeOp(m.Clock, func() error {
		for i := 0; i < ops; i++ {
			obj, err := h.Alloc(sizes[i] * 16)
			if err != nil {
				return err
			}
			if err := h.Write(obj, []byte("x")); err != nil {
				return err
			}
			if err := h.Free(obj); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fomKernelOps := m.FOM.Stats().Value("allocs") + m.FOM.Stats().Value("unmaps")
	table.AddRow("arena heap on FOM",
		us(heapT), fmt.Sprintf("%.0f", float64(heapT)/ops), fmt.Sprint(fomKernelOps))

	// (b) mmap per object on the baseline.
	m2, err := NewMachine()
	if err != nil {
		return nil, err
	}
	as, err := m2.Kernel.NewAddressSpace()
	if err != nil {
		return nil, err
	}
	mmapT, err := timeOp(m2.Clock, func() error {
		for i := 0; i < ops; i++ {
			va, err := as.Mmap(vm.MmapRequest{Pages: 1, Prot: rw, Anon: true, Private: true})
			if err != nil {
				return err
			}
			if err := as.WriteByteAt(va, 'x'); err != nil {
				return err
			}
			if err := as.Munmap(va, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	table.AddRow("mmap per object (baseline)",
		us(mmapT), fmt.Sprintf("%.0f", float64(mmapT)/ops), fmt.Sprint(ops*2))

	speedup := float64(mmapT) / float64(heapT)
	return &Result{
		ID:     "heapchurn",
		Title:  "user-level allocation",
		Paper:  "§1/§3.1",
		Tables: []*metrics.Table{table},
		Notes: []string{
			fmt.Sprintf("the arena heap is %.0fx faster and issued only %d kernel operations (whole arenas) vs two syscalls per object — the language-runtime layer the paper's O(1) files are meant to carry", speedup, fomKernelOps),
		},
	}, nil
}
