package bench

import (
	"bytes"
	"fmt"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/vm"
)

func init() {
	register(Experiment{
		ID:    "recovery",
		Title: "crash recovery: metadata rebuild time vs working-set size",
		Paper: "§3.1/§4 consequence: extent-grain metadata makes recovery O(extents), not O(pages)",
		Run:   recovery,
	})
	register(Experiment{
		ID:    "snapshot-save",
		Title: "checkpoint a mid-trace machine to the binary snapshot format",
		Paper: "persistence subsystem (wall-clock tracked via -benchjson)",
		Run:   snapshotSave,
	})
	register(Experiment{
		ID:    "snapshot-restore",
		Title: "restore a snapshot and prove the rebuilt machine bit-identical",
		Paper: "persistence subsystem (wall-clock tracked via -benchjson)",
		Run:   snapshotRestore,
	})
}

// recovery is experiment E17: after a crash, how long does each design
// take to rebuild its memory-management metadata? The baseline must
// re-derive per-page state — one struct-page update plus one PTE
// verification per tracked page, plus a VMA-tree op per region — so
// its bill grows linearly with the working set. File-only memory
// replays extent-grain metadata: one inode op per file, one extent op
// per run, one range-table op per entry — counts that stay flat as the
// working set grows, because a contiguous working set is ONE extent no
// matter how many pages it spans.
func recovery() (*Result, error) {
	table := metrics.NewTable(
		"rebuild memory-management metadata after power loss (µs, simulated)",
		"working_set", "baseline_pages", "baseline_us",
		"pmfs_extents", "pmfs_us", "ranges_entries", "ranges_us")

	sizes := []uint64{1024, 4096, 16384, 65536} // pages: 4 MiB .. 256 MiB
	var flat []uint64
	for _, pages := range sizes {
		m, err := NewMachine()
		if err != nil {
			return nil, err
		}
		// Baseline working set: a populated anonymous mapping, so the
		// kernel tracks one PageInfo per page.
		as, err := m.Kernel.NewAddressSpace()
		if err != nil {
			return nil, err
		}
		if _, err := as.Mmap(vm.MmapRequest{Pages: pages, Prot: rw, Anon: true, Populate: true}); err != nil {
			return nil, err
		}
		// PMFS working set: one persistent file of the same size — a
		// single extent under the Extent policy.
		f, err := m.Pmfs.Create("/wset", memfs.CreateOptions{Durability: memfs.Persistent})
		if err != nil {
			return nil, err
		}
		if err := f.EnsureContiguous(pages); err != nil {
			return nil, err
		}
		// Ranges working set: the same size as a process's volatile
		// heap segment, translated by range-table entries.
		p, err := m.FOM.NewProcess(core.Ranges)
		if err != nil {
			return nil, err
		}
		if _, err := p.AllocVolatile(pages, rw); err != nil {
			return nil, err
		}

		// Power fails: DRAM contents are lost; NVM survives.
		m.Memory.Crash()

		var basePages uint64
		baseT, err := timeOp(m.Clock, func() error {
			basePages = m.Kernel.RecoverMetadata()
			return nil
		})
		if err != nil {
			return nil, err
		}
		var pmfsExtents uint64
		pmfsT, err := timeOp(m.Clock, func() error {
			_, pmfsExtents = m.Pmfs.RecoverMetadata()
			return nil
		})
		if err != nil {
			return nil, err
		}
		var rangeRecords uint64
		rangesT, err := timeOp(m.Clock, func() error {
			rangeRecords = m.FOM.RecoverMetadata()
			return nil
		})
		if err != nil {
			return nil, err
		}
		flat = append(flat, rangeRecords)
		table.AddRow(
			fmt.Sprintf("%dMB", pages<<mem.FrameShift>>20),
			fmt.Sprint(basePages), us(baseT),
			fmt.Sprint(pmfsExtents), us(pmfsT),
			fmt.Sprint(rangeRecords), us(rangesT))
	}
	return &Result{
		ID:     "recovery",
		Title:  "crash recovery cost",
		Paper:  "§3.1/§4 consequence",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"baseline_us grows linearly with the working set (PageMetaOp + PTEWrite per page);",
			fmt.Sprintf("pmfs/ranges replay extent-grain journals whose record counts stay flat (%d..%d records across a 64x size sweep),", flat[0], flat[len(flat)-1]),
			"so recovery virtual time is O(extents) — effectively O(1) in the working-set size.",
			fmt.Sprintf("journal appends are charged Params.JournalAppend (%d ns) per record by the write-ahead path.", sim.DefaultParams().JournalAppend),
		},
	}, nil
}

// snapshotOpts sizes the snapshot wall-clock benchmarks: a 2000-op
// trace checkpointed at its midpoint.
var snapshotOpts = check.Options{Seed: 1, Ops: 2000, CPUs: 2}

// snapshotSave benchmarks building and serializing a checkpoint of
// every harness configuration. The simulated table reports the stable
// facts (op counts, encoded sizes); the host wall-clock cost of the
// save path is what -benchjson records for this experiment.
func snapshotSave() (*Result, error) {
	table := metrics.NewTable(
		"checkpoint a mid-trace machine (sizes are deterministic)",
		"config", "snap_at", "trace_ops", "snapshot_bytes")
	for _, cfg := range check.AllConfigs {
		snap, err := check.BuildSnapshot(cfg, snapshotOpts, snapshotOpts.Ops/2)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := snap.Save(&buf); err != nil {
			return nil, err
		}
		table.AddRow(cfg, fmt.Sprint(snap.Meta.SnapAt), fmt.Sprint(snap.Meta.TraceOps), fmt.Sprint(buf.Len()))
	}
	return &Result{
		ID:     "snapshot-save",
		Title:  "snapshot save",
		Paper:  "persistence subsystem",
		Tables: []*metrics.Table{table},
		Notes:  []string{"wall-clock save cost is tracked in BENCH_wallclock.json under id snapshot-save."},
	}, nil
}

// snapshotRestore benchmarks the full restore path: decode the
// on-media bytes, reconstruct the machine, and prove bit-identity
// (machine-state diff + memory checksum + invariant sweep).
func snapshotRestore() (*Result, error) {
	table := metrics.NewTable(
		"restore + verify a checkpoint (verification is exact, not sampled)",
		"config", "snap_at", "verified")
	for _, cfg := range check.AllConfigs {
		snap, err := check.BuildSnapshot(cfg, snapshotOpts, snapshotOpts.Ops/2)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := snap.Save(&buf); err != nil {
			return nil, err
		}
		loaded, err := snapshot.Load(&buf)
		if err != nil {
			return nil, err
		}
		if err := check.VerifySnapshot(loaded); err != nil {
			return nil, fmt.Errorf("%s: %w", cfg, err)
		}
		table.AddRow(cfg, fmt.Sprint(loaded.Meta.SnapAt), "bit-identical")
	}
	return &Result{
		ID:     "snapshot-restore",
		Title:  "snapshot restore + verify",
		Paper:  "persistence subsystem",
		Tables: []*metrics.Table{table},
		Notes:  []string{"wall-clock restore cost is tracked in BENCH_wallclock.json under id snapshot-restore."},
	}, nil
}
