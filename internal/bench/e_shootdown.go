package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/usermode"
	"repro/internal/vm"
)

func init() {
	register(Experiment{
		ID:    "shootdown",
		Title: "unmap a shared file from many processes: per-page teardown vs single-entry shootdown",
		Paper: "§3.2/§4.3: 'unmapping a file can be a single operation to update the range table and shoot down the entry in the TLB'",
		Run:   shootdown,
	})
}

func shootdown() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	const procs = 4
	table := metrics.NewTable(
		fmt.Sprintf("tear down a shared mapping in %d processes (µs, simulated, total)", procs),
		"size_MB", "baseline_us", "fom_ranges_us", "fom_sharedpt_us", "usermode_us")

	// Usermode runs on its own small machine: the standard machine's
	// regions are fully assigned to the baseline pool and file stores,
	// and the grant pool must not overlap anything else.
	const umPoolFrames = uint64(512) << 20 >> mem.FrameShift
	uparams := machineParams()
	um := newSimMachine(&uparams, benchCPUs)
	umem, err := mem.New(um.Clock(), &uparams, mem.Config{DRAMFrames: umPoolFrames})
	if err != nil {
		return nil, err
	}
	gt, err := usermode.NewGrantTable(um.Clock(), &uparams, umem, usermode.Config{
		PoolBase: 0, PoolFrames: umPoolFrames,
	})
	if err != nil {
		return nil, err
	}
	creator, err := gt.NewProcessOn(um.CPU(0))
	if err != nil {
		return nil, err
	}

	for _, mb := range []uint64{2, 16, 128} {
		pages := mb << 20 >> mem.FrameShift

		// Baseline: each process unmaps page by page (PTE clears +
		// TLB work per page or a full flush).
		bf, err := tmpfsFileOfKB(m, fmt.Sprintf("/sd-%d", mb), mb*1024)
		if err != nil {
			return nil, err
		}
		var spaces []*vm.AddressSpace
		var vas []mem.VirtAddr
		for i := 0; i < procs; i++ {
			as, err := m.Kernel.NewAddressSpace()
			if err != nil {
				return nil, err
			}
			va, err := as.Mmap(vm.MmapRequest{Pages: pages, Prot: ro, File: bf, Populate: true})
			if err != nil {
				return nil, err
			}
			spaces = append(spaces, as)
			vas = append(vas, va)
		}
		baseT, err := timeOp(m.Clock, func() error {
			for i, as := range spaces {
				if err := as.Munmap(vas[i], pages); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}

		// File-only memory, both hardware assumptions.
		ff, err := m.FOM.CreateContiguousFile(fmt.Sprintf("/sdfom-%d", mb), pages, memfs.CreateOptions{}, true)
		if err != nil {
			return nil, err
		}
		times := map[core.TranslationMode]sim.Time{}
		for _, mode := range []core.TranslationMode{core.Ranges, core.SharedPT} {
			var fprocs []*core.Process
			var maps []*core.Mapping
			for i := 0; i < procs; i++ {
				p, err := m.FOM.NewProcess(mode)
				if err != nil {
					return nil, err
				}
				mp, err := p.MapFile(ff, ro)
				if err != nil {
					return nil, err
				}
				fprocs = append(fprocs, p)
				maps = append(maps, mp)
			}
			d, err := timeOp(m.Clock, func() error {
				for i, p := range fprocs {
					if err := p.Unmap(maps[i]); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			times[mode] = d
		}

		// Usermode: the object is one refcounted shared segment; each
		// process's teardown is a grant-queue round trip plus a single
		// grant-table revoke, whatever the size.
		seg, err := gt.NewShared(creator, pages)
		if err != nil {
			return nil, err
		}
		var uprocs []*usermode.Process
		for i := 0; i < procs; i++ {
			up, err := gt.NewProcessOn(um.CPU(0))
			if err != nil {
				return nil, err
			}
			if err := up.MapShared(seg); err != nil {
				return nil, err
			}
			uprocs = append(uprocs, up)
		}
		umT, err := timeOp(um.Clock(), func() error {
			for _, up := range uprocs {
				if err := up.UnmapShared(seg); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprint(mb), us(baseT), us(times[core.Ranges]), us(times[core.SharedPT]), us(umT))
	}

	cpuTable, err := shootdownCPUSweep()
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "shootdown",
		Title:  "unmap + shootdown at scale",
		Paper:  "§3.2/§4.3",
		Tables: []*metrics.Table{table, cpuTable},
		Notes: []string{
			"the baseline clears one PTE per page per process; file-only memory removes one range entry (or unlinks one subtree per 2 MiB/1 GiB) and invalidates a single translation per process; usermode has no translations at all — releasing a shared segment is one grant-queue round trip plus one grant-table revoke per process, independent of size",
			"the CPU sweep unmaps a mapping whose address space ran on every CPU: a whole-mapping munmap coalesces its invalidations into one IPI round (mmu_gather batching) but still pays per-page PTE/rmap teardown, page-at-a-time release pays pages × CPUs IPI work, and the range shootdown stays one range-TLB invalidation per CPU; the usermode release sends no IPIs and is flat in both axes",
		},
	}, nil
}

// shootdownCPUSweepSizeMB is the fixed mapping size of the CPU sweep.
const shootdownCPUSweepSizeMB = 16

// shootdownCPUSweep holds the mapping size fixed and sweeps the CPU
// count 1–16. The mapped address space/process is marked as having run
// on every CPU, so every unmap must reach all of them. The baseline is
// measured twice: one whole-mapping munmap, whose invalidations
// coalesce into a single IPI round (the mmu_gather batching), and the
// same pages unmapped one syscall at a time, where every page pays its
// own shootdown round — the unbatched cost that grows as pages × CPUs.
func shootdownCPUSweep() (*metrics.Table, error) {
	table := metrics.NewTable(
		fmt.Sprintf("tear down one %d MB shared mapping vs CPU count (µs, simulated)", shootdownCPUSweepSizeMB),
		"cpus", "base_batched_us", "base_perpage_us", "fom_ranges_us", "fom_sharedpt_us", "usermode_us", "perpage_ipis")
	pages := uint64(shootdownCPUSweepSizeMB) << 20 >> mem.FrameShift

	for _, ncpu := range []int{1, 2, 4, 8, 16} {
		m, err := NewMachineN(ncpu)
		if err != nil {
			return nil, err
		}

		// Baseline, batched: one munmap syscall covering the whole
		// mapping. Per-page PTE/rmap teardown is unchanged, but the TLB
		// invalidations coalesce into one shootdown round.
		bf, err := tmpfsFileOfKB(m, "/sdcpu", shootdownCPUSweepSizeMB*1024)
		if err != nil {
			return nil, err
		}
		as, err := m.Kernel.NewAddressSpace()
		if err != nil {
			return nil, err
		}
		va, err := as.Mmap(vm.MmapRequest{Pages: pages, Prot: ro, File: bf, Populate: true})
		if err != nil {
			return nil, err
		}
		for _, cpu := range m.Sim.CPUs() {
			as.RunOn(cpu)
		}
		batchT, err := timeOp(m.Clock, func() error { return as.Munmap(va, pages) })
		if err != nil {
			return nil, err
		}

		// Baseline, unbatched: the same mapping released one page per
		// syscall (a free() pattern a batching kernel cannot help), so
		// every page is its own IPI round to every other CPU.
		as2, err := m.Kernel.NewAddressSpace()
		if err != nil {
			return nil, err
		}
		va2, err := as2.Mmap(vm.MmapRequest{Pages: pages, Prot: ro, File: bf, Populate: true})
		if err != nil {
			return nil, err
		}
		for _, cpu := range m.Sim.CPUs() {
			as2.RunOn(cpu)
		}
		ipis0 := machineIPIs(m.Sim)
		perPageT, err := timeOp(m.Clock, func() error {
			for p := uint64(0); p < pages; p++ {
				if err := as2.Munmap(va2+mem.VirtAddr(p*mem.FrameSize), 1); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		ipis := machineIPIs(m.Sim) - ipis0

		ff, err := m.FOM.CreateContiguousFile("/sdfomcpu", pages, memfs.CreateOptions{}, true)
		if err != nil {
			return nil, err
		}
		times := map[core.TranslationMode]sim.Time{}
		for _, mode := range []core.TranslationMode{core.Ranges, core.SharedPT} {
			p, err := m.FOM.NewProcess(mode)
			if err != nil {
				return nil, err
			}
			mp, err := p.MapFile(ff, ro)
			if err != nil {
				return nil, err
			}
			// The process's threads ran everywhere too: its shootdown
			// mask covers every CPU, so the unmap's single round still
			// pays one invalidation per CPU.
			for _, cpu := range m.Sim.CPUs() {
				p.RunOn(cpu)
			}
			d, err := timeOp(m.Clock, func() error { return p.Unmap(mp) })
			if err != nil {
				return nil, err
			}
			times[mode] = d
		}

		// Usermode: no translations exist, so a process's threads having
		// run on every CPU leaves nothing to invalidate anywhere — the
		// release is the same two queue/table operations at any CPU count.
		const umPoolFrames = uint64(64) << 20 >> mem.FrameShift
		uparams := machineParams()
		um := newSimMachine(&uparams, ncpu)
		umem, err := mem.New(um.Clock(), &uparams, mem.Config{DRAMFrames: umPoolFrames})
		if err != nil {
			return nil, err
		}
		gt, err := usermode.NewGrantTable(um.Clock(), &uparams, umem, usermode.Config{
			PoolBase: 0, PoolFrames: umPoolFrames,
		})
		if err != nil {
			return nil, err
		}
		creator, err := gt.NewProcessOn(um.CPU(0))
		if err != nil {
			return nil, err
		}
		seg, err := gt.NewShared(creator, pages)
		if err != nil {
			return nil, err
		}
		up, err := gt.NewProcessOn(um.CPU(0))
		if err != nil {
			return nil, err
		}
		if err := up.MapShared(seg); err != nil {
			return nil, err
		}
		umT, err := timeOp(um.Clock(), func() error { return up.UnmapShared(seg) })
		if err != nil {
			return nil, err
		}

		table.AddRow(fmt.Sprint(ncpu), us(batchT), us(perPageT), us(times[core.Ranges]), us(times[core.SharedPT]),
			us(umT), fmt.Sprint(ipis))
	}
	return table, nil
}

// machineIPIs totals "ipis_sent" across all CPUs.
func machineIPIs(m *sim.Machine) uint64 {
	var n uint64
	for _, c := range m.CPUs() {
		n += c.Stats().Value("ipis_sent")
	}
	return n
}
