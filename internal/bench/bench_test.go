package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablate-extent", "ablate-huge", "ablate-pt", "ablate-slab",
		"faults", "fig6a", "fig6b", "fig7", "fig8", "fig9",
		"fragmentation", "headroom", "heapchurn",
		"metadata", "o1", "online-ckpt", "pinning", "readvsmap", "reclaim",
		"recovery", "scale", "shootdown",
		"snapshot-restore", "snapshot-save", "tenants", "tiering",
		"walkdepth", "zero",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry holds %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	if _, ok := ByID("fig6a"); !ok {
		t.Fatal("ByID failed")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Fatal("ByID found nonsense")
	}
}

// runExp runs one experiment and returns its first table's cells as
// float columns keyed by header.
func runExp(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(r.Tables) == 0 || len(r.Tables[0].Rows) == 0 {
		t.Fatalf("%s: empty result", id)
	}
	return r
}

// col extracts a numeric column (by index) from a table.
func col(t *testing.T, r *Result, tableIdx, colIdx int) []float64 {
	t.Helper()
	var out []float64
	for _, row := range r.Tables[tableIdx].Rows {
		s := strings.TrimSuffix(row[colIdx], "x")
		s = strings.TrimSuffix(s, "%")
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("cell %q not numeric: %v", row[colIdx], err)
		}
		out = append(out, v)
	}
	return out
}

func TestFig6aShape(t *testing.T) {
	r := runExp(t, "fig6a")
	demand := col(t, r, 0, 1)
	populate := col(t, r, 0, 2)
	// Demand mmap is flat: last within 2x of first.
	if demand[len(demand)-1] > 2*demand[0] {
		t.Fatalf("demand mmap not flat: %v", demand)
	}
	// Populate is linear in pages above its fixed syscall cost: the
	// marginal cost from the smallest size scales with the size ratio.
	mid := len(populate) / 2
	sizeRatio := col(t, r, 0, 0)[len(populate)-1] / col(t, r, 0, 0)[mid]
	marginal := (populate[len(populate)-1] - populate[0]) / (populate[mid] - populate[0])
	if marginal < 0.5*sizeRatio || marginal > 2*sizeRatio {
		t.Fatalf("populate mmap marginal growth %.1f, want ~size ratio %.1f: %v",
			marginal, sizeRatio, populate)
	}
	// Crossover: populate exceeds demand at large sizes.
	if populate[len(populate)-1] < 10*demand[len(demand)-1] {
		t.Fatalf("populate does not dominate demand at 4MB: pop=%v dem=%v",
			populate[len(populate)-1], demand[len(demand)-1])
	}
}

func TestFig6bShape(t *testing.T) {
	r := runExp(t, "fig6b")
	ratios := col(t, r, 0, 3)
	last := ratios[len(ratios)-1]
	if last < 40 {
		t.Fatalf("demand/populated touch ratio at 4MB = %.1f, want > 40 (paper: >50)", last)
	}
}

func TestFig7Shape(t *testing.T) {
	r := runExp(t, "fig7")
	pages := col(t, r, 0, 0)
	ratios := col(t, r, 0, 3)
	for i, rt := range ratios {
		// Fixed inode/extent setup is visible at tiny sizes; the
		// paper's parity claim is about large counts (~6% at 12k
		// pages), where the bound tightens.
		lo, hi := 0.6, 1.5
		if pages[i] >= 64 {
			lo, hi = 0.8, 1.25
		}
		if rt < lo || rt > hi {
			t.Fatalf("row %d (%v pages): pmfs/malloc = %.3f, want [%v,%v]", i, pages[i], rt, lo, hi)
		}
	}
	// Large-count parity: within 10% at the top of the sweep.
	if last := ratios[len(ratios)-1]; last < 0.9 || last > 1.1 {
		t.Fatalf("pmfs/malloc at 16k pages = %.3f, want within 10%%", last)
	}
}

func TestFaultsShape(t *testing.T) {
	r := runExp(t, "faults")
	mallocF := col(t, r, 0, 1)
	pmfsF := col(t, r, 0, 2)
	pages := col(t, r, 0, 0)
	for i := range pages {
		if mallocF[i] < pages[i] || pmfsF[i] < pages[i] {
			t.Fatalf("row %d: faults (%v, %v) below page count %v", i, mallocF[i], pmfsF[i], pages[i])
		}
	}
}

func TestFig8Shape(t *testing.T) {
	r := runExp(t, "fig8")
	base := col(t, r, 0, 1)
	nth := col(t, r, 0, 3)
	rng := col(t, r, 0, 4)
	// At the largest size the Nth FOM map beats baseline by > 50x.
	last := len(base) - 1
	if base[last] < 50*nth[last] {
		t.Fatalf("shared-pt nth map not ≫ baseline: base=%v nth=%v", base[last], nth[last])
	}
	// Ranges map is flat across sizes.
	if rng[last] > 2*rng[0] {
		t.Fatalf("range map not flat: %v", rng)
	}
}

func TestFig9Shape(t *testing.T) {
	r := runExp(t, "fig9")
	ptMap := col(t, r, 0, 1)
	rgMap := col(t, r, 0, 2)
	last := len(ptMap) - 1
	if ptMap[last] < 100*rgMap[last] {
		t.Fatalf("range map not ≫ cheaper at 1GB: pt=%v rg=%v", ptMap[last], rgMap[last])
	}
	// Access table: range TLB per-touch cost must be below page TLB.
	pt := col(t, r, 1, 1)
	if pt[1] >= pt[0] {
		t.Fatalf("range TLB per-touch (%v) not below page TLB (%v)", pt[1], pt[0])
	}
}

func TestO1Shape(t *testing.T) {
	r := runExp(t, "o1")
	basePop := col(t, r, 0, 1)
	fomRG := col(t, r, 0, 3)
	last := len(basePop) - 1
	// FOM ranges flat from 4KB to 1GB.
	if fomRG[last] > 2*fomRG[0] {
		t.Fatalf("FOM ranges not O(1): %v", fomRG)
	}
	// Baseline grows by orders of magnitude.
	if basePop[last] < 1000*basePop[0] {
		t.Fatalf("baseline populate not linear: %v", basePop)
	}
}

func TestReadVsMapShape(t *testing.T) {
	r := runExp(t, "readvsmap")
	times := col(t, r, 0, 1)
	read, cold, warm := times[0], times[1], times[2]
	if read >= cold {
		t.Fatalf("read() (%v) not cheaper than cold mapped access (%v)", read, cold)
	}
	if warm >= read {
		t.Fatalf("warm mapped access (%v) not cheaper than read() (%v)", warm, read)
	}
}

func TestReclaimShape(t *testing.T) {
	r := runExp(t, "reclaim")
	times := col(t, r, 0, 1)
	if times[0] < 100*times[1] {
		t.Fatalf("file discard (%v) not ≫ cheaper than page scan (%v)", times[1], times[0])
	}
}

func TestZeroShape(t *testing.T) {
	r := runExp(t, "zero")
	eager := col(t, r, 0, 1)
	epoch := col(t, r, 0, 2)
	last := len(eager) - 1
	if eager[last] < 100*eager[0] {
		t.Fatalf("eager zero not linear: %v", eager)
	}
	if epoch[last] != epoch[0] {
		t.Fatalf("epoch erase not constant: %v", epoch)
	}
}

func TestMetadataShape(t *testing.T) {
	r := runExp(t, "metadata")
	basePages := col(t, r, 0, 1)
	extents := col(t, r, 0, 3)
	last := len(basePages) - 1
	if basePages[last] < 60*basePages[0] {
		t.Fatalf("baseline metadata not linear: %v", basePages)
	}
	if extents[last] != extents[0] {
		t.Fatalf("fom extents not constant: %v", extents)
	}
}

func TestAblations(t *testing.T) {
	for _, id := range []string{"ablate-pt", "ablate-huge", "ablate-slab", "ablate-extent"} {
		r := runExp(t, id)
		if len(r.Notes) == 0 {
			t.Fatalf("%s: missing notes", id)
		}
	}
}

func TestWalkDepthShape(t *testing.T) {
	r := runExp(t, "walkdepth")
	refs := col(t, r, 0, 1)
	if refs[3] != 35 {
		t.Fatalf("virtualized 5-on-5 refs = %v, want 35 (the paper's figure)", refs[3])
	}
	if refs[4] != 1 {
		t.Fatalf("range walk refs = %v, want 1", refs[4])
	}
	// Model vs mechanism: measured native depths match.
	measured := col(t, r, 1, 1)
	if measured[0] != 4 || measured[1] != 5 {
		t.Fatalf("measured walk depths = %v", measured)
	}
}

func TestPinningShape(t *testing.T) {
	r := runExp(t, "pinning")
	base := col(t, r, 0, 1)
	fom := col(t, r, 0, 2)
	last := len(base) - 1
	if base[last] < 100*base[0] {
		t.Fatalf("mlock not linear: %v", base)
	}
	if fom[last] != fom[0] {
		t.Fatalf("fom pinning not constant: %v", fom)
	}
	if fom[last] >= base[0] {
		t.Fatalf("fom pinning (%v) not below smallest mlock (%v)", fom[last], base[0])
	}
}

func TestFragmentationShape(t *testing.T) {
	r := runExp(t, "fragmentation")
	for i, row := range r.Tables[0].Rows {
		if row[4] != "yes" {
			t.Fatalf("round %d: 1 GiB extent unallocatable after churn", i+1)
		}
	}
	orders := col(t, r, 0, 3)
	for i, o := range orders {
		if o < 18 {
			t.Fatalf("round %d: largest free order %v, want 18 (1 GiB)", i+1, o)
		}
	}
}

func TestShootdownShape(t *testing.T) {
	r := runExp(t, "shootdown")
	base := col(t, r, 0, 1)
	rng := col(t, r, 0, 2)
	spt := col(t, r, 0, 3)
	last := len(base) - 1
	if base[last] < 50*rng[last] {
		t.Fatalf("range shootdown (%v) not ≫ cheaper than baseline (%v)", rng[last], base[last])
	}
	// Range teardown flat across sizes.
	if rng[last] > 2*rng[0] {
		t.Fatalf("range teardown not flat: %v", rng)
	}
	if spt[last] >= base[last] {
		t.Fatalf("shared-pt teardown (%v) not below baseline (%v)", spt[last], base[last])
	}
	// Usermode teardown (one queue round trip + one grant revoke per
	// process) is flat across sizes and at least as cheap as the range
	// shootdown.
	um := col(t, r, 0, 4)
	if um[last] != um[0] {
		t.Fatalf("usermode teardown not flat across sizes: %v", um)
	}
	if um[last] > rng[last] {
		t.Fatalf("usermode teardown (%v) above range shootdown (%v)", um[last], rng[last])
	}

	// CPU sweep (second table): unbatched page-at-a-time teardown grows
	// with the CPU count (one IPI round per page), the batched munmap's
	// single coalesced round keeps it far below that, and the range
	// teardown stays one range-TLB invalidation per CPU — below both.
	cpus := col(t, r, 1, 0)
	batchCPU := col(t, r, 1, 1)
	perPageCPU := col(t, r, 1, 2)
	rngCPU := col(t, r, 1, 3)
	umCPU := col(t, r, 1, 5)
	ipis := col(t, r, 1, 6)
	lastC := len(cpus) - 1
	// Usermode sends no IPIs and has nothing to invalidate, so its
	// release cost is identical at every CPU count.
	for i := range umCPU {
		if umCPU[i] != umCPU[0] {
			t.Fatalf("usermode release not flat across CPU counts: %v", umCPU)
		}
	}
	if perPageCPU[lastC] < 10*perPageCPU[0] {
		t.Fatalf("unbatched shootdown not growing with CPU count: %v", perPageCPU)
	}
	if ipis[0] != 0 || ipis[lastC] <= ipis[1] {
		t.Fatalf("unbatched IPI count not growing with CPU count: %v", ipis)
	}
	if perPageCPU[lastC] < 5*batchCPU[lastC] {
		t.Fatalf("coalescing not paying off at %v CPUs: batched %v vs per-page %v",
			cpus[lastC], batchCPU[lastC], perPageCPU[lastC])
	}
	for i := range cpus {
		// Coalescing removes the baseline's IPI storm, so the remaining
		// gap is its per-page PTE/rmap teardown: ~an order of magnitude
		// here, vs the unbounded pages × CPUs gap of the unbatched path.
		if batchCPU[i] < 10*rngCPU[i] {
			t.Fatalf("at %v CPUs range shootdown (%v) not ≪ batched baseline (%v)", cpus[i], rngCPU[i], batchCPU[i])
		}
		if perPageCPU[i] < 30*rngCPU[i] {
			t.Fatalf("at %v CPUs range shootdown (%v) not ≪ unbatched baseline (%v)", cpus[i], rngCPU[i], perPageCPU[i])
		}
		// One invalidation per CPU: growth bounded by the CPU ratio.
		// (The 1-CPU row pays no IPI at all, so scale from the 2-CPU
		// row, the first that includes a send+receive round.)
		if i > 1 && rngCPU[i] > rngCPU[1]*cpus[i]/cpus[1]+1 {
			t.Fatalf("range shootdown above one-invalidation-per-CPU bound: %v", rngCPU)
		}
	}
}

// TestShootdownDeterminism runs the full E16 sweep (size table and CPU
// sweep, machines from 1 to 16 CPUs) twice in-process and requires
// byte-identical metrics output — the multi-core determinism guarantee.
func TestShootdownDeterminism(t *testing.T) {
	e, ok := ByID("shootdown")
	if !ok {
		t.Fatal("shootdown not registered")
	}
	r1, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.String() != r2.String() {
		t.Fatalf("two E16 runs differ:\n%s\n---\n%s", r1.String(), r2.String())
	}
}

func TestHeadroomShape(t *testing.T) {
	r := runExp(t, "headroom")
	rows := r.Tables[0].Rows
	persistent := col(t, r, 0, 1)
	cache := col(t, r, 0, 2)
	// Persistent data must reach 90% of capacity, and caches must
	// shrink monotonically as it grows.
	if persistent[len(persistent)-1] <= persistent[0] {
		t.Fatalf("persistent data did not grow: %v", persistent)
	}
	for i := 1; i < len(cache); i++ {
		if cache[i] > cache[i-1] {
			t.Fatalf("cache grew under pressure at row %d: %v", i, cache)
		}
	}
	if rows[len(rows)-1][4] == "0" {
		t.Fatal("no caches were discarded at 90% utilization")
	}
}

func TestScaleShape(t *testing.T) {
	r := runExp(t, "scale")
	fom := col(t, r, 0, 1)
	// FOM grows only with extent count: 1 TiB must cost less than
	// 1024x the 1 GiB cost (it is ~40x here), and stay in microseconds.
	if fom[len(fom)-1] > 1000*fom[0] {
		t.Fatalf("FOM at 1TB not O(extents): %v", fom)
	}
	if fom[len(fom)-1] > 1000 { // µs
		t.Fatalf("1 TiB allocation above a millisecond: %v µs", fom[len(fom)-1])
	}
}

func TestHeapChurnShape(t *testing.T) {
	r := runExp(t, "heapchurn")
	perOp := col(t, r, 0, 2)
	kernelOps := col(t, r, 0, 3)
	if perOp[0] >= perOp[1] {
		t.Fatalf("arena heap (%v ns/op) not faster than mmap-per-object (%v)", perOp[0], perOp[1])
	}
	if kernelOps[0] > 100 {
		t.Fatalf("arena heap issued %v kernel ops, want a handful", kernelOps[0])
	}
}

func TestResultString(t *testing.T) {
	r := runExp(t, "zero")
	s := r.String()
	if !strings.Contains(s, "zero") || !strings.Contains(s, "note:") {
		t.Fatalf("render missing pieces: %q", s)
	}
}

// TestDeterminism: two runs of the same experiment must produce
// byte-identical output — the reproducibility guarantee the virtual
// clock and seeded RNG exist for.
func TestDeterminism(t *testing.T) {
	for _, id := range []string{"fig6b", "fig9", "fragmentation", "o1"} {
		e, _ := ByID(id)
		r1, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		r2, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r1.String() != r2.String() {
			t.Fatalf("%s: two runs differ", id)
		}
	}
}
