package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/metrics"
	"repro/internal/vm"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Nth process maps a shared file: private page tables vs shared subtrees vs ranges",
		Paper: "Figure 3 / Figure 8 (efficient shared mappings, PBM)",
		Run:   fig8,
	})
}

func fig8() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable(
		"cost for one more process to map a shared file (µs, simulated)",
		"size_MB", "baseline_populate_us", "fom_first_us", "fom_nth_sharedpt_us", "fom_nth_ranges_us", "baseline/nth_sharedpt")

	for _, mb := range []uint64{2, 8, 32, 128} {
		pages := mb << 20 >> mem.FrameShift

		// Baseline: each process builds its own page tables
		// (MAP_POPULATE so cost is visible at map time, as in shared
		// libraries pre-faulted by many processes).
		bf, err := tmpfsFileOfKB(m, fmt.Sprintf("/f8-%d", mb), mb*1024)
		if err != nil {
			return nil, err
		}
		as, err := m.Kernel.NewAddressSpace()
		if err != nil {
			return nil, err
		}
		baseCost, err := timeOp(m.Clock, func() error {
			_, e := as.Mmap(vm.MmapRequest{Pages: pages, Prot: ro, File: bf, Populate: true})
			return e
		})
		if err != nil {
			return nil, err
		}

		// File-only memory: chunk-aligned shared file.
		ff, err := m.FOM.CreateContiguousFile(fmt.Sprintf("/f8fom-%d", mb), pages, memfs.CreateOptions{}, true)
		if err != nil {
			return nil, err
		}
		p1, err := m.FOM.NewProcess(core.SharedPT)
		if err != nil {
			return nil, err
		}
		firstCost, err := timeOp(m.Clock, func() error {
			_, e := p1.MapFile(ff, ro)
			return e
		})
		if err != nil {
			return nil, err
		}
		p2, err := m.FOM.NewProcess(core.SharedPT)
		if err != nil {
			return nil, err
		}
		nthCost, err := timeOp(m.Clock, func() error {
			_, e := p2.MapFile(ff, ro)
			return e
		})
		if err != nil {
			return nil, err
		}
		p3, err := m.FOM.NewProcess(core.Ranges)
		if err != nil {
			return nil, err
		}
		rangeCost, err := timeOp(m.Clock, func() error {
			_, e := p3.MapFile(ff, ro)
			return e
		})
		if err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprint(mb), us(baseCost), us(firstCost), us(nthCost), us(rangeCost),
			ratio(baseCost, nthCost))
	}
	return &Result{
		ID:     "fig8",
		Title:  "shared mappings via PBM",
		Paper:  "Figure 3 / 8",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"with physically based mappings every process maps the file at the same address, so the Nth map is one subtree link per 2 MiB (or one range entry per extent) instead of one PTE per page",
			"the first file-only-memory map pays chunk construction once; those page tables persist and are shared by all later processes",
		},
	}, nil
}
