package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vm"
)

func init() {
	register(Experiment{
		ID:    "scale",
		Title: "terabyte scale: alloc + map + touch as memory grows to 1 TiB",
		Paper: "§1/§2 premise ('vastly more memory to manage'; 6 TB two-socket servers)",
		Run:   scale,
	})
}

// scale builds a machine with 2 TiB of NVM — the class of capacity the
// paper's introduction anticipates — and measures alloc+map+touch for
// file-only memory all the way to 1 TiB. The baseline is *measured* up
// to 1 GiB, where its per-page loops are already five decimal orders
// above FOM; beyond that its cost is reported as the projected linear
// extrapolation (measuring it directly would only confirm the slope at
// great expense).
func scale() (*Result, error) {
	const nvmFrames = uint64(2) << 40 >> mem.FrameShift // 2 TiB
	const dramFrames = uint64(2) << 30 >> mem.FrameShift
	params := machineParams()
	machine := newSimMachine(&params, benchCPUs)
	clock := machine.Clock()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: dramFrames, NVMFrames: nvmFrames})
	if err != nil {
		return nil, err
	}
	kernel, err := vm.NewKernel(clock, &params, memory, vm.Config{PoolBase: 0, PoolFrames: dramFrames})
	if err != nil {
		return nil, err
	}
	if err := carveBenchArenas(kernel, dramFrames); err != nil {
		return nil, err
	}
	fom, err := core.NewSystem(clock, &params, memory, core.Options{})
	if err != nil {
		return nil, err
	}
	p, err := fom.NewProcess(core.Ranges)
	if err != nil {
		return nil, err
	}

	table := metrics.NewTable(
		"allocate + map + touch first and last byte (µs, simulated)",
		"size", "fom_ranges_us", "extents", "baseline_populate_us")

	// Baseline slope measured at 1 GiB, the populate loop split across
	// the simulated CPUs (each touches the first byte of its share).
	spaces, err := perCPUSpaces(machine, kernel)
	if err != nil {
		return nil, err
	}
	gibPages := uint64(1) << 30 >> mem.FrameShift
	shares := splitPages(gibPages, machine.NumCPUs())
	baseGiB, err := timeOp(clock, func() error {
		return machine.RunParallel(func(c *sim.CPU) error {
			as := spaces[c.ID()]
			va, e := as.Mmap(vm.MmapRequest{Pages: shares[c.ID()], Prot: rw, Anon: true, Populate: true})
			if e != nil {
				return e
			}
			if e := as.Touch(va, true); e != nil {
				return e
			}
			return as.Munmap(va, shares[c.ID()])
		})
	})
	if err != nil {
		return nil, err
	}

	sizes := []struct {
		label string
		bytes uint64
	}{
		{"1GB", 1 << 30}, {"16GB", 16 << 30}, {"128GB", 128 << 30}, {"1TB", 1 << 40},
	}
	for _, sz := range sizes {
		pages := sz.bytes >> mem.FrameShift
		var m *core.Mapping
		fomT, err := timeOp(clock, func() error {
			var e error
			m, e = p.AllocVolatile(pages, rw)
			if e != nil {
				return e
			}
			if e := p.WriteByteAt(m.Base(), 1); e != nil {
				return e
			}
			lastVA, e := m.VAForOffset(m.Bytes() - 1)
			if e != nil {
				return e
			}
			return p.WriteByteAt(lastVA, 2)
		})
		if err != nil {
			return nil, err
		}
		extents := len(m.Segments())
		if err := p.Unmap(m); err != nil {
			return nil, err
		}
		baseline := ""
		if sz.bytes <= 1<<30 {
			baseline = us(baseGiB)
		} else {
			projected := sim.Time(uint64(baseGiB) * (sz.bytes >> 30))
			baseline = us(projected) + " (projected)"
		}
		table.AddRow(sz.label, us(fomT), fmt.Sprint(extents), baseline)
	}
	return &Result{
		ID:     "scale",
		Title:  "terabyte scale",
		Paper:  "§1/§2 premise",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"file-only memory costs O(extents): a 1 TiB allocation is 1024 one-GiB extents mapped by 1024 range entries — microseconds, not the baseline's projected minutes",
			"baseline beyond 1 GiB is a linear extrapolation of its measured 1 GiB cost (its slope is exact in the simulator)",
		},
	}, nil
}
