package bench

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/metrics"
	"repro/internal/vm"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig6a",
		Title: "mmap() cost on tmpfs: MAP_POPULATE vs demand (MAP_PRIVATE)",
		Paper: "Figure 1a / Figure 6a",
		Run:   fig6a,
	})
	register(Experiment{
		ID:    "fig6b",
		Title: "touch one byte per page: pre-populated vs demand faulting",
		Paper: "Figure 1b / Figure 6b (demand >50x populated at large sizes)",
		Run:   fig6b,
	})
	register(Experiment{
		ID:    "readvsmap",
		Title: "read() syscall vs cold mapped access (16 KB)",
		Paper: "§3.2/§4.3 observation: read() of 16KB beats TLB-missing mapped access",
		Run:   runReadVsMap,
	})
}

// tmpfsFileOfKB creates a fully written tmpfs file of the given size.
func tmpfsFileOfKB(m *Machine, name string, kb uint64) (*memfs.File, error) {
	f, err := m.Tmpfs.Create(name, memfs.CreateOptions{})
	if err != nil {
		return nil, err
	}
	pages := kb * 1024 / mem.FrameSize
	if pages == 0 {
		pages = 1
	}
	if err := f.Truncate(pages * mem.FrameSize); err != nil {
		return nil, err
	}
	// Touch every page so the file is fully resident, as the paper's
	// pre-created test files are.
	for p := uint64(0); p < pages; p++ {
		if _, _, err := f.PageFrame(p, true); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func fig6a() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	as, err := m.Kernel.NewAddressSpace()
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable(
		"mmap() latency on a pre-existing tmpfs file (µs, simulated)",
		"size_KB", "demand_us", "populate_us", "populate/demand")
	for _, kb := range workload.SweepSizesKB(4096) {
		f, err := tmpfsFileOfKB(m, fmt.Sprintf("/f6a-%d", kb), kb)
		if err != nil {
			return nil, err
		}
		pages := f.Inode().Pages()

		var vaD mem.VirtAddr
		demand, err := timeOp(m.Clock, func() error {
			var e error
			vaD, e = as.Mmap(vm.MmapRequest{Pages: pages, Prot: ro, File: f})
			return e
		})
		if err != nil {
			return nil, err
		}
		if err := as.Munmap(vaD, pages); err != nil {
			return nil, err
		}

		var vaP mem.VirtAddr
		populate, err := timeOp(m.Clock, func() error {
			var e error
			vaP, e = as.Mmap(vm.MmapRequest{Pages: pages, Prot: ro, File: f, Populate: true})
			return e
		})
		if err != nil {
			return nil, err
		}
		if err := as.Munmap(vaP, pages); err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprint(kb), us(demand), us(populate), ratio(populate, demand))
		f.Close()
	}
	return &Result{
		ID:     "fig6a",
		Title:  "mmap() cost on tmpfs",
		Paper:  "Figure 1a / 6a",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"demand (MAP_PRIVATE) is flat in file size; populate grows linearly — the paper's headline mmap observation",
		},
	}, nil
}

func fig6b() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	as, err := m.Kernel.NewAddressSpace()
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable(
		"total time to touch one byte of each page (µs, simulated)",
		"size_KB", "populated_us", "demand_us", "demand/populated")
	var lastRatio float64
	for _, kb := range workload.SweepSizesKB(4096) {
		f, err := tmpfsFileOfKB(m, fmt.Sprintf("/f6b-%d", kb), kb)
		if err != nil {
			return nil, err
		}
		pages := f.Inode().Pages()

		// Populated mapping: all PTEs exist; touches pay walks only.
		vaP, err := as.Mmap(vm.MmapRequest{Pages: pages, Prot: ro, File: f, Populate: true})
		if err != nil {
			return nil, err
		}
		as.TLB().FlushAll() // cold TLB, as after the mmap call
		popTouch, err := timeOp(m.Clock, func() error {
			for p := uint64(0); p < pages; p++ {
				if err := as.Touch(vaP+mem.VirtAddr(p*mem.FrameSize), false); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if err := as.Munmap(vaP, pages); err != nil {
			return nil, err
		}

		// Demand mapping: every touch faults.
		vaD, err := as.Mmap(vm.MmapRequest{Pages: pages, Prot: ro, File: f})
		if err != nil {
			return nil, err
		}
		demTouch, err := timeOp(m.Clock, func() error {
			for p := uint64(0); p < pages; p++ {
				if err := as.Touch(vaD+mem.VirtAddr(p*mem.FrameSize), false); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if err := as.Munmap(vaD, pages); err != nil {
			return nil, err
		}
		lastRatio = float64(demTouch) / float64(popTouch)
		table.AddRow(fmt.Sprint(kb), us(popTouch), us(demTouch), ratio(demTouch, popTouch))
		f.Close()
	}
	return &Result{
		ID:     "fig6b",
		Title:  "page-touch cost, populated vs demand",
		Paper:  "Figure 1b / 6b",
		Tables: []*metrics.Table{table},
		Notes: []string{
			fmt.Sprintf("demand faulting is %.0fx the populated cost at the largest size (paper: >50x)", lastRatio),
		},
	}, nil
}

func runReadVsMap() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	as, err := m.Kernel.NewAddressSpace()
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable(
		"fetch 16 KB from a tmpfs file (µs, simulated)",
		"method", "time_us")

	f, err := tmpfsFileOfKB(m, "/f-rvm", 16)
	if err != nil {
		return nil, err
	}
	pages := f.Inode().Pages()
	buf := make([]byte, 16*1024)

	readCost, err := timeOp(m.Clock, func() error {
		_, e := f.ReadAt(buf, 0)
		return e
	})
	if err != nil {
		return nil, err
	}

	// Mapped access with cold TLB and demand faults (the case the
	// paper observed losing to read()).
	vaD, err := as.Mmap(vm.MmapRequest{Pages: pages, Prot: ro, File: f})
	if err != nil {
		return nil, err
	}
	coldCost, err := timeOp(m.Clock, func() error {
		return as.ReadBuf(vaD, buf)
	})
	if err != nil {
		return nil, err
	}

	// Warm mapped access for contrast.
	warmCost, err := timeOp(m.Clock, func() error {
		return as.ReadBuf(vaD, buf)
	})
	if err != nil {
		return nil, err
	}

	table.AddRow("read() syscall", us(readCost))
	table.AddRow("mmap cold (demand faults)", us(coldCost))
	table.AddRow("mmap warm (TLB hits)", us(warmCost))
	return &Result{
		ID:     "readvsmap",
		Title:  "read() vs mapped access",
		Paper:  "§3.2/§4.3 observation",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"cold mapped access pays per-page faults and loses to one read(); warm mapped access wins — matching the paper's point that mapping must be cheap to be worth it",
		},
	}, nil
}
