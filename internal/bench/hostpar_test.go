package bench

import (
	"testing"
)

// runSuiteStrings runs every registered experiment under the given
// CPU-count / host-parallel configuration and returns the rendered
// results keyed by experiment ID.
func runSuiteStrings(t *testing.T, cpus int, hostpar bool) map[string]string {
	t.Helper()
	SetCPUs(cpus)
	SetHostParallel(hostpar)
	out := make(map[string]string, len(registry))
	for _, e := range All() {
		r, err := e.Run()
		if err != nil {
			t.Fatalf("cpus=%d hostpar=%v: experiment %s failed: %v", cpus, hostpar, e.ID, err)
		}
		out[e.ID] = r.String()
	}
	return out
}

// TestSerialVsHostParallelMatrix is the bench-layer half of the
// determinism contract (the sim- and vm-layer halves live in their own
// packages): for every registered experiment, at every supported CPU
// count, the rendered result must be byte-identical whether the
// simulated CPU contexts ran one at a time or on real host goroutines.
// Experiments without a RunParallel phase satisfy this trivially; the
// ones with one (fig9, scale, metadata) are where the protocol is
// actually on trial.
func TestSerialVsHostParallelMatrix(t *testing.T) {
	oldCPUs, oldPar := CPUCount(), HostParallel()
	defer func() {
		SetCPUs(oldCPUs)
		SetHostParallel(oldPar)
	}()

	counts := []int{1, 2, 4, 8}
	if testing.Short() {
		counts = []int{1, 4}
	}
	for _, cpus := range counts {
		serial := runSuiteStrings(t, cpus, false)
		par := runSuiteStrings(t, cpus, true)
		for id, want := range serial {
			if got := par[id]; got != want {
				t.Errorf("cpus=%d: experiment %s diverged under -hostpar\n--- serial ---\n%s\n--- hostpar ---\n%s",
					cpus, id, want, got)
			}
		}
	}
}

// TestHostParallelDefaultOutputStable pins the default configuration:
// at -cpus 1 the parallel helpers must degenerate to exactly the
// historical serial code paths, so a 1-CPU serial run and a 1-CPU
// host-parallel run agree with each other (covered above) and the
// split helpers hand the whole workload to CPU 0.
func TestHostParallelDefaultOutputStable(t *testing.T) {
	shares := splitPages(1000, 1)
	if len(shares) != 1 || shares[0] != 1000 {
		t.Fatalf("splitPages(1000, 1) = %v", shares)
	}
	idx := []uint64{5, 1, 900, 0}
	parts := partitionTouches(idx, shares)
	if len(parts) != 1 {
		t.Fatalf("partitionTouches produced %d partitions", len(parts))
	}
	for i, p := range parts[0] {
		if p != idx[i] {
			t.Fatalf("partitionTouches reordered the 1-CPU trace: %v", parts[0])
		}
	}
}

// TestSplitPagesExact: shares sum to the total and differ by at most
// one page, remainder to the lowest IDs.
func TestSplitPagesExact(t *testing.T) {
	for _, tc := range []struct {
		total uint64
		n     int
	}{{10, 3}, {8, 8}, {7, 8}, {1 << 20, 4}, {0, 2}} {
		shares := splitPages(tc.total, tc.n)
		var sum uint64
		for i, s := range shares {
			sum += s
			if i > 0 && shares[i-1] < s {
				t.Fatalf("splitPages(%d,%d) not monotone: %v", tc.total, tc.n, shares)
			}
		}
		if sum != tc.total {
			t.Fatalf("splitPages(%d,%d) sums to %d: %v", tc.total, tc.n, sum, shares)
		}
	}
}

// TestPartitionTouchesCoversTrace: every touch lands in exactly one
// partition, translated to its owner's local index space.
func TestPartitionTouchesCoversTrace(t *testing.T) {
	shares := []uint64{4, 4, 2}
	idx := []uint64{0, 9, 4, 3, 8, 7}
	parts := partitionTouches(idx, shares)
	want := [][]uint64{{0, 3}, {0, 7 - 4}, {9 - 8, 8 - 8}}
	for i := range want {
		if len(parts[i]) != len(want[i]) {
			t.Fatalf("partition %d = %v, want %v", i, parts[i], want[i])
		}
		for j := range want[i] {
			if parts[i][j] != want[i][j] {
				t.Fatalf("partition %d = %v, want %v", i, parts[i], want[i])
			}
		}
	}
}
