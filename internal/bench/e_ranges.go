package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "range translations: map/unmap/access cost vs page-based translation",
		Paper: "Figure 4 / Figure 5 / Figure 9 (range table + range TLB)",
		Run:   fig9,
	})
	register(Experiment{
		ID:    "o1",
		Title: "end-to-end: allocate + map + first access, baseline vs file-only memory",
		Paper: "§3.1/§4.1 Order(1) claim",
		Run:   o1EndToEnd,
	})
}

// newDRAMMachine builds a machine whose file-only-memory store lives
// in DRAM, so fig9 compares translation mechanisms without the NVM
// access penalty differing between the two sides. It honors the
// configured -cpus count; with more than one CPU the baseline pool is
// sharded into per-CPU arenas for the parallel page-table phases.
func newDRAMMachine() (*Machine, error) {
	const (
		dramFrames = uint64(6) << 30 >> mem.FrameShift
		poolFrames = uint64(2) << 30 >> mem.FrameShift
		ptFrames   = uint64(256) << 20 >> mem.FrameShift
	)
	params := machineParams()
	machine := newSimMachine(&params, benchCPUs)
	clock := machine.Clock()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: dramFrames})
	if err != nil {
		return nil, err
	}
	kernel, err := vm.NewKernel(clock, &params, memory, vm.Config{PoolBase: 0, PoolFrames: poolFrames})
	if err != nil {
		return nil, err
	}
	if err := carveBenchArenas(kernel, poolFrames); err != nil {
		return nil, err
	}
	fom, err := core.NewSystem(clock, &params, memory, core.Options{
		PTPoolBase:   mem.Frame(poolFrames),
		PTPoolFrames: ptFrames,
		FSBase:       mem.Frame(poolFrames + ptFrames),
		FSFrames:     dramFrames - poolFrames - ptFrames,
	})
	if err != nil {
		return nil, err
	}
	return &Machine{Sim: machine, Clock: clock, Params: &params, Memory: memory, Kernel: kernel, FOM: fom, PoolFrames: poolFrames}, nil
}

func fig9() (*Result, error) {
	m, err := newDRAMMachine()
	if err != nil {
		return nil, err
	}

	mapTable := metrics.NewTable(
		"install + remove one mapping (µs, simulated)",
		"size_MB", "pagetable_map_us", "range_map_us", "pagetable_unmap_us", "range_unmap_us")
	// Page-based: baseline address spaces populating PTEs, the work
	// split across the simulated CPUs (one space per CPU).
	// Range-based: a file-only-memory process with range translations.
	for _, mb := range []uint64{1, 16, 256, 1024} {
		pages := mb << 20 >> mem.FrameShift
		shares := splitPages(pages, m.Sim.NumCPUs())

		spaces, err := perCPUSpaces(m.Sim, m.Kernel)
		if err != nil {
			return nil, err
		}
		var vas []mem.VirtAddr
		ptMap, err := timeOp(m.Clock, func() error {
			var e error
			vas, e = mmapAll(m.Sim, spaces, shares)
			return e
		})
		if err != nil {
			return nil, err
		}
		ptUnmap, err := timeOp(m.Clock, func() error {
			return munmapAll(m.Sim, spaces, vas, shares)
		})
		if err != nil {
			return nil, err
		}
		for _, as := range spaces {
			if err := as.Destroy(); err != nil {
				return nil, err
			}
		}

		p, err := m.FOM.NewProcess(core.Ranges)
		if err != nil {
			return nil, err
		}
		var mp *core.Mapping
		rgMap, err := timeOp(m.Clock, func() error {
			var e error
			mp, e = p.AllocVolatile(pages, rw)
			return e
		})
		if err != nil {
			return nil, err
		}
		rgUnmap, err := timeOp(m.Clock, func() error { return p.Unmap(mp) })
		if err != nil {
			return nil, err
		}
		mapTable.AddRow(fmt.Sprint(mb), us(ptMap), us(rgMap), us(ptUnmap), us(rgUnmap))
	}

	// Access cost: sparse random touches over a large region. The page
	// TLB thrashes (every touch is a miss + walk); the range TLB holds
	// the single covering entry. On a multi-CPU machine the region is
	// split into one equal sub-region per CPU and the trace partitioned
	// by owning sub-region (order preserved), so each CPU touches only
	// its own address space.
	const regionMB = 512
	const touches = 20000
	regionPages := uint64(regionMB) << 20 >> mem.FrameShift
	idx, err := workload.Touches(workload.Random, regionPages, touches, 0, 99)
	if err != nil {
		return nil, err
	}

	accTable := metrics.NewTable(
		fmt.Sprintf("sparse random access over %d MiB, %d touches (cost per touch, ns)", regionMB, touches),
		"translation", "ns_per_touch", "tlb_miss_rate")

	accShares := splitPages(regionPages, m.Sim.NumCPUs())
	parts := partitionTouches(idx, accShares)
	spaces, err := perCPUSpaces(m.Sim, m.Kernel)
	if err != nil {
		return nil, err
	}
	vasB, err := mmapAll(m.Sim, spaces, accShares)
	if err != nil {
		return nil, err
	}
	for _, as := range spaces {
		as.TLB().Stats().Reset()
	}
	ptAccess, err := timeOp(m.Clock, func() error {
		return m.Sim.RunParallel(func(c *sim.CPU) error {
			as, vaB := spaces[c.ID()], vasB[c.ID()]
			for _, p := range parts[c.ID()] {
				if err := as.Touch(vaB+mem.VirtAddr(p*mem.FrameSize), false); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	var misses uint64
	for _, as := range spaces {
		misses += as.TLB().Stats().Value("misses")
	}
	accTable.AddRow("4K page TLB",
		fmt.Sprintf("%.1f", float64(ptAccess)/touches),
		fmt.Sprintf("%.1f%%", 100*float64(misses)/touches))

	pr, err := m.FOM.NewProcess(core.Ranges)
	if err != nil {
		return nil, err
	}
	mpR, err := pr.AllocVolatile(regionPages, rw)
	if err != nil {
		return nil, err
	}
	pr.RTLB().Stats().Reset()
	rgAccess, err := timeOp(m.Clock, func() error {
		for _, p := range idx {
			if err := pr.Touch(mpR.Base()+mem.VirtAddr(p*mem.FrameSize), false); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rMisses := pr.RTLB().Stats().Value("misses")
	accTable.AddRow("range TLB",
		fmt.Sprintf("%.1f", float64(rgAccess)/touches),
		fmt.Sprintf("%.1f%%", 100*float64(rMisses)/touches))

	return &Result{
		ID:     "fig9",
		Title:  "range translations vs page tables",
		Paper:  "Figures 4/5/9",
		Tables: []*metrics.Table{mapTable, accTable},
		Notes: []string{
			"one range entry maps a gigabyte: map/unmap are flat while page-table costs grow linearly",
			"sparse access: the page TLB misses on ~every touch of a huge region; the range TLB holds one covering entry and never misses",
		},
	}, nil
}

func o1EndToEnd() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable(
		"allocate + map + touch first byte (µs, simulated)",
		"size", "baseline_populate_us", "baseline_demand_us", "fom_ranges_us", "fom_sharedpt_us")

	pSH, err := m.FOM.NewProcess(core.SharedPT)
	if err != nil {
		return nil, err
	}
	pRG, err := m.FOM.NewProcess(core.Ranges)
	if err != nil {
		return nil, err
	}
	// Warm the SharedPT master chunks once so the steady-state cost is
	// visible (the pre-created tables persist across runs by design).
	if warm, err := pSH.AllocVolatile(1<<30>>mem.FrameShift, rw); err == nil {
		if err := pSH.Unmap(warm); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	sizes := []struct {
		label string
		pages uint64
	}{
		{"4KB", 1}, {"64KB", 16}, {"1MB", 256}, {"16MB", 4096},
		{"256MB", 65536}, {"1GB", 262144},
	}
	for _, sz := range sizes {
		as, err := m.Kernel.NewAddressSpace()
		if err != nil {
			return nil, err
		}
		basePop, err := timeOp(m.Clock, func() error {
			va, e := as.Mmap(vm.MmapRequest{Pages: sz.pages, Prot: rw, Anon: true, Populate: true})
			if e != nil {
				return e
			}
			if e := as.Touch(va, true); e != nil {
				return e
			}
			return as.Munmap(va, sz.pages)
		})
		if err != nil {
			return nil, err
		}
		// Baseline demand: map is cheap but only the touched page
		// exists; the linear cost is deferred, not removed (Figure 6b).
		baseDem, err := timeOp(m.Clock, func() error {
			va, e := as.Mmap(vm.MmapRequest{Pages: sz.pages, Prot: rw, Anon: true})
			if e != nil {
				return e
			}
			if e := as.Touch(va, true); e != nil {
				return e
			}
			return as.Munmap(va, sz.pages)
		})
		if err != nil {
			return nil, err
		}
		if err := as.Destroy(); err != nil {
			return nil, err
		}

		fomRG, err := timeOp(m.Clock, func() error {
			mp, e := pRG.AllocVolatile(sz.pages, rw)
			if e != nil {
				return e
			}
			if e := pRG.Touch(mp.Base(), true); e != nil {
				return e
			}
			return pRG.Unmap(mp)
		})
		if err != nil {
			return nil, err
		}
		fomSH, err := timeOp(m.Clock, func() error {
			mp, e := pSH.AllocVolatile(sz.pages, rw)
			if e != nil {
				return e
			}
			if e := pSH.Touch(mp.Base(), true); e != nil {
				return e
			}
			return pSH.Unmap(mp)
		})
		if err != nil {
			return nil, err
		}
		table.AddRow(sz.label, us(basePop), us(baseDem), us(fomRG), us(fomSH))
	}
	return &Result{
		ID:     "o1",
		Title:  "Order(1) end to end",
		Paper:  "§3.1/§4.1",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"file-only memory with range translations is flat from 4KB to 1GB; baseline populate grows linearly; baseline demand defers the same linear cost to access time",
			"fom_sharedpt links at 2 MiB or 1 GiB granularity (one entry per naturally aligned unit): a 1 GiB allocation is a single level-3 link, and the master tables amortize across processes",
		},
	}, nil
}
