package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/memfs"
	"repro/internal/vm"
)

// TestRecoveryShape pins E17's claim directly against the recovery
// cost models: quadrupling the working set quadruples the baseline's
// metadata-rebuild time but leaves the extent-grain designs flat.
func TestRecoveryShape(t *testing.T) {
	measure := func(pages uint64) (base, pmfs, ranges int64) {
		m, err := NewMachine()
		if err != nil {
			t.Fatal(err)
		}
		as, err := m.Kernel.NewAddressSpace()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := as.Mmap(vm.MmapRequest{Pages: pages, Prot: rw, Anon: true, Populate: true}); err != nil {
			t.Fatal(err)
		}
		f, err := m.Pmfs.Create("/wset", memfs.CreateOptions{Durability: memfs.Persistent})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.EnsureContiguous(pages); err != nil {
			t.Fatal(err)
		}
		p, err := m.FOM.NewProcess(core.Ranges)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.AllocVolatile(pages, rw); err != nil {
			t.Fatal(err)
		}
		m.Memory.Crash()
		bt, err := timeOp(m.Clock, func() error { m.Kernel.RecoverMetadata(); return nil })
		if err != nil {
			t.Fatal(err)
		}
		pt, err := timeOp(m.Clock, func() error { m.Pmfs.RecoverMetadata(); return nil })
		if err != nil {
			t.Fatal(err)
		}
		rt, err := timeOp(m.Clock, func() error { m.FOM.RecoverMetadata(); return nil })
		if err != nil {
			t.Fatal(err)
		}
		return int64(bt), int64(pt), int64(rt)
	}

	b1, p1, r1 := measure(4096)
	b4, p4, r4 := measure(16384)
	if b1 <= 0 || p1 <= 0 || r1 <= 0 {
		t.Fatalf("zero recovery cost: baseline=%d pmfs=%d ranges=%d", b1, p1, r1)
	}
	if g := float64(b4) / float64(b1); g < 3 {
		t.Fatalf("baseline recovery grew only %.2fx for 4x pages; want ~linear", g)
	}
	if g := float64(p4) / float64(p1); g > 1.5 {
		t.Fatalf("pmfs recovery grew %.2fx for 4x pages; want flat", g)
	}
	if g := float64(r4) / float64(r1); g > 1.5 {
		t.Fatalf("ranges recovery grew %.2fx for 4x pages; want flat", g)
	}
}

// TestSnapshotExperimentsRun smoke-tests the wall-clock benchmark
// experiments end to end.
func TestSnapshotExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot experiments replay 2000-op traces")
	}
	for _, id := range []string{"recovery", "snapshot-save", "snapshot-restore"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		r, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(r.Tables) == 0 || len(r.Tables[0].Rows) == 0 {
			t.Fatalf("%s: empty result", id)
		}
	}
}
