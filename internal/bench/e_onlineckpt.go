package bench

import (
	"fmt"
	"io"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/usermode"
	"repro/internal/vm"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "online-ckpt",
		Title: "online incremental checkpointing: fence jitter and dirty-set scaling under tenant churn",
		Paper: "§4 persistence: checkpoint cost is O(dirty extents) for extent-structured memory vs O(dirty pages) for the baseline",
		Run:   onlineCkpt,
	})
}

// Online-checkpoint sizing. A smaller tenant fleet than the tenants
// experiment (the fence math, not raw churn, is the subject), fenced
// every ockFenceEvery tenants on each CPU.
const (
	ockTenants    = 600
	ockBursts     = 2
	ockHeapPages  = 48
	ockTmplPages  = 64
	ockSharedHot  = 8
	ockFenceEvery = 24
)

// ockStats accumulates one CPU's checkpoint-fence observations; the
// per-CPU instances are merged in CPU order after the parallel phase.
type ockStats struct {
	checkpoints uint64
	dirtyPages  uint64
	liveUnits   uint64
	deadPages   uint64
	copiedPages uint64
	fence       workload.Latency
}

func newOckStats(n int) []*ockStats {
	out := make([]*ockStats, n)
	for i := range out {
		out[i] = &ockStats{}
	}
	return out
}

func mergeOckStats(stats []*ockStats) *ockStats {
	out := stats[0]
	for _, s := range stats[1:] {
		out.checkpoints += s.checkpoints
		out.dirtyPages += s.dirtyPages
		out.liveUnits += s.liveUnits
		out.deadPages += s.deadPages
		out.copiedPages += s.copiedPages
		out.fence.Merge(&s.fence)
	}
	return out
}

// ockFence is one CPU's epoch-fence machinery: the per-CPU memory
// whose dirty set it drains, the subsystem closure that maps dirty
// frames onto checkpoint units, the per-unit metadata cost (per-page
// records for the baseline, per-extent records for extent-structured
// memory), and the DRAM boundary — dirty frames below it hold the only
// copy of their data and must be copied into the checkpoint stream,
// while NVM-resident frames are already durable in place.
type ockFence struct {
	machine *sim.Machine
	params  *sim.Params
	mem     *mem.Memory
	units   func([]mem.Frame) []ckpt.Unit
	metaOp  sim.Time
	dram    mem.Frame
	stats   *ockStats
}

// run quiesces the CPU's sync domain with an ordered section, captures
// the dirty set, charges the modeled fence cost on the CPU's clock
// (journal append + one metadata record per live unit + a page copy
// per DRAM-resident live dirty frame), and opens the next epoch.
// Dirty frames no subsystem claims are dead — their owner was freed
// before the fence, the allocator's journaled metadata already records
// them as free, and recovery never reads their content — so they cost
// nothing; the baseline's pool claims every dirty frame page-granular,
// so it never gets this discount. The returned duration is the fence
// as the tenant loop observes it — the induced latency spike.
func (f *ockFence) run(c *sim.CPU, peers []*sim.CPU) sim.Time {
	t0 := c.Now()
	f.machine.OrderedDomain(c, peers, func() {
		frames := f.mem.DirtyFrames()
		units := f.units(frames)
		dead := make(map[mem.Frame]bool)
		for _, fr := range ckpt.Uncovered(frames, units) {
			dead[fr] = true
		}
		var copied uint64
		for _, fr := range frames {
			if !dead[fr] && fr < f.dram {
				copied++
			}
		}
		cost := f.params.JournalAppend +
			sim.Time(len(units))*f.metaOp +
			sim.Time(copied)*f.params.ZeroPage
		c.Clock().Advance(cost)
		f.mem.ResetDirty()
		f.stats.checkpoints++
		f.stats.dirtyPages += uint64(len(frames))
		f.stats.liveUnits += uint64(len(units))
		f.stats.deadPages += uint64(len(dead))
		f.stats.copiedPages += copied
	})
	d := c.Now() - t0
	f.stats.fence.Record(d)
	return d
}

func onlineCkpt() (*Result, error) {
	traces, err := workload.TenantTrace(workload.TenantConfig{
		Tenants: ockTenants, Bursts: ockBursts, HeapPages: ockHeapPages, Seed: 23,
	})
	if err != nil {
		return nil, err
	}

	latTable := metrics.NewTable(
		fmt.Sprintf("per-op simulated latency over %d tenants × %d bursts, online checkpoints off vs on (ns)",
			ockTenants, ockBursts),
		"config", "ckpt", "ops", "mean_ns", "p50_ns", "p99_ns", "p99.9_ns", "max_ns")
	scaleTable := metrics.NewTable(
		"checkpoint scaling: what one epoch fence drains and what it costs",
		"config", "checkpoints", "dirty_pages", "live_units", "pages_per_unit", "dead_pages", "copied_pages", "fence_mean_ns", "fence_max_ns")

	for _, cfg := range []struct {
		name string
		run  func([][]workload.TenantOp, bool) (*tenantLats, *ockStats, error)
	}{
		{"baseline", ockBaseline},
		{"fom", ockFOM},
		{"pbm", func(tr [][]workload.TenantOp, ck bool) (*tenantLats, *ockStats, error) {
			return ockCore(tr, core.SharedPT, ck)
		}},
		{"ranges", func(tr [][]workload.TenantOp, ck bool) (*tenantLats, *ockStats, error) {
			return ockCore(tr, core.Ranges, ck)
		}},
		{"usermode", ockUsermode},
	} {
		for _, ck := range []bool{false, true} {
			lat, stats, err := cfg.run(traces, ck)
			if err != nil {
				return nil, fmt.Errorf("online-ckpt %s (ckpt=%v): %w", cfg.name, ck, err)
			}
			mode := "off"
			if ck {
				mode = "on"
			}
			l := &lat.total
			latTable.AddRow(cfg.name, mode, fmt.Sprint(l.Count()), fmt.Sprintf("%.1f", l.Mean()),
				fmt.Sprint(int64(l.Quantile(0.50))), fmt.Sprint(int64(l.Quantile(0.99))),
				fmt.Sprint(int64(l.Quantile(0.999))), fmt.Sprint(int64(l.Max())))
			if ck {
				perUnit := 0.0
				if stats.liveUnits > 0 {
					perUnit = float64(stats.dirtyPages-stats.deadPages) / float64(stats.liveUnits)
				}
				scaleTable.AddRow(cfg.name,
					fmt.Sprint(stats.checkpoints), fmt.Sprint(stats.dirtyPages),
					fmt.Sprint(stats.liveUnits), fmt.Sprintf("%.1f", perUnit),
					fmt.Sprint(stats.deadPages), fmt.Sprint(stats.copiedPages),
					fmt.Sprintf("%.1f", stats.fence.Mean()), fmt.Sprint(int64(stats.fence.Max())))
			}
		}
	}

	return &Result{
		ID:     "online-ckpt",
		Title:  "online incremental checkpointing under tenant churn",
		Paper:  "§4 persistence as a first-class memory-system service",
		Tables: []*metrics.Table{latTable, scaleTable},
		Notes: []string{
			"every CPU runs its own memory + subsystem and fences every 24 locally completed tenants: an ordered section over the pair sync domain captures the dirty set, appends one journal record, writes per-unit metadata, copies DRAM-resident dirty pages, and opens the next epoch — the fence is recorded as one more op, so the on-rows' tails show the induced jitter",
			"the baseline checkpoints anonymous DRAM pages: its pool claims every dirty frame as its own page-granular unit (pages_per_unit = 1, dead_pages = 0 — per-page metadata can't tell live from dead without a page-table walk) and every one must be copied out of DRAM, so the fence is O(dirty pages) in both metadata and data",
			"extent-structured configurations (fom, pbm, ranges, usermode) map the same dirty frames onto whole extents or grants: metadata is O(live dirty extents), frames whose extent was already freed are dead (the journaled allocator metadata records them as free, recovery never reads them), and file data lives in NVM — so fom/pbm/ranges copy nothing at a fence",
			"usermode's grant pool is DRAM-resident, so it pays the copy like the baseline but the metadata like the extent worlds — the O(grants) vs O(pages) split the paper's user-mode story predicts",
			"the fence runs inside Machine.OrderedDomain over the tenant pair, so checkpoints serialize only against the partner CPU, never the whole machine — online checkpointing inherits the sharded-sync-domain scaling",
		},
	}, nil
}

// ockBaseline replays the tenant trace against per-CPU baseline VM
// kernels (populate mode) with dirty tracking, fencing every
// ockFenceEvery tenants when ck is set.
func ockBaseline(traces [][]workload.TenantOp, ck bool) (*tenantLats, *ockStats, error) {
	const cpuPoolFrames = uint64(256) << 20 >> mem.FrameShift
	params := machineParams()
	machine := newSimMachine(&params, benchCPUs)
	n := machine.NumCPUs()
	machine.SetSyncGroups(tenantPairGroups(n))
	defer machine.SetSyncGroups(nil)

	kerns := make([]*vm.Kernel, n)
	fences := make([]*ockFence, n)
	stats := newOckStats(n)
	for i := 0; i < n; i++ {
		c := machine.CPU(i)
		cpuMem, err := mem.New(c.Clock(), &params, mem.Config{DRAMFrames: cpuPoolFrames})
		if err != nil {
			return nil, nil, err
		}
		kerns[i], err = vm.NewKernel(c.Clock(), &params, cpuMem, vm.Config{
			PoolBase: 0, PoolFrames: cpuPoolFrames,
		})
		if err != nil {
			return nil, nil, err
		}
		if ck {
			cpuMem.SetDirtyTracking(true)
		}
		k := kerns[i]
		fences[i] = &ockFence{
			machine: machine, params: &params, mem: cpuMem,
			units:  k.DirtyUnits,
			metaOp: params.PageMetaOp,
			dram:   mem.Frame(cpuPoolFrames),
			stats:  stats[i],
		}
	}

	lats := newTenantLats(n)
	err := machine.RunParallel(func(c *sim.CPU) error {
		lat := lats[c.ID()]
		partner := tenantPartner(c.ID(), n)
		peers := ockPeers(machine, partner)
		var one [1]byte
		tmpl, err := kerns[c.ID()].NewAddressSpaceOn(c)
		if err != nil {
			return err
		}
		tmplVA, err := tmpl.Mmap(vm.MmapRequest{
			Pages: ockTmplPages, Prot: ro, Anon: true, Private: true, Populate: true,
		})
		if err != nil {
			return err
		}
		done := 0
		for ti := c.ID(); ti < len(traces); ti += n {
			fenceDue := ck && done%ockFenceEvery == 0
			var space *vm.AddressSpace
			var heapVA mem.VirtAddr
			var heapPages uint64
			for _, op := range traces[ti] {
				t0 := c.Now()
				switch op.Kind {
				case workload.TenantSpawn:
					space, err = tmpl.ForkOn(c)
					if err != nil {
						return err
					}
					if ti%2 == 1 && partner >= 0 {
						space.MarkRanOn(machine.CPU(partner))
					}
				case workload.TenantMapShared:
					for p := uint64(0); p < ockSharedHot; p++ {
						if err := space.Touch(tmplVA+mem.VirtAddr(p*mem.FrameSize), false); err != nil {
							return err
						}
					}
				case workload.TenantAlloc:
					heapPages = op.Pages
					heapVA, err = space.Mmap(vm.MmapRequest{
						Pages: op.Pages, Prot: rw, Anon: true, Private: true, Populate: true,
					})
					if err != nil {
						return err
					}
				case workload.TenantTouch:
					for p := uint64(0); p < op.Pages; p++ {
						if err := space.WriteBuf(heapVA+mem.VirtAddr(p*mem.FrameSize), one[:]); err != nil {
							return err
						}
					}
				case workload.TenantFree:
					if err := space.Munmap(heapVA, heapPages); err != nil {
						return err
					}
				case workload.TenantExit:
					if err := space.Destroy(); err != nil {
						return err
					}
				}
				lat.record(op.Kind, c.Now()-t0)
				if fenceDue && op.Kind == workload.TenantTouch {
					lat.total.Record(fences[c.ID()].run(c, peers))
					fenceDue = false
				}
			}
			done++
		}
		if ck {
			lat.total.Record(fences[c.ID()].run(c, peers))
		}
		return tmpl.Destroy()
	})
	if err != nil {
		return nil, nil, err
	}
	return mergeTenantLats(lats), mergeOckStats(stats), nil
}

// ockFOM replays the tenant trace against per-CPU extent file systems
// accessed purely through the file interface: a tenant is a file, its
// heap is the file's extent, and touches are one-byte writes — the
// file-only-memory world with no mapping hardware at all.
func ockFOM(traces [][]workload.TenantOp, ck bool) (*tenantLats, *ockStats, error) {
	const (
		cpuDRAMFrames = uint64(16)
		cpuNVMFrames  = uint64(1) << 30 >> mem.FrameShift
	)
	params := machineParams()
	machine := newSimMachine(&params, benchCPUs)
	n := machine.NumCPUs()
	machine.SetSyncGroups(tenantPairGroups(n))
	defer machine.SetSyncGroups(nil)

	fss := make([]*memfs.FS, n)
	shared := make([]*memfs.File, n)
	fences := make([]*ockFence, n)
	stats := newOckStats(n)
	for i := 0; i < n; i++ {
		c := machine.CPU(i)
		cpuMem, err := mem.New(c.Clock(), &params, mem.Config{
			DRAMFrames: cpuDRAMFrames, NVMFrames: cpuNVMFrames,
		})
		if err != nil {
			return nil, nil, err
		}
		fss[i], err = memfs.New("ock", memfs.Extent, c.Clock(), &params, cpuMem,
			mem.Frame(cpuDRAMFrames), cpuNVMFrames)
		if err != nil {
			return nil, nil, err
		}
		shared[i], err = fss[i].Create("/shared", memfs.CreateOptions{})
		if err != nil {
			return nil, nil, err
		}
		if err := shared[i].Truncate(ockTmplPages * mem.FrameSize); err != nil {
			return nil, nil, err
		}
		if ck {
			cpuMem.SetDirtyTracking(true)
		}
		fs := fss[i]
		fences[i] = &ockFence{
			machine: machine, params: &params, mem: cpuMem,
			units:  fs.DirtyUnits,
			metaOp: params.ExtentOp,
			dram:   mem.Frame(cpuDRAMFrames),
			stats:  stats[i],
		}
	}

	lats := newTenantLats(n)
	err := machine.RunParallel(func(c *sim.CPU) error {
		lat := lats[c.ID()]
		peers := ockPeers(machine, tenantPartner(c.ID(), n))
		fs, sh := fss[c.ID()], shared[c.ID()]
		var one [1]byte
		done := 0
		for ti := c.ID(); ti < len(traces); ti += n {
			fenceDue := ck && done%ockFenceEvery == 0
			path := fmt.Sprintf("/t%d", ti)
			var f *memfs.File
			for _, op := range traces[ti] {
				t0 := c.Now()
				switch op.Kind {
				case workload.TenantSpawn:
					var err error
					f, err = fs.OpenFile(path, memfs.OCreate|memfs.OExcl, memfs.CreateOptions{})
					if err != nil {
						return err
					}
				case workload.TenantMapShared:
					for pg := uint64(0); pg < ockSharedHot; pg++ {
						if _, err := sh.Seek(int64(pg*mem.FrameSize), io.SeekStart); err != nil {
							return err
						}
						if _, err := sh.Read(one[:]); err != nil {
							return err
						}
					}
				case workload.TenantAlloc:
					if err := f.Truncate(op.Pages * mem.FrameSize); err != nil {
						return err
					}
				case workload.TenantTouch:
					for pg := uint64(0); pg < op.Pages; pg++ {
						if _, err := f.WriteAt(one[:], pg*mem.FrameSize); err != nil {
							return err
						}
					}
				case workload.TenantFree:
					if err := f.Truncate(0); err != nil {
						return err
					}
				case workload.TenantExit:
					if err := f.Close(); err != nil {
						return err
					}
					if err := fs.Unlink(path); err != nil {
						return err
					}
				}
				lat.record(op.Kind, c.Now()-t0)
				if fenceDue && op.Kind == workload.TenantTouch {
					lat.total.Record(fences[c.ID()].run(c, peers))
					fenceDue = false
				}
			}
			done++
		}
		if ck {
			lat.total.Record(fences[c.ID()].run(c, peers))
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return mergeTenantLats(lats), mergeOckStats(stats), nil
}

// ockCore replays the tenant trace against per-CPU PBM systems in the
// given translation mode, fencing via the system's extent/page-table
// dirty units.
func ockCore(traces [][]workload.TenantOp, mode core.TranslationMode, ck bool) (*tenantLats, *ockStats, error) {
	const (
		cpuDRAMFrames = uint64(256) << 20 >> mem.FrameShift
		cpuNVMFrames  = uint64(1) << 30 >> mem.FrameShift
	)
	params := machineParams()
	machine := newSimMachine(&params, benchCPUs)
	n := machine.NumCPUs()
	machine.SetSyncGroups(tenantPairGroups(n))
	defer machine.SetSyncGroups(nil)

	syss := make([]*core.System, n)
	shared := make([]*memfs.File, n)
	fences := make([]*ockFence, n)
	stats := newOckStats(n)
	for i := 0; i < n; i++ {
		c := machine.CPU(i)
		cpuMem, err := mem.New(c.Clock(), &params, mem.Config{
			DRAMFrames: cpuDRAMFrames, NVMFrames: cpuNVMFrames,
		})
		if err != nil {
			return nil, nil, err
		}
		syss[i], err = core.NewSystem(c.Clock(), &params, cpuMem, core.Options{})
		if err != nil {
			return nil, nil, err
		}
		shared[i], err = syss[i].CreateContiguousFile("/shared", ockTmplPages,
			memfs.CreateOptions{Mode: ro}, mode == core.SharedPT)
		if err != nil {
			return nil, nil, err
		}
		if ck {
			cpuMem.SetDirtyTracking(true)
		}
		s := syss[i]
		fences[i] = &ockFence{
			machine: machine, params: &params, mem: cpuMem,
			units:  s.DirtyUnits,
			metaOp: params.ExtentOp,
			dram:   mem.Frame(cpuDRAMFrames),
			stats:  stats[i],
		}
	}

	lats := newTenantLats(n)
	err := machine.RunParallel(func(c *sim.CPU) error {
		lat := lats[c.ID()]
		partner := tenantPartner(c.ID(), n)
		peers := ockPeers(machine, partner)
		s := syss[c.ID()]
		var one [1]byte
		done := 0
		for ti := c.ID(); ti < len(traces); ti += n {
			fenceDue := ck && done%ockFenceEvery == 0
			var p *core.Process
			var heapM, sm *core.Mapping
			for _, op := range traces[ti] {
				t0 := c.Now()
				switch op.Kind {
				case workload.TenantSpawn:
					var err error
					p, err = s.NewProcessOn(c, mode)
					if err != nil {
						return err
					}
					if ti%2 == 1 && partner >= 0 {
						p.MarkRanOn(machine.CPU(partner))
					}
				case workload.TenantMapShared:
					var err error
					sm, err = p.MapFile(shared[c.ID()], ro)
					if err != nil {
						return err
					}
					for pg := uint64(0); pg < ockSharedHot; pg++ {
						if err := p.Touch(sm.Base()+mem.VirtAddr(pg*mem.FrameSize), false); err != nil {
							return err
						}
					}
				case workload.TenantAlloc:
					var err error
					heapM, err = p.AllocVolatile(op.Pages, rw)
					if err != nil {
						return err
					}
				case workload.TenantTouch:
					for pg := uint64(0); pg < op.Pages; pg++ {
						if err := p.WriteBuf(heapM.Base()+mem.VirtAddr(pg*mem.FrameSize), one[:]); err != nil {
							return err
						}
					}
				case workload.TenantFree:
					if err := p.Unmap(heapM); err != nil {
						return err
					}
				case workload.TenantExit:
					if err := p.Exit(); err != nil {
						return err
					}
				}
				lat.record(op.Kind, c.Now()-t0)
				if fenceDue && op.Kind == workload.TenantTouch {
					lat.total.Record(fences[c.ID()].run(c, peers))
					fenceDue = false
				}
			}
			done++
		}
		if ck {
			lat.total.Record(fences[c.ID()].run(c, peers))
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return mergeTenantLats(lats), mergeOckStats(stats), nil
}

// ockUsermode replays the tenant trace against per-CPU grant tables,
// fencing via the table's grant dirty units.
func ockUsermode(traces [][]workload.TenantOp, ck bool) (*tenantLats, *ockStats, error) {
	const cpuPoolFrames = uint64(256) << 20 >> mem.FrameShift
	params := machineParams()
	machine := newSimMachine(&params, benchCPUs)
	n := machine.NumCPUs()
	machine.SetSyncGroups(tenantPairGroups(n))
	defer machine.SetSyncGroups(nil)

	gts := make([]*usermode.GrantTable, n)
	segs := make([]*usermode.SharedSeg, n)
	fences := make([]*ockFence, n)
	stats := newOckStats(n)
	for i := 0; i < n; i++ {
		c := machine.CPU(i)
		cpuMem, err := mem.New(c.Clock(), &params, mem.Config{DRAMFrames: cpuPoolFrames})
		if err != nil {
			return nil, nil, err
		}
		gts[i], err = usermode.NewGrantTable(c.Clock(), &params, cpuMem, usermode.Config{
			PoolBase: 0, PoolFrames: cpuPoolFrames,
		})
		if err != nil {
			return nil, nil, err
		}
		tmpl, err := gts[i].NewProcessOn(c)
		if err != nil {
			return nil, nil, err
		}
		segs[i], err = gts[i].NewShared(tmpl, ockTmplPages)
		if err != nil {
			return nil, nil, err
		}
		if ck {
			cpuMem.SetDirtyTracking(true)
		}
		gt := gts[i]
		fences[i] = &ockFence{
			machine: machine, params: &params, mem: cpuMem,
			units:  gt.DirtyUnits,
			metaOp: params.ExtentOp,
			dram:   mem.Frame(cpuPoolFrames),
			stats:  stats[i],
		}
	}

	lats := newTenantLats(n)
	err := machine.RunParallel(func(c *sim.CPU) error {
		lat := lats[c.ID()]
		peers := ockPeers(machine, tenantPartner(c.ID(), n))
		gt, seg := gts[c.ID()], segs[c.ID()]
		var one [1]byte
		done := 0
		for ti := c.ID(); ti < len(traces); ti += n {
			fenceDue := ck && done%ockFenceEvery == 0
			var p *usermode.Process
			var hr heap.Region
			for _, op := range traces[ti] {
				t0 := c.Now()
				switch op.Kind {
				case workload.TenantSpawn:
					var err error
					p, err = gt.NewProcessOn(c)
					if err != nil {
						return err
					}
				case workload.TenantMapShared:
					if err := p.MapShared(seg); err != nil {
						return err
					}
					for pg := uint64(0); pg < ockSharedHot; pg++ {
						if err := p.ReadBuf(seg.Base()+mem.VirtAddr(pg*mem.FrameSize), one[:]); err != nil {
							return err
						}
					}
				case workload.TenantAlloc:
					var err error
					hr, err = p.AllocPages(op.Pages)
					if err != nil {
						return err
					}
				case workload.TenantTouch:
					for pg := uint64(0); pg < op.Pages; pg++ {
						if err := p.WriteBuf(hr.Base()+mem.VirtAddr(pg*mem.FrameSize), one[:1]); err != nil {
							return err
						}
					}
				case workload.TenantFree:
					if err := p.FreeRegion(hr); err != nil {
						return err
					}
				case workload.TenantExit:
					if err := p.Exit(); err != nil {
						return err
					}
				}
				lat.record(op.Kind, c.Now()-t0)
				if fenceDue && op.Kind == workload.TenantTouch {
					lat.total.Record(fences[c.ID()].run(c, peers))
					fenceDue = false
				}
			}
			done++
		}
		if ck {
			lat.total.Record(fences[c.ID()].run(c, peers))
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return mergeTenantLats(lats), mergeOckStats(stats), nil
}

// ockPeers returns the fence's sync-domain peers: the pair partner, or
// nothing for an unpaired CPU.
func ockPeers(machine *sim.Machine, partner int) []*sim.CPU {
	if partner < 0 {
		return nil
	}
	return []*sim.CPU{machine.CPU(partner)}
}
