package bench

import (
	"strings"
	"testing"
)

// TestSelectEdgeCases pins the table of spec-parsing corners: empty
// and whitespace specs mean "all", trailing (and doubled) commas are
// tolerated, duplicates collapse, and unknown IDs name themselves in
// the error.
func TestSelectEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name    string
		spec    string
		wantIDs []string
		wantAll bool
		wantErr string
	}{
		{name: "empty means all", spec: "", wantAll: true},
		{name: "whitespace means all", spec: "   ", wantAll: true},
		{name: "lone comma selects nothing", spec: ",", wantIDs: []string{}},
		{name: "trailing comma tolerated", spec: "fig6a,fig9,", wantIDs: []string{"fig6a", "fig9"}},
		{name: "doubled comma tolerated", spec: "fig6a,,fig9", wantIDs: []string{"fig6a", "fig9"}},
		{name: "spaces around IDs", spec: " fig9 , fig6a ", wantIDs: []string{"fig9", "fig6a"}},
		{name: "duplicates collapse in first position", spec: "fig9,fig6a,fig9", wantIDs: []string{"fig9", "fig6a"}},
		{name: "unknown ID named in error", spec: "fig6a,nosuch", wantErr: `unknown experiment "nosuch"`},
		{name: "all plus ID is unknown", spec: "all,fig6a", wantErr: `unknown experiment "all"`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Select(tc.spec)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("Select(%q) succeeded, want error containing %q", tc.spec, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("Select(%q) error = %q, want it to contain %q", tc.spec, err.Error(), tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Select(%q): %v", tc.spec, err)
			}
			if tc.wantAll {
				if len(got) != len(All()) {
					t.Fatalf("Select(%q) = %v, want the full suite", tc.spec, ids(got))
				}
				return
			}
			gotIDs := ids(got)
			if len(gotIDs) != len(tc.wantIDs) {
				t.Fatalf("Select(%q) = %v, want %v", tc.spec, gotIDs, tc.wantIDs)
			}
			for i := range gotIDs {
				if gotIDs[i] != tc.wantIDs[i] {
					t.Fatalf("Select(%q) = %v, want %v", tc.spec, gotIDs, tc.wantIDs)
				}
			}
		})
	}
}

// TestRunSuiteOneWorkerEqualsSerial: RunSuite with one worker must be
// indistinguishable — same results, same order, allocations measured —
// from calling each experiment's Run directly.
func TestRunSuiteOneWorkerEqualsSerial(t *testing.T) {
	exps, err := Select("zero,walkdepth")
	if err != nil {
		t.Fatal(err)
	}
	reports := RunSuite(exps, 1)
	if len(reports) != len(exps) {
		t.Fatalf("RunSuite returned %d reports for %d experiments", len(reports), len(exps))
	}
	for i, e := range exps {
		rep := reports[i]
		if rep.ID != e.ID {
			t.Fatalf("report %d is %q, want input order %q", i, rep.ID, e.ID)
		}
		if rep.Err != nil {
			t.Fatalf("%s: %v", rep.ID, rep.Err)
		}
		if !rep.AllocsValid {
			t.Errorf("%s: single-worker suite did not measure allocations", rep.ID)
		}
		direct, err := e.Run()
		if err != nil {
			t.Fatalf("%s direct run: %v", e.ID, err)
		}
		if got, want := rep.Result.String(), direct.String(); got != want {
			t.Errorf("%s: suite result diverges from direct serial run:\nsuite:  %s\ndirect: %s", e.ID, got, want)
		}
	}
}
