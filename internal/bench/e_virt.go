package bench

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/pagetable"
	"repro/internal/vm"
)

func init() {
	register(Experiment{
		ID:    "walkdepth",
		Title: "translation depth: 4/5-level native, virtualized (2D), and range walks",
		Paper: "§2 motivation: 5-level paging 'requires up to 35 memory references in virtualized systems'",
		Run:   walkDepth,
	})
	register(Experiment{
		ID:    "pinning",
		Title: "pinning memory for device access: per-page mlock vs implicit file pinning",
		Paper: "§3.1/§4.1 memory locking",
		Run:   pinning,
	})
}

func walkDepth() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable(
		"memory references per TLB-missing translation",
		"configuration", "refs", "walk_ns")
	ref := float64(m.Params.WalkLevelRef)
	rows := []struct {
		name string
		refs int
	}{
		{"native 4-level", 4},
		{"native 5-level", 5},
		{"virtualized 4-on-4", pagetable.NestedWalkRefs(pagetable.Levels4, pagetable.Levels4)},
		{"virtualized 5-on-5", pagetable.NestedWalkRefs(pagetable.Levels5, pagetable.Levels5)},
		{"range table (any size)", 1},
	}
	for _, r := range rows {
		table.AddRow(r.name, fmt.Sprint(r.refs), fmt.Sprintf("%.0f", float64(r.refs)*ref))
	}

	// Cross-check the native depths against real walks through real
	// tables (the model must agree with the mechanism).
	check := metrics.NewTable(
		"measured walk depth (real simulated tables)",
		"levels", "walk_levels_touched")
	cpu := m.Sim.BootCPU()
	for _, levels := range []int{pagetable.Levels4, pagetable.Levels5} {
		pt, err := pagetable.New(cpu, m.Params, m.Kernel.Pool(), levels)
		if err != nil {
			return nil, err
		}
		if err := pt.Map(cpu, 0x1000, 42, rw); err != nil {
			return nil, err
		}
		_, _, touched, ok := pt.Walk(cpu, 0x1000)
		if !ok {
			return nil, fmt.Errorf("bench: walk failed")
		}
		check.AddRow(fmt.Sprint(levels), fmt.Sprint(touched))
		if err := pt.Destroy(); err != nil {
			return nil, err
		}
	}
	return &Result{
		ID:     "walkdepth",
		Title:  "translation depth",
		Paper:  "§2 motivation",
		Tables: []*metrics.Table{table, check},
		Notes: []string{
			"deeper tables and virtualization multiply walk cost (35 refs for 5-on-5, the paper's figure); a range translation resolves any size in one step",
		},
	}, nil
}

func pinning() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable(
		"pin a buffer for device access / DMA (µs, simulated)",
		"size_MB", "baseline_mlock_us", "fom_us")
	for _, mb := range []uint64{1, 16, 256} {
		pages := mb << 20 >> mem.FrameShift

		as, err := m.Kernel.NewAddressSpace()
		if err != nil {
			return nil, err
		}
		va, err := as.Mmap(vm.MmapRequest{Pages: pages, Prot: rw, Anon: true})
		if err != nil {
			return nil, err
		}
		// mlock populates and flags every page.
		baseT, err := timeOp(m.Clock, func() error { return as.Mlock(va) })
		if err != nil {
			return nil, err
		}
		if err := as.Destroy(); err != nil {
			return nil, err
		}

		// File-only memory: "data is implicitly pinned in memory, as
		// pages are never reclaimed or relocated until the file is
		// explicitly unmapped" — pinning is free; we charge a single
		// syscall to register the buffer with the device.
		fomT := m.Params.SyscallOverhead
		m.Clock.Advance(fomT)

		table.AddRow(fmt.Sprint(mb), us(baseT), us(fomT))
	}
	return &Result{
		ID:     "pinning",
		Title:  "memory pinning",
		Paper:  "§3.1/§4.1 memory locking",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"baseline mlock walks every page (populate + flag); in file-only memory mappings never move, so a buffer of any size is DMA-safe for one syscall",
		},
	}, nil
}
