package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/metrics"
	"repro/internal/vm"
)

func init() {
	register(Experiment{
		ID:    "reclaim",
		Title: "reclaim under memory pressure: page scanning vs whole-file discard",
		Paper: "§3.1 reclamation / transcendent memory",
		Run:   reclaimExp,
	})
	register(Experiment{
		ID:    "zero",
		Title: "erasing memory before reuse: eager per-page zeroing vs O(1) epoch erase",
		Paper: "§3.1 persistence management (constant-time erase)",
		Run:   zeroExp,
	})
	register(Experiment{
		ID:    "metadata",
		Title: "memory-management metadata footprint: per-page vs per-file",
		Paper: "§2 motivation (Linux struct page: 25 flags, 38 fields)",
		Run:   metadataExp,
	})
}

func reclaimExp() (*Result, error) {
	table := metrics.NewTable(
		"reclaim 64 MiB under pressure (simulated)",
		"design", "time_us", "pages_scanned_or_files_deleted")

	// Baseline: fill the pool with anonymous pages, then reclaim.
	mb, err := NewMachine()
	if err != nil {
		return nil, err
	}
	as, err := mb.Kernel.NewAddressSpace()
	if err != nil {
		return nil, err
	}
	fill := uint64(128) << 20 >> mem.FrameShift // 128 MiB resident
	va, err := as.Mmap(vm.MmapRequest{Pages: fill, Prot: rw, Anon: true, Populate: true})
	if err != nil {
		return nil, err
	}
	_ = va
	want := uint64(64) << 20 >> mem.FrameShift
	mb.Kernel.Stats().Reset()
	baseT, err := timeOp(mb.Clock, func() error {
		freed, e := mb.Kernel.ReclaimPages(mb.Sim.Current(), want)
		if e != nil {
			return e
		}
		if freed < want {
			return fmt.Errorf("bench: baseline reclaimed only %d of %d pages", freed, want)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	scans := mb.Kernel.Stats().Value("reclaim_scans")
	table.AddRow("baseline page scan + swap", us(baseT), fmt.Sprintf("%d pages scanned", scans))

	// File-only memory: the same 128 MiB resident as discardable cache
	// files; reclaim deletes whole files.
	mf, err := NewMachine()
	if err != nil {
		return nil, err
	}
	const fileMB = 8
	for i := 0; i < 16; i++ {
		f, err := mf.FOM.CreateContiguousFile(fmt.Sprintf("/cache-%d", i),
			uint64(fileMB)<<20>>mem.FrameShift, memfs.CreateOptions{Discardable: true}, true)
		if err != nil {
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	fomT, err := timeOp(mf.Clock, func() error {
		freed, e := mf.FOM.DiscardUnderPressure(want)
		if e != nil {
			return e
		}
		if freed < want {
			return fmt.Errorf("bench: FOM discarded only %d of %d pages", freed, want)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	discards := mf.FOM.FS().Stats().Value("discards")
	table.AddRow("file-only memory discard", us(fomT), fmt.Sprintf("%d files deleted", discards))

	return &Result{
		ID:     "reclaim",
		Title:  "reclamation under pressure",
		Paper:  "§3.1",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"the baseline examines pages one at a time (clock/second-chance) and swaps them; file-only memory deletes whole discardable files — work per byte reclaimed drops by orders of magnitude",
		},
	}, nil
}

func zeroExp() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable(
		"erase a region before reuse (µs, simulated)",
		"size_MB", "eager_zero_us", "epoch_erase_us")
	nvm, _ := m.Memory.Region(mem.NVM)
	for _, mb := range []uint64{1, 16, 256, 1024} {
		frames := mb << 20 >> mem.FrameShift
		eager, err := timeOp(m.Clock, func() error {
			m.Memory.ZeroFrames(nvm.Start, frames)
			return nil
		})
		if err != nil {
			return nil, err
		}
		epoch, err := timeOp(m.Clock, func() error {
			m.Memory.EraseRangeEpoch(nvm.Start, frames)
			return nil
		})
		if err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprint(mb), us(eager), us(epoch))
	}
	return &Result{
		ID:     "zero",
		Title:  "constant-time erase",
		Paper:  "§3.1 persistence management",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"eager zeroing is linear; the epoch mechanism (frames tagged stale read as zero) is flat — the 'new techniques to efficiently erase memory in constant time' the paper calls for",
		},
	}, nil
}

func metadataExp() (*Result, error) {
	table := metrics.NewTable(
		"metadata to manage a resident set",
		"resident_MB", "baseline_struct_pages", "baseline_bytes", "fom_extents", "fom_metadata_bytes")
	for _, mb := range []uint64{16, 64, 256, 1024} {
		pages := mb << 20 >> mem.FrameShift

		mach, err := NewMachine()
		if err != nil {
			return nil, err
		}
		poolFrames := uint64(2) << 30 >> mem.FrameShift
		if err := carveBenchArenas(mach.Kernel, poolFrames); err != nil {
			return nil, err
		}
		spaces, err := perCPUSpaces(mach.Sim, mach.Kernel)
		if err != nil {
			return nil, err
		}
		if _, err := mmapAll(mach.Sim, spaces, splitPages(pages, mach.Sim.NumCPUs())); err != nil {
			return nil, err
		}
		basePages := mach.Kernel.TrackedPages()
		baseBytes := mach.Kernel.MetadataBytes()

		p, err := mach.FOM.NewProcess(core.Ranges)
		if err != nil {
			return nil, err
		}
		mp, err := p.AllocVolatile(pages, rw)
		if err != nil {
			return nil, err
		}
		extents := len(mp.File().Inode().Extents())
		// Inode (~256 B) plus extents (~32 B each): file-grain records.
		fomBytes := 256 + 32*extents
		table.AddRow(fmt.Sprint(mb), fmt.Sprint(basePages), fmt.Sprint(baseBytes),
			fmt.Sprint(extents), fmt.Sprint(fomBytes))
	}
	return &Result{
		ID:     "metadata",
		Title:  "metadata footprint",
		Paper:  "§2 motivation",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"the baseline keeps a struct page (64 B here; 25 flags/38 fields in Linux) per 4 KiB frame; file-only memory keeps one inode and one extent record per file, independent of size",
		},
	}, nil
}
