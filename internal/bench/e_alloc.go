package bench

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/metrics"
	"repro/internal/vm"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "allocate + write N pages: anonymous memory vs PMFS file",
		Paper: "Figure 2 / Figure 7 (PMFS within a few percent of malloc)",
		Run:   fig7,
	})
	register(Experiment{
		ID:    "faults",
		Title: "minor page faults while touching pages: malloc vs PMFS",
		Paper: "companion report Figure 3 (fault counts)",
		Run:   faultCounts,
	})
}

// allocTouchAnon mmaps N anonymous pages and writes one byte to each —
// the companion report's "malloc + w sb" workload.
func allocTouchAnon(m *Machine, as *vm.AddressSpace, pages uint64) error {
	va, err := as.Mmap(vm.MmapRequest{Pages: pages, Prot: rw, Anon: true, Private: true})
	if err != nil {
		return err
	}
	for p := uint64(0); p < pages; p++ {
		if err := as.Touch(va+mem.VirtAddr(p*mem.FrameSize), true); err != nil {
			return err
		}
	}
	return as.Munmap(va, pages)
}

// allocTouchPMFS allocates N pages through a PMFS file (truncate =
// block allocation), maps it shared, and writes one byte per page.
// File creation and unlink happen outside the timed region in fig7,
// matching the companion benchmark, which times allocation + access.
func allocTouchPMFS(m *Machine, as *vm.AddressSpace, f *memfs.File, pages uint64) error {
	if err := f.Truncate(pages * mem.FrameSize); err != nil {
		return err
	}
	va, err := as.Mmap(vm.MmapRequest{Pages: pages, Prot: rw, File: f})
	if err != nil {
		return err
	}
	for p := uint64(0); p < pages; p++ {
		if err := as.Touch(va+mem.VirtAddr(p*mem.FrameSize), true); err != nil {
			return err
		}
	}
	return as.Munmap(va, pages)
}

func fig7() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	as, err := m.Kernel.NewAddressSpace()
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable(
		"allocate and write one byte per page (µs, simulated)",
		"pages", "malloc_us", "pmfs_us", "pmfs/malloc")
	for _, pages := range workload.SweepPageCounts(16384) {
		mallocT, err := timeOp(m.Clock, func() error { return allocTouchAnon(m, as, pages) })
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("/f7-%d", pages)
		f, err := m.Pmfs.Create(name, memfs.CreateOptions{})
		if err != nil {
			return nil, err
		}
		pmfsT, err := timeOp(m.Clock, func() error {
			return allocTouchPMFS(m, as, f, pages)
		})
		if err != nil {
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		if err := m.Pmfs.Unlink(name); err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprint(pages), us(mallocT), us(pmfsT),
			fmt.Sprintf("%.3f", float64(pmfsT)/float64(mallocT)))
	}
	return &Result{
		ID:     "fig7",
		Title:  "anonymous memory vs PMFS file allocation",
		Paper:  "Figure 2 / 7",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"allocating memory through the file system costs within a few percent of anonymous memory across the sweep — the paper's feasibility argument for file-only memory",
		},
	}, nil
}

func faultCounts() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	as, err := m.Kernel.NewAddressSpace()
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable(
		"minor page faults while writing one byte per page",
		"pages", "malloc_faults", "pmfs_faults")
	for _, pages := range workload.SweepPageCounts(16384) {
		m.Kernel.Stats().Reset()
		if err := allocTouchAnon(m, as, pages); err != nil {
			return nil, err
		}
		mallocFaults := m.Kernel.Stats().Value("minor_faults")

		m.Kernel.Stats().Reset()
		f, err := m.Pmfs.Create(fmt.Sprintf("/fc-%d", pages), memfs.CreateOptions{})
		if err != nil {
			return nil, err
		}
		if err := allocTouchPMFS(m, as, f, pages); err != nil {
			return nil, err
		}
		pmfsFaults := m.Kernel.Stats().Value("minor_faults")
		if err := f.Close(); err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprint(pages), fmt.Sprint(mallocFaults), fmt.Sprint(pmfsFaults))
	}
	return &Result{
		ID:     "faults",
		Title:  "fault counts, malloc vs PMFS",
		Paper:  "companion Figure 3",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"both paths fault once per page under demand paging: the file system adds no faults, only (small) per-fault lookup cost",
		},
	}, nil
}
