package bench

import (
	"testing"
	"time"
)

func TestSelectAll(t *testing.T) {
	for _, spec := range []string{"all", "", "  all  "} {
		got, err := Select(spec)
		if err != nil {
			t.Fatalf("Select(%q): %v", spec, err)
		}
		if len(got) != len(All()) {
			t.Fatalf("Select(%q) = %d experiments, want %d", spec, len(got), len(All()))
		}
	}
}

func TestSelectIDs(t *testing.T) {
	got, err := Select("fig9, fig6a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "fig9" || got[1].ID != "fig6a" {
		t.Fatalf("Select preserves order: got %v", ids(got))
	}
}

func TestSelectDedupes(t *testing.T) {
	got, err := Select("fig6a,fig6a, ,fig6a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "fig6a" {
		t.Fatalf("Select dedupe: got %v", ids(got))
	}
}

func TestSelectUnknown(t *testing.T) {
	if _, err := Select("fig6a,nosuch"); err == nil {
		t.Fatal("Select accepted unknown experiment ID")
	}
}

func ids(exps []Experiment) []string {
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.ID
	}
	return out
}

// TestParallelDeterminism is the scheduling-independence guarantee of
// the suite: every simulated number, rendered to text, must be
// byte-identical whether experiments run serially or on 8 workers.
func TestParallelDeterminism(t *testing.T) {
	spec := "fig6a,readvsmap,zero,walkdepth,ablate-extent"
	if !testing.Short() {
		spec += ",fig6b,ablate-pt,ablate-huge,heapchurn"
	}
	exps, err := Select(spec)
	if err != nil {
		t.Fatal(err)
	}
	serial := RunSuite(exps, 1)
	par := RunSuite(exps, 8)
	if len(serial) != len(par) {
		t.Fatalf("report counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i].Err != nil || par[i].Err != nil {
			t.Fatalf("%s: serial err=%v parallel err=%v", exps[i].ID, serial[i].Err, par[i].Err)
		}
		if serial[i].ID != par[i].ID {
			t.Fatalf("report %d out of order: %s vs %s", i, serial[i].ID, par[i].ID)
		}
		s, p := serial[i].Result.String(), par[i].Result.String()
		if s != p {
			t.Errorf("%s: serial and parallel runs render differently:\n--- serial\n%s\n--- parallel\n%s", exps[i].ID, s, p)
		}
		if m1, m2 := serial[i].Result.Markdown(), par[i].Result.Markdown(); m1 != m2 {
			t.Errorf("%s: markdown rendering differs between serial and parallel runs", exps[i].ID)
		}
	}
}

func TestRunSuiteMeasuresSerialAllocs(t *testing.T) {
	exps, err := Select("zero")
	if err != nil {
		t.Fatal(err)
	}
	reports := RunSuite(exps, 1)
	if !reports[0].AllocsValid {
		t.Fatal("serial suite did not measure allocations")
	}
	if reports[0].WallNanos <= 0 {
		t.Fatal("missing wall-clock measurement")
	}
	two, err := Select("zero,walkdepth")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range RunSuite(two, 4) {
		if r.AllocsValid {
			t.Fatal("parallel suite cannot attribute allocations to one experiment")
		}
	}
}

func TestSuiteReportJSON(t *testing.T) {
	exps, err := Select("zero,walkdepth")
	if err != nil {
		t.Fatal(err)
	}
	reports := RunSuite(exps, 1)
	s := NewSuiteReport(reports, 1, 5*time.Millisecond)
	if len(s.Experiments) != 2 {
		t.Fatalf("report rows = %d, want 2", len(s.Experiments))
	}
	if s.Experiments[0].ID != "zero" || s.Experiments[1].ID != "walkdepth" {
		t.Fatalf("rows out of order: %s, %s", s.Experiments[0].ID, s.Experiments[1].ID)
	}
	if s.Experiments[0].AllocObjects == nil {
		t.Fatal("serial report dropped alloc counts")
	}
	if s.TotalWallNanos != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("total wall = %d", s.TotalWallNanos)
	}
}
