package bench

import (
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// This file holds the helpers the host-parallel experiments share: the
// big baseline-VM phases (fig9, scale, metadata) split their per-page
// work evenly across the machine's simulated CPUs and run one address
// space per CPU under Machine.RunParallel. With -cpus 1 the split is
// the whole workload and RunParallel degenerates to the serial path,
// so the default configuration is unchanged; with -cpus N the same
// simulated work lands on N CPU contexts, and -hostpar additionally
// runs those contexts on real host goroutines.

// splitPages divides total pages across n CPUs, giving the remainder
// to the lowest IDs — a pure function of (total, n), never of host
// scheduling.
func splitPages(total uint64, n int) []uint64 {
	return workload.Split(total, n)
}

// carveBenchArenas gives each CPU a private frame arena when the
// machine has more than one, so the per-page hot paths of a parallel
// phase never contend on the kernel's global pool. With one CPU the
// kernel is left exactly as the serial experiments have always used
// it. framesPerCPU = poolFrames/n, i.e. the whole pool is sharded.
func carveBenchArenas(k *vm.Kernel, poolFrames uint64) error {
	n := k.Machine.NumCPUs()
	if n <= 1 {
		return nil
	}
	return k.CarveArenas(poolFrames / uint64(n))
}

// perCPUSpaces creates one address space per CPU, homed (and, with
// arenas carved, arena-backed) on it.
func perCPUSpaces(m *sim.Machine, k *vm.Kernel) ([]*vm.AddressSpace, error) {
	out := make([]*vm.AddressSpace, m.NumCPUs())
	for i := range out {
		as, err := k.NewAddressSpaceOn(m.CPU(i))
		if err != nil {
			return nil, err
		}
		out[i] = as
	}
	return out, nil
}

// partitionTouches splits a page-index trace across the CPUs' equal
// sub-regions (see workload.Partition).
func partitionTouches(idx []uint64, shares []uint64) [][]uint64 {
	return workload.Partition(idx, shares)
}

// mmapAll maps pages[i] anonymous populated pages on spaces[i] in
// parallel virtual time, returning the base addresses.
func mmapAll(m *sim.Machine, spaces []*vm.AddressSpace, pages []uint64) ([]mem.VirtAddr, error) {
	vas := make([]mem.VirtAddr, len(spaces))
	err := m.RunParallel(func(c *sim.CPU) error {
		if pages[c.ID()] == 0 {
			return nil
		}
		va, e := spaces[c.ID()].Mmap(vm.MmapRequest{
			Pages: pages[c.ID()], Prot: rw, Anon: true, Populate: true,
		})
		vas[c.ID()] = va
		return e
	})
	return vas, err
}

// munmapAll unmaps the regions mapped by mmapAll in parallel virtual
// time.
func munmapAll(m *sim.Machine, spaces []*vm.AddressSpace, vas []mem.VirtAddr, pages []uint64) error {
	return m.RunParallel(func(c *sim.CPU) error {
		if pages[c.ID()] == 0 {
			return nil
		}
		return spaces[c.ID()].Munmap(vas[c.ID()], pages[c.ID()])
	})
}
