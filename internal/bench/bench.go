// Package bench defines the reproduction experiments: one Experiment
// per table or figure in the paper (and per design mechanism turned
// into a measurement), each rebuilding a fresh simulated machine and
// printing the same rows/series the paper reports.
//
// The experiments are consumed by cmd/o1bench (human-readable tables)
// and by the repository-root bench_test.go (one testing.B benchmark
// per experiment).
package bench

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/metrics"
	"repro/internal/pagetable"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Paper  string // which paper artifact this regenerates
	Tables []*metrics.Table
	Notes  []string
}

// String renders the result for terminal output.
func (r *Result) String() string {
	out := fmt.Sprintf("== %s — %s\n   reproduces: %s\n\n", r.ID, r.Title, r.Paper)
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Markdown renders the result as GitHub-flavoured markdown.
func (r *Result) Markdown() string {
	out := fmt.Sprintf("## %s — %s\n\n*Reproduces: %s*\n\n", r.ID, r.Title, r.Paper)
	for _, t := range r.Tables {
		out += t.Markdown() + "\n"
	}
	for _, n := range r.Notes {
		out += "> " + n + "\n\n"
	}
	return out
}

// Experiment is one runnable reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Paper string
	Run   func() (*Result, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment, sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// customParams, when set via SetParams, replaces the default cost
// table for every machine the experiments build.
var customParams *sim.Params

// SetParams overrides the cost table used by NewMachine (nil restores
// the calibrated defaults). It exists so cmd/o1bench can load a user-
// supplied table and re-run the whole evaluation under it.
func SetParams(p *sim.Params) { customParams = p }

// machineParams returns the active cost table.
func machineParams() sim.Params {
	if customParams != nil {
		return *customParams
	}
	return sim.DefaultParams()
}

// benchCPUs is the CPU count NewMachine uses (the -cpus flag).
var benchCPUs = 1

// SetCPUs sets the simulated CPU count for every machine the
// experiments build (minimum 1). It exists so cmd/o1bench can plumb
// its -cpus flag through.
func SetCPUs(n int) {
	if n < 1 {
		n = 1
	}
	benchCPUs = n
}

// CPUCount returns the configured CPU count.
func CPUCount() int { return benchCPUs }

// benchHostPar selects host-parallel execution (the -hostpar flag):
// each simulated CPU's context runs on its own host goroutine inside
// the experiments' RunParallel phases. Simulated numbers are identical
// either way — only wall-clock time changes.
var benchHostPar = false

// SetHostParallel plumbs cmd/o1bench's -hostpar flag through to every
// machine the experiments build.
func SetHostParallel(on bool) { benchHostPar = on }

// HostParallel returns the configured host-parallel setting.
func HostParallel() bool { return benchHostPar }

// benchSyncLegacy selects the legacy global-quiescence sync protocol
// (the -syncmode global flag); the default is sharded sync domains.
// Simulated numbers are identical either way — the knob exists to
// measure the wall-clock cost of global barriers.
var benchSyncLegacy = false

// SetSyncLegacy plumbs cmd/o1bench's -syncmode flag through to every
// machine the experiments build (true = global quiescence).
func SetSyncLegacy(on bool) { benchSyncLegacy = on }

// SyncLegacy returns the configured sync protocol (true = global).
func SyncLegacy() bool { return benchSyncLegacy }

// newSimMachine builds a simulator machine with the configured
// host-parallel and sync-protocol settings applied. Every experiment
// machine is built through here so the -hostpar and -syncmode flags
// reach them all.
func newSimMachine(params *sim.Params, n int) *sim.Machine {
	m := sim.NewMachine(params, n, 0)
	m.SetHostParallel(benchHostPar)
	m.SetSyncLegacy(benchSyncLegacy)
	return m
}

// Machine is the standard experiment machine: 2 GiB of DRAM for the
// baseline's page pool and page tables, 6 GiB of NVM split between a
// tmpfs, a PMFS and the file-only-memory store.
type Machine struct {
	Sim    *sim.Machine
	Clock  *sim.Clock // the machine's kernel clock
	Params *sim.Params
	Memory *mem.Memory
	Kernel *vm.Kernel
	Tmpfs  *memfs.FS // page-granular, the paper's tmpfs measurements
	Pmfs   *memfs.FS // extent-granular persistent fs (Figure 7)
	FOM    *core.System
	// PoolFrames is the size of the baseline kernel's frame pool —
	// what ShardPool splits into per-CPU arenas.
	PoolFrames uint64
}

// ShardPool carves the baseline kernel's pool into one arena per CPU
// so host-parallel phases never contend on shared frame allocation.
// With one CPU it is a no-op and the machine stays exactly as the
// serial experiments have always used it.
func (m *Machine) ShardPool() error {
	return carveBenchArenas(m.Kernel, m.PoolFrames)
}

// NewMachine builds the standard machine with the configured CPU count
// (SetCPUs; default 1). tmpfs lives in DRAM (it is a RAM file system);
// PMFS and the file-only-memory store live in NVM.
func NewMachine() (*Machine, error) {
	return NewMachineN(benchCPUs)
}

// NewMachineN builds the standard machine with n CPUs.
func NewMachineN(n int) (*Machine, error) {
	const (
		poolFrames  = uint64(2) << 30 >> mem.FrameShift // 2 GiB baseline pool
		tmpfsFrames = uint64(1) << 30 >> mem.FrameShift // 1 GiB tmpfs (DRAM)
		dramFrames  = poolFrames + tmpfsFrames
		nvmFrames   = uint64(5) << 30 >> mem.FrameShift
		pmfsFrames  = uint64(1) << 30 >> mem.FrameShift // 1 GiB PMFS (NVM)
	)
	params := machineParams()
	machine := newSimMachine(&params, n)
	clock := machine.Clock()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: dramFrames, NVMFrames: nvmFrames})
	if err != nil {
		return nil, err
	}
	kernel, err := vm.NewKernel(clock, &params, memory, vm.Config{PoolBase: 0, PoolFrames: poolFrames})
	if err != nil {
		return nil, err
	}
	tmpfs, err := memfs.New("tmpfs", memfs.PerPage, clock, &params, memory, mem.Frame(poolFrames), tmpfsFrames)
	if err != nil {
		return nil, err
	}
	nvm, _ := memory.Region(mem.NVM)
	pmfs, err := memfs.New("pmfs", memfs.Extent, clock, &params, memory, nvm.Start, pmfsFrames)
	if err != nil {
		return nil, err
	}
	fom, err := core.NewSystem(clock, &params, memory, core.Options{
		FSBase:   nvm.Start + mem.Frame(pmfsFrames),
		FSFrames: nvm.Count - pmfsFrames,
	})
	if err != nil {
		return nil, err
	}
	return &Machine{
		Sim:        machine,
		Clock:      clock,
		Params:     &params,
		Memory:     memory,
		Kernel:     kernel,
		Tmpfs:      tmpfs,
		Pmfs:       pmfs,
		FOM:        fom,
		PoolFrames: poolFrames,
	}, nil
}

// us formats a sim.Time as fractional microseconds.
func us(t sim.Time) string { return fmt.Sprintf("%.2f", t.Microseconds()) }

// ratio formats a/b.
func ratio(a, b sim.Time) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// timeOp runs fn and returns the virtual time it consumed. On a
// multi-CPU machine the measurement is machine-wide (max over CPU
// clocks), so work fanned out to other CPUs — shootdown IPI handlers —
// is included; per-CPU Now() would miss it and mis-measure across CPU
// switches.
// The barrier (Sync) before t0 is what makes the delta meaningful:
// without it, work charged to a CPU that lags the machine-wide
// maximum is masked and reads as zero elapsed time.
func timeOp(clock *sim.Clock, fn func() error) (sim.Time, error) {
	if mach := clock.Machine(); mach != nil {
		mach.Sync()
		t0 := mach.Time()
		err := fn()
		return mach.Time() - t0, err
	}
	t0 := clock.Now()
	err := fn()
	return clock.Since(t0), err
}

// Protection shorthands shared by every experiment file.
const (
	rw = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser
	ro = pagetable.FlagRead | pagetable.FlagUser
)
