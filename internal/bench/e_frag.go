package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fragmentation",
		Title: "contiguity under a long-running malloc-style workload",
		Paper: "§4.1: 'It is necessary to better manage memory for contiguity' (buddy vs slab-style designs)",
		Run:   fragmentation,
	})
}

// fragmentation drives a small-heavy allocate/free mix through
// file-only memory for many rounds and reports how well the buddy
// allocator preserves large contiguous runs — the property O(1)
// single-extent allocation depends on.
func fragmentation() (*Result, error) {
	m, err := NewMachine()
	if err != nil {
		return nil, err
	}
	p, err := m.FOM.NewProcess(core.Ranges)
	if err != nil {
		return nil, err
	}

	const rounds = 5
	const opsPerRound = 2000
	sizes, err := workload.AllocSizes(workload.SmallHeavy, rounds*opsPerRound, 1, 2048, 7)
	if err != nil {
		return nil, err
	}

	table := metrics.NewTable(
		"buddy contiguity across allocate/free churn (small-heavy sizes, 1-2048 pages)",
		"round", "live_mappings", "free_frames", "largest_free_order", "alloc_1GiB_extent")

	rng := sim.NewRNG(13)
	var live []*core.Mapping
	idx := 0
	for round := 1; round <= rounds; round++ {
		for op := 0; op < opsPerRound; op++ {
			if len(live) == 0 || rng.Float64() < 0.55 {
				mp, err := p.AllocVolatile(sizes[idx], rw)
				idx++
				if err != nil {
					// Transient exhaustion: free something and go on.
					if len(live) == 0 {
						return nil, err
					}
					victim := rng.Intn(len(live))
					if err := p.Unmap(live[victim]); err != nil {
						return nil, err
					}
					live[victim] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				live = append(live, mp)
			} else {
				victim := rng.Intn(len(live))
				if err := p.Unmap(live[victim]); err != nil {
					return nil, err
				}
				live[victim] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		// Can the allocator still produce a 1 GiB extent? (The
		// worst-case O(1) allocation.)
		bigOK := "yes"
		big, err := p.AllocVolatile(uint64(1)<<30>>12, rw)
		if err != nil {
			bigOK = "NO"
		} else if err := p.Unmap(big); err != nil {
			return nil, err
		}
		// Report buddy state via a probe allocation ladder.
		largest := largestFreeOrder(p)
		table.AddRow(fmt.Sprint(round), fmt.Sprint(len(live)),
			fmt.Sprint(m.FOM.FreeFrames()), fmt.Sprint(largest), bigOK)
	}
	for _, mp := range live {
		if err := p.Unmap(mp); err != nil {
			return nil, err
		}
	}
	return &Result{
		ID:     "fragmentation",
		Title:  "contiguity under churn",
		Paper:  "§4.1",
		Tables: []*metrics.Table{table},
		Notes: []string{
			"buddy coalescing keeps gigabyte extents allocatable through heavy small-object churn; whole-file reclamation (every free returns a full extent) is what makes this possible",
		},
	}, nil
}

// largestFreeOrder probes the largest power-of-two extent currently
// allocatable by bisection (probe allocations are immediately freed
// and charged like real ones, which is fine: this models a jemalloc-
// style stats probe).
func largestFreeOrder(p *core.Process) int {
	best := -1
	for order := 0; order <= 18; order++ {
		mp, err := p.AllocVolatile(uint64(1)<<order, rw)
		if err != nil {
			break
		}
		if err := p.Unmap(mp); err != nil {
			break
		}
		best = order
	}
	return best
}
