package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/tier"
)

// Select resolves a comma-separated experiment spec — "all" or a list
// of IDs like "fig6a,fig9" — into experiments in the order given,
// dropping duplicates. Unknown IDs are an error.
func Select(spec string) ([]Experiment, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return All(), nil
	}
	seen := make(map[string]bool)
	var out []Experiment
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" || seen[id] {
			continue
		}
		e, ok := ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		seen[id] = true
		out = append(out, e)
	}
	return out, nil
}

// RunReport is one experiment's outcome plus its host-side cost. The
// simulated numbers inside Result are independent of how the suite is
// scheduled; the wall-clock fields are what this layer adds.
type RunReport struct {
	ID    string
	Title string

	Result *Result
	Err    error

	// WallNanos is the host wall-clock time of Run.
	WallNanos int64
	// AllocBytes/AllocObjects are the host heap allocations of Run,
	// measured with runtime.ReadMemStats. Only a serial suite can
	// attribute heap deltas to one experiment, so these are valid only
	// when AllocsValid is set (RunSuite with parallel <= 1).
	AllocBytes   uint64
	AllocObjects uint64
	AllocsValid  bool

	// Sync is the delta of the sim package's sync telemetry over Run:
	// sync points granted, domain widths, host barrier wait, IPI rounds
	// and coalesced invalidations. The counters are process-global, so
	// like the allocation counts they are attributable to one experiment
	// only in a serial suite (SyncValid mirrors AllocsValid).
	Sync      sim.SyncTelemetry
	SyncValid bool

	// Tier is the delta of the tier package's migration telemetry over
	// Run (promotions, demotions, pages moved, migration time). Like
	// Sync it is process-global and only attributable serially.
	Tier      tier.Telemetry
	TierValid bool
}

// RunSuite runs the experiments on min(parallel, len(exps)) workers
// and returns their reports in input order. Experiments share no
// mutable state — each Run builds a fresh machine — so scheduling
// cannot change any simulated number; only wall-clock time varies.
// With parallel <= 1 the suite runs serially on the calling goroutine
// and per-experiment allocation counts are measured.
func RunSuite(exps []Experiment, parallel int) []*RunReport {
	reports := make([]*RunReport, len(exps))
	if parallel <= 1 || len(exps) <= 1 {
		for i, e := range exps {
			reports[i] = runOne(e, true)
		}
		return reports
	}
	if parallel > len(exps) {
		parallel = len(exps)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				reports[i] = runOne(exps[i], false)
			}
		}()
	}
	for i := range exps {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return reports
}

func runOne(e Experiment, measureAllocs bool) *RunReport {
	rep := &RunReport{ID: e.ID, Title: e.Title}
	var m0 runtime.MemStats
	var s0 sim.SyncTelemetry
	var t0tier tier.Telemetry
	if measureAllocs {
		runtime.ReadMemStats(&m0)
		s0 = sim.TelemetrySnapshot()
		t0tier = tier.TelemetrySnapshot()
	}
	t0 := time.Now()
	rep.Result, rep.Err = e.Run()
	rep.WallNanos = time.Since(t0).Nanoseconds()
	if measureAllocs {
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		rep.AllocBytes = m1.TotalAlloc - m0.TotalAlloc
		rep.AllocObjects = m1.Mallocs - m0.Mallocs
		rep.AllocsValid = true
		rep.Sync = sim.TelemetrySnapshot().Sub(s0)
		rep.SyncValid = true
		rep.Tier = tier.TelemetrySnapshot().Sub(t0tier)
		rep.TierValid = true
	}
	return rep
}

// SuiteReport is the JSON document behind -benchjson: the tracked
// wall-clock baseline of the whole evaluation. Simulated results live
// in RESULTS.md; this file only records what the suite costs to run.
type SuiteReport struct {
	GoVersion    string `json:"go_version"`
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`
	HostCPUs     int    `json:"host_cpus"`
	GoMaxProcs   int    `json:"gomaxprocs"`
	SimCPUs      int    `json:"sim_cpus"`
	Parallel     int    `json:"parallel"`
	HostParallel bool   `json:"host_parallel"`

	TotalWallNanos int64 `json:"total_wall_ns"`

	Experiments []ExperimentReport `json:"experiments"`
}

// ExperimentReport is one experiment's row in the SuiteReport.
type ExperimentReport struct {
	ID        string  `json:"id"`
	Title     string  `json:"title"`
	WallNanos int64   `json:"wall_ns"`
	WallMS    float64 `json:"wall_ms"`
	// Heap allocations of the experiment's Run (serial suites only).
	AllocBytes   *uint64 `json:"alloc_bytes,omitempty"`
	AllocObjects *uint64 `json:"alloc_objects,omitempty"`
	// Sync is the experiment's sync-telemetry delta (serial suites only).
	Sync *SyncReport `json:"sync,omitempty"`
	// Tier is the experiment's tier-migration telemetry delta (serial
	// suites only; omitted when the experiment migrated nothing).
	Tier  *TierReport `json:"tier,omitempty"`
	Error string      `json:"error,omitempty"`
}

// SyncReport is the JSON form of one experiment's sync-telemetry
// delta: how much synchronization its parallel phases needed and how
// much shootdown work the deferred-invalidation queues coalesced.
type SyncReport struct {
	SyncPoints      uint64  `json:"sync_points"`
	GlobalSections  uint64  `json:"global_sections"`
	MeanDomainCPUs  float64 `json:"mean_domain_cpus"`
	BarrierWaitMS   float64 `json:"barrier_wait_ms"`
	IPIRounds       uint64  `json:"ipi_rounds"`
	IPITargets      uint64  `json:"ipi_targets"`
	CoalescedInvals uint64  `json:"coalesced_invals"`
}

// TierReport is the JSON form of one experiment's tier-migration
// telemetry delta: what the migration engine did on the experiment's
// behalf and how much simulated time the moves cost.
type TierReport struct {
	Promotions  uint64  `json:"promotions"`
	Demotions   uint64  `json:"demotions"`
	Swaps       uint64  `json:"swaps"`
	Stalls      uint64  `json:"stalls"`
	PagesMoved  uint64  `json:"pages_moved"`
	ExtentMoves uint64  `json:"extent_moves"`
	Splits      uint64  `json:"splits"`
	Scans       uint64  `json:"scans"`
	SampledRefs uint64  `json:"sampled_refs"`
	MigrateMS   float64 `json:"migrate_ms"`
}

// newTierReport converts a telemetry delta for the JSON report, or
// returns nil when the experiment exercised no tier machinery at all.
func newTierReport(t tier.Telemetry) *TierReport {
	if t.Promotions|t.Demotions|t.Swaps|t.Stalls|t.PagesMoved|
		t.Splits|t.Scans|t.SampledRefs|t.MigrateTime == 0 {
		return nil
	}
	return &TierReport{
		Promotions:  t.Promotions,
		Demotions:   t.Demotions,
		Swaps:       t.Swaps,
		Stalls:      t.Stalls,
		PagesMoved:  t.PagesMoved,
		ExtentMoves: t.ExtentMoves,
		Splits:      t.Splits,
		Scans:       t.Scans,
		SampledRefs: t.SampledRefs,
		MigrateMS:   float64(t.MigrateTime) / 1e6,
	}
}

// newSyncReport converts a telemetry delta for the JSON report.
func newSyncReport(t sim.SyncTelemetry) *SyncReport {
	r := &SyncReport{
		SyncPoints:      t.SyncPoints,
		GlobalSections:  t.GlobalSections,
		BarrierWaitMS:   float64(t.BarrierWaitNs) / 1e6,
		IPIRounds:       t.IPIRounds,
		IPITargets:      t.IPITargets,
		CoalescedInvals: t.CoalescedInvals,
	}
	if t.SyncPoints > 0 {
		r.MeanDomainCPUs = float64(t.DomainCPUs) / float64(t.SyncPoints)
	}
	return r
}

// NewSuiteReport assembles the JSON document from the suite's reports.
// totalWall is the wall-clock time of the whole suite (under a parallel
// runner it is less than the sum of the per-experiment times).
func NewSuiteReport(reports []*RunReport, parallel int, totalWall time.Duration) *SuiteReport {
	s := &SuiteReport{
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		HostCPUs:       runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		SimCPUs:        CPUCount(),
		Parallel:       parallel,
		HostParallel:   HostParallel(),
		TotalWallNanos: totalWall.Nanoseconds(),
	}
	for _, r := range reports {
		er := ExperimentReport{
			ID:        r.ID,
			Title:     r.Title,
			WallNanos: r.WallNanos,
			WallMS:    float64(r.WallNanos) / 1e6,
		}
		if r.AllocsValid {
			b, o := r.AllocBytes, r.AllocObjects
			er.AllocBytes = &b
			er.AllocObjects = &o
		}
		if r.SyncValid {
			er.Sync = newSyncReport(r.Sync)
		}
		if r.TierValid {
			er.Tier = newTierReport(r.Tier)
		}
		if r.Err != nil {
			er.Error = r.Err.Error()
		}
		s.Experiments = append(s.Experiments, er)
	}
	return s
}

// WriteJSON writes the report, indented, to w.
func (s *SuiteReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSuiteReport parses a previously written report.
func ReadSuiteReport(r io.Reader) (*SuiteReport, error) {
	var s SuiteReport
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// ShapeMismatch compares the fields that make two reports' wall-clock
// numbers comparable: host size, GOMAXPROCS, simulated CPU count and
// both parallelism settings. It returns a human-readable description of
// the first difference, or "" when the shapes match. o1bench uses it to
// refuse overwriting a tracked baseline with numbers measured on a
// differently shaped host unless the user passes -force.
func (s *SuiteReport) ShapeMismatch(o *SuiteReport) string {
	switch {
	case s.HostCPUs != o.HostCPUs:
		return fmt.Sprintf("host_cpus %d != %d", s.HostCPUs, o.HostCPUs)
	case s.GoMaxProcs != o.GoMaxProcs:
		return fmt.Sprintf("gomaxprocs %d != %d", s.GoMaxProcs, o.GoMaxProcs)
	case s.SimCPUs != o.SimCPUs:
		return fmt.Sprintf("sim_cpus %d != %d", s.SimCPUs, o.SimCPUs)
	case s.Parallel != o.Parallel:
		return fmt.Sprintf("parallel %d != %d", s.Parallel, o.Parallel)
	case s.HostParallel != o.HostParallel:
		return fmt.Sprintf("host_parallel %v != %v", s.HostParallel, o.HostParallel)
	}
	return ""
}
