package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestSuiteReportShapeGuard covers the -benchjson overwrite guard:
// round-trip a report through JSON, then verify ShapeMismatch flags
// each comparability field and stays quiet on a matching shape.
func TestSuiteReportShapeGuard(t *testing.T) {
	s := NewSuiteReport(nil, 2, time.Second)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSuiteReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.ShapeMismatch(back); d != "" {
		t.Fatalf("round-tripped report mismatches itself: %s", d)
	}

	for _, tc := range []struct {
		mutate func(*SuiteReport)
		want   string
	}{
		{func(r *SuiteReport) { r.HostCPUs++ }, "host_cpus"},
		{func(r *SuiteReport) { r.GoMaxProcs++ }, "gomaxprocs"},
		{func(r *SuiteReport) { r.SimCPUs++ }, "sim_cpus"},
		{func(r *SuiteReport) { r.Parallel++ }, "parallel"},
		{func(r *SuiteReport) { r.HostParallel = !r.HostParallel }, "host_parallel"},
	} {
		other := *back
		tc.mutate(&other)
		d := s.ShapeMismatch(&other)
		if !strings.Contains(d, tc.want) {
			t.Errorf("mismatch on %s reported as %q", tc.want, d)
		}
	}

	// Wall-clock and result differences must NOT trip the guard: the
	// whole point of the baseline is comparing those across runs.
	other := *back
	other.TotalWallNanos *= 10
	other.GoVersion = "go0.0"
	if d := s.ShapeMismatch(&other); d != "" {
		t.Errorf("non-shape fields tripped the guard: %s", d)
	}
}
