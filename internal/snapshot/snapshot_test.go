package snapshot

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Meta: Meta{Config: "ranges", CPUs: 4, Seed: 7, SnapAt: 123, TraceOps: 456},
		Machine: &sim.MachineState{
			Current: 2,
			CPUs: []sim.CPUState{
				{ID: 0, Clock: 12345, RNG: 0xDEADBEEF, Counters: []sim.CounterValue{{Name: "ipis_sent", Value: 3}}},
				{ID: 1, Clock: 999, RNG: 42},
			},
			Stats: []sim.StatsState{
				{Name: "mem", Counters: []sim.CounterValue{{Name: "materialized_frames", Value: 17}}},
				{Name: "vm", Counters: nil},
			},
		},
		Trace:       []byte("opaque trace bytes"),
		MemChecksum: 0xFEEDFACECAFEF00D,
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\nsaved  %+v\nloaded %+v", s, got)
	}
}

// TestSnapshotCorruptionDetected flips every byte of an encoded
// snapshot in turn; each flip must produce an error, never a silently
// different snapshot.
func TestSnapshotCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSnapshot().Save(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for i := range orig {
		mut := make([]byte, len(orig))
		copy(mut, orig)
		mut[i] ^= 0xFF
		if _, err := Load(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", i, len(orig))
		}
	}
}

func TestSnapshotTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSnapshot().Save(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for n := 0; n < len(orig); n++ {
		if _, err := Load(bytes.NewReader(orig[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", n, len(orig))
		}
	}
}

func TestSnapshotVersionGate(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSnapshot().Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(magic)] = version + 1 // bump the version field
	_, err := Load(bytes.NewReader(b))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
	var corrupt *ErrCorrupt
	if errors.As(err, &corrupt) {
		t.Fatalf("version mismatch misreported as corruption: %v", err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	j := &Journal{}
	recs := [][]byte{[]byte("alpha"), {}, []byte("gamma-record")}
	for _, r := range recs {
		j.Append(r)
	}
	got, torn := DecodeJournal(j.Encode())
	if torn != 0 {
		t.Fatalf("clean journal reported %d torn bytes", torn)
	}
	if !reflect.DeepEqual(got.Records(), recs) {
		t.Fatalf("records mismatch: %q vs %q", got.Records(), recs)
	}
}

// TestJournalTornAtEveryByte cuts the encoded journal at every byte
// offset. Decoding must always succeed, recover a record-boundary
// prefix, and account for every discarded byte.
func TestJournalTornAtEveryByte(t *testing.T) {
	j := &Journal{}
	j.Append([]byte("first"))
	j.Append([]byte("second record"))
	j.Append([]byte("3"))
	enc := j.Encode()
	bounds := []int{0, 5 + 8, 5 + 8 + 13 + 8, len(enc)}
	for cut := 0; cut <= len(enc); cut++ {
		got, torn := DecodeJournal(enc[:cut])
		if got.Len() > 3 {
			t.Fatalf("cut %d: invented %d records", cut, got.Len())
		}
		if torn != cut-bounds[got.Len()] {
			t.Fatalf("cut %d: %d records recovered but %d torn bytes reported", cut, got.Len(), torn)
		}
		for i, rec := range got.Records() {
			if string(rec) != string(j.recs[i]) {
				t.Fatalf("cut %d: record %d corrupted: %q", cut, i, rec)
			}
		}
		// A record is recovered iff its full frame is on media.
		want := 0
		for _, b := range bounds[1:] {
			if cut >= b {
				want++
			}
		}
		if got.Len() != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, got.Len(), want)
		}
	}
}

// TestJournalBitRot corrupts a middle record; the valid prefix before
// it survives, everything from the damaged record on is discarded.
func TestJournalBitRot(t *testing.T) {
	j := &Journal{}
	j.Append([]byte("keep me"))
	j.Append([]byte("rot me"))
	j.Append([]byte("unreachable"))
	enc := j.Encode()
	enc[4+7+4+4+2] ^= 0x01 // a payload byte of the second record
	got, torn := DecodeJournal(enc)
	if got.Len() != 1 || string(got.Records()[0]) != "keep me" {
		t.Fatalf("recovered %d records (%q), want just the first", got.Len(), got.Records())
	}
	if torn == 0 {
		t.Fatal("bit rot not reported as torn bytes")
	}
}
