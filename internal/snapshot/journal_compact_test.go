package snapshot

import (
	"bytes"
	"testing"
)

func compactedJournal(t *testing.T) *Journal {
	t.Helper()
	j := &Journal{}
	recs := [][]byte{
		{0x01, 0xaa},
		{0x02, 0xbb, 0xcc},
		{0x03},
		{0x04, 0xdd, 0xee, 0xff, 0x10},
		{0x05, 0x11},
	}
	for _, r := range recs {
		j.Append(r)
	}
	if err := j.Compact(3); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	return j
}

func TestJournalCompactDropsPrefix(t *testing.T) {
	j := compactedJournal(t)
	if j.Watermark() != 3 {
		t.Fatalf("Watermark = %d, want 3", j.Watermark())
	}
	if j.Len() != 2 {
		t.Fatalf("Len = %d after compaction, want 2", j.Len())
	}
	if !bytes.Equal(j.Records()[0], []byte{0x04, 0xdd, 0xee, 0xff, 0x10}) {
		t.Fatalf("first retained record = %x", j.Records()[0])
	}
	// Re-compacting at or below the watermark is a no-op.
	if err := j.Compact(2); err != nil {
		t.Fatalf("Compact below watermark: %v", err)
	}
	if j.Watermark() != 3 || j.Len() != 2 {
		t.Fatalf("no-op compact changed state: wm=%d len=%d", j.Watermark(), j.Len())
	}
	// Compacting past the end is refused.
	if err := j.Compact(6); err == nil {
		t.Fatal("Compact past end accepted")
	}
	// Compacting to the end empties the record list but keeps the
	// watermark encoded.
	if err := j.Compact(5); err != nil {
		t.Fatalf("Compact to end: %v", err)
	}
	got, torn := DecodeJournal(j.Encode())
	if torn != 0 || got.Len() != 0 || got.Watermark() != 5 {
		t.Fatalf("empty compacted journal decoded as len=%d wm=%d torn=%d", got.Len(), got.Watermark(), torn)
	}
}

func TestJournalCompactRoundTrip(t *testing.T) {
	j := compactedJournal(t)
	enc := j.Encode()
	got, torn := DecodeJournal(enc)
	if torn != 0 {
		t.Fatalf("clean compacted journal reported %d torn bytes", torn)
	}
	if got.Watermark() != j.Watermark() {
		t.Fatalf("Watermark = %d, want %d", got.Watermark(), j.Watermark())
	}
	if got.Len() != j.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), j.Len())
	}
	for i := range j.Records() {
		if !bytes.Equal(got.Records()[i], j.Records()[i]) {
			t.Fatalf("record %d = %x, want %x", i, got.Records()[i], j.Records()[i])
		}
	}
}

// TestJournalCompactTornAtEveryByte cuts the compacted stream at every
// byte. Decoding must always succeed, yielding a consistent prefix: a
// cut inside the watermark record loses watermark and all records (the
// stream's valid prefix is empty); a cut after it preserves the
// watermark and the fully-committed records before the cut.
func TestJournalCompactTornAtEveryByte(t *testing.T) {
	j := compactedJournal(t)
	enc := j.Encode()
	// Frame sizes: watermark record is 16 bytes payload + 8 framing;
	// data records are len(rec) payload + 8 framing.
	bounds := []int{0, 16 + 8}
	off := bounds[1]
	for _, r := range j.Records() {
		off += len(r) + 8
		bounds = append(bounds, off)
	}
	if off != len(enc) {
		t.Fatalf("frame arithmetic: %d != %d", off, len(enc))
	}
	for cut := 0; cut <= len(enc); cut++ {
		got, torn := DecodeJournal(enc[:cut])
		if torn != cut-committedPrefix(bounds, cut) {
			t.Fatalf("cut %d: torn = %d, want %d", cut, torn, cut-committedPrefix(bounds, cut))
		}
		if cut < bounds[1] {
			// Watermark record not fully durable: nothing survives.
			if got.Watermark() != 0 || got.Len() != 0 {
				t.Fatalf("cut %d: wm=%d len=%d from torn watermark", cut, got.Watermark(), got.Len())
			}
			continue
		}
		if got.Watermark() != j.Watermark() {
			t.Fatalf("cut %d: Watermark = %d, want %d", cut, got.Watermark(), j.Watermark())
		}
		wantRecs := 0
		for i := 1; i < len(bounds); i++ {
			if cut >= bounds[i] {
				wantRecs = i - 1
			}
		}
		if got.Len() != wantRecs {
			t.Fatalf("cut %d: Len = %d, want %d", cut, got.Len(), wantRecs)
		}
		for i := 0; i < wantRecs; i++ {
			if !bytes.Equal(got.Records()[i], j.Records()[i]) {
				t.Fatalf("cut %d: record %d diverged", cut, i)
			}
		}
	}
}

// committedPrefix returns the largest frame boundary at or below cut.
func committedPrefix(bounds []int, cut int) int {
	best := 0
	for _, b := range bounds {
		if b <= cut {
			best = b
		}
	}
	return best
}

// TestJournalCompactBitRot flips every byte of the compacted stream in
// turn. Decoding must never panic and never surface a record (or a
// watermark) whose bytes were damaged: corruption truncates the valid
// prefix at the damaged frame.
func TestJournalCompactBitRot(t *testing.T) {
	j := compactedJournal(t)
	enc := j.Encode()
	bounds := []int{0, 16 + 8}
	off := bounds[1]
	for _, r := range j.Records() {
		off += len(r) + 8
		bounds = append(bounds, off)
	}
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		got, _ := DecodeJournal(mut)
		// The damaged byte lives in frame k (0 = watermark record).
		frame := 0
		for k := 1; k < len(bounds); k++ {
			if i >= bounds[k] {
				frame = k
			}
		}
		if frame == 0 {
			// Watermark frame damaged: either rejected outright (CRC) or,
			// if the flip landed in the length field, parsed as garbage —
			// but never as the original watermark with intact records.
			if got.Watermark() == j.Watermark() && got.Len() == j.Len() {
				t.Fatalf("byte %d: damaged watermark frame decoded as pristine", i)
			}
			continue
		}
		// Records before the damaged frame must survive intact.
		for k := 0; k < frame-1 && k < got.Len(); k++ {
			if !bytes.Equal(got.Records()[k], j.Records()[k]) {
				t.Fatalf("byte %d: record %d before damage diverged", i, k)
			}
		}
		if got.Watermark() != j.Watermark() {
			t.Fatalf("byte %d: watermark %d, want %d (damage was after the watermark frame)", i, got.Watermark(), j.Watermark())
		}
	}
}

// TestJournalUncompactedEncodingUnchanged pins the v1 wire property: a
// journal that was never compacted encodes with no watermark record, so
// old readers' and writers' streams stay interchangeable.
func TestJournalUncompactedEncodingUnchanged(t *testing.T) {
	j := &Journal{}
	j.Append([]byte{0x01, 0x02})
	enc := j.Encode()
	if len(enc) != 2+8 {
		t.Fatalf("uncompacted journal framed %d bytes, want %d", len(enc), 2+8)
	}
	got, torn := DecodeJournal(enc)
	if torn != 0 || got.Len() != 1 || got.Watermark() != 0 {
		t.Fatalf("decode: len=%d wm=%d torn=%d", got.Len(), got.Watermark(), torn)
	}
}
