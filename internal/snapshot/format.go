// Package snapshot implements the persistence subsystem: a versioned,
// CRC-protected binary checkpoint of a simulated machine, and a
// write-ahead metadata journal with crash-point injection.
//
// The design is log-structured. A checkpoint records everything that
// determines a machine's forward behaviour at the simulation level —
// the seeded configuration, the operation trace executed so far, the
// captured per-CPU clocks/RNG states/counters, and a content digest of
// physical memory. Because the simulator is deterministic (state is a
// pure function of (configuration, seed, operation prefix)), restoring
// is reconstruction: re-execute the recorded prefix on a fresh machine,
// then *prove* bit-identity against the captured state. The journal
// extends a checkpoint with the records written after it; recovery
// replays the journal's valid prefix, discarding a torn tail.
//
// Every section and every journal record carries a CRC32 so torn or
// corrupted media is detected, never silently trusted — the
// crash-consistency contract of a persistent-memory metadata store.
package snapshot

import (
	"fmt"
	"hash/crc32"
	"io"
)

// Format constants. The magic and version gate Load: a file written by
// a future incompatible layout is rejected, not misparsed.
const (
	magic   = "O1MSNAP\x00"
	version = 2 // v2: meta gained the tier flag
)

// Section tags.
const (
	secMeta  = "META"
	secMach  = "MACH"
	secTrace = "TRAC"
	secSums  = "SUMS"
)

// ErrCorrupt reports a structurally damaged snapshot or journal.
type ErrCorrupt struct {
	What string
}

// Error implements error.
func (e *ErrCorrupt) Error() string { return "snapshot: corrupt " + e.What }

// enc is an append-only little-endian encoder.
type enc struct {
	b []byte
}

func (e *enc) u8(v byte)  { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *enc) u64(v uint64) {
	e.u32(uint32(v))
	e.u32(uint32(v >> 32))
}
func (e *enc) i64(v int64) { e.u64(uint64(v)) }
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// dec is a bounds-checked little-endian decoder. The first
// out-of-bounds read latches err; later reads return zero values, so
// callers can decode a whole structure and check err once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = &ErrCorrupt{What: what}
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("truncated field")
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *dec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (d *dec) u64() uint64 {
	lo := d.u32()
	hi := d.u32()
	return uint64(lo) | uint64(hi)<<32
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) str() string {
	n := d.u32()
	if d.err == nil && uint64(n) > uint64(len(d.b)-d.off) {
		d.fail("truncated string")
	}
	b := d.take(int(n))
	return string(b)
}

func (d *dec) done() bool { return d.err == nil && d.off == len(d.b) }

// writeSection emits one tagged, CRC-protected section.
func writeSection(w io.Writer, tag string, payload []byte) error {
	if len(tag) != 4 {
		panic("snapshot: section tag must be 4 bytes")
	}
	var h enc
	h.b = append(h.b, tag...)
	h.u32(uint32(len(payload)))
	if _, err := w.Write(h.b); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var c enc
	c.u32(crc32.ChecksumIEEE(payload))
	_, err := w.Write(c.b)
	return err
}

// readSection reads one section, verifying its CRC.
func readSection(r io.Reader) (tag string, payload []byte, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", nil, err
	}
	tag = string(hdr[:4])
	n := uint32(hdr[4]) | uint32(hdr[5])<<8 | uint32(hdr[6])<<16 | uint32(hdr[7])<<24
	if n > maxSectionBytes {
		return "", nil, &ErrCorrupt{What: fmt.Sprintf("section %q claims %d bytes", tag, n)}
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return "", nil, &ErrCorrupt{What: fmt.Sprintf("section %q truncated", tag)}
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return "", nil, &ErrCorrupt{What: fmt.Sprintf("section %q missing checksum", tag)}
	}
	want := uint32(crc[0]) | uint32(crc[1])<<8 | uint32(crc[2])<<16 | uint32(crc[3])<<24
	if got := crc32.ChecksumIEEE(payload); got != want {
		return "", nil, &ErrCorrupt{What: fmt.Sprintf("section %q checksum %#x, want %#x", tag, got, want)}
	}
	return tag, payload, nil
}

// maxSectionBytes bounds a section so a corrupted length field cannot
// provoke a giant allocation (64 MiB is far above any real snapshot).
const maxSectionBytes = 64 << 20

// WriteSection emits one tagged, CRC-protected section. It is the
// on-media framing primitive shared with layered formats (the
// incremental-checkpoint chains of internal/ckpt): 4-byte tag, u32
// little-endian payload length, payload, CRC32 (IEEE) of the payload.
func WriteSection(w io.Writer, tag string, payload []byte) error {
	return writeSection(w, tag, payload)
}

// ReadSection reads one section written by WriteSection, verifying its
// CRC. It returns io.EOF at a clean end of stream.
func ReadSection(r io.Reader) (tag string, payload []byte, err error) {
	return readSection(r)
}
