package snapshot

import (
	"fmt"
	"hash/crc32"
)

// Journal is a write-ahead log of opaque metadata records appended
// after a checkpoint. On media it is a pure record stream — no header,
// no trailer — so a crash can cut it at ANY byte and recovery still
// works: Decode returns the longest valid record prefix and reports
// the torn tail. Each record is framed as
//
//	length   uint32 (little-endian, payload bytes)
//	payload  []byte
//	crc32    uint32 (IEEE, over the payload)
//
// A record is durable exactly when its trailing CRC is fully on media
// and matches — the classic WAL commit rule.
//
// Compaction: once a checkpoint supersedes a log prefix, Compact drops
// those records and advances the watermark — the sequence number of the
// first retained record. A non-zero watermark is encoded as a special
// first record (see watermarkTag), so a compacted log still starts at a
// record boundary and the torn-tail rule is unchanged: rewriting the
// compacted log is a whole-file replace (old media stays valid until
// the new log is durable), and tears hit only the appended tail.
type Journal struct {
	recs [][]byte
	// watermark is the sequence number of recs[0]; records before it
	// were superseded by a checkpoint and compacted away. Sequence
	// numbers count from 0 at the journal's creation.
	watermark uint64
}

// watermarkTag prefixes the payload of the reserved watermark record. A
// data record payload never collides with it: the tag is only honoured
// in the first record of a stream, and producers whose first data
// record could start with these 8 bytes simply must not compact (ours,
// encoded ops, start with a one-byte op kind < 0x4f).
const watermarkTag = "O1WMARK\x00"

// Append adds one record to the journal's in-memory tail.
func (j *Journal) Append(rec []byte) {
	cp := make([]byte, len(rec))
	copy(cp, rec)
	j.recs = append(j.recs, cp)
}

// Len returns the number of records.
func (j *Journal) Len() int { return len(j.recs) }

// Records returns the records in append order. The slice is shared;
// do not modify.
func (j *Journal) Records() [][]byte { return j.recs }

// Watermark returns the sequence number of the first retained record:
// the number of records dropped by compaction over the journal's life.
func (j *Journal) Watermark() uint64 { return j.watermark }

// Compact drops every record with sequence number below upTo — they
// are superseded by a checkpoint that captured their effects — and
// advances the watermark. Compacting at or below the current watermark
// is a no-op; compacting past the end is an error (the checkpoint
// would claim records that were never written).
func (j *Journal) Compact(upTo uint64) error {
	if upTo <= j.watermark {
		return nil
	}
	if upTo > j.watermark+uint64(len(j.recs)) {
		return fmt.Errorf("snapshot: compact to %d, but journal ends at %d", upTo, j.watermark+uint64(len(j.recs)))
	}
	drop := upTo - j.watermark
	j.recs = append([][]byte(nil), j.recs[drop:]...)
	j.watermark = upTo
	return nil
}

// Encode serializes the journal as a record stream. A compacted
// journal (non-zero watermark) starts with the reserved watermark
// record.
func (j *Journal) Encode() []byte {
	var e enc
	emit := func(rec []byte) {
		e.u32(uint32(len(rec)))
		e.b = append(e.b, rec...)
		e.u32(crc32.ChecksumIEEE(rec))
	}
	if j.watermark != 0 {
		var w enc
		w.b = append(w.b, watermarkTag...)
		w.u64(j.watermark)
		emit(w.b)
	}
	for _, rec := range j.recs {
		emit(rec)
	}
	return e.b
}

// DecodeJournal parses a (possibly torn) record stream. It returns the
// journal holding every fully-committed record and the number of
// trailing bytes discarded as a torn or corrupt tail (0 for a clean
// log). Decoding never fails: crash-cut media is an expected input,
// and the valid prefix is exactly what recovery may trust.
func DecodeJournal(data []byte) (*Journal, int) {
	j := &Journal{}
	off := 0
	first := true
	for {
		if len(data)-off < 4 {
			break
		}
		n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		if len(data)-off-4 < n+4 {
			break // payload or CRC not fully on media: torn record
		}
		payload := data[off+4 : off+4+n]
		c := off + 4 + n
		want := uint32(data[c]) | uint32(data[c+1])<<8 | uint32(data[c+2])<<16 | uint32(data[c+3])<<24
		if crc32.ChecksumIEEE(payload) != want {
			break // bit rot or a cut that landed inside the CRC
		}
		if first && len(payload) == len(watermarkTag)+8 && string(payload[:len(watermarkTag)]) == watermarkTag {
			d := &dec{b: payload[len(watermarkTag):]}
			j.watermark = d.u64()
		} else {
			j.Append(payload)
		}
		first = false
		off = c + 4
	}
	return j, len(data) - off
}
