package snapshot

import "hash/crc32"

// Journal is a write-ahead log of opaque metadata records appended
// after a checkpoint. On media it is a pure record stream — no header,
// no trailer — so a crash can cut it at ANY byte and recovery still
// works: Decode returns the longest valid record prefix and reports
// the torn tail. Each record is framed as
//
//	length   uint32 (little-endian, payload bytes)
//	payload  []byte
//	crc32    uint32 (IEEE, over the payload)
//
// A record is durable exactly when its trailing CRC is fully on media
// and matches — the classic WAL commit rule.
type Journal struct {
	recs [][]byte
}

// Append adds one record to the journal's in-memory tail.
func (j *Journal) Append(rec []byte) {
	cp := make([]byte, len(rec))
	copy(cp, rec)
	j.recs = append(j.recs, cp)
}

// Len returns the number of records.
func (j *Journal) Len() int { return len(j.recs) }

// Records returns the records in append order. The slice is shared;
// do not modify.
func (j *Journal) Records() [][]byte { return j.recs }

// Encode serializes the journal as a record stream.
func (j *Journal) Encode() []byte {
	var e enc
	for _, rec := range j.recs {
		e.u32(uint32(len(rec)))
		e.b = append(e.b, rec...)
		e.u32(crc32.ChecksumIEEE(rec))
	}
	return e.b
}

// DecodeJournal parses a (possibly torn) record stream. It returns the
// journal holding every fully-committed record and the number of
// trailing bytes discarded as a torn or corrupt tail (0 for a clean
// log). Decoding never fails: crash-cut media is an expected input,
// and the valid prefix is exactly what recovery may trust.
func DecodeJournal(data []byte) (*Journal, int) {
	j := &Journal{}
	off := 0
	for {
		if len(data)-off < 4 {
			break
		}
		n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		if len(data)-off-4 < n+4 {
			break // payload or CRC not fully on media: torn record
		}
		payload := data[off+4 : off+4+n]
		c := off + 4 + n
		want := uint32(data[c]) | uint32(data[c+1])<<8 | uint32(data[c+2])<<16 | uint32(data[c+3])<<24
		if crc32.ChecksumIEEE(payload) != want {
			break // bit rot or a cut that landed inside the CRC
		}
		j.Append(payload)
		off = c + 4
	}
	return j, len(data) - off
}
