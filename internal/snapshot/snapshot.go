package snapshot

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Meta identifies what a snapshot captured: the world configuration,
// its machine sizing and seed, the embedded operation trace, and how
// many of its operations had executed at capture time.
type Meta struct {
	// Config names the memory-system configuration (e.g. "baseline",
	// "fom", "pbm", "ranges").
	Config string
	// CPUs is the simulated machine's CPU count.
	CPUs int
	// Seed is the machine (and trace) seed.
	Seed uint64
	// SnapAt is the number of trace operations executed before capture.
	SnapAt int
	// TraceOps is the total operation count of the embedded trace.
	TraceOps int
	// Tier records whether the world ran with a tier migration engine
	// attached; restore-by-reexecution must rebuild the same world.
	Tier bool
}

// Snapshot is one whole-machine checkpoint. Trace is opaque to this
// package — the producer (internal/check) owns the operation codec —
// so the persistence layer stays independent of harness details.
type Snapshot struct {
	Meta    Meta
	Machine *sim.MachineState
	// Trace is the encoded operation trace the machine was executing.
	Trace []byte
	// MemChecksum is mem.(*Memory).ContentChecksum() at capture time.
	MemChecksum uint64
}

// Save writes the snapshot in the versioned binary format.
func (s *Snapshot) Save(w io.Writer) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	var v enc
	v.u32(version)
	if _, err := w.Write(v.b); err != nil {
		return err
	}
	var m enc
	m.str(s.Meta.Config)
	m.u32(uint32(s.Meta.CPUs))
	m.u64(s.Meta.Seed)
	m.u64(uint64(s.Meta.SnapAt))
	m.u64(uint64(s.Meta.TraceOps))
	tier := byte(0)
	if s.Meta.Tier {
		tier = 1
	}
	m.u8(tier)
	if err := writeSection(w, secMeta, m.b); err != nil {
		return err
	}
	if err := writeSection(w, secMach, encodeMachineState(s.Machine)); err != nil {
		return err
	}
	if err := writeSection(w, secTrace, s.Trace); err != nil {
		return err
	}
	var c enc
	c.u64(s.MemChecksum)
	return writeSection(w, secSums, c.b)
}

// Load reads a snapshot written by Save, verifying magic, version, and
// every section checksum.
func Load(r io.Reader) (*Snapshot, error) {
	var hdr [len(magic) + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, &ErrCorrupt{What: "header"}
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, &ErrCorrupt{What: "magic (not a snapshot file)"}
	}
	v := uint32(hdr[len(magic)]) | uint32(hdr[len(magic)+1])<<8 |
		uint32(hdr[len(magic)+2])<<16 | uint32(hdr[len(magic)+3])<<24
	if v != version {
		return nil, fmt.Errorf("snapshot: format version %d, this build reads %d", v, version)
	}
	s := &Snapshot{}
	seen := make(map[string]bool)
	for {
		tag, payload, err := readSection(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if seen[tag] {
			return nil, &ErrCorrupt{What: "duplicate section " + tag}
		}
		seen[tag] = true
		switch tag {
		case secMeta:
			d := &dec{b: payload}
			s.Meta.Config = d.str()
			s.Meta.CPUs = int(d.u32())
			s.Meta.Seed = d.u64()
			s.Meta.SnapAt = int(d.u64())
			s.Meta.TraceOps = int(d.u64())
			s.Meta.Tier = d.u8() != 0
			if !d.done() {
				return nil, &ErrCorrupt{What: "meta section"}
			}
		case secMach:
			st, err := decodeMachineState(payload)
			if err != nil {
				return nil, err
			}
			s.Machine = st
		case secTrace:
			s.Trace = payload
		case secSums:
			d := &dec{b: payload}
			s.MemChecksum = d.u64()
			if !d.done() {
				return nil, &ErrCorrupt{What: "checksum section"}
			}
		default:
			// Unknown sections from a same-version writer are corruption,
			// not extensibility: version bumps gate layout changes.
			return nil, &ErrCorrupt{What: "unknown section " + tag}
		}
	}
	for _, tag := range []string{secMeta, secMach, secTrace, secSums} {
		if !seen[tag] {
			return nil, &ErrCorrupt{What: "missing section " + tag}
		}
	}
	return s, nil
}

// EncodeMachineState serializes a sim.MachineState capture in the
// snapshot wire format, for layered formats (internal/ckpt deltas).
func EncodeMachineState(st *sim.MachineState) []byte {
	return encodeMachineState(st)
}

// DecodeMachineState parses an EncodeMachineState payload.
func DecodeMachineState(b []byte) (*sim.MachineState, error) {
	return decodeMachineState(b)
}

// encodeMachineState serializes a sim.MachineState capture.
func encodeMachineState(st *sim.MachineState) []byte {
	var e enc
	e.u32(uint32(st.Current))
	e.u32(uint32(len(st.CPUs)))
	for _, c := range st.CPUs {
		e.u32(uint32(c.ID))
		e.i64(int64(c.Clock))
		e.u64(c.RNG)
		encodeCounters(&e, c.Counters)
	}
	e.u32(uint32(len(st.Stats)))
	for _, s := range st.Stats {
		e.str(s.Name)
		encodeCounters(&e, s.Counters)
	}
	return e.b
}

func encodeCounters(e *enc, cs []sim.CounterValue) {
	e.u32(uint32(len(cs)))
	for _, c := range cs {
		e.str(c.Name)
		e.u64(c.Value)
	}
}

// decodeMachineState parses an encodeMachineState payload.
func decodeMachineState(b []byte) (*sim.MachineState, error) {
	d := &dec{b: b}
	st := &sim.MachineState{Current: int(d.u32())}
	ncpu := d.u32()
	for i := uint32(0); i < ncpu && d.err == nil; i++ {
		c := sim.CPUState{
			ID:    int(d.u32()),
			Clock: sim.Time(d.i64()),
			RNG:   d.u64(),
		}
		c.Counters = decodeCounters(d)
		st.CPUs = append(st.CPUs, c)
	}
	nsets := d.u32()
	for i := uint32(0); i < nsets && d.err == nil; i++ {
		s := sim.StatsState{Name: d.str()}
		s.Counters = decodeCounters(d)
		st.Stats = append(st.Stats, s)
	}
	if !d.done() {
		if d.err != nil {
			return nil, d.err
		}
		return nil, &ErrCorrupt{What: "machine section has trailing bytes"}
	}
	return st, nil
}

func decodeCounters(d *dec) []sim.CounterValue {
	n := d.u32()
	var out []sim.CounterValue
	for i := uint32(0); i < n && d.err == nil; i++ {
		out = append(out, sim.CounterValue{Name: d.str(), Value: d.u64()})
	}
	return out
}
