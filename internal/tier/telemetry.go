package tier

import "sync/atomic"

// Migration telemetry: package-global counters mirroring
// sim.SyncTelemetry. Cumulative across engines; per-experiment numbers
// come from snapshotting before and after (experiments run one at a
// time in internal/bench).

type atomicU64 = atomic.Uint64

var telemetry struct {
	promotions  atomicU64
	demotions   atomicU64
	swaps       atomicU64
	stalls      atomicU64
	pagesMoved  atomicU64
	extentMoves atomicU64
	splits      atomicU64
	scans       atomicU64
	sampledRefs atomicU64
	migrateTime atomicU64
	peakFast    atomicU64
	peakSlow    atomicU64
}

// Telemetry is a snapshot (or delta) of the migration counters.
type Telemetry struct {
	// Promotions/Demotions count slow→fast and fast→slow migrations;
	// Swaps the smart-policy bidirectional pairs; Stalls the migration
	// decisions that could not proceed (fast tier full under promote,
	// backend declined, queue overflow).
	Promotions uint64
	Demotions  uint64
	Swaps      uint64
	Stalls     uint64

	// PagesMoved is the total frames relocated; ExtentMoves counts
	// migrations that had to move more than one frame (whole-extent
	// moves under range translations); Splits counts extent splits
	// performed to keep a migration to one page.
	PagesMoved  uint64
	ExtentMoves uint64
	Splits      uint64

	// Scans counts clock-hand frame visits; SampledRefs the access-bit
	// samples recorded from fault/touch paths.
	Scans       uint64
	SampledRefs uint64

	// MigrateTime is the total simulated time (ns) spent inside
	// backend migrations — the migration-cost share of each op's
	// latency.
	MigrateTime uint64

	// PeakFast/PeakSlow are high-water marks of tracked per-tier
	// occupancy (frames).
	PeakFast uint64
	PeakSlow uint64
}

// TelemetrySnapshot returns the current cumulative counter values.
func TelemetrySnapshot() Telemetry {
	return Telemetry{
		Promotions:  telemetry.promotions.Load(),
		Demotions:   telemetry.demotions.Load(),
		Swaps:       telemetry.swaps.Load(),
		Stalls:      telemetry.stalls.Load(),
		PagesMoved:  telemetry.pagesMoved.Load(),
		ExtentMoves: telemetry.extentMoves.Load(),
		Splits:      telemetry.splits.Load(),
		Scans:       telemetry.scans.Load(),
		SampledRefs: telemetry.sampledRefs.Load(),
		MigrateTime: telemetry.migrateTime.Load(),
		PeakFast:    telemetry.peakFast.Load(),
		PeakSlow:    telemetry.peakSlow.Load(),
	}
}

// Sub returns the delta t - prev, counter by counter. Peak gauges are
// carried from t (they are high-water marks, not monotone sums).
func (t Telemetry) Sub(prev Telemetry) Telemetry {
	return Telemetry{
		Promotions:  t.Promotions - prev.Promotions,
		Demotions:   t.Demotions - prev.Demotions,
		Swaps:       t.Swaps - prev.Swaps,
		Stalls:      t.Stalls - prev.Stalls,
		PagesMoved:  t.PagesMoved - prev.PagesMoved,
		ExtentMoves: t.ExtentMoves - prev.ExtentMoves,
		Splits:      t.Splits - prev.Splits,
		Scans:       t.Scans - prev.Scans,
		SampledRefs: t.SampledRefs - prev.SampledRefs,
		MigrateTime: t.MigrateTime - prev.MigrateTime,
		PeakFast:    t.PeakFast,
		PeakSlow:    t.PeakSlow,
	}
}

// AddSplit records one extent split performed on behalf of a
// migration (called by backends).
func AddSplit() { telemetry.splits.Add(1) }

// gaugeMax raises a peak gauge to at least v.
func gaugeMax(g *atomicU64, v uint64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}
