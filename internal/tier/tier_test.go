package tier

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// fakeBackend relocates frames by bookkeeping alone: each migration
// "moves" the page to the next unused frame of the target region and
// reports it via Moved, exactly as a real backend would.
type fakeBackend struct {
	eng      *Engine
	memory   *mem.Memory
	nextFast mem.Frame
	nextSlow mem.Frame
	decline  bool
	moves    int
}

func (b *fakeBackend) MigrateFrame(cur *sim.CPU, f mem.Frame, to mem.RegionKind) (uint64, bool) {
	if b.decline {
		return 0, false
	}
	var nf mem.Frame
	if to == mem.DRAM {
		nf = b.nextFast
		b.nextFast++
	} else {
		nf = b.nextSlow
		b.nextSlow++
	}
	b.eng.Moved(f, nf)
	b.moves++
	return 1, true
}

// newTestRig builds a 2-region memory, a single-CPU machine, and an
// engine whose fake backend hands out fresh frames per tier.
func newTestRig(t *testing.T, policy Policy, fastCap uint64) (*Engine, *fakeBackend, *sim.CPU) {
	t.Helper()
	params := sim.DefaultParams()
	machine := sim.NewMachine(&params, 1, 1)
	memory, err := mem.New(machine.Clock(), &params, mem.Config{DRAMFrames: 1 << 10, NVMFrames: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(&params, memory, policy, fastCap)
	b := &fakeBackend{eng: eng, memory: memory, nextFast: 512, nextSlow: mem.Frame(1<<10 + 2048)}
	eng.SetBackend(b)
	return eng, b, machine.CPU(0)
}

// slowFrame returns the i-th frame of the NVM region (frames start
// after DRAM).
func slowFrame(i uint64) mem.Frame { return mem.Frame(1<<10 + i) }

func TestTrackUntrackOccupancy(t *testing.T) {
	eng, _, _ := newTestRig(t, None, 64)
	for i := uint64(0); i < 10; i++ {
		eng.Track(mem.Frame(i))
	}
	for i := uint64(0); i < 5; i++ {
		eng.Track(slowFrame(i))
	}
	fast, slow := eng.Occupancy()
	if fast != 10 || slow != 5 {
		t.Fatalf("occupancy = (%d, %d), want (10, 5)", fast, slow)
	}
	for i := uint64(0); i < 10; i += 2 {
		eng.Untrack(mem.Frame(i))
	}
	fast, slow = eng.Occupancy()
	if fast != 5 || slow != 5 {
		t.Fatalf("after untrack: occupancy = (%d, %d), want (5, 5)", fast, slow)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if eng.Tracked() != 10 {
		t.Fatalf("Tracked() = %d, want 10", eng.Tracked())
	}
}

func TestDoubleTrackPanics(t *testing.T) {
	eng, _, _ := newTestRig(t, None, 64)
	eng.Track(3)
	defer func() {
		if recover() == nil {
			t.Fatal("double Track did not panic")
		}
	}()
	eng.Track(3)
}

func TestMovedCarriesState(t *testing.T) {
	eng, _, _ := newTestRig(t, None, 64)
	eng.Track(slowFrame(0))
	eng.Record(slowFrame(0), false)
	eng.Moved(slowFrame(0), 7) // slow -> fast
	fast, slow := eng.Occupancy()
	if fast != 1 || slow != 0 {
		t.Fatalf("occupancy after Moved = (%d, %d), want (1, 0)", fast, slow)
	}
	if _, tracked := eng.TierOf(slowFrame(0)); tracked {
		t.Fatal("old frame still tracked after Moved")
	}
	if kind, tracked := eng.TierOf(7); !tracked || kind != mem.DRAM {
		t.Fatalf("new frame TierOf = (%v, %v), want (DRAM, true)", kind, tracked)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPromoteOnPump(t *testing.T) {
	eng, b, cpu := newTestRig(t, Promote, 64)
	for i := uint64(0); i < 4; i++ {
		eng.Track(slowFrame(i))
	}
	before := TelemetrySnapshot()
	eng.Record(slowFrame(1), true)
	eng.Record(slowFrame(3), false)
	if b.moves != 0 {
		t.Fatal("Record must not migrate synchronously")
	}
	eng.Pump(cpu)
	if b.moves != 2 {
		t.Fatalf("pump performed %d migrations, want 2", b.moves)
	}
	d := TelemetrySnapshot().Sub(before)
	if d.Promotions != 2 || d.PagesMoved != 2 {
		t.Fatalf("telemetry delta = %+v, want 2 promotions / 2 pages", d)
	}
	fast, slow := eng.Occupancy()
	if fast != 2 || slow != 2 {
		t.Fatalf("occupancy = (%d, %d), want (2, 2)", fast, slow)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPromoteStallsWhenFastFull(t *testing.T) {
	eng, b, cpu := newTestRig(t, Promote, 2)
	eng.Track(0)
	eng.Track(1) // fast tier at capacity
	eng.Track(slowFrame(0))
	before := TelemetrySnapshot()
	eng.Record(slowFrame(0), false)
	eng.Pump(cpu)
	if b.moves != 0 {
		t.Fatal("promotion proceeded with a full fast tier under Promote")
	}
	if d := TelemetrySnapshot().Sub(before); d.Stalls == 0 {
		t.Fatal("full fast tier did not count a stall")
	}
}

func TestSmartSwapsColdestOut(t *testing.T) {
	eng, b, cpu := newTestRig(t, Smart, 2)
	eng.Track(0)
	eng.Track(1)
	eng.Track(slowFrame(0))
	// Heat frame 1 so frame 0 is the coldest fast frame, then age the
	// bits into history.
	eng.Record(mem.Frame(1), false)
	eng.Scan(cpu, 3)
	before := TelemetrySnapshot()
	eng.Record(slowFrame(0), false)
	eng.Pump(cpu)
	if b.moves != 2 {
		t.Fatalf("smart swap performed %d migrations, want 2 (demote + promote)", b.moves)
	}
	d := TelemetrySnapshot().Sub(before)
	if d.Promotions != 1 || d.Demotions != 1 || d.Swaps != 1 {
		t.Fatalf("telemetry delta = %+v, want 1 promotion / 1 demotion / 1 swap", d)
	}
	// Frame 0 (cold) went to the slow tier; the hot slow frame came in.
	if _, tracked := eng.TierOf(mem.Frame(0)); tracked {
		t.Fatal("victim frame still tracked under its old number")
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanDemotesColdUnderPressure(t *testing.T) {
	eng, b, cpu := newTestRig(t, Demote, 8) // highWater 7, lowWater 6
	for i := uint64(0); i < 8; i++ {
		eng.Track(mem.Frame(i))
	}
	// All frames cold (never recorded): one scan round must demote down
	// to the low-water mark.
	before := TelemetrySnapshot()
	eng.Scan(cpu, 8)
	fast, _ := eng.Occupancy()
	if fast > 6 {
		t.Fatalf("fast occupancy %d after scan, want <= lowWater (6)", fast)
	}
	if b.moves == 0 {
		t.Fatal("no demotions under pressure")
	}
	d := TelemetrySnapshot().Sub(before)
	if d.Demotions == 0 || d.Scans == 0 {
		t.Fatalf("telemetry delta = %+v, want demotions and scans", d)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanSparesHotFrames(t *testing.T) {
	eng, _, cpu := newTestRig(t, Demote, 8)
	for i := uint64(0); i < 8; i++ {
		eng.Track(mem.Frame(i))
		eng.Record(mem.Frame(i), false)
	}
	eng.Scan(cpu, 8) // ages access bits into hot history
	for i := uint64(0); i < 8; i++ {
		eng.Record(mem.Frame(i), false)
	}
	before := TelemetrySnapshot()
	eng.Scan(cpu, 8)
	// Every frame is warm; the fallback may demote exactly the
	// least-hot one, no more.
	if d := TelemetrySnapshot().Sub(before); d.Demotions > 1 {
		t.Fatalf("%d hot frames demoted, want at most the fallback's 1", d.Demotions)
	}
}

func TestDeclinedMigrationIsStall(t *testing.T) {
	eng, b, cpu := newTestRig(t, Promote, 64)
	b.decline = true
	eng.Track(slowFrame(0))
	before := TelemetrySnapshot()
	eng.Record(slowFrame(0), false)
	eng.Pump(cpu)
	if d := TelemetrySnapshot().Sub(before); d.Stalls != 1 || d.Promotions != 0 {
		t.Fatalf("telemetry delta = %+v, want 1 stall / 0 promotions", d)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPumpChargesSimulatedTime(t *testing.T) {
	eng, _, cpu := newTestRig(t, Promote, 64)
	eng.Track(slowFrame(0))
	eng.Record(slowFrame(0), false)
	beforeT := cpu.Clock().Now()
	eng.Pump(cpu)
	if cpu.Clock().Now() == beforeT {
		t.Fatal("Pump with pending work charged no simulated time")
	}
}

func TestRingCompaction(t *testing.T) {
	eng, _, cpu := newTestRig(t, None, 1 << 9)
	for i := uint64(0); i < 256; i++ {
		eng.Track(mem.Frame(i))
	}
	for i := uint64(0); i < 200; i++ {
		eng.Untrack(mem.Frame(i))
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Scanning after compaction must still visit every live frame.
	eng.Scan(cpu, 56)
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if eng.Tracked() != 56 {
		t.Fatalf("Tracked() = %d, want 56", eng.Tracked())
	}
}

func TestUntrackedRecordIgnored(t *testing.T) {
	eng, b, cpu := newTestRig(t, Promote, 64)
	eng.Record(slowFrame(9), true) // never tracked
	eng.Pump(cpu)
	if b.moves != 0 {
		t.Fatal("untracked frame migrated")
	}
}

func TestPendingDropsUntrackedFrame(t *testing.T) {
	eng, b, cpu := newTestRig(t, Promote, 64)
	eng.Track(slowFrame(0))
	eng.Record(slowFrame(0), false)
	eng.Untrack(slowFrame(0)) // freed before the pump
	eng.Pump(cpu)
	if b.moves != 0 {
		t.Fatal("freed frame migrated")
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
