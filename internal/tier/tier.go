// Package tier implements a two-tier memory migration engine layered
// over internal/mem: DRAM is the fast tier, NVM the slow tier. The
// engine tracks per-frame hotness with access-bit sampling (fed from
// the vm/core fault and touch paths) aged by a clock-hand scanner
// charged in simulated time, and drives one of four migration
// policies:
//
//   - none:    first-touch placement only, no migration
//   - promote: on-fault promotion of accessed slow-tier frames
//   - demote:  clock-based demotion of cold fast-tier frames once
//     fast-tier occupancy crosses a high-water mark
//   - smart:   bidirectional — promote hot slow frames, pairing each
//     with the coldest fast frame when the fast tier is full
//
// The engine never moves bytes itself: migration goes through a
// Backend (vm kernel, core system, or memfs file system) that owns the
// real translation machinery — page tables and rmaps, FOM object maps,
// or range translations — so a migrated page genuinely gets a new
// physical frame and every translation pointing at the old one is
// updated and shot down. The engine only decides *which* frame moves
// *where*, maintains per-tier occupancy accounting, and charges the
// policy's simulated cost (TierScanFrame per scanned frame,
// TierPolicyOp per migration decision).
package tier

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Policy selects the migration policy.
type Policy int

const (
	// None performs no migrations: frames stay where first placed.
	None Policy = iota
	// Promote moves a slow-tier frame to the fast tier when it is
	// accessed, as long as the fast tier has room.
	Promote
	// Demote evicts cold fast-tier frames to the slow tier when
	// fast-tier occupancy crosses the high-water mark, making room for
	// new fast-tier allocations.
	Demote
	// Smart combines both directions: accessed slow frames are
	// promoted, and when the fast tier is full the coldest fast frame
	// is demoted to make room (a bidirectional swap).
	Smart
)

// Policies lists all policies in definition order (for sweeps).
var Policies = []Policy{None, Promote, Demote, Smart}

// String returns the policy's flag-spelling name.
func (p Policy) String() string {
	switch p {
	case None:
		return "none"
	case Promote:
		return "promote"
	case Demote:
		return "demote"
	case Smart:
		return "smart"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses a policy name as spelled by String.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies {
		if p.String() == s {
			return p, nil
		}
	}
	return None, fmt.Errorf("tier: unknown policy %q (want none|promote|demote|smart)", s)
}

// Backend is the translation layer that owns the frames the engine
// manages. MigrateFrame must move the page backed by f to a new frame
// in the target tier through the backend's real machinery — new frame
// allocated from the target tier, byte contents copied, every
// translation (page tables + rmap, object maps, range tables) updated,
// and stale TLB entries shot down — then report the relocation(s) via
// Engine.Moved. It returns the number of frames actually relocated
// (range-translated backends may have to move a whole extent or split
// one) and whether the migration happened; declining (frame pinned,
// target tier full, frame no longer live) returns ok=false and is
// counted as a stall, not an error.
type Backend interface {
	MigrateFrame(cur *sim.CPU, f mem.Frame, to mem.RegionKind) (pages uint64, ok bool)
}

// frameState is the engine's per-tracked-frame record.
type frameState struct {
	idx      int   // position in the clock ring
	hot      uint8 // aged access history; bit 7 = most recent scan epoch
	accessed bool  // access bit since the last scan
}

// Engine tracks frame hotness and drives migrations. It is not
// goroutine-safe: in host-parallel phases each CPU context owns its
// own engine (mirroring the per-CPU kernels in the bench drivers), or
// calls arrive inside machine-ordered sections.
type Engine struct {
	params  *sim.Params
	memory  *mem.Memory
	policy  Policy
	backend Backend

	// fastCap is the maximum number of tracked frames the engine will
	// place in the fast tier; highWater/lowWater derive from it and
	// bound the demotion hysteresis.
	fastCap   uint64
	highWater uint64
	lowWater  uint64

	frames map[mem.Frame]*frameState
	ring   []mem.Frame // clock order; ringDead marks tombstones
	dead   int         // tombstone count, triggers compaction
	hand   int

	fastUsed uint64
	slowUsed uint64

	// pending holds slow-tier frames queued for promotion by Record;
	// they migrate in Pump, at a quiescent point of the faulting
	// operation, so the backend never re-enters its own fault path.
	pending    []mem.Frame
	pendingSet map[mem.Frame]struct{}

	// migrating suppresses Track/Untrack while a backend relocates
	// frames: the backend reports the move via Moved instead, so
	// hotness state follows the data.
	migrating bool
}

// ringDead tombstones a ring slot whose frame was untracked.
const ringDead = ^mem.Frame(0)

// maxPending bounds the promotion queue; beyond it new candidates are
// dropped (counted as stalls) rather than growing without bound.
const maxPending = 1024

// New creates an engine over m with the given policy and fast-tier
// capacity (in frames). The backend may be attached later via
// SetBackend (the vm/core constructors attach themselves).
func New(params *sim.Params, m *mem.Memory, policy Policy, fastCap uint64) *Engine {
	e := &Engine{
		params:     params,
		memory:     m,
		policy:     policy,
		fastCap:    fastCap,
		frames:     make(map[mem.Frame]*frameState),
		pendingSet: make(map[mem.Frame]struct{}),
	}
	// Demotion hysteresis: start demoting at 7/8 of capacity, stop at
	// 3/4, so the scanner works in bursts instead of one frame per op.
	e.highWater = fastCap - fastCap/8
	e.lowWater = fastCap - fastCap/4
	if e.lowWater == 0 {
		e.lowWater = 1
	}
	return e
}

// SetBackend attaches the translation layer that executes migrations.
func (e *Engine) SetBackend(b Backend) { e.backend = b }

// Policy returns the engine's migration policy.
func (e *Engine) Policy() Policy { return e.policy }

// FastCap returns the fast-tier capacity in frames.
func (e *Engine) FastCap() uint64 { return e.fastCap }

// PreferFast reports whether a new allocation should be placed in the
// fast tier: true while tracked fast-tier occupancy is below capacity.
// Allocators consult this for first-touch placement.
func (e *Engine) PreferFast() bool { return e.fastUsed < e.fastCap }

// Track registers a newly allocated frame with the engine. The tier is
// inferred from the frame's region kind. No-op while a migration is in
// flight (the backend reports relocations via Moved instead).
func (e *Engine) Track(f mem.Frame) {
	if e.migrating {
		return
	}
	if _, dup := e.frames[f]; dup {
		panic(fmt.Sprintf("tier: frame %d tracked twice", f))
	}
	st := &frameState{idx: len(e.ring)}
	e.ring = append(e.ring, f)
	e.frames[f] = st
	if e.memory.Kind(f) == mem.DRAM {
		e.fastUsed++
		gaugeMax(&telemetry.peakFast, e.fastUsed)
	} else {
		e.slowUsed++
		gaugeMax(&telemetry.peakSlow, e.slowUsed)
	}
}

// Untrack removes a freed frame from the engine. No-op for untracked
// frames and while a migration is in flight.
func (e *Engine) Untrack(f mem.Frame) {
	if e.migrating {
		return
	}
	st, ok := e.frames[f]
	if !ok {
		return
	}
	e.ring[st.idx] = ringDead
	e.dead++
	delete(e.frames, f)
	if _, qd := e.pendingSet[f]; qd {
		delete(e.pendingSet, f)
	}
	if e.memory.Kind(f) == mem.DRAM {
		e.fastUsed--
	} else {
		e.slowUsed--
	}
	e.maybeCompact()
}

// Moved re-keys a tracked frame after the backend relocated its
// contents from old to new, carrying hotness state and occupancy
// accounting across the move. Backends call it once per relocated
// frame inside MigrateFrame.
func (e *Engine) Moved(old, new mem.Frame) {
	st, ok := e.frames[old]
	if !ok {
		return // frame was never tracked (e.g. file padding); nothing follows it
	}
	if _, dup := e.frames[new]; dup {
		panic(fmt.Sprintf("tier: Moved target frame %d already tracked", new))
	}
	delete(e.frames, old)
	e.frames[new] = st
	e.ring[st.idx] = new
	if _, qd := e.pendingSet[old]; qd {
		delete(e.pendingSet, old)
	}
	oldFast := e.memory.Kind(old) == mem.DRAM
	newFast := e.memory.Kind(new) == mem.DRAM
	if oldFast != newFast {
		if newFast {
			e.fastUsed++
			e.slowUsed--
			gaugeMax(&telemetry.peakFast, e.fastUsed)
		} else {
			e.fastUsed--
			e.slowUsed++
			gaugeMax(&telemetry.peakSlow, e.slowUsed)
		}
	}
}

// Record samples an access to frame f (the access-bit feed from fault
// and touch paths). Under promote/smart, slow-tier frames become
// promotion candidates, executed at the next Pump. Sampling itself
// charges no simulated time — it piggybacks on the access that is
// already being charged.
func (e *Engine) Record(f mem.Frame, write bool) {
	st, ok := e.frames[f]
	if !ok {
		return
	}
	st.accessed = true
	telemetry.sampledRefs.Add(1)
	if e.policy != Promote && e.policy != Smart {
		return
	}
	if e.memory.Kind(f) == mem.DRAM {
		return
	}
	if _, qd := e.pendingSet[f]; qd {
		return
	}
	if len(e.pending) >= maxPending {
		telemetry.stalls.Add(1)
		return
	}
	e.pendingSet[f] = struct{}{}
	e.pending = append(e.pending, f)
}

// Pump executes queued promotions. Call it at a quiescent point of the
// operation that recorded the accesses (end of fault/touch), so the
// migration cost lands in that operation's latency window — on-fault
// promotion semantics — without re-entering the backend mid-update.
func (e *Engine) Pump(cur *sim.CPU) {
	if e.backend == nil || e.migrating || len(e.pending) == 0 {
		return
	}
	work := e.pending
	e.pending = e.pending[:0]
	for _, f := range work {
		if _, qd := e.pendingSet[f]; !qd {
			continue // untracked or already moved since queueing
		}
		delete(e.pendingSet, f)
		if _, ok := e.frames[f]; !ok || e.memory.Kind(f) == mem.DRAM {
			continue
		}
		cur.Clock().Advance(e.params.TierPolicyOp)
		if e.fastUsed >= e.fastCap {
			if e.policy != Smart {
				telemetry.stalls.Add(1)
				continue
			}
			// Smart: demote the coldest fast frame to make room, then
			// promote — a bidirectional swap.
			victim, found := e.coldestFast()
			if !found || !e.migrate(cur, victim, mem.NVM, &telemetry.demotions) {
				telemetry.stalls.Add(1)
				continue
			}
			if e.migrate(cur, f, mem.DRAM, &telemetry.promotions) {
				telemetry.swaps.Add(1)
			}
			continue
		}
		e.migrate(cur, f, mem.DRAM, &telemetry.promotions)
	}
}

// Scan advances the clock hand over up to batch tracked frames: each
// visited frame's hotness ages (hot >>= 1, access bit folded into the
// top bit) and its access bit clears, charging TierScanFrame per
// frame. Under demote/smart, when fast-tier occupancy is above the
// high-water mark the scan also demotes cold fast-tier frames until
// occupancy falls to the low-water mark or the batch is exhausted.
func (e *Engine) Scan(cur *sim.CPU, batch int) {
	if len(e.frames) == 0 || e.migrating {
		return
	}
	demoting := (e.policy == Demote || e.policy == Smart) && e.fastUsed > e.highWater
	var coldest mem.Frame
	coldestHot := -1
	visited := 0
	for visited < batch {
		if e.hand >= len(e.ring) {
			e.hand = 0
		}
		f := e.ring[e.hand]
		e.hand++
		if f == ringDead {
			continue
		}
		st := e.frames[f]
		visited++
		telemetry.scans.Add(1)
		cur.Clock().Advance(e.params.TierScanFrame)
		st.hot >>= 1
		if st.accessed {
			st.hot |= 0x80
			st.accessed = false
		}
		if !demoting || e.memory.Kind(f) != mem.DRAM {
			continue
		}
		if st.hot == 0 {
			cur.Clock().Advance(e.params.TierPolicyOp)
			e.migrate(cur, f, mem.NVM, &telemetry.demotions)
		} else if coldestHot < 0 || int(st.hot) < coldestHot {
			coldest, coldestHot = f, int(st.hot)
		}
		if e.fastUsed <= e.lowWater {
			demoting = false
		}
	}
	// Still above the high-water mark after a full batch of warm
	// frames: demote the least-hot one seen so the scanner always makes
	// progress under sustained pressure.
	if demoting && e.fastUsed > e.highWater && coldestHot >= 0 {
		if _, ok := e.frames[coldest]; ok && e.memory.Kind(coldest) == mem.DRAM {
			cur.Clock().Advance(e.params.TierPolicyOp)
			e.migrate(cur, coldest, mem.NVM, &telemetry.demotions)
		}
	}
}

// migrate asks the backend to move f into the target tier and records
// telemetry. Returns whether the backend performed the migration.
func (e *Engine) migrate(cur *sim.CPU, f mem.Frame, to mem.RegionKind, counter *atomicU64) bool {
	if e.backend == nil {
		return false
	}
	e.migrating = true
	start := cur.Clock().Now()
	pages, ok := e.backend.MigrateFrame(cur, f, to)
	e.migrating = false
	if !ok {
		telemetry.stalls.Add(1)
		return false
	}
	counter.Add(1)
	telemetry.pagesMoved.Add(pages)
	if pages > 1 {
		telemetry.extentMoves.Add(1)
	}
	telemetry.migrateTime.Add(uint64(cur.Clock().Now() - start))
	return true
}

// coldestFast returns the tracked fast-tier frame with the lowest
// hotness, scanning the ring from the clock hand (deterministic order,
// first-coldest wins ties).
func (e *Engine) coldestFast() (mem.Frame, bool) {
	var best mem.Frame
	bestHot := -1
	n := len(e.ring)
	for i := 0; i < n; i++ {
		f := e.ring[(e.hand+i)%n]
		if f == ringDead {
			continue
		}
		if e.memory.Kind(f) != mem.DRAM {
			continue
		}
		st := e.frames[f]
		h := int(st.hot)
		if st.accessed {
			h |= 0x100 // unscanned recent access outranks any aged history
		}
		if bestHot < 0 || h < bestHot {
			best, bestHot = f, h
			if h == 0 {
				break
			}
		}
	}
	return best, bestHot >= 0
}

// maybeCompact rebuilds the ring when over half its slots are
// tombstones, preserving clock order of the survivors.
func (e *Engine) maybeCompact() {
	if e.dead*2 <= len(e.ring) || len(e.ring) < 64 {
		return
	}
	live := e.ring[:0]
	newHand := 0
	for i, f := range e.ring {
		if f == ringDead {
			continue
		}
		if i < e.hand {
			newHand++
		}
		e.frames[f].idx = len(live)
		live = append(live, f)
	}
	e.ring = live
	e.hand = newHand
	e.dead = 0
}

// TierOf returns the tier the engine believes f occupies and whether f
// is tracked. The checker compares this against mem.Kind to prove
// translation ↔ placement agreement after migrations.
func (e *Engine) TierOf(f mem.Frame) (mem.RegionKind, bool) {
	if _, ok := e.frames[f]; !ok {
		return mem.DRAM, false
	}
	return e.memory.Kind(f), true
}

// Occupancy returns the tracked frame counts per tier.
func (e *Engine) Occupancy() (fast, slow uint64) { return e.fastUsed, e.slowUsed }

// Tracked returns the number of tracked frames.
func (e *Engine) Tracked() int { return len(e.frames) }

// CheckInvariants audits the engine's accounting:
//   - per-tier occupancy counters match a recount over tracked frames
//   - no frame is in two tiers (each tracked frame maps to exactly one
//     region kind; the frames map structurally prevents double entries,
//     the recount proves the counters agree with placement)
//   - the clock ring and the frames map are a bijection over live slots
//   - every pending promotion candidate is still a tracked frame
func (e *Engine) CheckInvariants() error {
	var fast, slow uint64
	for f, st := range e.frames {
		if st.idx < 0 || st.idx >= len(e.ring) || e.ring[st.idx] != f {
			return fmt.Errorf("tier: frame %d ring slot %d does not point back", f, st.idx)
		}
		if e.memory.Kind(f) == mem.DRAM {
			fast++
		} else {
			slow++
		}
	}
	if fast != e.fastUsed || slow != e.slowUsed {
		return fmt.Errorf("tier: occupancy counters fast=%d slow=%d, recount fast=%d slow=%d",
			e.fastUsed, e.slowUsed, fast, slow)
	}
	live := 0
	for _, f := range e.ring {
		if f == ringDead {
			continue
		}
		live++
		if _, ok := e.frames[f]; !ok {
			return fmt.Errorf("tier: ring frame %d not tracked", f)
		}
	}
	if live != len(e.frames) {
		return fmt.Errorf("tier: ring has %d live slots for %d tracked frames", live, len(e.frames))
	}
	for f := range e.pendingSet {
		if _, ok := e.frames[f]; !ok {
			return fmt.Errorf("tier: pending frame %d not tracked", f)
		}
	}
	return nil
}
