package trace_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Example generates a synthetic allocation trace and replays it on
// file-only memory, reporting where the virtual time went.
func Example() {
	tr, err := trace.Generate(trace.GenSpec{
		Name:      "demo",
		Ops:       100,
		SizeDist:  workload.SmallHeavy,
		MinPages:  1,
		MaxPages:  32,
		TouchFrac: 0.5,
		WriteFrac: 0.5,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: 4096, NVMFrames: 65536})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(clock, &params, memory, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	p, err := sys.NewProcess(core.Ranges)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := trace.Replay(tr, trace.NewFOMTarget(p), clock)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backend=%s ops=%d complete=%v leak-free=%v\n",
		rep.Backend, rep.Ops, rep.Allocs == rep.Frees, sys.FreeFrames() == 65536)
	// Output: backend=fom-ranges ops=107 complete=true leak-free=true
}
