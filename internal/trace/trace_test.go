package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

func genSpec(ops int, seed uint64) GenSpec {
	return GenSpec{
		Name:      "test",
		Ops:       ops,
		SizeDist:  workload.SmallHeavy,
		MinPages:  1,
		MaxPages:  256,
		TouchFrac: 0.6,
		WriteFrac: 0.4,
		Seed:      seed,
	}
}

func TestGenerateValidates(t *testing.T) {
	tr, err := Generate(genSpec(500, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) < 500 {
		t.Fatalf("only %d ops", len(tr.Ops))
	}
	// Trailing frees close all allocations.
	live := 0
	for _, op := range tr.Ops {
		switch op.Kind {
		case OpAlloc:
			live++
		case OpFree:
			live--
		}
	}
	if live != 0 {
		t.Fatalf("%d allocations never freed", live)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenSpec{Ops: 0}); err == nil {
		t.Fatal("zero ops accepted")
	}
	bad := genSpec(10, 1)
	bad.TouchFrac = 1.5
	if _, err := Generate(bad); err == nil {
		t.Fatal("bad fraction accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr, err := Generate(genSpec(200, 2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Ops) != len(tr.Ops) {
		t.Fatalf("round trip: %q/%d vs %q/%d", got.Name, len(got.Ops), tr.Name, len(tr.Ops))
	}
	for i := range tr.Ops {
		if got.Ops[i] != tr.Ops[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, got.Ops[i], tr.Ops[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"trace":"x","ops":5}` + "\n")); err == nil {
		t.Fatal("op-count mismatch accepted")
	}
}

func TestValidateCatchesBadTraces(t *testing.T) {
	cases := []Trace{
		{Ops: []Op{{Kind: OpFree, ID: 1}}},
		{Ops: []Op{{Kind: OpAlloc, ID: 1, Pages: 0}}},
		{Ops: []Op{{Kind: OpAlloc, ID: 1, Pages: 2}, {Kind: OpTouch, ID: 1, Page: 2}}},
		{Ops: []Op{{Kind: OpAlloc, ID: 1, Pages: 2}, {Kind: OpAlloc, ID: 1, Pages: 2}}},
		{Ops: []Op{{Kind: "explode", ID: 1}}},
		{Ops: []Op{{Kind: OpAlloc, ID: 1, Pages: 1}, {Kind: OpFree, ID: 1}, {Kind: OpTouch, ID: 1}}},
	}
	for i, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Fatalf("case %d: invalid trace accepted", i)
		}
	}
}

// replayMachine builds both backends over one machine.
func replayMachine(t *testing.T) (*sim.Clock, *vm.AddressSpace, *core.Process) {
	t.Helper()
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: 1 << 18, NVMFrames: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	kernel, err := vm.NewKernel(clock, &params, memory, vm.Config{PoolBase: 0, PoolFrames: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	as, err := kernel.NewAddressSpace()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(clock, &params, memory, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.NewProcess(core.Ranges)
	if err != nil {
		t.Fatal(err)
	}
	return clock, as, p
}

func TestReplayOnBothBackends(t *testing.T) {
	tr, err := Generate(genSpec(800, 3))
	if err != nil {
		t.Fatal(err)
	}
	clock, as, p := replayMachine(t)

	repVM, err := Replay(tr, NewVMTarget(as, false), clock)
	if err != nil {
		t.Fatalf("vm replay: %v", err)
	}
	repFOM, err := Replay(tr, NewFOMTarget(p), clock)
	if err != nil {
		t.Fatalf("fom replay: %v", err)
	}
	if repVM.Ops != len(tr.Ops) || repFOM.Ops != len(tr.Ops) {
		t.Fatal("op counts wrong")
	}
	if repVM.Allocs != repFOM.Allocs || repVM.Touches != repFOM.Touches {
		t.Fatal("replays diverged in op mix")
	}
	// First touches fault on the baseline, so its touch time dominates.
	if repVM.TouchTime <= repFOM.TouchTime {
		t.Fatalf("baseline touch time (%v) not above FOM (%v)", repVM.TouchTime, repFOM.TouchTime)
	}
	if !strings.Contains(repVM.String(), "baseline-demand") {
		t.Fatalf("report: %s", repVM)
	}
}

func TestReplayRejectsInvalidTrace(t *testing.T) {
	clock, as, _ := replayMachine(t)
	bad := &Trace{Ops: []Op{{Kind: OpFree, ID: 9}}}
	if _, err := Replay(bad, NewVMTarget(as, false), clock); err == nil {
		t.Fatal("invalid trace replayed")
	}
}

// Property: generated traces always validate and always replay cleanly
// on file-only memory, leaving no leaked frames.
func TestGenerateReplayQuickProperty(t *testing.T) {
	fn := func(seed uint64) bool {
		tr, err := Generate(genSpec(300, seed))
		if err != nil {
			return false
		}
		clock := &sim.Clock{}
		params := sim.DefaultParams()
		memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: 4096, NVMFrames: 1 << 18})
		if err != nil {
			return false
		}
		sys, err := core.NewSystem(clock, &params, memory, core.Options{})
		if err != nil {
			return false
		}
		p, err := sys.NewProcess(core.Ranges)
		if err != nil {
			return false
		}
		free0 := sys.FreeFrames()
		if _, err := Replay(tr, NewFOMTarget(p), clock); err != nil {
			t.Logf("replay: %v", err)
			return false
		}
		return sys.FreeFrames() == free0
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
