package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenSpec is fixed forever: the golden file pins Generate's exact
// output for it, so any accidental change to the generator, the RNG,
// or the serialization format — all of which persisted traces and
// snapshot determinism depend on — fails this test instead of silently
// invalidating previously written files.
var goldenSpec = GenSpec{
	Name:      "golden-small",
	Ops:       64,
	SizeDist:  workload.SmallHeavy,
	MinPages:  1,
	MaxPages:  256,
	TouchFrac: 0.5,
	WriteFrac: 0.5,
	Seed:      12345,
}

func TestGenerateGolden(t *testing.T) {
	tr, err := Generate(goldenSpec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "gen_small.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Generate output changed: got %d bytes, golden %d bytes.\n"+
			"If the change is intentional, regenerate with `go test ./internal/trace -run TestGenerateGolden -update`.",
			buf.Len(), len(want))
	}
	// The golden bytes must also survive the decoder.
	back, err := Read(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ops) != len(tr.Ops) || back.Name != tr.Name {
		t.Fatalf("golden decode mismatch: %d ops %q, want %d ops %q", len(back.Ops), back.Name, len(tr.Ops), tr.Name)
	}
}
