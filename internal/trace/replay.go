package trace

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Target executes trace operations on some memory backend.
type Target interface {
	// Name identifies the backend in reports.
	Name() string
	// Alloc creates an allocation of the given page count for handle
	// id.
	Alloc(id int, pages uint64) error
	// Free releases handle id.
	Free(id int) error
	// Touch accesses one page of handle id.
	Touch(id int, page uint64, write bool) error
}

const rw = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser

// Report summarizes a replay.
type Report struct {
	Backend string
	Ops     int
	// Virtual time per op kind.
	AllocTime sim.Time
	FreeTime  sim.Time
	TouchTime sim.Time
	Allocs    int
	Frees     int
	Touches   int
}

// Total returns the whole replay's virtual time.
func (r Report) Total() sim.Time { return r.AllocTime + r.FreeTime + r.TouchTime }

// String renders the report.
func (r Report) String() string {
	perTouch := float64(0)
	if r.Touches > 0 {
		perTouch = float64(r.TouchTime) / float64(r.Touches)
	}
	return fmt.Sprintf(
		"backend=%s ops=%d total=%v\n  alloc: %d ops in %v\n  free:  %d ops in %v\n  touch: %d ops in %v (%.1f ns/touch)",
		r.Backend, r.Ops, r.Total(), r.Allocs, r.AllocTime, r.Frees, r.FreeTime,
		r.Touches, r.TouchTime, perTouch)
}

// Replay executes the trace on the target, attributing virtual time by
// operation kind.
func Replay(t *Trace, target Target, clock *sim.Clock) (Report, error) {
	if err := t.Validate(); err != nil {
		return Report{}, err
	}
	rep := Report{Backend: target.Name(), Ops: len(t.Ops)}
	// Measure machine-wide time when the clock belongs to a machine: an
	// op may switch the executing CPU or fan work out to other CPUs
	// (shootdown IPIs), which per-CPU Now() would miss.
	now := clock.Now
	sync := func() {}
	if mach := clock.Machine(); mach != nil {
		now = mach.Time
		// Each op starts from a synchronized machine so that work
		// charged to a lagging CPU is never masked by the global max.
		sync = mach.Sync
	}
	for i, op := range t.Ops {
		sync()
		start := now()
		var err error
		switch op.Kind {
		case OpAlloc:
			err = target.Alloc(op.ID, op.Pages)
			rep.AllocTime += now() - start
			rep.Allocs++
		case OpFree:
			err = target.Free(op.ID)
			rep.FreeTime += now() - start
			rep.Frees++
		case OpTouch:
			err = target.Touch(op.ID, op.Page, op.Write)
			rep.TouchTime += now() - start
			rep.Touches++
		}
		if err != nil {
			return rep, fmt.Errorf("trace: op %d (%s id=%d): %w", i, op.Kind, op.ID, err)
		}
	}
	return rep, nil
}

// VMTarget replays onto a baseline address space.
type VMTarget struct {
	as       *vm.AddressSpace
	populate bool
	regions  map[int]struct {
		va    mem.VirtAddr
		pages uint64
	}
}

// NewVMTarget wraps a baseline address space. populate selects
// MAP_POPULATE for allocations.
func NewVMTarget(as *vm.AddressSpace, populate bool) *VMTarget {
	return &VMTarget{
		as:       as,
		populate: populate,
		regions: make(map[int]struct {
			va    mem.VirtAddr
			pages uint64
		}),
	}
}

// Name implements Target.
func (t *VMTarget) Name() string {
	if t.populate {
		return "baseline-populate"
	}
	return "baseline-demand"
}

// Alloc implements Target.
func (t *VMTarget) Alloc(id int, pages uint64) error {
	va, err := t.as.Mmap(vm.MmapRequest{Pages: pages, Prot: rw, Anon: true, Private: true, Populate: t.populate})
	if err != nil {
		return err
	}
	t.regions[id] = struct {
		va    mem.VirtAddr
		pages uint64
	}{va, pages}
	return nil
}

// Free implements Target.
func (t *VMTarget) Free(id int) error {
	r, ok := t.regions[id]
	if !ok {
		return fmt.Errorf("vm target: unknown handle %d", id)
	}
	delete(t.regions, id)
	return t.as.Munmap(r.va, r.pages)
}

// Touch implements Target.
func (t *VMTarget) Touch(id int, page uint64, write bool) error {
	r, ok := t.regions[id]
	if !ok {
		return fmt.Errorf("vm target: unknown handle %d", id)
	}
	return t.as.Touch(r.va+mem.VirtAddr(page*mem.FrameSize), write)
}

// FOMTarget replays onto a file-only-memory process.
type FOMTarget struct {
	p        *core.Process
	mappings map[int]*core.Mapping
}

// NewFOMTarget wraps a file-only-memory process.
func NewFOMTarget(p *core.Process) *FOMTarget {
	return &FOMTarget{p: p, mappings: make(map[int]*core.Mapping)}
}

// Name implements Target.
func (t *FOMTarget) Name() string { return "fom-" + t.p.Mode().String() }

// Alloc implements Target.
func (t *FOMTarget) Alloc(id int, pages uint64) error {
	m, err := t.p.AllocVolatile(pages, rw)
	if err != nil {
		return err
	}
	t.mappings[id] = m
	return nil
}

// Free implements Target.
func (t *FOMTarget) Free(id int) error {
	m, ok := t.mappings[id]
	if !ok {
		return fmt.Errorf("fom target: unknown handle %d", id)
	}
	delete(t.mappings, id)
	return t.p.Unmap(m)
}

// Touch implements Target.
func (t *FOMTarget) Touch(id int, page uint64, write bool) error {
	m, ok := t.mappings[id]
	if !ok {
		return fmt.Errorf("fom target: unknown handle %d", id)
	}
	va, err := m.VAForOffset(page * mem.FrameSize)
	if err != nil {
		return err
	}
	return t.p.Touch(va, write)
}

var (
	_ Target = (*VMTarget)(nil)
	_ Target = (*FOMTarget)(nil)
)
