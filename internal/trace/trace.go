// Package trace records and replays memory-operation traces against
// either backend. A trace is a deterministic sequence of allocate /
// free / touch operations (JSON-lines on disk), generated synthetically
// from the workload distributions or captured from an application; the
// replayer executes it against the baseline VM or file-only memory and
// reports where the virtual time went.
//
// Traces stand in for the production allocator traces the paper's
// evaluation methodology would want but which are not publicly
// available (see DESIGN.md §2).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/workload"
)

// OpKind names a trace operation.
type OpKind string

// Supported operations.
const (
	OpAlloc OpKind = "alloc" // allocate Pages pages; result handle = ID
	OpFree  OpKind = "free"  // free allocation ID
	OpTouch OpKind = "touch" // touch page Page of allocation ID
)

// Op is one trace record.
type Op struct {
	Kind  OpKind `json:"op"`
	ID    int    `json:"id"`
	Pages uint64 `json:"pages,omitempty"`
	Page  uint64 `json:"page,omitempty"`
	Write bool   `json:"write,omitempty"`
}

// Trace is an ordered operation sequence.
type Trace struct {
	Name string
	Ops  []Op
}

// Write encodes the trace as JSON lines (one op per line, preceded by
// a header line holding the name).
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	header := struct {
		Trace string `json:"trace"`
		Ops   int    `json:"ops"`
	}{t.Name, len(t.Ops)}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header); err != nil {
		return err
	}
	for i := range t.Ops {
		if err := enc.Encode(&t.Ops[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var header struct {
		Trace string `json:"trace"`
		Ops   int    `json:"ops"`
	}
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	t := &Trace{Name: header.Trace}
	for {
		var op Op
		if err := dec.Decode(&op); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("trace: reading op %d: %w", len(t.Ops), err)
		}
		t.Ops = append(t.Ops, op)
	}
	if header.Ops != 0 && header.Ops != len(t.Ops) {
		return nil, fmt.Errorf("trace: header says %d ops, file holds %d", header.Ops, len(t.Ops))
	}
	return t, nil
}

// Validate checks referential integrity: frees and touches refer to
// live allocations, touches stay in bounds.
func (t *Trace) Validate() error {
	live := make(map[int]uint64)
	for i, op := range t.Ops {
		switch op.Kind {
		case OpAlloc:
			if op.Pages == 0 {
				return fmt.Errorf("trace: op %d: zero-page alloc", i)
			}
			if _, dup := live[op.ID]; dup {
				return fmt.Errorf("trace: op %d: handle %d reused while live", i, op.ID)
			}
			live[op.ID] = op.Pages
		case OpFree:
			if _, ok := live[op.ID]; !ok {
				return fmt.Errorf("trace: op %d: free of dead handle %d", i, op.ID)
			}
			delete(live, op.ID)
		case OpTouch:
			pages, ok := live[op.ID]
			if !ok {
				return fmt.Errorf("trace: op %d: touch of dead handle %d", i, op.ID)
			}
			if op.Page >= pages {
				return fmt.Errorf("trace: op %d: touch page %d beyond %d", i, op.Page, pages)
			}
		default:
			return fmt.Errorf("trace: op %d: unknown kind %q", i, op.Kind)
		}
	}
	return nil
}

// GenSpec configures synthetic trace generation.
type GenSpec struct {
	Name      string
	Ops       int               // total operations
	SizeDist  workload.SizeDist // allocation sizes
	MinPages  uint64
	MaxPages  uint64
	TouchFrac float64 // fraction of ops that are touches (rest split alloc/free)
	WriteFrac float64 // fraction of touches that write
	Seed      uint64
}

// Generate builds a valid synthetic trace from the spec.
func Generate(spec GenSpec) (*Trace, error) {
	if spec.Ops <= 0 {
		return nil, fmt.Errorf("trace: non-positive op count")
	}
	if spec.TouchFrac < 0 || spec.TouchFrac > 1 || spec.WriteFrac < 0 || spec.WriteFrac > 1 {
		return nil, fmt.Errorf("trace: fractions must be in [0,1]")
	}
	if spec.MinPages == 0 {
		spec.MinPages = 1
	}
	if spec.MaxPages < spec.MinPages {
		spec.MaxPages = spec.MinPages
	}
	sizes, err := workload.AllocSizes(spec.SizeDist, spec.Ops, spec.MinPages, spec.MaxPages, spec.Seed)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(spec.Seed + 1)
	t := &Trace{Name: spec.Name}
	type liveAlloc struct {
		id    int
		pages uint64
	}
	var live []liveAlloc
	nextID := 0
	for i := 0; i < spec.Ops; i++ {
		r := rng.Float64()
		switch {
		case len(live) > 0 && r < spec.TouchFrac:
			a := live[rng.Intn(len(live))]
			t.Ops = append(t.Ops, Op{
				Kind:  OpTouch,
				ID:    a.id,
				Page:  rng.Uint64n(a.pages),
				Write: rng.Float64() < spec.WriteFrac,
			})
		case len(live) > 4 && r < spec.TouchFrac+(1-spec.TouchFrac)/2:
			j := rng.Intn(len(live))
			t.Ops = append(t.Ops, Op{Kind: OpFree, ID: live[j].id})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		default:
			id := nextID
			nextID++
			pages := sizes[i]
			t.Ops = append(t.Ops, Op{Kind: OpAlloc, ID: id, Pages: pages})
			live = append(live, liveAlloc{id, pages})
		}
	}
	// Close out: free everything so replays leave clean state.
	for _, a := range live {
		t.Ops = append(t.Ops, Op{Kind: OpFree, ID: a.id})
	}
	return t, t.Validate()
}
