package workload

import (
	"testing"

	"repro/internal/sim"
)

func TestSplitCoversTotal(t *testing.T) {
	for _, tc := range []struct {
		total uint64
		n     int
	}{{0, 1}, {1, 1}, {10, 3}, {7, 8}, {1 << 22, 8}} {
		shares := Split(tc.total, tc.n)
		if len(shares) != tc.n {
			t.Fatalf("Split(%d,%d) has %d shares", tc.total, tc.n, len(shares))
		}
		var sum uint64
		for _, s := range shares {
			sum += s
		}
		if sum != tc.total {
			t.Fatalf("Split(%d,%d) sums to %d", tc.total, tc.n, sum)
		}
	}
}

func TestPartitionPreservesOrder(t *testing.T) {
	shares := Split(100, 4) // 25 each
	idx := []uint64{99, 0, 26, 25, 74, 50, 1}
	parts := Partition(idx, shares)
	if got := parts[0]; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("partition 0 = %v", got)
	}
	if got := parts[1]; len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("partition 1 = %v", got)
	}
	if got := parts[2]; len(got) != 2 || got[0] != 24 || got[1] != 0 {
		t.Fatalf("partition 2 = %v", got)
	}
	if got := parts[3]; len(got) != 1 || got[0] != 24 {
		t.Fatalf("partition 3 = %v", got)
	}
}

// TestLatencyRecordZeroAlloc pins the hot-path guarantee: recording a
// latency sample must not allocate.
func TestLatencyRecordZeroAlloc(t *testing.T) {
	var l Latency
	if n := testing.AllocsPerRun(1000, func() {
		l.Record(1234)
	}); n != 0 {
		t.Fatalf("Latency.Record allocates %.1f objects/op", n)
	}
}

func TestLatencyMergeAndQuantiles(t *testing.T) {
	var a, b Latency
	for i := 1; i <= 100; i++ {
		a.Record(sim.Time(i))
	}
	b.Record(sim.Time(10_000))
	a.Merge(&b)
	if a.Count() != 101 {
		t.Fatalf("Count = %d", a.Count())
	}
	if got := a.Max(); got != 10_000 {
		t.Fatalf("Max = %d", got)
	}
	if got := a.Quantile(0.5); got < 40 || got > 60 {
		t.Fatalf("p50 = %d, want ~50", got)
	}
	if got := a.Quantile(0.999); got < 9_000 {
		t.Fatalf("p99.9 = %d, want the 10k outlier's bucket", got)
	}
}
