package workload

import (
	"testing"

	"repro/internal/sim"
)

func TestSplitCoversTotal(t *testing.T) {
	for _, tc := range []struct {
		total uint64
		n     int
	}{{0, 1}, {1, 1}, {10, 3}, {7, 8}, {1 << 22, 8}} {
		shares := Split(tc.total, tc.n)
		if len(shares) != tc.n {
			t.Fatalf("Split(%d,%d) has %d shares", tc.total, tc.n, len(shares))
		}
		var sum uint64
		for _, s := range shares {
			sum += s
		}
		if sum != tc.total {
			t.Fatalf("Split(%d,%d) sums to %d", tc.total, tc.n, sum)
		}
	}
}

func TestPartitionPreservesOrder(t *testing.T) {
	shares := Split(100, 4) // 25 each
	idx := []uint64{99, 0, 26, 25, 74, 50, 1}
	parts := Partition(idx, shares)
	if got := parts[0]; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("partition 0 = %v", got)
	}
	if got := parts[1]; len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("partition 1 = %v", got)
	}
	if got := parts[2]; len(got) != 2 || got[0] != 24 || got[1] != 0 {
		t.Fatalf("partition 2 = %v", got)
	}
	if got := parts[3]; len(got) != 1 || got[0] != 24 {
		t.Fatalf("partition 3 = %v", got)
	}
}

// TestLatencyRecordZeroAlloc pins the hot-path guarantee: recording a
// latency sample must not allocate.
func TestLatencyRecordZeroAlloc(t *testing.T) {
	var l Latency
	if n := testing.AllocsPerRun(1000, func() {
		l.Record(1234)
	}); n != 0 {
		t.Fatalf("Latency.Record allocates %.1f objects/op", n)
	}
}

func TestLatencyMergeAndQuantiles(t *testing.T) {
	var a, b Latency
	for i := 1; i <= 100; i++ {
		a.Record(sim.Time(i))
	}
	b.Record(sim.Time(10_000))
	a.Merge(&b)
	if a.Count() != 101 {
		t.Fatalf("Count = %d", a.Count())
	}
	if got := a.Max(); got != 10_000 {
		t.Fatalf("Max = %d", got)
	}
	if got := a.Quantile(0.5); got < 40 || got > 60 {
		t.Fatalf("p50 = %d, want ~50", got)
	}
	if got := a.Quantile(0.999); got < 9_000 {
		t.Fatalf("p99.9 = %d, want the 10k outlier's bucket", got)
	}
}

// TestSplitEdgeCases pins the degenerate shapes the ISSUE calls out:
// zero items, fewer items than CPUs, and non-divisible counts.
func TestSplitEdgeCases(t *testing.T) {
	// Zero items: every share empty.
	for _, s := range Split(0, 8) {
		if s != 0 {
			t.Fatalf("Split(0,8) = %v", Split(0, 8))
		}
	}
	// Fewer items than CPUs: the low IDs get one each, the rest zero.
	shares := Split(3, 8)
	for i, s := range shares {
		want := uint64(0)
		if i < 3 {
			want = 1
		}
		if s != want {
			t.Fatalf("Split(3,8)[%d] = %d, want %d (%v)", i, s, want, shares)
		}
	}
	// Non-divisible: remainder goes to the lowest IDs, shares differ by
	// at most one and never increase with the ID.
	shares = Split(10, 3)
	if shares[0] != 4 || shares[1] != 3 || shares[2] != 3 {
		t.Fatalf("Split(10,3) = %v", shares)
	}
	// n=1 is the whole workload.
	if s := Split(42, 1); len(s) != 1 || s[0] != 42 {
		t.Fatalf("Split(42,1) = %v", s)
	}
}

// TestPartitionEdgeCases: empty traces, empty shares in the middle,
// and the single-share identity.
func TestPartitionEdgeCases(t *testing.T) {
	// Empty trace: every partition empty.
	for _, p := range Partition(nil, Split(100, 4)) {
		if len(p) != 0 {
			t.Fatal("Partition(nil) not empty")
		}
	}
	// Shares with zero-size tails (fewer items than CPUs): touches all
	// land in the owning non-empty share and empty shares get nothing.
	shares := Split(3, 8) // 1,1,1,0,0,0,0,0
	parts := Partition([]uint64{2, 0, 1, 2}, shares)
	if len(parts[0]) != 1 || len(parts[1]) != 1 || len(parts[2]) != 2 {
		t.Fatalf("partition sizes = %v", parts)
	}
	for i := 3; i < 8; i++ {
		if len(parts[i]) != 0 {
			t.Fatalf("empty share %d received touches: %v", i, parts[i])
		}
	}
	// Local indices: share i covers exactly [i,i+1), so every local
	// index is 0.
	for i := 0; i < 3; i++ {
		for _, v := range parts[i] {
			if v != 0 {
				t.Fatalf("share %d local index %d, want 0", i, v)
			}
		}
	}
	// One share: the partition is the original trace.
	idx := []uint64{5, 3, 9, 3}
	one := Partition(idx, Split(10, 1))
	if len(one) != 1 || len(one[0]) != len(idx) {
		t.Fatalf("single-share partition = %v", one)
	}
	for i, v := range one[0] {
		if v != idx[i] {
			t.Fatalf("single-share partition reordered: %v", one[0])
		}
	}
}

// TestTenantTraceDeterministicAndWellFormed: the trace is a pure
// function of the config, per-tenant independent, and every tenant's
// ops follow the spawn … exit lifecycle with valid operands.
func TestTenantTraceDeterministicAndWellFormed(t *testing.T) {
	cfg := TenantConfig{Tenants: 50, Bursts: 4, HeapPages: 64, Seed: 7}
	a, err := TenantTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TenantTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.Tenants {
		t.Fatalf("trace has %d tenants", len(a))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("tenant %d not deterministic", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("tenant %d op %d differs: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
		ops := a[i]
		if ops[0].Kind != TenantSpawn || ops[1].Kind != TenantMapShared || ops[len(ops)-1].Kind != TenantExit {
			t.Fatalf("tenant %d lifecycle malformed: %v", i, ops)
		}
		for j := 2; j < len(ops)-1; j += 3 {
			alloc, touch, free := ops[j], ops[j+1], ops[j+2]
			if alloc.Kind != TenantAlloc || touch.Kind != TenantTouch || free.Kind != TenantFree {
				t.Fatalf("tenant %d burst %d malformed: %v %v %v", i, j, alloc, touch, free)
			}
			if alloc.Pages == 0 || alloc.Pages > cfg.HeapPages {
				t.Fatalf("tenant %d alloc %d pages outside [1,%d]", i, alloc.Pages, cfg.HeapPages)
			}
			if touch.Pages == 0 || touch.Pages > alloc.Pages {
				t.Fatalf("tenant %d touches %d of %d pages", i, touch.Pages, alloc.Pages)
			}
		}
	}
	// A bigger config reuses the smaller one's per-tenant streams:
	// tenant i's ops depend only on (Seed, i).
	big, err := TenantTrace(TenantConfig{Tenants: 60, Bursts: 4, HeapPages: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if big[i][j] != a[i][j] {
				t.Fatalf("tenant %d ops depend on the tenant count", i)
			}
		}
	}
}
