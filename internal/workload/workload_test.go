package workload

import "testing"

func TestTouchesSequential(t *testing.T) {
	got, err := Touches(Sequential, 10, 12, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Touches[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestTouchesStrided(t *testing.T) {
	got, err := Touches(Strided, 100, 5, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 25, 50, 75, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stride touch %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestTouchesRandomInBoundsAndDeterministic(t *testing.T) {
	a, _ := Touches(Random, 1000, 10000, 0, 42)
	b, _ := Touches(Random, 1000, 10000, 0, 42)
	for i := range a {
		if a[i] >= 1000 {
			t.Fatalf("out of bounds: %d", a[i])
		}
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestTouchesHotCold(t *testing.T) {
	got, err := Touches(HotCold, 1000, 100000, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for _, p := range got {
		if p >= 1000 {
			t.Fatalf("out of bounds: %d", p)
		}
		if p < 100 {
			hot++
		}
	}
	frac := float64(hot) / float64(len(got))
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction = %.3f, want ~0.9", frac)
	}
}

func TestTouchesValidation(t *testing.T) {
	if _, err := Touches(Sequential, 0, 1, 0, 1); err == nil {
		t.Fatal("empty region accepted")
	}
	if _, err := Touches(Pattern(99), 10, 1, 0, 1); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

func TestAllocSizes(t *testing.T) {
	fixed, err := AllocSizes(Fixed, 5, 7, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fixed {
		if s != 7 {
			t.Fatalf("fixed size = %d", s)
		}
	}
	uni, err := AllocSizes(Uniform, 10000, 2, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range uni {
		if s < 2 || s > 20 {
			t.Fatalf("uniform size %d out of [2,20]", s)
		}
	}
	sh, err := AllocSizes(SmallHeavy, 10000, 1, 1024, 5)
	if err != nil {
		t.Fatal(err)
	}
	small := 0
	for _, s := range sh {
		if s < 1 || s > 1024 {
			t.Fatalf("small-heavy size %d out of bounds", s)
		}
		if s <= 64 {
			small++
		}
	}
	if float64(small)/float64(len(sh)) < 0.5 {
		t.Fatal("small-heavy distribution not small-dominated")
	}
}

func TestAllocSizesValidation(t *testing.T) {
	if _, err := AllocSizes(Fixed, 1, 0, 10, 1); err == nil {
		t.Fatal("zero lo accepted")
	}
	if _, err := AllocSizes(Fixed, 1, 10, 5, 1); err == nil {
		t.Fatal("hi < lo accepted")
	}
	if _, err := AllocSizes(SizeDist(99), 1, 1, 2, 1); err == nil {
		t.Fatal("unknown dist accepted")
	}
}

func TestSweeps(t *testing.T) {
	kb := SweepSizesKB(1024)
	if kb[0] != 4 || kb[len(kb)-1] != 1024 {
		t.Fatalf("KB sweep = %v", kb)
	}
	pc := SweepPageCounts(16384)
	if pc[0] != 1 || pc[len(pc)-1] != 16384 {
		t.Fatalf("page sweep = %v", pc)
	}
	if got := SweepPageCounts(100); got[len(got)-1] != 64 {
		t.Fatalf("bounded page sweep = %v", got)
	}
}

func TestStringers(t *testing.T) {
	for _, p := range []Pattern{Sequential, Strided, Random, HotCold, Pattern(42)} {
		if p.String() == "" {
			t.Fatal("empty pattern name")
		}
	}
	for _, d := range []SizeDist{Fixed, Uniform, SmallHeavy, SizeDist(42)} {
		if d.String() == "" {
			t.Fatal("empty dist name")
		}
	}
}

// gcd is Euclid's algorithm, the test's independent oracle for the
// strided cycle structure.
func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// TestTouchesStridedNonCoprime pins the number-theoretic structure of
// the strided pattern when the stride does NOT generate the whole
// region: starting from 0 with step s over T pages, the walk visits
// exactly T/gcd(s,T) distinct pages — every multiple of gcd(s,T) —
// and repeats with that period. A strided benchmark configured with a
// non-coprime stride therefore exercises only a 1/gcd fraction of its
// region; this test keeps that property (which the TLB and range
// experiments depend on for working-set sizing) from regressing.
func TestTouchesStridedNonCoprime(t *testing.T) {
	cases := []struct{ total, stride uint64 }{
		{12, 8},   // gcd 4: only 3 of 12 pages
		{64, 24},  // gcd 8: 8 of 64
		{100, 35}, // gcd 5: 20 of 100
		{128, 48}, // gcd 16
		{9, 6},    // gcd 3
		{16, 16},  // stride == total: pinned to page 0
		{1, 5},    // single page
		{97, 35},  // coprime control: full coverage
		{100, 0},  // default stride 8: gcd(8,100)=4
	}
	for _, tc := range cases {
		stride := tc.stride
		if stride == 0 {
			stride = 8
		}
		g := gcd(stride%tc.total, tc.total)
		if stride%tc.total == 0 {
			g = tc.total // walk never leaves page 0
		}
		wantDistinct := tc.total / g
		n := int(3*wantDistinct) + 5 // enough to wrap the cycle three times
		got, err := Touches(Strided, tc.total, n, tc.stride, 1)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[uint64]bool)
		for i, p := range got {
			if p >= tc.total {
				t.Fatalf("total=%d stride=%d: touch %d = %d out of bounds", tc.total, tc.stride, i, p)
			}
			if p%g != 0 {
				t.Fatalf("total=%d stride=%d: touch %d = %d not a multiple of gcd %d", tc.total, tc.stride, i, p, g)
			}
			seen[p] = true
			// Periodicity: the walk repeats every wantDistinct steps.
			if j := i + int(wantDistinct); j < len(got) && got[j] != p {
				t.Fatalf("total=%d stride=%d: period broken at %d: %d vs %d", tc.total, tc.stride, i, p, got[j])
			}
		}
		if uint64(len(seen)) != wantDistinct {
			t.Fatalf("total=%d stride=%d: visited %d distinct pages, want %d", tc.total, tc.stride, len(seen), wantDistinct)
		}
	}
}
