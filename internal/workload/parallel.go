package workload

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Host-parallel decomposition: a workload over one large region splits
// into one contiguous sub-region per simulated CPU, and a touch trace
// partitions by owning sub-region. Both are pure functions of their
// inputs — never of host scheduling — so the same split feeds the
// serial and the host-parallel runs of an experiment.

// Split divides total pages across n CPUs, giving the remainder to the
// lowest IDs. With n=1 the single share is the whole workload.
func Split(total uint64, n int) []uint64 {
	shares := make([]uint64, n)
	base, rem := total/uint64(n), total%uint64(n)
	for i := range shares {
		shares[i] = base
		if uint64(i) < rem {
			shares[i]++
		}
	}
	return shares
}

// Partition splits a page-index trace across the CPUs' contiguous
// sub-regions: touch p belongs to the CPU whose share covers it and
// becomes an index local to that share. Order within each partition is
// preserved, so with one share the partition is the original trace.
func Partition(idx []uint64, shares []uint64) [][]uint64 {
	parts := make([][]uint64, len(shares))
	starts := make([]uint64, len(shares))
	var off uint64
	for i, s := range shares {
		starts[i] = off
		off += s
	}
	for _, p := range idx {
		owner := len(shares) - 1
		for i := range starts {
			if p < starts[i]+shares[i] {
				owner = i
				break
			}
		}
		parts[owner] = append(parts[owner], p-starts[owner])
	}
	return parts
}

// Latency is a per-CPU-context recorder of simulated per-operation
// latencies, backed by a fixed-size streaming histogram: Record is
// O(1) and allocation-free, so it can sit on the hot path of a
// billion-touch run without distorting host wall-clock measurements or
// holding O(n) samples. Each recording context keeps its own Latency
// and the contexts are Merged after the parallel phase.
type Latency struct {
	h metrics.StreamHist
}

// Record adds one operation's simulated duration.
func (l *Latency) Record(d sim.Time) { l.h.Record(int64(d)) }

// Merge folds another recorder's samples into l.
func (l *Latency) Merge(o *Latency) { l.h.Merge(&o.h) }

// Count returns the number of operations recorded.
func (l *Latency) Count() uint64 { return l.h.Count() }

// Quantile returns the q-quantile latency.
func (l *Latency) Quantile(q float64) sim.Time { return sim.Time(l.h.Quantile(q)) }

// Mean returns the mean latency in the clock's base unit.
func (l *Latency) Mean() float64 { return l.h.Mean() }

// Max returns the largest recorded latency.
func (l *Latency) Max() sim.Time { return sim.Time(l.h.Max()) }

// String renders the standard latency line: count, mean and the tail
// quantiles the paper-style reports quote.
func (l *Latency) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d p99.9=%d max=%d",
		l.h.Count(), l.h.Mean(),
		l.h.Quantile(0.50), l.h.Quantile(0.99), l.h.Quantile(0.999), l.h.Max())
}
