// Package workload generates the deterministic access patterns and
// allocation-size distributions used by the benchmark harness: the
// sequential one-byte-per-page sweeps of the paper's figures, the
// sparse random touches that motivate O(1) mapping, and malloc-style
// size mixes for allocator experiments.
package workload

import (
	"fmt"

	"repro/internal/sim"
)

// Pattern selects a page-touch order.
type Pattern int

const (
	// Sequential touches pages 0,1,2,... — the paper's figure
	// workloads ("access one byte of each page").
	Sequential Pattern = iota
	// Strided touches every k-th page, wrapping.
	Strided
	// Random touches uniformly random pages — the sparse access to
	// large data sets for which "the fundamental linear operation cost
	// remains" (§3).
	Random
	// HotCold touches a small hot set 90% of the time.
	HotCold
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	case Random:
		return "random"
	case HotCold:
		return "hot-cold"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Touches generates n page indices over a region of totalPages pages
// following the pattern. stride is used by Strided (0 means 8).
// The sequence is deterministic for a given seed.
func Touches(p Pattern, totalPages uint64, n int, stride uint64, seed uint64) ([]uint64, error) {
	if totalPages == 0 {
		return nil, fmt.Errorf("workload: empty region")
	}
	if stride == 0 {
		stride = 8
	}
	rng := sim.NewRNG(seed)
	out := make([]uint64, n)
	switch p {
	case Sequential:
		for i := range out {
			out[i] = uint64(i) % totalPages
		}
	case Strided:
		cur := uint64(0)
		for i := range out {
			out[i] = cur
			cur = (cur + stride) % totalPages
		}
	case Random:
		for i := range out {
			out[i] = rng.Uint64n(totalPages)
		}
	case HotCold:
		hot := totalPages / 10
		if hot == 0 {
			hot = 1
		}
		for i := range out {
			if rng.Float64() < 0.9 {
				out[i] = rng.Uint64n(hot)
			} else {
				out[i] = hot + rng.Uint64n(totalPages-hot)%maxU(totalPages-hot, 1)
			}
		}
	default:
		return nil, fmt.Errorf("workload: unknown pattern %d", int(p))
	}
	return out, nil
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// SizeDist selects an allocation-size distribution.
type SizeDist int

const (
	// Fixed returns the same size every time.
	Fixed SizeDist = iota
	// Uniform draws sizes uniformly from [lo, hi].
	Uniform
	// SmallHeavy draws mostly small allocations with a heavy tail,
	// approximating heap traces (80% small, 15% medium, 5% large).
	SmallHeavy
)

// String names the distribution.
func (d SizeDist) String() string {
	switch d {
	case Fixed:
		return "fixed"
	case Uniform:
		return "uniform"
	case SmallHeavy:
		return "small-heavy"
	default:
		return fmt.Sprintf("SizeDist(%d)", int(d))
	}
}

// AllocSizes generates n allocation sizes in pages. lo and hi bound
// the sizes (Fixed uses lo).
func AllocSizes(d SizeDist, n int, lo, hi uint64, seed uint64) ([]uint64, error) {
	if lo == 0 || hi < lo {
		return nil, fmt.Errorf("workload: bad size bounds [%d,%d]", lo, hi)
	}
	rng := sim.NewRNG(seed)
	out := make([]uint64, n)
	for i := range out {
		switch d {
		case Fixed:
			out[i] = lo
		case Uniform:
			out[i] = lo + rng.Uint64n(hi-lo+1)
		case SmallHeavy:
			r := rng.Float64()
			span := hi - lo
			switch {
			case r < 0.80:
				out[i] = lo + rng.Uint64n(maxU(span/16, 1))
			case r < 0.95:
				out[i] = lo + span/16 + rng.Uint64n(maxU(span/4, 1))
			default:
				out[i] = lo + span/2 + rng.Uint64n(maxU(span/2, 1))
			}
			if out[i] > hi {
				out[i] = hi
			}
		default:
			return nil, fmt.Errorf("workload: unknown distribution %d", int(d))
		}
	}
	return out, nil
}

// SweepSizesKB returns the file-size sweep used by the paper's
// figures: 4 KB to maxKB, doubling — "File Size - KB" on the x axes.
func SweepSizesKB(maxKB uint64) []uint64 {
	var out []uint64
	for kb := uint64(4); kb <= maxKB; kb *= 2 {
		out = append(out, kb)
	}
	return out
}

// SweepPageCounts returns the page-count sweep of the companion
// figures (1, 2, 16, 64, 256, 1k, 4k, 16k pages).
func SweepPageCounts(max uint64) []uint64 {
	base := []uint64{1, 2, 16, 64, 256, 1024, 4096, 16384}
	var out []uint64
	for _, v := range base {
		if v <= max {
			out = append(out, v)
		}
	}
	return out
}
