package workload

import (
	"fmt"

	"repro/internal/sim"
)

// Sustained multi-tenant churn: thousands of short-lived tenants per
// CPU, each spawning from a template (fork/exec), mapping a shared
// object, running a few allocate/touch/free bursts over an anonymous
// heap, and tearing down. The trace is a pure function of the config —
// the same ops feed the serial and host-parallel runs, and both the
// baseline (package vm) and file-only-memory (package core) drivers.

// TenantOpKind is one step in a tenant's life.
type TenantOpKind int

const (
	// TenantSpawn forks the tenant's address space from its CPU's
	// template — the fork/exec cost of starting the tenant.
	TenantSpawn TenantOpKind = iota
	// TenantMapShared maps the shared object every tenant uses.
	TenantMapShared
	// TenantAlloc grows the tenant's heap by Pages anonymous pages.
	TenantAlloc
	// TenantTouch accesses Pages pages of the latest allocation.
	TenantTouch
	// TenantFree releases the latest allocation.
	TenantFree
	// TenantExit tears the tenant down: unmap everything, destroy the
	// address space.
	TenantExit
)

// String names the op kind.
func (k TenantOpKind) String() string {
	switch k {
	case TenantSpawn:
		return "spawn"
	case TenantMapShared:
		return "map-shared"
	case TenantAlloc:
		return "alloc"
	case TenantTouch:
		return "touch"
	case TenantFree:
		return "free"
	case TenantExit:
		return "exit"
	default:
		return fmt.Sprintf("TenantOpKind(%d)", int(k))
	}
}

// TenantOp is one operation of one tenant. Pages is the size operand
// of Alloc/Touch (Touch covers the first Pages pages of the latest
// allocation) and zero otherwise.
type TenantOp struct {
	Kind  TenantOpKind
	Pages uint64
}

// TenantConfig sizes a multi-tenant trace.
type TenantConfig struct {
	// Tenants is the total tenant count (distributed over CPUs by the
	// driver).
	Tenants int
	// Bursts is the number of alloc/touch/free rounds per tenant.
	Bursts int
	// HeapPages bounds one burst's allocation size (sizes are drawn
	// uniformly from [1, HeapPages]).
	HeapPages uint64
	// Seed decorrelates traces; tenant i's ops depend only on
	// (Seed, i), never on other tenants.
	Seed uint64
}

// TenantTrace generates each tenant's op sequence: spawn, map the
// shared object, Bursts alloc/touch/free rounds, exit. Deterministic
// and per-tenant independent, so any assignment of tenants to CPUs
// yields the same per-tenant ops.
func TenantTrace(cfg TenantConfig) ([][]TenantOp, error) {
	if cfg.Tenants <= 0 {
		return nil, fmt.Errorf("workload: tenant count %d", cfg.Tenants)
	}
	if cfg.HeapPages == 0 {
		return nil, fmt.Errorf("workload: zero heap bound")
	}
	traces := make([][]TenantOp, cfg.Tenants)
	for i := range traces {
		rng := sim.NewRNG(cfg.Seed + uint64(i)*0x9E3779B97F4A7C15)
		ops := make([]TenantOp, 0, 2+3*cfg.Bursts+1)
		ops = append(ops, TenantOp{Kind: TenantSpawn}, TenantOp{Kind: TenantMapShared})
		for b := 0; b < cfg.Bursts; b++ {
			pages := 1 + rng.Uint64n(cfg.HeapPages)
			// Touch a prefix of the burst: tenants rarely use every
			// page they allocate — the sparse use that makes per-page
			// populate costs hurt.
			touched := 1 + rng.Uint64n(pages)
			ops = append(ops,
				TenantOp{Kind: TenantAlloc, Pages: pages},
				TenantOp{Kind: TenantTouch, Pages: touched},
				TenantOp{Kind: TenantFree})
		}
		ops = append(ops, TenantOp{Kind: TenantExit})
		traces[i] = ops
	}
	return traces, nil
}
