package metrics

import (
	"fmt"
	"math/bits"
)

// Streaming-histogram geometry: values are bucketed by octave (the
// position of the highest set bit) with subBuckets linear sub-divisions
// per octave, HDR-histogram style. Relative quantile error is bounded
// by 1/subBuckets; values below subBuckets are recorded exactly.
const (
	streamSubBits = 3 // log2(subBuckets)
	streamSub     = 1 << streamSubBits
	// Octaves 0..streamSubBits-1 collapse into streamSub exact buckets;
	// octaves streamSubBits..63 get streamSub sub-buckets each.
	streamNBuckets = streamSub + (64-streamSubBits)*streamSub
)

// StreamHist is a fixed-size log-bucketed streaming histogram: Record
// is allocation-free and O(1), and quantiles (p50/p99/p99.9/...) are
// answered from bucket counts without retaining samples — the
// building block for latency reporting over billion-op runs, where
// keeping raw samples is exactly the O(n) memory bill this repository
// exists to avoid. The zero value is ready to use.
//
// Values are int64; negative samples are clamped into the zero bucket.
// Quantile results are bucket lower bounds, so they are exact for
// values < 8 and within 12.5% (one sub-bucket) above that.
//
// StreamHist is not safe for concurrent use; give each recording
// context its own histogram and Merge them afterwards.
type StreamHist struct {
	counts [streamNBuckets]uint64
	n      uint64
	sum    int64
	max    int64
	min    int64
}

// streamBucket maps a value to its bucket index.
func streamBucket(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < streamSub {
		// Exact buckets for the smallest values (index == value).
		return int(u)
	}
	octave := bits.Len64(u) - 1 // position of the highest set bit
	sub := (u >> (uint(octave) - streamSubBits)) & (streamSub - 1)
	return (octave-streamSubBits)*streamSub + streamSub + int(sub)
}

// streamBucketLow returns the smallest value mapping to bucket i.
func streamBucketLow(i int) int64 {
	if i < streamSub {
		return int64(i)
	}
	octave := i/streamSub - 1 + streamSubBits
	sub := uint64(i % streamSub)
	return int64(uint64(1)<<uint(octave) | sub<<(uint(octave)-streamSubBits))
}

// Record adds one sample. It performs no allocation.
func (h *StreamHist) Record(v int64) {
	h.counts[streamBucket(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of samples recorded.
func (h *StreamHist) Count() uint64 { return h.n }

// Sum returns the sum of all samples.
func (h *StreamHist) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean, or zero with no samples.
func (h *StreamHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest recorded sample (exact), or zero if empty.
func (h *StreamHist) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (exact), or zero if empty.
func (h *StreamHist) Max() int64 { return h.max }

// Quantile returns the q-quantile (0 <= q <= 1) by nearest rank over
// the bucket counts. The result is the lower bound of the bucket
// holding the ranked sample, except that q >= 1 returns the exact
// maximum.
func (h *StreamHist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			if i == streamBucket(h.min) {
				return h.min // the whole low tail sits in one bucket
			}
			return streamBucketLow(i)
		}
	}
	return h.max
}

// Merge adds every sample of other into h (bucket-wise; exact counts,
// same quantile error bound).
func (h *StreamHist) Merge(other *StreamHist) {
	if other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// Reset discards all samples.
func (h *StreamHist) Reset() {
	*h = StreamHist{}
}

// Summary renders count, mean, and the standard latency quantiles.
func (h *StreamHist) Summary() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d p99.9=%d max=%d",
		h.n, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.max)
}
