// Package metrics provides lightweight counters, histograms, and tabular
// formatting shared by the simulator subsystems, the benchmark harness,
// and the command-line tools.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. Increments are
// atomic, so counters shared between the CPU contexts of a
// host-parallel simulation phase stay exact: a counter's value is an
// order-independent sum, which keeps totals deterministic even when
// the incrementing goroutines race.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n.Store(0) }

// Set is a named collection of counters, used by subsystems to expose
// their event counts (faults, TLB misses, buddy splits, ...).
//
// Lookup/creation is mutex-protected so hot paths running on parallel
// CPU contexts can share a set; note that first-use *order* is only
// deterministic for counters created before a parallel phase starts,
// which is why subsystem constructors pre-create the counters their
// hot paths touch.
type Set struct {
	mu       sync.Mutex
	order    []string
	counters map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{counters: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it on first
// use. Names are reported in first-use order.
func (s *Set) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{}
	s.counters[name] = c
	s.order = append(s.order, name)
	return c
}

// Value returns the value of the named counter, or zero if it has never
// been created.
func (s *Set) Value(name string) uint64 {
	s.mu.Lock()
	c, ok := s.counters[name]
	s.mu.Unlock()
	if ok {
		return c.Value()
	}
	return 0
}

// Names returns counter names in first-use order.
func (s *Set) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Reset zeroes every counter in the set.
func (s *Set) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counters {
		c.Reset()
	}
}

// String renders the set as "name=value" pairs.
func (s *Set) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	for i, name := range s.order {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", name, s.counters[name].Value())
	}
	return b.String()
}

// Histogram accumulates int64 samples and reports order statistics.
// It stores raw samples; experiments record at most a few hundred
// thousand points, so exact quantiles are affordable and reproducible.
type Histogram struct {
	samples []int64
	sorted  bool
	sum     int64
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean, or zero with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return float64(h.sum) / float64(len(h.samples))
}

// Min returns the smallest sample, or zero with no samples.
func (h *Histogram) Min() int64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[0]
}

// Max returns the largest sample, or zero with no samples.
func (h *Histogram) Max() int64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank, or
// zero with no samples.
func (h *Histogram) Quantile(q float64) int64 {
	h.ensureSorted()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}

// Stddev returns the population standard deviation of the samples.
func (h *Histogram) Stddev() float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := float64(v) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sum = 0
	h.sorted = true
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Table is a simple fixed-column text table used to print experiment
// results in the same row/series layout as the paper's figures.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row formatting each value with %v, rendering
// float64 with 3 decimals.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.3f", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.AddRow(cells...)
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
