package metrics

import (
	"math"
	"testing"
)

// TestStreamHistRecordZeroAlloc pins the satellite requirement: Record
// must not allocate, ever — the histogram exists so latency recording
// over billion-op runs stays O(1) in memory.
func TestStreamHistRecordZeroAlloc(t *testing.T) {
	var h StreamHist
	v := int64(1)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v = (v*2862933555777941757 + 3037000493) & math.MaxInt64
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f objects/op, want 0", allocs)
	}
}

func TestStreamHistExactSmallValues(t *testing.T) {
	var h StreamHist
	for v := int64(0); v < 8; v++ {
		for i := int64(0); i <= v; i++ {
			h.Record(v)
		}
	}
	// 0 once, 1 twice, ... 7 eight times: n=36.
	if h.Count() != 36 {
		t.Fatalf("count = %d, want 36", h.Count())
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %d, want 0", got)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := h.Quantile(1); got != 7 {
		t.Errorf("p100 = %d, want 7", got)
	}
	if h.Min() != 0 || h.Max() != 7 {
		t.Errorf("min/max = %d/%d, want 0/7", h.Min(), h.Max())
	}
}

// TestStreamHistQuantileError checks the documented bound: a reported
// quantile is never above the true value and never below it by more
// than one sub-bucket (12.5% relative).
func TestStreamHistQuantileError(t *testing.T) {
	var h StreamHist
	vals := make([]int64, 0, 20000)
	x := uint64(12345)
	for i := 0; i < 20000; i++ {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		v := int64(x % 10_000_000)
		vals = append(vals, v)
		h.Record(v)
	}
	exact := Histogram{}
	for _, v := range vals {
		exact.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := exact.Quantile(q)
		got := h.Quantile(q)
		if got > want {
			t.Errorf("q=%v: stream %d above exact %d", q, got, want)
		}
		if float64(got) < float64(want)*(1-0.125)-1 {
			t.Errorf("q=%v: stream %d more than 12.5%% below exact %d", q, got, want)
		}
	}
	if h.Sum() != exact.Sum() {
		t.Errorf("sum %d != exact %d", h.Sum(), exact.Sum())
	}
	if h.Max() != exact.Max() {
		t.Errorf("max %d != exact %d", h.Max(), exact.Max())
	}
}

func TestStreamHistExtremes(t *testing.T) {
	var h StreamHist
	h.Record(-5) // clamped to zero bucket
	h.Record(math.MaxInt64)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0.999); got <= 0 {
		t.Fatalf("top quantile = %d, want positive", got)
	}
	if h.Max() != math.MaxInt64 {
		t.Fatalf("max = %d", h.Max())
	}
}

func TestStreamHistMergeAndReset(t *testing.T) {
	var a, b StreamHist
	for i := int64(0); i < 1000; i++ {
		a.Record(i)
		b.Record(i + 1000)
	}
	a.Merge(&b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 0 || a.Max() != 1999 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	p99 := a.Quantile(0.99)
	if p99 < 1700 || p99 > 1980 {
		t.Fatalf("merged p99 = %d, want ≈1980 within bucket error", p99)
	}
	a.Reset()
	if a.Count() != 0 || a.Quantile(0.5) != 0 || a.Max() != 0 {
		t.Fatalf("reset left state behind: %s", a.Summary())
	}
}
