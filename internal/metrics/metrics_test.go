package metrics

import (
	"strings"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("after Reset Value = %d, want 0", c.Value())
	}
}

func TestSetCreatesAndReuses(t *testing.T) {
	s := NewSet()
	s.Counter("a").Inc()
	s.Counter("a").Inc()
	s.Counter("b").Add(3)
	if s.Value("a") != 2 || s.Value("b") != 3 {
		t.Fatalf("got a=%d b=%d", s.Value("a"), s.Value("b"))
	}
	if s.Value("missing") != 0 {
		t.Fatal("missing counter should read zero")
	}
}

func TestSetNamesOrder(t *testing.T) {
	s := NewSet()
	s.Counter("z")
	s.Counter("a")
	s.Counter("m")
	got := s.Names()
	want := []string{"z", "a", "m"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

func TestSetReset(t *testing.T) {
	s := NewSet()
	s.Counter("x").Add(9)
	s.Reset()
	if s.Value("x") != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestSetString(t *testing.T) {
	s := NewSet()
	s.Counter("hits").Add(2)
	s.Counter("misses").Add(1)
	if got := s.String(); got != "hits=2 misses=1" {
		t.Fatalf("String = %q", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{5, 1, 3, 2, 4} {
		h.Record(v)
	}
	if h.Count() != 5 || h.Sum() != 15 {
		t.Fatalf("Count=%d Sum=%d", h.Count(), h.Sum())
	}
	if h.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("Min=%d Max=%d", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("median = %d, want 3", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0 = %d, want 1", q)
	}
	if q := h.Quantile(1); q != 5 {
		t.Fatalf("q1 = %d, want 5", q)
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	for _, v := range []int64{2, 2, 2, 2} {
		h.Record(v)
	}
	if h.Stddev() != 0 {
		t.Fatalf("constant samples stddev = %v, want 0", h.Stddev())
	}
	h.Reset()
	h.Record(0)
	h.Record(10)
	if got := h.Stddev(); got != 5 {
		t.Fatalf("stddev = %v, want 5", got)
	}
}

func TestHistogramRecordAfterQuantile(t *testing.T) {
	var h Histogram
	h.Record(10)
	_ = h.Quantile(0.5)
	h.Record(1)
	if h.Min() != 1 {
		t.Fatalf("Min after late record = %d, want 1", h.Min())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(7)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "size", "time")
	tb.AddRowf(4096, 1.5)
	tb.AddRow("8192", "3.000")
	out := tb.String()
	if !strings.Contains(out, "demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "size") || !strings.Contains(out, "time") {
		t.Fatal("missing headers")
	}
	if !strings.Contains(out, "4096") || !strings.Contains(out, "1.500") {
		t.Fatalf("missing formatted row: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableAlignsColumns(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("longvalue", "x")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines[0]) < len("longvalue") {
		t.Fatalf("header line not padded to column width: %q", lines[0])
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("1", "2")
	md := tb.Markdown()
	for _, want := range []string{"**demo**", "| a | b |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	// No title line when the title is empty.
	if md := NewTable("", "x").Markdown(); strings.Contains(md, "**") {
		t.Fatalf("unexpected title: %q", md)
	}
}
