package rangetable_test

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/rangetable"
	"repro/internal/sim"
)

// Example shows a single range entry mapping a gigabyte: insertion,
// lookup, and removal are all one-entry operations regardless of size.
func Example() {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	tbl := rangetable.New(clock, &params)

	gig := rangetable.Entry{
		VBase: 0x4000_0000_0000,
		Pages: 1 << 18, // 1 GiB
		PBase: 0x1000,
		Flags: pagetable.FlagRead | pagetable.FlagWrite,
	}
	if err := tbl.Insert(gig); err != nil {
		fmt.Println(err)
		return
	}
	e, ok := tbl.Lookup(gig.VBase + 512<<20) // halfway in
	fmt.Printf("hit=%v entries=%d pa=%#x\n", ok, tbl.Len(), uint64(e.Translate(gig.VBase+512<<20)))

	removed, _ := tbl.Remove(gig.VBase)
	fmt.Printf("removed %d pages with one operation\n", removed.Pages)
	// Output:
	// hit=true entries=1 pa=0x21000000
	// removed 262144 pages with one operation
}

// ExampleRTLB shows the range TLB covering sparse accesses over a huge
// region with a single cached entry.
func ExampleRTLB() {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	cpu := sim.MachineOf(clock, &params).BootCPU()
	rtlb := rangetable.NewRTLB(cpu, &params, 8)

	rtlb.Insert(0, rangetable.Entry{VBase: 0, Pages: 1 << 18, PBase: 0})
	hits := 0
	for i := 0; i < 1000; i++ {
		va := mem.VirtAddr(i*104729%(1<<18)) * mem.FrameSize
		if _, ok := rtlb.Lookup(0, va); ok {
			hits++
		}
	}
	fmt.Printf("hits=%d/1000 with %d cached entry\n", hits, rtlb.ValidEntries())
	// Output: hits=1000/1000 with 1 cached entry
}
