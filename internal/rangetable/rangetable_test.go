package rangetable

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

func newTable(t *testing.T) (*Table, *sim.Clock, sim.Params) {
	t.Helper()
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	return New(clock, &params), clock, params
}

func TestEntryHelpers(t *testing.T) {
	e := Entry{VBase: 0x10000, Pages: 4, PBase: 100}
	if e.VEnd() != 0x14000 {
		t.Fatalf("VEnd = %#x", uint64(e.VEnd()))
	}
	if !e.Contains(0x10000) || !e.Contains(0x13FFF) || e.Contains(0x14000) || e.Contains(0xFFFF) {
		t.Fatal("Contains wrong")
	}
	if got := e.Translate(0x11234); got != mem.Frame(100).Addr()+0x1234 {
		t.Fatalf("Translate = %#x", uint64(got))
	}
}

func TestInsertLookupRemove(t *testing.T) {
	tbl, _, _ := newTable(t)
	e := Entry{VBase: 0x100000, Pages: 1000, PBase: 5000, Flags: pagetable.FlagRead}
	if err := tbl.Insert(e); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got, ok := tbl.Lookup(0x100000 + 999*mem.FrameSize)
	if !ok || got.PBase != 5000 {
		t.Fatalf("Lookup: %+v ok=%v", got, ok)
	}
	if _, ok := tbl.Lookup(0x100000 + 1000*mem.FrameSize); ok {
		t.Fatal("Lookup past range hit")
	}
	removed, err := tbl.Remove(0x100000)
	if err != nil || removed.Pages != 1000 {
		t.Fatalf("Remove: %+v, %v", removed, err)
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d after remove", tbl.Len())
	}
}

func TestInsertRejectsOverlap(t *testing.T) {
	tbl, _, _ := newTable(t)
	if err := tbl.Insert(Entry{VBase: 0x10000, Pages: 10, PBase: 0}); err != nil {
		t.Fatal(err)
	}
	cases := []Entry{
		{VBase: 0x10000, Pages: 1, PBase: 100}, // same base
		{VBase: 0x12000, Pages: 1, PBase: 100}, // inside
		{VBase: 0x8000, Pages: 9, PBase: 100},  // tail overlaps head
		{VBase: 0x19000, Pages: 5, PBase: 100}, // head overlaps tail
	}
	for _, e := range cases {
		if err := tbl.Insert(e); err == nil {
			t.Fatalf("overlap %+v accepted", e)
		}
	}
	// Adjacent ranges are fine.
	if err := tbl.Insert(Entry{VBase: 0x1A000, Pages: 3, PBase: 200}); err != nil {
		t.Fatalf("adjacent insert rejected: %v", err)
	}
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertValidation(t *testing.T) {
	tbl, _, _ := newTable(t)
	if err := tbl.Insert(Entry{VBase: 0x1000, Pages: 0}); err == nil {
		t.Fatal("empty range accepted")
	}
	if err := tbl.Insert(Entry{VBase: 0x1001, Pages: 1}); err == nil {
		t.Fatal("unaligned base accepted")
	}
}

func TestRemoveMissing(t *testing.T) {
	tbl, _, _ := newTable(t)
	if _, err := tbl.Remove(0x5000); err != nil {
		// expected
	} else {
		t.Fatal("Remove of missing range succeeded")
	}
}

func TestInsertCostIndependentOfSize(t *testing.T) {
	tbl, clock, _ := newTable(t)
	t0 := clock.Now()
	if err := tbl.Insert(Entry{VBase: 0x1000, Pages: 1, PBase: 1}); err != nil {
		t.Fatal(err)
	}
	small := clock.Since(t0)
	t1 := clock.Now()
	if err := tbl.Insert(Entry{VBase: 1 << 40, Pages: 1 << 20, PBase: 1000}); err != nil {
		t.Fatal(err)
	}
	large := clock.Since(t1)
	if small != large {
		t.Fatalf("insert costs differ by size: %v vs %v (must be O(1))", small, large)
	}
}

func TestUpdateFlags(t *testing.T) {
	tbl, _, _ := newTable(t)
	if err := tbl.Insert(Entry{VBase: 0x2000, Pages: 100, PBase: 7, Flags: pagetable.FlagRead}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.UpdateFlags(0x2000, pagetable.FlagRead|pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	e, _ := tbl.Lookup(0x2000)
	if e.Flags&pagetable.FlagWrite == 0 {
		t.Fatal("flags not updated")
	}
	if err := tbl.UpdateFlags(0x9000, 0); err == nil {
		t.Fatal("UpdateFlags on missing range succeeded")
	}
}

func TestManyRangesSortedLookup(t *testing.T) {
	tbl, _, _ := newTable(t)
	for i := 0; i < 100; i++ {
		e := Entry{VBase: mem.VirtAddr(i * 1 << 20), Pages: 16, PBase: mem.Frame(i * 1000)}
		if err := tbl.Insert(e); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		va := mem.VirtAddr(i*1<<20) + 5*mem.FrameSize
		e, ok := tbl.Lookup(va)
		if !ok || e.PBase != mem.Frame(i*1000) {
			t.Fatalf("lookup %d failed: %+v ok=%v", i, e, ok)
		}
	}
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRTLBHitMiss(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	r := NewRTLB(sim.MachineOf(clock, &params).BootCPU(), &params, 4)
	e := Entry{VBase: 0x100000, Pages: 1 << 18, PBase: 0} // 1 GiB range
	if _, ok := r.Lookup(0, 0x100000); ok {
		t.Fatal("hit on empty RTLB")
	}
	r.Insert(0, e)
	// One entry covers a gigabyte of sparse touches.
	for i := 0; i < 100; i++ {
		va := e.VBase + mem.VirtAddr(i*104729)*mem.FrameSize%mem.VirtAddr(e.Pages*mem.FrameSize)
		if _, ok := r.Lookup(0, va); !ok {
			t.Fatalf("miss inside cached range at step %d", i)
		}
	}
	if r.Stats().Value("hits") != 100 {
		t.Fatalf("hits = %d", r.Stats().Value("hits"))
	}
}

func TestRTLBEviction(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	r := NewRTLB(sim.MachineOf(clock, &params).BootCPU(), &params, 2)
	for i := 0; i < 3; i++ {
		r.Insert(0, Entry{VBase: mem.VirtAddr(i << 30), Pages: 1, PBase: mem.Frame(i)})
	}
	if r.ValidEntries() != 2 {
		t.Fatalf("ValidEntries = %d, want 2", r.ValidEntries())
	}
	if r.Stats().Value("evictions") != 1 {
		t.Fatalf("evictions = %d", r.Stats().Value("evictions"))
	}
	// LRU: entry 0 was oldest, should be gone.
	if _, ok := r.Lookup(0, 0); ok {
		t.Fatal("LRU entry survived")
	}
}

func TestRTLBInvalidate(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	r := NewRTLB(sim.MachineOf(clock, &params).BootCPU(), &params, 8)
	e := Entry{VBase: 0x40000000, Pages: 1 << 18, PBase: 0}
	r.Insert(0, e)
	r.Invalidate(0, e.VBase)
	if _, ok := r.Lookup(0, e.VBase); ok {
		t.Fatal("entry survived invalidate")
	}
	r.Insert(0, e)
	r.FlushAll()
	if r.ValidEntries() != 0 {
		t.Fatal("FlushAll left entries")
	}
}

func TestRTLBDefaultCapacity(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	r := NewRTLB(sim.MachineOf(clock, &params).BootCPU(), &params, 0)
	for i := 0; i < DefaultRTLBEntries+5; i++ {
		r.Insert(0, Entry{VBase: mem.VirtAddr(i << 30), Pages: 1, PBase: mem.Frame(i)})
	}
	if r.ValidEntries() != DefaultRTLBEntries {
		t.Fatalf("ValidEntries = %d, want %d", r.ValidEntries(), DefaultRTLBEntries)
	}
}

// Property: translate(insert(range)) is the identity offset mapping for
// every address inside the range, and never resolves outside it.
func TestRangeTranslationQuickProperty(t *testing.T) {
	f := func(baseVPN uint32, pages uint16, pbase uint32, probe uint32) bool {
		if pages == 0 {
			pages = 1
		}
		tbl, _, _ := func() (*Table, *sim.Clock, sim.Params) {
			clock := &sim.Clock{}
			params := sim.DefaultParams()
			return New(clock, &params), clock, params
		}()
		e := Entry{
			VBase: mem.VirtAddr(baseVPN) << mem.FrameShift,
			Pages: uint64(pages),
			PBase: mem.Frame(pbase),
		}
		if err := tbl.Insert(e); err != nil {
			return false
		}
		off := uint64(probe) % (uint64(pages) * mem.FrameSize)
		va := e.VBase + mem.VirtAddr(off)
		got, ok := tbl.Lookup(va)
		if !ok {
			return false
		}
		return got.Translate(va) == e.PBase.Addr()+mem.PhysAddr(off)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
