// Package rangetable implements the paper's proposed hardware range
// translations (§3.2/§4.3, Figures 4/5/9, after Gandhi et al.): a range
// table of (base, limit, offset, protection) entries plus a small fully
// associative range TLB.
//
// One entry maps an arbitrarily long contiguous virtual range to a
// contiguous physical range, so installing, removing, or shooting down
// a mapping is a single-entry operation regardless of the range size —
// the hardware half of O(1) memory. Lookups on a range-TLB miss walk
// the (sorted) range table; the charged cost is per table operation,
// never per page.
package rangetable

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// Entry is one range translation: virtual pages
// [VBase, VBase+Pages*4K) map to physical frames [PBase, PBase+Pages).
type Entry struct {
	VBase mem.VirtAddr
	Pages uint64
	PBase mem.Frame
	Flags pagetable.Flags
}

// VEnd returns the first virtual address past the range.
func (e Entry) VEnd() mem.VirtAddr { return e.VBase + mem.VirtAddr(e.Pages*mem.FrameSize) }

// Contains reports whether va falls inside the range.
func (e Entry) Contains(va mem.VirtAddr) bool { return va >= e.VBase && va < e.VEnd() }

// Translate applies the range's fixed offset to va. The caller must
// ensure Contains(va).
func (e Entry) Translate(va mem.VirtAddr) mem.PhysAddr {
	return e.PBase.Addr() + mem.PhysAddr(va-e.VBase)
}

// Table is one address space's range table, kept sorted by VBase.
type Table struct {
	clock  *sim.Clock
	params *sim.Params

	entries []Entry
	stats   *metrics.Set
	// Cached counters for the per-operation paths.
	cInserts, cRemoves, cWalks *metrics.Counter
}

// New creates an empty range table.
func New(clock *sim.Clock, params *sim.Params) *Table {
	t := &Table{clock: clock, params: params, stats: metrics.NewSet()}
	t.cInserts = t.stats.Counter("inserts")
	t.cRemoves = t.stats.Counter("removes")
	t.cWalks = t.stats.Counter("walks")
	return t
}

// Stats exposes counters: "inserts", "removes", "walks".
func (t *Table) Stats() *metrics.Set { return t.stats }

// Len returns the number of installed ranges.
func (t *Table) Len() int { return len(t.entries) }

// Entries returns a copy of the installed ranges in address order.
func (t *Table) Entries() []Entry {
	out := make([]Entry, len(t.entries))
	copy(out, t.entries)
	return out
}

// ReplayEntries models rebuilding the table from a metadata journal
// after a crash: one range-table operation per entry, independent of
// how many pages each entry spans. This is the O(extents) recovery
// path of the range-translation design. Returns the entry count.
func (t *Table) ReplayEntries() int {
	t.clock.Advance(sim.Time(len(t.entries)) * t.params.RangeTableOp)
	return len(t.entries)
}

// search returns the index of the first entry with VBase > va.
func (t *Table) search(va mem.VirtAddr) int {
	return sort.Search(len(t.entries), func(i int) bool {
		return t.entries[i].VBase > va
	})
}

// Insert installs a range translation. The charged cost is one range
// table operation — independent of e.Pages, which is the entire point.
// Overlapping ranges are rejected.
func (t *Table) Insert(e Entry) error {
	if e.Pages == 0 {
		return fmt.Errorf("rangetable: empty range")
	}
	if uint64(e.VBase)%mem.FrameSize != 0 {
		return fmt.Errorf("rangetable: base %#x not page aligned", uint64(e.VBase))
	}
	t.clock.Advance(t.params.RangeTableOp)
	t.cInserts.Inc()
	i := t.search(e.VBase)
	// Check the neighbours for overlap.
	if i > 0 && t.entries[i-1].VEnd() > e.VBase {
		return fmt.Errorf("rangetable: [%#x,+%d pages) overlaps existing range at %#x",
			uint64(e.VBase), e.Pages, uint64(t.entries[i-1].VBase))
	}
	if i < len(t.entries) && t.entries[i].VBase < e.VEnd() {
		return fmt.Errorf("rangetable: [%#x,+%d pages) overlaps existing range at %#x",
			uint64(e.VBase), e.Pages, uint64(t.entries[i].VBase))
	}
	t.entries = append(t.entries, Entry{})
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e
	return nil
}

// Remove deletes the range starting exactly at vbase and returns it.
// Like Insert, the charged cost is one table operation.
func (t *Table) Remove(vbase mem.VirtAddr) (Entry, error) {
	t.clock.Advance(t.params.RangeTableOp)
	t.cRemoves.Inc()
	i := t.search(vbase)
	if i == 0 || t.entries[i-1].VBase != vbase {
		return Entry{}, fmt.Errorf("rangetable: no range starts at %#x", uint64(vbase))
	}
	e := t.entries[i-1]
	t.entries = append(t.entries[:i-1], t.entries[i:]...)
	return e, nil
}

// Lookup walks the table for va (binary search), charging one table
// operation. It is the miss path of the range TLB.
func (t *Table) Lookup(va mem.VirtAddr) (Entry, bool) {
	t.clock.Advance(t.params.RangeTableOp)
	t.cWalks.Inc()
	i := t.search(va)
	if i == 0 {
		return Entry{}, false
	}
	if e := t.entries[i-1]; e.Contains(va) {
		return e, true
	}
	return Entry{}, false
}

// LookupNoCharge is Lookup without simulated cost (assertions).
func (t *Table) LookupNoCharge(va mem.VirtAddr) (Entry, bool) {
	i := t.search(va)
	if i == 0 {
		return Entry{}, false
	}
	if e := t.entries[i-1]; e.Contains(va) {
		return e, true
	}
	return Entry{}, false
}

// UpdateFlags rewrites the protection of the range starting at vbase —
// a single-entry operation (file-grain protection change).
func (t *Table) UpdateFlags(vbase mem.VirtAddr, flags pagetable.Flags) error {
	t.clock.Advance(t.params.RangeTableOp)
	i := t.search(vbase)
	if i == 0 || t.entries[i-1].VBase != vbase {
		return fmt.Errorf("rangetable: no range starts at %#x", uint64(vbase))
	}
	t.entries[i-1].Flags = flags
	return nil
}

// CheckInvariants verifies sortedness and non-overlap.
func (t *Table) CheckInvariants() error {
	for i := 1; i < len(t.entries); i++ {
		if t.entries[i-1].VEnd() > t.entries[i].VBase {
			return fmt.Errorf("rangetable: entries %d and %d overlap", i-1, i)
		}
	}
	return nil
}

// RTLB is the fully associative range TLB of one simulated CPU: a
// handful of entries, each covering an arbitrarily large range, with
// LRU replacement. Entries are tagged with an address-space ID so all
// processes scheduled on the CPU share the structure.
type RTLB struct {
	cpu    *sim.CPU
	params *sim.Params

	capacity int
	entries  []rtlbEntry
	stamp    uint64

	stats *metrics.Set
	// Cached counters for the per-access probe path.
	cHits, cMisses, cEvictions *metrics.Counter
}

type rtlbEntry struct {
	asid int
	e    Entry
	lru  uint64
}

// DefaultRTLBEntries matches the modest size proposed for range TLBs.
const DefaultRTLBEntries = 32

// NewRTLB creates the range TLB of one CPU with the given entry count.
// Costs are charged to that CPU's clock.
func NewRTLB(cpu *sim.CPU, params *sim.Params, capacity int) *RTLB {
	if capacity <= 0 {
		capacity = DefaultRTLBEntries
	}
	r := &RTLB{cpu: cpu, params: params, capacity: capacity, stats: metrics.NewSet()}
	r.cHits = r.stats.Counter("hits")
	r.cMisses = r.stats.Counter("misses")
	r.cEvictions = r.stats.Counter("evictions")
	return r
}

// Stats exposes counters: "hits", "misses", "evictions".
func (r *RTLB) Stats() *metrics.Set { return r.stats }

// CPU returns the CPU this range TLB belongs to.
func (r *RTLB) CPU() *sim.CPU { return r.cpu }

// Lookup probes the range TLB. A hit charges RangeTLBHit; on a miss the
// caller walks the range table and Inserts the result.
func (r *RTLB) Lookup(asid int, va mem.VirtAddr) (Entry, bool) {
	for i := range r.entries {
		if r.entries[i].asid == asid && r.entries[i].e.Contains(va) {
			r.stamp++
			r.entries[i].lru = r.stamp
			r.cpu.Advance(r.params.RangeTLBHit)
			r.cHits.Inc()
			return r.entries[i].e, true
		}
	}
	r.cpu.Advance(r.params.RangeTLBHit) // probe cost, hit or miss
	r.cMisses.Inc()
	return Entry{}, false
}

// Peek reports whether the range TLB caches a translation for va,
// without cost or LRU side effects (diagnostic).
func (r *RTLB) Peek(asid int, va mem.VirtAddr) (Entry, bool) {
	for i := range r.entries {
		if r.entries[i].asid == asid && r.entries[i].e.Contains(va) {
			return r.entries[i].e, true
		}
	}
	return Entry{}, false
}

// Insert caches a range translation, evicting the LRU entry if full.
func (r *RTLB) Insert(asid int, e Entry) {
	r.stamp++
	if len(r.entries) < r.capacity {
		r.entries = append(r.entries, rtlbEntry{asid: asid, e: e, lru: r.stamp})
		return
	}
	victim := 0
	for i := 1; i < len(r.entries); i++ {
		if r.entries[i].lru < r.entries[victim].lru {
			victim = i
		}
	}
	r.entries[victim] = rtlbEntry{asid: asid, e: e, lru: r.stamp}
	r.cEvictions.Inc()
}

// Invalidate drops any cached entry of the address space whose range
// starts at vbase — the O(1) shootdown of a whole mapping the paper
// highlights: one entry per CPU, regardless of mapping size.
func (r *RTLB) Invalidate(asid int, vbase mem.VirtAddr) {
	for i := 0; i < len(r.entries); i++ {
		if r.entries[i].asid == asid && r.entries[i].e.VBase == vbase {
			r.entries[i] = r.entries[len(r.entries)-1]
			r.entries = r.entries[:len(r.entries)-1]
			i--
		}
	}
	r.cpu.Advance(r.params.TLBFlushEntry)
}

// FlushAll empties the range TLB (every address space) at the flat
// full-flush cost.
func (r *RTLB) FlushAll() {
	r.entries = r.entries[:0]
	r.cpu.Advance(r.params.TLBFullFlush)
}

// ValidEntries returns the number of cached ranges.
func (r *RTLB) ValidEntries() int { return len(r.entries) }

// VisitEntries calls fn for every cached range with its address-space
// tag. It charges no simulated cost and has no LRU side effects;
// invariant checkers use it to audit the cache against range tables.
func (r *RTLB) VisitEntries(fn func(asid int, e Entry)) {
	for i := range r.entries {
		fn(r.entries[i].asid, r.entries[i].e)
	}
}
