package usermode

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tier"
)

// newTable builds a small two-CPU machine with a grant table over the
// given pool size (and an optional fast pool) for tests.
func newTable(t *testing.T, poolFrames, fastFrames uint64, batch uint64) (*sim.Machine, *mem.Memory, *GrantTable) {
	t.Helper()
	params := sim.DefaultParams()
	machine := sim.NewMachine(&params, 2, 1)
	memory, err := mem.New(machine.Clock(), &params, mem.Config{
		DRAMFrames: 4096,
		NVMFrames:  8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{PoolBase: 0, PoolFrames: poolFrames, BatchPages: batch}
	if fastFrames > 0 {
		// Fast pool in DRAM, primary pool in NVM.
		cfg = Config{
			PoolBase: 4096, PoolFrames: poolFrames,
			FastBase: 0, FastFrames: fastFrames,
			BatchPages: batch,
		}
	}
	gt, err := NewGrantTable(machine.Clock(), &params, memory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return machine, memory, gt
}

func TestAllocReturnsZeroedGrantedMemory(t *testing.T) {
	machine, _, gt := newTable(t, 1024, 0, 64)
	p, err := gt.NewProcessOn(machine.BootCPU())
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.AllocPages(3)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3*mem.FrameSize)
	if err := p.ReadBuf(r.Base(), buf); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, v)
		}
	}
	data := []byte("granted extents, no kernel in sight")
	if err := p.WriteBuf(r.Base(), data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := p.ReadBuf(r.Base(), got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatal("round trip mismatch")
	}
	if err := machine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessOutsideGrantsRejected(t *testing.T) {
	machine, _, gt := newTable(t, 1024, 0, 64)
	p, err := gt.NewProcessOn(machine.BootCPU())
	if err != nil {
		t.Fatal(err)
	}
	// Well past the pool: never granted.
	far := mem.VirtAddr(mem.Frame(2048).Addr())
	if err := p.WriteBuf(far, []byte{1}); err == nil {
		t.Fatal("write outside grants succeeded")
	}
	if err := p.ReadBuf(far, make([]byte, 1)); err == nil {
		t.Fatal("read outside grants succeeded")
	}
	// A freed-and-revoked extent is no longer accessible either.
	r, err := p.AllocPages(64)
	if err != nil {
		t.Fatal(err)
	}
	base := r.Base()
	if err := p.FreeRegion(r); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Reclaim(); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteBuf(base, []byte{1}); err == nil {
		t.Fatal("write to revoked grant succeeded")
	}
}

func TestReclaimRevokesOnlyWhollyFreeUnpinned(t *testing.T) {
	machine, _, gt := newTable(t, 1024, 0, 32)
	p, err := gt.NewProcessOn(machine.BootCPU())
	if err != nil {
		t.Fatal(err)
	}
	// Force several distinct grants, then free some allocations.
	var regs []heap.Region
	for i := 0; i < 4; i++ {
		r, err := p.AllocPages(32)
		if err != nil {
			t.Fatal(err)
		}
		regs = append(regs, r)
	}
	// Grant 0 stays allocated; grants 1..3 become wholly free.
	for _, r := range regs[1:] {
		if err := p.FreeRegion(r); err != nil {
			t.Fatal(err)
		}
	}
	// Pin one of the free ones.
	if err := p.Pin(regs[1].Base()); err != nil {
		t.Fatal(err)
	}
	revoked, err := p.Reclaim()
	if err != nil {
		t.Fatal(err)
	}
	if revoked != 2 {
		t.Fatalf("revoked %d extents, want 2 (one live, one pinned)", revoked)
	}
	if err := machine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Unpin and the last free grant goes too.
	if err := p.Unpin(regs[1].Base()); err != nil {
		t.Fatal(err)
	}
	if revoked, err = p.Reclaim(); err != nil || revoked != 1 {
		t.Fatalf("after unpin: revoked=%d err=%v, want 1, nil", revoked, err)
	}
	if err := machine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedSegRefcounting(t *testing.T) {
	machine, _, gt := newTable(t, 1024, 0, 64)
	a, err := gt.NewProcessOn(machine.BootCPU())
	if err != nil {
		t.Fatal(err)
	}
	b, err := gt.NewProcessOn(machine.CPU(1))
	if err != nil {
		t.Fatal(err)
	}
	seg, err := gt.NewShared(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.MapShared(seg); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteBuf(seg.Base(), []byte{0x5A}); err != nil {
		t.Fatal(err)
	}
	var got [1]byte
	if err := b.ReadBuf(seg.Base(), got[:]); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x5A {
		t.Fatalf("b sees %#x through shared segment, want 0x5A", got[0])
	}
	if err := a.UnmapShared(seg); err != nil {
		t.Fatal(err)
	}
	// Still mapped by b.
	if err := b.ReadBuf(seg.Base(), got[:]); err != nil {
		t.Fatal(err)
	}
	if err := b.UnmapShared(seg); err != nil {
		t.Fatal(err)
	}
	// Last unmap freed the segment: no longer accessible.
	if err := b.ReadBuf(seg.Base(), got[:]); err == nil {
		t.Fatal("read of freed shared segment succeeded")
	}
	if err := machine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNoKernelTransitionsEver(t *testing.T) {
	machine, _, gt := newTable(t, 4000, 0, 32)
	p, err := gt.NewProcessOn(machine.BootCPU())
	if err != nil {
		t.Fatal(err)
	}
	h := heap.NewOn(p)
	sizes := []uint64{24, 240, 2400}
	var ptrs []mem.VirtAddr
	for i := 0; i < 200; i++ {
		a, err := h.Alloc(sizes[i%len(sizes)])
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, a)
		if i%3 == 0 && len(ptrs) > 1 {
			if err := h.Free(ptrs[0]); err != nil {
				t.Fatal(err)
			}
			ptrs = ptrs[1:]
		}
	}
	if n := gt.Stats().Value("kernel_transitions"); n != 0 {
		t.Fatalf("%d kernel transitions", n)
	}
	s, c := gt.Stats().Value("queue_submits"), gt.Stats().Value("queue_completes")
	if s == 0 || s != c {
		t.Fatalf("queue submits=%d completes=%d", s, c)
	}
	if err := machine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapOnUsermodeSpace(t *testing.T) {
	machine, _, gt := newTable(t, 2048, 0, 512)
	p, err := gt.NewProcessOn(machine.BootCPU())
	if err != nil {
		t.Fatal(err)
	}
	h := heap.NewOn(p)
	a, err := h.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Write(a, []byte("heap over granted physical extents")); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every region the heap holds must sit inside this process's
	// grants — the containment invariant checks the same thing from
	// the grant table's side.
	h.Regions(func(r heap.Region) {
		if err := p.ReadBuf(r.Base(), make([]byte, 1)); err != nil {
			t.Errorf("heap region %#x outside grants: %v", uint64(r.Base()), err)
		}
	})
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := machine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateFrameRelocatesWholeExtent(t *testing.T) {
	machine, memory, gt := newTable(t, 1024, 256, 64)
	params := machine.Params()
	eng := tier.New(params, memory, tier.Smart, 128)
	gt.SetEngine(eng)
	p, err := gt.NewProcessOn(machine.BootCPU())
	if err != nil {
		t.Fatal(err)
	}
	var moved []string
	p.SetRelocate(func(old, new mem.VirtAddr, pages uint64) {
		moved = append(moved, fmt.Sprintf("%#x->%#x/%d", uint64(old), uint64(new), pages))
	})
	r, err := p.AllocPages(64)
	if err != nil {
		t.Fatal(err)
	}
	base := r.Base()
	pattern := []byte("relocated bytes must survive the move")
	if err := p.WriteBuf(base, pattern); err != nil {
		t.Fatal(err)
	}
	srcFrame := mem.PhysAddr(base).Frame()
	srcKind := memory.Kind(srcFrame)
	dstKind := mem.NVM
	if srcKind == mem.NVM {
		dstKind = mem.DRAM
	}
	pages, ok := gt.MigrateFrame(machine.BootCPU(), srcFrame, dstKind)
	if !ok {
		t.Fatal("migration declined")
	}
	if len(moved) != 1 {
		t.Fatalf("relocation callback ran %d times, want 1", len(moved))
	}
	if pages == 0 {
		t.Fatal("migrated 0 pages")
	}
	// The callback's new base is where the bytes now live; the test's
	// handle to them moved with the extent.
	var newBase mem.VirtAddr
	for b := range p.allocs {
		newBase = b
	}
	if memory.Kind(mem.PhysAddr(newBase).Frame()) != dstKind {
		t.Fatalf("relocated extent in %v, want %v", memory.Kind(mem.PhysAddr(newBase).Frame()), dstKind)
	}
	got := make([]byte, len(pattern))
	if err := p.ReadBuf(newBase, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(pattern) {
		t.Fatal("content lost in migration")
	}
	// The vacated address is gone.
	if err := p.ReadBuf(base, got); err == nil {
		t.Fatal("old address still readable after migration")
	}
	if err := machine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateDeclinesPinnedAndCallbackless(t *testing.T) {
	machine, memory, gt := newTable(t, 1024, 256, 64)
	eng := tier.New(machine.Params(), memory, tier.Smart, 128)
	gt.SetEngine(eng)
	p, err := gt.NewProcessOn(machine.BootCPU())
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.AllocPages(16)
	if err != nil {
		t.Fatal(err)
	}
	f := mem.PhysAddr(r.Base()).Frame()
	to := mem.NVM
	if memory.Kind(f) == mem.NVM {
		to = mem.DRAM
	}
	// No relocation callback: decline.
	if _, ok := gt.MigrateFrame(machine.BootCPU(), f, to); ok {
		t.Fatal("migrated a callback-less process's extent")
	}
	p.SetRelocate(func(old, new mem.VirtAddr, pages uint64) {})
	if err := p.Pin(r.Base()); err != nil {
		t.Fatal(err)
	}
	if _, ok := gt.MigrateFrame(machine.BootCPU(), f, to); ok {
		t.Fatal("migrated a pinned extent")
	}
	if err := p.Unpin(r.Base()); err != nil {
		t.Fatal(err)
	}
	if _, ok := gt.MigrateFrame(machine.BootCPU(), f, to); !ok {
		t.Fatal("unpinned migratable extent declined")
	}
	if err := machine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- seeded grant-exhaustion/refill property test, with shrinking ---

// propOp is one step of the property trace. Kept tiny so a shrunk
// reproducer prints readably.
type propOp struct {
	kind  byte   // 'a' alloc, 'f' free, 'w' write, 'r' reclaim, 'p' pin, 'u' unpin
	pages uint64 // alloc size
	idx   int    // target selector for free/write/pin/unpin
}

func (o propOp) String() string {
	switch o.kind {
	case 'a':
		return fmt.Sprintf("alloc %d", o.pages)
	case 'f':
		return fmt.Sprintf("free #%d", o.idx)
	case 'w':
		return fmt.Sprintf("write #%d", o.idx)
	case 'r':
		return "reclaim"
	case 'p':
		return fmt.Sprintf("pin #%d", o.idx)
	default:
		return fmt.Sprintf("unpin #%d", o.idx)
	}
}

// genPropTrace derives a trace from a seed. The pool is kept tiny
// relative to the allocation sizes, so refills regularly exhaust the
// pool and the error path (alloc fails cleanly, nothing is granted)
// runs many times per trace.
func genPropTrace(seed uint64, n int) []propOp {
	rng := sim.NewRNG(seed)
	ops := make([]propOp, n)
	for i := range ops {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			ops[i] = propOp{kind: 'a', pages: uint64(1 + rng.Intn(96))}
		case 4, 5:
			ops[i] = propOp{kind: 'f', idx: rng.Intn(8)}
		case 6, 7:
			ops[i] = propOp{kind: 'w', idx: rng.Intn(8)}
		case 8:
			ops[i] = propOp{kind: 'r'}
		default:
			if rng.Intn(2) == 0 {
				ops[i] = propOp{kind: 'p', idx: rng.Intn(8)}
			} else {
				ops[i] = propOp{kind: 'u', idx: rng.Intn(8)}
			}
		}
	}
	return ops
}

// replayProp replays a trace on a fresh small-pool table and returns
// an error if any property is violated: an access lands outside
// granted extents, contents are lost, exhaustion corrupts state, or a
// machine invariant breaks.
func replayProp(trace []propOp) error {
	params := sim.DefaultParams()
	machine := sim.NewMachine(&params, 2, 99)
	memory, err := mem.New(machine.Clock(), &params, mem.Config{DRAMFrames: 512, NVMFrames: 512})
	if err != nil {
		return err
	}
	// 256-frame pool, 32-page batches: a handful of 96-page allocs
	// exhausts it.
	gt, err := NewGrantTable(machine.Clock(), &params, memory, Config{
		PoolBase: 0, PoolFrames: 256, BatchPages: 32,
	})
	if err != nil {
		return err
	}
	p, err := gt.NewProcessOn(machine.BootCPU())
	if err != nil {
		return err
	}
	type liveAlloc struct {
		r   heap.Region
		tag byte
	}
	var live []liveAlloc
	var tag byte
	for i, op := range trace {
		switch op.kind {
		case 'a':
			r, err := p.AllocPages(op.pages)
			if err != nil {
				// Exhaustion must be clean: state stays consistent and
				// later ops still work.
				if !strings.Contains(err.Error(), "exhausted") {
					return fmt.Errorf("op %d (%s): unexpected error: %v", i, op, err)
				}
				break
			}
			tag++
			if tag == 0 {
				tag = 1
			}
			if err := p.WriteBuf(r.Base(), []byte{tag}); err != nil {
				return fmt.Errorf("op %d (%s): write to fresh alloc: %v", i, op, err)
			}
			live = append(live, liveAlloc{r, tag})
		case 'f':
			if len(live) == 0 {
				break
			}
			j := op.idx % len(live)
			if err := p.FreeRegion(live[j].r); err != nil {
				return fmt.Errorf("op %d (%s): %v", i, op, err)
			}
			live = append(live[:j], live[j+1:]...)
		case 'w':
			if len(live) == 0 {
				break
			}
			j := op.idx % len(live)
			var got [1]byte
			if err := p.ReadBuf(live[j].r.Base(), got[:]); err != nil {
				return fmt.Errorf("op %d (%s): %v", i, op, err)
			}
			if got[0] != live[j].tag {
				return fmt.Errorf("op %d (%s): tag %#x, want %#x", i, op, got[0], live[j].tag)
			}
			if err := p.WriteBuf(live[j].r.Base(), []byte{live[j].tag}); err != nil {
				return fmt.Errorf("op %d (%s): %v", i, op, err)
			}
		case 'r':
			if _, err := p.Reclaim(); err != nil {
				return fmt.Errorf("op %d (%s): %v", i, op, err)
			}
		case 'p', 'u':
			if len(live) == 0 {
				break
			}
			j := op.idx % len(live)
			var err error
			if op.kind == 'p' {
				err = p.Pin(live[j].r.Base())
			} else {
				err = p.Unpin(live[j].r.Base())
			}
			if err != nil {
				return fmt.Errorf("op %d (%s): %v", i, op, err)
			}
		}
		if err := machine.CheckInvariants(); err != nil {
			return fmt.Errorf("op %d (%s): %v", i, op, err)
		}
	}
	return nil
}

// shrinkProp greedily removes ops while the trace still fails,
// returning a minimal reproducer.
func shrinkProp(trace []propOp, budget int) []propOp {
	for pass := 0; pass < 8 && budget > 0; pass++ {
		shrunk := false
		for i := 0; i < len(trace) && budget > 0; i++ {
			cand := append(append([]propOp{}, trace[:i]...), trace[i+1:]...)
			budget--
			if replayProp(cand) != nil {
				trace = cand
				shrunk = true
				i--
			}
		}
		if !shrunk {
			break
		}
	}
	return trace
}

// TestGrantExhaustionRefillProperty is the seeded property test: under
// a tiny pool, allocations exhaust and refill grants constantly, and
// the allocator must never touch a frame outside its granted extents
// (every replay step checks the machine invariants, and every access
// goes through the bounds checker). Failures shrink to a minimal
// trace.
func TestGrantExhaustionRefillProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		trace := genPropTrace(seed, 400)
		if err := replayProp(trace); err != nil {
			min := shrinkProp(trace, 400)
			lines := make([]string, len(min))
			for i, op := range min {
				lines[i] = "  " + op.String()
			}
			t.Fatalf("seed %d: %v\nshrunk reproducer (%d ops):\n%s",
				seed, err, len(min), strings.Join(lines, "\n"))
		}
	}
}
