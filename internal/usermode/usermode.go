// Package usermode is the fifth memory-management configuration:
// user-mode software-managed physical memory, after Cichlid's explicit
// extent grants and Zagieboylo's software-based MM without virtual
// memory (PAPERS.md). A kernel-side grant table hands each process
// batches of physical extents up front; the process runs its own
// allocator (internal/heap via the Space interface) over those extents
// with no per-page kernel transitions. There is no translation
// hardware in this world: addresses are identity-mapped (VA == PA) and
// every access pays a software bounds check instead of a page walk.
//
// Faults (grant refills), reclaim (grant revocation), pinning, and
// shared-segment setup are queue operations on a user↔kernel
// shared-memory ring — a submit and a completion reap, each costing
// sim.Params.UQueueOp, plus sim.Params.GrantInstall per grant-table
// update. No path in this package ever charges a syscall or mode
// switch; the kernel_transitions counter exists to prove it stays 0.
//
// The grant table is also a tier.Backend: a whole granted extent can
// migrate between pools (DRAM↔NVM) cooperatively — the process learns
// new extent addresses through its relocation callback, the software
// analogue of a TLB shootdown. Processes without a callback have
// effectively pinned grants; migration declines them.
package usermode

import (
	"fmt"
	"sort"

	"repro/internal/buddy"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tier"
)

// DefaultBatchPages is the up-front grant batch when Config leaves
// BatchPages zero: 2 MiB of physical memory per refill.
const DefaultBatchPages = 512

// Config describes the physical pools a GrantTable manages. Pool is
// the primary (required) pool; Fast is an optional second pool in a
// faster region for tiering experiments. Frames in both pools must be
// valid in the backing Memory and must not overlap anything else.
type Config struct {
	PoolBase   mem.Frame
	PoolFrames uint64

	FastBase   mem.Frame
	FastFrames uint64

	// BatchPages is the minimum extent size of one grant refill
	// (DefaultBatchPages when zero).
	BatchPages uint64
}

// grant is one physical extent installed in a process's grant table.
// Extents are granted and revoked whole — there is no per-page path.
type grant struct {
	run    buddy.Run
	from   *buddy.Allocator
	pinned bool
}

func (g *grant) base() mem.VirtAddr { return mem.VirtAddr(g.run.Start.Addr()) }
func (g *grant) end() mem.Frame     { return g.run.End() }

// frameRun is a free run on a process's user-level free list,
// identity-addressed like everything in this world.
type frameRun struct {
	start mem.Frame
	pages uint64
}

func (r frameRun) end() mem.Frame { return r.start + mem.Frame(r.pages) }

// Extent is the user-visible record of one allocation carved from
// granted frames. It satisfies heap.Region.
type Extent struct {
	base  mem.VirtAddr
	pages uint64
}

// Base returns the extent's identity-mapped base address.
func (e *Extent) Base() mem.VirtAddr { return e.base }

// Pages returns the extent's length in pages.
func (e *Extent) Pages() uint64 { return e.pages }

// SharedSeg is a refcounted shared physical segment. All mappers see
// it at the same identity address, so sharing needs no translation.
type SharedSeg struct {
	run  buddy.Run
	from *buddy.Allocator
	refs int
}

// Base returns the segment's identity-mapped base address.
func (s *SharedSeg) Base() mem.VirtAddr { return mem.VirtAddr(s.run.Start.Addr()) }

// Pages returns the segment's length in pages.
func (s *SharedSeg) Pages() uint64 { return s.run.Count }

// GrantTable is the kernel side of the usermode world: the capability
// table recording which physical extents each process owns, plus the
// buddy pools they are granted from. It registers machine invariants
// (grant↔extent disjointness, heap↔grant containment, and the
// no-kernel-transition accounting) at construction.
type GrantTable struct {
	mach   *sim.Machine
	clock  *sim.Clock
	params *sim.Params
	memory *mem.Memory

	pool *buddy.Allocator // primary pool (required)
	fast *buddy.Allocator // optional faster pool

	batch uint64

	eng *tier.Engine

	procs  []*Process
	shared []*SharedSeg

	stats        *metrics.Set
	cSubmits     *metrics.Counter
	cCompletes   *metrics.Counter
	cInstalled   *metrics.Counter
	cRevoked     *metrics.Counter
	cTransitions *metrics.Counter // must stay 0: the whole point
	cMigrations  *metrics.Counter
}

// NewGrantTable builds the grant table and its pools on clock, and
// registers the usermode invariants and stats with the machine.
func NewGrantTable(clock *sim.Clock, params *sim.Params, memory *mem.Memory, cfg Config) (*GrantTable, error) {
	if cfg.PoolFrames == 0 {
		return nil, fmt.Errorf("usermode: config needs a primary pool")
	}
	if !memory.Valid(cfg.PoolBase, cfg.PoolFrames) {
		return nil, fmt.Errorf("usermode: pool [%d,+%d) not backed by memory", cfg.PoolBase, cfg.PoolFrames)
	}
	gt := &GrantTable{
		mach:   sim.MachineOf(clock, params),
		clock:  clock,
		params: params,
		memory: memory,
		batch:  cfg.BatchPages,
		stats:  metrics.NewSet(),
	}
	if gt.batch == 0 {
		gt.batch = DefaultBatchPages
	}
	var err error
	gt.pool, err = buddy.New(clock, params, cfg.PoolBase, cfg.PoolFrames)
	if err != nil {
		return nil, err
	}
	if cfg.FastFrames > 0 {
		if !memory.Valid(cfg.FastBase, cfg.FastFrames) {
			return nil, fmt.Errorf("usermode: fast pool [%d,+%d) not backed by memory", cfg.FastBase, cfg.FastFrames)
		}
		gt.fast, err = buddy.New(clock, params, cfg.FastBase, cfg.FastFrames)
		if err != nil {
			return nil, err
		}
	}
	gt.cSubmits = gt.stats.Counter("queue_submits")
	gt.cCompletes = gt.stats.Counter("queue_completes")
	gt.cInstalled = gt.stats.Counter("grants_installed")
	gt.cRevoked = gt.stats.Counter("grants_revoked")
	gt.cTransitions = gt.stats.Counter("kernel_transitions")
	gt.cMigrations = gt.stats.Counter("extent_migrations")
	gt.mach.RegisterStats("usermode", gt.stats)
	gt.mach.RegisterInvariants("usermode/grant-disjoint", gt.checkDisjoint)
	gt.mach.RegisterInvariants("usermode/heap-grant-containment", gt.checkContainment)
	gt.mach.RegisterInvariants("usermode/no-kernel-transitions", gt.checkNoTransitions)
	return gt, nil
}

// Stats exposes the grant-queue counters.
func (gt *GrantTable) Stats() *metrics.Set { return gt.stats }

// SetEngine attaches a tier-migration engine: granted frames are
// tracked for hotness, accesses feed its sampler, and the table
// becomes the engine's migration backend. Attach before any grants.
func (gt *GrantTable) SetEngine(eng *tier.Engine) {
	gt.eng = eng
	eng.SetBackend(gt)
}

// run points the forwarding kernel clock at the process's home CPU so
// buddy-pool charges land there (same idiom as core.Process.run).
func (gt *GrantTable) run(cpu *sim.CPU) {
	if gt.mach.FreeRunning() {
		return
	}
	gt.mach.SetCurrent(cpu)
}

// queueOp charges one submit/reap round trip on the grant queue — the
// usermode stand-in for what would otherwise be a syscall.
func (gt *GrantTable) queueOp(cpu *sim.CPU) {
	cpu.Advance(2 * gt.params.UQueueOp)
	gt.cSubmits.Inc()
	gt.cCompletes.Inc()
}

// Process is one user-mode address space: a sorted set of granted
// extents, a user-level free-run list over them, and the allocation
// records the bounds checker consults. It satisfies heap.Space, so a
// heap.Heap runs on it unmodified.
type Process struct {
	gt  *GrantTable
	cpu *sim.CPU

	grants   []*grant
	freeRuns []frameRun
	allocs   map[mem.VirtAddr]*Extent
	shared   []*SharedSeg

	// relocate, when set, is called after the kernel migrates one of
	// this process's extents: the cooperative pointer-update contract
	// that replaces TLB shootdown. Without it grants are effectively
	// pinned and migration declines them.
	relocate func(old, new mem.VirtAddr, pages uint64)
}

// NewProcessOn admits a process and installs its first grant batch up
// front (the Cichlid model: extents arrive in batches, not on faults).
func (gt *GrantTable) NewProcessOn(cpu *sim.CPU) (*Process, error) {
	p := &Process{
		gt:     gt,
		cpu:    cpu,
		allocs: make(map[mem.VirtAddr]*Extent),
	}
	gt.procs = append(gt.procs, p)
	if err := gt.refill(p, gt.batch); err != nil {
		return nil, err
	}
	return p, nil
}

// CPU returns the process's home CPU.
func (p *Process) CPU() *sim.CPU { return p.cpu }

// RunOn migrates the process to cpu: subsequent operations charge
// there. No shootdown mask exists in this world — there is nothing to
// invalidate.
func (p *Process) RunOn(cpu *sim.CPU) { p.cpu = cpu }

// SetRelocate registers the cooperative extent-relocation callback.
func (p *Process) SetRelocate(fn func(old, new mem.VirtAddr, pages uint64)) { p.relocate = fn }

// pickPool orders the pools for a new grant: the fast pool first while
// the tier policy wants first-touch placement there (or always, when
// no engine steers), then the primary pool.
func (gt *GrantTable) pickPool() []*buddy.Allocator {
	if gt.fast == nil {
		return []*buddy.Allocator{gt.pool}
	}
	if gt.eng == nil || gt.eng.PreferFast() {
		return []*buddy.Allocator{gt.fast, gt.pool}
	}
	return []*buddy.Allocator{gt.pool, gt.fast}
}

// refill grants the process one new extent of at least need pages: a
// queue round trip, a buddy run allocation, and a grant-table install.
// It asks for a full batch first and falls back to an exact-size run
// when the batched size cannot be carved contiguously.
func (gt *GrantTable) refill(p *Process, need uint64) error {
	want := need
	if want < gt.batch {
		want = gt.batch
	}
	gt.queueOp(p.cpu)
	gt.run(p.cpu)
	var run buddy.Run
	var from *buddy.Allocator
	var err error
	for _, pool := range gt.pickPool() {
		if run, err = pool.AllocRun(want); err == nil {
			from = pool
			break
		}
	}
	if from == nil && want > need {
		// Batched size unavailable: retry at exact size before giving up.
		for _, pool := range gt.pickPool() {
			if run, err = pool.AllocRun(need); err == nil {
				from = pool
				break
			}
		}
	}
	if from == nil {
		return fmt.Errorf("usermode: grant pool exhausted (want %d pages): %v", need, err)
	}
	g := &grant{run: run, from: from}
	p.insertGrant(g)
	p.insertFree(frameRun{start: run.Start, pages: run.Count})
	p.cpu.Advance(gt.params.GrantInstall)
	gt.cInstalled.Inc()
	gt.trackRun(run)
	return nil
}

func (p *Process) insertGrant(g *grant) {
	i := sort.Search(len(p.grants), func(i int) bool { return p.grants[i].run.Start > g.run.Start })
	p.grants = append(p.grants, nil)
	copy(p.grants[i+1:], p.grants[i:])
	p.grants[i] = g
}

// grantOf returns the extent containing frame f, or nil.
func (p *Process) grantOf(f mem.Frame) *grant {
	i := sort.Search(len(p.grants), func(i int) bool { return p.grants[i].end() > f })
	if i < len(p.grants) && p.grants[i].run.Start <= f {
		return p.grants[i]
	}
	return nil
}

// insertFree returns a run to the free list, coalescing with
// neighbours only within the same extent: allocations never span a
// grant boundary, which keeps revocation and migration whole-extent.
func (p *Process) insertFree(r frameRun) {
	i := sort.Search(len(p.freeRuns), func(i int) bool { return p.freeRuns[i].start > r.start })
	g := p.grantOf(r.start)
	if i > 0 {
		prev := &p.freeRuns[i-1]
		if prev.end() == r.start && p.grantOf(prev.start) == g {
			prev.pages += r.pages
			if i < len(p.freeRuns) && p.freeRuns[i].start == prev.end() && p.grantOf(p.freeRuns[i].start) == g {
				prev.pages += p.freeRuns[i].pages
				p.freeRuns = append(p.freeRuns[:i], p.freeRuns[i+1:]...)
			}
			return
		}
	}
	if i < len(p.freeRuns) && p.freeRuns[i].start == r.end() && p.grantOf(p.freeRuns[i].start) == g {
		p.freeRuns[i].start = r.start
		p.freeRuns[i].pages += r.pages
		return
	}
	p.freeRuns = append(p.freeRuns, frameRun{})
	copy(p.freeRuns[i+1:], p.freeRuns[i:])
	p.freeRuns[i] = r
}

// carve takes pages from the free list (first fit), charging one
// user-level allocator step per run examined. ok is false when no run
// is large enough.
func (p *Process) carve(pages uint64) (mem.Frame, bool) {
	steps := 0
	for i := range p.freeRuns {
		steps++
		if p.freeRuns[i].pages >= pages {
			start := p.freeRuns[i].start
			p.freeRuns[i].start += mem.Frame(pages)
			p.freeRuns[i].pages -= pages
			if p.freeRuns[i].pages == 0 {
				p.freeRuns = append(p.freeRuns[:i], p.freeRuns[i+1:]...)
			}
			p.cpu.Advance(sim.Time(steps) * p.gt.params.UserAllocOp)
			return start, true
		}
	}
	if steps == 0 {
		steps = 1
	}
	p.cpu.Advance(sim.Time(steps) * p.gt.params.UserAllocOp)
	return 0, false
}

// AllocPages allocates a contiguous identity-mapped run, refilling the
// grant table when the free list cannot satisfy it. Satisfies
// heap.Space: the heap's arenas and large objects come through here.
func (p *Process) AllocPages(pages uint64) (heap.Region, error) {
	if pages == 0 {
		return nil, fmt.Errorf("usermode: zero-page allocation")
	}
	start, ok := p.carve(pages)
	if !ok {
		if err := p.gt.refill(p, pages); err != nil {
			return nil, err
		}
		if start, ok = p.carve(pages); !ok {
			return nil, fmt.Errorf("usermode: refill did not cover %d pages", pages)
		}
	}
	e := &Extent{base: mem.VirtAddr(start.Addr()), pages: pages}
	p.allocs[e.base] = e
	// A fresh grant arrives epoch-erased; recycled runs are re-zeroed
	// here so AllocPages always returns zero memory, like AllocVolatile.
	p.gt.memory.ZeroFramesOn(p.cpu, start, pages)
	return e, nil
}

// FreeRegion returns an allocation to the user-level free list — no
// kernel involvement at all. Satisfies heap.Space.
func (p *Process) FreeRegion(r heap.Region) error {
	e, ok := r.(*Extent)
	if !ok {
		return fmt.Errorf("usermode: foreign region %T", r)
	}
	if p.allocs[e.base] != e {
		return fmt.Errorf("usermode: free of unallocated extent %#x", uint64(e.base))
	}
	delete(p.allocs, e.base)
	p.insertFree(frameRun{start: mem.PhysAddr(e.base).Frame(), pages: e.pages})
	p.cpu.Advance(p.gt.params.UserAllocOp)
	return nil
}

// covered reports whether the page of frame f is accessible to p: in
// one of its granted extents or mapped shared segments.
func (p *Process) covered(f mem.Frame) bool {
	if p.grantOf(f) != nil {
		return true
	}
	for _, s := range p.shared {
		if s.run.Start <= f && f < s.run.End() {
			return true
		}
	}
	return false
}

// access is the shared body of WriteBuf/ReadBuf: a software bounds
// check per operation plus a memory reference (and NVM penalty) per
// touched page, with accesses fed to the tier sampler.
func (p *Process) access(addr mem.VirtAddr, n uint64, write bool) error {
	if n == 0 {
		return nil
	}
	p.cpu.Advance(p.gt.params.UserAllocOp) // software bounds check
	first := mem.PhysAddr(addr).Frame()
	last := mem.PhysAddr(addr + mem.VirtAddr(n) - 1).Frame()
	for f := first; f <= last; f++ {
		if !p.covered(f) {
			return fmt.Errorf("usermode: access to ungranted frame %d (addr %#x)", f, uint64(addr))
		}
		cost := p.gt.params.MemRef
		if p.gt.memory.Kind(f) == mem.NVM {
			if write {
				cost += p.gt.params.NVMWritePenalty
			} else {
				cost += p.gt.params.NVMReadPenalty
			}
		}
		p.cpu.Advance(cost)
		if p.gt.eng != nil {
			p.gt.eng.Record(f, write)
		}
	}
	return nil
}

// WriteBuf stores data at an identity-mapped address. Satisfies
// heap.Space.
func (p *Process) WriteBuf(addr mem.VirtAddr, data []byte) error {
	if err := p.access(addr, uint64(len(data)), true); err != nil {
		return err
	}
	p.gt.memory.WriteAt(mem.PhysAddr(addr), data)
	return nil
}

// ReadBuf loads from an identity-mapped address. Satisfies heap.Space.
func (p *Process) ReadBuf(addr mem.VirtAddr, buf []byte) error {
	if err := p.access(addr, uint64(len(buf)), false); err != nil {
		return err
	}
	p.gt.memory.ReadAt(mem.PhysAddr(addr), buf)
	return nil
}

// Pin marks the extent containing addr unreclaimable and immovable
// (for pseudo-DMA): one queue round trip plus a table update.
func (p *Process) Pin(addr mem.VirtAddr) error {
	g := p.grantOf(mem.PhysAddr(addr).Frame())
	if g == nil {
		return fmt.Errorf("usermode: pin of ungranted address %#x", uint64(addr))
	}
	p.gt.queueOp(p.cpu)
	p.cpu.Advance(p.gt.params.GrantInstall)
	g.pinned = true
	return nil
}

// Unpin reverses Pin.
func (p *Process) Unpin(addr mem.VirtAddr) error {
	g := p.grantOf(mem.PhysAddr(addr).Frame())
	if g == nil {
		return fmt.Errorf("usermode: unpin of ungranted address %#x", uint64(addr))
	}
	p.gt.queueOp(p.cpu)
	p.cpu.Advance(p.gt.params.GrantInstall)
	g.pinned = false
	return nil
}

// Reclaim revokes every wholly-free unpinned extent back to its pool:
// one queue round trip for the batch, one table update per extent.
// Returns the number of extents revoked.
func (p *Process) Reclaim() (int, error) {
	p.gt.queueOp(p.cpu)
	p.gt.run(p.cpu)
	revoked := 0
	for i := 0; i < len(p.grants); {
		g := p.grants[i]
		if g.pinned || !p.whollyFree(g) {
			i++
			continue
		}
		p.removeFreeRun(g.run.Start, g.run.Count)
		p.grants = append(p.grants[:i], p.grants[i+1:]...)
		if err := g.from.FreeRun(g.run); err != nil {
			return revoked, err
		}
		p.cpu.Advance(p.gt.params.GrantInstall)
		p.gt.cRevoked.Inc()
		p.gt.untrackRun(g.run)
		revoked++
	}
	return revoked, nil
}

// whollyFree reports whether the extent is one uncut free run (no
// allocation inside it). Free runs never span extents, so a wholly
// free extent shows up as exactly one run covering it.
func (p *Process) whollyFree(g *grant) bool {
	for _, r := range p.freeRuns {
		if r.start == g.run.Start && r.pages == g.run.Count {
			return true
		}
		if r.start > g.run.Start {
			break
		}
	}
	return false
}

func (p *Process) removeFreeRun(start mem.Frame, pages uint64) {
	for i := range p.freeRuns {
		if p.freeRuns[i].start == start && p.freeRuns[i].pages == pages {
			p.freeRuns = append(p.freeRuns[:i], p.freeRuns[i+1:]...)
			return
		}
	}
}

// Exit tears the process down: every private extent is revoked and
// every shared segment unmapped.
func (p *Process) Exit() error {
	p.gt.queueOp(p.cpu)
	p.gt.run(p.cpu)
	for _, g := range p.grants {
		if err := g.from.FreeRun(g.run); err != nil {
			return err
		}
		p.cpu.Advance(p.gt.params.GrantInstall)
		p.gt.cRevoked.Inc()
		p.gt.untrackRun(g.run)
	}
	p.grants = nil
	p.freeRuns = nil
	p.allocs = make(map[mem.VirtAddr]*Extent)
	for len(p.shared) > 0 {
		if err := p.UnmapShared(p.shared[0]); err != nil {
			return err
		}
	}
	for i, q := range p.gt.procs {
		if q == p {
			p.gt.procs = append(p.gt.procs[:i], p.gt.procs[i+1:]...)
			break
		}
	}
	return nil
}

// NewShared allocates a shared segment and maps it into creator. Other
// processes join with MapShared; the segment is freed when the last
// mapper leaves.
func (gt *GrantTable) NewShared(creator *Process, pages uint64) (*SharedSeg, error) {
	if pages == 0 {
		return nil, fmt.Errorf("usermode: zero-page shared segment")
	}
	gt.queueOp(creator.cpu)
	gt.run(creator.cpu)
	var run buddy.Run
	var from *buddy.Allocator
	var err error
	for _, pool := range gt.pickPool() {
		if run, err = pool.AllocRun(pages); err == nil {
			from = pool
			break
		}
	}
	if from == nil {
		return nil, fmt.Errorf("usermode: shared pool exhausted (%d pages): %v", pages, err)
	}
	s := &SharedSeg{run: run, from: from, refs: 1}
	gt.shared = append(gt.shared, s)
	creator.shared = append(creator.shared, s)
	creator.cpu.Advance(gt.params.GrantInstall)
	gt.cInstalled.Inc()
	gt.memory.ZeroFramesOn(creator.cpu, run.Start, run.Count)
	return s, nil
}

// MapShared grants p access to an existing shared segment: a
// capability delegation through the queue, no page-grain work.
func (p *Process) MapShared(s *SharedSeg) error {
	for _, have := range p.shared {
		if have == s {
			return fmt.Errorf("usermode: segment %#x mapped twice", uint64(s.Base()))
		}
	}
	p.gt.queueOp(p.cpu)
	p.cpu.Advance(p.gt.params.GrantInstall)
	p.gt.cInstalled.Inc()
	s.refs++
	p.shared = append(p.shared, s)
	return nil
}

// UnmapShared revokes p's access; the last unmap frees the segment.
func (p *Process) UnmapShared(s *SharedSeg) error {
	found := false
	for i, have := range p.shared {
		if have == s {
			p.shared = append(p.shared[:i], p.shared[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("usermode: unmap of unmapped segment %#x", uint64(s.Base()))
	}
	p.gt.queueOp(p.cpu)
	p.cpu.Advance(p.gt.params.GrantInstall)
	p.gt.cRevoked.Inc()
	s.refs--
	if s.refs == 0 {
		p.gt.run(p.cpu)
		for i, have := range p.gt.shared {
			if have == s {
				p.gt.shared = append(p.gt.shared[:i], p.gt.shared[i+1:]...)
				break
			}
		}
		return s.from.FreeRun(s.run)
	}
	return nil
}

// trackRun/untrackRun keep the tier engine's frame set in step with
// the live grants. The engine suppresses these during its own
// migrations (it uses Moved instead), so calls are unconditional.
func (gt *GrantTable) trackRun(r buddy.Run) {
	if gt.eng == nil {
		return
	}
	for f := r.Start; f < r.End(); f++ {
		gt.eng.Track(f)
	}
}

func (gt *GrantTable) untrackRun(r buddy.Run) {
	if gt.eng == nil {
		return
	}
	for f := r.Start; f < r.End(); f++ {
		gt.eng.Untrack(f)
	}
}

// poolFor maps a region kind to the pool living in that kind, or nil.
func (gt *GrantTable) poolFor(kind mem.RegionKind) *buddy.Allocator {
	if gt.fast != nil && gt.memory.Kind(gt.fast.Base()) == kind {
		return gt.fast
	}
	if gt.memory.Kind(gt.pool.Base()) == kind {
		return gt.pool
	}
	return nil
}

// ownerOf finds the process and grant holding frame f.
func (gt *GrantTable) ownerOf(f mem.Frame) (*Process, *grant) {
	for _, p := range gt.procs {
		if g := p.grantOf(f); g != nil {
			return p, g
		}
	}
	return nil, nil
}

// MigrateFrame implements tier.Backend: it relocates the whole granted
// extent containing f into the pool of the target kind. The move is
// cooperative — the owner must have a relocation callback to learn the
// new addresses — and declines (a policy stall) for pinned extents,
// shared segments, callback-less owners, and full target pools.
func (gt *GrantTable) MigrateFrame(cur *sim.CPU, f mem.Frame, to mem.RegionKind) (uint64, bool) {
	p, g := gt.ownerOf(f)
	if g == nil || g.pinned || p.relocate == nil {
		return 0, false
	}
	target := gt.poolFor(to)
	if target == nil || target == g.from {
		return 0, false
	}
	run, err := target.AllocRun(g.run.Count)
	if err != nil {
		return 0, false
	}
	// Queue round trip to request the move, copy, then swap the grant:
	// revoke the old extent, install the new one.
	gt.queueOp(cur)
	gt.memory.CopyFramesOn(cur, run.Start, g.run.Start, g.run.Count)
	if gt.eng != nil {
		for i := uint64(0); i < g.run.Count; i++ {
			gt.eng.Moved(g.run.Start+mem.Frame(i), run.Start+mem.Frame(i))
		}
	}
	oldRun := g.run
	oldBase := g.base()
	g.run = run
	g.from = target
	sort.Slice(p.grants, func(i, j int) bool { return p.grants[i].run.Start < p.grants[j].run.Start })
	p.rebase(oldRun, run.Start)
	if err := oldRunFree(oldRun, gt, cur); err != nil {
		return 0, false
	}
	cur.Advance(2 * gt.params.GrantInstall)
	gt.cRevoked.Inc()
	gt.cInstalled.Inc()
	gt.cMigrations.Inc()
	p.relocate(oldBase, mem.VirtAddr(run.Start.Addr()), oldRun.Count)
	return oldRun.Count, true
}

// oldRunFree returns the vacated run to the pool it came from.
func oldRunFree(r buddy.Run, gt *GrantTable, cur *sim.CPU) error {
	var src *buddy.Allocator
	if gt.fast != nil && r.Start >= gt.fast.Base() && uint64(r.Start-gt.fast.Base()) < gt.fast.Size() {
		src = gt.fast
	} else {
		src = gt.pool
	}
	gt.run(cur)
	return src.FreeRun(r)
}

// rebase shifts the process's free runs and allocation records from a
// vacated extent to its new location.
func (p *Process) rebase(old buddy.Run, newStart mem.Frame) {
	delta := int64(newStart) - int64(old.Start)
	for i := range p.freeRuns {
		if p.freeRuns[i].start >= old.Start && p.freeRuns[i].end() <= old.End() {
			p.freeRuns[i].start = mem.Frame(int64(p.freeRuns[i].start) + delta)
		}
	}
	sort.Slice(p.freeRuns, func(i, j int) bool { return p.freeRuns[i].start < p.freeRuns[j].start })
	oldBase := mem.VirtAddr(old.Start.Addr())
	oldEnd := oldBase + mem.VirtAddr(old.Count*mem.FrameSize)
	byteDelta := delta * int64(mem.FrameSize)
	for base, e := range p.allocs {
		if base >= oldBase && base < oldEnd {
			delete(p.allocs, base)
			e.base = mem.VirtAddr(int64(e.base) + byteDelta)
			p.allocs[e.base] = e
		}
	}
}

// LiveExtents returns the grant table's size in entries: private
// extents plus one entry per process mapping each shared segment.
func (gt *GrantTable) LiveExtents() int {
	n := 0
	for _, s := range gt.shared {
		n += s.refs
	}
	for _, p := range gt.procs {
		n += len(p.grants)
	}
	return n
}

// checkDisjoint is the grant-table↔extent disjointness invariant:
// every granted extent and shared segment lies inside a pool, none
// overlap each other, none overlap pool free space, and the pools'
// internal structure is sound.
func (gt *GrantTable) checkDisjoint() error {
	type span struct {
		start mem.Frame
		count uint64
		what  string
	}
	var spans []span
	for _, p := range gt.procs {
		for _, g := range p.grants {
			spans = append(spans, span{g.run.Start, g.run.Count, "grant"})
		}
	}
	for _, s := range gt.shared {
		spans = append(spans, span{s.run.Start, s.run.Count, "shared"})
	}
	inPool := func(f mem.Frame, n uint64) bool {
		if uint64(f) >= uint64(gt.pool.Base()) && uint64(f)+n <= uint64(gt.pool.Base())+gt.pool.Size() {
			return true
		}
		if gt.fast != nil && uint64(f) >= uint64(gt.fast.Base()) && uint64(f)+n <= uint64(gt.fast.Base())+gt.fast.Size() {
			return true
		}
		return false
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	for i, s := range spans {
		if !inPool(s.start, s.count) {
			return fmt.Errorf("usermode: %s [%d,+%d) outside all pools", s.what, s.start, s.count)
		}
		if i > 0 {
			prev := spans[i-1]
			if prev.start+mem.Frame(prev.count) > s.start {
				return fmt.Errorf("usermode: %s [%d,+%d) overlaps %s [%d,+%d)",
					prev.what, prev.start, prev.count, s.what, s.start, s.count)
			}
		}
	}
	var overlap error
	checkFree := func(pool *buddy.Allocator) {
		pool.VisitFree(func(start mem.Frame, count uint64) {
			if overlap != nil {
				return
			}
			for _, s := range spans {
				if s.start < start+mem.Frame(count) && start < s.start+mem.Frame(s.count) {
					overlap = fmt.Errorf("usermode: %s [%d,+%d) overlaps pool free space [%d,+%d)",
						s.what, s.start, s.count, start, count)
					return
				}
			}
		})
	}
	checkFree(gt.pool)
	if gt.fast != nil {
		checkFree(gt.fast)
	}
	if overlap != nil {
		return overlap
	}
	if err := gt.pool.CheckInvariants(); err != nil {
		return fmt.Errorf("usermode: primary pool: %w", err)
	}
	if gt.fast != nil {
		if err := gt.fast.CheckInvariants(); err != nil {
			return fmt.Errorf("usermode: fast pool: %w", err)
		}
	}
	return nil
}

// checkContainment is the heap↔grant containment invariant: each
// process's free runs and live allocations lie inside its grants and
// together tile them exactly.
func (gt *GrantTable) checkContainment() error {
	for pi, p := range gt.procs {
		var covered uint64
		for _, r := range p.freeRuns {
			g := p.grantOf(r.start)
			if g == nil || r.end() > g.end() {
				return fmt.Errorf("usermode: proc %d free run [%d,+%d) not inside one grant", pi, r.start, r.pages)
			}
			covered += r.pages
		}
		for _, e := range p.allocs {
			f := mem.PhysAddr(e.base).Frame()
			g := p.grantOf(f)
			if g == nil || f+mem.Frame(e.pages) > g.end() {
				return fmt.Errorf("usermode: proc %d alloc %#x (+%d pages) not inside one grant", pi, uint64(e.base), e.pages)
			}
			covered += e.pages
		}
		var granted uint64
		for _, g := range p.grants {
			granted += g.run.Count
		}
		if covered != granted {
			return fmt.Errorf("usermode: proc %d covers %d of %d granted pages", pi, covered, granted)
		}
	}
	return nil
}

// checkNoTransitions is the no-kernel-transition accounting invariant:
// the mode-switch counter stays zero, every queue submit was reaped,
// and install/revoke bookkeeping matches the live table.
func (gt *GrantTable) checkNoTransitions() error {
	if n := gt.cTransitions.Value(); n != 0 {
		return fmt.Errorf("usermode: %d kernel transitions in a no-transition world", n)
	}
	if s, c := gt.cSubmits.Value(), gt.cCompletes.Value(); s != c {
		return fmt.Errorf("usermode: %d queue submits but %d completions", s, c)
	}
	in, rv := gt.cInstalled.Value(), gt.cRevoked.Value()
	if live := uint64(gt.LiveExtents()); in-rv != live {
		return fmt.Errorf("usermode: installs-revokes=%d but %d live extents", in-rv, live)
	}
	return nil
}
