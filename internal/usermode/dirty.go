package usermode

import (
	"repro/internal/ckpt"
	"repro/internal/mem"
)

// DirtyUnits maps the dirty frames owned by the grant table's pools
// onto checkpoint units at grant granularity: each granted extent or
// shared segment containing a dirty frame becomes one unit, so
// checkpoint metadata cost is O(dirty grants). Dirty frames inside the
// pools but outside every live grant (returned and erased since the
// last epoch) fall back to single-page units.
func (gt *GrantTable) DirtyUnits(frames []mem.Frame) []ckpt.Unit {
	var spans []ckpt.Unit
	for _, p := range gt.procs {
		for _, g := range p.grants {
			spans = append(spans, ckpt.Unit{Start: g.run.Start, Count: g.run.Count})
		}
	}
	for _, s := range gt.shared {
		spans = append(spans, ckpt.Unit{Start: s.run.Start, Count: s.run.Count})
	}
	var mine []mem.Frame
	for _, f := range frames {
		if gt.ownsFrame(f) {
			mine = append(mine, f)
		}
	}
	return ckpt.UnitsBySpan(mine, spans)
}

// ownsFrame reports whether f belongs to the grant table's primary or
// fast pool.
func (gt *GrantTable) ownsFrame(f mem.Frame) bool {
	if f >= gt.pool.Base() && f < gt.pool.Base()+mem.Frame(gt.pool.Size()) {
		return true
	}
	if gt.fast != nil && f >= gt.fast.Base() && f < gt.fast.Base()+mem.Frame(gt.fast.Size()) {
		return true
	}
	return false
}
