package slab

import (
	"testing"
	"testing/quick"

	"repro/internal/buddy"
	"repro/internal/mem"
	"repro/internal/sim"
)

func newCache(t *testing.T, objSize uint64) (*Cache, *buddy.Allocator, *sim.Clock) {
	t.Helper()
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	bud, err := buddy.New(clock, &params, 0, 4096)
	if err != nil {
		t.Fatalf("buddy.New: %v", err)
	}
	c, err := NewCache("test", objSize, clock, &params, bud)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	return c, bud, clock
}

func TestNewCacheRejectsBadSizes(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	bud, _ := buddy.New(clock, &params, 0, 64)
	if _, err := NewCache("tiny", 4, clock, &params, bud); err == nil {
		t.Fatal("accepted 4-byte objects")
	}
	if _, err := NewCache("huge", 1<<20, clock, &params, bud); err == nil {
		t.Fatal("accepted 1MiB objects")
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	c, bud, _ := newCache(t, 64)
	a, err := c.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if c.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", c.InUse())
	}
	if err := c.Free(a); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if c.InUse() != 0 || c.Slabs() != 0 {
		t.Fatalf("InUse=%d Slabs=%d after free, want 0/0", c.InUse(), c.Slabs())
	}
	if bud.FreeFrames() != 4096 {
		t.Fatalf("empty slab not returned to buddy: free=%d", bud.FreeFrames())
	}
}

func TestObjectsDistinct(t *testing.T) {
	c, _, _ := newCache(t, 128)
	seen := make(map[mem.PhysAddr]bool)
	for i := 0; i < 500; i++ {
		a, err := c.Alloc()
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		if seen[a] {
			t.Fatalf("address %#x returned twice", uint64(a))
		}
		seen[a] = true
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	c, _, _ := newCache(t, 64)
	a, _ := c.Alloc()
	b, _ := c.Alloc() // keep the slab alive after first free
	_ = b
	if err := c.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Free(a); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestForeignAddressRejected(t *testing.T) {
	c, _, _ := newCache(t, 64)
	if err := c.Free(mem.PhysAddr(0xFFFF0000)); err == nil {
		t.Fatal("foreign address accepted")
	}
}

func TestMisalignedAddressRejected(t *testing.T) {
	c, _, _ := newCache(t, 64)
	a, _ := c.Alloc()
	if err := c.Free(a + 1); err == nil {
		t.Fatal("misaligned address accepted")
	}
	if err := c.Free(a); err != nil {
		t.Fatal(err)
	}
}

func TestSlabGrowthAndShrink(t *testing.T) {
	c, bud, _ := newCache(t, 512)
	per := c.ObjectsPerSlab()
	var addrs []mem.PhysAddr
	for i := 0; i < per*3; i++ {
		a, err := c.Alloc()
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		addrs = append(addrs, a)
	}
	if c.Slabs() != 3 {
		t.Fatalf("Slabs = %d, want 3", c.Slabs())
	}
	for _, a := range addrs {
		if err := c.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if c.Slabs() != 0 || c.FootprintFrames() != 0 {
		t.Fatalf("slabs not reclaimed: %d slabs", c.Slabs())
	}
	if bud.FreeFrames() != 4096 {
		t.Fatalf("frames leaked: %d free", bud.FreeFrames())
	}
}

func TestAllocChargesTime(t *testing.T) {
	c, _, clock := newCache(t, 64)
	before := clock.Now()
	if _, err := c.Alloc(); err != nil {
		t.Fatal(err)
	}
	if clock.Since(before) <= 0 {
		t.Fatal("Alloc charged no time")
	}
}

func TestExhaustionReturnsError(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	bud, _ := buddy.New(clock, &params, 0, 2) // 2 frames only
	c, err := NewCache("small", 1024, clock, &params, bud)
	if err != nil {
		t.Fatal(err)
	}
	// Slab needs 2 frames (8 objects * 1KiB); one slab fits, then OOM.
	for i := 0; i < c.ObjectsPerSlab(); i++ {
		if _, err := c.Alloc(); err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
	}
	if _, err := c.Alloc(); err == nil {
		t.Fatal("allocation beyond memory succeeded")
	}
}

func TestQuickRandomAllocFree(t *testing.T) {
	f := func(seed uint64) bool {
		clock := &sim.Clock{}
		params := sim.DefaultParams()
		bud, err := buddy.New(clock, &params, 0, 2048)
		if err != nil {
			return false
		}
		c, err := NewCache("q", 96, clock, &params, bud)
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed)
		var live []mem.PhysAddr
		for i := 0; i < 500; i++ {
			if len(live) == 0 || rng.Float64() < 0.55 {
				a, err := c.Alloc()
				if err != nil {
					return false
				}
				live = append(live, a)
			} else {
				j := rng.Intn(len(live))
				if err := c.Free(live[j]); err != nil {
					t.Logf("Free: %v", err)
					return false
				}
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if i%100 == 0 {
				if err := c.CheckInvariants(); err != nil {
					t.Logf("invariants: %v", err)
					return false
				}
			}
		}
		for _, a := range live {
			if err := c.Free(a); err != nil {
				return false
			}
		}
		return c.InUse() == 0 && bud.FreeFrames() == 2048
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
