// Package slab implements a Bonwick-style slab allocator on top of the
// buddy allocator. The simulated kernel uses it for fixed-size metadata
// objects (VMAs, inodes, page-table bookkeeping), and the paper proposes
// slab techniques as a low-overhead way to manage physical memory
// itself (§3.1: "We propose using techniques from heaps, such as slab
// allocators, to manage physical memory").
//
// A Cache carves objects of one size out of slabs, where each slab is a
// contiguous frame run obtained from the buddy allocator. The alloc and
// free fast paths charge one SlabOp; slab creation additionally pays
// the underlying buddy cost.
package slab

import (
	"fmt"

	"repro/internal/buddy"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Cache allocates fixed-size objects identified by their physical
// address.
type Cache struct {
	name    string
	objSize uint64
	perSlab int
	frames  uint64 // frames per slab

	clock  *sim.Clock
	params *sim.Params
	bud    *buddy.Allocator

	// partial slabs have both free and allocated objects; full slabs
	// have none free. Empty slabs are returned to the buddy allocator
	// immediately (no per-cache reserve), keeping accounting simple.
	partial []*slabT
	full    []*slabT

	byFrame map[mem.Frame]*slabT // slab lookup for Free

	stats *metrics.Set
}

type slabT struct {
	start    mem.Frame
	frames   uint64
	free     []int // free object indices (LIFO)
	inUse    int
	allocSet map[int]bool
}

// minObjectsPerSlab controls slab sizing: a slab spans enough frames to
// hold at least this many objects (capped by the max buddy run).
const minObjectsPerSlab = 8

// NewCache creates an object cache. objSize is in bytes and must be
// between 8 bytes and 512 KiB.
func NewCache(name string, objSize uint64, clock *sim.Clock, params *sim.Params, bud *buddy.Allocator) (*Cache, error) {
	if objSize < 8 || objSize > 512<<10 {
		return nil, fmt.Errorf("slab: object size %d out of range [8, 512KiB]", objSize)
	}
	frames := uint64(1)
	for frames*mem.FrameSize/objSize < minObjectsPerSlab {
		frames *= 2
	}
	return &Cache{
		name:    name,
		objSize: objSize,
		perSlab: int(frames * mem.FrameSize / objSize),
		frames:  frames,
		clock:   clock,
		params:  params,
		bud:     bud,
		byFrame: make(map[mem.Frame]*slabT),
		stats:   metrics.NewSet(),
	}, nil
}

// Name returns the cache name.
func (c *Cache) Name() string { return c.name }

// ObjectSize returns the object size in bytes.
func (c *Cache) ObjectSize() uint64 { return c.objSize }

// ObjectsPerSlab returns how many objects fit in one slab.
func (c *Cache) ObjectsPerSlab() int { return c.perSlab }

// Stats exposes counters: "allocs", "frees", "slabs_created",
// "slabs_destroyed".
func (c *Cache) Stats() *metrics.Set { return c.stats }

// Alloc returns the physical address of a free object.
func (c *Cache) Alloc() (mem.PhysAddr, error) {
	c.clock.Advance(c.params.SlabOp)
	if len(c.partial) == 0 {
		if err := c.grow(); err != nil {
			return 0, err
		}
	}
	s := c.partial[len(c.partial)-1]
	idx := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.allocSet[idx] = true
	s.inUse++
	if len(s.free) == 0 {
		c.partial = c.partial[:len(c.partial)-1]
		c.full = append(c.full, s)
	}
	c.stats.Counter("allocs").Inc()
	return s.start.Addr() + mem.PhysAddr(uint64(idx)*c.objSize), nil
}

// Free returns an object to the cache. It reports an error for
// addresses not currently allocated from this cache (double frees,
// foreign pointers).
func (c *Cache) Free(addr mem.PhysAddr) error {
	c.clock.Advance(c.params.SlabOp)
	s, idx, err := c.locate(addr)
	if err != nil {
		return err
	}
	if !s.allocSet[idx] {
		return fmt.Errorf("slab %s: double free of object at %#x", c.name, uint64(addr))
	}
	delete(s.allocSet, idx)
	wasFull := len(s.free) == 0
	s.free = append(s.free, idx)
	s.inUse--
	if wasFull {
		c.removeFrom(&c.full, s)
		c.partial = append(c.partial, s)
	}
	if s.inUse == 0 {
		c.removeFrom(&c.partial, s)
		for i := uint64(0); i < s.frames; i++ {
			delete(c.byFrame, s.start+mem.Frame(i))
		}
		if err := c.bud.FreeRun(buddy.Run{Start: s.start, Count: s.frames}); err != nil {
			return fmt.Errorf("slab %s: returning empty slab: %w", c.name, err)
		}
		c.stats.Counter("slabs_destroyed").Inc()
	}
	c.stats.Counter("frees").Inc()
	return nil
}

func (c *Cache) locate(addr mem.PhysAddr) (*slabT, int, error) {
	s, ok := c.byFrame[addr.Frame()]
	if !ok {
		return nil, 0, fmt.Errorf("slab %s: address %#x not from this cache", c.name, uint64(addr))
	}
	off := uint64(addr) - uint64(s.start.Addr())
	if off%c.objSize != 0 {
		return nil, 0, fmt.Errorf("slab %s: address %#x not object-aligned", c.name, uint64(addr))
	}
	idx := int(off / c.objSize)
	if idx >= c.perSlab {
		return nil, 0, fmt.Errorf("slab %s: address %#x past last object", c.name, uint64(addr))
	}
	return s, idx, nil
}

func (c *Cache) grow() error {
	run, err := c.bud.AllocRun(c.frames)
	if err != nil {
		return fmt.Errorf("slab %s: grow: %w", c.name, err)
	}
	s := &slabT{
		start:    run.Start,
		frames:   run.Count,
		free:     make([]int, 0, c.perSlab),
		allocSet: make(map[int]bool),
	}
	for i := c.perSlab - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	for i := uint64(0); i < s.frames; i++ {
		c.byFrame[run.Start+mem.Frame(i)] = s
	}
	c.partial = append(c.partial, s)
	c.stats.Counter("slabs_created").Inc()
	return nil
}

func (c *Cache) removeFrom(list *[]*slabT, s *slabT) {
	for i, x := range *list {
		if x == s {
			(*list)[i] = (*list)[len(*list)-1]
			*list = (*list)[:len(*list)-1]
			return
		}
	}
}

// InUse returns the number of currently allocated objects.
func (c *Cache) InUse() int {
	n := 0
	for _, s := range c.partial {
		n += s.inUse
	}
	for _, s := range c.full {
		n += s.inUse
	}
	return n
}

// Slabs returns the number of live slabs.
func (c *Cache) Slabs() int { return len(c.partial) + len(c.full) }

// FootprintFrames returns the frames currently held by the cache.
func (c *Cache) FootprintFrames() uint64 {
	return uint64(c.Slabs()) * c.frames
}

// CheckInvariants validates per-slab free/allocated accounting.
func (c *Cache) CheckInvariants() error {
	check := func(s *slabT, wantFree bool) error {
		if len(s.free)+s.inUse != c.perSlab {
			return fmt.Errorf("slab %s: slab at %d accounts %d objects, want %d", c.name, s.start, len(s.free)+s.inUse, c.perSlab)
		}
		if wantFree && len(s.free) == 0 {
			return fmt.Errorf("slab %s: full slab on partial list", c.name)
		}
		if !wantFree && len(s.free) != 0 {
			return fmt.Errorf("slab %s: partial slab on full list", c.name)
		}
		seen := make(map[int]bool)
		for _, idx := range s.free {
			if idx < 0 || idx >= c.perSlab {
				return fmt.Errorf("slab %s: free index %d out of range", c.name, idx)
			}
			if seen[idx] {
				return fmt.Errorf("slab %s: index %d on free list twice", c.name, idx)
			}
			if s.allocSet[idx] {
				return fmt.Errorf("slab %s: index %d both free and allocated", c.name, idx)
			}
			seen[idx] = true
		}
		return nil
	}
	for _, s := range c.partial {
		if err := check(s, true); err != nil {
			return err
		}
	}
	for _, s := range c.full {
		if err := check(s, false); err != nil {
			return err
		}
	}
	return nil
}
