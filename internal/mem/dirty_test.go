package mem

import (
	"reflect"
	"testing"
)

func TestDirtyTrackingOffByDefault(t *testing.T) {
	m, _, _ := newTestMemory(t)
	if m.DirtyTracking() {
		t.Fatal("tracking on by default")
	}
	m.WriteByteAt(Frame(3).Addr(), 0xaa)
	if n := m.DirtyCount(); n != 0 {
		t.Fatalf("DirtyCount = %d with tracking off", n)
	}
	if fr := m.DirtyFrames(); len(fr) != 0 {
		t.Fatalf("DirtyFrames = %v with tracking off", fr)
	}
}

func TestDirtyTrackingWritesAndDrops(t *testing.T) {
	m, _, _ := newTestMemory(t)
	// Content present before the epoch starts is not dirty.
	m.WriteByteAt(Frame(1).Addr(), 0x11)
	m.SetDirtyTracking(true)
	if !m.DirtyTracking() {
		t.Fatal("tracking did not turn on")
	}
	if n := m.DirtyCount(); n != 0 {
		t.Fatalf("DirtyCount = %d right after enabling", n)
	}

	// A write dirties its frame, including rewrites of materialized
	// frames and multi-frame spans.
	m.WriteByteAt(Frame(1).Addr(), 0x22)
	buf := make([]byte, 2*FrameSize)
	m.WriteAt(Frame(5).Addr(), buf)
	// Reads do not dirty.
	m.ReadByteAt(Frame(9).Addr())
	want := []Frame{1, 5, 6}
	if got := m.DirtyFrames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("DirtyFrames = %v, want %v", got, want)
	}

	// Zeroing a materialized frame dirties it; erasing a huge range of
	// absent frames dirties nothing extra.
	m.ResetDirty()
	m.ZeroFrames(1, 1)
	m.EraseRangeEpoch(100, 900)
	if got := m.DirtyFrames(); !reflect.DeepEqual(got, []Frame{1}) {
		t.Fatalf("DirtyFrames after erase = %v, want [1]", got)
	}

	// Copies dirty the destination (and, via drop, destinations whose
	// source reads as zero).
	m.ResetDirty()
	m.WriteByteAt(Frame(20).Addr(), 0x33)
	m.ResetDirty()
	m.CopyFrames(30, 20, 1) // materialized source
	m.WriteByteAt(Frame(31).Addr(), 1)
	m.ResetDirty()
	m.CopyFrames(31, 40, 1) // absent source: 31 drops to zero
	if got := m.DirtyFrames(); !reflect.DeepEqual(got, []Frame{31}) {
		t.Fatalf("DirtyFrames after zero-copy = %v, want [31]", got)
	}

	m.SetDirtyTracking(false)
	if m.DirtyTracking() {
		t.Fatal("tracking did not turn off")
	}
}

func TestDirtyTrackingCrashDirtiesDRAMOnly(t *testing.T) {
	m, _, _ := newTestMemory(t)
	dram, _ := m.Region(DRAM)
	nvm, _ := m.Region(NVM)
	m.SetDirtyTracking(true)
	m.WriteByteAt(dram.Start.Addr(), 1)
	m.WriteByteAt(nvm.Start.Addr(), 2)
	m.ResetDirty()
	m.Crash()
	if got := m.DirtyFrames(); !reflect.DeepEqual(got, []Frame{dram.Start}) {
		t.Fatalf("DirtyFrames after crash = %v, want [%d]", got, dram.Start)
	}
}

func TestMaterializedFrameList(t *testing.T) {
	m, _, _ := newTestMemory(t)
	if got := m.MaterializedFrameList(); len(got) != 0 {
		t.Fatalf("MaterializedFrameList = %v on fresh memory", got)
	}
	m.WriteByteAt(Frame(7).Addr(), 1)
	m.WriteByteAt(Frame(2).Addr(), 1)
	m.ReadByteAt(Frame(9).Addr()) // reads do not materialize
	if got := m.MaterializedFrameList(); !reflect.DeepEqual(got, []Frame{2, 7}) {
		t.Fatalf("MaterializedFrameList = %v, want [2 7]", got)
	}
}
