package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newTestMemory(t *testing.T) (*Memory, *sim.Clock, sim.Params) {
	t.Helper()
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	m, err := New(clock, &params, Config{DRAMFrames: 1024, NVMFrames: 2048})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m, clock, params
}

func TestNewRejectsEmptyMachine(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	if _, err := New(clock, &params, Config{}); err == nil {
		t.Fatal("New accepted a machine with no memory")
	}
}

func TestRegionLayout(t *testing.T) {
	m, _, _ := newTestMemory(t)
	if m.TotalFrames() != 3072 {
		t.Fatalf("TotalFrames = %d, want 3072", m.TotalFrames())
	}
	regions := m.Regions()
	if len(regions) != 2 {
		t.Fatalf("got %d regions, want 2", len(regions))
	}
	if regions[0].Kind != DRAM || regions[0].Start != 0 || regions[0].Count != 1024 {
		t.Fatalf("DRAM region = %+v", regions[0])
	}
	if regions[1].Kind != NVM || regions[1].Start != 1024 || regions[1].Count != 2048 {
		t.Fatalf("NVM region = %+v", regions[1])
	}
}

func TestRegionLookup(t *testing.T) {
	m, _, _ := newTestMemory(t)
	r, ok := m.Region(NVM)
	if !ok || r.Start != 1024 {
		t.Fatalf("Region(NVM) = %+v, %v", r, ok)
	}
	if m.Kind(0) != DRAM || m.Kind(1024) != NVM || m.Kind(3071) != NVM {
		t.Fatal("Kind misclassifies frames")
	}
}

func TestAddrFrameRoundTrip(t *testing.T) {
	f := Frame(37)
	a := f.Addr() + 123
	if a.Frame() != f || a.Offset() != 123 {
		t.Fatalf("round trip failed: frame=%d off=%d", a.Frame(), a.Offset())
	}
}

func TestReadsOfUnwrittenMemoryAreZero(t *testing.T) {
	m, _, _ := newTestMemory(t)
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = 0xFF
	}
	m.ReadAt(Frame(5).Addr(), buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
	if m.MaterializedFrames() != 0 {
		t.Fatal("read materialized frames")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m, _, _ := newTestMemory(t)
	data := []byte("hello o1 memory")
	pa := Frame(10).Addr() + 4000 // crosses a frame boundary
	m.WriteAt(pa, data)
	got := make([]byte, len(data))
	m.ReadAt(pa, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	m, _, _ := newTestMemory(t)
	pa := Frame(3).Addr() + 4092 // straddles frames
	m.WriteUint64(pa, 0xDEADBEEFCAFEF00D)
	if got := m.ReadUint64(pa); got != 0xDEADBEEFCAFEF00D {
		t.Fatalf("ReadUint64 = %#x", got)
	}
}

func TestByteAccessors(t *testing.T) {
	m, _, _ := newTestMemory(t)
	m.WriteByteAt(100, 0xAB)
	if m.ReadByteAt(100) != 0xAB {
		t.Fatal("byte round trip failed")
	}
}

func TestOutOfRangeAccessPanics(t *testing.T) {
	m, _, _ := newTestMemory(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range read did not panic")
		}
	}()
	m.ReadByteAt(PhysAddr(m.TotalFrames() << FrameShift))
}

func TestZeroFramesChargesLinearTime(t *testing.T) {
	m, clock, params := newTestMemory(t)
	m.WriteByteAt(Frame(7).Addr(), 1)
	start := clock.Now()
	m.ZeroFrames(7, 4)
	if got, want := clock.Since(start), 4*params.ZeroPage; got != want {
		t.Fatalf("ZeroFrames charged %v, want %v", got, want)
	}
	if m.ReadByteAt(Frame(7).Addr()) != 0 {
		t.Fatal("frame not zeroed")
	}
}

func TestEraseRangeEpochIsConstantTime(t *testing.T) {
	m, clock, params := newTestMemory(t)
	m.WriteByteAt(Frame(0).Addr(), 9)
	small := clock.Now()
	m.EraseRangeEpoch(0, 1)
	smallCost := clock.Since(small)

	m.WriteByteAt(Frame(100).Addr(), 9)
	big := clock.Now()
	m.EraseRangeEpoch(100, 2000)
	bigCost := clock.Since(big)

	if smallCost != bigCost || smallCost != params.ZeroEpoch {
		t.Fatalf("epoch erase costs differ: %v vs %v (want both %v)", smallCost, bigCost, params.ZeroEpoch)
	}
	if m.ReadByteAt(Frame(100).Addr()) != 0 {
		t.Fatal("epoch erase did not zero content")
	}
}

func TestCrashDropsDRAMKeepsNVM(t *testing.T) {
	m, _, _ := newTestMemory(t)
	m.WriteByteAt(Frame(10).Addr(), 0x11)   // DRAM
	m.WriteByteAt(Frame(2000).Addr(), 0x22) // NVM
	m.Crash()
	if m.ReadByteAt(Frame(10).Addr()) != 0 {
		t.Fatal("DRAM content survived crash")
	}
	if m.ReadByteAt(Frame(2000).Addr()) != 0x22 {
		t.Fatal("NVM content lost in crash")
	}
}

func TestCopyFrames(t *testing.T) {
	m, _, _ := newTestMemory(t)
	m.WriteAt(Frame(1).Addr(), []byte{1, 2, 3})
	m.CopyFrames(20, 1, 2)
	got := make([]byte, 3)
	m.ReadAt(Frame(20).Addr(), got)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("copy read back %v", got)
	}
	// Copying an unmaterialized source zeroes the destination.
	m.WriteByteAt(Frame(30).Addr(), 0xFF)
	m.CopyFrames(30, 500, 1)
	if m.ReadByteAt(Frame(30).Addr()) != 0 {
		t.Fatal("copy from zero frame did not zero destination")
	}
}

func TestValid(t *testing.T) {
	m, _, _ := newTestMemory(t)
	if !m.Valid(0, 3072) {
		t.Fatal("full range should be valid")
	}
	if m.Valid(3000, 100) {
		t.Fatal("overflowing range should be invalid")
	}
	if m.Valid(4000, 1) {
		t.Fatal("frame past end should be invalid")
	}
}

func TestRegionKindString(t *testing.T) {
	if DRAM.String() != "DRAM" || NVM.String() != "NVM" {
		t.Fatal("kind names wrong")
	}
	if RegionKind(9).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestWriteReadPropertyQuick(t *testing.T) {
	m, _, _ := newTestMemory(t)
	f := func(frame uint16, off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 8192 {
			data = data[:8192]
		}
		fr := Frame(uint64(frame) % 3000)
		pa := fr.Addr() + PhysAddr(uint64(off)%FrameSize)
		if !m.Valid(pa.Frame(), uint64(len(data)/FrameSize)+2) {
			return true
		}
		m.WriteAt(pa, data)
		got := make([]byte, len(data))
		m.ReadAt(pa, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
