// Package mem models the physical address space of the simulated
// machine: a set of 4 KiB frames grouped into DRAM and NVM regions.
//
// Frames hold real byte contents (materialized lazily, so terabyte-scale
// address spaces are cheap to simulate as long as they are sparsely
// written). Absent contents read as zero, which also gives the
// simulator its constant-time bulk-erase primitive: dropping a frame's
// backing returns it to the all-zero state.
//
// The package charges virtual time only for explicitly priced
// operations (eager zeroing, epoch erases). Plain data reads and writes
// are free here; the translation layers (vm, core) charge access costs
// because they depend on TLB and page-table state.
package mem

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Frame geometry. The simulator uses the x86-64 base page size.
const (
	FrameShift = 12
	FrameSize  = 1 << FrameShift // 4096 bytes

	// HugeFrames2M and HugeFrames1G are the frame counts of the two
	// x86-64 huge page sizes.
	HugeFrames2M = 512
	HugeFrames1G = 512 * 512
)

// Frame is a physical frame number. Frame f covers physical addresses
// [f*FrameSize, (f+1)*FrameSize).
type Frame uint64

// Addr returns the first physical address of the frame.
func (f Frame) Addr() PhysAddr { return PhysAddr(f) << FrameShift }

// PhysAddr is a byte address in the physical address space.
type PhysAddr uint64

// VirtAddr is a byte address in a process's virtual address space. It
// lives here (rather than in the page-table package) because every
// translation structure — page tables, TLBs, range tables — shares it.
type VirtAddr uint64

// VPN returns the virtual page number of the address.
func (a VirtAddr) VPN() uint64 { return uint64(a) >> FrameShift }

// PageOffset returns the byte offset within the 4 KiB page.
func (a VirtAddr) PageOffset() uint64 { return uint64(a) & (FrameSize - 1) }

// PageBase returns the address rounded down to its page boundary.
func (a VirtAddr) PageBase() VirtAddr { return a &^ (FrameSize - 1) }

// Frame returns the frame containing the address.
func (a PhysAddr) Frame() Frame { return Frame(a >> FrameShift) }

// Offset returns the byte offset of the address within its frame.
func (a PhysAddr) Offset() uint64 { return uint64(a) & (FrameSize - 1) }

// RegionKind distinguishes memory technologies.
type RegionKind int

const (
	// DRAM is conventional volatile memory.
	DRAM RegionKind = iota
	// NVM is byte-addressable persistent memory (3D XPoint/PCM class):
	// contents survive Crash, and references pay the NVM penalties.
	NVM
)

// String returns the kind's name.
func (k RegionKind) String() string {
	switch k {
	case DRAM:
		return "DRAM"
	case NVM:
		return "NVM"
	default:
		return fmt.Sprintf("RegionKind(%d)", int(k))
	}
}

// Region is a contiguous run of frames of one kind.
type Region struct {
	Start Frame
	Count uint64
	Kind  RegionKind
}

// End returns the first frame past the region.
func (r Region) End() Frame { return r.Start + Frame(r.Count) }

// Config describes the simulated machine's memory.
type Config struct {
	// DRAMFrames and NVMFrames are the sizes of the two regions. The
	// DRAM region starts at frame 0; the NVM region follows it.
	DRAMFrames uint64
	NVMFrames  uint64
}

// DefaultConfig returns a machine with 512 MiB of DRAM and 4 GiB of
// NVM — small enough to simulate instantly, large enough for every
// experiment in the paper's sweeps.
func DefaultConfig() Config {
	return Config{
		DRAMFrames: 512 << 20 >> FrameShift,
		NVMFrames:  4 << 30 >> FrameShift,
	}
}

// Memory is the physical address space of one simulated machine.
type Memory struct {
	clock   *sim.Clock
	params  *sim.Params
	regions []Region
	total   uint64

	// mu guards the data map and the spare pool. The map structure is
	// shared by every CPU context of a host-parallel phase, but frame
	// *contents* are not locked: parallel CPU contexts touch disjoint
	// frame sets by construction (per-CPU arenas), so the lock only
	// protects the host-side bookkeeping, never orders simulated
	// events.
	mu sync.Mutex

	// data holds materialized frame contents. Absent frames read as
	// zero. The map is the persistence boundary: Crash discards frames
	// in DRAM regions and keeps frames in NVM regions.
	data map[Frame]*frameArray

	// spare recycles backing arrays of erased frames so churn-heavy
	// workloads (alloc/erase loops) do not allocate a fresh 4 KiB array
	// per materialization. Bounded so the host footprint of a machine
	// that erased a huge range once does not stay at its peak.
	spare []*frameArray

	// dirty records frames whose observable contents may have changed
	// since the last ResetDirty, when tracking is on (see dirty.go).
	// Guarded by mu; nil while tracking is off so the hot paths pay one
	// nil check.
	dirty map[Frame]struct{}

	stats *metrics.Set
	// Cached counters for the hot paths (also pre-created so their
	// report order never depends on which CPU context records first).
	cMaterialized *metrics.Counter
	cZeroed       *metrics.Counter
	cEpochErases  *metrics.Counter
	cCopied       *metrics.Counter
}

// frameArray is the backing storage of one materialized frame. Frames
// on the recycled pool must be fully zeroed — absent frames read as
// zero, so a recycled array with residue would resurrect dead contents
// on the next materialization.
type frameArray [FrameSize]byte

// reset scrubs the array before it enters the recycled pool.
func (d *frameArray) reset() {
	*d = frameArray{}
}

// maxSpareFrames bounds the recycled-array pool (32 MiB of host memory).
const maxSpareFrames = 8192

// New creates the physical memory described by cfg.
func New(clock *sim.Clock, params *sim.Params, cfg Config) (*Memory, error) {
	if cfg.DRAMFrames == 0 && cfg.NVMFrames == 0 {
		return nil, fmt.Errorf("mem: machine has no memory")
	}
	m := &Memory{
		clock:  clock,
		params: params,
		data:   make(map[Frame]*frameArray),
		stats:  metrics.NewSet(),
	}
	m.cMaterialized = m.stats.Counter("materialized_frames")
	m.cZeroed = m.stats.Counter("zeroed_frames")
	m.cEpochErases = m.stats.Counter("epoch_erases")
	m.cCopied = m.stats.Counter("copied_frames")
	// Self-register the counter set so Machine.CaptureState includes
	// memory events in snapshot state comparisons.
	sim.MachineOf(clock, params).RegisterStats("mem", m.stats)
	next := Frame(0)
	if cfg.DRAMFrames > 0 {
		m.regions = append(m.regions, Region{Start: next, Count: cfg.DRAMFrames, Kind: DRAM})
		next += Frame(cfg.DRAMFrames)
	}
	if cfg.NVMFrames > 0 {
		m.regions = append(m.regions, Region{Start: next, Count: cfg.NVMFrames, Kind: NVM})
		next += Frame(cfg.NVMFrames)
	}
	m.total = uint64(next)
	return m, nil
}

// TotalFrames returns the number of frames in the address space.
func (m *Memory) TotalFrames() uint64 { return m.total }

// Regions returns the memory regions in address order.
func (m *Memory) Regions() []Region {
	out := make([]Region, len(m.regions))
	copy(out, m.regions)
	return out
}

// Region returns the region of the given kind, and whether one exists.
// If multiple regions share a kind, the first is returned.
func (m *Memory) Region(kind RegionKind) (Region, bool) {
	for _, r := range m.regions {
		if r.Kind == kind {
			return r, true
		}
	}
	return Region{}, false
}

// Kind returns the technology backing the frame.
func (m *Memory) Kind(f Frame) RegionKind {
	for _, r := range m.regions {
		if f >= r.Start && f < r.End() {
			return r.Kind
		}
	}
	return DRAM
}

// Valid reports whether every frame in [start, start+count) exists.
func (m *Memory) Valid(start Frame, count uint64) bool {
	return uint64(start) < m.total && uint64(start)+count <= m.total
}

// Stats exposes the memory's event counters: "zeroed_frames",
// "epoch_erases", "materialized_frames".
func (m *Memory) Stats() *metrics.Set { return m.stats }

// frame returns the backing array for f, materializing it if write is
// true. For reads of unmaterialized frames it returns nil (all-zero).
// The returned array is accessed without the lock: callers on parallel
// CPU contexts touch disjoint frames by construction.
func (m *Memory) frame(f Frame, write bool) *frameArray {
	m.mu.Lock()
	defer m.mu.Unlock()
	if write && m.dirty != nil {
		m.dirty[f] = struct{}{}
	}
	if d, ok := m.data[f]; ok {
		return d
	}
	if !write {
		return nil
	}
	var d *frameArray
	if n := len(m.spare); n > 0 {
		d = m.spare[n-1]
		m.spare[n-1] = nil
		m.spare = m.spare[:n-1]
	} else {
		d = new(frameArray)
	}
	m.data[f] = d
	m.cMaterialized.Inc()
	return d
}

// dropFrame removes f's backing array, recycling it (zeroed) into the
// spare pool.
func (m *Memory) dropFrame(f Frame) {
	m.mu.Lock()
	m.dropFrameLocked(f)
	m.mu.Unlock()
}

// dropFrameLocked removes f's backing array, recycling it (zeroed)
// into the spare pool. Caller holds m.mu.
func (m *Memory) dropFrameLocked(f Frame) {
	d, ok := m.data[f]
	if !ok {
		return
	}
	if m.dirty != nil {
		// Dropping a materialized frame changes its observable contents
		// to zero; an absent frame stays zero and is not dirtied, which
		// keeps sparse epoch erases O(materialized).
		m.dirty[f] = struct{}{}
	}
	delete(m.data, f)
	if len(m.spare) < maxSpareFrames {
		d.reset()
		m.spare = append(m.spare, d)
	}
}

// dropRange removes the backing arrays of [start, start+count). The
// host cost is O(min(count, materialized frames)): huge sparsely
// materialized ranges — the terabyte-scale sweeps — are erased by
// scanning the map rather than the range.
func (m *Memory) dropRange(start Frame, count uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if count > uint64(len(m.data)) {
		end := start + Frame(count)
		for f := range m.data {
			if f >= start && f < end {
				m.dropFrameLocked(f)
			}
		}
		return
	}
	for i := uint64(0); i < count; i++ {
		m.dropFrameLocked(start + Frame(i))
	}
}

// ReadAt copies len(buf) bytes starting at pa into buf. It panics if
// the range leaves the address space; translation layers validate
// addresses before the data plane is reached.
func (m *Memory) ReadAt(pa PhysAddr, buf []byte) {
	m.checkRange(pa, len(buf))
	for len(buf) > 0 {
		f := pa.Frame()
		off := pa.Offset()
		n := FrameSize - off
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		if d := m.frame(f, false); d != nil {
			copy(buf[:n], d[off:off+n])
		} else {
			for i := uint64(0); i < n; i++ {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		pa += PhysAddr(n)
	}
}

// WriteAt copies buf into physical memory starting at pa.
func (m *Memory) WriteAt(pa PhysAddr, buf []byte) {
	m.checkRange(pa, len(buf))
	for len(buf) > 0 {
		f := pa.Frame()
		off := pa.Offset()
		n := FrameSize - off
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		d := m.frame(f, true)
		copy(d[off:off+n], buf[:n])
		buf = buf[n:]
		pa += PhysAddr(n)
	}
}

// ReadByteAt returns the byte at pa.
func (m *Memory) ReadByteAt(pa PhysAddr) byte {
	var b [1]byte
	m.ReadAt(pa, b[:])
	return b[0]
}

// WriteByteAt stores v at pa.
func (m *Memory) WriteByteAt(pa PhysAddr, v byte) {
	m.WriteAt(pa, []byte{v})
}

// ReadUint64 loads a little-endian uint64 at pa.
func (m *Memory) ReadUint64(pa PhysAddr) uint64 {
	var b [8]byte
	m.ReadAt(pa, b[:])
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// WriteUint64 stores v little-endian at pa.
func (m *Memory) WriteUint64(pa PhysAddr, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	m.WriteAt(pa, b[:])
}

func (m *Memory) checkRange(pa PhysAddr, n int) {
	if n < 0 || uint64(pa)+uint64(n) > m.total<<FrameShift {
		panic(fmt.Sprintf("mem: access [%#x,+%d) outside physical address space (%d frames)", uint64(pa), n, m.total))
	}
}

// ZeroFrames eagerly zeroes count frames starting at start, charging
// the linear per-page zeroing cost to the memory's construction clock.
// This is the conventional path the paper identifies as a linear-time
// obstacle.
func (m *Memory) ZeroFrames(start Frame, count uint64) {
	m.zeroFrames(m.clock, start, count)
}

// ZeroFramesOn is ZeroFrames with the cost charged to the given CPU's
// own clock — the form used inside host-parallel phases, where the
// construction clock (usually the machine's forwarding kernel clock)
// has no single CPU to forward to.
func (m *Memory) ZeroFramesOn(cpu *sim.CPU, start Frame, count uint64) {
	m.zeroFrames(cpu.Clock(), start, count)
}

func (m *Memory) zeroFrames(clock *sim.Clock, start Frame, count uint64) {
	if !m.Valid(start, count) {
		panic(fmt.Sprintf("mem: ZeroFrames [%d,+%d) out of range", start, count))
	}
	m.dropRange(start, count)
	clock.Advance(sim.Time(count) * m.params.ZeroPage)
	m.cZeroed.Add(count)
}

// EraseRangeEpoch performs the paper's proposed constant-time erase of
// a frame range: the charged cost is a single O(1) epoch operation
// regardless of the range size. Semantically the range reads as zero
// afterwards. (The host-side map cleanup is not simulated time.)
func (m *Memory) EraseRangeEpoch(start Frame, count uint64) {
	if !m.Valid(start, count) {
		panic(fmt.Sprintf("mem: EraseRangeEpoch [%d,+%d) out of range", start, count))
	}
	m.dropRange(start, count)
	m.clock.Advance(m.params.ZeroEpoch)
	m.cEpochErases.Inc()
}

// Crash simulates power loss: contents of volatile (DRAM) regions are
// discarded; NVM contents survive. The caller is responsible for
// re-creating software state (file systems re-mount, processes die).
func (m *Memory) Crash() {
	m.mu.Lock()
	for f := range m.data {
		if m.Kind(f) == DRAM {
			m.dropFrameLocked(f)
		}
	}
	m.mu.Unlock()
	m.stats.Counter("crashes").Inc()
}

// CopyFrames copies count frames from src to dst (used by COW breaks
// and page migration). Charges one eager-zero-equivalent copy cost per
// frame, the same order as a 4 KiB memcpy.
func (m *Memory) CopyFrames(dst, src Frame, count uint64) {
	m.copyFrames(m.clock, dst, src, count)
}

// CopyFramesOn is CopyFrames with the cost charged to the given CPU's
// own clock — the form used inside host-parallel phases, where the
// construction clock (usually the machine's forwarding kernel clock)
// has no single CPU to forward to.
func (m *Memory) CopyFramesOn(cpu *sim.CPU, dst, src Frame, count uint64) {
	m.copyFrames(cpu.Clock(), dst, src, count)
}

func (m *Memory) copyFrames(clock *sim.Clock, dst, src Frame, count uint64) {
	if !m.Valid(dst, count) || !m.Valid(src, count) {
		panic("mem: CopyFrames out of range")
	}
	for i := uint64(0); i < count; i++ {
		s := m.frame(src+Frame(i), false)
		if s == nil {
			m.dropFrame(dst + Frame(i))
			continue
		}
		d := m.frame(dst+Frame(i), true)
		*d = *s
	}
	clock.Advance(sim.Time(count) * m.params.ZeroPage)
	m.cCopied.Add(count)
}

// MaterializedFrames returns how many frames currently have backing
// arrays (a host-memory footprint diagnostic).
func (m *Memory) MaterializedFrames() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.data)
}

// ContentChecksum returns a deterministic 64-bit FNV-1a digest of the
// observable contents of physical memory: every non-zero materialized
// frame, visited in ascending frame order, hashed as its frame number
// followed by its 4096 bytes. All-zero frames are skipped because an
// absent frame also reads as zero — the digest is a function of what a
// reader could observe, not of host-side materialization accidents.
// Checksumming is tooling and advances no simulated clock.
func (m *Memory) ContentChecksum() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	zero := frameArray{}
	frames := make([]Frame, 0, len(m.data))
	for f, d := range m.data {
		if *d != zero {
			frames = append(frames, f)
		}
	}
	sort.Slice(frames, func(i, j int) bool { return frames[i] < frames[j] })
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, f := range frames {
		for s := 0; s < 64; s += 8 {
			h = (h ^ uint64(f>>s)&0xff) * prime64
		}
		d := m.data[f]
		for _, b := range d {
			h = (h ^ uint64(b)) * prime64
		}
	}
	return h
}

// SpareScrubbed verifies that every backing array on the recycled pool
// is fully zeroed. A non-zero spare array would leak dead frame
// contents into the next materialization.
func (m *Memory) SpareScrubbed() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	zero := frameArray{}
	for i, d := range m.spare {
		if *d != zero {
			return fmt.Errorf("mem: spare frame array %d not scrubbed", i)
		}
	}
	return nil
}
