package mem

import "sort"

// Dirty tracking supports incremental checkpointing: with tracking on,
// the memory records every frame whose observable contents may have
// changed — writes (including copy destinations) and drops of
// materialized frames (zeroing, epoch erases, crashes). A differential
// snapshot then captures only these frames against a base image.
//
// Tracking is opt-in and off by default: the hot paths pay a single
// nil check when it is off, and the set is host-side bookkeeping only —
// maintaining it advances no simulated clock. The set is conservative
// (a write of identical bytes still dirties the frame) but never
// misses a change, which is the direction that keeps differential
// restores sound.

// SetDirtyTracking turns dirty-frame tracking on or off. Turning it on
// starts from an empty dirty set; turning it off discards the set.
func (m *Memory) SetDirtyTracking(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if on {
		if m.dirty == nil {
			m.dirty = make(map[Frame]struct{})
		}
		return
	}
	m.dirty = nil
}

// DirtyTracking reports whether dirty-frame tracking is on.
func (m *Memory) DirtyTracking() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dirty != nil
}

// ResetDirty clears the dirty set, beginning a new checkpoint epoch.
// It is a no-op while tracking is off.
func (m *Memory) ResetDirty() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirty != nil {
		m.dirty = make(map[Frame]struct{})
	}
}

// DirtyFrames returns the frames dirtied since the last ResetDirty, in
// ascending order. Empty while tracking is off.
func (m *Memory) DirtyFrames() []Frame {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Frame, 0, len(m.dirty))
	for f := range m.dirty {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirtyCount returns the size of the dirty set.
func (m *Memory) DirtyCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dirty)
}

// MaterializedFrameList returns every frame that currently has a
// backing array, in ascending order. Checkpoint tooling uses it to
// capture a full base image without scanning the whole (sparse)
// address space.
func (m *Memory) MaterializedFrameList() []Frame {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Frame, 0, len(m.data))
	for f := range m.data {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
