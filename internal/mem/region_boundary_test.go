package mem

import (
	"testing"

	"repro/internal/sim"
)

// TestRegionBoundaryFrames pins the DRAM/NVM seam: the last DRAM frame
// and the first NVM frame are physically adjacent, classify into
// different tiers, and behave differently across a crash.
func TestRegionBoundaryFrames(t *testing.T) {
	m, _, _ := newTestMemory(t) // DRAM [0,1024), NVM [1024,3072)
	lastDRAM, firstNVM := Frame(1023), Frame(1024)

	if k := m.Kind(lastDRAM); k != DRAM {
		t.Fatalf("Kind(%d) = %v, want DRAM", lastDRAM, k)
	}
	if k := m.Kind(firstNVM); k != NVM {
		t.Fatalf("Kind(%d) = %v, want NVM", firstNVM, k)
	}
	if k := m.Kind(Frame(3071)); k != NVM {
		t.Fatalf("Kind(3071) = %v, want NVM", k)
	}
	dram, _ := m.Region(DRAM)
	nvm, _ := m.Region(NVM)
	if dram.End() != nvm.Start {
		t.Fatalf("regions not adjacent: DRAM ends at %d, NVM starts at %d", dram.End(), nvm.Start)
	}
	// A range straddling the seam is valid physical memory...
	if !m.Valid(lastDRAM, 2) {
		t.Fatal("range straddling the DRAM/NVM boundary reported invalid")
	}
	// ...but one frame past the end of NVM is not.
	if m.Valid(Frame(3071), 2) || m.Valid(Frame(3072), 1) {
		t.Fatal("range past the last NVM frame reported valid")
	}

	// Persistence splits exactly at the seam: the DRAM side of the
	// boundary loses its contents on a crash, the NVM side keeps them.
	m.WriteByteAt(lastDRAM.Addr(), 0xD7)
	m.WriteByteAt(firstNVM.Addr(), 0x4E)
	m.Crash()
	if got := m.ReadByteAt(lastDRAM.Addr()); got != 0 {
		t.Fatalf("last DRAM frame survived the crash with 0x%02x", got)
	}
	if got := m.ReadByteAt(firstNVM.Addr()); got != 0x4E {
		t.Fatalf("first NVM frame lost its contents across the crash: 0x%02x", got)
	}
}

// TestZeroFrameRegionConfigs: a machine may omit either region — the
// remaining one starts at frame 0 and the missing one is simply absent
// — but not both.
func TestZeroFrameRegionConfigs(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()

	nvmOnly, err := New(clock, &params, Config{NVMFrames: 128})
	if err != nil {
		t.Fatalf("NVM-only machine rejected: %v", err)
	}
	if got := len(nvmOnly.Regions()); got != 1 {
		t.Fatalf("NVM-only machine has %d regions, want 1", got)
	}
	if k := nvmOnly.Kind(0); k != NVM {
		t.Fatalf("NVM-only Kind(0) = %v, want NVM", k)
	}
	if _, ok := nvmOnly.Region(DRAM); ok {
		t.Fatal("NVM-only machine reports a DRAM region")
	}
	if nvmOnly.TotalFrames() != 128 || !nvmOnly.Valid(0, 128) || nvmOnly.Valid(0, 129) {
		t.Fatalf("NVM-only sizing wrong: total %d", nvmOnly.TotalFrames())
	}

	dramOnly, err := New(clock, &params, Config{DRAMFrames: 64})
	if err != nil {
		t.Fatalf("DRAM-only machine rejected: %v", err)
	}
	if _, ok := dramOnly.Region(NVM); ok {
		t.Fatal("DRAM-only machine reports an NVM region")
	}
	if k := dramOnly.Kind(63); k != DRAM {
		t.Fatalf("DRAM-only Kind(63) = %v, want DRAM", k)
	}

	if _, err := New(clock, &params, Config{}); err == nil {
		t.Fatal("machine with both regions empty accepted")
	}
}
