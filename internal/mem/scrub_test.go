package mem

import (
	"testing"

	"repro/internal/sim"
)

// TestDroppedFramesAreScrubbed writes recognizable data into DRAM,
// crashes the machine (which drops and recycles every DRAM backing
// array), and asserts the spare pool holds no trace of it.
func TestDroppedFramesAreScrubbed(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	m, err := New(clock, &params, Config{DRAMFrames: 64, NVMFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	for f := Frame(0); f < 8; f++ {
		m.WriteAt(f.Addr(), []byte{0xAA, 0xBB, 0xCC})
	}
	m.Crash()
	if len(m.spare) == 0 {
		t.Fatal("crash recycled no frame arrays")
	}
	if err := m.SpareScrubbed(); err != nil {
		t.Fatalf("poison survived into the spare pool: %v", err)
	}
}

// TestSpareScrubbedDetectsPoison is the negative control.
func TestSpareScrubbedDetectsPoison(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	m, err := New(clock, &params, Config{DRAMFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	var poisoned frameArray
	poisoned[123] = 0xEE
	m.spare = append(m.spare, &poisoned)
	if err := m.SpareScrubbed(); err == nil {
		t.Fatal("poisoned spare frame array went undetected")
	}
}
