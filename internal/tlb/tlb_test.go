package tlb

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

func newTLB(t *testing.T) (*TLB, *sim.Clock, sim.Params) {
	t.Helper()
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	cpu := sim.MachineOf(clock, &params).BootCPU()
	return New(cpu, &params, DefaultConfig()), clock, params
}

func TestPageSizeHelpers(t *testing.T) {
	if Size4K.Frames() != 1 || Size2M.Frames() != 512 || Size1G.Frames() != 512*512 {
		t.Fatal("Frames wrong")
	}
	if Size2M.Bytes() != 2<<20 {
		t.Fatal("Bytes wrong")
	}
	if Size4K.String() != "4K" || Size2M.String() != "2M" || Size1G.String() != "1G" {
		t.Fatal("String wrong")
	}
	if s, err := SizeForFrames(512); err != nil || s != Size2M {
		t.Fatalf("SizeForFrames(512) = %v, %v", s, err)
	}
	if _, err := SizeForFrames(3); err == nil {
		t.Fatal("SizeForFrames(3) accepted")
	}
}

func TestTranslationTranslate(t *testing.T) {
	tr := Translation{Frame: 100, Size: Size2M}
	va := mem.VirtAddr(2<<20 + 0x3456) // in the second 2M page if base were 0
	got := tr.Translate(va)
	want := mem.Frame(100).Addr() + 0x3456
	if got != want {
		t.Fatalf("Translate = %#x, want %#x", uint64(got), uint64(want))
	}
}

func TestMissThenHit(t *testing.T) {
	tl, _, _ := newTLB(t)
	va := mem.VirtAddr(0x7000)
	if _, ok := tl.Lookup(0, va); ok {
		t.Fatal("hit on empty TLB")
	}
	tl.Insert(0, va, Translation{Frame: 7, Size: Size4K, Flags: pagetable.FlagRead})
	tr, ok := tl.Lookup(0, va)
	if !ok || tr.Frame != 7 {
		t.Fatalf("lookup after insert: ok=%v frame=%d", ok, tr.Frame)
	}
	if tl.Stats().Value("l1_hits") != 1 || tl.Stats().Value("misses") != 1 {
		t.Fatalf("stats: %s", tl.Stats())
	}
}

func TestHitIsCheaperThanMiss(t *testing.T) {
	tl, clock, params := newTLB(t)
	va := mem.VirtAddr(0x9000)
	tl.Insert(0, va, Translation{Frame: 9, Size: Size4K})
	t0 := clock.Now()
	tl.Lookup(0, va)
	hitCost := clock.Since(t0)
	t1 := clock.Now()
	tl.Lookup(0, 0xFFFF000)
	missCost := clock.Since(t1)
	if hitCost != params.TLBHit {
		t.Fatalf("hit cost %v, want %v", hitCost, params.TLBHit)
	}
	if missCost <= hitCost {
		t.Fatalf("miss (%v) not costlier than hit (%v)", missCost, hitCost)
	}
}

func TestHugeEntryCoversWholePage(t *testing.T) {
	tl, _, _ := newTLB(t)
	base := mem.VirtAddr(2 << 20)
	tl.Insert(0, base, Translation{Frame: 512, Size: Size2M})
	// Any address inside the 2M page must hit.
	tr, ok := tl.Lookup(0, base + 1234567%((2<<20)-1))
	if !ok || tr.Size != Size2M {
		t.Fatalf("huge lookup: ok=%v size=%v", ok, tr.Size)
	}
	// An address in the next 2M page must miss.
	if _, ok := tl.Lookup(0, base + 2<<20); ok {
		t.Fatal("hit outside huge page")
	}
}

func Test1GEntry(t *testing.T) {
	tl, _, _ := newTLB(t)
	tl.Insert(0, 0, Translation{Frame: 0, Size: Size1G})
	if _, ok := tl.Lookup(0, 512 << 20); !ok {
		t.Fatal("1G entry did not cover interior address")
	}
	if _, ok := tl.Lookup(0, 1 << 30); ok {
		t.Fatal("1G entry covered next gigabyte")
	}
}

func TestInvalidateVA(t *testing.T) {
	tl, _, _ := newTLB(t)
	va := mem.VirtAddr(0x4000)
	tl.Insert(0, va, Translation{Frame: 4, Size: Size4K})
	tl.InvalidateVA(0, va)
	if _, ok := tl.Lookup(0, va); ok {
		t.Fatal("entry survived invalidation")
	}
}

func TestFlushAll(t *testing.T) {
	tl, clock, params := newTLB(t)
	for i := 0; i < 20; i++ {
		tl.Insert(0, mem.VirtAddr(i)<<12, Translation{Frame: mem.Frame(i), Size: Size4K})
	}
	if tl.ValidEntries() == 0 {
		t.Fatal("no entries before flush")
	}
	t0 := clock.Now()
	tl.FlushAll()
	if got := clock.Since(t0); got != params.TLBFullFlush {
		t.Fatalf("flush charged %v, want flat %v", got, params.TLBFullFlush)
	}
	if tl.ValidEntries() != 0 {
		t.Fatalf("%d entries survived flush", tl.ValidEntries())
	}
}

func TestASIDIsolation(t *testing.T) {
	tl, _, _ := newTLB(t)
	va := mem.VirtAddr(0x8000)
	tl.Insert(1, va, Translation{Frame: 8, Size: Size4K})
	if _, ok := tl.Lookup(2, va); ok {
		t.Fatal("ASID 2 hit ASID 1's entry")
	}
	if tr, ok := tl.Lookup(1, va); !ok || tr.Frame != 8 {
		t.Fatalf("ASID 1 lookup: ok=%v tr=%+v", ok, tr)
	}
	// Invalidation is per-ASID too.
	tl.Insert(2, va, Translation{Frame: 9, Size: Size4K})
	tl.InvalidateVA(1, va)
	if _, ok := tl.Lookup(1, va); ok {
		t.Fatal("ASID 1 entry survived invalidation")
	}
	if _, ok := tl.Lookup(2, va); !ok {
		t.Fatal("ASID 2 entry lost to ASID 1's invalidation")
	}
}

func TestL2CatchesL1Evictions(t *testing.T) {
	tl, _, _ := newTLB(t)
	// Fill far beyond L1 capacity (64 4K entries) but within L2 (1536).
	// Use the same L1 set by stepping by L1Sets4K pages.
	n := 300
	for i := 0; i < n; i++ {
		va := mem.VirtAddr(i) * mem.FrameSize
		tl.Insert(0, va, Translation{Frame: mem.Frame(i), Size: Size4K})
	}
	// Early entries should have been evicted from L1 but still hit L2.
	tl.Stats().Reset()
	hits := 0
	for i := 0; i < n; i++ {
		va := mem.VirtAddr(i) * mem.FrameSize
		if tr, ok := tl.Lookup(0, va); ok && tr.Frame == mem.Frame(i) {
			hits++
		}
	}
	if hits != n {
		t.Fatalf("only %d/%d survived in the hierarchy", hits, n)
	}
	if tl.Stats().Value("l2_hits") == 0 {
		t.Fatal("expected some L2 hits after L1 overflow")
	}
}

func TestCapacityEviction(t *testing.T) {
	tl, _, _ := newTLB(t)
	// Insert more 4K entries than the whole hierarchy holds.
	n := 4000
	for i := 0; i < n; i++ {
		va := mem.VirtAddr(i) * mem.FrameSize
		tl.Insert(0, va, Translation{Frame: mem.Frame(i), Size: Size4K})
	}
	if tl.Stats().Value("evictions") == 0 {
		t.Fatal("no evictions after overflowing capacity")
	}
	// Sparse touch over a huge region: every access must miss —
	// the behaviour that motivates range translations.
	tl.Stats().Reset()
	misses := 0
	for i := 0; i < 100; i++ {
		va := mem.VirtAddr(n+i*7919) * mem.FrameSize
		if _, ok := tl.Lookup(0, va); !ok {
			misses++
		}
	}
	if misses != 100 {
		t.Fatalf("%d/100 cold lookups missed, want all", misses)
	}
}

func TestMixedSizesDoNotAlias(t *testing.T) {
	tl, _, _ := newTLB(t)
	tl.Insert(0, 0, Translation{Frame: 1, Size: Size4K})
	tl.Insert(0, 2<<20, Translation{Frame: 512, Size: Size2M})
	tr, ok := tl.Lookup(0, 0)
	if !ok || tr.Size != Size4K || tr.Frame != 1 {
		t.Fatalf("4K entry wrong: %+v ok=%v", tr, ok)
	}
	tr, ok = tl.Lookup(0, 2<<20 + 0x5000)
	if !ok || tr.Size != Size2M {
		t.Fatalf("2M entry wrong: %+v ok=%v", tr, ok)
	}
}
