// Package tlb models a processor translation lookaside buffer: a split
// first level (separate 4 KiB and 2 MiB/1 GiB arrays, as on modern x86
// cores) backed by a unified second level. Entries are set-associative
// with LRU replacement inside each set.
//
// The TLB is the reason §3.2/§4.3 of the paper argue software O(1) is
// not enough: every miss costs a page walk, so even a pre-populated
// page-table mapping pays a per-page charge on first access. The range
// TLB in package rangetable removes that term for contiguous extents.
package tlb

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// PageSize identifies the mapping granularity of a TLB entry.
type PageSize int

// Supported page sizes.
const (
	Size4K PageSize = iota
	Size2M
	Size1G
)

// Frames returns the page size in 4 KiB frames.
func (s PageSize) Frames() uint64 {
	switch s {
	case Size4K:
		return 1
	case Size2M:
		return mem.HugeFrames2M
	case Size1G:
		return mem.HugeFrames1G
	default:
		panic(fmt.Sprintf("tlb: unknown page size %d", int(s)))
	}
}

// Bytes returns the page size in bytes.
func (s PageSize) Bytes() uint64 { return s.Frames() * mem.FrameSize }

// String returns the conventional size name.
func (s PageSize) String() string {
	switch s {
	case Size4K:
		return "4K"
	case Size2M:
		return "2M"
	case Size1G:
		return "1G"
	default:
		return fmt.Sprintf("PageSize(%d)", int(s))
	}
}

// SizeForFrames maps a frame span to a PageSize.
func SizeForFrames(frames uint64) (PageSize, error) {
	switch frames {
	case 1:
		return Size4K, nil
	case mem.HugeFrames2M:
		return Size2M, nil
	case mem.HugeFrames1G:
		return Size1G, nil
	default:
		return Size4K, fmt.Errorf("tlb: %d frames is not a page size", frames)
	}
}

// Translation is a cached virtual-to-physical mapping.
type Translation struct {
	Frame mem.Frame // first frame of the page
	Size  PageSize
	Flags pagetable.Flags
}

// Translate applies the cached mapping to va.
func (tr Translation) Translate(va mem.VirtAddr) mem.PhysAddr {
	off := uint64(va) % tr.Size.Bytes()
	return tr.Frame.Addr() + mem.PhysAddr(off)
}

type entryT struct {
	valid bool
	vpn   uint64 // va >> size-dependent shift
	tr    Translation
	lru   uint64
}

type array struct {
	sets  int
	ways  int
	data  []entryT // sets*ways
	stamp uint64
}

func newArray(sets, ways int) *array {
	return &array{sets: sets, ways: ways, data: make([]entryT, sets*ways)}
}

func vpnFor(va mem.VirtAddr, size PageSize) uint64 {
	switch size {
	case Size4K:
		return uint64(va) >> 12
	case Size2M:
		return uint64(va) >> 21
	default:
		return uint64(va) >> 30
	}
}

func (a *array) lookup(vpn uint64) (*entryT, bool) {
	set := int(vpn % uint64(a.sets))
	base := set * a.ways
	for i := 0; i < a.ways; i++ {
		e := &a.data[base+i]
		if e.valid && e.vpn == vpn {
			a.stamp++
			e.lru = a.stamp
			return e, true
		}
	}
	return nil, false
}

// insert returns true if an existing valid entry was evicted.
func (a *array) insert(vpn uint64, tr Translation) (evicted entryT, wasEvict bool) {
	set := int(vpn % uint64(a.sets))
	base := set * a.ways
	victim := base
	for i := 0; i < a.ways; i++ {
		e := &a.data[base+i]
		if !e.valid {
			victim = base + i
			break
		}
		if e.lru < a.data[victim].lru {
			victim = base + i
		}
	}
	v := &a.data[victim]
	if v.valid {
		evicted, wasEvict = *v, true
	}
	a.stamp++
	*v = entryT{valid: true, vpn: vpn, tr: tr, lru: a.stamp}
	return evicted, wasEvict
}

func (a *array) invalidate(vpn uint64) bool {
	set := int(vpn % uint64(a.sets))
	base := set * a.ways
	for i := 0; i < a.ways; i++ {
		e := &a.data[base+i]
		if e.valid && e.vpn == vpn {
			e.valid = false
			return true
		}
	}
	return false
}

func (a *array) flush() int {
	n := 0
	for i := range a.data {
		if a.data[i].valid {
			a.data[i].valid = false
			n++
		}
	}
	return n
}

// Config sets the TLB geometry.
type Config struct {
	L1Sets4K, L1Ways4K     int
	L1SetsHuge, L1WaysHuge int
	L2Sets, L2Ways         int
}

// DefaultConfig mirrors a contemporary x86 core: 64-entry 4-way L1 for
// 4 KiB pages, 32-entry 4-way L1 for huge pages, 1536-entry 12-way
// unified L2.
func DefaultConfig() Config {
	return Config{
		L1Sets4K: 16, L1Ways4K: 4,
		L1SetsHuge: 8, L1WaysHuge: 4,
		L2Sets: 128, L2Ways: 12,
	}
}

// TLB is the translation cache of one simulated core.
type TLB struct {
	clock  *sim.Clock
	params *sim.Params

	l14k   *array
	l1huge *array
	l2     *array // unified; vpn keyed at the entry's native size, tagged by size in flags bits — we key by (vpn, size) folded

	stats *metrics.Set
}

// New creates a TLB with the given geometry.
func New(clock *sim.Clock, params *sim.Params, cfg Config) *TLB {
	return &TLB{
		clock:  clock,
		params: params,
		l14k:   newArray(cfg.L1Sets4K, cfg.L1Ways4K),
		l1huge: newArray(cfg.L1SetsHuge, cfg.L1WaysHuge),
		l2:     newArray(cfg.L2Sets, cfg.L2Ways),
		stats:  metrics.NewSet(),
	}
}

// Stats exposes counters: "l1_hits", "l2_hits", "misses",
// "evictions", "flushes", "shootdowns".
func (t *TLB) Stats() *metrics.Set { return t.stats }

// l2key folds the page size into the key so differently sized entries
// cannot alias in the unified array.
func l2key(vpn uint64, size PageSize) uint64 {
	return vpn<<2 | uint64(size)
}

// Lookup probes the TLB for va. On a hit it charges TLBHit and returns
// the translation; on a miss it charges the miss-probe cost and the
// caller must walk the page table and Insert the result.
func (t *TLB) Lookup(va mem.VirtAddr) (Translation, bool) {
	// L1 probes happen in parallel in hardware; charge a single hit.
	for _, probe := range []struct {
		arr  *array
		size PageSize
	}{
		{t.l14k, Size4K},
		{t.l1huge, Size2M},
		{t.l1huge, Size1G},
	} {
		if e, ok := probe.arr.lookup(vpnFor(va, probe.size)); ok && e.tr.Size == probe.size {
			t.clock.Advance(t.params.TLBHit)
			t.stats.Counter("l1_hits").Inc()
			return e.tr, true
		}
	}
	// L2 probe.
	for _, size := range []PageSize{Size4K, Size2M, Size1G} {
		if e, ok := t.l2.lookup(l2key(vpnFor(va, size), size)); ok {
			t.clock.Advance(t.params.TLBHit + t.params.TLBMiss)
			t.stats.Counter("l2_hits").Inc()
			// Promote to L1.
			t.insertL1(va, e.tr)
			return e.tr, true
		}
	}
	t.clock.Advance(t.params.TLBMiss)
	t.stats.Counter("misses").Inc()
	return Translation{}, false
}

func (t *TLB) insertL1(va mem.VirtAddr, tr Translation) {
	arr := t.l14k
	if tr.Size != Size4K {
		arr = t.l1huge
	}
	if _, evict := arr.insert(vpnFor(va, tr.Size), tr); evict {
		t.stats.Counter("evictions").Inc()
	}
}

// Insert caches a translation for va (typically after a page walk).
// Entries are installed in both L1 and L2, as on inclusive designs.
func (t *TLB) Insert(va mem.VirtAddr, tr Translation) {
	t.insertL1(va, tr)
	if _, evict := t.l2.insert(l2key(vpnFor(va, tr.Size), tr.Size), tr); evict {
		t.stats.Counter("evictions").Inc()
	}
}

// InvalidateVA drops any entry covering va (all sizes, both levels),
// charging the single-entry invalidation cost.
func (t *TLB) InvalidateVA(va mem.VirtAddr) {
	t.l14k.invalidate(vpnFor(va, Size4K))
	t.l1huge.invalidate(vpnFor(va, Size2M))
	t.l1huge.invalidate(vpnFor(va, Size1G))
	for _, size := range []PageSize{Size4K, Size2M, Size1G} {
		t.l2.invalidate(l2key(vpnFor(va, size), size))
	}
	t.clock.Advance(t.params.TLBFlushEntry)
}

// FlushAll invalidates the entire TLB (a CR3 write), charging the
// per-entry flush cost for every valid entry.
func (t *TLB) FlushAll() {
	n := t.l14k.flush() + t.l1huge.flush() + t.l2.flush()
	t.clock.Advance(sim.Time(n) * t.params.TLBFlushEntry)
	t.stats.Counter("flushes").Inc()
}

// Shootdown models notifying other cores to invalidate va: one IPI
// broadcast plus the local invalidation.
func (t *TLB) Shootdown(va mem.VirtAddr) {
	t.clock.Advance(t.params.TLBShootdown)
	t.InvalidateVA(va)
	t.stats.Counter("shootdowns").Inc()
}

// ValidEntries returns the number of valid entries across both levels
// (diagnostic).
func (t *TLB) ValidEntries() int {
	n := 0
	for _, a := range []*array{t.l14k, t.l1huge, t.l2} {
		for i := range a.data {
			if a.data[i].valid {
				n++
			}
		}
	}
	return n
}
