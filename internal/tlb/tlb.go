// Package tlb models a processor translation lookaside buffer: a split
// first level (separate 4 KiB and 2 MiB/1 GiB arrays, as on modern x86
// cores) backed by a unified second level. Entries are set-associative
// with LRU replacement inside each set.
//
// The TLB is the reason §3.2/§4.3 of the paper argue software O(1) is
// not enough: every miss costs a page walk, so even a pre-populated
// page-table mapping pays a per-page charge on first access. The range
// TLB in package rangetable removes that term for contiguous extents.
package tlb

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// PageSize identifies the mapping granularity of a TLB entry.
type PageSize int

// Supported page sizes.
const (
	Size4K PageSize = iota
	Size2M
	Size1G
)

// Frames returns the page size in 4 KiB frames.
func (s PageSize) Frames() uint64 {
	switch s {
	case Size4K:
		return 1
	case Size2M:
		return mem.HugeFrames2M
	case Size1G:
		return mem.HugeFrames1G
	default:
		panic(fmt.Sprintf("tlb: unknown page size %d", int(s)))
	}
}

// Bytes returns the page size in bytes.
func (s PageSize) Bytes() uint64 { return s.Frames() * mem.FrameSize }

// String returns the conventional size name.
func (s PageSize) String() string {
	switch s {
	case Size4K:
		return "4K"
	case Size2M:
		return "2M"
	case Size1G:
		return "1G"
	default:
		return fmt.Sprintf("PageSize(%d)", int(s))
	}
}

// SizeForFrames maps a frame span to a PageSize.
func SizeForFrames(frames uint64) (PageSize, error) {
	switch frames {
	case 1:
		return Size4K, nil
	case mem.HugeFrames2M:
		return Size2M, nil
	case mem.HugeFrames1G:
		return Size1G, nil
	default:
		return Size4K, fmt.Errorf("tlb: %d frames is not a page size", frames)
	}
}

// Translation is a cached virtual-to-physical mapping.
type Translation struct {
	Frame mem.Frame // first frame of the page
	Size  PageSize
	Flags pagetable.Flags
}

// Translate applies the cached mapping to va.
func (tr Translation) Translate(va mem.VirtAddr) mem.PhysAddr {
	off := uint64(va) % tr.Size.Bytes()
	return tr.Frame.Addr() + mem.PhysAddr(off)
}

type entryT struct {
	valid bool
	asid  int    // address-space tag (PCID analogue)
	vpn   uint64 // va >> size-dependent shift
	tr    Translation
	lru   uint64
}

type array struct {
	sets  int
	ways  int
	data  []entryT // sets*ways
	stamp uint64
}

func newArray(sets, ways int) *array {
	return &array{sets: sets, ways: ways, data: make([]entryT, sets*ways)}
}

func vpnFor(va mem.VirtAddr, size PageSize) uint64 {
	switch size {
	case Size4K:
		return uint64(va) >> 12
	case Size2M:
		return uint64(va) >> 21
	default:
		return uint64(va) >> 30
	}
}

func (a *array) lookup(asid int, vpn uint64) (*entryT, bool) {
	set := int(vpn % uint64(a.sets))
	base := set * a.ways
	for i := 0; i < a.ways; i++ {
		e := &a.data[base+i]
		if e.valid && e.asid == asid && e.vpn == vpn {
			a.stamp++
			e.lru = a.stamp
			return e, true
		}
	}
	return nil, false
}

// peek is lookup without LRU side effects (diagnostic).
func (a *array) peek(asid int, vpn uint64) (*entryT, bool) {
	set := int(vpn % uint64(a.sets))
	base := set * a.ways
	for i := 0; i < a.ways; i++ {
		e := &a.data[base+i]
		if e.valid && e.asid == asid && e.vpn == vpn {
			return e, true
		}
	}
	return nil, false
}

// insert returns true if an existing valid entry was evicted.
func (a *array) insert(asid int, vpn uint64, tr Translation) (evicted entryT, wasEvict bool) {
	set := int(vpn % uint64(a.sets))
	base := set * a.ways
	victim := base
	for i := 0; i < a.ways; i++ {
		e := &a.data[base+i]
		if e.valid && e.asid == asid && e.vpn == vpn {
			// Re-insert over the existing entry.
			victim = base + i
			break
		}
		if !e.valid {
			victim = base + i
			break
		}
		if e.lru < a.data[victim].lru {
			victim = base + i
		}
	}
	v := &a.data[victim]
	if v.valid && !(v.asid == asid && v.vpn == vpn) {
		evicted, wasEvict = *v, true
	}
	a.stamp++
	*v = entryT{valid: true, asid: asid, vpn: vpn, tr: tr, lru: a.stamp}
	return evicted, wasEvict
}

func (a *array) invalidate(asid int, vpn uint64) bool {
	set := int(vpn % uint64(a.sets))
	base := set * a.ways
	for i := 0; i < a.ways; i++ {
		e := &a.data[base+i]
		if e.valid && e.asid == asid && e.vpn == vpn {
			e.valid = false
			return true
		}
	}
	return false
}

func (a *array) flush() int {
	n := 0
	for i := range a.data {
		if a.data[i].valid {
			a.data[i].valid = false
			n++
		}
	}
	return n
}

// Config sets the TLB geometry.
type Config struct {
	L1Sets4K, L1Ways4K     int
	L1SetsHuge, L1WaysHuge int
	L2Sets, L2Ways         int
}

// DefaultConfig mirrors a contemporary x86 core: 64-entry 4-way L1 for
// 4 KiB pages, 32-entry 4-way L1 for huge pages, 1536-entry 12-way
// unified L2.
func DefaultConfig() Config {
	return Config{
		L1Sets4K: 16, L1Ways4K: 4,
		L1SetsHuge: 8, L1WaysHuge: 4,
		L2Sets: 128, L2Ways: 12,
	}
}

// TLB is the translation cache of one simulated CPU. Entries are
// tagged with an address-space ID (a PCID analogue), so processes
// scheduled on the same CPU share the arrays without aliasing and
// without full flushes on switch.
type TLB struct {
	cpu    *sim.CPU
	params *sim.Params

	l14k   *array
	l1huge *array
	l2     *array // unified; vpn keyed at the entry's native size, tagged by size in flags bits — we key by (vpn, size) folded

	stats *metrics.Set
	// Cached counters: Lookup runs once per simulated memory access, so
	// the per-call map lookup in Set.Counter is worth avoiding.
	cL1Hits, cL2Hits, cMisses, cEvictions, cFlushes *metrics.Counter
}

// New creates the TLB of one CPU with the given geometry. Lookup and
// invalidation costs are charged to that CPU's clock regardless of
// which CPU initiated the operation (shootdown handlers run on the
// target).
func New(cpu *sim.CPU, params *sim.Params, cfg Config) *TLB {
	t := &TLB{
		cpu:    cpu,
		params: params,
		l14k:   newArray(cfg.L1Sets4K, cfg.L1Ways4K),
		l1huge: newArray(cfg.L1SetsHuge, cfg.L1WaysHuge),
		l2:     newArray(cfg.L2Sets, cfg.L2Ways),
		stats:  metrics.NewSet(),
	}
	t.cL1Hits = t.stats.Counter("l1_hits")
	t.cL2Hits = t.stats.Counter("l2_hits")
	t.cMisses = t.stats.Counter("misses")
	t.cEvictions = t.stats.Counter("evictions")
	t.cFlushes = t.stats.Counter("flushes")
	return t
}

// Stats exposes counters: "l1_hits", "l2_hits", "misses",
// "evictions", "flushes".
func (t *TLB) Stats() *metrics.Set { return t.stats }

// CPU returns the CPU this TLB belongs to.
func (t *TLB) CPU() *sim.CPU { return t.cpu }

// l2key folds the page size into the key so differently sized entries
// cannot alias in the unified array.
func l2key(vpn uint64, size PageSize) uint64 {
	return vpn<<2 | uint64(size)
}

// Lookup probes the TLB for va. On a hit it charges TLBHit and returns
// the translation; on a miss it charges the miss-probe cost and the
// caller must walk the page table and Insert the result.
func (t *TLB) Lookup(asid int, va mem.VirtAddr) (Translation, bool) {
	// L1 probes happen in parallel in hardware; charge a single hit.
	// The probes are written out (not ranged over a probe table) so the
	// per-access path allocates nothing and stays branch-predictable.
	if e, ok := t.l14k.lookup(asid, vpnFor(va, Size4K)); ok && e.tr.Size == Size4K {
		t.cpu.Advance(t.params.TLBHit)
		t.cL1Hits.Inc()
		return e.tr, true
	}
	if e, ok := t.l1huge.lookup(asid, vpnFor(va, Size2M)); ok && e.tr.Size == Size2M {
		t.cpu.Advance(t.params.TLBHit)
		t.cL1Hits.Inc()
		return e.tr, true
	}
	if e, ok := t.l1huge.lookup(asid, vpnFor(va, Size1G)); ok && e.tr.Size == Size1G {
		t.cpu.Advance(t.params.TLBHit)
		t.cL1Hits.Inc()
		return e.tr, true
	}
	// L2 probe, smallest page size first, as in the L1 pass.
	for size := Size4K; size <= Size1G; size++ {
		if e, ok := t.l2.lookup(asid, l2key(vpnFor(va, size), size)); ok {
			t.cpu.Advance(t.params.TLBHit + t.params.TLBMiss)
			t.cL2Hits.Inc()
			// Promote to L1.
			t.insertL1(asid, va, e.tr)
			return e.tr, true
		}
	}
	t.cpu.Advance(t.params.TLBMiss)
	t.cMisses.Inc()
	return Translation{}, false
}

// Peek reports whether the TLB holds a translation for va without
// charging cost or touching LRU state. Tests use it to assert
// post-shootdown staleness invariants.
func (t *TLB) Peek(asid int, va mem.VirtAddr) (Translation, bool) {
	if e, ok := t.l14k.peek(asid, vpnFor(va, Size4K)); ok && e.tr.Size == Size4K {
		return e.tr, true
	}
	if e, ok := t.l1huge.peek(asid, vpnFor(va, Size2M)); ok && e.tr.Size == Size2M {
		return e.tr, true
	}
	if e, ok := t.l1huge.peek(asid, vpnFor(va, Size1G)); ok && e.tr.Size == Size1G {
		return e.tr, true
	}
	for size := Size4K; size <= Size1G; size++ {
		if e, ok := t.l2.peek(asid, l2key(vpnFor(va, size), size)); ok {
			return e.tr, true
		}
	}
	return Translation{}, false
}

func (t *TLB) insertL1(asid int, va mem.VirtAddr, tr Translation) {
	arr := t.l14k
	if tr.Size != Size4K {
		arr = t.l1huge
	}
	if _, evict := arr.insert(asid, vpnFor(va, tr.Size), tr); evict {
		t.cEvictions.Inc()
	}
}

// Insert caches a translation for va (typically after a page walk).
// Entries are installed in both L1 and L2, as on inclusive designs.
func (t *TLB) Insert(asid int, va mem.VirtAddr, tr Translation) {
	t.insertL1(asid, va, tr)
	if _, evict := t.l2.insert(asid, l2key(vpnFor(va, tr.Size), tr.Size), tr); evict {
		t.cEvictions.Inc()
	}
}

// InvalidateVA drops any entry covering va in the given address space
// (all sizes, both levels), charging the single-entry invalidation
// cost to this TLB's CPU.
func (t *TLB) InvalidateVA(asid int, va mem.VirtAddr) {
	t.l14k.invalidate(asid, vpnFor(va, Size4K))
	t.l1huge.invalidate(asid, vpnFor(va, Size2M))
	t.l1huge.invalidate(asid, vpnFor(va, Size1G))
	for size := Size4K; size <= Size1G; size++ {
		t.l2.invalidate(asid, l2key(vpnFor(va, size), size))
	}
	t.cpu.Advance(t.params.TLBFlushEntry)
}

// SinglePageFlushCeiling is the largest range (in pages) flushed with
// per-page invalidations; larger ranges use a full flush instead,
// mirroring Linux's tlb_single_page_flush_ceiling heuristic.
const SinglePageFlushCeiling = 33

// InvalidateRange drops every entry covering [va, va+pages*4K) in the
// given address space. Small ranges pay one per-entry invalidation per
// page; ranges beyond SinglePageFlushCeiling fall back to a full flush
// — constant time, with the real cost resurfacing as refill misses.
func (t *TLB) InvalidateRange(asid int, va mem.VirtAddr, pages uint64) {
	if pages > SinglePageFlushCeiling {
		t.FlushAll()
		return
	}
	for p := uint64(0); p < pages; p++ {
		t.InvalidateVA(asid, va+mem.VirtAddr(p*mem.FrameSize))
	}
}

// FlushAll invalidates the entire TLB — every address space — at the
// flat full-flush cost (a non-PCID CR3 write drops everything in one
// operation; the real cost resurfaces later as refill misses).
func (t *TLB) FlushAll() {
	t.l14k.flush()
	t.l1huge.flush()
	t.l2.flush()
	t.cpu.Advance(t.params.TLBFullFlush)
	t.cFlushes.Inc()
}

// VisitEntries calls fn for every valid entry across both levels with
// the entry's address space, the virtual base address of the page it
// maps, and the cached translation. It charges no simulated cost and
// has no LRU side effects: invariant checkers use it to audit the
// whole cache. The same (asid, va) pair may be reported more than once
// (the design is inclusive, so an entry usually lives in L1 and L2).
func (t *TLB) VisitEntries(fn func(asid int, va mem.VirtAddr, tr Translation)) {
	visit := func(a *array, decode func(vpn uint64, tr Translation) mem.VirtAddr) {
		for i := range a.data {
			e := &a.data[i]
			if e.valid {
				fn(e.asid, decode(e.vpn, e.tr), e.tr)
			}
		}
	}
	visit(t.l14k, func(vpn uint64, _ Translation) mem.VirtAddr {
		return mem.VirtAddr(vpn << 12)
	})
	visit(t.l1huge, func(vpn uint64, tr Translation) mem.VirtAddr {
		if tr.Size == Size1G {
			return mem.VirtAddr(vpn << 30)
		}
		return mem.VirtAddr(vpn << 21)
	})
	visit(t.l2, func(key uint64, _ Translation) mem.VirtAddr {
		vpn := key >> 2
		switch PageSize(key & 3) {
		case Size4K:
			return mem.VirtAddr(vpn << 12)
		case Size2M:
			return mem.VirtAddr(vpn << 21)
		default:
			return mem.VirtAddr(vpn << 30)
		}
	})
}

// ValidEntries returns the number of valid entries across both levels
// (diagnostic).
func (t *TLB) ValidEntries() int {
	n := 0
	for _, a := range []*array{t.l14k, t.l1huge, t.l2} {
		for i := range a.data {
			if a.data[i].valid {
				n++
			}
		}
	}
	return n
}
