// Package buddy implements a binary buddy allocator over physical
// frames, in the style of the Linux page allocator. It is the
// simulator's primary physical-memory allocator: the baseline VM
// allocates single frames from it on every anonymous fault, the file
// systems allocate block runs from it, and file-only memory allocates
// whole extents from it.
//
// Every free-list operation (pop, push, split, coalesce) charges one
// BuddyOp of virtual time, so allocation cost scales with the number of
// list manipulations exactly as in a real kernel.
package buddy

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// MaxOrder is the largest supported block order: order 18 is
// 2^18 frames = 1 GiB, matching the largest x86-64 page size.
const MaxOrder = 18

// Allocator manages the frames [base, base+size). The managed size
// need not be a power of two; the range is carved into maximal
// naturally aligned power-of-two blocks at construction.
type Allocator struct {
	clock  *sim.Clock
	params *sim.Params

	base mem.Frame
	size uint64

	// heads[o] is the first free block of order o, or noFrame.
	// Free blocks form doubly linked lists threaded through nodes.
	heads [MaxOrder + 1]mem.Frame
	nodes map[mem.Frame]listNode // membership: free blocks only
	order map[mem.Frame]int      // order of free blocks (for buddy checks)

	allocated map[mem.Frame]int // order of allocated blocks
	freeCount uint64

	stats *metrics.Set
	// Cached counters for the per-block hot paths.
	cAllocs, cFrees, cSplits, cCoalesces *metrics.Counter
}

type listNode struct {
	prev, next mem.Frame
}

// noFrame marks list ends; it is an impossible frame number.
const noFrame = mem.Frame(^uint64(0))

// New creates an allocator over [base, base+size). All frames start
// free.
func New(clock *sim.Clock, params *sim.Params, base mem.Frame, size uint64) (*Allocator, error) {
	if size == 0 {
		return nil, fmt.Errorf("buddy: empty range")
	}
	a := &Allocator{
		clock:     clock,
		params:    params,
		base:      base,
		size:      size,
		nodes:     make(map[mem.Frame]listNode),
		order:     make(map[mem.Frame]int),
		allocated: make(map[mem.Frame]int),
		stats:     metrics.NewSet(),
	}
	a.cAllocs = a.stats.Counter("allocs")
	a.cFrees = a.stats.Counter("frees")
	a.cSplits = a.stats.Counter("splits")
	a.cCoalesces = a.stats.Counter("coalesces")
	for i := range a.heads {
		a.heads[i] = noFrame
	}
	// Seed the free lists with maximal aligned blocks covering the
	// range, without charging virtual time (boot-time initialization).
	cur := base
	remaining := size
	for remaining > 0 {
		o := maxOrderFor(cur, remaining)
		a.pushFree(cur, o)
		cur += mem.Frame(uint64(1) << o)
		remaining -= uint64(1) << o
	}
	a.freeCount = size
	return a, nil
}

// maxOrderFor returns the largest order such that a block at frame f is
// naturally aligned and fits in remaining frames.
func maxOrderFor(f mem.Frame, remaining uint64) int {
	o := MaxOrder
	for o > 0 {
		blk := uint64(1) << o
		if uint64(f)%blk == 0 && blk <= remaining {
			break
		}
		o--
	}
	return o
}

// Base returns the first managed frame.
func (a *Allocator) Base() mem.Frame { return a.base }

// Size returns the number of managed frames.
func (a *Allocator) Size() uint64 { return a.size }

// FreeFrames returns the number of currently free frames.
func (a *Allocator) FreeFrames() uint64 { return a.freeCount }

// Stats exposes the allocator's counters: "allocs", "frees", "splits",
// "coalesces", "alloc_runs".
func (a *Allocator) Stats() *metrics.Set { return a.stats }

// OrderFor returns the smallest order whose block holds n frames.
// It returns an error if n exceeds the maximum block size.
func OrderFor(n uint64) (int, error) {
	if n == 0 {
		return 0, fmt.Errorf("buddy: zero-size allocation")
	}
	for o := 0; o <= MaxOrder; o++ {
		if uint64(1)<<o >= n {
			return o, nil
		}
	}
	return 0, fmt.Errorf("buddy: %d frames exceeds max order %d block", n, MaxOrder)
}

// list helpers; each push/pop/remove charges one BuddyOp.

func (a *Allocator) pushFree(f mem.Frame, o int) {
	n := listNode{prev: noFrame, next: a.heads[o]}
	if a.heads[o] != noFrame {
		h := a.nodes[a.heads[o]]
		h.prev = f
		a.nodes[a.heads[o]] = h
	}
	a.heads[o] = f
	a.nodes[f] = n
	a.order[f] = o
}

func (a *Allocator) removeFree(f mem.Frame) {
	n := a.nodes[f]
	o := a.order[f]
	if n.prev != noFrame {
		p := a.nodes[n.prev]
		p.next = n.next
		a.nodes[n.prev] = p
	} else {
		a.heads[o] = n.next
	}
	if n.next != noFrame {
		x := a.nodes[n.next]
		x.prev = n.prev
		a.nodes[n.next] = x
	}
	delete(a.nodes, f)
	delete(a.order, f)
}

func (a *Allocator) charge(ops int) {
	a.clock.Advance(sim.Time(ops) * a.params.BuddyOp)
}

// Alloc allocates one naturally aligned block of the given order and
// returns its first frame. It returns an error if no memory of that
// size (or larger, to split) is free.
func (a *Allocator) Alloc(order int) (mem.Frame, error) {
	if order < 0 || order > MaxOrder {
		return 0, fmt.Errorf("buddy: invalid order %d", order)
	}
	o := order
	for o <= MaxOrder && a.heads[o] == noFrame {
		o++
	}
	if o > MaxOrder {
		return 0, fmt.Errorf("buddy: out of memory for order-%d block (%d frames free)", order, a.freeCount)
	}
	f := a.heads[o]
	a.removeFree(f)
	a.charge(1)
	// Split down to the requested order, freeing the upper buddy at
	// each step.
	for o > order {
		o--
		buddy := f + mem.Frame(uint64(1)<<o)
		a.pushFree(buddy, o)
		a.charge(1)
		a.cSplits.Inc()
	}
	a.allocated[f] = order
	a.freeCount -= uint64(1) << order
	a.cAllocs.Inc()
	return f, nil
}

// AllocFrame allocates a single frame (order 0).
func (a *Allocator) AllocFrame() (mem.Frame, error) {
	return a.Alloc(0)
}

// Free returns a previously allocated block to the allocator,
// coalescing with free buddies as far as possible.
func (a *Allocator) Free(f mem.Frame) error {
	order, ok := a.allocated[f]
	if !ok {
		return fmt.Errorf("buddy: free of unallocated frame %d", f)
	}
	delete(a.allocated, f)
	a.freeCount += uint64(1) << order
	a.cFrees.Inc()

	for order < MaxOrder {
		buddy := a.buddyOf(f, order)
		bo, free := a.order[buddy]
		if !free || bo != order || !a.inRange(buddy, order) {
			break
		}
		a.removeFree(buddy)
		a.charge(1)
		a.cCoalesces.Inc()
		if buddy < f {
			f = buddy
		}
		order++
	}
	a.pushFree(f, order)
	a.charge(1)
	return nil
}

func (a *Allocator) buddyOf(f mem.Frame, order int) mem.Frame {
	return f ^ mem.Frame(uint64(1)<<order)
}

func (a *Allocator) inRange(f mem.Frame, order int) bool {
	return f >= a.base && uint64(f)+uint64(1)<<order <= uint64(a.base)+a.size
}

// Run is a contiguous frame range returned by AllocRun.
type Run struct {
	Start mem.Frame
	Count uint64
}

// End returns the first frame past the run.
func (r Run) End() mem.Frame { return r.Start + mem.Frame(r.Count) }

// AllocRun allocates exactly count contiguous frames. Internally it
// allocates the covering power-of-two block and returns the tail back
// to the free lists, so the caller receives an exact-size run — the
// extent-allocation primitive the paper relies on ("file systems can
// efficiently allocate large contiguous extents").
func (a *Allocator) AllocRun(count uint64) (Run, error) {
	order, err := OrderFor(count)
	if err != nil {
		return Run{}, err
	}
	f, err := a.Alloc(order)
	if err != nil {
		return Run{}, err
	}
	// Trim the tail: free maximal aligned blocks beyond count.
	total := uint64(1) << order
	if total > count {
		// Temporarily account the block, then carve.
		delete(a.allocated, f)
		a.freeCount += total
		cur := f + mem.Frame(count)
		remaining := total - count
		for remaining > 0 {
			o := maxOrderFor(cur, remaining)
			// The trimmed pieces become free blocks directly.
			a.pushFree(cur, o)
			a.charge(1)
			cur += mem.Frame(uint64(1) << o)
			remaining -= uint64(1) << o
		}
		a.freeCount -= count
		a.runAllocated(f, count)
	}
	a.stats.Counter("alloc_runs").Inc()
	return Run{Start: f, Count: count}, nil
}

// runAllocated records an exact run as a sequence of maximal aligned
// allocated blocks so FreeRun can return them.
func (a *Allocator) runAllocated(f mem.Frame, count uint64) {
	cur := f
	remaining := count
	for remaining > 0 {
		o := maxOrderFor(cur, remaining)
		a.allocated[cur] = o
		cur += mem.Frame(uint64(1) << o)
		remaining -= uint64(1) << o
	}
}

// FreeRun releases a run previously returned by AllocRun. Partial
// frees are allowed: the run may be any sub-range of allocated blocks.
func (a *Allocator) FreeRun(r Run) error {
	return a.FreeRange(r.Start, r.Count)
}

// containingAllocatedBlock finds the allocated block covering frame f.
func (a *Allocator) containingAllocatedBlock(f mem.Frame) (mem.Frame, int, error) {
	for o := 0; o <= MaxOrder; o++ {
		cand := f &^ mem.Frame(uint64(1)<<o-1)
		if ord, ok := a.allocated[cand]; ok {
			if cand+mem.Frame(uint64(1)<<ord) > f {
				return cand, ord, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("buddy: frame %d not inside any allocated block", f)
}

// FreeRange frees an arbitrary sub-range of allocated frames, splitting
// allocated blocks as needed (the analogue of Linux split_page followed
// by __free_pages). Retained portions of split blocks stay allocated.
func (a *Allocator) FreeRange(start mem.Frame, count uint64) error {
	if count == 0 {
		return fmt.Errorf("buddy: FreeRange of zero frames")
	}
	end := start + mem.Frame(count)
	cur := start
	for cur < end {
		blk, order, err := a.containingAllocatedBlock(cur)
		if err != nil {
			return fmt.Errorf("buddy: FreeRange: %w", err)
		}
		blkEnd := blk + mem.Frame(uint64(1)<<order)
		segEnd := end
		if blkEnd < segEnd {
			segEnd = blkEnd
		}
		// Dissolve the covering block, re-recording the retained head
		// and tail as allocated runs.
		delete(a.allocated, blk)
		a.freeCount += uint64(1) << order
		if blk < cur {
			n := uint64(cur - blk)
			a.runAllocated(blk, n)
			a.freeCount -= n
			a.charge(1)
			a.cSplits.Inc()
		}
		if segEnd < blkEnd {
			n := uint64(blkEnd - segEnd)
			a.runAllocated(segEnd, n)
			a.freeCount -= n
			a.charge(1)
			a.cSplits.Inc()
		}
		// Free the middle segment block by block so buddies coalesce.
		n := uint64(segEnd - cur)
		a.runAllocated(cur, n)
		a.freeCount -= n
		c := cur
		for c < segEnd {
			o := a.allocated[c]
			next := c + mem.Frame(uint64(1)<<o)
			if err := a.Free(c); err != nil {
				return err
			}
			c = next
		}
		cur = segEnd
	}
	return nil
}

// LargestFreeBlock returns the order of the largest free block, or -1
// if no memory is free. It is a fragmentation diagnostic.
func (a *Allocator) LargestFreeBlock() int {
	for o := MaxOrder; o >= 0; o-- {
		if a.heads[o] != noFrame {
			return o
		}
	}
	return -1
}

// FreeBlocksByOrder returns the number of free blocks at each order.
func (a *Allocator) FreeBlocksByOrder() [MaxOrder + 1]int {
	var out [MaxOrder + 1]int
	for o := 0; o <= MaxOrder; o++ {
		for f := a.heads[o]; f != noFrame; f = a.nodes[f].next {
			out[o]++
		}
	}
	return out
}

// VisitFree calls fn for every free block (start frame, frame count)
// threaded on the free lists, in order-then-list order. It charges no
// simulated cost; invariant checkers use it to assert free lists are
// disjoint from mapped frames.
func (a *Allocator) VisitFree(fn func(start mem.Frame, count uint64)) {
	for o := 0; o <= MaxOrder; o++ {
		for f := a.heads[o]; f != noFrame; f = a.nodes[f].next {
			fn(f, uint64(1)<<o)
		}
	}
}

// VisitAllocated calls fn for every allocated block (start frame, frame
// count). Iteration order is unspecified (map order); callers that need
// determinism must collect and sort. No simulated cost is charged.
func (a *Allocator) VisitAllocated(fn func(start mem.Frame, count uint64)) {
	for f, o := range a.allocated {
		fn(f, uint64(1)<<o)
	}
}

// CheckInvariants validates internal consistency: free and allocated
// accounting must exactly tile the managed range with no overlap. It is
// exercised by tests and failure-injection harnesses.
func (a *Allocator) CheckInvariants() error {
	covered := make(map[mem.Frame]bool, a.size)
	mark := func(f mem.Frame, o int, what string) error {
		for i := uint64(0); i < uint64(1)<<o; i++ {
			fr := f + mem.Frame(i)
			if !a.inRange(fr, 0) {
				return fmt.Errorf("buddy: %s block [%d, order %d] leaves managed range", what, f, o)
			}
			if covered[fr] {
				return fmt.Errorf("buddy: frame %d covered twice (%s block at %d order %d)", fr, what, f, o)
			}
			covered[fr] = true
		}
		return nil
	}
	var freeSeen uint64
	for o := 0; o <= MaxOrder; o++ {
		for f := a.heads[o]; f != noFrame; f = a.nodes[f].next {
			if got := a.order[f]; got != o {
				return fmt.Errorf("buddy: free block %d on list %d but order map says %d", f, o, got)
			}
			if err := mark(f, o, "free"); err != nil {
				return err
			}
			freeSeen += uint64(1) << o
		}
	}
	if freeSeen != a.freeCount {
		return fmt.Errorf("buddy: free count %d but lists hold %d frames", a.freeCount, freeSeen)
	}
	for f, o := range a.allocated {
		if err := mark(f, o, "allocated"); err != nil {
			return err
		}
	}
	if uint64(len(covered)) != a.size {
		return fmt.Errorf("buddy: %d frames accounted, managed %d", len(covered), a.size)
	}
	return nil
}
