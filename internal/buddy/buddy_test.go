package buddy

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

func newAlloc(t *testing.T, base mem.Frame, size uint64) (*Allocator, *sim.Clock) {
	t.Helper()
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	a, err := New(clock, &params, base, size)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a, clock
}

func TestNewRejectsEmptyRange(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	if _, err := New(clock, &params, 0, 0); err == nil {
		t.Fatal("accepted empty range")
	}
}

func TestInitialStateFullyFree(t *testing.T) {
	a, _ := newAlloc(t, 0, 1024)
	if a.FreeFrames() != 1024 {
		t.Fatalf("FreeFrames = %d, want 1024", a.FreeFrames())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocSingleFrame(t *testing.T) {
	a, _ := newAlloc(t, 0, 1024)
	f, err := a.AllocFrame()
	if err != nil {
		t.Fatalf("AllocFrame: %v", err)
	}
	if uint64(f) >= 1024 {
		t.Fatalf("frame %d outside range", f)
	}
	if a.FreeFrames() != 1023 {
		t.Fatalf("FreeFrames = %d, want 1023", a.FreeFrames())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocAlignment(t *testing.T) {
	a, _ := newAlloc(t, 0, 1024)
	for order := 0; order <= 8; order++ {
		f, err := a.Alloc(order)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", order, err)
		}
		if uint64(f)%(uint64(1)<<order) != 0 {
			t.Fatalf("order-%d block at %d not naturally aligned", order, f)
		}
	}
}

func TestAllocFreeCoalescesFully(t *testing.T) {
	a, _ := newAlloc(t, 0, 1024)
	var frames []mem.Frame
	for i := 0; i < 1024; i++ {
		f, err := a.AllocFrame()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		frames = append(frames, f)
	}
	if a.FreeFrames() != 0 {
		t.Fatalf("FreeFrames = %d after exhausting", a.FreeFrames())
	}
	if _, err := a.AllocFrame(); err == nil {
		t.Fatal("allocation from exhausted allocator succeeded")
	}
	for _, f := range frames {
		if err := a.Free(f); err != nil {
			t.Fatalf("Free(%d): %v", f, err)
		}
	}
	if a.FreeFrames() != 1024 {
		t.Fatalf("FreeFrames = %d after freeing all", a.FreeFrames())
	}
	if a.LargestFreeBlock() != 10 {
		t.Fatalf("LargestFreeBlock = %d, want 10 (fully coalesced)", a.LargestFreeBlock())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	a, _ := newAlloc(t, 0, 64)
	f, _ := a.AllocFrame()
	if err := a.Free(f); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(f); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestFreeUnallocatedRejected(t *testing.T) {
	a, _ := newAlloc(t, 0, 64)
	if err := a.Free(7); err == nil {
		t.Fatal("free of never-allocated frame accepted")
	}
}

func TestInvalidOrders(t *testing.T) {
	a, _ := newAlloc(t, 0, 64)
	if _, err := a.Alloc(-1); err == nil {
		t.Fatal("Alloc(-1) accepted")
	}
	if _, err := a.Alloc(MaxOrder + 1); err == nil {
		t.Fatal("Alloc(too big) accepted")
	}
}

func TestOrderFor(t *testing.T) {
	cases := []struct {
		n    uint64
		want int
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {512, 9}, {513, 10}}
	for _, c := range cases {
		got, err := OrderFor(c.n)
		if err != nil || got != c.want {
			t.Fatalf("OrderFor(%d) = %d, %v; want %d", c.n, got, err, c.want)
		}
	}
	if _, err := OrderFor(0); err == nil {
		t.Fatal("OrderFor(0) accepted")
	}
	if _, err := OrderFor(1 << 30); err == nil {
		t.Fatal("OrderFor(huge) accepted")
	}
}

func TestNonPowerOfTwoRange(t *testing.T) {
	a, _ := newAlloc(t, 0, 1000)
	if a.FreeFrames() != 1000 {
		t.Fatalf("FreeFrames = %d, want 1000", a.FreeFrames())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var got uint64
	for {
		f, err := a.AllocFrame()
		if err != nil {
			break
		}
		_ = f
		got++
	}
	if got != 1000 {
		t.Fatalf("allocated %d frames from 1000-frame range", got)
	}
}

func TestNonZeroBase(t *testing.T) {
	a, _ := newAlloc(t, 4096, 512)
	f, err := a.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f < 4096 || uint64(f) >= 4096+512 {
		t.Fatalf("frame %d outside [4096, 4608)", f)
	}
	if err := a.Free(f); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocRunExactSize(t *testing.T) {
	a, _ := newAlloc(t, 0, 1024)
	r, err := a.AllocRun(100)
	if err != nil {
		t.Fatalf("AllocRun: %v", err)
	}
	if r.Count != 100 {
		t.Fatalf("run count = %d, want 100", r.Count)
	}
	if a.FreeFrames() != 924 {
		t.Fatalf("FreeFrames = %d, want 924 (exact-size accounting)", a.FreeFrames())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := a.FreeRun(r); err != nil {
		t.Fatalf("FreeRun: %v", err)
	}
	if a.FreeFrames() != 1024 {
		t.Fatalf("FreeFrames = %d after FreeRun, want 1024", a.FreeFrames())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocRunPowerOfTwo(t *testing.T) {
	a, _ := newAlloc(t, 0, 1024)
	r, err := a.AllocRun(256)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count != 256 || uint64(r.Start)%256 != 0 {
		t.Fatalf("run %+v not aligned pow2 block", r)
	}
	if err := a.FreeRun(r); err != nil {
		t.Fatal(err)
	}
}

func TestRunsDoNotOverlap(t *testing.T) {
	a, _ := newAlloc(t, 0, 2048)
	owner := make(map[mem.Frame]int)
	var runs []Run
	sizes := []uint64{1, 3, 7, 100, 33, 512, 64, 5}
	for i, n := range sizes {
		r, err := a.AllocRun(n)
		if err != nil {
			t.Fatalf("AllocRun(%d): %v", n, err)
		}
		for f := r.Start; f < r.End(); f++ {
			if prev, dup := owner[f]; dup {
				t.Fatalf("frame %d in runs %d and %d", f, prev, i)
			}
			owner[f] = i
		}
		runs = append(runs, r)
	}
	for _, r := range runs {
		if err := a.FreeRun(r); err != nil {
			t.Fatal(err)
		}
	}
	if a.FreeFrames() != 2048 {
		t.Fatalf("leaked frames: free = %d", a.FreeFrames())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocChargesTime(t *testing.T) {
	a, clock := newAlloc(t, 0, 1024)
	before := clock.Now()
	if _, err := a.AllocFrame(); err != nil {
		t.Fatal(err)
	}
	if clock.Since(before) <= 0 {
		t.Fatal("allocation charged no virtual time")
	}
}

func TestFreeBlocksByOrderCounts(t *testing.T) {
	a, _ := newAlloc(t, 0, 1024)
	counts := a.FreeBlocksByOrder()
	if counts[10] != 1 {
		t.Fatalf("expected one order-10 block, got %v", counts)
	}
	_, _ = a.AllocFrame()
	counts = a.FreeBlocksByOrder()
	// One frame allocated: each order 0..9 has exactly one free buddy.
	for o := 0; o <= 9; o++ {
		if counts[o] != 1 {
			t.Fatalf("order %d: %d free blocks, want 1 (%v)", o, counts[o], counts)
		}
	}
}

// TestAllocFreeQuickProperty drives a random alloc/free interleaving and
// checks invariants throughout: no overlap, exact accounting, full
// coalescing at the end.
func TestAllocFreeQuickProperty(t *testing.T) {
	f := func(seed uint64) bool {
		clock := &sim.Clock{}
		params := sim.DefaultParams()
		a, err := New(clock, &params, 0, 4096)
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed)
		var live []Run
		for step := 0; step < 300; step++ {
			if len(live) == 0 || rng.Float64() < 0.6 {
				n := uint64(1 + rng.Intn(200))
				r, err := a.AllocRun(n)
				if err != nil {
					continue // exhausted; fine
				}
				live = append(live, r)
			} else {
				i := rng.Intn(len(live))
				if err := a.FreeRun(live[i]); err != nil {
					t.Logf("FreeRun: %v", err)
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for _, r := range live {
			if err := a.FreeRun(r); err != nil {
				t.Logf("final FreeRun: %v", err)
				return false
			}
		}
		if a.FreeFrames() != 4096 {
			t.Logf("leaked: free=%d", a.FreeFrames())
			return false
		}
		if err := a.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		// Full coalescing: the range must collapse back to one block.
		if a.LargestFreeBlock() != 12 {
			t.Logf("largest free block = %d, want 12", a.LargestFreeBlock())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeRangePartial(t *testing.T) {
	a, _ := newAlloc(t, 0, 1024)
	r, err := a.AllocRun(512)
	if err != nil {
		t.Fatal(err)
	}
	// Free the middle 100 frames of the run.
	if err := a.FreeRange(r.Start+200, 100); err != nil {
		t.Fatalf("FreeRange: %v", err)
	}
	if a.FreeFrames() != 1024-512+100 {
		t.Fatalf("FreeFrames = %d, want %d", a.FreeFrames(), 1024-512+100)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Free the rest of the run in two pieces.
	if err := a.FreeRange(r.Start, 200); err != nil {
		t.Fatal(err)
	}
	if err := a.FreeRange(r.Start+300, 212); err != nil {
		t.Fatal(err)
	}
	if a.FreeFrames() != 1024 {
		t.Fatalf("FreeFrames = %d, want 1024", a.FreeFrames())
	}
	if a.LargestFreeBlock() != 10 {
		t.Fatalf("not fully coalesced: largest = %d", a.LargestFreeBlock())
	}
}

func TestFreeRangeErrors(t *testing.T) {
	a, _ := newAlloc(t, 0, 64)
	if err := a.FreeRange(0, 0); err == nil {
		t.Fatal("zero-length FreeRange accepted")
	}
	if err := a.FreeRange(5, 3); err == nil {
		t.Fatal("FreeRange of unallocated frames accepted")
	}
	// Double free via FreeRange.
	r, _ := a.AllocRun(8)
	if err := a.FreeRange(r.Start, 8); err != nil {
		t.Fatal(err)
	}
	if err := a.FreeRange(r.Start, 8); err == nil {
		t.Fatal("double FreeRange accepted")
	}
}

func TestFreeRangeQuickProperty(t *testing.T) {
	f := func(seed uint64) bool {
		clock := &sim.Clock{}
		params := sim.DefaultParams()
		a, err := New(clock, &params, 0, 2048)
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed)
		r, err := a.AllocRun(2000)
		if err != nil {
			return false
		}
		// Free the run in random-order chunks; every frame exactly once.
		type seg struct{ start, count uint64 }
		var segs []seg
		cur := uint64(0)
		for cur < 2000 {
			n := uint64(1 + rng.Intn(97))
			if cur+n > 2000 {
				n = 2000 - cur
			}
			segs = append(segs, seg{cur, n})
			cur += n
		}
		for _, i := range rng.Perm(len(segs)) {
			s := segs[i]
			if err := a.FreeRange(r.Start+mem.Frame(s.start), s.count); err != nil {
				t.Logf("FreeRange(%d,%d): %v", s.start, s.count, err)
				return false
			}
		}
		if a.FreeFrames() != 2048 {
			t.Logf("free = %d", a.FreeFrames())
			return false
		}
		return a.CheckInvariants() == nil && a.LargestFreeBlock() == 11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
