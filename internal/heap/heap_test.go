package heap

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

func newHeap(t *testing.T) (*Heap, *core.System, *sim.Clock) {
	t.Helper()
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: 16384, NVMFrames: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(clock, &params, memory, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.NewProcess(core.Ranges)
	if err != nil {
		t.Fatal(err)
	}
	return New(p), sys, clock
}

func TestAllocFreeRoundTrip(t *testing.T) {
	h, _, _ := newHeap(t)
	a, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("one hundred bytes of user data, more or less")
	if err := h.Write(a, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := h.Read(a, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch")
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if s := h.Stats(); s.LiveObjects != 0 || s.BytesInUse != 0 {
		t.Fatalf("stats after free: %+v", s)
	}
}

func TestAllocZeroed(t *testing.T) {
	h, _, _ := newHeap(t)
	// Dirty a block, free it, reallocate the same class: must be zero.
	a, _ := h.Alloc(64)
	if err := h.Write(a, bytes.Repeat([]byte{0xFF}, 64)); err != nil {
		t.Fatal(err)
	}
	// Keep the arena alive so the block is recycled.
	keep, _ := h.Alloc(64)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := h.Alloc(64)
	got := make([]byte, 64)
	if err := h.Read(b, got); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("recycled block not zeroed at %d: %#x", i, v)
		}
	}
	_ = keep
}

func TestSizeClasses(t *testing.T) {
	cases := []struct {
		size      uint64
		wantClass int
	}{
		{1, 0}, {8, 0}, {9, 1}, {24, 1}, {56, 2}, {120, 3},
		{32768 - headerSize, numClasses - 1}, {32768 - headerSize + 1, -1}, {1 << 20, -1},
	}
	for _, c := range cases {
		if got := classFor(c.size); got != c.wantClass {
			t.Fatalf("classFor(%d) = %d, want %d", c.size, got, c.wantClass)
		}
	}
	if classFor(0) != 0 {
		t.Fatal("classFor(0) should be smallest class")
	}
}

func TestUsableSize(t *testing.T) {
	h, _, _ := newHeap(t)
	a, _ := h.Alloc(20)
	n, err := h.UsableSize(a)
	if err != nil {
		t.Fatal(err)
	}
	if n < 20 || n > 64 {
		t.Fatalf("UsableSize = %d", n)
	}
	if err := h.Write(a, make([]byte, n+1)); err == nil {
		t.Fatal("overflow write accepted")
	}
}

func TestLargeAllocations(t *testing.T) {
	h, sys, _ := newHeap(t)
	free0 := sys.FreeFrames()
	a, err := h.Alloc(10 << 20) // 10 MiB
	if err != nil {
		t.Fatal(err)
	}
	n, _ := h.UsableSize(a)
	if n < 10<<20 {
		t.Fatalf("large usable = %d", n)
	}
	if err := h.Write(a, bytes.Repeat([]byte{7}, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if sys.FreeFrames() != free0 {
		t.Fatalf("large alloc leaked: %d -> %d", free0, sys.FreeFrames())
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	h, _, _ := newHeap(t)
	a, _ := h.Alloc(32)
	b, _ := h.Alloc(32) // keep arena alive
	_ = b
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestInvalidFreeDetected(t *testing.T) {
	h, _, _ := newHeap(t)
	a, _ := h.Alloc(32)
	if err := h.Free(a + 4); err == nil {
		t.Fatal("interior pointer free accepted")
	}
}

func TestEmptyArenaReleasedAsWholeFile(t *testing.T) {
	h, sys, _ := newHeap(t)
	free0 := sys.FreeFrames()
	var ptrs []mem.VirtAddr
	for i := 0; i < 100; i++ {
		a, err := h.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, a)
	}
	if h.Stats().Arenas != 1 {
		t.Fatalf("arenas = %d, want 1", h.Stats().Arenas)
	}
	for _, a := range ptrs {
		if err := h.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	// One empty arena stays cached (hysteresis); TrimReserves releases
	// it as a whole file.
	if h.Stats().Arenas != 1 {
		t.Fatalf("reserve arena not retained: %d arenas", h.Stats().Arenas)
	}
	if err := h.TrimReserves(); err != nil {
		t.Fatal(err)
	}
	if h.Stats().Arenas != 0 {
		t.Fatalf("arena not released by trim: %d arenas", h.Stats().Arenas)
	}
	if sys.FreeFrames() != free0 {
		t.Fatalf("arena frames leaked: %d -> %d", free0, sys.FreeFrames())
	}
}

func TestArenaPingPongReusesReserve(t *testing.T) {
	h, sys, _ := newHeap(t)
	// Alternating alloc/free of a lone object must not release and
	// re-create arenas (the pathology the reserve exists to prevent).
	a, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	sys.Stats().Reset()
	for i := 0; i < 100; i++ {
		a, err := h.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if got := sys.Stats().Value("allocs") + sys.Stats().Value("unmaps"); got != 0 {
		t.Fatalf("ping-pong caused %d kernel operations, want 0", got)
	}
	if h.Stats().Arenas != 1 {
		t.Fatalf("arenas = %d", h.Stats().Arenas)
	}
}

func TestArenaGrowthIsO1(t *testing.T) {
	h, _, clock := newHeap(t)
	// First allocation of each class pays one arena allocation; the
	// arena cost must not depend on the class block size.
	t0 := clock.Now()
	if _, err := h.Alloc(16); err != nil {
		t.Fatal(err)
	}
	// Header-writing is per block; compare only the underlying mapping
	// cost via a fresh class with far fewer blocks per arena.
	_ = clock.Since(t0)
	s := h.Stats()
	if s.Arenas != 1 || s.LiveObjects != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestManyClassesCoexist(t *testing.T) {
	h, _, _ := newHeap(t)
	sizes := []uint64{8, 50, 200, 1000, 5000, 20000, 100000}
	ptrs := make(map[uint64]mem.VirtAddr)
	for _, s := range sizes {
		a, err := h.Alloc(s)
		if err != nil {
			t.Fatalf("alloc %d: %v", s, err)
		}
		pattern := bytes.Repeat([]byte{byte(s)}, int(s))
		if err := h.Write(a, pattern); err != nil {
			t.Fatal(err)
		}
		ptrs[s] = a
	}
	for _, s := range sizes {
		got := make([]byte, s)
		if err := h.Read(ptrs[s], got); err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != byte(s) {
				t.Fatalf("size %d: byte %d = %#x", s, i, v)
			}
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, a := range ptrs {
		if err := h.Free(a); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQuickRandomAllocFree(t *testing.T) {
	h, sys, _ := newHeap(t)
	type obj struct {
		va   mem.VirtAddr
		data []byte
	}
	var live []obj
	rng := sim.NewRNG(77)
	fn := func(sz uint16, tag byte) bool {
		size := uint64(sz)%8000 + 1
		a, err := h.Alloc(size)
		if err != nil {
			t.Logf("alloc: %v", err)
			return false
		}
		data := bytes.Repeat([]byte{tag}, int(size))
		if err := h.Write(a, data); err != nil {
			return false
		}
		live = append(live, obj{a, data})
		// Randomly free one live object.
		if len(live) > 6 {
			i := rng.Intn(len(live))
			got := make([]byte, len(live[i].data))
			if err := h.Read(live[i].va, got); err != nil {
				return false
			}
			if !bytes.Equal(got, live[i].data) {
				t.Log("data corrupted before free")
				return false
			}
			if err := h.Free(live[i].va); err != nil {
				t.Logf("free: %v", err)
				return false
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
	// Survivors intact?
	for _, o := range live {
		got := make([]byte, len(o.data))
		if err := h.Read(o.va, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, o.data) {
			t.Fatal("survivor corrupted")
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, o := range live {
		if err := h.Free(o.va); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.FS().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAllocSizeEdges drives the class boundaries: zero-size requests,
// the exact largest class payload (32 KiB minus the header), one byte
// over it (the large-allocation path), and header-straddling sizes.
func TestAllocSizeEdges(t *testing.T) {
	maxSmall := uint64(1)<<maxClassShift - headerSize
	cases := []struct {
		name  string
		size  uint64
		large bool
	}{
		{"zero", 0, false},
		{"one", 1, false},
		{"min-class-exact", 16 - headerSize, false},
		{"min-class-plus-one", 16 - headerSize + 1, false},
		{"page", mem.FrameSize, false},
		{"max-class-exact", maxSmall, false},
		{"max-class-plus-one", maxSmall + 1, true},
		{"multi-page-large", 10 * mem.FrameSize, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, _, _ := newHeap(t)
			a, err := h.Alloc(tc.size)
			if err != nil {
				t.Fatal(err)
			}
			if got := h.Stats().LargeAllocs; (got == 1) != tc.large {
				t.Fatalf("large=%v, want large=%v", got == 1, tc.large)
			}
			n, err := h.UsableSize(a)
			if err != nil {
				t.Fatal(err)
			}
			want := tc.size
			if want == 0 {
				want = 1
			}
			if n < want {
				t.Fatalf("usable %d < requested %d", n, tc.size)
			}
			buf := make([]byte, n)
			if err := h.Read(a, buf); err != nil {
				t.Fatal(err)
			}
			for i, v := range buf {
				if v != 0 {
					t.Fatalf("byte %d = %#x, want 0", i, v)
				}
			}
			if err := h.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if err := h.Free(a); err != nil {
				t.Fatal(err)
			}
			if s := h.Stats(); s.LiveObjects != 0 || s.BytesInUse != 0 {
				t.Fatalf("stats after free: %+v", s)
			}
		})
	}
}

// TestInterleavedFreePatterns frees a batch of mixed-class blocks in
// several orders and reallocates after each: free-list recycling and
// arena release must hold up whatever the free order.
func TestInterleavedFreePatterns(t *testing.T) {
	sizes := []uint64{24, 120, 500, 2000, 24, 120, 500, 2000, 24, 120, 500, 2000}
	patterns := []struct {
		name  string
		order func(n int) []int
	}{
		{"lifo", func(n int) []int {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = n - 1 - i
			}
			return idx
		}},
		{"fifo", func(n int) []int {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			return idx
		}},
		{"evens-then-odds", func(n int) []int {
			var idx []int
			for i := 0; i < n; i += 2 {
				idx = append(idx, i)
			}
			for i := 1; i < n; i += 2 {
				idx = append(idx, i)
			}
			return idx
		}},
		{"inside-out", func(n int) []int {
			var idx []int
			lo, hi := n/2-1, n/2
			for lo >= 0 || hi < n {
				if lo >= 0 {
					idx = append(idx, lo)
					lo--
				}
				if hi < n {
					idx = append(idx, hi)
					hi++
				}
			}
			return idx
		}},
	}
	for _, pat := range patterns {
		t.Run(pat.name, func(t *testing.T) {
			h, _, _ := newHeap(t)
			for round := 0; round < 3; round++ {
				ptrs := make([]mem.VirtAddr, len(sizes))
				for i, s := range sizes {
					a, err := h.Alloc(s)
					if err != nil {
						t.Fatal(err)
					}
					if err := h.Write(a, bytes.Repeat([]byte{byte(i + 1)}, int(s))); err != nil {
						t.Fatal(err)
					}
					ptrs[i] = a
				}
				if err := h.CheckInvariants(); err != nil {
					t.Fatalf("round %d after allocs: %v", round, err)
				}
				for _, i := range pat.order(len(sizes)) {
					got := make([]byte, sizes[i])
					if err := h.Read(ptrs[i], got); err != nil {
						t.Fatal(err)
					}
					for _, v := range got {
						if v != byte(i+1) {
							t.Fatalf("round %d block %d corrupted before free", round, i)
						}
					}
					if err := h.Free(ptrs[i]); err != nil {
						t.Fatal(err)
					}
				}
				if err := h.CheckInvariants(); err != nil {
					t.Fatalf("round %d after frees: %v", round, err)
				}
				if s := h.Stats(); s.LiveObjects != 0 || s.BytesInUse != 0 {
					t.Fatalf("round %d stats: %+v", round, s)
				}
			}
		})
	}
}

// TestAllocFreeHotPathAllocs pins the host-allocation cost of the
// steady-state alloc/free cycle: once the size class is warm (arena
// grown, free list populated, zero-scratch reused), recycling a block
// must not allocate on the host beyond the simulated machine's own
// bookkeeping. The bound is deliberately tight — a regression that
// adds a per-Alloc buffer (as the old re-zeroing path did) trips it.
func TestAllocFreeHotPathAllocs(t *testing.T) {
	h, _, _ := newHeap(t)
	warm, err := h.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(warm); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		a, err := h.Alloc(1000)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(a); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 4 {
		t.Fatalf("steady-state alloc/free averages %.1f host allocations, want <= 4", avg)
	}
}
