// Package heap is a user-level memory allocator built on file-only
// memory — the paper's language-runtime layer ("most dynamic memory
// allocation is managed with file-system mechanisms rather than common
// virtual memory mechanisms").
//
// Small allocations are carved from size-class free lists inside arena
// regions; each arena is one contiguous region obtained from the
// backing Space in O(1) (a single-extent anonymous file under core, a
// granted physical extent under usermode). Large allocations get their
// own region directly. Every block carries an in-memory header
// (written through the simulated translation path), so alloc and free
// exercise real loads and stores, and corruption or double frees are
// detected from the header magic.
//
// The allocator never returns memory page-by-page (there is no
// madvise): arenas are released as whole regions when they empty,
// exactly the file-grain reclamation story of §3.1.
package heap

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/pagetable"
)

const (
	// headerSize is the per-block header: magic (4) | class (4).
	headerSize = 8

	magicAllocated = 0xA110C8ED
	magicFree      = 0xF4EEF4EE

	// minClass and maxClass bound the size classes (powers of two).
	minClassShift = 4  // 16 B
	maxClassShift = 15 // 32 KiB
	numClasses    = maxClassShift - minClassShift + 1

	// arenaPages is the size of one small-object arena (4 MiB).
	arenaPages = 1024
)

const rw = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser

// Region is one contiguous chunk of address space the allocator carves
// blocks from. core.Mapping and usermode extents both satisfy it.
type Region interface {
	Base() mem.VirtAddr
	Pages() uint64
}

// Space is the address-space contract the allocator runs on: O(1)
// region allocation and release plus byte access through whatever
// translation (or bounds-check) path the space simulates.
type Space interface {
	AllocPages(pages uint64) (Region, error)
	FreeRegion(Region) error
	WriteBuf(mem.VirtAddr, []byte) error
	ReadBuf(mem.VirtAddr, []byte) error
}

// coreSpace adapts a file-only-memory process to the Space interface.
type coreSpace struct{ p *core.Process }

func (s coreSpace) AllocPages(pages uint64) (Region, error) {
	m, err := s.p.AllocVolatile(pages, rw)
	if err != nil {
		return nil, err
	}
	return m, nil
}

func (s coreSpace) FreeRegion(r Region) error { return s.p.Unmap(r.(*core.Mapping)) }

func (s coreSpace) WriteBuf(a mem.VirtAddr, b []byte) error { return s.p.WriteBuf(a, b) }

func (s coreSpace) ReadBuf(a mem.VirtAddr, b []byte) error { return s.p.ReadBuf(a, b) }

// Heap allocates user objects from a Space.
type Heap struct {
	space Space

	// free[c] holds recycled blocks of class c (block addresses,
	// header included). Virgin blocks are handed out by bump pointer
	// and never appear here until their first Free.
	free [numClasses][]mem.VirtAddr

	// arenas tracks small-object arenas and their live-block counts.
	arenas map[Region]*arenaInfo
	// classArenas lists the arenas of each class (for bump allocation).
	classArenas [numClasses][]Region
	// arenaOf locates the arena of a block address.
	arenaOf map[mem.VirtAddr]Region

	// reserve caches one empty arena per class (hysteresis, like
	// malloc's trim threshold), so alloc/free ping-pong does not
	// release and re-create arenas.
	reserve [numClasses]Region

	// large maps the user address of a large allocation to its
	// dedicated region.
	large map[mem.VirtAddr]Region

	// zeroScratch is a reusable all-zero buffer for re-zeroing
	// recycled blocks, so the steady-state alloc path is free of host
	// allocations.
	zeroScratch []byte

	bytesInUse  uint64
	liveObjects int
}

type arenaInfo struct {
	live   int
	class  int
	blocks int // total blocks in the arena
	bump   int // blocks handed out at least once (virgin boundary)
}

// New creates a heap for the given file-only-memory process.
func New(p *core.Process) *Heap {
	return NewOn(coreSpace{p})
}

// NewOn creates a heap on an arbitrary Space (usermode processes run
// their allocator on granted physical extents through this).
func NewOn(s Space) *Heap {
	return &Heap{
		space:       s,
		arenas:      make(map[Region]*arenaInfo),
		arenaOf:     make(map[mem.VirtAddr]Region),
		large:       make(map[mem.VirtAddr]Region),
		zeroScratch: make([]byte, uint64(1)<<maxClassShift),
	}
}

// classFor returns the size class index for a payload size, or -1 for
// large allocations.
func classFor(size uint64) int {
	if size == 0 {
		size = 1
	}
	need := size + headerSize
	for c := 0; c < numClasses; c++ {
		if uint64(1)<<(c+minClassShift) >= need {
			return c
		}
	}
	return -1
}

// blockSize returns the byte size of class-c blocks.
func blockSize(c int) uint64 { return uint64(1) << (c + minClassShift) }

// Alloc returns the address of a zero-initialized region of at least
// size bytes.
func (h *Heap) Alloc(size uint64) (mem.VirtAddr, error) {
	c := classFor(size)
	if c < 0 {
		return h.allocLarge(size)
	}
	block, recycled, err := h.takeBlock(c)
	if err != nil {
		return 0, err
	}
	if err := h.writeHeader(block, magicAllocated, uint32(c)); err != nil {
		return 0, err
	}
	// Recycled blocks must be re-zeroed by the allocator; virgin
	// blocks come from an epoch-erased extent and are already zero.
	if recycled {
		payload := block + headerSize
		zero := h.zeroScratch[:blockSize(c)-headerSize]
		if err := h.space.WriteBuf(payload, zero); err != nil {
			return 0, err
		}
	}
	arena := h.arenaOf[block]
	info := h.arenas[arena]
	info.live++
	if h.reserve[c] == arena {
		h.reserve[c] = nil
	}
	h.bytesInUse += blockSize(c)
	h.liveObjects++
	return block + headerSize, nil
}

// takeBlock returns a block of class c: a recycled one from the free
// list, a virgin one by bump pointer, or the first block of a freshly
// grown arena. recycled reports whether the block carries old data.
func (h *Heap) takeBlock(c int) (block mem.VirtAddr, recycled bool, err error) {
	if n := len(h.free[c]); n > 0 {
		block = h.free[c][n-1]
		h.free[c] = h.free[c][:n-1]
		return block, true, nil
	}
	for _, arena := range h.classArenas[c] {
		info := h.arenas[arena]
		if info.bump < info.blocks {
			block = arena.Base() + mem.VirtAddr(uint64(info.bump)*blockSize(c))
			info.bump++
			h.arenaOf[block] = arena
			return block, false, nil
		}
	}
	arena, err := h.grow(c)
	if err != nil {
		return 0, false, err
	}
	info := h.arenas[arena]
	block = arena.Base()
	info.bump = 1
	h.arenaOf[block] = arena
	return block, false, nil
}

func (h *Heap) allocLarge(size uint64) (mem.VirtAddr, error) {
	pages := (size + headerSize + mem.FrameSize - 1) / mem.FrameSize
	m, err := h.space.AllocPages(pages)
	if err != nil {
		return 0, err
	}
	if err := h.writeHeader(m.Base(), magicAllocated, uint32(numClasses)); err != nil {
		return 0, err
	}
	payload := m.Base() + headerSize
	h.large[payload] = m
	h.bytesInUse += pages * mem.FrameSize
	h.liveObjects++
	return payload, nil
}

// grow adds one arena for class c: a single O(1) region allocation,
// with no per-block work — blocks are issued lazily by bump pointer.
func (h *Heap) grow(c int) (Region, error) {
	m, err := h.space.AllocPages(arenaPages)
	if err != nil {
		return nil, err
	}
	info := &arenaInfo{
		class:  c,
		blocks: int(arenaPages * mem.FrameSize / blockSize(c)),
	}
	h.arenas[m] = info
	h.classArenas[c] = append(h.classArenas[c], m)
	return m, nil
}

// Free releases an allocation obtained from Alloc.
func (h *Heap) Free(payload mem.VirtAddr) error {
	if m, ok := h.large[payload]; ok {
		delete(h.large, payload)
		h.bytesInUse -= m.Pages() * mem.FrameSize
		h.liveObjects--
		return h.space.FreeRegion(m)
	}
	block := payload - headerSize
	magic, class, err := h.readHeader(block)
	if err != nil {
		return err
	}
	switch magic {
	case magicFree:
		return fmt.Errorf("heap: double free at %#x", uint64(payload))
	case magicAllocated:
	default:
		return fmt.Errorf("heap: free of invalid pointer %#x (header %#x)", uint64(payload), magic)
	}
	c := int(class)
	if c < 0 || c >= numClasses {
		return fmt.Errorf("heap: corrupt class %d at %#x", c, uint64(payload))
	}
	if err := h.writeHeader(block, magicFree, class); err != nil {
		return err
	}
	arena, ok := h.arenaOf[block]
	if !ok {
		return fmt.Errorf("heap: block %#x has no arena", uint64(block))
	}
	info := h.arenas[arena]
	info.live--
	h.bytesInUse -= blockSize(c)
	h.liveObjects--
	h.free[c] = append(h.free[c], block)

	// Whole-region reclamation with hysteresis: one empty arena per
	// class stays cached; further empties are released whole.
	if info.live == 0 {
		if h.reserve[c] == nil {
			h.reserve[c] = arena
			return nil
		}
		h.releaseArena(arena, info)
		return h.space.FreeRegion(arena)
	}
	return nil
}

// TrimReserves releases the cached empty arenas (malloc_trim).
func (h *Heap) TrimReserves() error {
	for c := 0; c < numClasses; c++ {
		arena := h.reserve[c]
		if arena == nil {
			continue
		}
		h.reserve[c] = nil
		h.releaseArena(arena, h.arenas[arena])
		if err := h.space.FreeRegion(arena); err != nil {
			return err
		}
	}
	return nil
}

func (h *Heap) releaseArena(arena Region, info *arenaInfo) {
	c := info.class
	kept := h.free[c][:0]
	for _, b := range h.free[c] {
		if h.arenaOf[b] != arena {
			kept = append(kept, b)
		}
	}
	h.free[c] = kept
	for i := 0; i < info.bump; i++ {
		delete(h.arenaOf, arena.Base()+mem.VirtAddr(uint64(i)*blockSize(c)))
	}
	for i, a := range h.classArenas[c] {
		if a == arena {
			h.classArenas[c] = append(h.classArenas[c][:i], h.classArenas[c][i+1:]...)
			break
		}
	}
	delete(h.arenas, arena)
}

func (h *Heap) writeHeader(block mem.VirtAddr, magic uint32, class uint32) error {
	var b [headerSize]byte
	binary.LittleEndian.PutUint32(b[0:4], magic)
	binary.LittleEndian.PutUint32(b[4:8], class)
	return h.space.WriteBuf(block, b[:])
}

func (h *Heap) readHeader(block mem.VirtAddr) (magic, class uint32, err error) {
	var b [headerSize]byte
	if err := h.space.ReadBuf(block, b[:]); err != nil {
		return 0, 0, err
	}
	return binary.LittleEndian.Uint32(b[0:4]), binary.LittleEndian.Uint32(b[4:8]), nil
}

// UsableSize returns the payload capacity of an allocation.
func (h *Heap) UsableSize(payload mem.VirtAddr) (uint64, error) {
	if m, ok := h.large[payload]; ok {
		return m.Pages()*mem.FrameSize - headerSize, nil
	}
	magic, class, err := h.readHeader(payload - headerSize)
	if err != nil {
		return 0, err
	}
	if magic != magicAllocated {
		return 0, fmt.Errorf("heap: %#x is not an allocated pointer", uint64(payload))
	}
	return blockSize(int(class)) - headerSize, nil
}

// Write stores data into an allocation (bounds-checked convenience).
func (h *Heap) Write(payload mem.VirtAddr, data []byte) error {
	n, err := h.UsableSize(payload)
	if err != nil {
		return err
	}
	if uint64(len(data)) > n {
		return fmt.Errorf("heap: write of %d bytes into %d-byte allocation", len(data), n)
	}
	return h.space.WriteBuf(payload, data)
}

// Read loads from an allocation.
func (h *Heap) Read(payload mem.VirtAddr, buf []byte) error {
	n, err := h.UsableSize(payload)
	if err != nil {
		return err
	}
	if uint64(len(buf)) > n {
		return fmt.Errorf("heap: read of %d bytes from %d-byte allocation", len(buf), n)
	}
	return h.space.ReadBuf(payload, buf)
}

// Stats describes the heap's occupancy.
type Stats struct {
	LiveObjects int
	BytesInUse  uint64
	Arenas      int
	LargeAllocs int
}

// Stats returns current occupancy.
func (h *Heap) Stats() Stats {
	return Stats{
		LiveObjects: h.liveObjects,
		BytesInUse:  h.bytesInUse,
		Arenas:      len(h.arenas),
		LargeAllocs: len(h.large),
	}
}

// Regions calls fn for every region the heap currently holds from its
// Space — arenas, the cached per-class reserves, and large
// allocations. usermode uses it to prove heap↔grant containment.
func (h *Heap) Regions(fn func(Region)) {
	for arena := range h.arenas {
		fn(arena)
	}
	for _, m := range h.large {
		fn(m)
	}
}

// CheckInvariants validates free-list/header agreement for every
// issued arena block (test support; walks simulated memory).
func (h *Heap) CheckInvariants() error {
	freeSet := make(map[mem.VirtAddr]bool)
	for c := range h.free {
		for _, b := range h.free[c] {
			if freeSet[b] {
				return fmt.Errorf("heap: block %#x on a free list twice", uint64(b))
			}
			freeSet[b] = true
		}
	}
	for arena, info := range h.arenas {
		live := 0
		for i := 0; i < info.bump; i++ {
			b := arena.Base() + mem.VirtAddr(uint64(i)*blockSize(info.class))
			magic, class, err := h.readHeader(b)
			if err != nil {
				return err
			}
			if int(class) != info.class {
				return fmt.Errorf("heap: block %#x class %d in class-%d arena", uint64(b), class, info.class)
			}
			switch magic {
			case magicAllocated:
				live++
				if freeSet[b] {
					return fmt.Errorf("heap: allocated block %#x on free list", uint64(b))
				}
			case magicFree:
				if !freeSet[b] {
					return fmt.Errorf("heap: free block %#x missing from free list", uint64(b))
				}
			default:
				return fmt.Errorf("heap: corrupt header %#x at %#x", magic, uint64(b))
			}
		}
		if live != info.live {
			return fmt.Errorf("heap: arena %#x live=%d but %d allocated headers", uint64(arena.Base()), info.live, live)
		}
	}
	return nil
}
