package heap_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Example allocates user objects from the file-only-memory heap,
// demonstrating the malloc-style interface over O(1) arenas.
func Example() {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{
		DRAMFrames: 16 << 20 >> mem.FrameShift,
		NVMFrames:  256 << 20 >> mem.FrameShift,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(clock, &params, memory, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	p, err := sys.NewProcess(core.Ranges)
	if err != nil {
		log.Fatal(err)
	}
	h := heap.New(p)

	obj, err := h.Alloc(100)
	if err != nil {
		log.Fatal(err)
	}
	if err := h.Write(obj, []byte("boxed value")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 11)
	if err := h.Read(obj, buf); err != nil {
		log.Fatal(err)
	}
	size, _ := h.UsableSize(obj)
	fmt.Printf("%s (usable %d B, %d arena)\n", buf, size, h.Stats().Arenas)
	if err := h.Free(obj); err != nil {
		log.Fatal(err)
	}
	if err := h.TrimReserves(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after free+trim: %d arenas\n", h.Stats().Arenas)
	// Output:
	// boxed value (usable 120 B, 1 arena)
	// after free+trim: 0 arenas
}
