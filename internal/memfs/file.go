package memfs

import (
	"fmt"
	"io"
	"sort"
)

// This file grows the handle layer into a usable file interface: open
// flags, per-handle positions with sequential read/write/seek, and
// recursive directory walks. The positional primitives (ReadAt,
// WriteAt, Truncate) stay in memfs.go; everything here composes them.

// OpenFlag selects OpenFile behavior, modeled on the POSIX open(2)
// flags the paper's file-only memory interface needs.
type OpenFlag uint32

const (
	// OCreate creates the file if it does not exist.
	OCreate OpenFlag = 1 << iota
	// OExcl, with OCreate, fails if the file already exists.
	OExcl
	// OTrunc truncates an existing file to zero length on open.
	OTrunc
	// OAppend forces every Write to land at end-of-file.
	OAppend
)

// OpenFile opens path with the given flags; opts apply only when the
// call creates the file. A zero flags value is a plain Open.
func (fs *FS) OpenFile(path string, flags OpenFlag, opts CreateOptions) (*File, error) {
	if flags&OExcl != 0 && flags&OCreate == 0 {
		return nil, fmt.Errorf("memfs %s: OExcl without OCreate", fs.name)
	}
	f, err := fs.Open(path)
	switch {
	case err == nil:
		if flags&(OCreate|OExcl) == OCreate|OExcl {
			cerr := f.Close()
			if cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("memfs %s: %q exists", fs.name, path)
		}
		if flags&OTrunc != 0 {
			if terr := f.Truncate(0); terr != nil {
				f.Close()
				return nil, terr
			}
		}
	case flags&OCreate != 0:
		f, err = fs.Create(path, opts)
		if err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	f.append = flags&OAppend != 0
	return f, nil
}

// Pos returns the handle's current file position.
func (f *File) Pos() uint64 { return f.pos }

// Read reads from the handle position, advancing it. It returns io.EOF
// at end-of-file (possibly after a short read), matching io.Reader.
func (f *File) Read(buf []byte) (int, error) {
	n, err := f.ReadAt(buf, f.pos)
	f.pos += uint64(n)
	if err != nil {
		return n, err
	}
	if n < len(buf) {
		return n, io.EOF
	}
	return n, nil
}

// Write writes at the handle position (end-of-file under OAppend),
// advancing it and extending the file as needed.
func (f *File) Write(buf []byte) (int, error) {
	if f.append {
		f.pos = f.inode.size
	}
	n, err := f.WriteAt(buf, f.pos)
	f.pos += uint64(n)
	return n, err
}

// Seek repositions the handle, interpreting whence as io.SeekStart,
// io.SeekCurrent, or io.SeekEnd (the io.Seeker contract). Seeking
// past end-of-file is legal: reads there hit EOF, writes extend the
// file (the gap reads as zeros). It returns the new position.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = int64(f.pos)
	case io.SeekEnd:
		base = int64(f.inode.size)
	default:
		return int64(f.pos), fmt.Errorf("memfs: bad seek whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return int64(f.pos), fmt.Errorf("memfs: seek to negative offset %d", pos)
	}
	f.pos = uint64(pos)
	return pos, nil
}

// WalkDir walks the tree rooted at path depth-first, children in
// sorted name order, calling fn for every inode including the root of
// the walk. Each directory visited charges one directory operation —
// a walk reads real metadata.
func (fs *FS) WalkDir(path string, fn func(path string, ino *Inode) error) error {
	ino, err := fs.lookup(path)
	if err != nil {
		return err
	}
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	clean := "/"
	for i, c := range comps {
		if i > 0 {
			clean += "/"
		}
		clean += c
	}
	return fs.walkDir(clean, ino, fn)
}

func (fs *FS) walkDir(path string, ino *Inode, fn func(string, *Inode) error) error {
	if err := fn(path, ino); err != nil {
		return err
	}
	if !ino.dir {
		return nil
	}
	fs.clock.Advance(fs.params.DirOp)
	names := make([]string, 0, len(ino.children))
	for name := range ino.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		child := path + "/" + name
		if path == "/" {
			child = "/" + name
		}
		if err := fs.walkDir(child, ino.children[name], fn); err != nil {
			return err
		}
	}
	return nil
}
