// Package memfs implements the memory file systems the paper builds on:
// a page-granular tmpfs flavour and an extent-granular, persistent PMFS
// flavour. Both store file data directly in simulated physical frames
// (there is no separate page cache — the file system *is* the memory),
// which is exactly the property file-only memory exploits.
//
// The two allocation policies reproduce the paper's comparison:
//
//   - PerPage (tmpfs): each file page is allocated on first use, one
//     frame at a time, like shmem_getpage. Costs are per page.
//   - Extent (PMFS/ext4-style): file space is allocated as long
//     contiguous extents, so metadata and allocation costs are per
//     extent, not per page — the file-system half of O(1) memory.
//
// Files carry file-grain attributes the paper relies on: a protection
// mode for the *whole* file, a durability mark (volatile files vanish
// on crash/remount, persistent ones survive if the file system lives in
// NVM), and a discardable flag that lets the OS reclaim whole files
// under memory pressure (transcendent-memory style).
package memfs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/buddy"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/pagetable"
	"repro/internal/sim"
	"repro/internal/tier"
)

// AllocPolicy selects how file space maps to frames.
type AllocPolicy int

const (
	// PerPage allocates one frame per file page on demand (tmpfs).
	PerPage AllocPolicy = iota
	// Extent allocates contiguous frame runs covering many pages
	// (PMFS). Preallocation (Truncate) reserves the whole file.
	Extent
)

// String names the policy.
func (p AllocPolicy) String() string {
	switch p {
	case PerPage:
		return "per-page"
	case Extent:
		return "extent"
	default:
		return fmt.Sprintf("AllocPolicy(%d)", int(p))
	}
}

// Durability says whether a file survives crash + remount.
type Durability int

const (
	// Volatile files are deleted at remount after a crash.
	Volatile Durability = iota
	// Persistent files survive crash + remount (their frames must be
	// in NVM for contents to be intact).
	Persistent
)

// String names the durability class.
func (d Durability) String() string {
	if d == Persistent {
		return "persistent"
	}
	return "volatile"
}

// ExtentRun is a contiguous mapping of file pages to frames.
type ExtentRun struct {
	Logical uint64 // first file page index covered
	Start   mem.Frame
	Count   uint64 // pages
}

// End returns the first file page past the extent.
func (e ExtentRun) End() uint64 { return e.Logical + e.Count }

// Inode is one file or directory.
type Inode struct {
	fs   *FS
	ino  uint64
	dir  bool
	name string // last path component (diagnostic only)

	// File state.
	size    uint64 // bytes
	extents []ExtentRun
	mode    pagetable.Flags
	dur     Durability
	discard bool

	// Lifecycle: the inode's storage is freed when both counts are 0.
	nlink int // directory references
	refs  int // open handles and mappings

	// Directory state.
	children map[string]*Inode

	// parent is the containing directory (nil only for the root;
	// anonymous temp files hang off the root for quota accounting).
	parent *Inode

	// quotaFrames, on a directory, caps the frames allocated by files
	// beneath it (0 = unlimited). usageFrames tracks the current
	// subtree allocation — the paper's "file-system controls over
	// memory allocation, such as quotas".
	quotaFrames uint64
	usageFrames uint64
}

// QuotaError reports an allocation rejected by a directory quota.
type QuotaError struct {
	Dir   string
	Quota uint64
	Used  uint64
	Want  uint64
}

// Error implements error.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("memfs: quota exceeded in %q: %d/%d frames used, %d more requested",
		e.Dir, e.Used, e.Quota, e.Want)
}

// Ino returns the inode number.
func (i *Inode) Ino() uint64 { return i.ino }

// IsDir reports whether the inode is a directory.
func (i *Inode) IsDir() bool { return i.dir }

// Size returns the file size in bytes.
func (i *Inode) Size() uint64 { return i.size }

// Pages returns the file size in whole 4 KiB pages.
func (i *Inode) Pages() uint64 {
	return (i.size + mem.FrameSize - 1) / mem.FrameSize
}

// Mode returns the file's whole-file protection — the paper's
// coarse-grain permission model ("permission is granted for the whole
// file and not individual blocks").
func (i *Inode) Mode() pagetable.Flags { return i.mode }

// Durability returns the file's durability class.
func (i *Inode) Durability() Durability { return i.dur }

// Discardable reports whether the OS may delete the file under memory
// pressure.
func (i *Inode) Discardable() bool { return i.discard }

// Extents returns a copy of the file's extent list, sorted by logical
// page.
func (i *Inode) Extents() []ExtentRun {
	out := make([]ExtentRun, len(i.extents))
	copy(out, i.extents)
	return out
}

// AllocatedPages returns the number of pages with backing frames.
func (i *Inode) AllocatedPages() uint64 {
	var n uint64
	for _, e := range i.extents {
		n += e.Count
	}
	return n
}

// FS is one mounted memory file system.
type FS struct {
	name   string
	policy AllocPolicy

	clock  *sim.Clock
	params *sim.Params
	memory *mem.Memory
	bud    *buddy.Allocator

	// Tiering (nil/empty unless AttachTier ran): fastBud is a second
	// block region over the fast tier, tier the migration engine, and
	// owners an index from block frame to owning inode so backends can
	// resolve migration candidates.
	tier    *tier.Engine
	fastBud *buddy.Allocator
	owners  map[mem.Frame]*Inode

	root    *Inode
	inodes  map[uint64]*Inode
	nextIno uint64

	// discardables tracks files eligible for pressure reclamation, in
	// insertion order.
	discardables []*Inode

	stats *metrics.Set
}

// New mounts a file system whose blocks come from the frame range
// [base, base+frames), typically an NVM region for PMFS and DRAM for
// tmpfs.
func New(name string, policy AllocPolicy, clock *sim.Clock, params *sim.Params, memory *mem.Memory, base mem.Frame, frames uint64) (*FS, error) {
	if !memory.Valid(base, frames) {
		return nil, fmt.Errorf("memfs %s: block range [%d,+%d) outside physical memory", name, base, frames)
	}
	bud, err := buddy.New(clock, params, base, frames)
	if err != nil {
		return nil, fmt.Errorf("memfs %s: %w", name, err)
	}
	fs := &FS{
		name:    name,
		policy:  policy,
		clock:   clock,
		params:  params,
		memory:  memory,
		bud:     bud,
		inodes:  make(map[uint64]*Inode),
		nextIno: 1,
		stats:   metrics.NewSet(),
	}
	fs.root = fs.newInode("", true, nil)
	fs.root.nlink = 1
	// Self-register with the machine so Machine.CheckInvariants audits
	// this file system alongside every other subsystem.
	machine := sim.MachineOf(clock, params)
	machine.RegisterInvariants("memfs:"+name, fs.CheckInvariants)
	machine.RegisterStats("memfs:"+name, fs.stats)
	return fs, nil
}

// Name returns the mount name.
func (fs *FS) Name() string { return fs.name }

// Policy returns the allocation policy.
func (fs *FS) Policy() AllocPolicy { return fs.policy }

// FreeFrames returns the number of unallocated block frames.
func (fs *FS) FreeFrames() uint64 { return fs.bud.FreeFrames() }

// TotalFrames returns the size of the block region.
func (fs *FS) TotalFrames() uint64 { return fs.bud.Size() }

// Stats exposes counters: "creates", "opens", "unlinks", "page_allocs",
// "extent_allocs", "discards", "remounts".
func (fs *FS) Stats() *metrics.Set { return fs.stats }

func (fs *FS) newInode(name string, dir bool, parent *Inode) *Inode {
	ino := fs.nextIno
	fs.nextIno++
	i := &Inode{
		fs:     fs,
		ino:    ino,
		dir:    dir,
		name:   name,
		parent: parent,
		mode:   pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser,
	}
	if dir {
		i.children = make(map[string]*Inode)
	}
	fs.inodes[ino] = i
	return i
}

// splitPath returns the cleaned components of an absolute path.
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("memfs: path %q is not absolute", path)
	}
	var comps []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		case "..":
			return nil, fmt.Errorf("memfs: path %q contains ..", path)
		default:
			comps = append(comps, c)
		}
	}
	return comps, nil
}

// walk resolves the directory holding the last component. Each
// component traversal charges one directory operation.
func (fs *FS) walk(comps []string) (*Inode, error) {
	dir := fs.root
	for _, c := range comps {
		fs.clock.Advance(fs.params.DirOp)
		child, ok := dir.children[c]
		if !ok {
			return nil, fmt.Errorf("memfs %s: %q not found", fs.name, c)
		}
		if !child.dir {
			return nil, fmt.Errorf("memfs %s: %q is not a directory", fs.name, c)
		}
		dir = child
	}
	return dir, nil
}

// Mkdir creates a directory. Parent directories must exist.
func (fs *FS) Mkdir(path string) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(comps) == 0 {
		return fmt.Errorf("memfs %s: mkdir of root", fs.name)
	}
	dir, err := fs.walk(comps[:len(comps)-1])
	if err != nil {
		return err
	}
	name := comps[len(comps)-1]
	if _, exists := dir.children[name]; exists {
		return fmt.Errorf("memfs %s: %q exists", fs.name, path)
	}
	fs.clock.Advance(fs.params.InodeOp + fs.params.DirOp)
	child := fs.newInode(name, true, dir)
	child.nlink = 1
	dir.children[name] = child
	return nil
}

// CreateOptions configure Create.
type CreateOptions struct {
	// Mode is the whole-file protection; zero means read+write+user.
	Mode pagetable.Flags
	// Durability selects crash behaviour (default Volatile).
	Durability Durability
	// Discardable marks the file reclaimable under memory pressure.
	Discardable bool
}

// Create makes a new empty file and returns an open handle (refs=1).
func (fs *FS) Create(path string, opts CreateOptions) (*File, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	if len(comps) == 0 {
		return nil, fmt.Errorf("memfs %s: create of root", fs.name)
	}
	dir, err := fs.walk(comps[:len(comps)-1])
	if err != nil {
		return nil, err
	}
	name := comps[len(comps)-1]
	if _, exists := dir.children[name]; exists {
		return nil, fmt.Errorf("memfs %s: %q exists", fs.name, path)
	}
	fs.clock.Advance(fs.params.InodeOp + fs.params.DirOp)
	ino := fs.newInode(name, false, dir)
	fs.applyCreateOptions(ino, opts)
	ino.nlink = 1
	ino.refs = 1
	dir.children[name] = ino
	fs.stats.Counter("creates").Inc()
	return &File{inode: ino}, nil
}

// CreateTemp makes an anonymous file with no directory entry — the
// backing object for volatile heap and stack segments in file-only
// memory. It is freed when its last handle closes.
func (fs *FS) CreateTemp(tag string, opts CreateOptions) (*File, error) {
	fs.clock.Advance(fs.params.InodeOp)
	ino := fs.newInode(tag, false, fs.root)
	fs.applyCreateOptions(ino, opts)
	ino.refs = 1
	fs.stats.Counter("creates").Inc()
	return &File{inode: ino}, nil
}

func (fs *FS) applyCreateOptions(ino *Inode, opts CreateOptions) {
	if opts.Mode != 0 {
		ino.mode = opts.Mode
	}
	ino.dur = opts.Durability
	if opts.Discardable {
		ino.discard = true
		fs.discardables = append(fs.discardables, ino)
	}
}

// Open returns a handle to an existing file.
func (fs *FS) Open(path string) (*File, error) {
	ino, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if ino.dir {
		return nil, fmt.Errorf("memfs %s: %q is a directory", fs.name, path)
	}
	fs.clock.Advance(fs.params.InodeOp)
	ino.refs++
	fs.stats.Counter("opens").Inc()
	return &File{inode: ino}, nil
}

func (fs *FS) lookup(path string) (*Inode, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	if len(comps) == 0 {
		return fs.root, nil
	}
	dir, err := fs.walk(comps[:len(comps)-1])
	if err != nil {
		return nil, err
	}
	fs.clock.Advance(fs.params.DirOp)
	ino, ok := dir.children[comps[len(comps)-1]]
	if !ok {
		return nil, fmt.Errorf("memfs %s: %q not found", fs.name, path)
	}
	return ino, nil
}

// Stat returns the inode for a path (directories included).
func (fs *FS) Stat(path string) (*Inode, error) {
	return fs.lookup(path)
}

// Unlink removes a file's directory entry. Storage is freed once the
// last open handle or mapping drops.
func (fs *FS) Unlink(path string) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(comps) == 0 {
		return fmt.Errorf("memfs %s: unlink of root", fs.name)
	}
	dir, err := fs.walk(comps[:len(comps)-1])
	if err != nil {
		return err
	}
	name := comps[len(comps)-1]
	ino, ok := dir.children[name]
	if !ok {
		return fmt.Errorf("memfs %s: %q not found", fs.name, path)
	}
	if ino.dir {
		if len(ino.children) > 0 {
			return fmt.Errorf("memfs %s: directory %q not empty", fs.name, path)
		}
		fs.clock.Advance(fs.params.DirOp + fs.params.InodeOp)
		delete(dir.children, name)
		delete(fs.inodes, ino.ino)
		return nil
	}
	fs.clock.Advance(fs.params.DirOp + fs.params.InodeOp)
	delete(dir.children, name)
	ino.nlink--
	fs.stats.Counter("unlinks").Inc()
	return fs.maybeFree(ino)
}

// Rename moves a file or directory to a new path. With quotas in
// force the allocation is re-accounted against the destination's
// parent chain; the move fails if the destination quota cannot absorb
// it.
func (fs *FS) Rename(oldPath, newPath string) error {
	oldComps, err := splitPath(oldPath)
	if err != nil {
		return err
	}
	newComps, err := splitPath(newPath)
	if err != nil {
		return err
	}
	if len(oldComps) == 0 || len(newComps) == 0 {
		return fmt.Errorf("memfs %s: rename involving root", fs.name)
	}
	oldDir, err := fs.walk(oldComps[:len(oldComps)-1])
	if err != nil {
		return err
	}
	oldName := oldComps[len(oldComps)-1]
	ino, ok := oldDir.children[oldName]
	if !ok {
		return fmt.Errorf("memfs %s: %q not found", fs.name, oldPath)
	}
	newDir, err := fs.walk(newComps[:len(newComps)-1])
	if err != nil {
		return err
	}
	newName := newComps[len(newComps)-1]
	if existing, exists := newDir.children[newName]; exists {
		if existing == ino {
			return nil
		}
		return fmt.Errorf("memfs %s: %q exists", fs.name, newPath)
	}
	if ino.dir {
		// Reject moving a directory into its own subtree.
		for d := newDir; d != nil; d = d.parent {
			if d == ino {
				return fmt.Errorf("memfs %s: cannot move %q into itself", fs.name, oldPath)
			}
		}
	}
	// Quota re-accounting: uncharge the old chain, charge the new one.
	pages := ino.subtreePages()
	fs.unchargeQuota(ino, pages)
	oldParent := ino.parent
	ino.parent = newDir
	if err := fs.chargeQuota(ino, pages); err != nil {
		ino.parent = oldParent
		if cerr := fs.chargeQuota(ino, pages); cerr != nil {
			return fmt.Errorf("memfs %s: rename rollback failed: %v (after %w)", fs.name, cerr, err)
		}
		return err
	}
	fs.clock.Advance(2 * fs.params.DirOp)
	delete(oldDir.children, oldName)
	newDir.children[newName] = ino
	ino.name = newName
	return nil
}

// subtreePages returns the allocated pages of a file, or of every file
// beneath a directory.
func (i *Inode) subtreePages() uint64 {
	if !i.dir {
		return i.AllocatedPages()
	}
	return i.usageFrames
}

// Link creates an additional directory entry (hard link) for an
// existing file. Both names refer to the same inode; storage is freed
// only when the last link and reference drop — the file-grain
// reference counting §3.1/§4.1 propose. Quota accounting stays with
// the inode's original parent directory (like group-less POSIX quota,
// usage follows the file, not its link names).
func (fs *FS) Link(oldPath, newPath string) error {
	ino, err := fs.lookup(oldPath)
	if err != nil {
		return err
	}
	if ino.dir {
		return fmt.Errorf("memfs %s: hard link to directory %q", fs.name, oldPath)
	}
	newComps, err := splitPath(newPath)
	if err != nil {
		return err
	}
	if len(newComps) == 0 {
		return fmt.Errorf("memfs %s: link at root", fs.name)
	}
	newDir, err := fs.walk(newComps[:len(newComps)-1])
	if err != nil {
		return err
	}
	newName := newComps[len(newComps)-1]
	if _, exists := newDir.children[newName]; exists {
		return fmt.Errorf("memfs %s: %q exists", fs.name, newPath)
	}
	fs.clock.Advance(fs.params.DirOp + fs.params.InodeOp)
	newDir.children[newName] = ino
	ino.nlink++
	return nil
}

// ReadDir lists the names in a directory, sorted.
func (fs *FS) ReadDir(path string) ([]string, error) {
	ino, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if !ino.dir {
		return nil, fmt.Errorf("memfs %s: %q is not a directory", fs.name, path)
	}
	names := make([]string, 0, len(ino.children))
	for name := range ino.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// maybeFree releases an inode's storage when fully unreferenced.
func (fs *FS) maybeFree(ino *Inode) error {
	if ino.nlink > 0 || ino.refs > 0 {
		return nil
	}
	if err := fs.freeExtents(ino); err != nil {
		return err
	}
	delete(fs.inodes, ino.ino)
	if ino.discard {
		fs.removeDiscardable(ino)
	}
	return nil
}

// SetQuota caps the frames allocated under a directory (0 removes the
// cap). Setting a quota below current usage is allowed: existing data
// stays, new allocations fail until usage drops.
func (fs *FS) SetQuota(path string, frames uint64) error {
	ino, err := fs.lookup(path)
	if err != nil {
		return err
	}
	if !ino.dir {
		return fmt.Errorf("memfs %s: quota target %q is not a directory", fs.name, path)
	}
	fs.clock.Advance(fs.params.InodeOp)
	ino.quotaFrames = frames
	return nil
}

// QuotaUsage returns (used, quota) for a directory.
func (fs *FS) QuotaUsage(path string) (used, quota uint64, err error) {
	ino, err := fs.lookup(path)
	if err != nil {
		return 0, 0, err
	}
	if !ino.dir {
		return 0, 0, fmt.Errorf("memfs %s: %q is not a directory", fs.name, path)
	}
	return ino.usageFrames, ino.quotaFrames, nil
}

// chargeQuota walks the parent chain checking and recording n frames
// of new allocation. The chain is short (directory depth), so this is
// O(depth), never O(pages).
func (fs *FS) chargeQuota(ino *Inode, n uint64) error {
	for d := ino.parent; d != nil; d = d.parent {
		if d.quotaFrames != 0 && d.usageFrames+n > d.quotaFrames {
			return &QuotaError{Dir: d.name, Quota: d.quotaFrames, Used: d.usageFrames, Want: n}
		}
	}
	for d := ino.parent; d != nil; d = d.parent {
		d.usageFrames += n
	}
	return nil
}

// unchargeQuota releases n frames along the parent chain.
func (fs *FS) unchargeQuota(ino *Inode, n uint64) {
	for d := ino.parent; d != nil; d = d.parent {
		if d.usageFrames < n {
			d.usageFrames = 0
			continue
		}
		d.usageFrames -= n
	}
}

func (fs *FS) freeExtents(ino *Inode) error {
	fs.unchargeQuota(ino, ino.AllocatedPages())
	for _, e := range ino.extents {
		// O(1) security erase per extent (the paper's constant-time
		// erase requirement for reused volatile memory).
		fs.memory.EraseRangeEpoch(e.Start, e.Count)
		fs.untrackRun(e.Start, e.Count)
		if err := fs.freeRun(buddy.Run{Start: e.Start, Count: e.Count}); err != nil {
			return fmt.Errorf("memfs %s: freeing extent of inode %d: %w", fs.name, ino.ino, err)
		}
	}
	ino.extents = nil
	return nil
}

func (fs *FS) removeDiscardable(ino *Inode) {
	for i, d := range fs.discardables {
		if d == ino {
			fs.discardables = append(fs.discardables[:i], fs.discardables[i+1:]...)
			return
		}
	}
}

// findExtent returns the extent covering the logical page, charging one
// extent lookup. ok is false for holes.
func (ino *Inode) findExtent(page uint64) (ExtentRun, bool) {
	fs := ino.fs
	fs.clock.Advance(fs.params.ExtentOp)
	i := sort.Search(len(ino.extents), func(i int) bool {
		return ino.extents[i].Logical > page
	})
	if i == 0 {
		return ExtentRun{}, false
	}
	e := ino.extents[i-1]
	if page < e.End() {
		return e, true
	}
	return ExtentRun{}, false
}

// insertExtent adds a run, merging with neighbours when both the
// logical and physical ranges are contiguous.
func (ino *Inode) insertExtent(run ExtentRun) {
	fs := ino.fs
	fs.clock.Advance(fs.params.ExtentOp)
	fs.trackRun(ino, run.Start, run.Count)
	i := sort.Search(len(ino.extents), func(i int) bool {
		return ino.extents[i].Logical > run.Logical
	})
	// Merge left.
	if i > 0 {
		left := &ino.extents[i-1]
		if left.End() == run.Logical && left.Start+mem.Frame(left.Count) == run.Start {
			left.Count += run.Count
			// Try merging the (possibly now adjacent) right neighbour.
			if i < len(ino.extents) {
				right := ino.extents[i]
				if left.End() == right.Logical && left.Start+mem.Frame(left.Count) == right.Start {
					left.Count += right.Count
					ino.extents = append(ino.extents[:i], ino.extents[i+1:]...)
				}
			}
			return
		}
	}
	// Merge right.
	if i < len(ino.extents) {
		right := &ino.extents[i]
		if run.End() == right.Logical && run.Start+mem.Frame(run.Count) == right.Start {
			right.Logical = run.Logical
			right.Start = run.Start
			right.Count += run.Count
			return
		}
	}
	ino.extents = append(ino.extents, ExtentRun{})
	copy(ino.extents[i+1:], ino.extents[i:])
	ino.extents[i] = run
}

// File is an open handle. Handles are not safe for concurrent use.
// Every handle carries its own file position for the sequential
// Read/Write/Seek interface (file.go); the positional ReadAt/WriteAt
// ignore it, as in POSIX.
type File struct {
	inode  *Inode
	closed bool
	pos    uint64
	append bool // every Write lands at EOF (O_APPEND)
}

// Inode returns the file's inode.
func (f *File) Inode() *Inode { return f.inode }

// FS returns the owning file system.
func (f *File) FS() *FS { return f.inode.fs }

// Close drops the handle's reference; the last reference of an
// unlinked (or temp) file frees its storage.
func (f *File) Close() error {
	if f.closed {
		return fmt.Errorf("memfs: double close of inode %d", f.inode.ino)
	}
	f.closed = true
	f.inode.refs--
	return f.inode.fs.maybeFree(f.inode)
}

// Ref takes an additional reference (a mapping pins the file).
func (f *File) Ref() { f.inode.refs++ }

// Unref drops a reference taken with Ref.
func (f *File) Unref() error {
	f.inode.refs--
	return f.inode.fs.maybeFree(f.inode)
}

// Truncate sets the file size. Growing an Extent-policy file allocates
// and zeroes backing extents immediately (PMFS-style preallocation);
// growing a PerPage file only updates the size (pages appear on first
// use). Shrinking frees extents beyond the new size under either
// policy.
func (f *File) Truncate(size uint64) error {
	ino := f.inode
	fs := ino.fs
	fs.clock.Advance(fs.params.InodeOp)
	newPages := (size + mem.FrameSize - 1) / mem.FrameSize
	if size < ino.size {
		if err := f.shrinkTo(newPages); err != nil {
			return err
		}
		ino.size = size
		return nil
	}
	if fs.policy == Extent {
		if err := f.allocateRange(ino.Pages(), newPages-ino.Pages()); err != nil {
			return err
		}
	}
	ino.size = size
	return nil
}

func (f *File) shrinkTo(pages uint64) error {
	ino := f.inode
	fs := ino.fs
	kept := ino.extents[:0]
	for _, e := range ino.extents {
		switch {
		case e.End() <= pages:
			kept = append(kept, e)
		case e.Logical >= pages:
			fs.memory.EraseRangeEpoch(e.Start, e.Count)
			fs.untrackRun(e.Start, e.Count)
			if err := fs.freeRun(buddy.Run{Start: e.Start, Count: e.Count}); err != nil {
				return err
			}
			fs.unchargeQuota(ino, e.Count)
			fs.clock.Advance(fs.params.ExtentOp)
		default: // split
			keep := pages - e.Logical
			kept = append(kept, ExtentRun{Logical: e.Logical, Start: e.Start, Count: keep})
			dropStart := e.Start + mem.Frame(keep)
			fs.memory.EraseRangeEpoch(dropStart, e.Count-keep)
			fs.untrackRun(dropStart, e.Count-keep)
			if err := fs.freeRun(buddy.Run{Start: dropStart, Count: e.Count - keep}); err != nil {
				return err
			}
			fs.unchargeQuota(ino, e.Count-keep)
			fs.clock.Advance(fs.params.ExtentOp)
		}
	}
	ino.extents = kept
	return nil
}

// allocateRange backs [page, page+count) with extents, using as few
// runs as the allocator can provide (halving on fragmentation). The
// operation is atomic: on failure every run already obtained is
// returned and the inode is unchanged, so callers can retry safely
// after relieving pressure.
func (f *File) allocateRange(page, count uint64) error {
	ino := f.inode
	fs := ino.fs
	var runs []buddy.Run
	rollback := func(cause error) error {
		for _, r := range runs {
			fs.unchargeQuota(ino, r.Count)
			if ferr := fs.freeRun(r); ferr != nil {
				return fmt.Errorf("memfs %s: rollback failed: %v (after %w)", fs.name, ferr, cause)
			}
		}
		return cause
	}
	remaining := count
	for remaining > 0 {
		want := remaining
		var run buddy.Run
		for {
			r, err := fs.allocRun(want)
			if err == nil {
				run = r
				break
			}
			if want == 1 {
				return rollback(fmt.Errorf("memfs %s: out of space for inode %d: %w", fs.name, ino.ino, err))
			}
			want /= 2
			fs.clock.Advance(fs.params.BitmapOp)
		}
		if err := fs.chargeQuota(ino, run.Count); err != nil {
			if ferr := fs.freeRun(run); ferr != nil {
				return ferr
			}
			return rollback(err)
		}
		runs = append(runs, run)
		remaining -= run.Count
	}
	// Commit: zero and insert every run.
	for _, run := range runs {
		// PMFS zeroes newly allocated blocks (data must not leak
		// between files). Charged eagerly, per page.
		fs.memory.ZeroFrames(run.Start, run.Count)
		ino.insertExtent(ExtentRun{Logical: page, Start: run.Start, Count: run.Count})
		fs.stats.Counter("extent_allocs").Inc()
		page += run.Count
	}
	return nil
}

// PageFrame resolves the frame backing a file page. With allocate set
// (write or fault path) a missing page is backed on demand: PerPage
// allocates exactly one zeroed frame; Extent fills the hole with an
// extent run. The boolean result reports whether a hole was filled.
func (f *File) PageFrame(page uint64, allocate bool) (mem.Frame, bool, error) {
	ino := f.inode
	fs := ino.fs
	if page >= ino.Pages() {
		return 0, false, fmt.Errorf("memfs %s: page %d beyond EOF (%d pages)", fs.name, page, ino.Pages())
	}
	fs.clock.Advance(fs.params.PageCacheLookup)
	if e, ok := ino.findExtent(page); ok {
		return e.Start + mem.Frame(page-e.Logical), false, nil
	}
	if !allocate {
		return 0, false, fmt.Errorf("memfs %s: hole at page %d of inode %d", fs.name, page, ino.ino)
	}
	switch fs.policy {
	case PerPage:
		if err := fs.chargeQuota(ino, 1); err != nil {
			return 0, false, err
		}
		fr, err := fs.allocFrame()
		if err != nil {
			fs.unchargeQuota(ino, 1)
			return 0, false, fmt.Errorf("memfs %s: %w", fs.name, err)
		}
		fs.memory.ZeroFrames(fr, 1)
		ino.insertExtent(ExtentRun{Logical: page, Start: fr, Count: 1})
		fs.stats.Counter("page_allocs").Inc()
		return fr, true, nil
	default: // Extent: fill the hole containing page
		if err := f.allocateRange(page, 1); err != nil {
			return 0, false, err
		}
		e, ok := ino.findExtent(page)
		if !ok {
			return 0, false, fmt.Errorf("memfs %s: internal: page %d still a hole", fs.name, page)
		}
		return e.Start + mem.Frame(page-e.Logical), true, nil
	}
}

// EnsureContiguous (re)allocates the whole file as a single extent of
// the given page count, used by file-only memory to create mappable
// ranges. The file must be empty (freshly created); the cost is one
// extent allocation plus the O(1) epoch zero — *not* per page.
func (f *File) EnsureContiguous(pages uint64) error {
	ino := f.inode
	fs := ino.fs
	if len(ino.extents) != 0 {
		return fmt.Errorf("memfs %s: EnsureContiguous on non-empty inode %d", fs.name, ino.ino)
	}
	if pages == 0 {
		return fmt.Errorf("memfs %s: empty contiguous allocation", fs.name)
	}
	if err := fs.chargeQuota(ino, pages); err != nil {
		return err
	}
	run, err := fs.allocRun(pages)
	if err != nil {
		fs.unchargeQuota(ino, pages)
		return fmt.Errorf("memfs %s: contiguous allocation of %d pages: %w", fs.name, pages, err)
	}
	// O(1) erase instead of eager zeroing: this is what keeps the
	// allocation constant-time.
	fs.memory.EraseRangeEpoch(run.Start, run.Count)
	ino.insertExtent(ExtentRun{Logical: 0, Start: run.Start, Count: run.Count})
	ino.size = pages * mem.FrameSize
	fs.stats.Counter("extent_allocs").Inc()
	return nil
}

// EnsureExtents backs an empty file with the given page count using as
// few maximal extents as the allocator can provide — the terabyte-scale
// variant of EnsureContiguous. Each extent is epoch-erased (O(1) per
// extent), so total cost is O(extents), where extents is bounded by
// pages / max-buddy-block (1 GiB), never O(pages).
//
// alignPages constrains every extent's size (and therefore start) to a
// multiple of the given power-of-two page count (1 = unconstrained).
// File-only memory passes its subtree-link granularity here so the
// resulting extents stay linkable.
func (f *File) EnsureExtents(pages, alignPages uint64) error {
	ino := f.inode
	fs := ino.fs
	if len(ino.extents) != 0 {
		return fmt.Errorf("memfs %s: EnsureExtents on non-empty inode %d", fs.name, ino.ino)
	}
	if pages == 0 {
		return fmt.Errorf("memfs %s: empty allocation", fs.name)
	}
	if alignPages == 0 {
		alignPages = 1
	}
	if alignPages&(alignPages-1) != 0 {
		return fmt.Errorf("memfs %s: alignment %d not a power of two", fs.name, alignPages)
	}
	if pages%alignPages != 0 {
		return fmt.Errorf("memfs %s: %d pages not a multiple of alignment %d", fs.name, pages, alignPages)
	}
	maxRun := uint64(1) << buddy.MaxOrder
	var runs []buddy.Run
	rollback := func(cause error) error {
		for _, r := range runs {
			fs.unchargeQuota(ino, r.Count)
			if ferr := fs.freeRun(r); ferr != nil {
				return fmt.Errorf("memfs %s: rollback failed: %v (after %w)", fs.name, ferr, cause)
			}
		}
		return cause
	}
	remaining := pages
	for remaining > 0 {
		want := remaining
		if want > maxRun {
			want = maxRun
		}
		var run buddy.Run
		for {
			r, err := fs.allocRun(want)
			if err == nil {
				run = r
				break
			}
			if want <= alignPages {
				return rollback(fmt.Errorf("memfs %s: out of space for inode %d: %w", fs.name, ino.ino, err))
			}
			want = want / 2 / alignPages * alignPages
			if want < alignPages {
				want = alignPages
			}
			fs.clock.Advance(fs.params.BitmapOp)
		}
		if err := fs.chargeQuota(ino, run.Count); err != nil {
			if ferr := fs.freeRun(run); ferr != nil {
				return ferr
			}
			return rollback(err)
		}
		runs = append(runs, run)
		remaining -= run.Count
	}
	logical := uint64(0)
	for _, run := range runs {
		fs.memory.EraseRangeEpoch(run.Start, run.Count)
		ino.insertExtent(ExtentRun{Logical: logical, Start: run.Start, Count: run.Count})
		fs.stats.Counter("extent_allocs").Inc()
		logical += run.Count
	}
	ino.size = pages * mem.FrameSize
	return nil
}

// ReadAt implements read(2): kernel copy from file pages into buf.
// It charges the syscall overhead plus a per-page copy cost, and
// returns the number of bytes read (short at EOF).
func (f *File) ReadAt(buf []byte, off uint64) (int, error) {
	ino := f.inode
	fs := ino.fs
	fs.clock.Advance(fs.params.SyscallOverhead)
	if off >= ino.size {
		return 0, nil
	}
	n := uint64(len(buf))
	if off+n > ino.size {
		n = ino.size - off
	}
	read := uint64(0)
	for read < n {
		page := (off + read) / mem.FrameSize
		pgOff := (off + read) % mem.FrameSize
		chunk := mem.FrameSize - pgOff
		if chunk > n-read {
			chunk = n - read
		}
		fs.clock.Advance(fs.params.ReadPerPage())
		e, ok := ino.findExtent(page)
		if !ok {
			// Hole: reads as zeros.
			for i := uint64(0); i < chunk; i++ {
				buf[read+i] = 0
			}
		} else {
			fr := e.Start + mem.Frame(page-e.Logical)
			fs.record(fr, false)
			fs.memory.ReadAt(fr.Addr()+mem.PhysAddr(pgOff), buf[read:read+chunk])
		}
		read += chunk
	}
	return int(read), nil
}

// WriteAt implements write(2): kernel copy into file pages, allocating
// and extending as needed.
func (f *File) WriteAt(buf []byte, off uint64) (int, error) {
	ino := f.inode
	fs := ino.fs
	fs.clock.Advance(fs.params.SyscallOverhead)
	end := off + uint64(len(buf))
	if end > ino.size {
		if err := f.Truncate(end); err != nil {
			return 0, err
		}
	}
	written := uint64(0)
	for written < uint64(len(buf)) {
		page := (off + written) / mem.FrameSize
		pgOff := (off + written) % mem.FrameSize
		chunk := mem.FrameSize - pgOff
		if chunk > uint64(len(buf))-written {
			chunk = uint64(len(buf)) - written
		}
		fs.clock.Advance(fs.params.ReadPerPage())
		fr, _, err := f.PageFrame(page, true)
		if err != nil {
			return int(written), err
		}
		fs.record(fr, true)
		fs.memory.WriteAt(fr.Addr()+mem.PhysAddr(pgOff), buf[written:written+chunk])
		written += chunk
	}
	return int(written), nil
}

// SetDurability re-marks the file volatile or persistent — the paper's
// "marked at any time as volatile or persistent" operation. O(1).
func (f *File) SetDurability(d Durability) {
	f.inode.fs.clock.Advance(f.inode.fs.params.InodeOp)
	f.inode.dur = d
}

// SetDiscardable toggles pressure-reclaimability.
func (f *File) SetDiscardable(v bool) {
	ino := f.inode
	ino.fs.clock.Advance(ino.fs.params.InodeOp)
	if v && !ino.discard {
		ino.discard = true
		ino.fs.discardables = append(ino.fs.discardables, ino)
	} else if !v && ino.discard {
		ino.discard = false
		ino.fs.removeDiscardable(ino)
	}
}

// DiscardForPressure deletes discardable files (oldest first) until at
// least want frames have been freed or no candidates remain. It
// returns the number of frames reclaimed. Per reclaimed *file* the
// work is O(extents) — never O(pages) — which is the paper's
// file-grain reclamation claim.
func (fs *FS) DiscardForPressure(want uint64) (uint64, error) {
	var freed uint64
	candidates := append([]*Inode(nil), fs.discardables...)
	for _, ino := range candidates {
		if freed >= want {
			break
		}
		if ino.refs > 0 {
			continue // open or mapped: not reclaimable right now
		}
		freed += ino.AllocatedPages()
		// Remove any directory entry pointing at it.
		fs.forgetInode(fs.root, ino)
		ino.nlink = 0
		if err := fs.maybeFree(ino); err != nil {
			return freed, err
		}
		fs.stats.Counter("discards").Inc()
	}
	return freed, nil
}

func (fs *FS) forgetInode(dir *Inode, target *Inode) {
	for name, child := range dir.children {
		if child == target {
			delete(dir.children, name)
			fs.clock.Advance(fs.params.DirOp)
			return
		}
		if child.dir {
			fs.forgetInode(child, target)
		}
	}
}

// Remount simulates recovery after a crash: volatile files disappear,
// persistent files (and directories) survive. Open handles are dead
// after a crash, so all refs reset. Returns the number of files
// dropped.
func (fs *FS) Remount() (int, error) {
	dropped := 0
	var scrub func(dir *Inode) error
	scrub = func(dir *Inode) error {
		for name, child := range dir.children {
			if child.dir {
				if err := scrub(child); err != nil {
					return err
				}
				continue
			}
			child.refs = 0
			if child.dur == Volatile {
				delete(dir.children, name)
				child.nlink = 0
				if err := fs.maybeFree(child); err != nil {
					return err
				}
				dropped++
			}
		}
		return nil
	}
	if err := scrub(fs.root); err != nil {
		return dropped, err
	}
	// Anonymous temp files never survive.
	for ino, i := range fs.inodes {
		if !i.dir && i.nlink == 0 {
			i.refs = 0
			if err := fs.maybeFree(i); err != nil {
				return dropped, err
			}
			delete(fs.inodes, ino)
			dropped++
		}
	}
	fs.stats.Counter("remounts").Inc()
	return dropped, nil
}

// RecoverMetadata models remount-time metadata replay: the file
// system re-reads every surviving inode and walks its extent list —
// one inode operation per file plus one extent operation per run. The
// cost is O(extents): with the Extent policy a multi-gigabyte file is
// typically a single run, so recovery does not grow with file size.
// Returns the inode and extent counts replayed.
func (fs *FS) RecoverMetadata() (inodes, extents uint64) {
	for _, ino := range fs.inodes {
		inodes++
		extents += uint64(len(ino.extents))
	}
	fs.clock.Advance(sim.Time(inodes)*fs.params.InodeOp + sim.Time(extents)*fs.params.ExtentOp)
	return inodes, extents
}

// CheckInvariants validates that no two files share frames and that
// every extent lies inside the block region.
func (fs *FS) CheckInvariants() error {
	owner := make(map[mem.Frame]uint64)
	for _, ino := range fs.inodes {
		var prevEnd uint64
		for idx, e := range ino.extents {
			if idx > 0 && e.Logical < prevEnd {
				return fmt.Errorf("memfs %s: inode %d extents overlap logically", fs.name, ino.ino)
			}
			prevEnd = e.End()
			for f := e.Start; f < e.Start+mem.Frame(e.Count); f++ {
				if other, dup := owner[f]; dup {
					return fmt.Errorf("memfs %s: frame %d owned by inodes %d and %d", fs.name, f, other, ino.ino)
				}
				owner[f] = ino.ino
			}
		}
	}
	return fs.bud.CheckInvariants()
}
