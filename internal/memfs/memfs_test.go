package memfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// newFS mounts a file system of the given policy over an NVM region.
func newFS(t *testing.T, policy AllocPolicy) (*FS, *mem.Memory, *sim.Clock) {
	t.Helper()
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	m, err := mem.New(clock, &params, mem.Config{DRAMFrames: 1024, NVMFrames: 8192})
	if err != nil {
		t.Fatal(err)
	}
	nvm, _ := m.Region(mem.NVM)
	fs, err := New("test", policy, clock, &params, m, nvm.Start, nvm.Count)
	if err != nil {
		t.Fatal(err)
	}
	return fs, m, clock
}

func TestMkdirCreateOpenUnlink(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	if err := fs.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/data/file1", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Open("/data/file1")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("/data")
	if err != nil || len(names) != 1 || names[0] != "file1" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if err := fs.Unlink("/data/file1"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/data/file1"); err == nil {
		t.Fatal("open of unlinked file succeeded")
	}
	if err := fs.Unlink("/data"); err != nil {
		t.Fatalf("rmdir empty dir: %v", err)
	}
}

func TestPathValidation(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	if _, err := fs.Create("relative", CreateOptions{}); err == nil {
		t.Fatal("relative path accepted")
	}
	if _, err := fs.Create("/a/../b", CreateOptions{}); err == nil {
		t.Fatal(".. accepted")
	}
	if _, err := fs.Create("/missing/file", CreateOptions{}); err == nil {
		t.Fatal("create under missing dir accepted")
	}
	if err := fs.Mkdir("/"); err == nil {
		t.Fatal("mkdir / accepted")
	}
}

func TestDuplicateCreateRejected(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	f, err := fs.Create("/x", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := fs.Create("/x", CreateOptions{}); err == nil {
		t.Fatal("duplicate create accepted")
	}
}

func TestUnlinkNonEmptyDirRejected(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/d/f", CreateOptions{})
	f.Close()
	if err := fs.Unlink("/d"); err == nil {
		t.Fatal("unlink of non-empty dir accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, policy := range []AllocPolicy{PerPage, Extent} {
		fs, _, _ := newFS(t, policy)
		f, err := fs.Create("/f", CreateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte("o1-memory!"), 2000) // ~20 KB, crosses pages
		if n, err := f.WriteAt(data, 100); err != nil || n != len(data) {
			t.Fatalf("[%v] WriteAt = %d, %v", policy, n, err)
		}
		got := make([]byte, len(data))
		if n, err := f.ReadAt(got, 100); err != nil || n != len(data) {
			t.Fatalf("[%v] ReadAt = %d, %v", policy, n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("[%v] data mismatch", policy)
		}
		// Leading hole reads as zeros.
		head := make([]byte, 100)
		if _, err := f.ReadAt(head, 0); err != nil {
			t.Fatal(err)
		}
		for i, b := range head {
			if b != 0 {
				t.Fatalf("[%v] hole byte %d = %#x", policy, i, b)
			}
		}
		f.Close()
	}
}

func TestReadPastEOF(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	f, _ := fs.Create("/f", CreateOptions{})
	defer f.Close()
	if _, err := f.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if err != nil || n != 3 {
		t.Fatalf("short read = %d, %v", n, err)
	}
	n, err = f.ReadAt(buf, 100)
	if err != nil || n != 0 {
		t.Fatalf("read past EOF = %d, %v", n, err)
	}
}

func TestTruncatePoliciesDiffer(t *testing.T) {
	// Extent policy preallocates, PerPage does not.
	fsE, _, _ := newFS(t, Extent)
	fE, _ := fsE.Create("/f", CreateOptions{})
	if err := fE.Truncate(100 * mem.FrameSize); err != nil {
		t.Fatal(err)
	}
	if got := fE.Inode().AllocatedPages(); got != 100 {
		t.Fatalf("extent policy allocated %d pages on truncate, want 100", got)
	}

	fsP, _, _ := newFS(t, PerPage)
	fP, _ := fsP.Create("/f", CreateOptions{})
	if err := fP.Truncate(100 * mem.FrameSize); err != nil {
		t.Fatal(err)
	}
	if got := fP.Inode().AllocatedPages(); got != 0 {
		t.Fatalf("per-page policy allocated %d pages on truncate, want 0", got)
	}
	// Demand-allocate one page.
	if _, filled, err := fP.PageFrame(5, true); err != nil || !filled {
		t.Fatalf("PageFrame: filled=%v err=%v", filled, err)
	}
	if got := fP.Inode().AllocatedPages(); got != 1 {
		t.Fatalf("AllocatedPages = %d after one fault", got)
	}
}

func TestTruncateShrinkFreesFrames(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	free0 := fs.FreeFrames()
	f, _ := fs.Create("/f", CreateOptions{})
	if err := f.Truncate(64 * mem.FrameSize); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(16 * mem.FrameSize); err != nil {
		t.Fatal(err)
	}
	if got := f.Inode().AllocatedPages(); got != 16 {
		t.Fatalf("AllocatedPages = %d after shrink, want 16", got)
	}
	if err := f.Truncate(0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if fs.FreeFrames() != free0 {
		t.Fatalf("frames leaked: %d -> %d", free0, fs.FreeFrames())
	}
}

func TestPageFrameBounds(t *testing.T) {
	fs, _, _ := newFS(t, PerPage)
	f, _ := fs.Create("/f", CreateOptions{})
	defer f.Close()
	if _, _, err := f.PageFrame(0, true); err == nil {
		t.Fatal("PageFrame beyond EOF accepted")
	}
	f.Truncate(2 * mem.FrameSize)
	if _, _, err := f.PageFrame(1, false); err == nil {
		t.Fatal("hole read without allocate succeeded")
	}
}

func TestEnsureContiguousSingleExtent(t *testing.T) {
	fs, _, clock := newFS(t, Extent)
	f, _ := fs.Create("/big", CreateOptions{})
	t0 := clock.Now()
	if err := f.EnsureContiguous(2048); err != nil { // 8 MiB
		t.Fatal(err)
	}
	bigCost := clock.Since(t0)
	exts := f.Inode().Extents()
	if len(exts) != 1 || exts[0].Count != 2048 {
		t.Fatalf("extents = %+v, want single 2048-page run", exts)
	}
	// O(1): a small allocation must cost the same order (no per-page
	// term). Compare against a 16-page allocation.
	g, _ := fs.Create("/small", CreateOptions{})
	t1 := clock.Now()
	if err := g.EnsureContiguous(16); err != nil {
		t.Fatal(err)
	}
	smallCost := clock.Since(t1)
	if bigCost > smallCost*4 {
		t.Fatalf("contiguous alloc not O(1): 2048 pages cost %v, 16 pages cost %v", bigCost, smallCost)
	}
	if err := f.EnsureContiguous(1); err == nil {
		t.Fatal("EnsureContiguous on non-empty file accepted")
	}
}

func TestTempFileFreedOnClose(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	free0 := fs.FreeFrames()
	f, err := fs.CreateTemp("heap", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.EnsureContiguous(128); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.FreeFrames() != free0 {
		t.Fatalf("temp file leaked frames: %d -> %d", free0, fs.FreeFrames())
	}
	if err := f.Close(); err == nil {
		t.Fatal("double close accepted")
	}
}

func TestRefUnrefPinning(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	f, _ := fs.Create("/f", CreateOptions{})
	f.Truncate(4 * mem.FrameSize)
	f.Ref() // simulate a mapping
	f.Close()
	if err := fs.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	// Still referenced by the mapping: pages must remain.
	if got := f.Inode().AllocatedPages(); got != 4 {
		t.Fatalf("pages freed while mapped: %d", got)
	}
	if err := f.Unref(); err != nil {
		t.Fatal(err)
	}
	if got := f.Inode().AllocatedPages(); got != 0 {
		t.Fatalf("pages not freed after last unref: %d", got)
	}
}

func TestFreedDataIsErased(t *testing.T) {
	fs, m, _ := newFS(t, Extent)
	f, _ := fs.Create("/secret", CreateOptions{})
	if _, err := f.WriteAt([]byte("classified"), 0); err != nil {
		t.Fatal(err)
	}
	frame, _, err := f.PageFrame(0, false)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.Unlink("/secret"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	m.ReadAt(frame.Addr(), buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("freed file data readable — security erase missing")
		}
	}
}

func TestDurabilityAcrossRemount(t *testing.T) {
	fs, m, _ := newFS(t, Extent)
	p, _ := fs.Create("/keep", CreateOptions{Durability: Persistent})
	if _, err := p.WriteAt([]byte("durable"), 0); err != nil {
		t.Fatal(err)
	}
	v, _ := fs.Create("/lose", CreateOptions{})
	if _, err := v.WriteAt([]byte("ephemeral"), 0); err != nil {
		t.Fatal(err)
	}
	tmp, _ := fs.CreateTemp("anon", CreateOptions{})
	tmp.Truncate(mem.FrameSize)

	m.Crash()
	dropped, err := fs.Remount()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Fatalf("dropped %d files, want 2 (volatile + temp)", dropped)
	}
	if _, err := fs.Open("/lose"); err == nil {
		t.Fatal("volatile file survived remount")
	}
	g, err := fs.Open("/keep")
	if err != nil {
		t.Fatalf("persistent file lost: %v", err)
	}
	buf := make([]byte, 7)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "durable" {
		t.Fatalf("persistent data corrupted: %q", buf)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSetDurabilityAtAnyTime(t *testing.T) {
	fs, m, _ := newFS(t, Extent)
	f, _ := fs.Create("/promote", CreateOptions{})
	if _, err := f.WriteAt([]byte("now-durable"), 0); err != nil {
		t.Fatal(err)
	}
	f.SetDurability(Persistent)
	m.Crash()
	if _, err := fs.Remount(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/promote"); err != nil {
		t.Fatal("promoted file did not survive")
	}
}

func TestDiscardForPressure(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	for _, name := range []string{"/cache1", "/cache2"} {
		f, err := fs.Create(name, CreateOptions{Discardable: true})
		if err != nil {
			t.Fatal(err)
		}
		f.Truncate(64 * mem.FrameSize)
		f.Close()
	}
	keep, _ := fs.Create("/important", CreateOptions{})
	keep.Truncate(64 * mem.FrameSize)
	keep.Close()

	freed, err := fs.DiscardForPressure(64)
	if err != nil {
		t.Fatal(err)
	}
	if freed < 64 {
		t.Fatalf("freed %d frames, want >= 64", freed)
	}
	if _, err := fs.Open("/cache1"); err == nil {
		t.Fatal("oldest discardable survived")
	}
	if _, err := fs.Open("/cache2"); err != nil {
		t.Fatal("second discardable reclaimed unnecessarily")
	}
	if _, err := fs.Open("/important"); err != nil {
		t.Fatal("non-discardable file reclaimed")
	}
}

func TestDiscardSkipsBusyFiles(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	f, _ := fs.Create("/cache", CreateOptions{Discardable: true})
	f.Truncate(16 * mem.FrameSize)
	// Handle still open: must not be discarded.
	freed, err := fs.DiscardForPressure(1)
	if err != nil {
		t.Fatal(err)
	}
	if freed != 0 {
		t.Fatal("discarded an open file")
	}
	f.Close()
	freed, err = fs.DiscardForPressure(1)
	if err != nil || freed == 0 {
		t.Fatalf("discard after close: freed=%d err=%v", freed, err)
	}
}

func TestModeIsFileGrain(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	f, _ := fs.Create("/ro", CreateOptions{Mode: pagetable.FlagRead | pagetable.FlagUser})
	defer f.Close()
	if f.Inode().Mode()&pagetable.FlagWrite != 0 {
		t.Fatal("mode not applied")
	}
}

func TestExtentMerging(t *testing.T) {
	fs, _, _ := newFS(t, PerPage)
	f, _ := fs.Create("/f", CreateOptions{})
	defer f.Close()
	f.Truncate(16 * mem.FrameSize)
	// Touch pages in order: per-page allocations from an empty buddy
	// region are contiguous, so extents must merge.
	for p := uint64(0); p < 8; p++ {
		if _, _, err := f.PageFrame(p, true); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(f.Inode().Extents()); got != 1 {
		t.Fatalf("extents = %d, want 1 (merged)", got)
	}
}

func TestStatAndInodeAccessors(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	f, _ := fs.Create("/f", CreateOptions{Durability: Persistent, Discardable: true})
	defer f.Close()
	f.Truncate(3*mem.FrameSize + 10)
	ino, err := fs.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	if ino.IsDir() || ino.Size() != 3*mem.FrameSize+10 || ino.Pages() != 4 {
		t.Fatalf("inode: dir=%v size=%d pages=%d", ino.IsDir(), ino.Size(), ino.Pages())
	}
	if ino.Durability() != Persistent || !ino.Discardable() {
		t.Fatal("attributes wrong")
	}
	if ino.Ino() == 0 {
		t.Fatal("ino zero")
	}
	root, err := fs.Stat("/")
	if err != nil || !root.IsDir() {
		t.Fatalf("root stat: %v", err)
	}
}

func TestPolicyAndDurabilityStrings(t *testing.T) {
	if PerPage.String() != "per-page" || Extent.String() != "extent" {
		t.Fatal("policy strings")
	}
	if Volatile.String() != "volatile" || Persistent.String() != "persistent" {
		t.Fatal("durability strings")
	}
}

// Property test: random writes followed by reads always return the
// written bytes, under both policies.
func TestWriteReadQuickProperty(t *testing.T) {
	for _, policy := range []AllocPolicy{PerPage, Extent} {
		fs, _, _ := newFS(t, policy)
		f, err := fs.Create("/q", CreateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		shadow := make(map[uint64]byte)
		fn := func(off32 uint32, data []byte) bool {
			if len(data) == 0 {
				return true
			}
			if len(data) > 4096 {
				data = data[:4096]
			}
			off := uint64(off32) % (1 << 22) // keep files <= 4 MiB
			if _, err := f.WriteAt(data, off); err != nil {
				t.Logf("WriteAt: %v", err)
				return false
			}
			for i, b := range data {
				shadow[off+uint64(i)] = b
			}
			got := make([]byte, len(data))
			if _, err := f.ReadAt(got, off); err != nil {
				return false
			}
			return bytes.Equal(got, data)
		}
		if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("[%v] %v", policy, err)
		}
		// Full shadow verification.
		for off, want := range shadow {
			var b [1]byte
			if _, err := f.ReadAt(b[:], off); err != nil {
				t.Fatal(err)
			}
			if b[0] != want {
				t.Fatalf("[%v] byte at %d = %#x, want %#x", policy, off, b[0], want)
			}
		}
		if err := fs.CheckInvariants(); err != nil {
			t.Fatalf("[%v] %v", policy, err)
		}
		f.Close()
	}
}

func TestQuotaEnforced(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	if err := fs.Mkdir("/limited"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetQuota("/limited", 10); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/limited/a", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Truncate(8 * mem.FrameSize); err != nil {
		t.Fatalf("within-quota truncate failed: %v", err)
	}
	// 3 more pages would exceed the 10-frame quota.
	err = f.Truncate(11 * mem.FrameSize)
	var qe *QuotaError
	if !errorsAs(err, &qe) {
		t.Fatalf("over-quota truncate: err = %v, want QuotaError", err)
	}
	used, quota, err := fs.QuotaUsage("/limited")
	if err != nil || used != 8 || quota != 10 {
		t.Fatalf("usage = %d/%d, %v", used, quota, err)
	}
	// Shrinking releases quota; growth then succeeds.
	if err := f.Truncate(2 * mem.FrameSize); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(10 * mem.FrameSize); err != nil {
		t.Fatalf("grow after shrink failed: %v", err)
	}
}

func TestQuotaNestedDirectories(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	if err := fs.Mkdir("/outer"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/outer/inner"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetQuota("/outer", 20); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/outer/inner/f", CreateOptions{})
	defer f.Close()
	if err := f.Truncate(16 * mem.FrameSize); err != nil {
		t.Fatal(err)
	}
	// The outer quota covers the inner subtree.
	if err := f.Truncate(24 * mem.FrameSize); err == nil {
		t.Fatal("nested allocation exceeded outer quota")
	}
	used, _, _ := fs.QuotaUsage("/outer")
	if used != 16 {
		t.Fatalf("outer usage = %d", used)
	}
	usedIn, quotaIn, _ := fs.QuotaUsage("/outer/inner")
	if usedIn != 16 || quotaIn != 0 {
		t.Fatalf("inner usage = %d/%d", usedIn, quotaIn)
	}
}

func TestQuotaPerPagePolicy(t *testing.T) {
	fs, _, _ := newFS(t, PerPage)
	if err := fs.Mkdir("/q"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetQuota("/q", 2); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/q/f", CreateOptions{})
	defer f.Close()
	if err := f.Truncate(5 * mem.FrameSize); err != nil {
		t.Fatal(err) // per-page: truncate reserves nothing
	}
	if _, _, err := f.PageFrame(0, true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.PageFrame(1, true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.PageFrame(2, true); err == nil {
		t.Fatal("third page exceeded 2-frame quota")
	}
}

func TestQuotaFreedOnUnlink(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetQuota("/d", 8); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/d/f", CreateOptions{})
	f.Truncate(8 * mem.FrameSize)
	f.Close()
	if err := fs.Unlink("/d/f"); err != nil {
		t.Fatal(err)
	}
	used, _, _ := fs.QuotaUsage("/d")
	if used != 0 {
		t.Fatalf("usage after unlink = %d", used)
	}
	g, _ := fs.Create("/d/g", CreateOptions{})
	defer g.Close()
	if err := g.Truncate(8 * mem.FrameSize); err != nil {
		t.Fatalf("quota not released: %v", err)
	}
}

func TestQuotaValidation(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	if err := fs.SetQuota("/missing", 1); err == nil {
		t.Fatal("quota on missing path accepted")
	}
	f, _ := fs.Create("/file", CreateOptions{})
	defer f.Close()
	if err := fs.SetQuota("/file", 1); err == nil {
		t.Fatal("quota on a file accepted")
	}
	if _, _, err := fs.QuotaUsage("/file"); err == nil {
		t.Fatal("QuotaUsage on a file accepted")
	}
}

func TestRootQuotaCapsTempFiles(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	if err := fs.SetQuota("/", 4); err != nil {
		t.Fatal(err)
	}
	f, err := fs.CreateTemp("anon", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.EnsureContiguous(8); err == nil {
		t.Fatal("temp file escaped the root quota")
	}
	if err := f.EnsureContiguous(4); err != nil {
		t.Fatalf("within-quota temp alloc failed: %v", err)
	}
}

// errorsAs avoids importing errors in many call sites above.
func errorsAs(err error, target interface{}) bool {
	return err != nil && errors.As(err, target)
}

func TestRenameBasic(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	f, _ := fs.Create("/old", CreateOptions{})
	if _, err := f.WriteAt([]byte("payload"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/old", "/dir/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/old"); err == nil {
		t.Fatal("old name still resolves")
	}
	g, err := fs.Open("/dir/new")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if _, err := g.ReadAt(buf, 0); err != nil || string(buf) != "payload" {
		t.Fatalf("renamed file content: %q, %v", buf, err)
	}
	g.Close()
}

func TestRenameValidation(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	if err := fs.Rename("/missing", "/x"); err == nil {
		t.Fatal("rename of missing file accepted")
	}
	a, _ := fs.Create("/a", CreateOptions{})
	a.Close()
	b, _ := fs.Create("/b", CreateOptions{})
	b.Close()
	if err := fs.Rename("/a", "/b"); err == nil {
		t.Fatal("rename onto existing file accepted")
	}
	if err := fs.Rename("/a", "/a"); err != nil {
		t.Fatalf("self-rename should be a no-op: %v", err)
	}
	// Directory cycle.
	if err := fs.Mkdir("/p"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/p/c"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/p", "/p/c/p2"); err == nil {
		t.Fatal("directory moved into its own subtree")
	}
}

func TestRenameRespectsQuota(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	if err := fs.Mkdir("/small"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetQuota("/small", 4); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/big", CreateOptions{})
	f.Truncate(16 * mem.FrameSize)
	f.Close()
	if err := fs.Rename("/big", "/small/big"); err == nil {
		t.Fatal("rename into over-quota directory accepted")
	}
	// Source must be intact after the failed move.
	if _, err := fs.Open("/big"); err != nil {
		t.Fatalf("source lost after failed rename: %v", err)
	}
	// Growing the quota lets the move through, accounted correctly.
	if err := fs.SetQuota("/small", 32); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/big", "/small/big"); err != nil {
		t.Fatal(err)
	}
	used, _, _ := fs.QuotaUsage("/small")
	if used != 16 {
		t.Fatalf("quota usage after rename = %d, want 16", used)
	}
}

func TestHardLinks(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	f, _ := fs.Create("/orig", CreateOptions{})
	if _, err := f.WriteAt([]byte("shared-bytes"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.Link("/orig", "/alias"); err != nil {
		t.Fatal(err)
	}
	// Both names see the same inode.
	a, _ := fs.Stat("/orig")
	b, _ := fs.Stat("/alias")
	if a.Ino() != b.Ino() {
		t.Fatal("link created a different inode")
	}
	// Unlinking one name keeps the data alive.
	if err := fs.Unlink("/orig"); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Open("/alias")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 12)
	if _, err := g.ReadAt(buf, 0); err != nil || string(buf) != "shared-bytes" {
		t.Fatalf("data after first unlink: %q, %v", buf, err)
	}
	g.Close()
	// Dropping the last name frees the storage.
	free0 := fs.FreeFrames()
	if err := fs.Unlink("/alias"); err != nil {
		t.Fatal(err)
	}
	if fs.FreeFrames() <= free0 {
		t.Fatal("storage not freed after last unlink")
	}
}

func TestLinkValidation(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link("/d", "/d2"); err == nil {
		t.Fatal("hard link to directory accepted")
	}
	if err := fs.Link("/missing", "/x"); err == nil {
		t.Fatal("link to missing file accepted")
	}
	f, _ := fs.Create("/f", CreateOptions{})
	f.Close()
	if err := fs.Link("/f", "/d"); err == nil {
		t.Fatal("link onto existing name accepted")
	}
}

func TestTruncateFailureIsAtomic(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	total := fs.TotalFrames()
	hog, _ := fs.Create("/hog", CreateOptions{})
	if err := hog.Truncate((total - 16) * mem.FrameSize); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/f", CreateOptions{})
	defer f.Close()
	// This cannot fit; the failure must leave the file (and the
	// allocator) exactly as before.
	if err := f.Truncate(64 * mem.FrameSize); err == nil {
		t.Fatal("over-capacity truncate succeeded")
	}
	if got := f.Inode().AllocatedPages(); got != 0 {
		t.Fatalf("failed truncate leaked %d pages into the inode", got)
	}
	if fs.FreeFrames() != 16 {
		t.Fatalf("failed truncate leaked allocator frames: free=%d", fs.FreeFrames())
	}
	// Relieve pressure and retry: must succeed cleanly.
	if err := hog.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(64 * mem.FrameSize); err != nil {
		t.Fatalf("retry after pressure relief failed: %v", err)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEnsureExtentsLargeFile(t *testing.T) {
	fs, _, clock := newFS(t, Extent)
	f, _ := fs.CreateTemp("big", CreateOptions{})
	t0 := clock.Now()
	// 8192 pages in a region whose max block is >= 4096: few extents.
	if err := f.EnsureExtents(8000, 1); err != nil {
		t.Fatal(err)
	}
	cost := clock.Since(t0)
	if got := f.Inode().AllocatedPages(); got != 8000 {
		t.Fatalf("allocated %d pages", got)
	}
	nExt := len(f.Inode().Extents())
	if nExt > 8 {
		t.Fatalf("%d extents for 8000 pages, want few", nExt)
	}
	// Cost must be O(extents), far below per-page zeroing.
	params := sim.DefaultParams()
	if cost >= sim.Time(8000)*params.ZeroPage {
		t.Fatalf("EnsureExtents cost %v not sub-linear", cost)
	}
	// Logical coverage is gap-free.
	next := uint64(0)
	for _, e := range f.Inode().Extents() {
		if e.Logical != next {
			t.Fatalf("extent gap at page %d", next)
		}
		next = e.End()
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEnsureExtentsValidation(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	f, _ := fs.CreateTemp("x", CreateOptions{})
	defer f.Close()
	if err := f.EnsureExtents(0, 1); err == nil {
		t.Fatal("zero-page EnsureExtents accepted")
	}
	if err := f.EnsureExtents(4, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.EnsureExtents(4, 1); err == nil {
		t.Fatal("EnsureExtents on non-empty file accepted")
	}
}

func TestEnsureExtentsAlignment(t *testing.T) {
	fs, _, _ := newFS(t, Extent)
	// Fragment free space into sub-128 pieces by pinning scattered runs.
	var pins []*File
	for i := 0; i < 20; i++ {
		f, _ := fs.CreateTemp("pin", CreateOptions{})
		if err := f.EnsureExtents(100, 1); err != nil {
			t.Fatal(err)
		}
		pins = append(pins, f)
	}
	for i := 0; i < 20; i += 2 {
		if err := pins[i].Close(); err != nil {
			t.Fatal(err)
		}
	}
	f, _ := fs.CreateTemp("aligned", CreateOptions{})
	if err := f.EnsureExtents(512, 128); err != nil {
		t.Skipf("store too fragmented for aligned run: %v", err)
	}
	for _, e := range f.Inode().Extents() {
		if e.Count%128 != 0 || uint64(e.Start)%128 != 0 {
			t.Fatalf("extent [%d,+%d) violates 128-page alignment", e.Start, e.Count)
		}
	}
	// Validation paths.
	g, _ := fs.CreateTemp("bad", CreateOptions{})
	if err := g.EnsureExtents(512, 3); err == nil {
		t.Fatal("non-power-of-two alignment accepted")
	}
	if err := g.EnsureExtents(100, 64); err == nil {
		t.Fatal("pages not multiple of alignment accepted")
	}
}
