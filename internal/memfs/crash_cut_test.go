package memfs

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// cutOp is one step of the crash-cut script. Every op is
// self-contained (open → mutate → close), so each step boundary is a
// clean cut point.
type cutOp struct {
	kind    string // "create", "write", "rename", "delete"
	path    string
	newPath string // rename target
	durable bool   // create only
	data    []byte // create/write payload
}

// genCutScript deterministically builds a script mixing persistent and
// volatile files through create/overwrite/rename/delete. Renames only
// ever target fresh names, so the model stays a simple path → state map.
func genCutScript(seed uint64, n int) []cutOp {
	rng := sim.NewRNG(seed)
	var ops []cutOp
	var live []string
	nameCtr := 0
	payload := func() []byte {
		b := make([]byte, 1+rng.Intn(2*mem.FrameSize))
		for i := range b {
			b[i] = byte(rng.Uint64())
		}
		return b
	}
	for len(ops) < n {
		switch rng.Intn(5) {
		case 0, 1: // create
			nameCtr++
			path := fmt.Sprintf("/cut%d", nameCtr)
			ops = append(ops, cutOp{kind: "create", path: path, durable: rng.Intn(2) == 0, data: payload()})
			live = append(live, path)
		case 2: // overwrite
			if len(live) == 0 {
				continue
			}
			ops = append(ops, cutOp{kind: "write", path: live[rng.Intn(len(live))], data: payload()})
		case 3: // rename to a fresh name
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			nameCtr++
			newPath := fmt.Sprintf("/cut%d", nameCtr)
			ops = append(ops, cutOp{kind: "rename", path: live[i], newPath: newPath})
			live[i] = newPath
		case 4: // delete
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			ops = append(ops, cutOp{kind: "delete", path: live[i]})
			live = append(live[:i], live[i+1:]...)
		}
	}
	return ops
}

type cutFile struct {
	durable bool
	data    []byte
}

// applyCut applies one op to the live file system and the model.
func applyCut(fs *FS, model map[string]*cutFile, op cutOp) error {
	switch op.kind {
	case "create":
		dur := Volatile
		if op.durable {
			dur = Persistent
		}
		f, err := fs.Create(op.path, CreateOptions{Durability: dur})
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(op.data, 0); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		model[op.path] = &cutFile{durable: op.durable, data: op.data}
	case "write":
		f, err := fs.Open(op.path)
		if err != nil {
			return err
		}
		if err := f.Truncate(0); err != nil {
			return err
		}
		if _, err := f.WriteAt(op.data, 0); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		model[op.path].data = op.data
	case "rename":
		if err := fs.Rename(op.path, op.newPath); err != nil {
			return err
		}
		model[op.newPath] = model[op.path]
		delete(model, op.path)
	case "delete":
		if err := fs.Unlink(op.path); err != nil {
			return err
		}
		delete(model, op.path)
	default:
		return fmt.Errorf("unknown cut op %q", op.kind)
	}
	return nil
}

// TestCrashAtEveryStep simulates a power cut at EVERY step boundary of
// one deterministic script — not one random point per run as
// TestCrashInjectionProperty does — and asserts at each cut that the
// recovered image passes invariants, every persistent file holds
// exactly its last fully-written contents (including across renames),
// and nothing volatile or deleted survives.
func TestCrashAtEveryStep(t *testing.T) {
	for _, policy := range []AllocPolicy{Extent, PerPage} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			nops := 36
			if testing.Short() {
				nops = 18
			}
			script := genCutScript(7, nops)
			for cut := 0; cut <= len(script); cut++ {
				fs, m, _ := newFS(t, policy)
				model := map[string]*cutFile{}
				for _, op := range script[:cut] {
					if err := applyCut(fs, model, op); err != nil {
						t.Fatalf("cut %d: apply %s %s: %v", cut, op.kind, op.path, err)
					}
				}

				m.Crash()
				if _, err := fs.Remount(); err != nil {
					t.Fatalf("cut %d: remount: %v", cut, err)
				}
				if err := fs.CheckInvariants(); err != nil {
					t.Fatalf("cut %d: post-crash invariants: %v", cut, err)
				}

				for path, st := range model {
					f, err := fs.Open(path)
					if !st.durable {
						if err == nil {
							t.Fatalf("cut %d: volatile file %s survived", cut, path)
						}
						continue
					}
					if err != nil {
						t.Fatalf("cut %d: persistent file %s lost: %v", cut, path, err)
					}
					got := make([]byte, len(st.data))
					if _, err := f.ReadAt(got, 0); err != nil {
						t.Fatalf("cut %d: read %s: %v", cut, path, err)
					}
					if !bytes.Equal(got, st.data) {
						t.Fatalf("cut %d: persistent file %s corrupted", cut, path)
					}
					if err := f.Close(); err != nil {
						t.Fatal(err)
					}
				}
				// Deleted and pre-rename paths must not reappear.
				for _, op := range script[:cut] {
					check := ""
					switch op.kind {
					case "delete":
						check = op.path
					case "rename":
						check = op.path
					}
					if check == "" {
						continue
					}
					if _, ok := model[check]; ok {
						continue // a later create legitimately reused nothing; paths are unique, so unreachable
					}
					if _, err := fs.Open(check); err == nil {
						t.Fatalf("cut %d: stale path %s reappeared after crash", cut, check)
					}
				}
			}
		})
	}
}
