package memfs

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/mem"
)

func newFileTestFS(t *testing.T, policy AllocPolicy) *FS {
	t.Helper()
	fs, _, _ := newFS(t, policy)
	return fs
}

func TestOpenFileFlags(t *testing.T) {
	fs := newFileTestFS(t, Extent)

	// OCreate makes a missing file; plain open of it then works.
	f, err := fs.OpenFile("/a", OCreate, CreateOptions{})
	if err != nil {
		t.Fatalf("OCreate: %v", err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// OCreate on an existing file opens it (no truncation).
	f, err = fs.OpenFile("/a", OCreate, CreateOptions{})
	if err != nil {
		t.Fatalf("OCreate existing: %v", err)
	}
	if got := f.Inode().Size(); got != 5 {
		t.Fatalf("OCreate truncated: size %d, want 5", got)
	}

	// OExcl refuses the existing file.
	if _, err := fs.OpenFile("/a", OCreate|OExcl, CreateOptions{}); err == nil {
		t.Fatal("OCreate|OExcl opened an existing file")
	}
	// OExcl without OCreate is a usage error.
	if _, err := fs.OpenFile("/a", OExcl, CreateOptions{}); err == nil {
		t.Fatal("OExcl without OCreate accepted")
	}
	// Plain open of a missing file fails.
	if _, err := fs.OpenFile("/missing", 0, CreateOptions{}); err == nil {
		t.Fatal("opened a missing file without OCreate")
	}

	// OTrunc zeroes the length.
	g, err := fs.OpenFile("/a", OTrunc, CreateOptions{})
	if err != nil {
		t.Fatalf("OTrunc: %v", err)
	}
	if got := g.Inode().Size(); got != 0 {
		t.Fatalf("OTrunc left size %d", got)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileReadWriteSeek(t *testing.T) {
	for _, policy := range []AllocPolicy{PerPage, Extent} {
		fs := newFileTestFS(t, policy)
		f, err := fs.OpenFile("/f", OCreate, CreateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if n, err := f.Write([]byte("hello, world")); err != nil || n != 12 {
			t.Fatalf("%s: write: n=%d err=%v", policy, n, err)
		}
		if f.Pos() != 12 {
			t.Fatalf("%s: pos %d after write, want 12", policy, f.Pos())
		}

		// Rewind and read it back sequentially.
		if pos, err := f.Seek(0, io.SeekStart); err != nil || pos != 0 {
			t.Fatalf("%s: seek start: pos=%d err=%v", policy, pos, err)
		}
		buf := make([]byte, 5)
		if n, err := f.Read(buf); err != nil || n != 5 {
			t.Fatalf("%s: read: n=%d err=%v", policy, n, err)
		}
		if string(buf) != "hello" {
			t.Fatalf("%s: read %q", policy, buf)
		}

		// Relative seek over ", ", then read to EOF.
		if pos, err := f.Seek(2, io.SeekCurrent); err != nil || pos != 7 {
			t.Fatalf("%s: seek cur: pos=%d err=%v", policy, pos, err)
		}
		rest := make([]byte, 16)
		n, err := f.Read(rest)
		if n != 5 || err != io.EOF {
			t.Fatalf("%s: short read at EOF: n=%d err=%v", policy, n, err)
		}
		if string(rest[:n]) != "world" {
			t.Fatalf("%s: read %q", policy, rest[:n])
		}
		// At exact EOF, reads return 0, io.EOF.
		if n, err := f.Read(buf); n != 0 || err != io.EOF {
			t.Fatalf("%s: read at EOF: n=%d err=%v", policy, n, err)
		}

		// SeekEnd with negative offset; overwrite the tail.
		if pos, err := f.Seek(-5, io.SeekEnd); err != nil || pos != 7 {
			t.Fatalf("%s: seek end: pos=%d err=%v", policy, pos, err)
		}
		if _, err := f.Write([]byte("earth")); err != nil {
			t.Fatalf("%s: overwrite: %v", policy, err)
		}
		got := make([]byte, 12)
		if _, err := f.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if string(got) != "hello, earth" {
			t.Fatalf("%s: content %q", policy, got)
		}

		// Seek past EOF: read hits EOF; write extends with a zero gap
		// spanning a page boundary.
		if _, err := f.Seek(mem.FrameSize+3, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		if n, err := f.Read(buf); n != 0 || err != io.EOF {
			t.Fatalf("%s: read past EOF: n=%d err=%v", policy, n, err)
		}
		if _, err := f.Write([]byte("far")); err != nil {
			t.Fatalf("%s: write past EOF: %v", policy, err)
		}
		if got := f.Inode().Size(); got != mem.FrameSize+6 {
			t.Fatalf("%s: size %d after gap write", policy, got)
		}
		gap := make([]byte, 3)
		if _, err := f.ReadAt(gap, 20); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gap, []byte{0, 0, 0}) {
			t.Fatalf("%s: gap holds %v, want zeros", policy, gap)
		}

		// Negative absolute position and bad whence are refused, and the
		// position is unchanged.
		before := f.Pos()
		if _, err := f.Seek(-1, io.SeekStart); err == nil {
			t.Fatalf("%s: negative seek accepted", policy)
		}
		if _, err := f.Seek(0, 99); err == nil {
			t.Fatalf("%s: bad whence accepted", policy)
		}
		if f.Pos() != before {
			t.Fatalf("%s: failed seek moved the position", policy)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFileAppend(t *testing.T) {
	fs := newFileTestFS(t, Extent)
	f, err := fs.OpenFile("/log", OCreate|OAppend, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{"one\n", "two\n"} {
		if _, err := f.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	// A second appending handle interleaves at EOF regardless of its
	// own position; a seek on it does not change where writes land.
	g, err := fs.OpenFile("/log", OAppend, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("three\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("four\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, _ := f.ReadAt(buf, 0)
	if string(buf[:n]) != "one\ntwo\nthree\nfour\n" {
		t.Fatalf("append stream: %q", buf[:n])
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWalkDir(t *testing.T) {
	fs := newFileTestFS(t, Extent)
	for _, dir := range []string{"/b", "/b/sub", "/a"} {
		if err := fs.Mkdir(dir); err != nil {
			t.Fatal(err)
		}
	}
	for _, path := range []string{"/b/sub/deep", "/b/x", "/a/y", "/top"} {
		f, err := fs.Create(path, CreateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := fs.WalkDir("/", func(path string, ino *Inode) error {
		kind := "f"
		if ino.IsDir() {
			kind = "d"
		}
		got = append(got, kind+" "+path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"d /", "d /a", "f /a/y", "d /b", "d /b/sub", "f /b/sub/deep", "f /b/x", "f /top",
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("walk order:\n got %v\nwant %v", got, want)
	}

	// Walk of a subtree uses the subtree root's path.
	got = got[:0]
	if err := fs.WalkDir("/b", func(path string, _ *Inode) error {
		got = append(got, path)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want = []string{"/b", "/b/sub", "/b/sub/deep", "/b/x"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("subtree walk:\n got %v\nwant %v", got, want)
	}

	// Walking a file visits just the file; errors propagate.
	count := 0
	if err := fs.WalkDir("/top", func(string, *Inode) error { count++; return nil }); err != nil || count != 1 {
		t.Fatalf("file walk: count=%d err=%v", count, err)
	}
	wantErr := io.ErrUnexpectedEOF
	if err := fs.WalkDir("/", func(string, *Inode) error { return wantErr }); err != wantErr {
		t.Fatalf("walk error not propagated: %v", err)
	}
}
