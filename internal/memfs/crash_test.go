package memfs

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestCrashInjectionProperty drives random file-system operations,
// crashes at a random point, remounts, and verifies:
//
//  1. every persistent file that was fully written before the crash
//     survives with exactly its last contents;
//  2. no volatile or temp file survives;
//  3. allocator and extent invariants hold after recovery;
//  4. the recovered file system remains fully usable.
func TestCrashInjectionProperty(t *testing.T) {
	fn := func(seed uint64) bool {
		clock := &sim.Clock{}
		params := sim.DefaultParams()
		m, err := mem.New(clock, &params, mem.Config{DRAMFrames: 512, NVMFrames: 16384})
		if err != nil {
			return false
		}
		nvm, _ := m.Region(mem.NVM)
		fs, err := New("crash", Extent, clock, &params, m, nvm.Start, nvm.Count)
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed)

		type fileState struct {
			path    string
			data    []byte
			durable bool
		}
		var files []*fileState
		nameCtr := 0

		crashAt := 10 + rng.Intn(120)
		for op := 0; op < crashAt; op++ {
			switch rng.Intn(4) {
			case 0: // create a file with content
				nameCtr++
				st := &fileState{
					path:    fmt.Sprintf("/f%d", nameCtr),
					durable: rng.Float64() < 0.5,
				}
				dur := Volatile
				if st.durable {
					dur = Persistent
				}
				f, err := fs.Create(st.path, CreateOptions{Durability: dur})
				if err != nil {
					t.Logf("create: %v", err)
					return false
				}
				st.data = make([]byte, 1+rng.Intn(3*mem.FrameSize))
				for i := range st.data {
					st.data[i] = byte(rng.Uint64())
				}
				if _, err := f.WriteAt(st.data, 0); err != nil {
					t.Logf("write: %v", err)
					return false
				}
				if err := f.Close(); err != nil {
					return false
				}
				files = append(files, st)
			case 1: // overwrite an existing file
				if len(files) == 0 {
					continue
				}
				st := files[rng.Intn(len(files))]
				f, err := fs.Open(st.path)
				if err != nil {
					return false
				}
				st.data = make([]byte, 1+rng.Intn(2*mem.FrameSize))
				for i := range st.data {
					st.data[i] = byte(rng.Uint64())
				}
				if err := f.Truncate(0); err != nil {
					return false
				}
				if _, err := f.WriteAt(st.data, 0); err != nil {
					return false
				}
				if err := f.Close(); err != nil {
					return false
				}
			case 2: // unlink
				if len(files) == 0 {
					continue
				}
				i := rng.Intn(len(files))
				if err := fs.Unlink(files[i].path); err != nil {
					return false
				}
				files = append(files[:i], files[i+1:]...)
			case 3: // temp-file churn (must never survive)
				tf, err := fs.CreateTemp("scratch", CreateOptions{})
				if err != nil {
					return false
				}
				if err := tf.EnsureContiguous(uint64(1 + rng.Intn(32))); err != nil {
					return false
				}
				if rng.Float64() < 0.7 {
					if err := tf.Close(); err != nil {
						return false
					}
				} // else: leaked open handle dies in the crash
			}
		}

		// Power failure.
		m.Crash()
		if _, err := fs.Remount(); err != nil {
			t.Logf("remount: %v", err)
			return false
		}
		if err := fs.CheckInvariants(); err != nil {
			t.Logf("post-crash invariants: %v", err)
			return false
		}

		for _, st := range files {
			f, err := fs.Open(st.path)
			if st.durable {
				if err != nil {
					t.Logf("persistent file %s lost: %v", st.path, err)
					return false
				}
				got := make([]byte, len(st.data))
				if _, err := f.ReadAt(got, 0); err != nil {
					return false
				}
				if !bytes.Equal(got, st.data) {
					t.Logf("persistent file %s corrupted", st.path)
					return false
				}
				if err := f.Close(); err != nil {
					return false
				}
			} else if err == nil {
				t.Logf("volatile file %s survived the crash", st.path)
				return false
			}
		}

		// The recovered file system still works.
		f, err := fs.Create("/post-crash", CreateOptions{})
		if err != nil {
			return false
		}
		if _, err := f.WriteAt([]byte("alive"), 0); err != nil {
			return false
		}
		return f.Close() == nil
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleCrash exercises repeated crash/remount cycles.
func TestDoubleCrash(t *testing.T) {
	fs, m, _ := newFS(t, Extent)
	f, err := fs.Create("/sturdy", CreateOptions{Durability: Persistent})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("round0"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	for round := 1; round <= 3; round++ {
		m.Crash()
		if _, err := fs.Remount(); err != nil {
			t.Fatalf("round %d remount: %v", round, err)
		}
		g, err := fs.Open("/sturdy")
		if err != nil {
			t.Fatalf("round %d: file lost", round)
		}
		buf := make([]byte, 6)
		if _, err := g.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("round%d", round-1)
		if string(buf) != want {
			t.Fatalf("round %d: read %q, want %q", round, buf, want)
		}
		if _, err := g.WriteAt([]byte(fmt.Sprintf("round%d", round)), 0); err != nil {
			t.Fatal(err)
		}
		g.Close()
	}
}
