package memfs

import (
	"repro/internal/ckpt"
	"repro/internal/mem"
)

// DirtyUnits maps the dirty frames owned by the file store onto
// checkpoint units at extent granularity: each live extent containing
// at least one dirty frame becomes one unit, so checkpoint metadata
// cost is O(dirty extents) — with contiguous allocation, typically far
// fewer than dirty pages. Dirty frames inside the store's pools but no
// longer inside any live extent (freed since the last epoch, now
// reading zero) fall back to single-page units.
func (fs *FS) DirtyUnits(frames []mem.Frame) []ckpt.Unit {
	var spans []ckpt.Unit
	for _, ino := range fs.inodes {
		for _, e := range ino.extents {
			spans = append(spans, ckpt.Unit{Start: e.Start, Count: e.Count})
		}
	}
	var mine []mem.Frame
	for _, f := range frames {
		if fs.ownsFrame(f) {
			mine = append(mine, f)
		}
	}
	return ckpt.UnitsBySpan(mine, spans)
}

// ownsFrame reports whether f belongs to the store's frame pool or its
// optional fast (tiering) pool.
func (fs *FS) ownsFrame(f mem.Frame) bool {
	if f >= fs.bud.Base() && f < fs.bud.Base()+mem.Frame(fs.bud.Size()) {
		return true
	}
	if fs.fastBud != nil && f >= fs.fastBud.Base() && f < fs.fastBud.Base()+mem.Frame(fs.fastBud.Size()) {
		return true
	}
	return false
}
