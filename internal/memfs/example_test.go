package memfs_test

import (
	"fmt"
	"log"

	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/sim"
)

// Example shows the persistent file system surviving a crash: the
// volatile file disappears at remount, the persistent one keeps its
// bytes.
func Example() {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: 1024, NVMFrames: 16384})
	if err != nil {
		log.Fatal(err)
	}
	nvm, _ := memory.Region(mem.NVM)
	fs, err := memfs.New("pm", memfs.Extent, clock, &params, memory, nvm.Start, nvm.Count)
	if err != nil {
		log.Fatal(err)
	}

	keep, _ := fs.Create("/keep", memfs.CreateOptions{Durability: memfs.Persistent})
	if _, err := keep.WriteAt([]byte("survives"), 0); err != nil {
		log.Fatal(err)
	}
	keep.Close()
	lose, _ := fs.Create("/lose", memfs.CreateOptions{})
	if _, err := lose.WriteAt([]byte("vanishes"), 0); err != nil {
		log.Fatal(err)
	}
	lose.Close()

	memory.Crash()
	dropped, _ := fs.Remount()

	f, err := fs.Open("/keep")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := f.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	_, loseErr := fs.Open("/lose")
	fmt.Printf("dropped=%d keep=%q lose-gone=%v\n", dropped, buf, loseErr != nil)
	// Output: dropped=1 keep="survives" lose-gone=true
}

// ExampleFS_SetQuota demonstrates directory quotas — the paper's
// "file-system controls over memory allocation".
func ExampleFS_SetQuota() {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, _ := mem.New(clock, &params, mem.Config{DRAMFrames: 1024, NVMFrames: 8192})
	nvm, _ := memory.Region(mem.NVM)
	fs, _ := memfs.New("q", memfs.Extent, clock, &params, memory, nvm.Start, nvm.Count)

	if err := fs.Mkdir("/jobs"); err != nil {
		log.Fatal(err)
	}
	if err := fs.SetQuota("/jobs", 16); err != nil {
		log.Fatal(err)
	}
	f, _ := fs.Create("/jobs/scratch", memfs.CreateOptions{})
	okSmall := f.Truncate(16 * mem.FrameSize)
	tooBig := f.Truncate(32 * mem.FrameSize)
	used, quota, _ := fs.QuotaUsage("/jobs")
	fmt.Printf("within=%v over=%v usage=%d/%d\n", okSmall == nil, tooBig != nil, used, quota)
	// Output: within=true over=true usage=16/16
}
