package memfs

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tier"
)

// newTieredFS mounts an extent FS over NVM with a DRAM fast region of
// fastFrames frames and a tier engine capped at fastCap.
func newTieredFS(t *testing.T, policy tier.Policy, fastCap, fastFrames uint64) (*FS, *mem.Memory, *tier.Engine, *sim.CPU) {
	t.Helper()
	params := sim.DefaultParams()
	machine := sim.NewMachine(&params, 1, 1)
	m, err := mem.New(machine.Clock(), &params, mem.Config{DRAMFrames: 256, NVMFrames: 1024})
	if err != nil {
		t.Fatal(err)
	}
	nvm, _ := m.Region(mem.NVM)
	fs, err := New("tiered", Extent, machine.Clock(), &params, m, nvm.Start, nvm.Count)
	if err != nil {
		t.Fatal(err)
	}
	eng := tier.New(&params, m, policy, fastCap)
	if err := fs.AttachTier(eng, 0, fastFrames); err != nil {
		t.Fatal(err)
	}
	return fs, m, eng, machine.CPU(0)
}

// TestMigratedFrameScrubbedBeforeRecycle is the migration poison test:
// after a frame is promoted away, its old slow-tier backing must read
// as zero — the scrub runs before the buddy recycles the frame, so a
// later allocation can never resurrect the page's bytes.
func TestMigratedFrameScrubbedBeforeRecycle(t *testing.T) {
	fs, m, eng, cpu := newTieredFS(t, tier.Promote, 64, 128)

	// First file saturates the fast budget, so the second file's frames
	// are placed in the slow tier.
	filler, err := fs.CreateTemp("filler", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := filler.EnsureContiguous(64); err != nil {
		t.Fatal(err)
	}
	victim, err := fs.CreateTemp("victim", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.EnsureContiguous(4); err != nil {
		t.Fatal(err)
	}
	old := victim.Inode().extents[0].Start
	if m.Kind(old) != mem.NVM {
		t.Fatalf("victim file landed in the fast tier (frame %d) — fast budget not saturated", old)
	}

	// Poison the page through the file, then heat it so the next pump
	// promotes it (fast budget freed first so the promotion proceeds).
	if _, err := victim.WriteAt([]byte{0xAB}, 0); err != nil {
		t.Fatal(err)
	}
	if err := filler.Close(); err != nil { // frees the fast budget
		t.Fatal(err)
	}
	if _, err := victim.WriteAt([]byte{0xAB}, 0); err != nil { // records the access
		t.Fatal(err)
	}
	before := tier.TelemetrySnapshot()
	eng.Pump(cpu)
	if d := tier.TelemetrySnapshot().Sub(before); d.Promotions == 0 {
		t.Fatalf("pump performed no promotion (delta %+v)", d)
	}

	now := victim.Inode().extents
	if len(now) == 0 || m.Kind(now[0].Start) != mem.DRAM {
		t.Fatalf("victim page not in the fast tier after promotion (extents %+v)", now)
	}
	// The file still reads its contents through the new frame...
	var b [1]byte
	if _, err := victim.ReadAt(b[:], 0); err != nil || b[0] != 0xAB {
		t.Fatalf("file contents lost across migration: %v 0x%02x", err, b[0])
	}
	// ...and the migrated-away frame's backing is scrubbed.
	if got := m.ReadByteAt(old.Addr()); got != 0 {
		t.Fatalf("migrated-away frame %d still holds 0x%02x — old backing not scrubbed", old, got)
	}
	if err := m.SpareScrubbed(); err != nil {
		t.Fatalf("poison reached the recycled-array pool: %v", err)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
