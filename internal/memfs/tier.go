package memfs

import (
	"fmt"
	"sort"

	"repro/internal/buddy"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tier"
)

// AttachTier connects a tier migration engine to the file system and
// adds a fast-tier block region [fastBase, fastBase+fastFrames) next
// to the mount's original (slow-tier) region. From then on every file
// frame is hotness-tracked, allocation prefers the fast region while
// the engine's fast budget lasts, and the owners index below lets a
// backend resolve any frame to its inode for migration. Must be called
// on a freshly mounted (empty) file system.
//
// The FS itself implements tier.Backend with single-page extent-split
// migration — the FOM configuration's O(page) move. The core layer
// overrides the backend with whole-extent migration because its range
// translations cannot address a split.
func (fs *FS) AttachTier(eng *tier.Engine, fastBase mem.Frame, fastFrames uint64) error {
	if fs.tier != nil {
		return fmt.Errorf("memfs %s: tier engine already attached", fs.name)
	}
	if len(fs.inodes) != 1 { // just the root
		return fmt.Errorf("memfs %s: AttachTier on non-empty file system", fs.name)
	}
	if !fs.memory.Valid(fastBase, fastFrames) {
		return fmt.Errorf("memfs %s: fast region [%d,+%d) outside physical memory", fs.name, fastBase, fastFrames)
	}
	fastBud, err := buddy.New(fs.clock, fs.params, fastBase, fastFrames)
	if err != nil {
		return fmt.Errorf("memfs %s: fast region: %w", fs.name, err)
	}
	fs.tier = eng
	fs.fastBud = fastBud
	fs.owners = make(map[mem.Frame]*Inode)
	eng.SetBackend(fs)
	m := sim.MachineOf(fs.clock, fs.params)
	m.RegisterInvariants("memfs-tier:"+fs.name, fs.checkTier)
	m.RegisterInvariants("tier:"+fs.name, eng.CheckInvariants)
	return nil
}

// Tier returns the attached migration engine (nil without tiering).
func (fs *FS) Tier() *tier.Engine { return fs.tier }

// Owner resolves a block frame to the inode whose extent covers it
// (nil when untracked or tiering is off).
func (fs *FS) Owner(f mem.Frame) *Inode {
	return fs.owners[f]
}

// budFor routes a frame to the buddy allocator owning it.
func (fs *FS) budFor(f mem.Frame) *buddy.Allocator {
	if fb := fs.fastBud; fb != nil && f >= fb.Base() && uint64(f-fb.Base()) < fb.Size() {
		return fb
	}
	return fs.bud
}

// tierBud returns the allocator of the given tier (fast = the attached
// DRAM region, slow = the mount's original region), or nil.
func (fs *FS) tierBud(kind mem.RegionKind) *buddy.Allocator {
	if kind == mem.DRAM {
		return fs.fastBud
	}
	return fs.bud
}

// allocRun allocates count contiguous frames, preferring the tier the
// engine suggests and falling back to the other region before
// reporting failure. Without tiering it is exactly fs.bud.AllocRun.
func (fs *FS) allocRun(count uint64) (buddy.Run, error) {
	if fs.fastBud == nil {
		return fs.bud.AllocRun(count)
	}
	first, second := fs.bud, fs.fastBud
	if fs.tier.PreferFast() {
		first, second = fs.fastBud, fs.bud
	}
	r, err := first.AllocRun(count)
	if err != nil {
		return second.AllocRun(count)
	}
	return r, err
}

// allocFrame is the single-frame form of allocRun.
func (fs *FS) allocFrame() (mem.Frame, error) {
	if fs.fastBud == nil {
		return fs.bud.AllocFrame()
	}
	first, second := fs.bud, fs.fastBud
	if fs.tier.PreferFast() {
		first, second = fs.fastBud, fs.bud
	}
	f, err := first.AllocFrame()
	if err != nil {
		return second.AllocFrame()
	}
	return f, err
}

// freeRun returns a run to the buddy owning it.
func (fs *FS) freeRun(r buddy.Run) error {
	return fs.budFor(r.Start).FreeRun(r)
}

// trackRun indexes and hotness-tracks the frames of a newly inserted
// extent run. No-op without tiering.
func (fs *FS) trackRun(ino *Inode, start mem.Frame, count uint64) {
	if fs.tier == nil {
		return
	}
	for i := uint64(0); i < count; i++ {
		f := start + mem.Frame(i)
		fs.owners[f] = ino
		fs.tier.Track(f)
	}
}

// untrackRun drops the index and hotness state of a freed extent run.
func (fs *FS) untrackRun(start mem.Frame, count uint64) {
	if fs.tier == nil {
		return
	}
	for i := uint64(0); i < count; i++ {
		f := start + mem.Frame(i)
		delete(fs.owners, f)
		fs.tier.Untrack(f)
	}
}

// record samples an access for the hotness tracker.
func (fs *FS) record(f mem.Frame, write bool) {
	if fs.tier != nil {
		fs.tier.Record(f, write)
	}
}

// MigrateFrame implements tier.Backend: move one file page into the
// target tier, splitting its extent when the page sits inside a larger
// run. This is the per-page translation story — FOM's object map
// addresses pages individually, so a move costs O(page) plus an
// extent-map split, never a whole-extent copy.
func (fs *FS) MigrateFrame(cur *sim.CPU, f mem.Frame, to mem.RegionKind) (uint64, bool) {
	ino := fs.owners[f]
	if ino == nil || fs.memory.Kind(f) == to {
		return 0, false
	}
	tb := fs.tierBud(to)
	if tb == nil {
		return 0, false
	}
	nf, err := tb.AllocFrame()
	if err != nil {
		return 0, false
	}
	// Locate the covering extent and the logical page.
	idx, ok := ino.extentIndexFor(f)
	if !ok {
		// Owners said the frame is live but no extent covers it —
		// genuine index corruption.
		panic(fmt.Sprintf("memfs %s: tier owner index points at frame %d without an extent", fs.name, f))
	}
	e := ino.extents[idx]
	page := e.Logical + uint64(f-e.Start)

	fs.memory.CopyFramesOn(cur, nf, f, 1)
	if e.Count > 1 {
		tier.AddSplit()
	}
	ino.removePageFromExtent(idx, page)
	ino.insertExtent(ExtentRun{Logical: page, Start: nf, Count: 1})
	// insertExtent's trackRun hook indexed nf, but the engine must see
	// a move, not a fresh allocation: undo the owner entry and re-key.
	fs.tier.Moved(f, nf)
	delete(fs.owners, f)

	// Scrub the migrated-away frame before its buddy recycles it.
	fs.memory.ZeroFramesOn(cur, f, 1)
	if ferr := fs.budFor(f).FreeRange(f, 1); ferr != nil {
		panic(fmt.Sprintf("memfs %s: tier migration free: %v", fs.name, ferr))
	}
	fs.stats.Counter("tier_page_moves").Inc()
	return 1, true
}

// MigrateExtent moves a whole extent run of ino into the target tier,
// keeping its logical placement: the core layer's range translations
// address extents, so a single hot page drags its entire run across —
// the O(extent) cost the paper's O(1)-vs-O(n) tension predicts. The
// replacement run is a single contiguous allocation (aligned by the
// buddy's power-of-two covering block, so chunk-aligned inputs stay
// chunk-aligned). Returns the relocated run.
func (fs *FS) MigrateExtent(cur *sim.CPU, ino *Inode, e ExtentRun, to mem.RegionKind) (ExtentRun, bool) {
	tb := fs.tierBud(to)
	if tb == nil {
		return ExtentRun{}, false
	}
	idx := -1
	for i, x := range ino.extents {
		if x.Logical == e.Logical && x.Start == e.Start && x.Count == e.Count {
			idx = i
			break
		}
	}
	if idx < 0 {
		return ExtentRun{}, false
	}
	run, err := tb.AllocRun(e.Count)
	if err != nil {
		return ExtentRun{}, false
	}
	fs.memory.CopyFramesOn(cur, run.Start, e.Start, e.Count)
	fs.clock.Advance(fs.params.ExtentOp)
	ino.extents[idx].Start = run.Start
	for i := uint64(0); i < e.Count; i++ {
		old, new := e.Start+mem.Frame(i), run.Start+mem.Frame(i)
		if fs.tier != nil {
			fs.tier.Moved(old, new)
			delete(fs.owners, old)
			fs.owners[new] = ino
		}
	}
	// Scrub and free the migrated-away run.
	fs.memory.ZeroFramesOn(cur, e.Start, e.Count)
	if ferr := fs.budFor(e.Start).FreeRun(buddy.Run{Start: e.Start, Count: e.Count}); ferr != nil {
		panic(fmt.Sprintf("memfs %s: tier extent migration free: %v", fs.name, ferr))
	}
	fs.stats.Counter("tier_extent_moves").Inc()
	return ino.extents[idx], true
}

// extentIndexFor finds the extent covering physical frame f (host-side
// index lookup; the simulated extent charge is FindExtent's).
func (ino *Inode) extentIndexFor(f mem.Frame) (int, bool) {
	for i, e := range ino.extents {
		if f >= e.Start && f < e.Start+mem.Frame(e.Count) {
			return i, true
		}
	}
	return 0, false
}

// removePageFromExtent carves one logical page out of the extent at
// idx, charging one extent operation per resulting run. The caller
// re-inserts the page's replacement.
func (ino *Inode) removePageFromExtent(idx int, page uint64) {
	fs := ino.fs
	e := ino.extents[idx]
	fs.clock.Advance(fs.params.ExtentOp)
	switch {
	case e.Count == 1:
		ino.extents = append(ino.extents[:idx], ino.extents[idx+1:]...)
	case page == e.Logical:
		ino.extents[idx].Logical++
		ino.extents[idx].Start++
		ino.extents[idx].Count--
	case page == e.Logical+e.Count-1:
		ino.extents[idx].Count--
	default: // split into head + tail
		head := uint64(page - e.Logical)
		ino.extents[idx].Count = head
		tail := ExtentRun{
			Logical: page + 1,
			Start:   e.Start + mem.Frame(head+1),
			Count:   e.Count - head - 1,
		}
		ino.extents = append(ino.extents, ExtentRun{})
		copy(ino.extents[idx+2:], ino.extents[idx+1:])
		ino.extents[idx+1] = tail
		fs.clock.Advance(fs.params.ExtentOp)
	}
}

// checkTier audits the tier owner index against the extent lists: they
// must describe exactly the same frame set, and every owned frame must
// be tracked by the engine in the tier its region says.
func (fs *FS) checkTier() error {
	if fs.tier == nil {
		return nil
	}
	want := 0
	inos := make([]uint64, 0, len(fs.inodes))
	for ino := range fs.inodes {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	for _, n := range inos {
		ino := fs.inodes[n]
		for _, e := range ino.extents {
			for f := e.Start; f < e.Start+mem.Frame(e.Count); f++ {
				want++
				if fs.owners[f] != ino {
					return fmt.Errorf("memfs %s: frame %d belongs to inode %d but owner index disagrees", fs.name, f, ino.ino)
				}
				if _, tracked := fs.tier.TierOf(f); !tracked {
					return fmt.Errorf("memfs %s: frame %d owned by inode %d but not tier-tracked", fs.name, f, ino.ino)
				}
			}
		}
	}
	if want != len(fs.owners) {
		return fmt.Errorf("memfs %s: owner index holds %d frames, extents describe %d", fs.name, len(fs.owners), want)
	}
	if fs.fastBud != nil {
		if err := fs.fastBud.CheckInvariants(); err != nil {
			return fmt.Errorf("memfs %s: fast region: %w", fs.name, err)
		}
	}
	return nil
}
