package pagetable

import (
	"testing"
	"testing/quick"

	"repro/internal/buddy"
	"repro/internal/mem"
	"repro/internal/sim"
)

func newTable(t *testing.T, levels int) (*Table, *buddy.Allocator, *sim.CPU) {
	t.Helper()
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	cpu := sim.MachineOf(clock, &params).BootCPU()
	bud, err := buddy.New(clock, &params, 0, 1<<20) // 4 GiB of frames
	if err != nil {
		t.Fatalf("buddy.New: %v", err)
	}
	tbl, err := New(cpu, &params, bud, levels)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tbl, bud, cpu
}

func TestNewRejectsBadLevels(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	bud, _ := buddy.New(clock, &params, 0, 64)
	if _, err := New(sim.MachineOf(clock, &params).BootCPU(), &params, bud, 3); err == nil {
		t.Fatal("accepted 3-level table")
	}
}

func TestMapWalkRoundTrip(t *testing.T) {
	tbl, _, cpu := newTable(t, Levels4)
	va := mem.VirtAddr(0x7f0000001000)
	if err := tbl.Map(cpu, va, 1234, FlagRead|FlagWrite); err != nil {
		t.Fatalf("Map: %v", err)
	}
	pa, flags, levels, ok := tbl.Walk(cpu, va + 123)
	if !ok {
		t.Fatal("Walk missed mapped address")
	}
	if pa != mem.Frame(1234).Addr()+123 {
		t.Fatalf("pa = %#x, want frame 1234 + 123", uint64(pa))
	}
	if flags != FlagRead|FlagWrite {
		t.Fatalf("flags = %v", flags)
	}
	if levels != 4 {
		t.Fatalf("walk touched %d levels, want 4", levels)
	}
	if tbl.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d, want 1", tbl.MappedPages())
	}
}

func TestWalkUnmappedFails(t *testing.T) {
	tbl, _, cpu := newTable(t, Levels4)
	if _, _, _, ok := tbl.Walk(cpu, 0x1000); ok {
		t.Fatal("Walk succeeded on empty table")
	}
}

func TestDoubleMapRejected(t *testing.T) {
	tbl, _, cpu := newTable(t, Levels4)
	va := mem.VirtAddr(0x1000)
	if err := tbl.Map(cpu, va, 1, FlagRead); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map(cpu, va, 2, FlagRead); err == nil {
		t.Fatal("double map accepted")
	}
}

func TestVirtualAddressBounds(t *testing.T) {
	tbl4, _, cpu := newTable(t, Levels4)
	if err := tbl4.Map(cpu, tbl4.MaxVirt(), 1, FlagRead); err == nil {
		t.Fatal("4-level table accepted out-of-reach address")
	}
	tbl5, _, cpu := newTable(t, Levels5)
	// An address valid for 5 levels but not 4.
	va := tbl4.MaxVirt()
	if err := tbl5.Map(cpu, va, 1, FlagRead); err != nil {
		t.Fatalf("5-level table rejected %#x: %v", uint64(va), err)
	}
	if _, _, levels, ok := tbl5.Walk(cpu, va); !ok || levels != 5 {
		t.Fatalf("5-level walk: ok=%v levels=%d", ok, levels)
	}
}

func TestUnmapFreesNodes(t *testing.T) {
	tbl, bud, cpu := newTable(t, Levels4)
	freeBefore := bud.FreeFrames()
	va := mem.VirtAddr(0x2000)
	if err := tbl.Map(cpu, va, 77, FlagRead); err != nil {
		t.Fatal(err)
	}
	frame, pages, err := tbl.Unmap(cpu, va)
	if err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	if frame != 77 || pages != 1 {
		t.Fatalf("Unmap returned frame=%d pages=%d", frame, pages)
	}
	if tbl.MappedPages() != 0 {
		t.Fatalf("MappedPages = %d after unmap", tbl.MappedPages())
	}
	if bud.FreeFrames() != freeBefore {
		t.Fatalf("intermediate nodes leaked: %d -> %d free", freeBefore, bud.FreeFrames())
	}
	if tbl.Nodes() != 1 {
		t.Fatalf("Nodes = %d, want 1 (root only)", tbl.Nodes())
	}
}

func TestUnmapUnmappedRejected(t *testing.T) {
	tbl, _, cpu := newTable(t, Levels4)
	if _, _, err := tbl.Unmap(cpu, 0x5000); err == nil {
		t.Fatal("unmap of unmapped address accepted")
	}
}

func TestMapRangeAndUnmapRange(t *testing.T) {
	tbl, _, cpu := newTable(t, Levels4)
	const pages = 700 // crosses a leaf-node boundary
	if err := tbl.MapRange(cpu, 0x100000, 5000, pages, FlagRead); err != nil {
		t.Fatalf("MapRange: %v", err)
	}
	if tbl.MappedPages() != pages {
		t.Fatalf("MappedPages = %d, want %d", tbl.MappedPages(), pages)
	}
	for i := uint64(0); i < pages; i += 97 {
		va := mem.VirtAddr(0x100000 + i*mem.FrameSize)
		pa, _, ok := tbl.Lookup(va)
		if !ok || pa.Frame() != mem.Frame(5000+i) {
			t.Fatalf("page %d: pa=%#x ok=%v", i, uint64(pa), ok)
		}
	}
	var unmapped uint64
	if err := tbl.UnmapRange(cpu, 0x100000, pages, func(f mem.Frame, n uint64) { unmapped += n }); err != nil {
		t.Fatalf("UnmapRange: %v", err)
	}
	if unmapped != pages || tbl.MappedPages() != 0 {
		t.Fatalf("unmapped=%d mapped=%d", unmapped, tbl.MappedPages())
	}
}

func TestHugePages2M(t *testing.T) {
	tbl, _, cpu := newTable(t, Levels4)
	va := mem.VirtAddr(4 << 20) // 2MiB aligned
	if err := tbl.Map2M(cpu, va, 512, FlagRead|FlagWrite); err != nil {
		t.Fatalf("Map2M: %v", err)
	}
	if tbl.MappedPages() != 512 {
		t.Fatalf("MappedPages = %d, want 512", tbl.MappedPages())
	}
	// Any address inside the huge page translates with a 3-level walk.
	pa, _, levels, ok := tbl.Walk(cpu, va + 300*mem.FrameSize + 5)
	if !ok || levels != 3 {
		t.Fatalf("huge walk: ok=%v levels=%d", ok, levels)
	}
	want := mem.Frame(512+300).Addr() + 5
	if pa != want {
		t.Fatalf("pa = %#x, want %#x", uint64(pa), uint64(want))
	}
	if tbl.PageSize(va) != 2<<20 {
		t.Fatalf("PageSize = %d, want 2MiB", tbl.PageSize(va))
	}
	// Mapping a 4K page inside it must fail.
	if err := tbl.Map(cpu, va+0x1000, 9, FlagRead); err == nil {
		t.Fatal("4K map inside huge mapping accepted")
	}
	frame, pages, err := tbl.Unmap(cpu, va)
	if err != nil || frame != 512 || pages != 512 {
		t.Fatalf("Unmap huge: f=%d p=%d err=%v", frame, pages, err)
	}
}

func TestHugePages1G(t *testing.T) {
	tbl, _, cpu := newTable(t, Levels4)
	va := mem.VirtAddr(1 << 30)
	if err := tbl.Map1G(cpu, va, mem.HugeFrames1G, FlagRead); err != nil {
		t.Fatalf("Map1G: %v", err)
	}
	_, _, levels, ok := tbl.Walk(cpu, va + 123456789)
	if !ok || levels != 2 {
		t.Fatalf("1G walk: ok=%v levels=%d", ok, levels)
	}
	if tbl.PageSize(va) != 1<<30 {
		t.Fatalf("PageSize = %d", tbl.PageSize(va))
	}
}

func TestHugeAlignmentEnforced(t *testing.T) {
	tbl, _, cpu := newTable(t, Levels4)
	if err := tbl.Map2M(cpu, 0x1000, 512, FlagRead); err == nil {
		t.Fatal("unaligned 2M va accepted")
	}
	if err := tbl.Map2M(cpu, 2<<20, 100, FlagRead); err == nil {
		t.Fatal("unaligned 2M frame accepted")
	}
	if err := tbl.Map1G(cpu, 2<<20, 0, FlagRead); err == nil {
		t.Fatal("unaligned 1G va accepted")
	}
}

func TestProtect(t *testing.T) {
	tbl, _, cpu := newTable(t, Levels4)
	va := mem.VirtAddr(0x3000)
	if err := tbl.Map(cpu, va, 10, FlagRead|FlagWrite); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Protect(cpu, va, FlagRead); err != nil {
		t.Fatalf("Protect: %v", err)
	}
	_, flags, ok := tbl.Lookup(va)
	if !ok || flags != FlagRead {
		t.Fatalf("flags after protect = %v", flags)
	}
	if err := tbl.Protect(cpu, 0x999000, FlagRead); err == nil {
		t.Fatal("protect of unmapped address accepted")
	}
}

func TestMapChargesPerPage(t *testing.T) {
	tbl, _, cpu := newTable(t, Levels4)
	// Map N pages, then N more in the same leaf region; the marginal
	// cost per page must be constant once nodes exist.
	if err := tbl.MapRange(cpu, 0, 0, 64, FlagRead); err != nil {
		t.Fatal(err)
	}
	t0 := cpu.Now()
	if err := tbl.MapRange(cpu, 64*mem.FrameSize, 64, 64, FlagRead); err != nil {
		t.Fatal(err)
	}
	c64 := cpu.Now() - t0
	t1 := cpu.Now()
	if err := tbl.MapRange(cpu, 128*mem.FrameSize, 128, 128, FlagRead); err != nil {
		t.Fatal(err)
	}
	c128 := cpu.Now() - t1
	if c128 <= c64 {
		t.Fatalf("mapping 128 pages (%v) not costlier than 64 (%v)", c128, c64)
	}
	ratio := float64(c128) / float64(c64)
	if ratio < 1.8 || ratio > 2.3 {
		t.Fatalf("cost ratio %v, want ~2 (linear in pages)", ratio)
	}
}

func TestSubtreeSharingO1(t *testing.T) {
	src, _, cpu := newTable(t, Levels4)
	// Build a fully populated 2MiB region (512 pages) in src.
	base := mem.VirtAddr(2 << 20)
	if err := src.MapRange(cpu, base, 0x10000, 512, FlagRead); err != nil {
		t.Fatal(err)
	}

	params := sim.DefaultParams()
	bud2, _ := buddy.New(cpu.Clock(), &params, 1<<20, 1<<20)
	dst, err := New(cpu, &params, bud2, Levels4)
	if err != nil {
		t.Fatal(err)
	}
	dstVA := mem.VirtAddr(6 << 20)
	t0 := cpu.Now()
	if err := dst.LinkSubtree(cpu, dstVA, src, base, 2); err != nil {
		t.Fatalf("LinkSubtree: %v", err)
	}
	linkCost := cpu.Now() - t0

	// The link installs the whole 512-page mapping.
	for _, off := range []uint64{0, 5, 511} {
		pa, _, ok := dst.Lookup(dstVA + mem.VirtAddr(off*mem.FrameSize))
		if !ok || pa.Frame() != mem.Frame(0x10000+off) {
			t.Fatalf("shared page %d: pa=%#x ok=%v", off, uint64(pa), ok)
		}
	}
	if dst.MappedPages() != 512 {
		t.Fatalf("dst MappedPages = %d, want 512", dst.MappedPages())
	}

	// O(1): linking must cost far less than mapping 512 pages.
	perPage := sim.DefaultParams().PTEWrite
	if linkCost >= 512*perPage {
		t.Fatalf("link cost %v not O(1) (512 PTE writes would be %v)", linkCost, 512*perPage)
	}

	// Modifying the shared region through dst must be refused.
	if _, _, err := dst.Unmap(cpu, dstVA); err == nil {
		t.Fatal("Unmap inside shared subtree accepted")
	}
	if err := dst.Protect(cpu, dstVA, FlagRead|FlagWrite); err == nil {
		t.Fatal("Protect inside shared subtree accepted")
	}

	if err := dst.UnlinkSubtree(cpu, dstVA, 2); err != nil {
		t.Fatalf("UnlinkSubtree: %v", err)
	}
	if dst.MappedPages() != 0 {
		t.Fatalf("dst MappedPages = %d after unlink", dst.MappedPages())
	}
	// Source still intact.
	if _, _, ok := src.Lookup(base); !ok {
		t.Fatal("source mapping lost after unlink")
	}
}

func TestSharedSubtreeFreedByLastOwner(t *testing.T) {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	cpu := sim.MachineOf(clock, &params).BootCPU()
	bud, _ := buddy.New(clock, &params, 0, 1<<20)
	src, _ := New(cpu, &params, bud, Levels4)
	if err := src.MapRange(cpu, 2<<20, 0x200, 512, FlagRead); err != nil {
		t.Fatal(err)
	}
	dst, _ := New(cpu, &params, bud, Levels4)
	if err := dst.LinkSubtree(cpu, 4<<20, src, 2<<20, 2); err != nil {
		t.Fatal(err)
	}
	// Destroy the source first: the shared leaf node must survive for
	// dst, then be freed when dst is destroyed.
	if err := src.Destroy(); err != nil {
		t.Fatalf("src.Destroy: %v", err)
	}
	if pa, _, ok := dst.Lookup(4<<20 + 0x3000); !ok || pa.Frame() != 0x203 {
		t.Fatal("shared mapping unusable after source destroy")
	}
	if err := dst.Destroy(); err != nil {
		t.Fatalf("dst.Destroy: %v", err)
	}
	if bud.FreeFrames() != 1<<20 {
		t.Fatalf("page-table frames leaked: free=%d want=%d", bud.FreeFrames(), 1<<20)
	}
}

func TestSubtreeLinkAlignmentEnforced(t *testing.T) {
	src, _, cpu := newTable(t, Levels4)
	if err := src.MapRange(cpu, 2<<20, 0, 512, FlagRead); err != nil {
		t.Fatal(err)
	}
	dst, _, cpu := newTable(t, Levels4)
	if err := dst.LinkSubtree(cpu, mem.VirtAddr(4<<20+0x1000), src, 2<<20, 2); err == nil {
		t.Fatal("unaligned link accepted")
	}
	if err := dst.LinkSubtree(cpu, 4<<20, src, 3<<20, 2); err == nil {
		t.Fatal("link of absent source subtree accepted (3MiB is not populated)")
	}
}

func TestSubtreeLevel(t *testing.T) {
	if l, err := SubtreeLevel(512); err != nil || l != 2 {
		t.Fatalf("SubtreeLevel(512) = %d, %v", l, err)
	}
	if l, err := SubtreeLevel(512 * 512); err != nil || l != 3 {
		t.Fatalf("SubtreeLevel(512²) = %d, %v", l, err)
	}
	if _, err := SubtreeLevel(100); err == nil {
		t.Fatal("SubtreeLevel(100) accepted")
	}
}

func TestDestroyReleasesEverything(t *testing.T) {
	tbl, bud, cpu := newTable(t, Levels4)
	free0 := bud.FreeFrames() + 1 // +1 for the root allocated by New
	if err := tbl.MapRange(cpu, 0, 0, 2000, FlagRead); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Destroy(); err != nil {
		t.Fatal(err)
	}
	if bud.FreeFrames() != free0 {
		t.Fatalf("frames after destroy = %d, want %d", bud.FreeFrames(), free0)
	}
	if tbl.Nodes() != 0 {
		t.Fatalf("Nodes = %d after destroy", tbl.Nodes())
	}
}

func TestCheckInvariants(t *testing.T) {
	tbl, _, cpu := newTable(t, Levels4)
	if err := tbl.MapRange(cpu, 0, 0, 100, FlagRead); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFlagsString(t *testing.T) {
	if s := (FlagRead | FlagWrite).String(); s != "rw---" {
		t.Fatalf("flags string = %q", s)
	}
	if s := (FlagRead | FlagExec | FlagUser).String(); s != "r-xu-" {
		t.Fatalf("flags string = %q", s)
	}
}

// TestMapLookupQuickProperty: walk(insert(va, frame)) == frame for
// arbitrary page-aligned addresses within reach.
func TestMapLookupQuickProperty(t *testing.T) {
	tbl, _, cpu := newTable(t, Levels4)
	mapped := make(map[mem.VirtAddr]mem.Frame)
	f := func(vpn uint64, frame uint32) bool {
		va := mem.VirtAddr(vpn % (1 << 36) << mem.FrameShift)
		if _, dup := mapped[va]; dup {
			return true
		}
		if err := tbl.Map(cpu, va, mem.Frame(frame), FlagRead); err != nil {
			return false
		}
		mapped[va] = mem.Frame(frame)
		pa, _, ok := tbl.Lookup(va)
		return ok && pa.Frame() == mem.Frame(frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// All earlier mappings still intact.
	for va, fr := range mapped {
		pa, _, ok := tbl.Lookup(va)
		if !ok || pa.Frame() != fr {
			t.Fatalf("mapping %#x lost", uint64(va))
		}
	}
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
